file(REMOVE_RECURSE
  "CMakeFiles/table1_attacks.dir/table1_attacks.cpp.o"
  "CMakeFiles/table1_attacks.dir/table1_attacks.cpp.o.d"
  "table1_attacks"
  "table1_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
