# Empty dependencies file for table1_attacks.
# This may be replaced when dependencies are built.
