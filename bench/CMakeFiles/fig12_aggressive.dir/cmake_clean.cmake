file(REMOVE_RECURSE
  "CMakeFiles/fig12_aggressive.dir/fig12_aggressive.cpp.o"
  "CMakeFiles/fig12_aggressive.dir/fig12_aggressive.cpp.o.d"
  "fig12_aggressive"
  "fig12_aggressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_aggressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
