# Empty dependencies file for fig12_aggressive.
# This may be replaced when dependencies are built.
