file(REMOVE_RECURSE
  "CMakeFiles/fig11_sc_service.dir/fig11_sc_service.cpp.o"
  "CMakeFiles/fig11_sc_service.dir/fig11_sc_service.cpp.o.d"
  "fig11_sc_service"
  "fig11_sc_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sc_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
