# Empty dependencies file for fig11_sc_service.
# This may be replaced when dependencies are built.
