# Empty dependencies file for table_sigsize.
# This may be replaced when dependencies are built.
