file(REMOVE_RECURSE
  "CMakeFiles/table_sigsize.dir/table_sigsize.cpp.o"
  "CMakeFiles/table_sigsize.dir/table_sigsize.cpp.o.d"
  "table_sigsize"
  "table_sigsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_sigsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
