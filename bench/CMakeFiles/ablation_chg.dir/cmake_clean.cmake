file(REMOVE_RECURSE
  "CMakeFiles/ablation_chg.dir/ablation_chg.cpp.o"
  "CMakeFiles/ablation_chg.dir/ablation_chg.cpp.o.d"
  "ablation_chg"
  "ablation_chg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
