# Empty dependencies file for ablation_chg.
# This may be replaced when dependencies are built.
