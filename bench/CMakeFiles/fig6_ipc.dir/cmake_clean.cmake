file(REMOVE_RECURSE
  "CMakeFiles/fig6_ipc.dir/fig6_ipc.cpp.o"
  "CMakeFiles/fig6_ipc.dir/fig6_ipc.cpp.o.d"
  "fig6_ipc"
  "fig6_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
