# Empty dependencies file for fig6_ipc.
# This may be replaced when dependencies are built.
