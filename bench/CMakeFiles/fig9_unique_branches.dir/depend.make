# Empty dependencies file for fig9_unique_branches.
# This may be replaced when dependencies are built.
