file(REMOVE_RECURSE
  "CMakeFiles/fig9_unique_branches.dir/fig9_unique_branches.cpp.o"
  "CMakeFiles/fig9_unique_branches.dir/fig9_unique_branches.cpp.o.d"
  "fig9_unique_branches"
  "fig9_unique_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_unique_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
