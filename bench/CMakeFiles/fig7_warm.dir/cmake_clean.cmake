file(REMOVE_RECURSE
  "CMakeFiles/fig7_warm.dir/fig7_warm.cpp.o"
  "CMakeFiles/fig7_warm.dir/fig7_warm.cpp.o.d"
  "fig7_warm"
  "fig7_warm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_warm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
