# Empty dependencies file for fig7_warm.
# This may be replaced when dependencies are built.
