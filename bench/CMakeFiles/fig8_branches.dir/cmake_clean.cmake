file(REMOVE_RECURSE
  "CMakeFiles/fig8_branches.dir/fig8_branches.cpp.o"
  "CMakeFiles/fig8_branches.dir/fig8_branches.cpp.o.d"
  "fig8_branches"
  "fig8_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
