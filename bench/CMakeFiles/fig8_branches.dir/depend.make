# Empty dependencies file for fig8_branches.
# This may be replaced when dependencies are built.
