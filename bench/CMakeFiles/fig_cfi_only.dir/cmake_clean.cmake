file(REMOVE_RECURSE
  "CMakeFiles/fig_cfi_only.dir/fig_cfi_only.cpp.o"
  "CMakeFiles/fig_cfi_only.dir/fig_cfi_only.cpp.o.d"
  "fig_cfi_only"
  "fig_cfi_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_cfi_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
