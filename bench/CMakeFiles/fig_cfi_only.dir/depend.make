# Empty dependencies file for fig_cfi_only.
# This may be replaced when dependencies are built.
