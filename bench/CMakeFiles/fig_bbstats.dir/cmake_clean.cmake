file(REMOVE_RECURSE
  "CMakeFiles/fig_bbstats.dir/fig_bbstats.cpp.o"
  "CMakeFiles/fig_bbstats.dir/fig_bbstats.cpp.o.d"
  "fig_bbstats"
  "fig_bbstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_bbstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
