# Empty dependencies file for fig_bbstats.
# This may be replaced when dependencies are built.
