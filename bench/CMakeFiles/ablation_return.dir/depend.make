# Empty dependencies file for ablation_return.
# This may be replaced when dependencies are built.
