file(REMOVE_RECURSE
  "CMakeFiles/ablation_return.dir/ablation_return.cpp.o"
  "CMakeFiles/ablation_return.dir/ablation_return.cpp.o.d"
  "ablation_return"
  "ablation_return.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_return.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
