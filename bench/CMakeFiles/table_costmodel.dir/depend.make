# Empty dependencies file for table_costmodel.
# This may be replaced when dependencies are built.
