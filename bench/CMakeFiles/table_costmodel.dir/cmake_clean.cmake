file(REMOVE_RECURSE
  "CMakeFiles/table_costmodel.dir/table_costmodel.cpp.o"
  "CMakeFiles/table_costmodel.dir/table_costmodel.cpp.o.d"
  "table_costmodel"
  "table_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
