file(REMOVE_RECURSE
  "librev_bench_suite.a"
)
