# Empty dependencies file for rev_bench_suite.
# This may be replaced when dependencies are built.
