file(REMOVE_RECURSE
  "CMakeFiles/rev_bench_suite.dir/golden.cpp.o"
  "CMakeFiles/rev_bench_suite.dir/golden.cpp.o.d"
  "CMakeFiles/rev_bench_suite.dir/suite.cpp.o"
  "CMakeFiles/rev_bench_suite.dir/suite.cpp.o.d"
  "CMakeFiles/rev_bench_suite.dir/sweep_cache.cpp.o"
  "CMakeFiles/rev_bench_suite.dir/sweep_cache.cpp.o.d"
  "CMakeFiles/rev_bench_suite.dir/sweep_runner.cpp.o"
  "CMakeFiles/rev_bench_suite.dir/sweep_runner.cpp.o.d"
  "librev_bench_suite.a"
  "librev_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
