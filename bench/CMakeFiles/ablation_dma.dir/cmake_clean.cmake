file(REMOVE_RECURSE
  "CMakeFiles/ablation_dma.dir/ablation_dma.cpp.o"
  "CMakeFiles/ablation_dma.dir/ablation_dma.cpp.o.d"
  "ablation_dma"
  "ablation_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
