# Empty dependencies file for ablation_dma.
# This may be replaced when dependencies are built.
