file(REMOVE_RECURSE
  "CMakeFiles/ablation_table.dir/ablation_table.cpp.o"
  "CMakeFiles/ablation_table.dir/ablation_table.cpp.o.d"
  "ablation_table"
  "ablation_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
