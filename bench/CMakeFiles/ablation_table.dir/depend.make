# Empty dependencies file for ablation_table.
# This may be replaced when dependencies are built.
