file(REMOVE_RECURSE
  "CMakeFiles/fig10_sc_misses.dir/fig10_sc_misses.cpp.o"
  "CMakeFiles/fig10_sc_misses.dir/fig10_sc_misses.cpp.o.d"
  "fig10_sc_misses"
  "fig10_sc_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sc_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
