# Empty dependencies file for fig10_sc_misses.
# This may be replaced when dependencies are built.
