# Empty dependencies file for ablation_sc.
# This may be replaced when dependencies are built.
