file(REMOVE_RECURSE
  "CMakeFiles/ablation_sc.dir/ablation_sc.cpp.o"
  "CMakeFiles/ablation_sc.dir/ablation_sc.cpp.o.d"
  "ablation_sc"
  "ablation_sc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
