/**
 * @file
 * Figure 6: IPCs for the base case and REV with 32 KB / 64 KB signature
 * caches across the SPEC 2006 stand-ins.
 *
 * The paper does not tabulate absolute IPC values; the properties to
 * reproduce are (a) REV's IPC tracks the base IPC closely for most
 * benchmarks, (b) the 64 KB SC closes part of the remaining gap, and
 * (c) gcc/gobmk show the largest gaps.
 */

#include <cstdio>

#include "bench/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace rev::bench;
    const Sweep s = runSweep(sweepOptionsFromArgs(argc, argv));

    printHeader("Figure 6 -- IPC: base vs REV (32 KB SC) vs REV (64 KB SC)",
                "Sec. VIII, Fig. 6");
    std::printf("%-12s %10s %10s %10s\n", "benchmark", "base", "rev-32K",
                "rev-64K");
    double gbase = 0, g32 = 0, g64 = 0;
    for (const auto &b : s.benchmarks) {
        const double base = s.at(b, Config::Base).ipc;
        const double r32 = s.at(b, Config::Full32).ipc;
        const double r64 = s.at(b, Config::Full64).ipc;
        gbase += base;
        g32 += r32;
        g64 += r64;
        std::printf("%-12s %10.3f %10.3f %10.3f\n", b.c_str(), base, r32,
                    r64);
    }
    const double n = static_cast<double>(s.benchmarks.size());
    std::printf("%-12s %10.3f %10.3f %10.3f\n", "mean", gbase / n, g32 / n,
                g64 / n);
    std::printf("\nExpected shape: rev-64K >= rev-32K, both close to base "
                "except gcc/gobmk.\n");
    return 0;
}
