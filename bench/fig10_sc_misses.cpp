/**
 * @file
 * Figure 10: signature-cache miss counts (32 KB SC).
 *
 * Paper: gcc and gobmk have by far the highest SC miss counts (gobmk more
 * than gcc), and overheads correlate with these counts.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace rev::bench;
    using rev::u64;
    const Sweep s = runSweep(sweepOptionsFromArgs(argc, argv));

    printHeader("Figure 10 -- signature cache miss counts (32 KB SC)",
                "Sec. VIII, Fig. 10");
    std::printf("%-12s %12s %12s %12s %12s\n", "benchmark", "complete",
                "partial", "total", "ovh-32K%");
    std::vector<std::pair<u64, std::string>> ranked;
    for (const auto &b : s.benchmarks) {
        const auto &r = s.at(b, Config::Full32);
        ranked.push_back({r.scMisses(), b});
        std::printf("%-12s %12llu %12llu %12llu %12.2f\n", b.c_str(),
                    static_cast<unsigned long long>(r.scCompleteMisses),
                    static_cast<unsigned long long>(r.scPartialMisses),
                    static_cast<unsigned long long>(r.scMisses()),
                    overheadPct(s, b, Config::Full32));
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("\nHighest SC miss counts: %s, %s (paper: gobmk, gcc)\n",
                ranked[0].second.c_str(), ranked[1].second.c_str());
    return 0;
}
