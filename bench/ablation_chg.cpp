/**
 * @file
 * Ablation: CHG latency H vs the fetch-to-commit depth S (Sec. VI).
 *
 * The paper argues H <= S = 16 lets hash generation overlap entirely with
 * the pipeline, and that for larger H one would add dummy post-commit
 * stages. This sweep shows overhead is flat for H <= S and climbs once
 * the digest becomes the commit bottleneck.
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "workloads/generator.hpp"

int
main()
{
    using namespace rev;
    constexpr u64 kBudget = 500'000;

    std::printf("=============================================================="
                "==================\n");
    std::printf("Ablation -- CHG latency H vs pipeline depth S=16 "
                "(IPC overhead %%)\n");
    std::printf("=============================================================="
                "==================\n");
    std::printf("%-10s", "bench");
    for (unsigned h : {4, 8, 16, 24, 32, 48})
        std::printf("   H=%-4u", h);
    std::printf("\n");

    for (const char *name : {"bzip2", "soplex", "gcc"}) {
        const prog::Program program =
            workloads::generateWorkload(workloads::specProfile(name));
        core::SimConfig base;
        base.withRev = false;
        base.core.maxInstrs = kBudget;
        const double base_ipc =
            core::Simulator(program, base).run().run.ipc();

        std::printf("%-10s", name);
        for (unsigned h : {4, 8, 16, 24, 32, 48}) {
            core::SimConfig cfg;
            cfg.core.maxInstrs = kBudget;
            cfg.rev.chg.latency = h;
            const double ipc =
                core::Simulator(program, cfg).run().run.ipc();
            std::printf(" %8.2f", 100.0 * (base_ipc - ipc) / base_ipc);
        }
        std::printf("\n");
    }
    std::printf("\nExpected: flat through H=16 (fully overlapped), rising "
                "beyond as commits\nwait on the digest -- the paper's "
                "motivation for matching H to S.\n");
    return 0;
}
