/**
 * @file
 * Sec. VIII basic-block statistics: static block counts, instructions per
 * block, successors per block.
 *
 * Paper anchors: blocks range 20266 (mcf) .. 92218 (gamess);
 * instructions/block 5.5 (mcf) .. 10.02 (gamess); successors/block
 * 1.68 (soplex) .. 3.339 (gamess).
 */

#include <cstdio>

#include "bench/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace rev::bench;
    const Sweep s = runSweep(sweepOptionsFromArgs(argc, argv));

    printHeader("Sec. VIII -- static basic-block statistics",
                "blocks 20266(mcf)..92218(gamess); inst/BB 5.5..10.02; "
                "succ/BB 1.68(soplex)..3.34");
    std::printf("%-12s %10s %12s %10s %10s %12s\n", "benchmark", "blocks",
                "terminators", "inst/BB", "succ/BB", "code-bytes");
    for (const auto &b : s.benchmarks) {
        const auto &st = s.statics.at(b);
        std::printf("%-12s %10llu %12llu %10.2f %10.2f %12llu\n",
                    b.c_str(),
                    static_cast<unsigned long long>(st.numBlocks),
                    static_cast<unsigned long long>(st.numTerminators),
                    st.instrsPerBlock, st.succsPerBlock,
                    static_cast<unsigned long long>(st.codeBytes));
    }

    const auto &mcf = s.statics.at("mcf");
    const auto &gamess = s.statics.at("gamess");
    std::printf("\nAnchors: mcf %llu blocks (paper 20266), gamess %llu "
                "(paper 92218)\n",
                static_cast<unsigned long long>(mcf.numBlocks),
                static_cast<unsigned long long>(gamess.numBlocks));
    return 0;
}
