/**
 * @file
 * Figure 9: number of unique branches encountered during execution --
 * the SC working-set driver.
 *
 * Paper: gcc's unique-branch count is very high compared to the others
 * (with gobmk similar); the low-overhead group has small sets.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace rev::bench;
    using rev::u64;
    const Sweep s = runSweep(sweepOptionsFromArgs(argc, argv));

    printHeader("Figure 9 -- unique branches during execution",
                "Sec. VIII, Fig. 9");
    std::printf("%-12s %14s %18s\n", "benchmark", "unique",
                "fits 32K SC (2048)?");
    std::vector<std::pair<u64, std::string>> ranked;
    for (const auto &b : s.benchmarks) {
        const u64 uniq = s.at(b, Config::Full32).uniqueBranches;
        ranked.push_back({uniq, b});
        std::printf("%-12s %14llu %18s\n", b.c_str(),
                    static_cast<unsigned long long>(uniq),
                    uniq < 2048 ? "yes" : "NO");
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("\nLargest unique-branch sets: %s, %s "
                "(paper: gcc, gobmk)\n",
                ranked[0].second.c_str(), ranked[1].second.c_str());
    return 0;
}
