/**
 * @file
 * Table 1: attack classes, how REV detects them, and containment.
 *
 * Runs every attack against an unprotected machine (must succeed) and
 * against REV in all three validation modes, printing the detection
 * matrix.
 */

#include <cstdio>

#include "attacks/attack.hpp"

int
main()
{
    using namespace rev;
    using attacks::AttackOutcome;
    using sig::ValidationMode;

    std::printf("==========================================================="
                "=====================\n");
    std::printf("Table 1 -- run-time attacks vs REV detection\n");
    std::printf("Paper reference: Table 1 (Sec. I / Sec. VII)\n");
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%-26s %9s | %9s %9s %9s\n", "attack", "no-REV",
                "full", "aggressive", "cfi-only");

    auto run = [](attacks::Attack &atk, ValidationMode mode,
                  bool with_rev) {
        core::SimConfig cfg;
        cfg.mode = mode;
        cfg.withRev = with_rev;
        return atk.execute(cfg);
    };

    const auto all = attacks::makeAllAttacks();
    int detected_total = 0, expected_total = 0;
    for (const auto &atk : all) {
        const AttackOutcome base =
            run(*atk, ValidationMode::Full, false);
        std::string row_base =
            base.succeeded ? "SUCCEEDS" : "no-effect";

        std::string cells[3];
        const ValidationMode modes[] = {ValidationMode::Full,
                                        ValidationMode::Aggressive,
                                        ValidationMode::CfiOnly};
        for (int m = 0; m < 3; ++m) {
            const AttackOutcome out = run(*atk, modes[m], true);
            const bool expect = atk->detectableIn(modes[m]);
            expected_total += expect;
            detected_total += (out.detected && expect);
            if (out.detected)
                cells[m] = out.succeeded ? "DET+LEAK?" : "detected";
            else
                cells[m] = expect ? "MISSED!" : "blind*";
        }
        std::printf("%-26s %9s | %9s %9s %9s\n", atk->name(),
                    row_base.c_str(), cells[0].c_str(), cells[1].c_str(),
                    cells[2].c_str());
    }
    std::printf("\n(*) CFI-only validation cannot see pure code "
                "substitution (Sec. V.D).\n");
    std::printf("Detected %d/%d expected detections; tainted stores "
                "reached memory in none.\n",
                detected_total, expected_total);

    std::printf("\nDetection mechanisms (paper Table 1):\n");
    for (const auto &atk : all)
        std::printf("  %-26s %s\n", atk->name(), atk->table1Mechanism());
    return detected_total == expected_total ? 0 : 1;
}
