/**
 * @file
 * Shared benchmark sweep for the paper-reproduction harnesses.
 *
 * Every figure/table binary consumes the same underlying experiment: the
 * 15 SPEC stand-ins, each simulated under the base core and under REV in
 * several configurations (Full with 32/64 KB SC, Aggressive with 32/64 KB,
 * CFI-only with 32 KB). The sweep is computed once and cached on disk
 * (rev_bench_cache.txt in the working directory) so that running all
 * bench binaries in sequence only pays for simulation once. Delete the
 * cache file to force a re-run.
 */

#ifndef REV_BENCH_SUITE_HPP
#define REV_BENCH_SUITE_HPP

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rev::bench
{

/** Simulated configurations. */
enum class Config
{
    Base,   ///< no REV
    Full32, ///< REV, full validation, 32 KB SC
    Full64,
    Agg32, ///< aggressive validation (Sec. V.C)
    Agg64,
    Cfi32, ///< CFI-only validation (Sec. V.D)
};

inline constexpr Config kAllConfigs[] = {Config::Base,  Config::Full32,
                                         Config::Full64, Config::Agg32,
                                         Config::Agg64, Config::Cfi32};

const char *configName(Config c);

/** One (benchmark, config) measurement. */
struct RunNumbers
{
    double ipc = 0;
    u64 cycles = 0;
    u64 instrs = 0;
    u64 committedBranches = 0;
    u64 uniqueBranches = 0;
    u64 mispredicts = 0;
    u64 scCompleteMisses = 0;
    u64 scPartialMisses = 0;
    u64 commitStallCycles = 0;
    u64 scFillAccesses = 0;
    u64 scFillL1Misses = 0;
    u64 scFillL2Misses = 0;
    u64 violations = 0;

    u64 scMisses() const { return scCompleteMisses + scPartialMisses; }
};

/** Static per-benchmark facts (independent of the simulated config). */
struct StaticNumbers
{
    u64 numBlocks = 0;
    u64 numTerminators = 0;
    double instrsPerBlock = 0;
    double succsPerBlock = 0;
    u64 codeBytes = 0;
    u64 computedSites = 0;
    u64 branchSites = 0;
    u64 tableBytesFull = 0;
    u64 tableBytesAggressive = 0;
    u64 tableBytesCfi = 0;
};

/** The whole sweep. */
struct Sweep
{
    std::vector<std::string> benchmarks; ///< paper order
    std::map<std::string, StaticNumbers> statics;
    std::map<std::pair<std::string, Config>, RunNumbers> runs;

    const RunNumbers &
    at(const std::string &bench, Config c) const
    {
        return runs.at({bench, c});
    }
};

/** Instructions simulated per benchmark per config. */
inline constexpr u64 kInstrBudget = 2'000'000;

/**
 * Compute (or load from cache) the full sweep.
 * @param quick Restrict to three benchmarks and a small budget (tests).
 */
const Sweep &fullSweep(bool quick = false);

/** Percentage IPC overhead of @p cfg relative to the base run. */
double overheadPct(const Sweep &s, const std::string &bench, Config cfg);

/** Print a standard table header for bench binaries. */
void printHeader(const std::string &title, const std::string &paper_ref);

} // namespace rev::bench

#endif // REV_BENCH_SUITE_HPP
