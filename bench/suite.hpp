/**
 * @file
 * Shared benchmark sweep for the paper-reproduction harnesses.
 *
 * Every figure/table binary consumes the same underlying experiment: the
 * 15 SPEC stand-ins, each simulated under the base core and under REV in
 * several configurations (Full with 32/64 KB SC, Aggressive with 32/64 KB,
 * CFI-only with 32 KB). The 90 (benchmark, config) jobs are mutually
 * independent, so the sweep engine (SweepRunner) fans them out across a
 * worker pool and collects results deterministically — parallel output is
 * identical to a serial run.
 *
 * Entry point: runSweep(SweepOptions). Options select the benchmark
 * subset, instruction budget, thread count, and the on-disk cache.
 * Completed jobs are cached in rev_bench_cache.txt keyed by a hash of the
 * full simulation configuration and workload profile, so editing any knob
 * invalidates exactly the affected jobs and untouched ones are reused.
 */

#ifndef REV_BENCH_SUITE_HPP
#define REV_BENCH_SUITE_HPP

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/simulator.hpp"

namespace rev::bench
{

/** Simulated configurations. */
enum class Config
{
    Base,   ///< no REV
    Full32, ///< REV, full validation, 32 KB SC
    Full64,
    Agg32, ///< aggressive validation (Sec. V.C)
    Agg64,
    Cfi32, ///< CFI-only validation (Sec. V.D)
};

inline constexpr Config kAllConfigs[] = {Config::Base,  Config::Full32,
                                         Config::Full64, Config::Agg32,
                                         Config::Agg64, Config::Cfi32};

const char *configName(Config c);

/** The core::SimConfig a sweep uses for @p c at @p budget instructions. */
core::SimConfig sweepSimConfig(Config c, u64 budget);

/** One (benchmark, config) measurement. */
struct RunNumbers
{
    double ipc = 0;
    u64 cycles = 0;
    u64 instrs = 0;
    u64 committedBranches = 0;
    u64 uniqueBranches = 0;
    u64 mispredicts = 0;
    u64 scCompleteMisses = 0;
    u64 scPartialMisses = 0;
    u64 commitStallCycles = 0;
    u64 scFillAccesses = 0;
    u64 scFillL1Misses = 0;
    u64 scFillL2Misses = 0;
    u64 violations = 0;

    u64 scMisses() const { return scCompleteMisses + scPartialMisses; }

    bool operator==(const RunNumbers &) const = default;
};

/** Static per-benchmark facts (independent of the simulated config). */
struct StaticNumbers
{
    u64 numBlocks = 0;
    u64 numTerminators = 0;
    double instrsPerBlock = 0;
    double succsPerBlock = 0;
    u64 codeBytes = 0;
    u64 computedSites = 0;
    u64 branchSites = 0;
    u64 tableBytesFull = 0;
    u64 tableBytesAggressive = 0;
    u64 tableBytesCfi = 0;

    bool operator==(const StaticNumbers &) const = default;
};

/** The whole sweep. */
struct Sweep
{
    std::vector<std::string> benchmarks; ///< paper order
    std::map<std::string, StaticNumbers> statics;
    std::map<std::pair<std::string, Config>, RunNumbers> runs;

    const RunNumbers &
    at(const std::string &bench, Config c) const
    {
        return runs.at({bench, c});
    }

    bool operator==(const Sweep &) const = default;
};

/** Instructions simulated per benchmark per config. */
inline constexpr u64 kInstrBudget = 2'000'000;

/** Instruction budget of the quick (smoke-test) sweep. */
inline constexpr u64 kQuickInstrBudget = 100'000;

/**
 * How to run a sweep. The default-constructed options reproduce the
 * paper sweep: all 15 stand-ins, 2 M instructions per run, as many
 * worker threads as the hardware offers, results cached on disk.
 */
struct SweepOptions
{
    /** Benchmark subset (paper order preserved); empty = all 15. */
    std::vector<std::string> benchmarks;

    /** Committed-instruction budget per (benchmark, config) run. */
    u64 instrBudget = kInstrBudget;

    /**
     * Worker threads for the job fan-out. 0 = the REV_BENCH_THREADS
     * environment variable if set, else std::thread::hardware_concurrency.
     * 1 forces the fully serial path (no threads spawned).
     */
    unsigned threads = 0;

    /** Load/refresh the on-disk job cache. */
    bool useCache = true;

    /** Cache location. */
    std::string cachePath = "rev_bench_cache.txt";

    /** Per-job progress lines on stderr. */
    bool progress = true;

    /**
     * Validation backend applied to every with-validation config of the
     * sweep (the Base config always runs without one). Part of the
     * cache key, so switching backends never mixes cached numbers.
     */
    validate::Backend backend = validate::Backend::Rev;

    /** Three benchmarks at a small budget, no cache (tests / CI smoke). */
    static SweepOptions quick();
};

/**
 * Compute the sweep described by @p opts. Results are keyed by
 * (benchmark, config) independent of job completion order, so the
 * returned Sweep is identical for any thread count.
 */
Sweep runSweep(const SweepOptions &opts = {});

/**
 * Parse the standard bench-binary command line into SweepOptions:
 *
 *   --quick            3 benchmarks, small budget, cache off
 *   --no-cache         ignore and do not write rev_bench_cache.txt
 *   --threads N        worker threads (default: REV_BENCH_THREADS or all)
 *   --instrs N         per-run committed-instruction budget
 *   --bench a,b,c      benchmark subset
 *   --cache PATH       cache file location
 *   --backend NAME     validation backend (rev, lofat, null)
 *   --list-backends    print the registered backends and exit
 *
 * Prints usage and exits on --help or an unknown flag.
 */
SweepOptions sweepOptionsFromArgs(int argc, char **argv);

/** Percentage IPC overhead of @p cfg relative to the base run. */
double overheadPct(const Sweep &s, const std::string &bench, Config cfg);

/** Print a standard table header for bench binaries. */
void printHeader(const std::string &title, const std::string &paper_ref);

} // namespace rev::bench

#endif // REV_BENCH_SUITE_HPP
