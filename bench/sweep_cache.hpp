/**
 * @file
 * On-disk cache for sweep jobs, keyed precisely.
 *
 * The old cache keyed on (format version, instruction budget) only, so
 * editing any SimConfig knob — SC geometry, predictor sizes, hash
 * rounds — silently served stale numbers. Records are now keyed by a
 * 64-bit FNV-1a hash over a canonical text serialization of the full
 * simulation configuration and the workload profile. Any knob change
 * produces a different key, misses the cache, and re-simulates exactly
 * the affected jobs; untouched (benchmark, config) records keep hitting
 * (partial reuse). Multiple records per (benchmark, config) may coexist
 * (e.g. two budgets), distinguished by key.
 */

#ifndef REV_BENCH_SWEEP_CACHE_HPP
#define REV_BENCH_SWEEP_CACHE_HPP

#include <map>
#include <string>
#include <tuple>

#include "bench/suite.hpp"
#include "workloads/profile.hpp"

namespace rev::bench
{

/** 64-bit FNV-1a over @p s. */
u64 fnv1a64(const std::string &s);

/**
 * Canonical "name=value" serialization of every result-affecting knob in
 * @p cfg. New knobs must be added here to participate in cache keying
 * (sweep_cache_test pins the field count as a tripwire).
 */
std::string describeSimConfig(const core::SimConfig &cfg);

/** Canonical serialization of every generation knob in @p p. */
std::string describeProfile(const workloads::WorkloadProfile &p);

/** Cache key of one (benchmark, config) simulation job. */
u64 runCacheKey(const workloads::WorkloadProfile &p,
                const core::SimConfig &cfg);

/** Cache key of a benchmark's static (CFG-derived) facts. */
u64 staticCacheKey(const workloads::WorkloadProfile &p);

/** One cached measurement plus the signature-table footprint of its run. */
struct CachedRun
{
    RunNumbers numbers;
    u64 sigTableBytes = 0;

    bool operator==(const CachedRun &) const = default;
};

/**
 * The cache itself: a load/lookup/insert/save map persisted as a small
 * text file. Not internally synchronized — the sweep runner queries it
 * before the fan-out and inserts after, on one thread.
 */
class SweepCache
{
  public:
    explicit SweepCache(std::string path) : path_(std::move(path)) {}

    /** Read the file; false (and empty cache) if missing or malformed. */
    bool load();

    /** Write every record back. False on I/O failure. */
    bool save() const;

    const CachedRun *findRun(const std::string &bench, Config c,
                             u64 key) const;
    const StaticNumbers *findStatic(const std::string &bench, u64 key) const;

    void putRun(const std::string &bench, Config c, u64 key,
                const CachedRun &run);
    void putStatic(const std::string &bench, u64 key,
                   const StaticNumbers &st);

    std::size_t runCount() const { return runs_.size(); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::map<std::tuple<std::string, Config, u64>, CachedRun> runs_;
    std::map<std::pair<std::string, u64>, StaticNumbers> statics_;
};

} // namespace rev::bench

#endif // REV_BENCH_SWEEP_CACHE_HPP
