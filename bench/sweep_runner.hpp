/**
 * @file
 * The parallel sweep execution engine.
 *
 * A sweep is a fixed job matrix: |benchmarks| x |kAllConfigs| mutually
 * independent simulations. SweepRunner materializes the matrix up front,
 * satisfies what it can from the SweepCache, fans the remaining jobs out
 * over a worker pool (common/parallel.hpp), and assembles the Sweep from
 * per-job result slots — keyed by job index, never by completion order,
 * so any thread count produces the identical Sweep.
 *
 * Execute once, time many: the committed instruction stream of a
 * benchmark is identical for every timing config (the core is
 * execute-functional, timing-directed), so per benchmark the first
 * uncached REV job records an architectural trace (program/trace.hpp)
 * and the remaining configs replay it instead of re-executing semantics.
 * Non-replayable recordings (self-modifying code, violations) and jobs
 * whose trace fails attachment validation silently run direct; setting
 * REV_TRACE_REPLAY=0 disables the whole mechanism. Traces larger than
 * REV_TRACE_SPILL_MB (default 64) are spilled to a temp file between the
 * record and replay phases instead of held in memory.
 *
 * Load once, fork many: each benchmark's memory image (program bytes,
 * plus the loaded signature tables per validation mode) is deposited
 * into one shared SparseMemory and every job COW-forks it through
 * SimConfig::memoryImage — O(pages touched) per job instead of
 * re-loading the full footprint.
 */

#ifndef REV_BENCH_SWEEP_RUNNER_HPP
#define REV_BENCH_SWEEP_RUNNER_HPP

#include <vector>

#include "bench/suite.hpp"

namespace rev::bench
{

/** Wall-time accounting for one (benchmark, config) job. */
struct JobTiming
{
    std::string bench;
    Config config = Config::Base;
    double wallSeconds = 0; ///< 0 for cache hits
    bool fromCache = false;
    bool replayed = false; ///< timed against a recorded trace
};

/** Host wall-clock per phase of the last run() (simperf breakdown). */
struct SweepPhaseTimings
{
    double generateSeconds = 0; ///< workload generation
    double protoSeconds = 0;    ///< signature-table prototype builds + statics
    double imageSeconds = 0;    ///< shared warmed memory-image loads
    double recordSeconds = 0;   ///< trace-recording simulations
    double replaySeconds = 0;   ///< remaining simulations (replayed or direct)
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts);

    /** Execute the sweep. Callable once per runner. */
    Sweep run();

    /** Per-job wall times of the last run(), in job order. */
    const std::vector<JobTiming> &timings() const { return timings_; }

    /** Host seconds per phase of the last run(). */
    const SweepPhaseTimings &phaseTimings() const { return phases_; }

    /** Worker threads the fan-out actually used. */
    unsigned threadsUsed() const { return threadsUsed_; }

    /** Jobs served from the cache in the last run(). */
    std::size_t cacheHits() const { return cacheHits_; }

  private:
    SweepOptions opts_;
    std::vector<JobTiming> timings_;
    SweepPhaseTimings phases_;
    unsigned threadsUsed_ = 1;
    std::size_t cacheHits_ = 0;
};

} // namespace rev::bench

#endif // REV_BENCH_SWEEP_RUNNER_HPP
