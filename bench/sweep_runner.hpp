/**
 * @file
 * The parallel sweep execution engine.
 *
 * A sweep is a fixed job matrix: |benchmarks| x |kAllConfigs| mutually
 * independent simulations. SweepRunner materializes the matrix up front,
 * satisfies what it can from the SweepCache, fans the remaining jobs out
 * over a worker pool (common/parallel.hpp), and assembles the Sweep from
 * per-job result slots — keyed by job index, never by completion order,
 * so any thread count produces the identical Sweep.
 */

#ifndef REV_BENCH_SWEEP_RUNNER_HPP
#define REV_BENCH_SWEEP_RUNNER_HPP

#include <vector>

#include "bench/suite.hpp"

namespace rev::bench
{

/** Wall-time accounting for one (benchmark, config) job. */
struct JobTiming
{
    std::string bench;
    Config config = Config::Base;
    double wallSeconds = 0; ///< 0 for cache hits
    bool fromCache = false;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts);

    /** Execute the sweep. Callable once per runner. */
    Sweep run();

    /** Per-job wall times of the last run(), in job order. */
    const std::vector<JobTiming> &timings() const { return timings_; }

    /** Worker threads the fan-out actually used. */
    unsigned threadsUsed() const { return threadsUsed_; }

    /** Jobs served from the cache in the last run(). */
    std::size_t cacheHits() const { return cacheHits_; }

  private:
    SweepOptions opts_;
    std::vector<JobTiming> timings_;
    unsigned threadsUsed_ = 1;
    std::size_t cacheHits_ = 0;
};

} // namespace rev::bench

#endif // REV_BENCH_SWEEP_RUNNER_HPP
