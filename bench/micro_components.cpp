/**
 * @file
 * google-benchmark microbenchmarks of the hot simulator components:
 * CubeHash (the CHG function), AES-CTR (table decryption), SC probes,
 * cache/TLB accesses, signature-table lookups, and end-to-end simulator
 * throughput.
 */

#include <benchmark/benchmark.h>

#include "core/simulator.hpp"
#include "crypto/aes.hpp"
#include "crypto/cubehash.hpp"
#include "mem/memsys.hpp"
#include "sig/sigstore.hpp"
#include "workloads/generator.hpp"

namespace
{

using namespace rev;

void
BM_CubeHashBlock(benchmark::State &state)
{
    std::vector<u8> data(static_cast<std::size_t>(state.range(0)), 0xab);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::CubeHash::hash(data.data(), data.size(), 5));
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_CubeHashBlock)->Arg(40)->Arg(64)->Arg(256);

void
BM_AesCtr(benchmark::State &state)
{
    crypto::AesKey key{};
    crypto::Aes128 aes(key);
    std::vector<u8> data(static_cast<std::size_t>(state.range(0)), 0x55);
    u64 nonce = 0;
    for (auto _ : state)
        aes.ctrCrypt(data, ++nonce);
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(16)->Arg(4096);

void
BM_ScProbe(benchmark::State &state)
{
    validate::SignatureCache sc;
    Rng rng(1);
    for (int i = 0; i < 2048; ++i)
        sc.insert(0x10000 + rng.below(1 << 20), 0x10000);
    u64 addr = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sc.probe(addr, 0x10000));
        addr += 7;
    }
}
BENCHMARK(BM_ScProbe);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::SetAssocCache cache("bm", 64 * 1024, 4, 64);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.next() & 0xfffff, false));
}
BENCHMARK(BM_CacheAccess);

void
BM_MemorySystemAccess(benchmark::State &state)
{
    mem::MemorySystem ms;
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ms.access(rng.next() & 0x3fffff,
                                           mem::AccessType::DataRead,
                                           ++now));
    }
}
BENCHMARK(BM_MemorySystemAccess);

void
BM_TableLookup(benchmark::State &state)
{
    workloads::WorkloadProfile prof;
    prof.name = "bm";
    prof.numFunctions = 256;
    prof.entryFunctions = 4;
    prof.mainIterations = 1;
    const prog::Program program = workloads::generateWorkload(prof);
    crypto::KeyVault vault(1);
    sig::SigStore store(program, sig::ValidationMode::Full, vault);
    SparseMemory mem;
    store.loadInto(mem);
    const auto &ms = store.moduleSigs().front();
    sig::TableReader reader(mem, ms.tableBase, vault);

    const auto &blocks = ms.cfg.blocks();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &bb = blocks[i++ % blocks.size()];
        benchmark::DoNotOptimize(
            reader.lookup(bb.term, sig::bbHash(*ms.module, bb, 5), ms.module->base));
    }
}
BENCHMARK(BM_TableLookup);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    workloads::WorkloadProfile prof;
    prof.name = "bm";
    prof.numFunctions = 256;
    prof.entryFunctions = 4;
    prof.hotReach = 16;
    const prog::Program program = workloads::generateWorkload(prof);

    const bool with_rev = state.range(0) != 0;
    u64 instrs = 0;
    for (auto _ : state) {
        core::SimConfig cfg;
        cfg.withRev = with_rev;
        cfg.core.maxInstrs = 50'000;
        core::Simulator sim(program, cfg);
        const auto r = sim.run();
        instrs += r.run.instrs;
    }
    state.counters["instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
