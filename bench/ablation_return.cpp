/**
 * @file
 * Ablation: return-edge validation scheme -- the paper's delayed
 * predecessor check (Sec. V.A, contribution #4: "does not rely on the use
 * of a shadow call stack") vs a conventional shadow call stack.
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "workloads/generator.hpp"

int
main()
{
    using namespace rev;
    constexpr u64 kBudget = 500'000;

    std::printf("=============================================================="
                "==================\n");
    std::printf("Ablation -- return validation: delayed predecessor "
                "(paper) vs shadow stack\n");
    std::printf("=============================================================="
                "==================\n");
    std::printf("%-10s %12s %12s %10s %10s\n", "bench", "delayed-ovh%",
                "shadow-ovh%", "spills", "refills");

    for (const char *name : {"bzip2", "mcf", "h264ref", "gcc", "gobmk"}) {
        const prog::Program program =
            workloads::generateWorkload(workloads::specProfile(name));
        core::SimConfig base;
        base.withRev = false;
        base.core.maxInstrs = kBudget;
        const double base_ipc =
            core::Simulator(program, base).run().run.ipc();

        core::SimConfig delayed;
        delayed.core.maxInstrs = kBudget;
        const auto rd = core::Simulator(program, delayed).run();

        core::SimConfig shadow;
        shadow.core.maxInstrs = kBudget;
        shadow.rev.returnValidation = validate::ReturnValidation::ShadowStack;
        const auto rs = core::Simulator(program, shadow).run();

        std::printf("%-10s %12.2f %12.2f %10llu %10llu\n", name,
                    100.0 * (base_ipc - rd.run.ipc()) / base_ipc,
                    100.0 * (base_ipc - rs.run.ipc()) / base_ipc,
                    static_cast<unsigned long long>(rs.rev.shadowSpills),
                    static_cast<unsigned long long>(rs.rev.shadowRefills));
    }

    std::printf("\nBoth schemes authenticate every return; the paper's "
                "delayed check needs no\nshadow structure (no spills at any "
                "call depth) at the cost of predecessor\nlists in the table "
                "and MRU partial misses.\n");
    return 0;
}
