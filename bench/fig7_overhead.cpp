/**
 * @file
 * Figure 7: IPC overhead (% of base IPC) of REV for 32 KB and 64 KB
 * signature caches.
 *
 * Paper anchors: average overhead 1.87% (32 KB) and 1.63% (64 KB); every
 * benchmark except gcc and gobmk below 5%; gobmk worst at about 15%.
 */

#include <cstdio>

#include "bench/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace rev::bench;
    const Sweep s = runSweep(sweepOptionsFromArgs(argc, argv));

    printHeader("Figure 7 -- IPC overhead (%) vs base for REV",
                "Sec. VIII, Fig. 7; avg 1.87% @32K, 1.63% @64K, gobmk ~15%");
    std::printf("%-12s %10s %10s\n", "benchmark", "ovh-32K%", "ovh-64K%");

    double sum32 = 0, sum64 = 0;
    std::string worst;
    double worst32 = -1;
    for (const auto &b : s.benchmarks) {
        const double o32 = overheadPct(s, b, Config::Full32);
        const double o64 = overheadPct(s, b, Config::Full64);
        sum32 += o32;
        sum64 += o64;
        if (o32 > worst32) {
            worst32 = o32;
            worst = b;
        }
        std::printf("%-12s %10.2f %10.2f\n", b.c_str(), o32, o64);
    }
    const double n = static_cast<double>(s.benchmarks.size());
    std::printf("%-12s %10.2f %10.2f   (paper: 1.87 / 1.63)\n", "average",
                sum32 / n, sum64 / n);
    std::printf("\nWorst case: %s at %.2f%% (paper: gobmk at ~15%%)\n",
                worst.c_str(), worst32);
    std::printf("64K <= 32K per benchmark: %s\n", [&] {
        for (const auto &b : s.benchmarks)
            if (overheadPct(s, b, Config::Full64) >
                overheadPct(s, b, Config::Full32) + 0.8)
                return "NO";
        return "yes";
    }());
    return 0;
}
