/**
 * @file
 * Sec. VI hardware cost estimates: area and power overhead of the REV
 * structures over a base out-of-order core.
 *
 * Paper anchors: ~7.2% core dynamic power, ~8% core area, <5.5% power at
 * chip level (shared L3 + I/O included); sharing the crypto units with
 * the core lowers all of these.
 */

#include <cstdio>

#include "core/costmodel.hpp"

int
main()
{
    using namespace rev::core;

    std::printf("==========================================================="
                "=====================\n");
    std::printf("Sec. VI -- REV hardware cost estimates\n");
    std::printf("==========================================================="
                "=====================\n");

    auto row = [](const char *label, const CostEstimate &e) {
        std::printf("%-34s %8.2f mm2 %8.3f W %8.1f%% %8.1f%% %8.1f%%\n",
                    label, e.revAreaMm2, e.revPowerW,
                    100.0 * e.coreAreaOverhead, 100.0 * e.corePowerOverhead,
                    100.0 * e.chipPowerOverhead);
    };

    std::printf("%-34s %12s %10s %9s %9s %9s\n", "configuration", "REV area",
                "REV power", "area-ovh", "core-pwr", "chip-pwr");

    CostInputs base;
    row("32 KB SC, private crypto", estimateCost(base));

    CostInputs sc64 = base;
    sc64.scBytes = 64 * 1024;
    row("64 KB SC, private crypto", estimateCost(sc64));

    CostInputs shared = base;
    shared.shareCryptoWithCore = true;
    row("32 KB SC, shared crypto", estimateCost(shared));

    std::printf("\nPaper anchors: ~8%% core area, ~7.2%% core power, "
                "<5.5%% chip power.\n");
    return 0;
}
