/**
 * @file
 * Signature table sizes as a fraction of the binary (Sec. V.B/V.C/V.D).
 *
 * Paper anchors:
 *  - default (full) tables: 15% .. 52% of the executable, average 37%
 *  - aggressive tables: 40% .. 65% (about double)
 *  - CFI-only tables: 3% .. 20%, average 9%; computed sites are ~10% of
 *    branch sites on average.
 */

#include <cstdio>

#include "bench/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace rev::bench;
    const Sweep s = runSweep(sweepOptionsFromArgs(argc, argv));

    printHeader("Sec. V -- signature table size as % of binary size",
                "full 15-52% (avg 37), aggressive 40-65%, CFI-only 3-20% "
                "(avg 9)");
    std::printf("%-12s %10s %10s %10s %14s\n", "benchmark", "full%",
                "aggr%", "cfi%", "computed/sites");
    double sum_f = 0, sum_a = 0, sum_c = 0, sum_dyn = 0;
    for (const auto &b : s.benchmarks) {
        const auto &st = s.statics.at(b);
        const double code = static_cast<double>(st.codeBytes);
        const double f = 100.0 * st.tableBytesFull / code;
        const double a = 100.0 * st.tableBytesAggressive / code;
        const double c = 100.0 * st.tableBytesCfi / code;
        const double dyn =
            100.0 * st.computedSites / static_cast<double>(st.branchSites);
        sum_f += f;
        sum_a += a;
        sum_c += c;
        sum_dyn += dyn;
        std::printf("%-12s %10.1f %10.1f %10.1f %13.1f%%\n", b.c_str(), f,
                    a, c, dyn);
    }
    const double n = static_cast<double>(s.benchmarks.size());
    std::printf("%-12s %10.1f %10.1f %10.1f %13.1f%%\n", "average",
                sum_f / n, sum_a / n, sum_c / n, sum_dyn / n);
    std::printf("\nPaper averages: full 37%%, CFI-only 9%%, computed sites "
                "~10%% of branches.\n");
    return 0;
}
