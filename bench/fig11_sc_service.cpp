/**
 * @file
 * Figure 11: cache miss statistics while servicing SC misses (32 KB SC).
 *
 * SC fills travel through the regular hierarchy (L1D extra port -> L2 ->
 * DRAM). Paper: gcc's (and gobmk's) fills miss the on-chip caches far more
 * often, compounding their SC miss counts; gobmk has more L1 misses than
 * gcc.
 */

#include <cstdio>

#include "bench/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace rev::bench;
    const Sweep s = runSweep(sweepOptionsFromArgs(argc, argv));

    printHeader(
        "Figure 11 -- memory-hierarchy behaviour of SC miss service (32 KB)",
        "Sec. VIII, Fig. 11");
    std::printf("%-12s %12s %12s %12s %10s %10s\n", "benchmark", "fills",
                "L1D-miss", "L2-miss", "L1-miss%", "L2-miss%");
    for (const auto &b : s.benchmarks) {
        const auto &r = s.at(b, Config::Full32);
        const double l1p = r.scFillAccesses
                               ? 100.0 * r.scFillL1Misses / r.scFillAccesses
                               : 0.0;
        const double l2p = r.scFillL1Misses
                               ? 100.0 * r.scFillL2Misses / r.scFillL1Misses
                               : 0.0;
        std::printf("%-12s %12llu %12llu %12llu %10.1f %10.1f\n",
                    b.c_str(),
                    static_cast<unsigned long long>(r.scFillAccesses),
                    static_cast<unsigned long long>(r.scFillL1Misses),
                    static_cast<unsigned long long>(r.scFillL2Misses), l1p,
                    l2p);
    }
    std::printf("\nExpected: gcc/gobmk dominate fill traffic and miss the "
                "on-chip caches most.\n");
    return 0;
}
