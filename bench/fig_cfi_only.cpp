/**
 * @file
 * CFI-only validation overhead (Sec. V.D / Sec. VIII text).
 *
 * Paper: only 1-10% of executed branches are computed, giving a 0.04% to
 * 1.68% performance overhead across the SPEC benchmarks for CFI-only
 * validation.
 */

#include <cstdio>

#include "bench/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace rev::bench;
    const Sweep s = runSweep(sweepOptionsFromArgs(argc, argv));

    printHeader("CFI-only validation -- IPC overhead (%)",
                "Sec. VIII text: 0.04% .. 1.68% across SPEC");
    std::printf("%-12s %10s %14s %16s\n", "benchmark", "ovh%",
                "validated-BBs", "vs full-32K ovh%");
    double worst = 0, sum = 0;
    for (const auto &b : s.benchmarks) {
        const double o = overheadPct(s, b, Config::Cfi32);
        const auto &r = s.at(b, Config::Cfi32);
        worst = std::max(worst, o);
        sum += o;
        std::printf("%-12s %10.2f %14llu %16.2f\n", b.c_str(), o,
                    static_cast<unsigned long long>(r.scFillAccesses),
                    overheadPct(s, b, Config::Full32));
    }
    std::printf("%-12s %10.2f\n", "average",
                sum / static_cast<double>(s.benchmarks.size()));
    std::printf("\nWorst CFI-only overhead: %.2f%% (paper: <= 1.68%%)\n",
                worst);
    return 0;
}
