#include "bench/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include <unistd.h>

#include "bench/sweep_cache.hpp"
#include "common/parallel.hpp"
#include "program/trace.hpp"
#include "sig/sigstore.hpp"
#include "workloads/generator.hpp"

namespace rev::bench
{

namespace
{

constexpr std::size_t kNoJob = ~std::size_t{0};

/** Build inputs a signature-store prototype was derived from. */
struct ProtoParams
{
    u64 cpuSeed = 0;
    u64 toolchainSeed = 0;
    prog::SplitLimits limits;
    unsigned hashRounds = 0;

    bool operator==(const ProtoParams &) const = default;
};

/** Everything per-benchmark the job matrix needs. */
struct BenchPlan
{
    workloads::WorkloadProfile profile;
    u64 staticKey = 0;
    bool staticsFromCache = false;
    bool needProgram = false;
    std::optional<prog::Program> program;
    StaticNumbers statics;

    // Signature tables are deterministic in (program, mode, seeds,
    // limits, hash rounds), so configs differing only in timing
    // parameters share one build: prototypes are built once per mode
    // here, and each job's Simulator clones the matching one.
    std::optional<ProtoParams> protoParams;
    std::optional<crypto::KeyVault> protoVault;
    std::map<sig::ValidationMode, std::unique_ptr<sig::SigStore>> protos;

    // Warmed memory images, loaded once and COW-forked by every job
    // (SimConfig::memoryImage): the program image alone for non-REV
    // jobs, program + loaded tables per validation mode. Page versions
    // come out identical to a per-job load, so forked runs are
    // bit-identical to cold-loaded ones.
    bool hasImages = false;
    SparseMemory baseImage;
    std::map<sig::ValidationMode, SparseMemory> modeImages;

    // Execute-once state: the record job's trace, shared read-only by
    // every replay job of this benchmark. Spilled traces are reloaded
    // lazily by the first replay worker and released once the last one
    // finishes (traceUsers counts the outstanding phase-2b jobs).
    std::size_t recordJobIdx = kNoJob;
    std::shared_ptr<prog::Trace> trace;
    std::string spillPath;
    bool spilled = false;
    std::mutex traceMu;
    std::size_t traceUsers = 0;
};

ProtoParams
protoParamsOf(const core::SimConfig &cfg)
{
    return ProtoParams{cfg.cpuSeed, cfg.toolchainSeed, cfg.core.splitLimits,
                       cfg.rev.chg.hashRounds};
}

/** One cell of the job matrix. */
struct Job
{
    std::size_t benchIdx = 0;
    Config config = Config::Base;
    core::SimConfig cfg;
    u64 key = 0;
    bool cached = false;
    bool replayed = false;
    CachedRun result;
    double wallSeconds = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

std::size_t
spillThresholdBytes()
{
    const char *env = std::getenv("REV_TRACE_SPILL_MB");
    if (!env)
        return std::size_t{64} << 20;
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10)) << 20;
}

std::vector<workloads::WorkloadProfile>
selectProfiles(const std::vector<std::string> &wanted)
{
    auto all = workloads::spec2006Profiles();
    if (wanted.empty())
        return all;
    for (const auto &name : wanted) {
        bool known = false;
        for (const auto &p : all)
            known = known || p.name == name;
        if (!known)
            fatal("sweep: unknown benchmark '", name, "'");
    }
    std::vector<workloads::WorkloadProfile> out;
    for (auto &p : all) {
        for (const auto &name : wanted) {
            if (p.name == name) {
                out.push_back(std::move(p));
                break;
            }
        }
    }
    return out;
}

CachedRun
simulateJob(const prog::Program &program, const Job &job,
            const std::string &bench, bool *replayed = nullptr)
{
    core::Simulator sim(program, job.cfg);
    const core::SimResult res = sim.run();
    if (replayed)
        *replayed = sim.replayActive();
    if (res.run.violation)
        fatal("bench sweep: unexpected violation in ", bench, " (",
              configName(job.config), "): ", res.run.violation->reason);

    CachedRun out;
    RunNumbers &r = out.numbers;
    r.ipc = res.run.ipc();
    r.cycles = res.run.cycles;
    r.instrs = res.run.instrs;
    r.committedBranches = res.run.committedBranches;
    r.uniqueBranches = res.run.uniqueBranches;
    r.mispredicts = res.run.mispredicts;
    r.scCompleteMisses = res.rev.scCompleteMisses;
    r.scPartialMisses = res.rev.scPartialMisses;
    r.commitStallCycles = res.validation.commitStallCycles;
    r.scFillAccesses = res.scFillAccesses;
    r.scFillL1Misses = res.scFillL1Misses;
    r.scFillL2Misses = res.scFillL2Misses;
    r.violations = res.validation.violations;
    out.sigTableBytes = res.sigTableBytes;
    return out;
}

StaticNumbers
computeStatics(const prog::Program &program, const prog::Cfg *prebuilt)
{
    std::optional<prog::Cfg> own;
    if (!prebuilt) {
        own.emplace(prog::buildCfg(program.main()));
        prebuilt = &*own;
    }
    const prog::CfgStats cs = prebuilt->stats();
    StaticNumbers st;
    st.numBlocks = cs.numBlocks;
    st.numTerminators = cs.numTerminators;
    st.instrsPerBlock = cs.avgInstrsPerBlock;
    st.succsPerBlock = cs.avgSuccsPerBlock;
    st.codeBytes = program.main().codeSize;
    st.computedSites = cs.numComputedSites;
    st.branchSites = cs.numBranchInstrs;
    return st;
}

std::string
spillPathFor(const std::string &bench)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path dir = fs::temp_directory_path(ec);
    if (ec)
        dir = ".";
    return (dir / ("rev-trace-" + bench + "-" +
                   std::to_string(::getpid()) + ".bin"))
        .string();
}

} // namespace

SweepRunner::SweepRunner(SweepOptions opts) : opts_(std::move(opts)) {}

Sweep
SweepRunner::run()
{
    const auto sweepStart = std::chrono::steady_clock::now();
    threadsUsed_ = resolveThreadCount(opts_.threads);
    timings_.clear();
    phases_ = SweepPhaseTimings{};
    cacheHits_ = 0;

    SweepCache cache(opts_.cachePath);
    if (opts_.useCache)
        cache.load();

    // Build the job matrix and satisfy what we can from the cache.
    // Plans carry a mutex, so they live behind stable pointers.
    std::vector<std::unique_ptr<BenchPlan>> plans;
    std::vector<Job> jobs;
    for (auto &prof : selectProfiles(opts_.benchmarks)) {
        auto plan = std::make_unique<BenchPlan>();
        plan->profile = std::move(prof);
        plan->staticKey = staticCacheKey(plan->profile);
        if (const StaticNumbers *st =
                cache.findStatic(plan->profile.name, plan->staticKey)) {
            plan->statics = *st;
            plan->staticsFromCache = true;
        } else {
            plan->needProgram = true;
        }

        const std::size_t benchIdx = plans.size();
        for (Config c : kAllConfigs) {
            Job job;
            job.benchIdx = benchIdx;
            job.config = c;
            job.cfg = sweepSimConfig(c, opts_.instrBudget);
            if (job.cfg.withRev)
                job.cfg.backend = opts_.backend;
            job.key = runCacheKey(plan->profile, job.cfg);
            if (const CachedRun *hit =
                    cache.findRun(plan->profile.name, c, job.key)) {
                job.cached = true;
                job.result = *hit;
                ++cacheHits_;
            } else {
                plan->needProgram = true;
            }
            jobs.push_back(std::move(job));
        }
        plans.push_back(std::move(plan));
    }

    // Phase 1: generate the programs still needed, in parallel across
    // benchmarks. Programs are immutable afterwards; concurrent
    // simulators only read them.
    std::vector<std::size_t> genIdx;
    for (std::size_t i = 0; i < plans.size(); ++i)
        if (plans[i]->needProgram)
            genIdx.push_back(i);

    std::mutex logMu;
    std::atomic<std::size_t> genDone{0};
    const auto genStart = std::chrono::steady_clock::now();
    parallelFor(genIdx.size(), threadsUsed_, [&](std::size_t k) {
        BenchPlan &plan = *plans[genIdx[k]];
        plan.program = workloads::generateWorkload(plan.profile);
        if (opts_.progress) {
            const std::size_t done = genDone.fetch_add(1) + 1;
            std::lock_guard<std::mutex> lock(logMu);
            std::fprintf(stderr, "[sweep] generated %-12s (%zu/%zu)\n",
                         plan.profile.name.c_str(), done, genIdx.size());
        }
    });
    phases_.generateSeconds = secondsSince(genStart);

    // Phase 1.5: one signature-table build per (benchmark, mode). The
    // first mode of a benchmark pays the CFG derivation and the per-block
    // hashing; later modes reuse both through the donor. Plans build
    // independently, so fan out across benchmarks. The statics of a plan
    // ride along here: with default split limits and a single-module
    // program, the prototype's main-module CFG is exactly the CFG the
    // statics are derived from, so it is not derived twice.
    std::vector<std::size_t> protoIdx;
    for (std::size_t i = 0; i < plans.size(); ++i)
        if (plans[i]->program)
            protoIdx.push_back(i);
    const auto protoStart = std::chrono::steady_clock::now();
    parallelFor(protoIdx.size(), threadsUsed_, [&](std::size_t k) {
        BenchPlan &plan = *plans[protoIdx[k]];
        for (Job &job : jobs) {
            if (job.benchIdx != protoIdx[k] || job.cached ||
                !job.cfg.withRev)
                continue;
            const ProtoParams params = protoParamsOf(job.cfg);
            if (!plan.protoParams) {
                plan.protoParams = params;
                plan.protoVault.emplace(params.cpuSeed);
            } else if (*plan.protoParams != params) {
                continue; // heterogeneous seeds/limits: job builds its own
            }
            if (plan.protos.count(job.cfg.mode))
                continue;
            const sig::SigStore *donor =
                plan.protos.empty() ? nullptr
                                    : plan.protos.begin()->second.get();
            plan.protos[job.cfg.mode] = std::make_unique<sig::SigStore>(
                *plan.program, job.cfg.mode, *plan.protoVault,
                params.toolchainSeed, params.limits, params.hashRounds,
                donor);
        }
        if (!plan.staticsFromCache) {
            const prog::Cfg *main_cfg = nullptr;
            if (!plan.protos.empty() &&
                plan.program->modules().size() == 1 &&
                plan.protoParams->limits == prog::SplitLimits{})
                main_cfg =
                    &plan.protos.begin()->second->moduleSigs().front().cfg;
            plan.statics = computeStatics(*plan.program, main_cfg);
        }
    });
    phases_.protoSeconds = secondsSince(protoStart);

    // Phase 1.6: load each benchmark's shared memory images once — the
    // program image alone, plus a table-loaded fork per built mode.
    // Every job COW-forks its image (SimConfig::memoryImage) instead of
    // re-depositing the same bytes page by page.
    const auto imageStart = std::chrono::steady_clock::now();
    parallelFor(protoIdx.size(), threadsUsed_, [&](std::size_t k) {
        BenchPlan &plan = *plans[protoIdx[k]];
        plan.program->loadInto(plan.baseImage);
        for (const auto &[mode, proto] : plan.protos) {
            SparseMemory img = plan.baseImage.fork();
            proto->loadInto(img);
            plan.modeImages.emplace(mode, std::move(img));
        }
        plan.hasImages = true;
    });
    phases_.imageSeconds = secondsSince(imageStart);

    // Attach the benchmark's shared signature-table prototype and the
    // matching warmed memory image, if any. Images are immutable from
    // here on; concurrent jobs only fork() them.
    auto attachProto = [&](Job &job) {
        const BenchPlan &plan = *plans[job.benchIdx];
        if (job.cfg.withRev && plan.protoParams &&
            *plan.protoParams == protoParamsOf(job.cfg)) {
            auto it = plan.protos.find(job.cfg.mode);
            if (it != plan.protos.end()) {
                job.cfg.sigStorePrototype = it->second.get();
                const auto im = plan.modeImages.find(job.cfg.mode);
                if (plan.hasImages && im != plan.modeImages.end())
                    job.cfg.memoryImage = &im->second;
            }
        } else if (!job.cfg.withRev && plan.hasImages) {
            job.cfg.memoryImage = &plan.baseImage;
        }
    };

    // Phase 2a: record one architectural trace per benchmark that still
    // has at least two uncached jobs. The recorder must be a REV config:
    // its store-drain watermark is the lowest of any config, so the
    // recorded forwarding distances dominate every replay (trace.hpp).
    std::vector<std::size_t> recordIdx;
    if (prog::replayEnabledFromEnv()) {
        for (std::size_t i = 0; i < plans.size(); ++i) {
            std::size_t uncached = 0, rec = kNoJob;
            for (std::size_t j = 0; j < jobs.size(); ++j) {
                if (jobs[j].benchIdx != i || jobs[j].cached)
                    continue;
                ++uncached;
                if (rec == kNoJob && jobs[j].cfg.withRev)
                    rec = j;
            }
            if (uncached >= 2 && rec != kNoJob) {
                plans[i]->recordJobIdx = rec;
                recordIdx.push_back(rec);
            }
        }
    }

    const std::size_t spill_limit = spillThresholdBytes();
    std::atomic<std::size_t> simDone{0};
    const std::size_t simTotal = [&] {
        std::size_t n = 0;
        for (const Job &job : jobs)
            n += !job.cached;
        return n;
    }();
    auto logJob = [&](const Job &job, const BenchPlan &plan,
                      const char *tag) {
        if (!opts_.progress)
            return;
        const std::size_t done = simDone.fetch_add(1) + 1;
        std::lock_guard<std::mutex> lock(logMu);
        std::fprintf(stderr, "[sweep] %-12s %-7s %6.2fs%s (%zu/%zu)\n",
                     plan.profile.name.c_str(), configName(job.config),
                     job.wallSeconds, tag, done, simTotal);
    };

    const auto recordStart = std::chrono::steady_clock::now();
    parallelFor(recordIdx.size(), threadsUsed_, [&](std::size_t k) {
        Job &job = jobs[recordIdx[k]];
        BenchPlan &plan = *plans[job.benchIdx];
        attachProto(job);
        prog::TraceRecorder recorder;
        job.cfg.traceRecorder = &recorder;
        const auto t0 = std::chrono::steady_clock::now();
        job.result = simulateJob(*plan.program, job, plan.profile.name);
        job.wallSeconds = secondsSince(t0);
        job.cfg.traceRecorder = nullptr;

        auto trace = std::make_shared<prog::Trace>(recorder.take());
        if (trace->replayable()) {
            if (trace->byteSize() > spill_limit) {
                plan.spillPath = spillPathFor(plan.profile.name);
                if (trace->save(plan.spillPath))
                    plan.spilled = true; // reloaded lazily in phase 2b
                else
                    plan.trace = std::move(trace);
            } else {
                plan.trace = std::move(trace);
            }
        }
        logJob(job, plan, " (record)");
    });
    phases_.recordSeconds = secondsSince(recordStart);

    // Phase 2b: fan the remaining uncached simulations out across the
    // pool, replaying the benchmark's trace where one attached. Each job
    // writes only its own slot; assembly below is order-independent.
    std::vector<std::size_t> simIdx;
    for (std::size_t j = 0; j < jobs.size(); ++j)
        if (!jobs[j].cached && plans[jobs[j].benchIdx]->recordJobIdx != j)
            simIdx.push_back(j);
    for (std::size_t j : simIdx)
        ++plans[jobs[j].benchIdx]->traceUsers;

    const auto replayStart = std::chrono::steady_clock::now();
    parallelFor(simIdx.size(), threadsUsed_, [&](std::size_t k) {
        Job &job = jobs[simIdx[k]];
        BenchPlan &plan = *plans[job.benchIdx];
        attachProto(job);

        std::shared_ptr<prog::Trace> trace;
        {
            std::lock_guard<std::mutex> lock(plan.traceMu);
            if (plan.spilled && !plan.trace) {
                auto t = std::make_shared<prog::Trace>();
                if (t->load(plan.spillPath))
                    plan.trace = std::move(t);
                else
                    plan.spilled = false; // unreadable spill: run direct
            }
            trace = plan.trace;
        }
        job.cfg.replayTrace = trace.get();

        const auto t0 = std::chrono::steady_clock::now();
        job.result = simulateJob(*plan.program, job, plan.profile.name,
                                 &job.replayed);
        job.wallSeconds = secondsSince(t0);
        job.cfg.replayTrace = nullptr;
        trace.reset();

        {
            std::lock_guard<std::mutex> lock(plan.traceMu);
            if (--plan.traceUsers == 0) {
                plan.trace.reset();
                if (plan.spilled) {
                    std::error_code ec;
                    std::filesystem::remove(plan.spillPath, ec);
                }
            }
        }
        logJob(job, plan, job.replayed ? " (replay)" : "");
    });
    phases_.replaySeconds = secondsSince(replayStart);

    // Assemble deterministically: benchmarks in plan order, configs in
    // kAllConfigs order, every value pulled from its job slot.
    Sweep sweep;
    for (const auto &plan : plans)
        sweep.benchmarks.push_back(plan->profile.name);
    for (const Job &job : jobs) {
        const std::string &bench = plans[job.benchIdx]->profile.name;
        sweep.runs[{bench, job.config}] = job.result.numbers;
        StaticNumbers &st =
            sweep.statics.try_emplace(bench, plans[job.benchIdx]->statics)
                .first->second;
        if (job.config == Config::Full32)
            st.tableBytesFull = job.result.sigTableBytes;
        else if (job.config == Config::Agg32)
            st.tableBytesAggressive = job.result.sigTableBytes;
        else if (job.config == Config::Cfi32)
            st.tableBytesCfi = job.result.sigTableBytes;
        timings_.push_back({bench, job.config, job.wallSeconds, job.cached,
                            job.replayed});
    }

    if (opts_.useCache) {
        for (const Job &job : jobs)
            if (!job.cached)
                cache.putRun(plans[job.benchIdx]->profile.name, job.config,
                             job.key, job.result);
        for (const auto &plan : plans)
            cache.putStatic(plan->profile.name, plan->staticKey,
                            sweep.statics.at(plan->profile.name));
        if (!cache.save())
            warn("sweep: could not write cache file ", opts_.cachePath);
    }

    if (opts_.progress) {
        std::size_t replayed = 0;
        for (const Job &job : jobs)
            replayed += job.replayed;
        std::fprintf(stderr,
                     "[sweep] %zu jobs (%zu cached, %zu replayed) on %u "
                     "thread%s in %.2fs\n",
                     jobs.size(), cacheHits_, replayed, threadsUsed_,
                     threadsUsed_ == 1 ? "" : "s",
                     secondsSince(sweepStart));
    }
    return sweep;
}

} // namespace rev::bench
