#include "bench/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "bench/sweep_cache.hpp"
#include "common/parallel.hpp"
#include "sig/sigstore.hpp"
#include "workloads/generator.hpp"

namespace rev::bench
{

namespace
{

/** Build inputs a signature-store prototype was derived from. */
struct ProtoParams
{
    u64 cpuSeed = 0;
    u64 toolchainSeed = 0;
    prog::SplitLimits limits;
    unsigned hashRounds = 0;

    bool operator==(const ProtoParams &) const = default;
};

/** Everything per-benchmark the job matrix needs. */
struct BenchPlan
{
    workloads::WorkloadProfile profile;
    u64 staticKey = 0;
    bool staticsFromCache = false;
    bool needProgram = false;
    std::optional<prog::Program> program;
    StaticNumbers statics;

    // Signature tables are deterministic in (program, mode, seeds,
    // limits, hash rounds), so configs differing only in timing
    // parameters share one build: prototypes are built once per mode
    // here, and each job's Simulator clones the matching one.
    std::optional<ProtoParams> protoParams;
    std::optional<crypto::KeyVault> protoVault;
    std::map<sig::ValidationMode, std::unique_ptr<sig::SigStore>> protos;
};

ProtoParams
protoParamsOf(const core::SimConfig &cfg)
{
    return ProtoParams{cfg.cpuSeed, cfg.toolchainSeed, cfg.core.splitLimits,
                       cfg.rev.chg.hashRounds};
}

/** One cell of the job matrix. */
struct Job
{
    std::size_t benchIdx = 0;
    Config config = Config::Base;
    core::SimConfig cfg;
    u64 key = 0;
    bool cached = false;
    CachedRun result;
    double wallSeconds = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

std::vector<workloads::WorkloadProfile>
selectProfiles(const std::vector<std::string> &wanted)
{
    auto all = workloads::spec2006Profiles();
    if (wanted.empty())
        return all;
    for (const auto &name : wanted) {
        bool known = false;
        for (const auto &p : all)
            known = known || p.name == name;
        if (!known)
            fatal("sweep: unknown benchmark '", name, "'");
    }
    std::vector<workloads::WorkloadProfile> out;
    for (auto &p : all) {
        for (const auto &name : wanted) {
            if (p.name == name) {
                out.push_back(std::move(p));
                break;
            }
        }
    }
    return out;
}

CachedRun
simulateJob(const prog::Program &program, const Job &job,
            const std::string &bench)
{
    core::Simulator sim(program, job.cfg);
    const core::SimResult res = sim.run();
    if (res.run.violation)
        fatal("bench sweep: unexpected violation in ", bench, " (",
              configName(job.config), "): ", res.run.violation->reason);

    CachedRun out;
    RunNumbers &r = out.numbers;
    r.ipc = res.run.ipc();
    r.cycles = res.run.cycles;
    r.instrs = res.run.instrs;
    r.committedBranches = res.run.committedBranches;
    r.uniqueBranches = res.run.uniqueBranches;
    r.mispredicts = res.run.mispredicts;
    r.scCompleteMisses = res.rev.scCompleteMisses;
    r.scPartialMisses = res.rev.scPartialMisses;
    r.commitStallCycles = res.rev.commitStallCycles;
    r.scFillAccesses = res.scFillAccesses;
    r.scFillL1Misses = res.scFillL1Misses;
    r.scFillL2Misses = res.scFillL2Misses;
    r.violations = res.rev.violations;
    out.sigTableBytes = res.sigTableBytes;
    return out;
}

StaticNumbers
computeStatics(const prog::Program &program)
{
    const prog::Cfg cfg = prog::buildCfg(program.main());
    const prog::CfgStats cs = cfg.stats();
    StaticNumbers st;
    st.numBlocks = cs.numBlocks;
    st.numTerminators = cs.numTerminators;
    st.instrsPerBlock = cs.avgInstrsPerBlock;
    st.succsPerBlock = cs.avgSuccsPerBlock;
    st.codeBytes = program.main().codeSize;
    st.computedSites = cs.numComputedSites;
    st.branchSites = cs.numBranchInstrs;
    return st;
}

} // namespace

SweepRunner::SweepRunner(SweepOptions opts) : opts_(std::move(opts)) {}

Sweep
SweepRunner::run()
{
    const auto sweepStart = std::chrono::steady_clock::now();
    threadsUsed_ = resolveThreadCount(opts_.threads);
    timings_.clear();
    cacheHits_ = 0;

    SweepCache cache(opts_.cachePath);
    if (opts_.useCache)
        cache.load();

    // Build the job matrix and satisfy what we can from the cache.
    std::vector<BenchPlan> plans;
    std::vector<Job> jobs;
    for (auto &prof : selectProfiles(opts_.benchmarks)) {
        BenchPlan plan;
        plan.profile = std::move(prof);
        plan.staticKey = staticCacheKey(plan.profile);
        if (const StaticNumbers *st =
                cache.findStatic(plan.profile.name, plan.staticKey)) {
            plan.statics = *st;
            plan.staticsFromCache = true;
        } else {
            plan.needProgram = true;
        }

        const std::size_t benchIdx = plans.size();
        for (Config c : kAllConfigs) {
            Job job;
            job.benchIdx = benchIdx;
            job.config = c;
            job.cfg = sweepSimConfig(c, opts_.instrBudget);
            job.key = runCacheKey(plan.profile, job.cfg);
            if (const CachedRun *hit =
                    cache.findRun(plan.profile.name, c, job.key)) {
                job.cached = true;
                job.result = *hit;
                ++cacheHits_;
            } else {
                plan.needProgram = true;
            }
            jobs.push_back(std::move(job));
        }
        plans.push_back(std::move(plan));
    }

    // Phase 1: generate the programs still needed, in parallel across
    // benchmarks. Programs are immutable afterwards; concurrent
    // simulators only read them.
    std::vector<std::size_t> genIdx;
    for (std::size_t i = 0; i < plans.size(); ++i)
        if (plans[i].needProgram)
            genIdx.push_back(i);

    std::mutex logMu;
    std::atomic<std::size_t> genDone{0};
    parallelFor(genIdx.size(), threadsUsed_, [&](std::size_t k) {
        BenchPlan &plan = plans[genIdx[k]];
        plan.program = workloads::generateWorkload(plan.profile);
        if (!plan.staticsFromCache)
            plan.statics = computeStatics(*plan.program);
        if (opts_.progress) {
            const std::size_t done = genDone.fetch_add(1) + 1;
            std::lock_guard<std::mutex> lock(logMu);
            std::fprintf(stderr, "[sweep] generated %-12s (%zu/%zu)\n",
                         plan.profile.name.c_str(), done, genIdx.size());
        }
    });

    // Phase 1.5: one signature-table build per (benchmark, mode). The
    // first mode of a benchmark pays the CFG derivation; later modes
    // reuse it as a donor (mode only affects the table records). Plans
    // build independently, so fan out across benchmarks.
    std::vector<std::size_t> protoIdx;
    for (std::size_t i = 0; i < plans.size(); ++i)
        if (plans[i].program)
            protoIdx.push_back(i);
    parallelFor(protoIdx.size(), threadsUsed_, [&](std::size_t k) {
        BenchPlan &plan = plans[protoIdx[k]];
        for (Job &job : jobs) {
            if (job.benchIdx != protoIdx[k] || job.cached ||
                !job.cfg.withRev)
                continue;
            const ProtoParams params = protoParamsOf(job.cfg);
            if (!plan.protoParams) {
                plan.protoParams = params;
                plan.protoVault.emplace(params.cpuSeed);
            } else if (*plan.protoParams != params) {
                continue; // heterogeneous seeds/limits: job builds its own
            }
            if (plan.protos.count(job.cfg.mode))
                continue;
            const sig::SigStore *donor =
                plan.protos.empty() ? nullptr
                                    : plan.protos.begin()->second.get();
            plan.protos[job.cfg.mode] = std::make_unique<sig::SigStore>(
                *plan.program, job.cfg.mode, *plan.protoVault,
                params.toolchainSeed, params.limits, params.hashRounds,
                donor);
        }
    });

    // Phase 2: fan the uncached simulations out across the pool. Each
    // job writes only its own slot; assembly below is order-independent.
    std::vector<std::size_t> simIdx;
    for (std::size_t j = 0; j < jobs.size(); ++j)
        if (!jobs[j].cached)
            simIdx.push_back(j);

    std::atomic<std::size_t> simDone{0};
    parallelFor(simIdx.size(), threadsUsed_, [&](std::size_t k) {
        Job &job = jobs[simIdx[k]];
        const BenchPlan &plan = plans[job.benchIdx];
        if (job.cfg.withRev && plan.protoParams &&
            *plan.protoParams == protoParamsOf(job.cfg)) {
            auto it = plan.protos.find(job.cfg.mode);
            if (it != plan.protos.end())
                job.cfg.sigStorePrototype = it->second.get();
        }
        const auto t0 = std::chrono::steady_clock::now();
        job.result = simulateJob(*plan.program, job, plan.profile.name);
        job.wallSeconds = secondsSince(t0);
        if (opts_.progress) {
            const std::size_t done = simDone.fetch_add(1) + 1;
            std::lock_guard<std::mutex> lock(logMu);
            std::fprintf(stderr, "[sweep] %-12s %-7s %6.2fs (%zu/%zu)\n",
                         plan.profile.name.c_str(), configName(job.config),
                         job.wallSeconds, done, simIdx.size());
        }
    });

    // Assemble deterministically: benchmarks in plan order, configs in
    // kAllConfigs order, every value pulled from its job slot.
    Sweep sweep;
    for (const auto &plan : plans)
        sweep.benchmarks.push_back(plan.profile.name);
    for (const Job &job : jobs) {
        const std::string &bench = plans[job.benchIdx].profile.name;
        sweep.runs[{bench, job.config}] = job.result.numbers;
        StaticNumbers &st =
            sweep.statics.try_emplace(bench, plans[job.benchIdx].statics)
                .first->second;
        if (job.config == Config::Full32)
            st.tableBytesFull = job.result.sigTableBytes;
        else if (job.config == Config::Agg32)
            st.tableBytesAggressive = job.result.sigTableBytes;
        else if (job.config == Config::Cfi32)
            st.tableBytesCfi = job.result.sigTableBytes;
        timings_.push_back(
            {bench, job.config, job.wallSeconds, job.cached});
    }

    if (opts_.useCache) {
        for (const Job &job : jobs)
            if (!job.cached)
                cache.putRun(plans[job.benchIdx].profile.name, job.config,
                             job.key, job.result);
        for (const auto &plan : plans)
            cache.putStatic(plan.profile.name, plan.staticKey,
                            sweep.statics.at(plan.profile.name));
        if (!cache.save())
            warn("sweep: could not write cache file ", opts_.cachePath);
    }

    if (opts_.progress) {
        std::fprintf(stderr,
                     "[sweep] %zu jobs (%zu cached) on %u thread%s in "
                     "%.2fs\n",
                     jobs.size(), cacheHits_, threadsUsed_,
                     threadsUsed_ == 1 ? "" : "s",
                     secondsSince(sweepStart));
    }
    return sweep;
}

} // namespace rev::bench
