/**
 * @file
 * Figure 7, steady-state variant: IPC overhead measured after a warm-up
 * quantum, removing the cold-start SC misses that a 2 M-instruction run
 * over-weights relative to the paper's 2 B-instruction simulations.
 *
 * Method: run 1 M instructions to warm every structure (caches, TLBs,
 * predictor, SC), then measure the next 2 M instructions in isolation
 * (resumable runs share one continuous cycle timebase).
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "workloads/generator.hpp"

namespace
{

using namespace rev;

constexpr u64 kWarm = 1'000'000;
constexpr u64 kMeasure = 2'000'000;

} // namespace

int
main()
{
    std::printf("=============================================================="
                "==================\n");
    std::printf("Figure 7 (steady state) -- overhead after 1M-instr "
                "warm-up, 2M measured\n");
    std::printf("Paper reference: Fig. 7 at 2B instrs: avg 1.87%% @32K, "
                "1.63%% @64K\n");
    std::printf("=============================================================="
                "==================\n");
    std::printf("%-12s %10s %10s\n", "benchmark", "ovh-32K%", "ovh-64K%");

    auto steady = [](const prog::Program &program,
                     const core::SimConfig &proto) {
        // Quantum 1 (warm-up) then quantum 2+3 (measured): resumable
        // runs continue the same machine and timebase; each run() stops
        // at the first block boundary past maxInstrs.
        core::SimConfig cfg = proto;
        cfg.core.maxInstrs = kWarm;
        core::Simulator sim(program, cfg);
        sim.run(); // warm
        sim.resetStats();
        u64 cycles = 0, instrs = 0;
        while (instrs < kMeasure) {
            const core::SimResult r = sim.run();
            if (r.run.violation) {
                std::fprintf(stderr, "violation: %s\n",
                             r.run.violation->reason.c_str());
                std::exit(1);
            }
            cycles += r.run.cycles;
            instrs += r.run.instrs;
            if (r.run.halted)
                break;
        }
        return static_cast<double>(instrs) / static_cast<double>(cycles);
    };

    double sum32 = 0, sum64 = 0;
    unsigned n = 0;
    std::string worst;
    double worst32 = -100;
    for (const auto &prof : workloads::spec2006Profiles()) {
        std::fprintf(stderr, "[warm] %s...\n", prof.name.c_str());
        const prog::Program program = workloads::generateWorkload(prof);

        core::SimConfig base;
        base.withRev = false;
        const double ipc_base = steady(program, base);

        core::SimConfig c32;
        c32.rev.sc.sizeBytes = 32 * 1024;
        const double ipc32 = steady(program, c32);

        core::SimConfig c64;
        c64.rev.sc.sizeBytes = 64 * 1024;
        const double ipc64 = steady(program, c64);

        const double o32 = 100.0 * (ipc_base - ipc32) / ipc_base;
        const double o64 = 100.0 * (ipc_base - ipc64) / ipc_base;
        std::printf("%-12s %10.2f %10.2f\n", prof.name.c_str(), o32, o64);
        sum32 += o32;
        sum64 += o64;
        ++n;
        if (o32 > worst32) {
            worst32 = o32;
            worst = prof.name;
        }
    }
    std::printf("%-12s %10.2f %10.2f   (paper: 1.87 / 1.63)\n", "average",
                sum32 / n, sum64 / n);
    std::printf("\nWorst: %s at %.2f%% (paper: gobmk ~15%%)\n",
                worst.c_str(), worst32);
    return 0;
}
