/**
 * @file
 * Methodology check: seed robustness of the stand-in workloads.
 *
 * The paper reports the harmonic mean of 5 runs per benchmark; our
 * simulations are deterministic, but the synthetic workloads are
 * parameterized by a generation seed. This harness regenerates each
 * benchmark with three different seeds and shows that the measured REV
 * overhead is a property of the benchmark's *character* (its profile),
 * not of one lucky instance.
 */

#include <cmath>
#include <cstdio>

#include "core/simulator.hpp"
#include "workloads/generator.hpp"

int
main()
{
    using namespace rev;
    constexpr u64 kBudget = 500'000;

    std::printf("=============================================================="
                "==================\n");
    std::printf("Methodology -- REV overhead (%%) across workload "
                "generation seeds\n");
    std::printf("=============================================================="
                "==================\n");
    std::printf("%-12s %9s %9s %9s %10s\n", "benchmark", "seed+0",
                "seed+1", "seed+2", "spread");

    for (const char *name :
         {"bzip2", "mcf", "h264ref", "gcc", "gobmk", "soplex"}) {
        double lo = 1e9, hi = -1e9;
        std::printf("%-12s", name);
        for (u64 delta = 0; delta < 3; ++delta) {
            workloads::WorkloadProfile prof = workloads::specProfile(name);
            prof.seed += delta * 1000;
            const prog::Program program =
                workloads::generateWorkload(prof);

            core::SimConfig base;
            base.withRev = false;
            base.core.maxInstrs = kBudget;
            const double base_ipc =
                core::Simulator(program, base).run().run.ipc();

            core::SimConfig cfg;
            cfg.core.maxInstrs = kBudget;
            const double ipc =
                core::Simulator(program, cfg).run().run.ipc();
            const double ovh = 100.0 * (base_ipc - ipc) / base_ipc;
            lo = std::min(lo, ovh);
            hi = std::max(hi, ovh);
            std::printf(" %9.2f", ovh);
        }
        std::printf(" %9.2f\n", hi - lo);
    }
    std::printf("\nExpected: per-benchmark spread small relative to the "
                "between-benchmark\ndifferences (gobmk's worst-case rank "
                "is stable across instances).\n");
    return 0;
}
