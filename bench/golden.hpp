/**
 * @file
 * Golden-statistics comparison: pin every tracked simulated statistic of a
 * sweep against an on-disk snapshot (sweep-cache format).
 *
 * The simulator's fast paths (predecoded-instruction cache, page-span
 * memory accesses, store-buffer bounds checks) are pure software
 * optimizations: they must never change a simulated number. The golden
 * snapshot makes that contract executable — the quick sweep is compared
 * bit-for-bit against a checked-in reference, both in the test suite and
 * in the simperf harness, so a perf patch that perturbs the timing model
 * fails loudly.
 *
 * The snapshot is a regular sweep-cache file; refresh it by deleting the
 * file and re-running the quick sweep with --cache pointed at it (see
 * docs/COOKBOOK.md).
 */

#ifndef REV_BENCH_GOLDEN_HPP
#define REV_BENCH_GOLDEN_HPP

#include <string>
#include <vector>

#include "bench/suite.hpp"

namespace rev::bench
{

/** One tracked statistic (or whole run) that deviates from the snapshot. */
struct GoldenDiff
{
    std::string bench;
    Config config = Config::Base;
    std::string detail; ///< human-readable description of the mismatch
};

/**
 * Compare every (benchmark, config) run of @p sweep against the snapshot
 * at @p golden_path. @p opts must be the options the sweep was run with
 * (the per-run cache keys are recomputed from them). Returns one entry
 * per mismatching run — empty means every tracked statistic is
 * bit-identical to the snapshot.
 */
std::vector<GoldenDiff> compareToGolden(const Sweep &sweep,
                                        const SweepOptions &opts,
                                        const std::string &golden_path);

} // namespace rev::bench

#endif // REV_BENCH_GOLDEN_HPP
