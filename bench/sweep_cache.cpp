#include "bench/sweep_cache.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "program/trace.hpp"

namespace rev::bench
{

namespace
{

/** Bump whenever the file format or the describe*() vocabulary changes. */
constexpr const char *kCacheMagic = "revcache";
constexpr int kCacheVersion = 8; ///< v8: multicore fields joined the key

/** Doubles must round-trip exactly for cache hits to be bit-identical. */
std::ostream &
precise(std::ostream &os)
{
    os << std::setprecision(17);
    return os;
}

} // namespace

u64
fnv1a64(const std::string &s)
{
    u64 h = 0xcbf29ce484222325ULL;
    for (const char ch : s) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
describeSimConfig(const core::SimConfig &cfg)
{
    std::ostringstream os;
    precise(os);
    const cpu::CoreConfig &c = cfg.core;
    os << "fetchWidth=" << c.fetchWidth << " fetchQueueSize="
       << c.fetchQueueSize << " dispatchWidth=" << c.dispatchWidth
       << " issueWidth=" << c.issueWidth << " commitWidth=" << c.commitWidth
       << " robSize=" << c.robSize << " lsqSize=" << c.lsqSize
       << " iqSize=" << c.iqSize << " numPhysRegs=" << c.numPhysRegs
       << " frontendDepth=" << c.frontendDepth
       << " redirectPenalty=" << c.redirectPenalty
       << " intAluLat=" << c.intAluLat << " intMulLat=" << c.intMulLat
       << " intDivLat=" << c.intDivLat << " fpAluLat=" << c.fpAluLat
       << " fpMulLat=" << c.fpMulLat << " fpDivLat=" << c.fpDivLat
       << " numIntAlu=" << c.numIntAlu << " numFpu=" << c.numFpu
       << " numLoadPorts=" << c.numLoadPorts
       << " numStorePorts=" << c.numStorePorts
       << " splitMaxInstrs=" << c.splitLimits.maxInstrs
       << " splitMaxStores=" << c.splitLimits.maxStores
       << " gshareEntries=" << c.predictor.gshareEntries
       << " btbEntries=" << c.predictor.btbEntries
       << " rasEntries=" << c.predictor.rasEntries
       << " interruptInterval=" << c.interruptInterval
       << " interruptPenalty=" << c.interruptPenalty
       << " modelWrongPath=" << c.modelWrongPath
       << " wrongPathInstrs=" << c.wrongPathInstrs
       << " nextLinePrefetch=" << c.nextLinePrefetch
       << " maxInstrs=" << c.maxInstrs;

    const mem::MemConfig &m = cfg.mem;
    os << " l1iBytes=" << m.l1iBytes << " l1iAssoc=" << m.l1iAssoc
       << " l1iLatency=" << m.l1iLatency << " l1dBytes=" << m.l1dBytes
       << " l1dAssoc=" << m.l1dAssoc << " l1dLatency=" << m.l1dLatency
       << " l2Bytes=" << m.l2Bytes << " l2Assoc=" << m.l2Assoc
       << " l2Latency=" << m.l2Latency << " lineBytes=" << m.lineBytes
       << " dramBanks=" << m.dram.banks
       << " dramFirstChunkLatency=" << m.dram.firstChunkLatency
       << " dramOpenPageLatency=" << m.dram.openPageLatency
       << " dramBurstBytes=" << m.dram.burstBytes
       << " dramRowBytes=" << m.dram.rowBytes
       << " dramBurstCycles=" << m.dram.burstCycles
       << " itlbEntries=" << m.tlb.itlbEntries
       << " dtlbEntries=" << m.tlb.dtlbEntries
       << " tlbL2Entries=" << m.tlb.l2Entries
       << " tlbL2Latency=" << m.tlb.l2Latency
       << " pageWalkLatency=" << m.tlb.pageWalkLatency
       << " dmaChannels=" << m.dmaChannels
       << " dmaIntervalCycles=" << m.dmaIntervalCycles
       << " dmaBufferBase=" << m.dmaBufferBase;

    const validate::RevConfig &r = cfg.rev;
    os << " scSizeBytes=" << r.sc.sizeBytes << " scAssoc=" << r.sc.assoc
       << " scEntryBytes=" << r.sc.entryBytes
       << " chgLatency=" << r.chg.latency
       << " chgHashRounds=" << r.chg.hashRounds
       << " sagEntries=" << r.sagEntries
       << " sagMissPenalty=" << r.sagMissPenalty
       << " decryptLatency=" << r.decryptLatency
       << " startEnabled=" << r.startEnabled
       << " returnValidation=" << static_cast<int>(r.returnValidation)
       << " shadowStackEntries=" << r.shadowStackEntries
       << " shadowSpillPenalty=" << r.shadowSpillPenalty;

    const validate::LoFatConfig &lf = cfg.lofat;
    os << " lofatBufferEntries=" << lf.bufferEntries
       << " lofatEntryBytes=" << lf.entryBytes
       << " lofatChgLatency=" << lf.chg.latency
       << " lofatChgHashRounds=" << lf.chg.hashRounds
       << " lofatStartEnabled=" << lf.startEnabled;

    os << " backend=" << static_cast<int>(cfg.backend)
       << " mode=" << static_cast<int>(cfg.mode)
       << " withRev=" << cfg.withRev
       << " pageShadowing=" << cfg.pageShadowing
       // Multicore fields: a stale single-core entry must never alias a
       // multicore run of the same timing config (and vice versa).
       << " numCores=" << cfg.numCores
       << " schedQuantumInstrs=" << cfg.schedQuantumInstrs
       << " coreIdAddr=" << cfg.coreIdAddr
       << " cpuSeed=" << cfg.cpuSeed
       << " toolchainSeed=" << cfg.toolchainSeed
       // Results may have been produced by trace replay; a change to the
       // trace format invalidates them even though no SimConfig field
       // moved. (Replay is proven bit-identical to direct execution, but
       // only for the format it was proven against.)
       << " traceFormat=" << prog::kTraceFormatVersion;
    return os.str();
}

std::string
describeProfile(const workloads::WorkloadProfile &p)
{
    std::ostringstream os;
    precise(os);
    os << "name=" << p.name << " seed=" << p.seed
       << " numFunctions=" << p.numFunctions
       << " entryFunctions=" << p.entryFunctions
       << " minConstructs=" << p.minConstructs
       << " maxConstructs=" << p.maxConstructs
       << " straightLen=" << p.straightLen
       << " callSitesPerFn=" << p.callSitesPerFn
       << " callSpan=" << p.callSpan << " callProb=" << p.callProb
       << " gateSpread=" << p.gateSpread << " hotReach=" << p.hotReach
       << " indirectFnFrac=" << p.indirectFnFrac
       << " branchBias=" << p.branchBias << " loopFrac=" << p.loopFrac
       << " loopIters=" << p.loopIters << " fpFrac=" << p.fpFrac
       << " mulFrac=" << p.mulFrac << " loadFrac=" << p.loadFrac
       << " storeFrac=" << p.storeFrac
       << " dataFootprint=" << p.dataFootprint
       << " dataStride=" << p.dataStride
       << " mainIterations=" << p.mainIterations;
    return os.str();
}

u64
runCacheKey(const workloads::WorkloadProfile &p, const core::SimConfig &cfg)
{
    return fnv1a64(describeProfile(p) + " | " + describeSimConfig(cfg));
}

u64
staticCacheKey(const workloads::WorkloadProfile &p)
{
    return fnv1a64(describeProfile(p));
}

bool
SweepCache::load()
{
    runs_.clear();
    statics_.clear();
    std::ifstream is(path_);
    if (!is)
        return false;

    std::string magic;
    std::string vtag;
    int version = 0;
    is >> magic >> vtag;
    if (magic != kCacheMagic || vtag.size() < 2 || vtag[0] != 'v')
        return false;
    version = std::atoi(vtag.c_str() + 1);
    if (version != kCacheVersion)
        return false;

    std::map<std::string, Config> by_name;
    for (Config c : kAllConfigs)
        by_name[configName(c)] = c;

    std::string tag;
    while (is >> tag) {
        if (tag == "static") {
            std::string b;
            u64 key = 0;
            StaticNumbers st;
            is >> b >> key >> st.numBlocks >> st.numTerminators >>
                st.instrsPerBlock >> st.succsPerBlock >> st.codeBytes >>
                st.computedSites >> st.branchSites >> st.tableBytesFull >>
                st.tableBytesAggressive >> st.tableBytesCfi;
            if (!is)
                return false;
            statics_[{b, key}] = st;
        } else if (tag == "run") {
            std::string b, cname;
            u64 key = 0;
            CachedRun cr;
            RunNumbers &r = cr.numbers;
            is >> b >> cname >> key >> r.ipc >> r.cycles >> r.instrs >>
                r.committedBranches >> r.uniqueBranches >> r.mispredicts >>
                r.scCompleteMisses >> r.scPartialMisses >>
                r.commitStallCycles >> r.scFillAccesses >>
                r.scFillL1Misses >> r.scFillL2Misses >> r.violations >>
                cr.sigTableBytes;
            if (!is || !by_name.count(cname))
                return false;
            runs_[{b, by_name[cname], key}] = cr;
        } else {
            return false;
        }
    }
    return true;
}

bool
SweepCache::save() const
{
    std::ofstream os(path_);
    if (!os)
        return false;
    precise(os);
    os << kCacheMagic << " v" << kCacheVersion << '\n';
    for (const auto &[k, st] : statics_) {
        os << "static " << k.first << ' ' << k.second << ' '
           << st.numBlocks << ' ' << st.numTerminators << ' '
           << st.instrsPerBlock << ' ' << st.succsPerBlock << ' '
           << st.codeBytes << ' ' << st.computedSites << ' '
           << st.branchSites << ' ' << st.tableBytesFull << ' '
           << st.tableBytesAggressive << ' ' << st.tableBytesCfi << '\n';
    }
    for (const auto &[k, cr] : runs_) {
        const RunNumbers &r = cr.numbers;
        os << "run " << std::get<0>(k) << ' ' << configName(std::get<1>(k))
           << ' ' << std::get<2>(k) << ' ' << r.ipc << ' ' << r.cycles
           << ' ' << r.instrs << ' ' << r.committedBranches << ' '
           << r.uniqueBranches << ' ' << r.mispredicts << ' '
           << r.scCompleteMisses << ' ' << r.scPartialMisses << ' '
           << r.commitStallCycles << ' ' << r.scFillAccesses << ' '
           << r.scFillL1Misses << ' ' << r.scFillL2Misses << ' '
           << r.violations << ' ' << cr.sigTableBytes << '\n';
    }
    return static_cast<bool>(os);
}

const CachedRun *
SweepCache::findRun(const std::string &bench, Config c, u64 key) const
{
    const auto it = runs_.find({bench, c, key});
    return it == runs_.end() ? nullptr : &it->second;
}

const StaticNumbers *
SweepCache::findStatic(const std::string &bench, u64 key) const
{
    const auto it = statics_.find({bench, key});
    return it == statics_.end() ? nullptr : &it->second;
}

void
SweepCache::putRun(const std::string &bench, Config c, u64 key,
                   const CachedRun &run)
{
    runs_[{bench, c, key}] = run;
}

void
SweepCache::putStatic(const std::string &bench, u64 key,
                      const StaticNumbers &st)
{
    statics_[{bench, key}] = st;
}

} // namespace rev::bench
