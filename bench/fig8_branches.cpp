/**
 * @file
 * Figure 8: number of committed branches during execution.
 *
 * The paper's takeaway: gcc (and gobmk) commit very many branches; mcf's
 * branch count is also high (short basic blocks) but is compensated by SC
 * hits (Sec. VIII discussion).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace rev::bench;
    const Sweep s = runSweep(sweepOptionsFromArgs(argc, argv));

    printHeader("Figure 8 -- committed branches during execution",
                "Sec. VIII, Fig. 8");
    std::printf("%-12s %14s %16s\n", "benchmark", "branches",
                "branches/kinstr");
    std::vector<std::pair<double, std::string>> density;
    for (const auto &b : s.benchmarks) {
        const auto &r = s.at(b, Config::Full32);
        const double per_k =
            1000.0 * static_cast<double>(r.committedBranches) / r.instrs;
        density.push_back({per_k, b});
        std::printf("%-12s %14llu %16.1f\n", b.c_str(),
                    static_cast<unsigned long long>(r.committedBranches),
                    per_k);
    }
    std::sort(density.rbegin(), density.rend());
    std::printf("\nHighest branch density: %s, %s, %s "
                "(paper: gcc and mcf among the highest)\n",
                density[0].second.c_str(), density[1].second.c_str(),
                density[2].second.c_str());
    return 0;
}
