#include "bench/suite.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/simulator.hpp"
#include "workloads/generator.hpp"

namespace rev::bench
{

namespace
{

constexpr const char *kCacheFile = "rev_bench_cache.txt";
constexpr int kCacheVersion = 4;

core::SimConfig
simConfig(Config c, u64 budget)
{
    core::SimConfig cfg;
    cfg.core.maxInstrs = budget;
    switch (c) {
      case Config::Base:
        cfg.withRev = false;
        break;
      case Config::Full32:
        cfg.mode = sig::ValidationMode::Full;
        cfg.rev.sc.sizeBytes = 32 * 1024;
        break;
      case Config::Full64:
        cfg.mode = sig::ValidationMode::Full;
        cfg.rev.sc.sizeBytes = 64 * 1024;
        break;
      case Config::Agg32:
        cfg.mode = sig::ValidationMode::Aggressive;
        cfg.rev.sc.sizeBytes = 32 * 1024;
        break;
      case Config::Agg64:
        cfg.mode = sig::ValidationMode::Aggressive;
        cfg.rev.sc.sizeBytes = 64 * 1024;
        break;
      case Config::Cfi32:
        cfg.mode = sig::ValidationMode::CfiOnly;
        cfg.rev.sc.sizeBytes = 32 * 1024;
        break;
    }
    return cfg;
}

void
saveSweep(const Sweep &s, u64 budget)
{
    std::ofstream os(kCacheFile);
    os << "version " << kCacheVersion << ' ' << budget << '\n';
    for (const auto &b : s.benchmarks) {
        const auto &st = s.statics.at(b);
        os << "static " << b << ' ' << st.numBlocks << ' '
           << st.numTerminators << ' ' << st.instrsPerBlock << ' '
           << st.succsPerBlock << ' ' << st.codeBytes << ' '
           << st.computedSites << ' ' << st.branchSites << ' '
           << st.tableBytesFull << ' ' << st.tableBytesAggressive << ' '
           << st.tableBytesCfi << '\n';
        for (Config c : kAllConfigs) {
            const auto &r = s.at(b, c);
            os << "run " << b << ' ' << configName(c) << ' ' << r.ipc
               << ' ' << r.cycles << ' ' << r.instrs << ' '
               << r.committedBranches << ' ' << r.uniqueBranches << ' '
               << r.mispredicts << ' ' << r.scCompleteMisses << ' '
               << r.scPartialMisses << ' ' << r.commitStallCycles << ' '
               << r.scFillAccesses << ' ' << r.scFillL1Misses << ' '
               << r.scFillL2Misses << ' ' << r.violations << '\n';
        }
    }
}

bool
loadSweep(Sweep &s, u64 budget)
{
    std::ifstream is(kCacheFile);
    if (!is)
        return false;
    std::string tag;
    int version = 0;
    u64 cached_budget = 0;
    is >> tag >> version >> cached_budget;
    if (tag != "version" || version != kCacheVersion ||
        cached_budget != budget)
        return false;

    std::map<std::string, Config> by_name;
    for (Config c : kAllConfigs)
        by_name[configName(c)] = c;

    while (is >> tag) {
        if (tag == "static") {
            std::string b;
            StaticNumbers st;
            is >> b >> st.numBlocks >> st.numTerminators >>
                st.instrsPerBlock >> st.succsPerBlock >> st.codeBytes >>
                st.computedSites >> st.branchSites >> st.tableBytesFull >>
                st.tableBytesAggressive >> st.tableBytesCfi;
            s.benchmarks.push_back(b);
            s.statics[b] = st;
        } else if (tag == "run") {
            std::string b, cname;
            RunNumbers r;
            is >> b >> cname >> r.ipc >> r.cycles >> r.instrs >>
                r.committedBranches >> r.uniqueBranches >> r.mispredicts >>
                r.scCompleteMisses >> r.scPartialMisses >>
                r.commitStallCycles >> r.scFillAccesses >>
                r.scFillL1Misses >> r.scFillL2Misses >> r.violations;
            if (!by_name.count(cname))
                return false;
            s.runs[{b, by_name[cname]}] = r;
        } else {
            return false;
        }
    }
    return !s.benchmarks.empty();
}

Sweep
computeSweep(bool quick)
{
    const u64 budget = quick ? 100'000 : kInstrBudget;
    Sweep sweep;

    auto profiles = workloads::spec2006Profiles();
    if (quick)
        profiles.resize(3);

    for (const auto &prof : profiles) {
        std::fprintf(stderr, "[suite] %s: generating...\n",
                     prof.name.c_str());
        const prog::Program program = workloads::generateWorkload(prof);
        sweep.benchmarks.push_back(prof.name);

        // Static facts.
        {
            const prog::Cfg cfg = prog::buildCfg(program.main());
            const prog::CfgStats cs = cfg.stats();
            StaticNumbers st;
            st.numBlocks = cs.numBlocks;
            st.numTerminators = cs.numTerminators;
            st.instrsPerBlock = cs.avgInstrsPerBlock;
            st.succsPerBlock = cs.avgSuccsPerBlock;
            st.codeBytes = program.main().codeSize;
            st.computedSites = cs.numComputedSites;
            st.branchSites = cs.numBranchInstrs;
            sweep.statics[prof.name] = st;
        }

        for (Config c : kAllConfigs) {
            std::fprintf(stderr, "[suite] %s: %s...\n", prof.name.c_str(),
                         configName(c));
            core::Simulator sim(program, simConfig(c, budget));
            const core::SimResult res = sim.run();
            if (res.run.violation)
                fatal("bench sweep: unexpected violation in ", prof.name,
                      " (", configName(c), "): ",
                      res.run.violation->reason);

            RunNumbers r;
            r.ipc = res.run.ipc();
            r.cycles = res.run.cycles;
            r.instrs = res.run.instrs;
            r.committedBranches = res.run.committedBranches;
            r.uniqueBranches = res.run.uniqueBranches;
            r.mispredicts = res.run.mispredicts;
            r.scCompleteMisses = res.rev.scCompleteMisses;
            r.scPartialMisses = res.rev.scPartialMisses;
            r.commitStallCycles = res.rev.commitStallCycles;
            r.scFillAccesses = res.scFillAccesses;
            r.scFillL1Misses = res.scFillL1Misses;
            r.scFillL2Misses = res.scFillL2Misses;
            r.violations = res.rev.violations;
            sweep.runs[{prof.name, c}] = r;

            auto &st = sweep.statics[prof.name];
            if (c == Config::Full32)
                st.tableBytesFull = res.sigTableBytes;
            else if (c == Config::Agg32)
                st.tableBytesAggressive = res.sigTableBytes;
            else if (c == Config::Cfi32)
                st.tableBytesCfi = res.sigTableBytes;
        }
    }
    return sweep;
}

} // namespace

const char *
configName(Config c)
{
    switch (c) {
      case Config::Base: return "base";
      case Config::Full32: return "full32";
      case Config::Full64: return "full64";
      case Config::Agg32: return "agg32";
      case Config::Agg64: return "agg64";
      case Config::Cfi32: return "cfi32";
    }
    return "?";
}

const Sweep &
fullSweep(bool quick)
{
    static Sweep sweep;
    static bool ready = false;
    if (!ready) {
        const u64 budget = quick ? 100'000 : kInstrBudget;
        if (!quick && loadSweep(sweep, budget)) {
            std::fprintf(stderr, "[suite] loaded cached sweep (%s)\n",
                         kCacheFile);
        } else {
            sweep = computeSweep(quick);
            if (!quick)
                saveSweep(sweep, budget);
        }
        ready = true;
    }
    return sweep;
}

double
overheadPct(const Sweep &s, const std::string &bench, Config cfg)
{
    const double base = s.at(bench, Config::Base).ipc;
    const double with = s.at(bench, cfg).ipc;
    return base > 0 ? 100.0 * (base - with) / base : 0.0;
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("=============================================================="
                "==================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Paper reference: %s\n", paper_ref.c_str());
    std::printf("Workloads: synthetic SPEC CPU 2006 stand-ins (see "
                "DESIGN.md); %llu instrs/run\n",
                static_cast<unsigned long long>(kInstrBudget));
    std::printf("=============================================================="
                "==================\n");
}

} // namespace rev::bench
