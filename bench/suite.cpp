#include "bench/suite.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "bench/sweep_runner.hpp"
#include "validate/backend_cli.hpp"
#include "workloads/generator.hpp"

namespace rev::bench
{

const char *
configName(Config c)
{
    switch (c) {
      case Config::Base: return "base";
      case Config::Full32: return "full32";
      case Config::Full64: return "full64";
      case Config::Agg32: return "agg32";
      case Config::Agg64: return "agg64";
      case Config::Cfi32: return "cfi32";
    }
    return "?";
}

core::SimConfig
sweepSimConfig(Config c, u64 budget)
{
    core::SimConfig cfg;
    cfg.core.maxInstrs = budget;
    switch (c) {
      case Config::Base:
        cfg.withRev = false;
        break;
      case Config::Full32:
        cfg.mode = sig::ValidationMode::Full;
        cfg.rev.sc.sizeBytes = 32 * 1024;
        break;
      case Config::Full64:
        cfg.mode = sig::ValidationMode::Full;
        cfg.rev.sc.sizeBytes = 64 * 1024;
        break;
      case Config::Agg32:
        cfg.mode = sig::ValidationMode::Aggressive;
        cfg.rev.sc.sizeBytes = 32 * 1024;
        break;
      case Config::Agg64:
        cfg.mode = sig::ValidationMode::Aggressive;
        cfg.rev.sc.sizeBytes = 64 * 1024;
        break;
      case Config::Cfi32:
        cfg.mode = sig::ValidationMode::CfiOnly;
        cfg.rev.sc.sizeBytes = 32 * 1024;
        break;
    }
    return cfg;
}

SweepOptions
SweepOptions::quick()
{
    SweepOptions opts;
    const auto profiles = workloads::spec2006Profiles();
    for (std::size_t i = 0; i < profiles.size() && i < 3; ++i)
        opts.benchmarks.push_back(profiles[i].name);
    opts.instrBudget = kQuickInstrBudget;
    opts.useCache = false;
    return opts;
}

Sweep
runSweep(const SweepOptions &opts)
{
    return SweepRunner(opts).run();
}

SweepOptions
sweepOptionsFromArgs(int argc, char **argv)
{
    auto usage = [&](int code) {
        std::printf(
            "usage: %s [--quick] [--no-cache] [--threads N] [--instrs N]\n"
            "          [--bench a,b,c] [--cache PATH] [--backend NAME]\n"
            "          [--list-backends]\n",
            argc > 0 ? argv[0] : "bench");
        std::exit(code);
    };
    // --quick is a base preset: apply it first so the other flags
    // override it regardless of their position on the command line.
    SweepOptions opts;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--quick")
            opts = SweepOptions::quick();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--quick") {
            // applied above
        } else if (arg == "--no-cache") {
            opts.useCache = false;
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--instrs") {
            opts.instrBudget = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--bench") {
            opts.benchmarks.clear();
            std::istringstream names(next());
            std::string name;
            while (std::getline(names, name, ','))
                if (!name.empty())
                    opts.benchmarks.push_back(name);
        } else if (arg == "--cache") {
            opts.cachePath = next();
        } else if (validate::backendCliOptions(argc, argv, &i,
                                               &opts.backend)) {
            // shared --backend / --list-backends handling
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            usage(2);
        }
    }
    return opts;
}

double
overheadPct(const Sweep &s, const std::string &bench, Config cfg)
{
    const double base = s.at(bench, Config::Base).ipc;
    const double with = s.at(bench, cfg).ipc;
    return base > 0 ? 100.0 * (base - with) / base : 0.0;
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("=============================================================="
                "==================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Paper reference: %s\n", paper_ref.c_str());
    std::printf("Workloads: synthetic SPEC CPU 2006 stand-ins (see "
                "DESIGN.md); %llu instrs/run\n",
                static_cast<unsigned long long>(kInstrBudget));
    std::printf("=============================================================="
                "==================\n");
}

} // namespace rev::bench
