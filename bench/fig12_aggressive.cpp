/**
 * @file
 * Figure 12: IPC overhead with aggressive validation (every branch target
 * verified, Sec. V.C) for 32 KB and 64 KB SCs.
 *
 * Paper: aggressive validation performs slightly *better* than the
 * default at equal SC capacity because an entry verifies up to two
 * successors, avoiding partial misses on conditional branches.
 */

#include <cstdio>

#include "bench/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace rev::bench;
    const Sweep s = runSweep(sweepOptionsFromArgs(argc, argv));

    printHeader("Figure 12 -- IPC overhead (%) with aggressive validation",
                "Sec. VIII, Fig. 12");
    std::printf("%-12s %10s %10s %12s\n", "benchmark", "agg-32K%",
                "agg-64K%", "full-32K%");
    double sum_a32 = 0, sum_a64 = 0, sum_f32 = 0;
    for (const auto &b : s.benchmarks) {
        const double a32 = overheadPct(s, b, Config::Agg32);
        const double a64 = overheadPct(s, b, Config::Agg64);
        const double f32 = overheadPct(s, b, Config::Full32);
        sum_a32 += a32;
        sum_a64 += a64;
        sum_f32 += f32;
        std::printf("%-12s %10.2f %10.2f %12.2f\n", b.c_str(), a32, a64,
                    f32);
    }
    const double n = static_cast<double>(s.benchmarks.size());
    std::printf("%-12s %10.2f %10.2f %12.2f\n", "average", sum_a32 / n,
                sum_a64 / n, sum_f32 / n);
    std::printf("\nExpected: aggressive average close to (slightly below) "
                "the full-validation average.\n");
    return 0;
}
