#include "bench/golden.hpp"

#include <sstream>

#include "bench/sweep_cache.hpp"
#include "workloads/generator.hpp"

namespace rev::bench
{

namespace
{

/** Append "name golden=x got=y" for every field that differs. */
void
describeDiffs(const RunNumbers &golden, const RunNumbers &got,
              std::ostringstream &os)
{
    auto field = [&](const char *name, auto g, auto r) {
        if (g != r)
            os << ' ' << name << " golden=" << g << " got=" << r;
    };
    field("ipc", golden.ipc, got.ipc);
    field("cycles", golden.cycles, got.cycles);
    field("instrs", golden.instrs, got.instrs);
    field("committed_branches", golden.committedBranches,
          got.committedBranches);
    field("unique_branches", golden.uniqueBranches, got.uniqueBranches);
    field("mispredicts", golden.mispredicts, got.mispredicts);
    field("sc_complete_misses", golden.scCompleteMisses,
          got.scCompleteMisses);
    field("sc_partial_misses", golden.scPartialMisses, got.scPartialMisses);
    field("commit_stall_cycles", golden.commitStallCycles,
          got.commitStallCycles);
    field("sc_fill_accesses", golden.scFillAccesses, got.scFillAccesses);
    field("sc_fill_l1_misses", golden.scFillL1Misses, got.scFillL1Misses);
    field("sc_fill_l2_misses", golden.scFillL2Misses, got.scFillL2Misses);
    field("violations", golden.violations, got.violations);
}

} // namespace

std::vector<GoldenDiff>
compareToGolden(const Sweep &sweep, const SweepOptions &opts,
                const std::string &golden_path)
{
    std::vector<GoldenDiff> diffs;

    SweepCache golden(golden_path);
    if (!golden.load()) {
        diffs.push_back({"", Config::Base,
                         "golden snapshot missing or unreadable: " +
                             golden_path});
        return diffs;
    }

    const auto profiles = workloads::spec2006Profiles();
    for (const std::string &bench : sweep.benchmarks) {
        const workloads::WorkloadProfile *profile = nullptr;
        for (const auto &p : profiles)
            if (p.name == bench)
                profile = &p;
        if (!profile) {
            diffs.push_back({bench, Config::Base,
                             "benchmark has no generator profile"});
            continue;
        }

        for (Config c : kAllConfigs) {
            const auto it = sweep.runs.find({bench, c});
            if (it == sweep.runs.end())
                continue; // sweep did not run this config
            const u64 key =
                runCacheKey(*profile, sweepSimConfig(c, opts.instrBudget));
            const CachedRun *ref = golden.findRun(bench, c, key);
            if (!ref) {
                diffs.push_back(
                    {bench, c,
                     "no golden entry (snapshot stale, or the profile / "
                     "config serialization changed)"});
                continue;
            }
            if (ref->numbers == it->second)
                continue;
            std::ostringstream os;
            describeDiffs(ref->numbers, it->second, os);
            diffs.push_back({bench, c, "statistics differ:" + os.str()});
        }
    }
    return diffs;
}

} // namespace rev::bench
