/**
 * @file
 * Ablation: signature-table design choices called out in DESIGN.md --
 * per-fill decrypt latency, artificial split limits (Sec. IV.A), and
 * CubeHash round count (Sec. VI cites 5 rounds as meeting the latency
 * budget).
 */

#include <chrono>
#include <cstdio>

#include "core/simulator.hpp"
#include "workloads/generator.hpp"

namespace
{

using namespace rev;

constexpr u64 kBudget = 500'000;

double
runOverhead(const prog::Program &program, double base_ipc,
            const core::SimConfig &cfg)
{
    core::Simulator sim(program, cfg);
    const double ipc = sim.run().run.ipc();
    return 100.0 * (base_ipc - ipc) / base_ipc;
}

} // namespace

int
main()
{
    std::printf("=============================================================="
                "==================\n");
    std::printf("Ablation -- table decrypt latency, split limits, hash "
                "rounds\n");
    std::printf("=============================================================="
                "==================\n");

    const prog::Program program =
        workloads::generateWorkload(workloads::specProfile("h264ref"));
    core::SimConfig base;
    base.withRev = false;
    base.core.maxInstrs = kBudget;
    const double base_ipc = core::Simulator(program, base).run().run.ipc();

    std::printf("\nPer-fill decrypt latency (h264ref, overhead %%):\n");
    for (unsigned lat : {0, 2, 8, 16, 32}) {
        core::SimConfig cfg;
        cfg.core.maxInstrs = kBudget;
        cfg.rev.decryptLatency = lat;
        std::printf("  decrypt=%-3u %8.2f\n", lat,
                    runOverhead(program, base_ipc, cfg));
    }

    std::printf("\nArtificial split limits (Sec. IV.A; table bytes + "
                "overhead %%):\n");
    for (unsigned max_instrs : {8, 16, 32, 64}) {
        core::SimConfig cfg;
        cfg.core.maxInstrs = kBudget;
        cfg.core.splitLimits.maxInstrs = max_instrs;
        core::SimConfig b2 = base;
        b2.core.splitLimits.maxInstrs = max_instrs;
        const double bipc =
            core::Simulator(program, b2).run().run.ipc();
        core::Simulator sim(program, cfg);
        const auto r = sim.run();
        std::printf("  maxInstrs=%-3u table=%8llu B  overhead=%6.2f%%\n",
                    max_instrs,
                    static_cast<unsigned long long>(r.sigTableBytes),
                    100.0 * (bipc - r.run.ipc()) / bipc);
    }

    std::printf("\nCubeHash rounds (table build wall time; overhead is "
                "latency-invariant\nsince H models the pipe depth):\n");
    for (unsigned rounds : {1, 2, 5, 8, 16}) {
        core::SimConfig cfg;
        cfg.core.maxInstrs = kBudget;
        cfg.rev.chg.hashRounds = rounds;
        const auto t0 = std::chrono::steady_clock::now();
        core::Simulator sim(program, cfg); // builds tables
        const auto t1 = std::chrono::steady_clock::now();
        const auto r = sim.run();
        std::printf("  rounds=%-3u build=%5lld ms  overhead=%6.2f%%\n",
                    rounds,
                    static_cast<long long>(
                        std::chrono::duration_cast<std::chrono::milliseconds>(
                            t1 - t0)
                            .count()),
                    100.0 * (base_ipc - r.run.ipc()) / base_ipc);
    }

    std::printf("\nExpected: decrypt latency adds linearly to SC miss cost; "
                "tighter split\nlimits grow tables (more blocks) but barely "
                "move overhead (splits hit\nin the SC); hash rounds only "
                "affect the offline build.\n");
    return 0;
}
