/**
 * @file
 * Ablation: signature-cache geometry. Sweeps SC capacity (8..128 KB) and
 * associativity (1..8 ways at 32 KB) for benchmarks spanning the paper's
 * overhead spectrum. The paper evaluates 32 KB vs 64 KB (Figs. 6/7); this
 * harness extends the sweep to show where the working-set knee sits.
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "workloads/generator.hpp"

namespace
{

using namespace rev;

constexpr u64 kBudget = 500'000;

struct Bench
{
    std::string name;
    prog::Program program;
    double baseIpc = 0;
};

double
overheadPct(const Bench &b, const core::SimConfig &cfg)
{
    core::Simulator sim(b.program, cfg);
    const double ipc = sim.run().run.ipc();
    return 100.0 * (b.baseIpc - ipc) / b.baseIpc;
}

} // namespace

int
main()
{
    std::printf("=============================================================="
                "==================\n");
    std::printf("Ablation -- signature cache geometry (IPC overhead %%, "
                "%llu instrs)\n",
                static_cast<unsigned long long>(kBudget));
    std::printf("=============================================================="
                "==================\n");

    std::vector<Bench> benches;
    for (const char *name : {"mcf", "h264ref", "gcc", "gobmk"}) {
        Bench b;
        b.name = name;
        b.program =
            workloads::generateWorkload(workloads::specProfile(name));
        core::SimConfig base;
        base.withRev = false;
        base.core.maxInstrs = kBudget;
        core::Simulator sim(b.program, base);
        b.baseIpc = sim.run().run.ipc();
        benches.push_back(std::move(b));
    }

    std::printf("\nCapacity sweep (4-way):\n%-10s", "bench");
    for (unsigned kb : {8, 16, 32, 64, 128})
        std::printf(" %7uKB", kb);
    std::printf("\n");
    for (const auto &b : benches) {
        std::printf("%-10s", b.name.c_str());
        for (unsigned kb : {8, 16, 32, 64, 128}) {
            core::SimConfig cfg;
            cfg.core.maxInstrs = kBudget;
            cfg.rev.sc.sizeBytes = kb * 1024ull;
            std::printf(" %8.2f", overheadPct(b, cfg));
        }
        std::printf("\n");
    }

    std::printf("\nAssociativity sweep (32 KB):\n%-10s", "bench");
    for (unsigned ways : {1, 2, 4, 8})
        std::printf(" %7u-w", ways);
    std::printf("\n");
    for (const auto &b : benches) {
        std::printf("%-10s", b.name.c_str());
        for (unsigned ways : {1, 2, 4, 8}) {
            core::SimConfig cfg;
            cfg.core.maxInstrs = kBudget;
            cfg.rev.sc.assoc = ways;
            std::printf(" %8.2f", overheadPct(b, cfg));
        }
        std::printf("\n");
    }

    std::printf("\nExpected: overhead falls monotonically-ish with capacity; "
                "the knee sits\nbetween the benchmark's unique-branch "
                "footprint and the entry count.\n");
    return 0;
}
