/**
 * @file
 * Ablation: background DMA interference (Table 2 provisions 64 DMA
 * channels with 64-byte bursts). DMA bursts contend with demand misses
 * and SC fills for the DRAM banks; benchmarks whose SC fills already go
 * to DRAM (gcc/gobmk) see the largest compounding.
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "workloads/generator.hpp"

int
main()
{
    using namespace rev;
    constexpr u64 kBudget = 500'000;

    std::printf("=============================================================="
                "==================\n");
    std::printf("Ablation -- background DMA traffic (IPC overhead %% vs "
                "quiet base)\n");
    std::printf("=============================================================="
                "==================\n");
    std::printf("%-10s", "bench");
    for (u64 interval : {0ull, 64ull, 16ull, 4ull})
        if (interval)
            std::printf("  dma/%-4llu",
                        static_cast<unsigned long long>(interval));
        else
            std::printf("   no-dma ");
    std::printf("\n");

    for (const char *name : {"mcf", "libquantum", "gcc", "gobmk"}) {
        const prog::Program program =
            workloads::generateWorkload(workloads::specProfile(name));
        std::printf("%-10s", name);
        for (u64 interval : {0ull, 64ull, 16ull, 4ull}) {
            // REV overhead at this DMA level: base and REV both see the
            // same background traffic.
            core::SimConfig base;
            base.withRev = false;
            base.core.maxInstrs = kBudget;
            base.mem.dmaIntervalCycles = interval;
            const double base_ipc =
                core::Simulator(program, base).run().run.ipc();

            core::SimConfig cfg;
            cfg.core.maxInstrs = kBudget;
            cfg.mem.dmaIntervalCycles = interval;
            const double ipc =
                core::Simulator(program, cfg).run().run.ipc();
            std::printf(" %9.2f", 100.0 * (base_ipc - ipc) / base_ipc);
        }
        std::printf("\n");
    }
    std::printf("\nFinding: REV's *relative* overhead is stable under "
                "background DMA -- SC fill\nlatency grows with bank "
                "pressure, but the baseline's demand misses slow by\nthe "
                "same mechanism, so validation does not amplify I/O "
                "interference.\n");
    return 0;
}
