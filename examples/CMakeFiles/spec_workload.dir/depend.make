# Empty dependencies file for spec_workload.
# This may be replaced when dependencies are built.
