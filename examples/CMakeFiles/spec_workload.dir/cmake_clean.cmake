file(REMOVE_RECURSE
  "CMakeFiles/spec_workload.dir/spec_workload.cpp.o"
  "CMakeFiles/spec_workload.dir/spec_workload.cpp.o.d"
  "spec_workload"
  "spec_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
