file(REMOVE_RECURSE
  "CMakeFiles/multi_module.dir/multi_module.cpp.o"
  "CMakeFiles/multi_module.dir/multi_module.cpp.o.d"
  "multi_module"
  "multi_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
