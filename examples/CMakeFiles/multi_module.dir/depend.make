# Empty dependencies file for multi_module.
# This may be replaced when dependencies are built.
