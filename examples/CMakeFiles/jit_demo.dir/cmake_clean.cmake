file(REMOVE_RECURSE
  "CMakeFiles/jit_demo.dir/jit_demo.cpp.o"
  "CMakeFiles/jit_demo.dir/jit_demo.cpp.o.d"
  "jit_demo"
  "jit_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
