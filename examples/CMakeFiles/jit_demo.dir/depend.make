# Empty dependencies file for jit_demo.
# This may be replaced when dependencies are built.
