# Empty dependencies file for context_switch.
# This may be replaced when dependencies are built.
