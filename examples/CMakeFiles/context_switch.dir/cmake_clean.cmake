file(REMOVE_RECURSE
  "CMakeFiles/context_switch.dir/context_switch.cpp.o"
  "CMakeFiles/context_switch.dir/context_switch.cpp.o.d"
  "context_switch"
  "context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
