/**
 * @file
 * Quickstart: build a tiny program with the assembler, run it on the
 * simulated out-of-order core with and without REV, and show what the
 * validator did.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "isa/codec.hpp"
#include "isa/disasm.hpp"
#include "program/assembler.hpp"

int
main()
{
    using namespace rev;

    // ---- 1. write a program with the label-based assembler ----------------
    // Computes sum(1..100) via a helper function and stores it on the heap.
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 0);    // acc
    a.movi(2, 100);  // i
    a.label("loop");
    a.call("accumulate");
    a.addi(2, 2, -1);
    a.bne(2, 0, "loop");
    a.movi(5, static_cast<i32>(prog::kHeapBase));
    a.st(1, 5, 0);
    a.halt();

    a.label("accumulate");
    a.add(1, 1, 2); // acc += i
    a.ret();

    prog::Program program;
    program.addModule(a.finalize("quickstart", "main"));

    // ---- 2. disassemble a few instructions --------------------------------
    std::printf("Program entry (disassembly):\n");
    const auto &mod = program.main();
    Addr pc = mod.base;
    for (int i = 0; i < 6; ++i) {
        const auto ins = isa::decode(mod.image.data() + (pc - mod.base),
                                     mod.codeSize - (pc - mod.base));
        std::printf("  0x%llx: %s\n", static_cast<unsigned long long>(pc),
                    isa::disassemble(*ins, pc).c_str());
        pc += ins->length();
    }

    // ---- 3. run on the base out-of-order core ------------------------------
    core::SimConfig base_cfg;
    base_cfg.withRev = false;
    core::Simulator base(program, base_cfg);
    const core::SimResult rb = base.run();

    // ---- 4. run again with REV validating every basic block ----------------
    core::SimConfig rev_cfg; // withRev defaults to true
    core::Simulator rev(program, rev_cfg);
    const core::SimResult rr = rev.run();

    std::printf("\nResult in memory: %llu (expected 5050)\n",
                static_cast<unsigned long long>(
                    rev.memory().read64(prog::kHeapBase)));

    std::printf("\n%-28s %12s %12s\n", "", "base", "with REV");
    std::printf("%-28s %12llu %12llu\n", "instructions",
                static_cast<unsigned long long>(rb.run.instrs),
                static_cast<unsigned long long>(rr.run.instrs));
    std::printf("%-28s %12llu %12llu\n", "cycles",
                static_cast<unsigned long long>(rb.run.cycles),
                static_cast<unsigned long long>(rr.run.cycles));
    std::printf("%-28s %12.3f %12.3f\n", "IPC", rb.run.ipc(), rr.run.ipc());
    std::printf("%-28s %12s %12llu\n", "basic blocks validated", "-",
                static_cast<unsigned long long>(rr.rev.bbValidated));
    std::printf("%-28s %12s %12llu\n", "SC misses", "-",
                static_cast<unsigned long long>(rr.rev.scMisses()));
    std::printf("%-28s %12s %12llu\n", "signature table bytes", "-",
                static_cast<unsigned long long>(rr.sigTableBytes));
    std::printf("%-28s %12s %12s\n", "violations", "-",
                rr.run.violation ? "YES" : "none");

    std::printf("\nEvery control transfer was authenticated against the "
                "encrypted reference\nsignatures; execution was clean.\n");
    return 0;
}
