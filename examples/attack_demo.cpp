/**
 * @file
 * Attack demo: a return-oriented attack against a vulnerable "license
 * check" routine, shown three ways:
 *
 *  1. no attack                  -> program denies the pirate copy
 *  2. attack, unprotected CPU    -> return smashed, check bypassed
 *  3. attack, REV-protected CPU  -> compromise detected at commit time
 *                                   and the tainted store never lands
 *
 * This is the paper's motivating DRM scenario (Sec. I): run-time attacks
 * that "disable calls to the license verification system".
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "program/assembler.hpp"

namespace
{

using namespace rev;

constexpr Addr kLicensedFlag = prog::kHeapBase; // 1 = licensed

struct Victim
{
    prog::Program program;
    Addr checkRet = 0; ///< the RET whose return address gets smashed
    Addr grant = 0;    ///< "grant access" code the attacker jumps to
};

Victim
buildVictim()
{
    Victim v;
    prog::Assembler a(prog::kDefaultCodeBase);

    a.label("main");
    a.movi(5, static_cast<i32>(kLicensedFlag));
    a.call("check_license");
    // r1 = 1 iff licensed; only then call grant_access.
    a.beq(1, 0, "deny");
    a.call("grant_access");
    a.halt();
    a.label("deny");
    a.movi(9, -1); // access denied marker
    a.halt();

    a.label("check_license");
    // The license is *not* valid: returns 0. (A real routine would parse
    // an input buffer here -- the overflow the attacker exploits.)
    a.movi(1, 0);
    v.checkRet = a.ret();

    a.label("grant_access");
    a.movi(2, 1);
    a.st(2, 5, 0); // licensed = 1
    a.halt();      // granted session runs from here

    v.program.addModule(a.finalize("drm", "main"));
    v.grant = v.program.main().symbol("grant_access");
    return v;
}

struct Outcome
{
    bool licensed;
    bool detected;
    std::string reason;
};

Outcome
run(bool attack, bool with_rev)
{
    Victim v = buildVictim();
    core::SimConfig cfg;
    cfg.withRev = with_rev;
    core::Simulator sim(v.program, cfg);

    if (attack) {
        // Exploit: when check_license is about to return, overwrite its
        // stacked return address with grant_access's entry.
        sim.core().setPreStepHook([&v, &sim](u64, Addr pc) {
            if (pc == v.checkRet) {
                const Addr sp = sim.core().machine().reg(isa::kRegSp);
                sim.memory().write64(sp, v.grant);
            }
        });
    }

    const core::SimResult r = sim.run();
    Outcome out;
    out.licensed = sim.memory().read64(kLicensedFlag) == 1;
    out.detected = r.run.violation.has_value();
    if (out.detected)
        out.reason = r.run.violation->reason;
    return out;
}

void
report(const char *label, const Outcome &o)
{
    std::printf("%-34s licensed=%-5s %s%s\n", label,
                o.licensed ? "YES" : "no",
                o.detected ? "VIOLATION: " : "",
                o.reason.c_str());
}

} // namespace

int
main()
{
    std::printf("DRM bypass via return-address smash (paper Sec. I "
                "motivation)\n");
    std::printf("------------------------------------------------------------"
                "----\n");
    report("1. honest run, no REV:", run(false, false));
    report("2. attack,     no REV:", run(true, false));
    report("3. attack,   with REV:", run(true, true));
    std::printf("------------------------------------------------------------"
                "----\n");
    std::printf("With REV the illegal return edge fails authentication at "
                "commit time;\nthe grant_access store is squashed and never "
                "reaches memory (R5).\n");
    return 0;
}
