/**
 * @file
 * Context switching under REV (Requirement R4).
 *
 * Prior hardware CFA proposals held reference signatures in CPU-internal
 * tables that had to be reloaded wholesale on every context switch
 * (Arora et al. [6]); REV's signature cache refills on demand like any
 * cache, so a switch costs only natural warm-up misses. This example
 * time-slices two thread contexts on one simulated core (the "OS" saving
 * and restoring architectural state at block boundaries) and reports the
 * SC behaviour around each switch.
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "workloads/generator.hpp"

namespace
{

using namespace rev;

/** A saved context: architectural registers + PC + REV thread state. */
struct ProcessContext
{
    std::array<u64, isa::kNumArchRegs> regs{};
    Addr pc = 0;
    validate::RevValidator::ThreadState rev;
};

void
saveContext(prog::Machine &m, ProcessContext &ctx)
{
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        ctx.regs[r] = m.reg(r);
    ctx.pc = m.pc();
}

void
restoreContext(prog::Machine &m, const ProcessContext &ctx)
{
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        m.setReg(r, ctx.regs[r]);
    m.setPc(ctx.pc);
}

} // namespace

int
main()
{
    workloads::WorkloadProfile prof = workloads::specProfile("sjeng");
    prof.numFunctions = 600;
    prog::Program program = workloads::generateWorkload(prof);

    core::SimConfig cfg;
    cfg.core.maxInstrs = 20'000; // one scheduling quantum
    core::Simulator sim(program, cfg);
    prog::Machine &machine = sim.core().machine();

    // Two thread contexts over the same text, driven apart by different
    // LCG state (r21) -> different hot code paths competing for the SC.
    ProcessContext ctx_a, ctx_b;
    saveContext(machine, ctx_a);
    ctx_b = ctx_a;
    ctx_b.regs[21] ^= 0xdeadbeef;
    ctx_b.regs[isa::kRegSp] -= 0x80000; // its own stack region

    std::printf("quantum  thread   instrs        IPC   SC-misses(delta)\n");
    u64 last_misses = 0;
    ProcessContext *cur = &ctx_a, *other = &ctx_b;
    const char *names[2] = {"A", "B"};
    int who = 0;

    for (int quantum = 0; quantum < 8; ++quantum) {
        restoreContext(machine, *cur);
        sim.engine()->restoreThreadState(cur->rev);
        const core::SimResult r = sim.run(); // one quantum
        cur->rev = sim.engine()->saveThreadState();
        saveContext(machine, *cur);

        if (r.run.violation) {
            std::printf("violation: %s\n", r.run.violation->reason.c_str());
            return 1;
        }
        const u64 misses = r.rev.scMisses();
        std::printf("%7d  %6s  %7llu  %9.3f  %12llu\n", quantum,
                    names[who],
                    static_cast<unsigned long long>(r.run.instrs),
                    r.run.ipc(),
                    static_cast<unsigned long long>(misses - last_misses));
        last_misses = misses;

        std::swap(cur, other);
        who ^= 1;
    }

    std::printf("\nNo table reloads were needed across any switch: the SC "
                "refills on demand\n(Requirement R4), unlike CAM-table "
                "designs that reload per switch.\n");
    return 0;
}
