/**
 * @file
 * Cross-module validation (Sec. IV.B): a main executable calling into two
 * "library" modules, each with its own encrypted signature table and its
 * own key, dispatched at run time through the SAG base/limit registers.
 *
 * Also demonstrates the trusted-toolchain workflow for computed calls:
 * the indirect dispatch into the libraries is discovered by a profiling
 * run (Sec. IV.D) instead of hand annotations.
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "program/assembler.hpp"
#include "program/profiler.hpp"

int
main()
{
    using namespace rev;

    prog::Program program;

    // ---- libm: a math library ------------------------------------------------
    // Linked at a fixed base past main (the trusted linker's choice).
    const Addr libm_base = 0x40000;
    prog::Module libm;
    {
        prog::Assembler a(libm_base);
        a.label("square");
        a.mul(1, 1, 1);
        a.ret();
        a.label("cube");
        a.mul(2, 1, 1);
        a.mul(1, 2, 1);
        a.ret();
        libm = a.finalize("libm", "square");
    }

    // ---- main executable -------------------------------------------------------
    {
        prog::Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(1, 5);
        // Indirect call through a function-pointer table: square or cube.
        a.movi(3, 1); // select cube
        a.shli(3, 3, 3);
        a.la(4, "fntab");
        a.add(4, 4, 3);
        a.ld(4, 4, 0);
        a.callr(4); // discovered by the profiling run
        a.movi(5, static_cast<i32>(prog::kHeapBase));
        a.st(1, 5, 0);
        a.halt();

        a.beginData();
        a.align(8);
        a.label("fntab");
        a.word64(libm.symbol("square"));
        a.word64(libm.symbol("cube"));

        program.addModule(a.finalize("main", "main"));
        program.addModule(std::move(libm));
    }

    // ---- profiling run discovers the computed-call targets --------------------
    const prog::Profile profile = prog::profileRun(program);
    prog::applyProfile(program, profile);
    std::printf("Profiling run: %llu instrs, %zu indirect site(s) "
                "discovered\n",
                static_cast<unsigned long long>(profile.instrCount),
                profile.indirectTargets.size());

    // ---- simulate under REV -----------------------------------------------------
    core::Simulator sim(program, core::SimConfig{});
    const core::SimResult r = sim.run();

    std::printf("\nResult: 5^3 = %llu (expected 125)\n",
                static_cast<unsigned long long>(
                    sim.memory().read64(prog::kHeapBase)));
    std::printf("Modules with signature tables: %zu\n",
                sim.sigStore()->moduleSigs().size());
    for (const auto &ms : sim.sigStore()->moduleSigs()) {
        std::printf("  %-8s code 0x%llx..0x%llx  table @0x%llx (%llu B)\n",
                    ms.module->name.c_str(),
                    static_cast<unsigned long long>(ms.module->base),
                    static_cast<unsigned long long>(ms.module->codeEnd()),
                    static_cast<unsigned long long>(ms.tableBase),
                    static_cast<unsigned long long>(ms.stats.sizeBytes));
    }
    std::printf("SAG lookups: %llu (cross-module transfers resolved "
                "associatively)\n",
                static_cast<unsigned long long>(
                    sim.engine()->sag().lookups()));
    std::printf("Validation: %s\n",
                r.run.violation ? r.run.violation->reason.c_str()
                                : "clean -- every block authenticated");
    return 0;
}
