/**
 * @file
 * SPEC stand-in explorer: run one of the 15 calibrated synthetic
 * benchmarks under a chosen configuration and print the full statistics
 * REV produces -- the per-benchmark view behind Figures 6-11.
 *
 *   ./examples/spec_workload [benchmark] [mode] [sc_kb] [instrs]
 *   e.g. ./examples/spec_workload gobmk full 32 500000
 *        ./examples/spec_workload gcc cfi 64 1000000
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/simulator.hpp"
#include "program/cfg.hpp"
#include "workloads/generator.hpp"

int
main(int argc, char **argv)
{
    using namespace rev;

    const std::string bench = argc > 1 ? argv[1] : "mcf";
    const std::string mode_s = argc > 2 ? argv[2] : "full";
    const unsigned sc_kb = argc > 3 ? std::atoi(argv[3]) : 32;
    const u64 instrs = argc > 4 ? std::atoll(argv[4]) : 500'000;

    sig::ValidationMode mode = sig::ValidationMode::Full;
    if (mode_s == "aggressive")
        mode = sig::ValidationMode::Aggressive;
    else if (mode_s == "cfi")
        mode = sig::ValidationMode::CfiOnly;
    else if (mode_s != "full")
        fatal("mode must be full | aggressive | cfi");

    std::printf("Generating '%s'...\n", bench.c_str());
    const workloads::WorkloadProfile prof = workloads::specProfile(bench);
    const prog::Program program = workloads::generateWorkload(prof);
    const prog::CfgStats cs = prog::buildCfg(program.main()).stats();

    std::printf("  static: %llu basic blocks, %.2f instrs/block, "
                "%.2f successors/block, %zu code bytes\n",
                static_cast<unsigned long long>(cs.numBlocks),
                cs.avgInstrsPerBlock, cs.avgSuccsPerBlock,
                program.main().codeSize);

    // Base run for the overhead comparison.
    core::SimConfig base_cfg;
    base_cfg.withRev = false;
    base_cfg.core.maxInstrs = instrs;
    core::Simulator base(program, base_cfg);
    const core::SimResult rb = base.run();

    core::SimConfig cfg;
    cfg.mode = mode;
    cfg.rev.sc.sizeBytes = sc_kb * 1024ull;
    cfg.core.maxInstrs = instrs;
    core::Simulator sim(program, cfg);
    const core::SimResult r = sim.run();

    const double ovh = 100.0 * (rb.run.ipc() - r.run.ipc()) / rb.run.ipc();
    std::printf("\n%s under %s validation, %u KB SC, %llu instrs:\n",
                bench.c_str(), sig::modeName(mode), sc_kb,
                static_cast<unsigned long long>(instrs));
    std::printf("  %-28s %12.3f\n", "base IPC", rb.run.ipc());
    std::printf("  %-28s %12.3f  (overhead %.2f%%)\n", "REV IPC",
                r.run.ipc(), ovh);
    std::printf("  %-28s %12llu\n", "committed branches",
                static_cast<unsigned long long>(r.run.committedBranches));
    std::printf("  %-28s %12llu\n", "unique branches",
                static_cast<unsigned long long>(r.run.uniqueBranches));
    std::printf("  %-28s %12llu\n", "mispredicts",
                static_cast<unsigned long long>(r.run.mispredicts));
    std::printf("  %-28s %12llu\n", "BBs validated",
                static_cast<unsigned long long>(r.rev.bbValidated));
    std::printf("  %-28s %12llu / %llu\n", "SC misses (complete/partial)",
                static_cast<unsigned long long>(r.rev.scCompleteMisses),
                static_cast<unsigned long long>(r.rev.scPartialMisses));
    std::printf("  %-28s %12llu\n", "SC fill memory accesses",
                static_cast<unsigned long long>(r.scFillAccesses));
    std::printf("  %-28s %12llu / %llu\n", "fill L1D / L2 misses",
                static_cast<unsigned long long>(r.scFillL1Misses),
                static_cast<unsigned long long>(r.scFillL2Misses));
    std::printf("  %-28s %12llu\n", "commit stall cycles",
                static_cast<unsigned long long>(r.rev.commitStallCycles));
    std::printf("  %-28s %12llu (%.1f%% of code)\n", "signature table bytes",
                static_cast<unsigned long long>(r.sigTableBytes),
                100.0 * static_cast<double>(r.sigTableBytes) /
                    static_cast<double>(program.main().codeSize));
    std::printf("  %-28s %12s\n", "violations",
                r.run.violation ? r.run.violation->reason.c_str() : "none");
    return 0;
}
