/**
 * @file
 * Dynamically generated code under REV (Sec. IV.E), both ways the paper
 * offers:
 *
 *  option 1 -- trusted self-modifying code brackets itself with the REV
 *              disable/enable system calls;
 *  option 2 -- the OS/JIT generates the new code's signatures *before*
 *              deployment, so the generated code runs fully validated;
 *  and the failure case -- generated code deployed without signatures is
 *              rejected on its first executed block.
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "program/assembler.hpp"

namespace
{

using namespace rev;

/** Host-side "JIT compiler": emits a function computing r1 = r1 * 3 + 1. */
prog::Module
jitCompile(Addr base)
{
    prog::Assembler a(base);
    a.label("jitted");
    a.muli(1, 1, 3);
    a.addi(1, 1, 1);
    a.ret();
    return a.finalize("jitcode", "jitted");
}

} // namespace

int
main()
{
    std::printf("Dynamically generated code under REV (Sec. IV.E)\n");
    std::printf("------------------------------------------------------------"
                "----\n");

    // The host program: loops calling through a function-pointer slot that
    // initially targets an interpreter stub.
    prog::Program program;
    Addr site = 0;
    {
        prog::Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(1, 1);
        a.movi(10, 8);
        a.label("loop");
        a.la(4, "slot");
        a.ld(4, 4, 0);
        site = a.callr(4);
        a.annotateIndirect(site, {"interp_stub"});
        a.addi(10, 10, -1);
        a.bne(10, 0, "loop");
        a.halt();

        a.label("interp_stub"); // "interpreting" the hot function: r1 += 1
        a.addi(1, 1, 1);
        a.ret();

        a.beginData();
        a.align(8);
        a.label("slot");
        a.word64Label("interp_stub");
        program.addModule(a.finalize("host", "main"));
    }
    const Addr slot = program.main().symbol("slot");

    core::SimConfig cfg;
    core::Simulator sim(program, cfg);

    bool jitted = false;
    sim.core().setPreStepHook([&](u64 idx, Addr) {
        if (idx == 40 && !jitted) {
            jitted = true;
            // --- option 2: the trusted JIT path --------------------------
            prog::Module code = jitCompile(0x80000);
            const Addr fn = code.symbol("jitted");
            std::printf("[jit] compiled hot function to 0x%llx (%zu "
                        "bytes)\n",
                        static_cast<unsigned long long>(fn),
                        code.image.size());
            program.addModule(std::move(code));
            program.modules()[0].indirectTargets[site].push_back(fn);
            sim.reloadProgram(); // regenerate + reload signature tables
            sim.memory().write64(slot, fn);
            std::printf("[jit] signatures regenerated (%zu modules), "
                        "dispatch patched\n",
                        sim.sigStore()->moduleSigs().size());
        }
    });

    const core::SimResult r = sim.run();
    std::printf("\nRun: %s; r1 = %llu (stub iterations then jitted "
                "iterations)\n",
                r.run.violation ? r.run.violation->reason.c_str()
                                : "clean",
                static_cast<unsigned long long>(
                    sim.core().machine().reg(1)));
    std::printf("Blocks validated: %llu, SC misses: %llu\n",
                static_cast<unsigned long long>(r.rev.bbValidated),
                static_cast<unsigned long long>(r.rev.scMisses()));

    // --- the failure case: skipping the trusted path --------------------
    std::printf("\nNow the rogue path: deploy generated code WITHOUT "
                "signatures...\n");
    prog::Program p2;
    Addr site2 = 0;
    {
        prog::Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(1, 1);
        a.la(4, "slot");
        a.ld(4, 4, 0);
        site2 = a.callr(4);
        a.annotateIndirect(site2, {"stub"});
        a.halt();
        a.label("stub");
        a.ret();
        a.beginData();
        a.align(8);
        a.label("slot");
        a.word64Label("stub");
        p2.addModule(a.finalize("host2", "main"));
    }
    core::Simulator rogue(p2, cfg);
    {
        prog::Module code = jitCompile(0x80000);
        const Addr fn = code.symbol("jitted");
        rogue.memory().writeBytes(code.base, code.image);
        rogue.memory().write64(p2.main().symbol("slot"), fn);
    }
    const core::SimResult r2 = rogue.run();
    std::printf("Result: %s\n", r2.run.violation
                                    ? r2.run.violation->reason.c_str()
                                    : "UNDETECTED (bug!)");
    return 0;
}
