/**
 * @file
 * Validation timeline: stream every authentication event of a small run
 * through the engine's trace callback — the observability surface a
 * security team would hook (and the source of the offender signatures the
 * paper's conclusion mentions).
 */

#include <cstdio>

#include "core/simulator.hpp"
#include "program/assembler.hpp"

int
main()
{
    using namespace rev;

    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 3);
    a.label("loop");
    a.call("work");
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.halt();
    a.label("work");
    a.addi(2, 2, 5);
    a.ret();

    prog::Program program;
    program.addModule(a.finalize("timeline", "main"));

    core::Simulator sim(program, core::SimConfig{});
    std::printf("%6s %10s %10s %10s %6s %8s %7s  %s\n", "cycle", "bb#",
                "start", "term", "hash", "source", "stall", "verdict");
    sim.engine()->setTraceCallback(
        [](const validate::RevValidator::ValidationEvent &ev) {
            std::printf("%6llu %10llu   0x%06llx   0x%06llx  %04x %8s %7llu  %s%s\n",
                        static_cast<unsigned long long>(ev.commitCycle),
                        static_cast<unsigned long long>(ev.bbSeq),
                        static_cast<unsigned long long>(ev.start),
                        static_cast<unsigned long long>(ev.term),
                        ev.hash & 0xffff,
                        ev.scHit ? "SC-hit"
                                 : (ev.partialMiss ? "partial" : "RAM"),
                        static_cast<unsigned long long>(ev.stallCycles),
                        ev.passed ? "ok " : "VIOLATION: ",
                        ev.reason.c_str());
        });

    const core::SimResult r = sim.run();
    std::printf("\n%llu blocks authenticated in %llu cycles "
                "(%llu SC misses, %llu stall cycles)\n",
                static_cast<unsigned long long>(r.rev.bbValidated),
                static_cast<unsigned long long>(r.run.cycles),
                static_cast<unsigned long long>(r.rev.scMisses()),
                static_cast<unsigned long long>(r.rev.commitStallCycles));
    return 0;
}
