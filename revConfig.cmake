
####### Expanded from @PACKAGE_INIT@ by configure_package_config_file() #######
####### Any changes to this file will be overwritten by the next CMake run ####
####### The input file was revConfig.cmake.in                            ########

get_filename_component(PACKAGE_PREFIX_DIR "${CMAKE_CURRENT_LIST_DIR}/../../../" ABSOLUTE)

macro(set_and_check _var _file)
  set(${_var} "${_file}")
  if(NOT EXISTS "${_file}")
    message(FATAL_ERROR "File or directory ${_file} referenced by variable ${_var} does not exist !")
  endif()
endmacro()

macro(check_required_components _NAME)
  foreach(comp ${${_NAME}_FIND_COMPONENTS})
    if(NOT ${_NAME}_${comp}_FOUND)
      if(${_NAME}_FIND_REQUIRED_${comp})
        set(${_NAME}_FOUND FALSE)
      endif()
    endif()
  endforeach()
endmacro()

####################################################################################

include("${CMAKE_CURRENT_LIST_DIR}/revTargets.cmake")

# Consumers use e.g. target_link_libraries(app PRIVATE rev::rev_core) and
# include headers as "core/simulator.hpp" under the installed include/rev
# prefix.
set_and_check(REV_INCLUDE_DIR "${PACKAGE_PREFIX_DIR}/include/rev")
check_required_components(rev)
