/**
 * @file
 * Shared helpers for building small test programs.
 */

#ifndef REV_TESTS_TESTUTIL_HPP
#define REV_TESTS_TESTUTIL_HPP

#include "program/assembler.hpp"
#include "program/program.hpp"

namespace rev::test
{

/**
 * A minimal program: main() sums 1..10 into r1 via a loop, calls helper()
 * which doubles r1, stores the result at kResultAddr, and halts.
 */
inline constexpr Addr kResultAddr = prog::kHeapBase;

inline prog::Program
makeLoopCallProgram()
{
    using namespace isa;
    prog::Assembler a(prog::kDefaultCodeBase);

    a.label("main");
    a.movi(1, 0);   // acc = 0
    a.movi(2, 10);  // i = 10
    a.label("loop");
    a.add(1, 1, 2); // acc += i
    a.addi(2, 2, -1);
    a.bne(2, 0, "loop");
    a.call("helper");
    a.movi(5, static_cast<i32>(kResultAddr));
    a.st(1, 5, 0);
    a.halt();

    a.label("helper");
    a.add(1, 1, 1); // acc *= 2
    a.ret();

    prog::Program p;
    p.addModule(a.finalize("main", "main"));
    return p;
}

/**
 * A program with an indirect call dispatched through a jump table:
 * main calls fn_a or fn_b through CALLR depending on the loop parity,
 * looping kDispatchIters times; fn_a adds 3, fn_b adds 5.
 */
inline constexpr int kDispatchIters = 8;

inline prog::Program
makeIndirectDispatchProgram()
{
    using namespace isa;
    prog::Assembler a(prog::kDefaultCodeBase);

    a.label("main");
    a.movi(1, 0);               // acc
    a.movi(2, kDispatchIters);  // counter
    a.label("loop");
    a.andi(3, 2, 1);            // parity
    a.shli(3, 3, 3);            // *8
    a.la(4, "table");
    a.add(4, 4, 3);
    a.ld(5, 4, 0);              // target = table[parity]
    const Addr site = a.callr(5);
    a.annotateIndirect(site, {"fn_a", "fn_b"});
    a.addi(2, 2, -1);
    a.bne(2, 0, "loop");
    a.halt();

    a.label("fn_a");
    a.addi(1, 1, 3);
    a.ret();

    a.label("fn_b");
    a.addi(1, 1, 5);
    a.ret();

    a.beginData();
    a.align(8);
    a.label("table");
    a.word64Label("fn_a");
    a.word64Label("fn_b");

    prog::Program p;
    p.addModule(a.finalize("main", "main"));
    return p;
}

} // namespace rev::test

#endif // REV_TESTS_TESTUTIL_HPP
