# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("isa")
subdirs("program")
subdirs("sig")
subdirs("mem")
subdirs("cpu")
subdirs("validate")
subdirs("core")
subdirs("attacks")
subdirs("workloads")
subdirs("bench")
subdirs("redteam")
subdirs("fuzz")
