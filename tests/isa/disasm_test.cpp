/**
 * @file
 * Disassembler smoke tests.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hpp"

namespace rev::isa
{
namespace
{

TEST(Disasm, AluForms)
{
    EXPECT_EQ(disassemble({.op = Opcode::Add, .rd = 1, .rs1 = 2, .rs2 = 3},
                          0),
              "add r1, r2, r3");
    EXPECT_EQ(disassemble({.op = Opcode::Movi, .rd = 5, .imm = -7}, 0),
              "movi r5, -7");
    EXPECT_EQ(disassemble({.op = Opcode::Addi, .rd = 1, .rs1 = 2, .imm = 9},
                          0),
              "addi r1, r2, 9");
}

TEST(Disasm, MemoryForms)
{
    EXPECT_EQ(disassemble({.op = Opcode::Ld, .rd = 3, .rs1 = 30, .imm = 16},
                          0),
              "ld r3, [r30+16]");
    EXPECT_EQ(disassemble({.op = Opcode::St, .rd = 3, .rs1 = 30, .imm = -8},
                          0),
              "st [r30-8], r3");
}

TEST(Disasm, SubWordMemoryForms)
{
    EXPECT_EQ(disassemble({.op = Opcode::Lb, .rd = 1, .rs1 = 2, .imm = 4},
                          0),
              "lb r1, [r2+4]");
    EXPECT_EQ(disassemble({.op = Opcode::Sw, .rd = 1, .rs1 = 2, .imm = -4},
                          0),
              "sw [r2-4], r1");
}

TEST(Disasm, ControlForms)
{
    EXPECT_EQ(
        disassemble({.op = Opcode::Beq, .rs1 = 1, .rs2 = 2, .imm = 0x40},
                    0x1000),
        "beq r1, r2, 0x1040");
    EXPECT_EQ(disassemble({.op = Opcode::Call, .imm = 0x100}, 0x2000),
              "call 0x2100");
    EXPECT_EQ(disassemble({.op = Opcode::CallR, .rs1 = 9}, 0), "callr r9");
    EXPECT_EQ(disassemble({.op = Opcode::Ret}, 0), "ret");
    EXPECT_EQ(disassemble({.op = Opcode::Syscall, .imm = 2}, 0),
              "syscall 2");
}

} // namespace
} // namespace rev::isa
