# CMake generated Testfile for 
# Source directory: /root/repo/tests/isa
# Build directory: /root/repo/tests/isa
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/isa/test_isa[1]_include.cmake")
