/**
 * @file
 * Byte-exact encode/decode round-trip tests for the RVX codec.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "isa/codec.hpp"

namespace rev::isa
{
namespace
{

std::vector<Opcode>
allOpcodes()
{
    std::vector<Opcode> ops;
    for (int raw = 0; raw < 256; ++raw)
        if (opcodeValid(static_cast<u8>(raw)))
            ops.push_back(static_cast<Opcode>(raw));
    return ops;
}

TEST(Codec, AllOpcodesHaveNamesAndClasses)
{
    for (Opcode op : allOpcodes()) {
        EXPECT_STRNE(opcodeName(op), "???");
        EXPECT_GT(opcodeLength(op), 0u);
    }
}

TEST(Codec, InvalidOpcodeBytesRejected)
{
    const u8 bad[] = {0xff, 0, 0, 0, 0, 0, 0};
    EXPECT_FALSE(decode(bad, sizeof(bad)).has_value());
    const u8 gap[] = {0x0b, 0, 0, 0, 0, 0, 0}; // hole after Syscall
    EXPECT_FALSE(decode(gap, sizeof(gap)).has_value());
}

TEST(Codec, TruncatedEncodingRejected)
{
    // A branch is 7 bytes; offer fewer.
    std::vector<u8> buf;
    encode({.op = Opcode::Beq, .rs1 = 1, .rs2 = 2, .imm = 0x100}, buf);
    ASSERT_EQ(buf.size(), 7u);
    for (std::size_t avail = 0; avail < 7; ++avail)
        EXPECT_FALSE(decode(buf.data(), avail).has_value())
            << "avail=" << avail;
    EXPECT_TRUE(decode(buf.data(), 7).has_value());
}

TEST(Codec, OutOfRangeRegisterRejected)
{
    std::vector<u8> buf;
    encode({.op = Opcode::Add, .rd = 1, .rs1 = 2, .rs2 = 3}, buf);
    buf[1] = 32; // rd out of range
    EXPECT_FALSE(decode(buf.data(), buf.size()).has_value());
}

/** Round-trip every opcode with randomized fields. */
class CodecRoundTrip : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(CodecRoundTrip, EncodeDecodeIdentity)
{
    const Opcode op = GetParam();
    Rng rng(static_cast<u64>(op) + 1000);

    for (int t = 0; t < 50; ++t) {
        Instr ins;
        ins.op = op;
        // Populate only the fields the format encodes, since others don't
        // survive the trip.
        switch (opcodeLength(op)) {
          case 1:
            break;
          case 2:
            if (op == Opcode::Syscall)
                ins.imm = static_cast<i32>(rng.below(256));
            else
                ins.rs1 = static_cast<u8>(rng.below(32));
            break;
          case 4:
            ins.rd = static_cast<u8>(rng.below(32));
            ins.rs1 = static_cast<u8>(rng.below(32));
            ins.rs2 = static_cast<u8>(rng.below(32));
            break;
          case 5:
            ins.imm = static_cast<i32>(rng.next());
            break;
          case 6:
            ins.rd = static_cast<u8>(rng.below(32));
            ins.imm = static_cast<i32>(rng.next());
            break;
          case 7:
            if (opcodeClass(op) == InstrClass::Branch) {
                ins.rs1 = static_cast<u8>(rng.below(32));
                ins.rs2 = static_cast<u8>(rng.below(32));
            } else {
                ins.rd = static_cast<u8>(rng.below(32));
                ins.rs1 = static_cast<u8>(rng.below(32));
            }
            ins.imm = static_cast<i32>(rng.next());
            break;
          default:
            FAIL() << "unexpected length";
        }

        std::vector<u8> buf;
        const unsigned len = encode(ins, buf);
        EXPECT_EQ(len, ins.length());
        auto back = decode(buf.data(), buf.size());
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, ins);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, CodecRoundTrip,
                         ::testing::ValuesIn(allOpcodes()),
                         [](const auto &info) {
                             return std::string(opcodeName(info.param));
                         });

TEST(Codec, StreamOfInstructionsDecodesSequentially)
{
    // Encode a mixed stream and re-decode it instruction by instruction.
    std::vector<Instr> stream = {
        {.op = Opcode::Movi, .rd = 1, .imm = 42},
        {.op = Opcode::Add, .rd = 2, .rs1 = 1, .rs2 = 1},
        {.op = Opcode::St, .rd = 2, .rs1 = 30, .imm = -8},
        {.op = Opcode::Beq, .rs1 = 2, .rs2 = 0, .imm = 64},
        {.op = Opcode::Ret},
    };
    std::vector<u8> buf;
    for (const auto &ins : stream)
        encode(ins, buf);

    std::size_t off = 0;
    for (const auto &ins : stream) {
        auto got = decode(buf.data() + off, buf.size() - off);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, ins);
        off += got->length();
    }
    EXPECT_EQ(off, buf.size());
}

TEST(Codec, InstrPredicates)
{
    const Instr call{.op = Opcode::Call, .imm = 100};
    EXPECT_TRUE(call.isCall());
    EXPECT_TRUE(call.writesMem());
    EXPECT_TRUE(call.isControlFlow());
    EXPECT_FALSE(call.isComputed());

    const Instr ret{.op = Opcode::Ret};
    EXPECT_TRUE(ret.isReturn());
    EXPECT_TRUE(ret.readsMem());

    const Instr jmpr{.op = Opcode::JmpR, .rs1 = 4};
    EXPECT_TRUE(jmpr.isComputed());

    const Instr add{.op = Opcode::Add};
    EXPECT_FALSE(add.isControlFlow());
    EXPECT_FALSE(add.readsMem());
    EXPECT_FALSE(add.writesMem());
}

TEST(Codec, DirectTargetArithmetic)
{
    const Instr b{.op = Opcode::Beq, .imm = -16};
    EXPECT_EQ(b.directTarget(0x1000), 0xff0u);
    EXPECT_EQ(b.fallThrough(0x1000), 0x1007u);
}

} // namespace
} // namespace rev::isa
