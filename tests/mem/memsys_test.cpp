/**
 * @file
 * Memory-system composition tests.
 */

#include <gtest/gtest.h>

#include "mem/memsys.hpp"

namespace rev::mem
{
namespace
{

TEST(MemSys, L1HitLatency)
{
    MemorySystem ms;
    ms.access(0x1000, AccessType::DataRead, 0); // warm caches + TLB
    const AccessResult res = ms.access(0x1000, AccessType::DataRead, 100);
    EXPECT_TRUE(res.l1Hit);
    EXPECT_EQ(res.completeAt, 102u); // 2-cycle L1D
}

TEST(MemSys, L2HitLatency)
{
    MemorySystem ms;
    ms.access(0x1000, AccessType::DataRead, 0);
    // Evict from L1D by filling its set: L1D 64KB/4way/64B = 256 sets.
    // Lines mapping to the same set differ by 256*64 = 16KB.
    for (int i = 1; i <= 4; ++i)
        ms.access(0x1000 + i * 16384, AccessType::DataRead, 0);
    const AccessResult res = ms.access(0x1000, AccessType::DataRead, 1000);
    EXPECT_FALSE(res.l1Hit);
    EXPECT_TRUE(res.l2Hit);
    EXPECT_EQ(res.completeAt, 1000u + 2 + 5); // L1 + L2 latency
}

TEST(MemSys, ColdMissGoesToDram)
{
    MemorySystem ms;
    const AccessResult res = ms.access(0x9000, AccessType::DataRead, 0);
    EXPECT_FALSE(res.l1Hit);
    EXPECT_FALSE(res.l2Hit);
    // TLB cold walk + L1 + L2 + DRAM first chunk.
    EXPECT_GT(res.completeAt, 100u);
}

TEST(MemSys, InstrFetchUsesL1I)
{
    MemorySystem ms;
    ms.access(0x1000, AccessType::InstrFetch, 0);
    EXPECT_EQ(ms.l1i().misses(), 1u);
    EXPECT_EQ(ms.l1d().misses(), 0u);
    ms.access(0x1000, AccessType::DataRead, 0);
    EXPECT_EQ(ms.l1d().misses(), 1u); // separate arrays
}

TEST(MemSys, ScFillUsesL1DPath)
{
    MemorySystem ms;
    ms.access(0x6000000, AccessType::ScFill, 0);
    EXPECT_EQ(ms.l1d().misses(), 1u);
    EXPECT_EQ(ms.accesses(AccessType::ScFill), 1u);
    EXPECT_EQ(ms.l1Misses(AccessType::ScFill), 1u);
    EXPECT_EQ(ms.l2Misses(AccessType::ScFill), 1u);
    // A second fill to the same line hits in L1D.
    const AccessResult res = ms.access(0x6000000, AccessType::ScFill, 500);
    EXPECT_TRUE(res.l1Hit);
    EXPECT_EQ(ms.l1Misses(AccessType::ScFill), 1u);
}

TEST(MemSys, PerTypeCountersIndependent)
{
    MemorySystem ms;
    ms.access(0x1000, AccessType::DataRead, 0);
    ms.access(0x2000, AccessType::DataWrite, 0);
    ms.access(0x3000, AccessType::InstrFetch, 0);
    ms.access(0x4000, AccessType::ScFill, 0);
    ms.access(0x5000, AccessType::Prefetch, 0);
    for (unsigned i = 0; i < kNumAccessTypes; ++i)
        EXPECT_EQ(ms.accesses(static_cast<AccessType>(i)), 1u);
}

TEST(MemSys, L2PortContentionSerializes)
{
    MemorySystem ms;
    // Two same-cycle L1 misses to different lines; the second's L2 access
    // starts one cycle later.
    const AccessResult a = ms.access(0x10000, AccessType::DataRead, 0);
    const AccessResult b = ms.access(0x20000, AccessType::DataRead, 0);
    EXPECT_GT(b.completeAt, a.completeAt);
}

TEST(MemSys, ResetRestoresColdState)
{
    MemorySystem ms;
    ms.access(0x1000, AccessType::DataRead, 0);
    ms.reset();
    EXPECT_EQ(ms.accesses(AccessType::DataRead), 0u);
    const AccessResult res = ms.access(0x1000, AccessType::DataRead, 0);
    EXPECT_FALSE(res.l1Hit);
}

TEST(MemSys, DirtyL1EvictionWritesBackToL2)
{
    MemorySystem ms;
    // Dirty a line, then evict it by filling its L1D set (4 ways; same-set
    // lines are 16 KB apart).
    ms.access(0x1000, AccessType::DataWrite, 0);
    for (int i = 1; i <= 4; ++i)
        ms.access(0x1000 + i * 16384, AccessType::DataRead, 0);
    // The victim was absorbed by the L2: reading it again hits L2, not
    // DRAM.
    const u64 dram_before = ms.dram().accesses();
    const AccessResult res = ms.access(0x1000, AccessType::DataRead, 1000);
    EXPECT_FALSE(res.l1Hit);
    EXPECT_TRUE(res.l2Hit);
    EXPECT_EQ(ms.dram().accesses(), dram_before);
    EXPECT_GE(ms.l1d().writebacks(), 1u);
}

TEST(MemSys, PrefetchClassIsInstructionSide)
{
    MemorySystem ms;
    ms.access(0x4000, AccessType::Prefetch, 0);
    EXPECT_EQ(ms.l1i().misses(), 1u);
    EXPECT_EQ(ms.l1d().misses(), 0u);
    // A demand fetch of the prefetched line now hits.
    const AccessResult res =
        ms.access(0x4000, AccessType::InstrFetch, 100);
    EXPECT_TRUE(res.l1Hit);
}

TEST(MemSys, BackgroundDmaOccupiesBanks)
{
    MemConfig cfg;
    cfg.dmaIntervalCycles = 2; // aggressive DMA
    MemorySystem busy(cfg);
    MemorySystem quiet;

    // Same DRAM-bound access stream (disjoint from the DMA buffers);
    // bank contention from DMA must slow it down.
    Cycle t_busy = 0, t_quiet = 0;
    for (int i = 0; i < 200; ++i) {
        const Addr a = 0x50000000 + static_cast<Addr>(i) * 4096;
        t_busy = busy.access(a, AccessType::DataRead, t_busy).completeAt;
        t_quiet = quiet.access(a, AccessType::DataRead, t_quiet).completeAt;
    }
    EXPECT_GT(busy.dmaBursts(), 100u);
    EXPECT_GT(t_busy, t_quiet);
}

TEST(MemSys, DmaDisabledByDefault)
{
    MemorySystem ms;
    ms.access(0x1000, AccessType::DataRead, 1'000'000);
    EXPECT_EQ(ms.dmaBursts(), 0u);
}

TEST(MemSys, StatsDumpContainsAllGroups)
{
    MemorySystem ms;
    stats::StatGroup group("mem");
    ms.addStats(group);
    ms.access(0x1000, AccessType::ScFill, 0);
    EXPECT_EQ(group.get("req.sc_fill.count"), 1u);
    EXPECT_EQ(group.get("req.sc_fill.l1_miss"), 1u);
}

} // namespace
} // namespace rev::mem
