/**
 * @file
 * Set-associative cache model tests.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "mem/cache.hpp"

namespace rev::mem
{
namespace
{

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache c("t", 1024, 2, 64);
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x13f, false)); // same 64B line
    EXPECT_FALSE(c.access(0x140, false)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way, 64B lines, 1024B total -> 8 sets. Addresses mapping to set 0:
    // 0x000, 0x200, 0x400 ...
    SetAssocCache c("t", 1024, 2, 64);
    c.access(0x000, false);
    c.access(0x200, false);
    c.access(0x000, false);      // refresh 0x000
    c.access(0x400, false);      // evicts LRU = 0x200
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x200));
    EXPECT_TRUE(c.probe(0x400));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    SetAssocCache c("t", 1024, 2, 64);
    c.access(0x000, true); // dirty
    c.access(0x200, false);
    std::optional<Addr> wb;
    c.access(0x400, false, &wb); // evicts dirty 0x000
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(*wb, 0x000u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    SetAssocCache c("t", 1024, 2, 64);
    c.access(0x000, false);
    c.access(0x200, false);
    std::optional<Addr> wb;
    c.access(0x400, false, &wb);
    EXPECT_FALSE(wb.has_value());
}

TEST(Cache, WriteHitMarksDirty)
{
    SetAssocCache c("t", 1024, 2, 64);
    c.access(0x000, false);
    c.access(0x000, true); // hit, now dirty
    c.access(0x200, false);
    std::optional<Addr> wb;
    c.access(0x400, false, &wb);
    ASSERT_TRUE(wb.has_value());
}

TEST(Cache, InvalidateLine)
{
    SetAssocCache c("t", 1024, 2, 64);
    c.access(0x100, false);
    c.invalidateLine(0x100);
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, ProbeDoesNotPerturb)
{
    SetAssocCache c("t", 1024, 2, 64);
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, ResetClearsEverything)
{
    SetAssocCache c("t", 1024, 2, 64);
    c.access(0x100, true);
    c.reset();
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(SetAssocCache("t", 1000, 2, 64), FatalError);
    EXPECT_THROW(SetAssocCache("t", 1024, 0, 64), FatalError);
    EXPECT_THROW(SetAssocCache("t", 1024, 2, 60), FatalError);
}

TEST(Cache, Table2Geometries)
{
    // The Table 2 configurations must construct.
    SetAssocCache l1i("l1i", 64 * 1024, 4, 64);
    SetAssocCache l1d("l1d", 64 * 1024, 4, 64);
    SetAssocCache l2("l2", 512 * 1024, 8, 64);
    EXPECT_EQ(l1i.sizeBytes(), 64u * 1024);
    EXPECT_EQ(l2.sizeBytes(), 512u * 1024);
}

TEST(Cache, WorkingSetSmallerThanCacheEventuallyAllHits)
{
    SetAssocCache c("t", 64 * 1024, 4, 64);
    Rng rng(1);
    std::vector<Addr> set;
    for (int i = 0; i < 256; ++i)
        set.push_back((rng.next() % 512) * 64); // 32KB footprint
    for (Addr a : set)
        c.access(a, false);
    const u64 misses_after_warm = c.misses();
    for (int round = 0; round < 10; ++round)
        for (Addr a : set)
            c.access(a, false);
    EXPECT_EQ(c.misses(), misses_after_warm);
}

} // namespace
} // namespace rev::mem
