/**
 * @file
 * DRAM model tests (banked, open-page).
 */

#include <gtest/gtest.h>

#include "mem/dram.hpp"

namespace rev::mem
{
namespace
{

TEST(Dram, FirstAccessPaysFullLatency)
{
    DramModel dram;
    EXPECT_EQ(dram.access(0x1000, 100), 200u); // 100-cycle first chunk
    EXPECT_EQ(dram.rowMisses(), 1u);
}

TEST(Dram, OpenPageHitIsFaster)
{
    DramModel dram;
    dram.access(0x1000, 0);
    // Same 4KB row, same bank only if same line%banks -- use addr in the
    // same burst-line so bank and row match.
    const Cycle t = dram.access(0x1010, 1000);
    EXPECT_EQ(t, 1000u + 60u);
    EXPECT_EQ(dram.rowHits(), 1u);
}

TEST(Dram, RowConflictReopens)
{
    DramConfig cfg;
    DramModel dram(cfg);
    // Two addresses in the same bank, different rows: line numbers differ
    // by a multiple of banks (8) and rows differ.
    const Addr a = 0;                  // line 0, bank 0, row 0
    const Addr b = 8 * 4096;           // line 512 -> bank 0, row 8
    dram.access(a, 0);
    dram.access(b, 1000);
    EXPECT_EQ(dram.rowMisses(), 2u);
}

TEST(Dram, BankContentionSerializes)
{
    DramModel dram;
    // Two simultaneous requests to the same bank: the second starts after
    // the first's burst occupancy.
    const Cycle t1 = dram.access(0x0, 0);
    const Cycle t2 = dram.access(8 * 4096, 0); // same bank, row conflict
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 4u + 100u); // waits burstCycles, then full access
}

TEST(Dram, DifferentBanksProceedInParallel)
{
    DramModel dram;
    const Cycle t1 = dram.access(0 * 64, 0); // bank 0
    const Cycle t2 = dram.access(1 * 64, 0); // bank 1
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 100u);
}

TEST(Dram, ResetClosesPages)
{
    DramModel dram;
    dram.access(0x1000, 0);
    dram.reset();
    dram.access(0x1000, 0);
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(dram.rowHits(), 0u);
}

} // namespace
} // namespace rev::mem
