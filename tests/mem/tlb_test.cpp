/**
 * @file
 * TLB hierarchy tests.
 */

#include <gtest/gtest.h>

#include "mem/tlb.hpp"

namespace rev::mem
{
namespace
{

TEST(Tlb, MissThenHitSamePage)
{
    Tlb tlb("t", 4);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1fff)); // same 4K page
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, LruReplacement)
{
    Tlb tlb("t", 2);
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.access(0x1000);  // refresh
    tlb.access(0x3000);  // evicts 0x2000
    EXPECT_TRUE(tlb.probe(0x1000));
    EXPECT_FALSE(tlb.probe(0x2000));
}

TEST(TlbHierarchy, L1HitIsFree)
{
    TlbHierarchy h;
    h.translate(0x1000, false);
    EXPECT_EQ(h.translate(0x1000, false), 0u);
}

TEST(TlbHierarchy, L2HitCostsL2Latency)
{
    TlbConfig cfg;
    cfg.dtlbEntries = 1;
    TlbHierarchy h(cfg);
    h.translate(0x1000, false); // fills D-TLB + L2
    h.translate(0x2000, false); // evicts 0x1000 from 1-entry D-TLB
    EXPECT_EQ(h.translate(0x1000, false), cfg.l2Latency);
}

TEST(TlbHierarchy, ColdMissPaysPageWalk)
{
    TlbConfig cfg;
    TlbHierarchy h(cfg);
    EXPECT_EQ(h.translate(0x5000, false),
              cfg.l2Latency + cfg.pageWalkLatency);
    EXPECT_EQ(h.pageWalks(), 1u);
}

TEST(TlbHierarchy, InstrAndDataPathsSeparateL1)
{
    TlbHierarchy h;
    h.translate(0x1000, true); // I-TLB only
    // Data access to the same page: misses D-TLB but hits shared L2.
    EXPECT_GT(h.translate(0x1000, false), 0u);
    EXPECT_EQ(h.translate(0x1000, false), 0u);
}

} // namespace
} // namespace rev::mem
