file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/cache_test.cpp.o"
  "CMakeFiles/test_mem.dir/cache_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/dram_test.cpp.o"
  "CMakeFiles/test_mem.dir/dram_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/memsys_test.cpp.o"
  "CMakeFiles/test_mem.dir/memsys_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/tlb_test.cpp.o"
  "CMakeFiles/test_mem.dir/tlb_test.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
