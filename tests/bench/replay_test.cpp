/**
 * @file
 * The replay contract: timing a config against a recorded architectural
 * trace must produce results bit-identical to direct execution — for
 * every sweep config, including the no-REV base core, and for the sweep
 * engine end-to-end with replay forced on and off.
 *
 * The trace is recorded once under a REV config (the sweep records under
 * the config with the lowest store-drain watermark, so forwarding
 * distances dominate every other drain policy) and replayed everywhere.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "bench/suite.hpp"
#include "bench/sweep_runner.hpp"
#include "core/simulator.hpp"
#include "program/trace.hpp"
#include "workloads/generator.hpp"

namespace rev::bench
{
namespace
{

constexpr u64 kBudget = 20'000;

const prog::Program &
benchProgram()
{
    static const prog::Program p =
        workloads::generateWorkload(workloads::specProfile("bzip2"));
    return p;
}

/** Trace recorded once under the sweep's recording config. */
const prog::Trace &
recordedTrace()
{
    static const prog::Trace t = [] {
        prog::TraceRecorder rec;
        core::SimConfig cfg = sweepSimConfig(Config::Full32, kBudget);
        cfg.traceRecorder = &rec;
        core::Simulator sim(benchProgram(), cfg);
        sim.run();
        return rec.take();
    }();
    return t;
}

class ReplayDeterminism : public ::testing::TestWithParam<Config>
{
};

TEST_P(ReplayDeterminism, StatsBitIdenticalToDirect)
{
    ASSERT_TRUE(recordedTrace().replayable());

    const core::SimConfig cfg = sweepSimConfig(GetParam(), kBudget);

    core::Simulator direct(benchProgram(), cfg);
    direct.run();

    core::SimConfig rcfg = cfg;
    rcfg.replayTrace = &recordedTrace();
    core::Simulator replayed(benchProgram(), rcfg);
    ASSERT_TRUE(replayed.replayActive());
    replayed.run();

    // Every tracked statistic of every component, not just the headline
    // numbers: the timing model must be unable to tell the modes apart.
    const stats::StatSet a = direct.stats();
    const stats::StatSet b = replayed.stats();
    ASSERT_EQ(a.rows().size(), b.rows().size());
    for (std::size_t i = 0; i < a.rows().size(); ++i) {
        EXPECT_EQ(a.rows()[i].first, b.rows()[i].first);
        EXPECT_EQ(a.rows()[i].second, b.rows()[i].second)
            << "stat " << a.rows()[i].first << " diverges under replay";
    }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ReplayDeterminism,
                         ::testing::ValuesIn(kAllConfigs),
                         [](const auto &info) {
                             return std::string(configName(info.param));
                         });

TEST(ReplaySweep, ReplayOnAndOffProduceIdenticalSweeps)
{
    SweepOptions opts = SweepOptions::quick();
    opts.instrBudget = kBudget;
    opts.threads = 2;
    opts.progress = false;

    ::setenv("REV_TRACE_REPLAY", "0", 1);
    const Sweep direct = runSweep(opts);
    ::setenv("REV_TRACE_REPLAY", "1", 1);
    const Sweep replayed = runSweep(opts);
    ::unsetenv("REV_TRACE_REPLAY");

    // operator== compares every field of every run bit-for-bit.
    EXPECT_TRUE(direct == replayed);
}

} // namespace
} // namespace rev::bench
