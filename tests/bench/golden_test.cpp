/**
 * Golden-statistics pinning: the quick sweep's tracked simulated numbers
 * must be bit-identical to the checked-in snapshot. This is the guard
 * that keeps the simulator's fast paths (decode cache, page-span memory
 * ops, store-buffer bounds) purely observational — any change to a
 * simulated statistic is a timing-model change and must come with a
 * deliberate snapshot refresh (see docs/COOKBOOK.md).
 */

#include <gtest/gtest.h>

#include "bench/golden.hpp"
#include "bench/suite.hpp"

namespace rev::bench
{
namespace
{

TEST(GoldenStats, QuickSweepMatchesPinnedSnapshot)
{
    SweepOptions opts = SweepOptions::quick();
    opts.threads = 0; // honor REV_BENCH_THREADS / hardware concurrency
    opts.progress = false;
    const Sweep sweep = runSweep(opts);

    const auto diffs =
        compareToGolden(sweep, opts, REV_GOLDEN_QUICK_SWEEP_PATH);
    for (const auto &d : diffs)
        ADD_FAILURE() << d.bench << "/" << configName(d.config) << ": "
                      << d.detail;
    EXPECT_TRUE(diffs.empty());
}

} // namespace
} // namespace rev::bench
