file(REMOVE_RECURSE
  "CMakeFiles/test_bench.dir/dispatch_test.cpp.o"
  "CMakeFiles/test_bench.dir/dispatch_test.cpp.o.d"
  "CMakeFiles/test_bench.dir/golden_test.cpp.o"
  "CMakeFiles/test_bench.dir/golden_test.cpp.o.d"
  "CMakeFiles/test_bench.dir/replay_test.cpp.o"
  "CMakeFiles/test_bench.dir/replay_test.cpp.o.d"
  "CMakeFiles/test_bench.dir/snapshot_test.cpp.o"
  "CMakeFiles/test_bench.dir/snapshot_test.cpp.o.d"
  "CMakeFiles/test_bench.dir/sweep_cache_test.cpp.o"
  "CMakeFiles/test_bench.dir/sweep_cache_test.cpp.o.d"
  "CMakeFiles/test_bench.dir/sweep_test.cpp.o"
  "CMakeFiles/test_bench.dir/sweep_test.cpp.o.d"
  "test_bench"
  "test_bench.pdb"
  "test_bench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
