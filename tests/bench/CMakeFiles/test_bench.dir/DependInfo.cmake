
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bench/dispatch_test.cpp" "tests/bench/CMakeFiles/test_bench.dir/dispatch_test.cpp.o" "gcc" "tests/bench/CMakeFiles/test_bench.dir/dispatch_test.cpp.o.d"
  "/root/repo/tests/bench/golden_test.cpp" "tests/bench/CMakeFiles/test_bench.dir/golden_test.cpp.o" "gcc" "tests/bench/CMakeFiles/test_bench.dir/golden_test.cpp.o.d"
  "/root/repo/tests/bench/replay_test.cpp" "tests/bench/CMakeFiles/test_bench.dir/replay_test.cpp.o" "gcc" "tests/bench/CMakeFiles/test_bench.dir/replay_test.cpp.o.d"
  "/root/repo/tests/bench/snapshot_test.cpp" "tests/bench/CMakeFiles/test_bench.dir/snapshot_test.cpp.o" "gcc" "tests/bench/CMakeFiles/test_bench.dir/snapshot_test.cpp.o.d"
  "/root/repo/tests/bench/sweep_cache_test.cpp" "tests/bench/CMakeFiles/test_bench.dir/sweep_cache_test.cpp.o" "gcc" "tests/bench/CMakeFiles/test_bench.dir/sweep_cache_test.cpp.o.d"
  "/root/repo/tests/bench/sweep_test.cpp" "tests/bench/CMakeFiles/test_bench.dir/sweep_test.cpp.o" "gcc" "tests/bench/CMakeFiles/test_bench.dir/sweep_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/rev_common.dir/DependInfo.cmake"
  "/root/repo/src/crypto/CMakeFiles/rev_crypto.dir/DependInfo.cmake"
  "/root/repo/src/isa/CMakeFiles/rev_isa.dir/DependInfo.cmake"
  "/root/repo/src/program/CMakeFiles/rev_program.dir/DependInfo.cmake"
  "/root/repo/bench/CMakeFiles/rev_bench_suite.dir/DependInfo.cmake"
  "/root/repo/src/attacks/CMakeFiles/rev_attacks.dir/DependInfo.cmake"
  "/root/repo/src/workloads/CMakeFiles/rev_workloads.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/rev_core.dir/DependInfo.cmake"
  "/root/repo/src/cpu/CMakeFiles/rev_cpu.dir/DependInfo.cmake"
  "/root/repo/src/validate/CMakeFiles/rev_validate.dir/DependInfo.cmake"
  "/root/repo/src/sig/CMakeFiles/rev_sig.dir/DependInfo.cmake"
  "/root/repo/src/mem/CMakeFiles/rev_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
