# CMake generated Testfile for 
# Source directory: /root/repo/tests/bench
# Build directory: /root/repo/tests/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/bench/test_bench[1]_include.cmake")
