/**
 * @file
 * Dispatch-mode golden equivalence at the simulator level: for every
 * sweep config, every tracked statistic must be bit-identical whether
 * the functional oracle runs superblock token-threaded dispatch or the
 * legacy per-instruction switch — in direct execution and when timing
 * against a recorded trace (including a trace recorded under the other
 * mode; traces carry no dispatch artifacts).
 */

#include <gtest/gtest.h>

#include <string>

#include "bench/suite.hpp"
#include "bench/sweep_runner.hpp"
#include "core/simulator.hpp"
#include "program/interp.hpp"
#include "program/trace.hpp"
#include "workloads/generator.hpp"

namespace rev::bench
{
namespace
{

constexpr u64 kBudget = 20'000;

struct DispatchGuard
{
    prog::DispatchMode saved = prog::dispatchMode();
    ~DispatchGuard() { prog::setDispatchMode(saved); }
};

const prog::Program &
benchProgram()
{
    static const prog::Program p =
        workloads::generateWorkload(workloads::specProfile("sjeng"));
    return p;
}

stats::StatSet
runWith(prog::DispatchMode mode, const core::SimConfig &cfg)
{
    prog::setDispatchMode(mode);
    core::Simulator sim(benchProgram(), cfg);
    sim.run();
    return sim.stats();
}

void
expectStatsIdentical(const stats::StatSet &a, const stats::StatSet &b)
{
    ASSERT_EQ(a.rows().size(), b.rows().size());
    for (std::size_t i = 0; i < a.rows().size(); ++i) {
        EXPECT_EQ(a.rows()[i].first, b.rows()[i].first);
        EXPECT_EQ(a.rows()[i].second, b.rows()[i].second)
            << "stat " << a.rows()[i].first
            << " diverges between dispatch modes";
    }
}

class DispatchEquivalence : public ::testing::TestWithParam<Config>
{
};

TEST_P(DispatchEquivalence, StatsBitIdenticalAcrossDispatchModes)
{
    DispatchGuard guard;
    const core::SimConfig cfg = sweepSimConfig(GetParam(), kBudget);
    const stats::StatSet sw = runWith(prog::DispatchMode::Switch, cfg);
    const stats::StatSet th = runWith(prog::DispatchMode::Threaded, cfg);
    expectStatsIdentical(sw, th);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, DispatchEquivalence,
                         ::testing::ValuesIn(kAllConfigs),
                         [](const auto &info) {
                             return std::string(configName(info.param));
                         });

TEST(DispatchReplay, CrossModeTraceReplayBitIdentical)
{
    DispatchGuard guard;

    // Record the trace under threaded dispatch...
    prog::setDispatchMode(prog::DispatchMode::Threaded);
    prog::TraceRecorder rec;
    core::SimConfig rcfg = sweepSimConfig(Config::Full32, kBudget);
    rcfg.traceRecorder = &rec;
    core::Simulator recorder(benchProgram(), rcfg);
    recorder.run();
    const prog::Trace trace = rec.take();
    ASSERT_TRUE(trace.replayable());

    const core::SimConfig cfg = sweepSimConfig(Config::Full32, kBudget);
    const stats::StatSet direct = runWith(prog::DispatchMode::Switch, cfg);

    // ...and replay it under both modes: all three must agree.
    for (const prog::DispatchMode mode :
         {prog::DispatchMode::Switch, prog::DispatchMode::Threaded}) {
        prog::setDispatchMode(mode);
        core::SimConfig pcfg = cfg;
        pcfg.replayTrace = &trace;
        core::Simulator sim(benchProgram(), pcfg);
        ASSERT_TRUE(sim.replayActive());
        sim.run();
        expectStatsIdentical(direct, sim.stats());
    }
}

} // namespace
} // namespace rev::bench
