/**
 * @file
 * Tier-1 guarantees of the parallel sweep engine: any thread count
 * produces results identical to the serial run, and the options-driven
 * API behaves (subset selection, env thread override). The serial and
 * parallel reference sweeps are computed once and shared across tests —
 * each sweep costs real simulation time.
 */

#include "bench/suite.hpp"
#include "bench/sweep_runner.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

namespace rev::bench
{
namespace
{

/** Small but REV-exercising budget so the suite stays fast. */
SweepOptions
tinyOptions(unsigned threads)
{
    SweepOptions opts = SweepOptions::quick();
    opts.instrBudget = 20'000;
    opts.threads = threads;
    opts.progress = false;
    return opts;
}

const Sweep &
serialTiny()
{
    static const Sweep s = runSweep(tinyOptions(1));
    return s;
}

const Sweep &
parallelTiny()
{
    static const Sweep s = runSweep(tinyOptions(4));
    return s;
}

TEST(SweepRunner, ParallelIdenticalToSerial)
{
    ASSERT_EQ(serialTiny().benchmarks, parallelTiny().benchmarks);
    ASSERT_EQ(serialTiny().benchmarks.size(), 3u);
    // operator== compares every field of every run and static record,
    // doubles included — bit-identical, not merely close.
    EXPECT_TRUE(serialTiny() == parallelTiny());
}

TEST(SweepRunner, RerunIsDeterministic)
{
    EXPECT_TRUE(runSweep(tinyOptions(4)) == parallelTiny());
}

TEST(SweepRunner, SweepShapeIsComplete)
{
    const Sweep &s = parallelTiny();
    for (const auto &b : s.benchmarks) {
        ASSERT_TRUE(s.statics.count(b)) << b;
        EXPECT_GT(s.statics.at(b).numBlocks, 0u) << b;
        EXPECT_GT(s.statics.at(b).tableBytesFull, 0u) << b;
        for (Config c : kAllConfigs) {
            ASSERT_TRUE(s.runs.count({b, c}))
                << b << '/' << configName(c);
            const RunNumbers &r = s.at(b, c);
            EXPECT_GT(r.instrs, 0u) << b << '/' << configName(c);
            EXPECT_GT(r.ipc, 0.0) << b << '/' << configName(c);
        }
        // The base core has no REV engine and therefore no commit stalls.
        EXPECT_EQ(s.at(b, Config::Base).commitStallCycles, 0u);
    }
}

TEST(SweepRunner, BenchmarkSubsetKeepsPaperOrder)
{
    SweepOptions opts = tinyOptions(2);
    const auto all = SweepOptions::quick().benchmarks;
    ASSERT_GE(all.size(), 2u);
    // Request in reverse: the sweep must come back in paper order, and
    // the subset's numbers must match the full tiny sweep exactly.
    opts.benchmarks = {all[1], all[0]};
    const Sweep s = runSweep(opts);
    ASSERT_EQ(s.benchmarks, (std::vector<std::string>{all[0], all[1]}));
    for (const auto &b : s.benchmarks)
        for (Config c : kAllConfigs)
            EXPECT_TRUE(s.at(b, c) == serialTiny().at(b, c))
                << b << '/' << configName(c);
}

TEST(SweepRunner, UnknownBenchmarkIsFatal)
{
    SweepOptions opts = tinyOptions(1);
    opts.benchmarks = {"no-such-benchmark"};
    EXPECT_THROW(runSweep(opts), FatalError);
}

TEST(SweepRunner, EnvThreadOverrideIsHonored)
{
    SweepOptions opts = tinyOptions(0);
    opts.benchmarks = {SweepOptions::quick().benchmarks.front()};
    ::setenv("REV_BENCH_THREADS", "3", 1);
    SweepRunner runner(opts);
    const Sweep s = runner.run();
    ::unsetenv("REV_BENCH_THREADS");
    EXPECT_EQ(runner.threadsUsed(), 3u);

    // ... and the env-sized run still matches the serial run exactly.
    for (Config c : kAllConfigs)
        EXPECT_TRUE(s.at(s.benchmarks.front(), c) ==
                    serialTiny().at(s.benchmarks.front(), c))
            << configName(c);
}

TEST(SweepRunner, TimingsCoverEveryJob)
{
    SweepOptions opts = tinyOptions(2);
    opts.benchmarks = {SweepOptions::quick().benchmarks.front()};
    SweepRunner runner(opts);
    const Sweep s = runner.run();
    EXPECT_EQ(runner.timings().size(),
              s.benchmarks.size() * std::size(kAllConfigs));
    for (const JobTiming &t : runner.timings()) {
        EXPECT_FALSE(t.fromCache);
        EXPECT_GT(t.wallSeconds, 0.0) << t.bench;
    }
    EXPECT_EQ(runner.cacheHits(), 0u);
}

} // namespace
} // namespace rev::bench
