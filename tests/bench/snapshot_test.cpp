/**
 * @file
 * Snapshot-fork determinism: a run forked from a warmed snapshot at
 * instruction F must be indistinguishable — every tracked statistic,
 * every verdict, every violation cycle — from a cold run that executed
 * the same prefix itself. Exercised across every sweep config (all
 * backends and validation modes), both dispatch modes, and with tamper
 * injections at the fork point (the red-team campaign's usage). Replay
 * interaction is covered separately: snapshots require direct
 * execution, and replay_test.cpp pins direct == replay.
 */

#include <gtest/gtest.h>

#include <optional>

#include "attacks/injector.hpp"
#include "bench/suite.hpp"
#include "core/snapshot.hpp"
#include "program/interp.hpp"
#include "workloads/generator.hpp"

namespace rev::bench
{
namespace
{

constexpr u64 kBudget = 20'000;
constexpr u64 kForkIndex = 7'000;

struct DispatchGuard
{
    prog::DispatchMode saved = prog::dispatchMode();
    ~DispatchGuard() { prog::setDispatchMode(saved); }
};

const prog::Program &
benchProgram()
{
    static const prog::Program p =
        workloads::generateWorkload(workloads::specProfile("sjeng"));
    return p;
}

/** Full observable surface of one run: counters + run result fields. */
struct Observed
{
    core::SimResult res;
    stats::StatSet stats;
};

Observed
coldRun(const core::SimConfig &cfg)
{
    core::Simulator sim(benchProgram(), cfg);
    Observed o;
    o.res = sim.run();
    o.stats = sim.stats();
    return o;
}

Observed
forkedRun(const core::SimConfig &cfg, u64 fork_at)
{
    core::Simulator source(benchProgram(), cfg);
    std::optional<core::Snapshot> snap = source.snapshotAt(fork_at);
    EXPECT_TRUE(snap.has_value());
    auto fork = core::Simulator::forkFrom(*snap);
    Observed o;
    o.res = fork->run();
    o.stats = fork->stats();
    return o;
}

void
expectIdentical(const Observed &cold, const Observed &fork)
{
    EXPECT_EQ(cold.res.run.cycles, fork.res.run.cycles);
    EXPECT_EQ(cold.res.run.instrs, fork.res.run.instrs);
    EXPECT_EQ(cold.res.run.committedBranches, fork.res.run.committedBranches);
    EXPECT_EQ(cold.res.run.mispredicts, fork.res.run.mispredicts);
    EXPECT_EQ(cold.res.run.halted, fork.res.run.halted);
    EXPECT_EQ(cold.res.run.violation.has_value(),
              fork.res.run.violation.has_value());
    if (cold.res.run.violation && fork.res.run.violation) {
        EXPECT_EQ(cold.res.run.violation->cycle, fork.res.run.violation->cycle);
        EXPECT_EQ(cold.res.run.violation->pc, fork.res.run.violation->pc);
        EXPECT_EQ(cold.res.run.violation->reason,
                  fork.res.run.violation->reason);
    }
    ASSERT_EQ(cold.stats.rows().size(), fork.stats.rows().size());
    for (std::size_t i = 0; i < cold.stats.rows().size(); ++i) {
        EXPECT_EQ(cold.stats.rows()[i].first, fork.stats.rows()[i].first);
        EXPECT_EQ(cold.stats.rows()[i].second, fork.stats.rows()[i].second)
            << cold.stats.rows()[i].first;
    }
}

TEST(SnapshotFork, MatchesColdRunAcrossAllConfigs)
{
    for (Config c : kAllConfigs) {
        SCOPED_TRACE(configName(c));
        const core::SimConfig cfg = sweepSimConfig(c, kBudget);
        expectIdentical(coldRun(cfg), forkedRun(cfg, kForkIndex));
    }
}

TEST(SnapshotFork, MatchesColdRunBothDispatchModes)
{
    DispatchGuard guard;
    const core::SimConfig cfg = sweepSimConfig(Config::Full32, kBudget);
    for (prog::DispatchMode mode :
         {prog::DispatchMode::Switch, prog::DispatchMode::Threaded}) {
        SCOPED_TRACE(prog::dispatchModeName(mode));
        prog::setDispatchMode(mode);
        expectIdentical(coldRun(cfg), forkedRun(cfg, kForkIndex));
    }
}

TEST(SnapshotFork, MatchesColdRunLoFatBackend)
{
    core::SimConfig cfg = sweepSimConfig(Config::Full32, kBudget);
    cfg.backend = validate::Backend::LoFat;

    core::Simulator cold(benchProgram(), cfg);
    const core::SimResult cold_res = cold.run();

    core::Simulator source(benchProgram(), cfg);
    auto snap = source.snapshotAt(kForkIndex);
    ASSERT_TRUE(snap.has_value());
    auto fork = core::Simulator::forkFrom(*snap);
    const core::SimResult fork_res = fork->run();

    // The measurement chain folds every committed control-flow event
    // since instruction 0: byte-equality proves the fork continued the
    // source's chain exactly where a cold run would have been.
    ASSERT_NE(cold.lofat(), nullptr);
    ASSERT_NE(fork->lofat(), nullptr);
    EXPECT_EQ(cold.lofat()->chain(), fork->lofat()->chain());
    EXPECT_EQ(cold_res.run.cycles, fork_res.run.cycles);
    EXPECT_EQ(cold_res.lofat.chainUpdates, fork_res.lofat.chainUpdates);
    EXPECT_EQ(cold_res.lofat.bufferSpills, fork_res.lofat.bufferSpills);
    EXPECT_EQ(cold_res.lofat.spillBytes, fork_res.lofat.spillBytes);
}

/** Tamper at the fork point: the campaign's exact usage. The injected
 *  fork must produce the same violation, at the same cycle, as a cold
 *  run with the same hook installed from instruction 0. */
TEST(SnapshotFork, InjectedForkMatchesColdInjection)
{
    const core::SimConfig cfg = sweepSimConfig(Config::Full32, kBudget);
    const std::vector<u8> garbage = {0x90, 0x90, 0x90, 0x90};

    // Tampering the bytes the machine is about to fetch guarantees the
    // dirtied block is validated immediately after the hook fires.
    auto arm = [&](core::Simulator &sim, bool &fired) {
        attacks::inject::onceAtIndex(
            sim, kForkIndex,
            [&garbage](core::Simulator &s) {
                attacks::inject::tamperCode(s, s.core().machine().pc(),
                                            garbage);
            },
            fired);
    };

    bool cold_fired = false;
    core::Simulator cold(benchProgram(), cfg);
    arm(cold, cold_fired);
    const core::SimResult cold_res = cold.run();

    core::Simulator source(benchProgram(), cfg);
    auto snap = source.snapshotAt(kForkIndex);
    ASSERT_TRUE(snap.has_value());
    auto fork = core::Simulator::forkFrom(*snap);
    bool fork_fired = false;
    arm(*fork, fork_fired);
    const core::SimResult fork_res = fork->run();

    EXPECT_TRUE(cold_fired);
    EXPECT_TRUE(fork_fired);
    ASSERT_TRUE(cold_res.run.violation.has_value());
    ASSERT_TRUE(fork_res.run.violation.has_value());
    EXPECT_EQ(cold_res.run.violation->cycle, fork_res.run.violation->cycle);
    EXPECT_EQ(cold_res.run.violation->pc, fork_res.run.violation->pc);
    EXPECT_EQ(cold_res.run.violation->reason, fork_res.run.violation->reason);
}

/** Two forks of one snapshot run independently: a tamper in one must
 *  not leak into the other (COW isolation at the harness level), and
 *  the clean fork still matches the cold run. */
TEST(SnapshotFork, SiblingForksAreIsolated)
{
    const core::SimConfig cfg = sweepSimConfig(Config::Full32, kBudget);
    const Observed cold = coldRun(cfg);

    core::Simulator source(benchProgram(), cfg);
    auto snap = source.snapshotAt(kForkIndex);
    ASSERT_TRUE(snap.has_value());

    auto dirty = core::Simulator::forkFrom(*snap);
    bool fired = false;
    const std::vector<u8> garbage = {0xff, 0xff, 0xff, 0xff};
    attacks::inject::onceAtIndex(
        *dirty, kForkIndex,
        [&garbage](core::Simulator &s) {
            attacks::inject::tamperCode(s, s.core().machine().pc(), garbage);
        },
        fired);
    const core::SimResult dirty_res = dirty->run();
    EXPECT_TRUE(fired);
    EXPECT_TRUE(dirty_res.run.violation.has_value());

    auto clean = core::Simulator::forkFrom(*snap);
    Observed clean_obs;
    clean_obs.res = clean->run();
    clean_obs.stats = clean->stats();
    expectIdentical(cold, clean_obs);
}

/** The source cursor advances across several pause points; a fork taken
 *  at the LAST pause must still match a cold run (the campaign reuses
 *  one cursor for all fire indices of a config). */
TEST(SnapshotFork, CursorAdvancesAcrossPausePoints)
{
    const core::SimConfig cfg = sweepSimConfig(Config::Agg32, kBudget);
    const Observed cold = coldRun(cfg);

    core::Simulator source(benchProgram(), cfg);
    ASSERT_TRUE(source.runUntil(1'000));
    ASSERT_TRUE(source.runUntil(4'096));
    ASSERT_TRUE(source.runUntil(4'096)); // same index: immediate pause
    auto snap = source.snapshotAt(kForkIndex);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->instrIndex, kForkIndex);

    auto fork = core::Simulator::forkFrom(*snap);
    Observed fork_obs;
    fork_obs.res = fork->run();
    fork_obs.stats = fork->stats();
    expectIdentical(cold, fork_obs);
}

/** A paused source resumed to completion equals an uninterrupted run. */
TEST(SnapshotFork, ResumedSourceMatchesColdRun)
{
    const core::SimConfig cfg = sweepSimConfig(Config::Cfi32, kBudget);
    const Observed cold = coldRun(cfg);

    core::Simulator source(benchProgram(), cfg);
    ASSERT_TRUE(source.runUntil(kForkIndex));
    (void)source.capture();
    Observed resumed;
    resumed.res = source.run();
    resumed.stats = source.stats();
    expectIdentical(cold, resumed);
}

} // namespace
} // namespace rev::bench
