/**
 * @file
 * Cache key + invalidation tests: any result-affecting knob change must
 * produce a new key (the old cache keyed only on (version, budget) and
 * silently served stale numbers after SimConfig edits).
 */

#include "bench/sweep_cache.hpp"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace rev::bench
{
namespace
{

workloads::WorkloadProfile
profile()
{
    workloads::WorkloadProfile p;
    p.name = "unit";
    p.seed = 42;
    return p;
}

TEST(SweepCacheKey, StableForIdenticalInputs)
{
    const core::SimConfig cfg = sweepSimConfig(Config::Full32, 100'000);
    EXPECT_EQ(runCacheKey(profile(), cfg), runCacheKey(profile(), cfg));
    EXPECT_EQ(staticCacheKey(profile()), staticCacheKey(profile()));
}

TEST(SweepCacheKey, BudgetChangesKey)
{
    EXPECT_NE(runCacheKey(profile(), sweepSimConfig(Config::Full32, 100'000)),
              runCacheKey(profile(), sweepSimConfig(Config::Full32, 200'000)));
}

TEST(SweepCacheKey, ConfigChangesKey)
{
    EXPECT_NE(runCacheKey(profile(), sweepSimConfig(Config::Full32, 100'000)),
              runCacheKey(profile(), sweepSimConfig(Config::Full64, 100'000)));
}

TEST(SweepCacheKey, SimKnobEditChangesKey)
{
    // The bug class this cache fixes: an edited knob must miss.
    core::SimConfig a = sweepSimConfig(Config::Full32, 100'000);
    core::SimConfig b = a;
    b.rev.chg.hashRounds = a.rev.chg.hashRounds + 1;
    EXPECT_NE(runCacheKey(profile(), a), runCacheKey(profile(), b));

    core::SimConfig c = a;
    c.core.robSize = 256;
    EXPECT_NE(runCacheKey(profile(), a), runCacheKey(profile(), c));

    core::SimConfig d = a;
    d.mem.l2Bytes = 1024 * 1024;
    EXPECT_NE(runCacheKey(profile(), a), runCacheKey(profile(), d));
}

TEST(SweepCacheKey, ProfileEditChangesKey)
{
    workloads::WorkloadProfile p = profile();
    workloads::WorkloadProfile q = p;
    q.seed = 43;
    const core::SimConfig cfg = sweepSimConfig(Config::Base, 100'000);
    EXPECT_NE(runCacheKey(p, cfg), runCacheKey(q, cfg));
    EXPECT_NE(staticCacheKey(p), staticCacheKey(q));

    workloads::WorkloadProfile r = p;
    r.branchBias = 0.5;
    EXPECT_NE(staticCacheKey(p), staticCacheKey(r));
}

TEST(SweepCacheKey, DescribeSimConfigCoversKnownKnobCount)
{
    // Tripwire: if someone adds a SimConfig knob without extending
    // describeSimConfig(), cache keys would go stale again. Adding a
    // knob should consciously bump this count.
    const std::string desc =
        describeSimConfig(sweepSimConfig(Config::Full32, 1000));
    std::size_t fields = 0;
    for (const char ch : desc)
        fields += (ch == '=');
    EXPECT_EQ(fields, 83u);
}

TEST(SweepCacheKey, MulticoreFieldsChangeKey)
{
    // Regression guard for the v7 -> v8 bump: a stale single-core cache
    // entry must never satisfy a multicore run of the same timing
    // config, and the multicore scheduling/hartid knobs are part of the
    // simulated-result identity too.
    const core::SimConfig a = sweepSimConfig(Config::Full32, 100'000);

    core::SimConfig b = a;
    b.numCores = 4;
    EXPECT_NE(runCacheKey(profile(), a), runCacheKey(profile(), b));

    core::SimConfig c = a;
    c.schedQuantumInstrs = a.schedQuantumInstrs * 2;
    EXPECT_NE(runCacheKey(profile(), a), runCacheKey(profile(), c));

    core::SimConfig d = a;
    d.coreIdAddr = 0x2F000000;
    EXPECT_NE(runCacheKey(profile(), a), runCacheKey(profile(), d));
}

class SweepCacheFile : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "rev_sweep_cache_test.txt";
        std::remove(path_.c_str());
    }
    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(SweepCacheFile, RoundTripsRunsAndStatics)
{
    CachedRun run;
    run.numbers.ipc = 1.234567890123456789; // must survive the round trip
    run.numbers.cycles = 1000;
    run.numbers.instrs = 1234;
    run.sigTableBytes = 4096;

    StaticNumbers st;
    st.numBlocks = 77;
    st.instrsPerBlock = 6.5;

    {
        SweepCache cache(path_);
        cache.putRun("mcf", Config::Full32, 0xabcdef, run);
        cache.putStatic("mcf", 0x1234, st);
        ASSERT_TRUE(cache.save());
    }

    SweepCache cache(path_);
    ASSERT_TRUE(cache.load());
    const CachedRun *r = cache.findRun("mcf", Config::Full32, 0xabcdef);
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(*r == run); // doubles bit-identical via setprecision(17)
    const StaticNumbers *s = cache.findStatic("mcf", 0x1234);
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(*s == st);
}

TEST_F(SweepCacheFile, StaleKeyMisses)
{
    SweepCache cache(path_);
    cache.putRun("mcf", Config::Full32, 1, CachedRun{});
    EXPECT_EQ(cache.findRun("mcf", Config::Full32, 2), nullptr);
    EXPECT_EQ(cache.findRun("mcf", Config::Full64, 1), nullptr);
    EXPECT_EQ(cache.findRun("gcc", Config::Full32, 1), nullptr);
    EXPECT_NE(cache.findRun("mcf", Config::Full32, 1), nullptr);
}

TEST_F(SweepCacheFile, RecordsWithDifferentKeysCoexist)
{
    // Partial reuse: a quick-budget record must not clobber the full-
    // budget record for the same (benchmark, config).
    CachedRun quick, full;
    quick.numbers.instrs = 100;
    full.numbers.instrs = 2000;

    SweepCache cache(path_);
    cache.putRun("mcf", Config::Base, 1, quick);
    cache.putRun("mcf", Config::Base, 2, full);
    ASSERT_TRUE(cache.save());

    SweepCache reread(path_);
    ASSERT_TRUE(reread.load());
    EXPECT_EQ(reread.runCount(), 2u);
    EXPECT_EQ(reread.findRun("mcf", Config::Base, 1)->numbers.instrs, 100u);
    EXPECT_EQ(reread.findRun("mcf", Config::Base, 2)->numbers.instrs, 2000u);
}

TEST_F(SweepCacheFile, MissingFileLoadsEmpty)
{
    SweepCache cache(path_);
    EXPECT_FALSE(cache.load());
    EXPECT_EQ(cache.runCount(), 0u);
}

TEST_F(SweepCacheFile, WrongVersionOrGarbageRejected)
{
    {
        std::FILE *f = std::fopen(path_.c_str(), "w");
        std::fputs("revcache v4\nrun mcf base 1 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n",
                   f);
        std::fclose(f);
    }
    SweepCache cache(path_);
    EXPECT_FALSE(cache.load());

    {
        std::FILE *f = std::fopen(path_.c_str(), "w");
        std::fputs("version 4 2000000\n", f); // the old format
        std::fclose(f);
    }
    EXPECT_FALSE(cache.load());
}

} // namespace
} // namespace rev::bench
