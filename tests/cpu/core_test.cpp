/**
 * @file
 * Base (no-REV) out-of-order core tests: functional equivalence with the
 * reference interpreter, timing sanity, and Table 2 configuration checks.
 */

#include <gtest/gtest.h>

#include "cpu/core.hpp"
#include "program/profiler.hpp"
#include "testutil.hpp"

namespace rev::cpu
{
namespace
{

RunResult
runBase(const prog::Program &p, SparseMemory &mem, CoreConfig cfg = {})
{
    mem::MemorySystem ms;
    p.loadInto(mem);
    Core core(p, mem, ms, cfg);
    return core.run();
}

TEST(CoreConfigDefaults, MatchTable2)
{
    const CoreConfig cfg;
    EXPECT_EQ(cfg.fetchQueueSize, 32u);
    EXPECT_EQ(cfg.lsqSize, 92u);
    EXPECT_EQ(cfg.dispatchWidth, 4u);
    EXPECT_EQ(cfg.robSize, 128u);
    EXPECT_EQ(cfg.numPhysRegs, 256u);
    EXPECT_EQ(cfg.numIntAlu, 2u);
    EXPECT_EQ(cfg.numFpu, 2u);
    EXPECT_EQ(cfg.numLoadPorts, 2u);
    EXPECT_EQ(cfg.numStorePorts, 2u);
    EXPECT_EQ(cfg.predictor.gshareEntries, 32u * 1024);

    const mem::MemConfig mc;
    EXPECT_EQ(mc.l1dBytes, 64u * 1024);
    EXPECT_EQ(mc.l1dAssoc, 4u);
    EXPECT_EQ(mc.l1dLatency, 2u);
    EXPECT_EQ(mc.l1iBytes, 64u * 1024);
    EXPECT_EQ(mc.l2Bytes, 512u * 1024);
    EXPECT_EQ(mc.l2Assoc, 8u);
    EXPECT_EQ(mc.l2Latency, 5u);
    EXPECT_EQ(mc.dram.firstChunkLatency, 100u);
    EXPECT_EQ(mc.dram.banks, 8u);
    EXPECT_EQ(mc.tlb.itlbEntries, 32u);
    EXPECT_EQ(mc.tlb.dtlbEntries, 128u);
    EXPECT_EQ(mc.tlb.l2Entries, 512u);
}

TEST(Core, MatchesInterpreterResult)
{
    auto p = test::makeLoopCallProgram();
    SparseMemory mem;
    const RunResult res = runBase(p, mem);
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(mem.read64(test::kResultAddr), 110u);
}

TEST(Core, IndirectDispatchMatchesInterpreter)
{
    auto p = test::makeIndirectDispatchProgram();
    SparseMemory mem;
    mem::MemorySystem ms;
    p.loadInto(mem);
    Core core(p, mem, ms);
    const RunResult res = core.run();
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(core.machine().reg(1), 32u);
}

TEST(Core, InstructionAndBranchCountsMatchProfile)
{
    auto p = test::makeLoopCallProgram();
    const prog::Profile prof = prog::profileRun(p);

    SparseMemory mem;
    const RunResult res = runBase(p, mem);
    EXPECT_EQ(res.instrs, prof.instrCount);
    EXPECT_EQ(res.committedBranches, prof.branchCount);
}

TEST(Core, DeterministicAcrossRuns)
{
    auto p = test::makeIndirectDispatchProgram();
    SparseMemory m1, m2;
    const RunResult a = runBase(p, m1);
    const RunResult b = runBase(p, m2);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

TEST(Core, IpcIsPlausible)
{
    auto p = test::makeLoopCallProgram();
    SparseMemory mem;
    const RunResult res = runBase(p, mem);
    EXPECT_GT(res.ipc(), 0.1);
    EXPECT_LE(res.ipc(), 4.0); // commit width bound
}

TEST(Core, CommitWidthBoundsIpc)
{
    // A long chain of independent adds: IPC limited by the 2 ALUs.
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 1000);
    a.label("loop");
    for (int i = 0; i < 16; ++i)
        a.addi(static_cast<u8>(2 + (i % 8)), 1, i);
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("alu", "main"));

    SparseMemory mem;
    const RunResult res = runBase(p, mem);
    EXPECT_TRUE(res.halted);
    EXPECT_LE(res.ipc(), 2.1); // 2 integer ALUs
    EXPECT_GT(res.ipc(), 1.2); // but clearly superscalar
}

TEST(Core, DependentChainLimitsIpc)
{
    // Serial dependency: every add depends on the previous one.
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 2000);
    a.label("loop");
    for (int i = 0; i < 16; ++i)
        a.addi(2, 2, 1);
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("chain", "main"));

    SparseMemory mem;
    const RunResult res = runBase(p, mem);
    // The dependent chain allows roughly 1 add/cycle plus loop overhead.
    EXPECT_LT(res.ipc(), 1.4);
}

TEST(Core, CacheMissesSlowExecution)
{
    // Random-ish strided loads over a 16MB footprint vs a tiny footprint.
    auto make = [](i32 stride) {
        prog::Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(1, 4000);              // iterations
        a.movi(2, prog::kHeapBase);   // base
        a.movi(3, 0);                 // offset
        a.label("loop");
        a.add(4, 2, 3);
        a.ld(5, 4, 0);
        a.addi(3, 3, stride);
        a.andi(3, 3, 0xffffff);       // wrap at 16MB
        a.addi(1, 1, -1);
        a.bne(1, 0, "loop");
        a.halt();
        prog::Program p;
        p.addModule(a.finalize("mem", "main"));
        return p;
    };

    SparseMemory m1, m2;
    const RunResult small = runBase(make(8), m1);   // fits in L1
    const RunResult big = runBase(make(4099), m2);  // thrashes caches+TLB
    EXPECT_GT(small.ipc(), big.ipc() * 1.5);
}

TEST(Core, MispredictsHurtIpc)
{
    // Data-dependent unpredictable branches from an LCG.
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 3000);
    a.movi(2, 12345);
    a.label("loop");
    a.muli(2, 2, 1103515245);
    a.addi(2, 2, 12345);
    a.shri(3, 2, 16);
    a.andi(3, 3, 1);
    a.bne(3, 0, "odd");
    a.addi(4, 4, 1);
    a.jmp("join");
    a.label("odd");
    a.addi(5, 5, 1);
    a.label("join");
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("br", "main"));

    SparseMemory mem;
    const RunResult res = runBase(p, mem);
    EXPECT_TRUE(res.halted);
    // ~3000 coin-flip branches: expect a substantial mispredict count.
    EXPECT_GT(res.mispredicts, 500u);
}

TEST(Core, UniqueVsCommittedBranches)
{
    auto p = test::makeLoopCallProgram();
    SparseMemory mem;
    const RunResult res = runBase(p, mem);
    EXPECT_GT(res.committedBranches, res.uniqueBranches);
    EXPECT_GT(res.uniqueBranches, 2u);
}

TEST(Core, MaxInstrsBudgetStopsEarly)
{
    auto p = test::makeLoopCallProgram();
    CoreConfig cfg;
    cfg.maxInstrs = 10;
    SparseMemory mem;
    const RunResult res = runBase(p, mem, cfg);
    // The budget stops at the first block boundary at/after the limit.
    EXPECT_GE(res.instrs, 10u);
    EXPECT_LT(res.instrs, 10u + cfg.splitLimits.maxInstrs + 1);
    EXPECT_FALSE(res.halted);
}

TEST(Core, PreStepHookObservesExecution)
{
    auto p = test::makeLoopCallProgram();
    SparseMemory mem;
    mem::MemorySystem ms;
    p.loadInto(mem);
    Core core(p, mem, ms);
    u64 calls = 0;
    core.setPreStepHook([&](u64 idx, Addr pc) {
        EXPECT_EQ(idx, calls);
        EXPECT_NE(pc, 0u);
        ++calls;
    });
    const RunResult res = core.run();
    EXPECT_EQ(calls, res.instrs);
}

TEST(Core, InvalidBytesReportedAsViolation)
{
    auto p = test::makeLoopCallProgram();
    SparseMemory mem;
    mem::MemorySystem ms;
    p.loadInto(mem);
    mem.write8(p.entry(), 0xff);
    Core core(p, mem, ms);
    const RunResult res = core.run();
    ASSERT_TRUE(res.violation.has_value());
    EXPECT_FALSE(res.halted);
}

TEST(Core, NextLinePrefetcherWarmsL1I)
{
    // A long straight-line code run: with next-line prefetch the L1I
    // demand misses drop (the prefetcher runs ahead of fetch).
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    for (int i = 0; i < 4000; ++i)
        a.addi(1, 1, 1);
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("straight", "main"));

    CoreConfig with;
    CoreConfig without;
    without.nextLinePrefetch = false;

    SparseMemory m1, m2;
    mem::MemorySystem ms1, ms2;
    p.loadInto(m1);
    p.loadInto(m2);
    Core c1(p, m1, ms1, with), c2(p, m2, ms2, without);
    const RunResult r1 = c1.run();
    const RunResult r2 = c2.run();
    EXPECT_EQ(r1.instrs, r2.instrs);
    EXPECT_GT(ms1.accesses(mem::AccessType::Prefetch), 100u);
    EXPECT_EQ(ms2.accesses(mem::AccessType::Prefetch), 0u);
    // Prefetched lines turn demand misses into hits.
    EXPECT_LT(ms1.l1Misses(mem::AccessType::InstrFetch),
              ms2.l1Misses(mem::AccessType::InstrFetch));
    EXPECT_LE(r1.cycles, r2.cycles);
}

TEST(Core, StoresReachMemoryInBaseMode)
{
    auto p = test::makeLoopCallProgram();
    SparseMemory mem;
    runBase(p, mem);
    EXPECT_EQ(mem.read64(test::kResultAddr), 110u);
}

} // namespace
} // namespace rev::cpu
