/**
 * @file
 * Branch predictor tests.
 */

#include <gtest/gtest.h>

#include "cpu/predictor.hpp"

namespace rev::cpu
{
namespace
{

isa::Instr
branchIns(i32 off = 0x40)
{
    return {.op = isa::Opcode::Beq, .rs1 = 1, .rs2 = 2, .imm = off};
}

TEST(Predictor, LearnsAlwaysTakenBranch)
{
    BranchPredictor bp;
    const isa::Instr b = branchIns();
    const Addr pc = 0x1000;
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += bp.predictAndTrain(b, pc, true, b.directTarget(pc));
    EXPECT_LE(wrong, 2); // warms up within a couple of iterations
}

TEST(Predictor, LearnsLoopExitPattern)
{
    // Taken 9 times, not-taken once, repeated: gshare should do well on
    // the taken iterations.
    BranchPredictor bp;
    const isa::Instr b = branchIns(-0x20);
    const Addr pc = 0x2000;
    int wrong = 0, total = 0;
    for (int rep = 0; rep < 50; ++rep) {
        for (int i = 0; i < 9; ++i, ++total)
            wrong += bp.predictAndTrain(b, pc, true, b.directTarget(pc));
        ++total;
        wrong += bp.predictAndTrain(b, pc, false, b.fallThrough(pc));
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.25);
}

TEST(Predictor, DirectJumpNeverMispredicts)
{
    BranchPredictor bp;
    const isa::Instr j{.op = isa::Opcode::Jmp, .imm = 0x100};
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(
            bp.predictAndTrain(j, 0x3000, true, j.directTarget(0x3000)));
}

TEST(Predictor, IndirectJumpUsesBtb)
{
    BranchPredictor bp;
    const isa::Instr j{.op = isa::Opcode::JmpR, .rs1 = 3};
    const Addr pc = 0x4000;
    // First encounter: no BTB entry -> mispredict.
    EXPECT_TRUE(bp.predictAndTrain(j, pc, true, 0x5000));
    // Stable target: now predicted.
    EXPECT_FALSE(bp.predictAndTrain(j, pc, true, 0x5000));
    // Target change: mispredict once, then learned.
    EXPECT_TRUE(bp.predictAndTrain(j, pc, true, 0x6000));
    EXPECT_FALSE(bp.predictAndTrain(j, pc, true, 0x6000));
}

TEST(Predictor, ReturnAddressStackPairsCallsAndReturns)
{
    BranchPredictor bp;
    const isa::Instr call{.op = isa::Opcode::Call, .imm = 0x100};
    const isa::Instr ret{.op = isa::Opcode::Ret};

    // call from A (returns to A+5), call from B nested (returns to B+5).
    EXPECT_FALSE(bp.predictAndTrain(call, 0x1000, true, 0x1100));
    EXPECT_FALSE(bp.predictAndTrain(call, 0x1100, true, 0x1200));
    EXPECT_FALSE(bp.predictAndTrain(ret, 0x1200, true, 0x1105));
    EXPECT_FALSE(bp.predictAndTrain(ret, 0x1105, true, 0x1005));
}

TEST(Predictor, EmptyRasMispredictsReturn)
{
    BranchPredictor bp;
    const isa::Instr ret{.op = isa::Opcode::Ret};
    EXPECT_TRUE(bp.predictAndTrain(ret, 0x1000, true, 0x2000));
}

TEST(Predictor, RasOverflowDegradesGracefully)
{
    PredictorConfig cfg;
    cfg.rasEntries = 4;
    BranchPredictor bp(cfg);
    const isa::Instr call{.op = isa::Opcode::Call, .imm = 0x100};
    const isa::Instr ret{.op = isa::Opcode::Ret};

    // Nest 8 calls into a 4-entry RAS: the deepest 4 returns predict
    // correctly; beyond that the stale (clobbered) entries mispredict but
    // never crash.
    std::vector<Addr> sites;
    Addr pc = 0x1000;
    for (int i = 0; i < 8; ++i) {
        bp.predictAndTrain(call, pc, true, pc + 0x100);
        sites.push_back(pc + call.length());
        pc += 0x100;
    }
    int wrong = 0;
    for (int i = 7; i >= 0; --i) {
        wrong += bp.predictAndTrain(ret, pc, true, sites[i]);
        pc = sites[i];
    }
    EXPECT_GT(wrong, 0); // overflow lost the oldest frames
    EXPECT_LE(wrong, 6); // but the innermost returns still predicted
}

TEST(Predictor, MispredictCounterTracksOnlyControlFlow)
{
    BranchPredictor bp;
    const isa::Instr add{.op = isa::Opcode::Add, .rd = 1};
    bp.predictAndTrain(add, 0x1000, false, 0x1004);
    EXPECT_EQ(bp.mispredicts(), 0u);
}

} // namespace
} // namespace rev::cpu
