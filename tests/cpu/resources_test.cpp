/**
 * @file
 * Timing-resource helper tests.
 */

#include <gtest/gtest.h>

#include "cpu/resources.hpp"

namespace rev::cpu
{
namespace
{

TEST(WidthLimiter, PacksUpToWidthPerCycle)
{
    WidthLimiter w(4);
    EXPECT_EQ(w.reserve(10), 10u);
    EXPECT_EQ(w.reserve(10), 10u);
    EXPECT_EQ(w.reserve(10), 10u);
    EXPECT_EQ(w.reserve(10), 10u);
    EXPECT_EQ(w.reserve(10), 11u); // 5th spills to next cycle
}

TEST(WidthLimiter, AdvancesWithLowerBound)
{
    WidthLimiter w(2);
    EXPECT_EQ(w.reserve(5), 5u);
    EXPECT_EQ(w.reserve(7), 7u);
    EXPECT_EQ(w.reserve(7), 7u);
    EXPECT_EQ(w.reserve(7), 8u);
}

TEST(OccupancyRing, BlocksWhenFull)
{
    OccupancyRing ring(2);
    EXPECT_EQ(ring.allocReadyAt(), 0u);
    ring.push(100); // slot 0 frees at 100
    ring.push(50);  // slot 1 frees at 50
    // Third allocation reuses slot 0: ready at 100.
    EXPECT_EQ(ring.allocReadyAt(), 100u);
    ring.push(200);
    EXPECT_EQ(ring.allocReadyAt(), 50u);
}

TEST(FuPool, PicksEarliestFreeUnit)
{
    FuPool pool(2);
    EXPECT_EQ(pool.acquire(10, 5), 10u); // unit 0 busy till 15
    EXPECT_EQ(pool.acquire(10, 5), 10u); // unit 1 busy till 15
    EXPECT_EQ(pool.acquire(10, 5), 15u); // waits
}

TEST(FuPool, PipelinedUnitsAcceptBackToBack)
{
    FuPool pool(1);
    EXPECT_EQ(pool.acquire(10, 1), 10u);
    EXPECT_EQ(pool.acquire(10, 1), 11u);
    EXPECT_EQ(pool.acquire(10, 1), 12u);
}

} // namespace
} // namespace rev::cpu
