/**
 * @file
 * Campaign engine and differential-oracle tests.
 *
 * The fixture builds one shared Campaign (contexts, signature-store
 * prototypes, goldens) and runs one shared detection matrix; individual
 * tests assert oracle classifications on it and on hand-crafted plans.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "redteam/campaign.hpp"
#include "redteam/shrink.hpp"

namespace rev::redteam
{
namespace
{

CampaignSpec
testSpec()
{
    CampaignSpec spec;
    spec.seed = 1;
    spec.injections = 180;
    spec.instrBudget = 12'000;
    return spec;
}

class CampaignTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        campaign_ = new Campaign(testSpec());
        matrix_ = new DetectionMatrix(campaign_->run());
    }

    static void
    TearDownTestSuite()
    {
        delete matrix_;
        matrix_ = nullptr;
        delete campaign_;
        campaign_ = nullptr;
    }

    static const CellStats &
    cell(const char *klass, const char *mode)
    {
        return matrix_->cells.at({klass, mode});
    }

    static Campaign *campaign_;
    static DetectionMatrix *matrix_;
};

Campaign *CampaignTest::campaign_ = nullptr;
DetectionMatrix *CampaignTest::matrix_ = nullptr;

// ---------------------------------------------------------------------------
// Aggregate matrix properties
// ---------------------------------------------------------------------------

TEST_F(CampaignTest, NoEscapesAndFullCellCoverage)
{
    EXPECT_EQ(matrix_->total.escapes, 0u) << matrixToJson(*matrix_);
    EXPECT_TRUE(matrix_->coversAllCells());
    EXPECT_EQ(matrix_->cells.size(), 6u * 3u); // classes x modes
    EXPECT_EQ(matrix_->total.injections, testSpec().injections);
    EXPECT_EQ(matrix_->total.offMechanism, 0u)
        << "a detection fired outside its taxonomy-predicted mechanisms";
}

TEST_F(CampaignTest, Table1StyleAttacksAreDetected)
{
    // RetSmash is the machine-generated ReturnOriented (Table 1); the
    // delayed-predecessor / explicit-target return validation catches it
    // in every mode.
    for (const char *mode : {"full", "aggressive", "cfi-only"}) {
        const CellStats &c = cell("ret-smash", mode);
        EXPECT_GT(c.detected, 0u) << mode;
        EXPECT_EQ(c.escapes, 0u) << mode;
    }
    // Rewiring a signed direct branch is DirectCodeInjection's
    // machine-generated cousin: hash-validated modes must catch it.
    EXPECT_GT(cell("cfg-rewire", "full").detected, 0u);
    EXPECT_GT(cell("cfg-rewire", "aggressive").detected, 0u);
}

TEST_F(CampaignTest, BlindVerdictsOnlyWhereTaxonomyPredictsThem)
{
    // Silent divergence is only acceptable for code substitution under
    // CFI-only validation; everywhere else it would have been an escape.
    for (const auto &[key, c] : matrix_->cells) {
        if (key.second == "cfi-only")
            continue;
        EXPECT_EQ(c.blind, 0u) << key.first << "/" << key.second;
    }
    EXPECT_EQ(cell("ret-smash", "cfi-only").blind, 0u);
    EXPECT_EQ(cell("sig-corrupt", "cfi-only").blind, 0u);
}

TEST_F(CampaignTest, DetectionLatencyIsMeasured)
{
    ASSERT_GT(matrix_->total.detected, 0u);
    EXPECT_GT(matrix_->total.latencySum, 0u);
}

// ---------------------------------------------------------------------------
// Single-plan oracle classifications
// ---------------------------------------------------------------------------

TEST_F(CampaignTest, NoOpInjectionClassifiesBenign)
{
    InjectionPlan plan;
    plan.klass = InjectionClass::NoOp;
    plan.workload = "rt-mix";
    plan.mode = sig::ValidationMode::Full;
    plan.timing = "sc32";
    plan.fireIndex = 100;
    const InjectionResult r = campaign_->runPlan(plan);
    EXPECT_TRUE(r.fired);
    EXPECT_EQ(r.verdict, Verdict::Benign) << r.reason;
}

TEST_F(CampaignTest, ReturnSmashClassifiesDetectedWithReturnMechanism)
{
    const WorkloadContext &ctx = campaign_->context("rt-mix");
    ASSERT_FALSE(ctx.retRedirects.empty());
    InjectionPlan plan;
    plan.klass = InjectionClass::RetSmash;
    plan.workload = "rt-mix";
    plan.mode = sig::ValidationMode::Full;
    plan.timing = "sc32";
    plan.fireIndex = 100;
    plan.redirectTarget = ctx.retRedirects.front();
    const InjectionResult r = campaign_->runPlan(plan);
    ASSERT_EQ(r.verdict, Verdict::Detected) << r.reason;
    EXPECT_TRUE(r.fired);
    EXPECT_TRUE(r.mechanismMatch) << r.reason;
    EXPECT_GT(r.latencyCycles, 0u);
}

TEST_F(CampaignTest, UnfiredInjectionClassifiesBenign)
{
    // Firing condition past the instruction budget: nothing happens and
    // the oracle must prove it (stats + memory bit-compare).
    const WorkloadContext &ctx = campaign_->context("rt-mix");
    InjectionPlan plan;
    plan.klass = InjectionClass::RetSmash;
    plan.workload = "rt-mix";
    plan.mode = sig::ValidationMode::Aggressive;
    plan.timing = "sc8";
    plan.fireIndex = testSpec().instrBudget + 1;
    plan.redirectTarget = ctx.retRedirects.front();
    const InjectionResult r = campaign_->runPlan(plan);
    EXPECT_FALSE(r.fired);
    EXPECT_EQ(r.verdict, Verdict::Benign) << r.reason;
}

// ---------------------------------------------------------------------------
// Disabled-REV: the oracle's own regression check
// ---------------------------------------------------------------------------

TEST(CampaignDisabledRev, DivergentInjectionsSurfaceAsEscapes)
{
    CampaignSpec spec;
    spec.seed = 1;
    spec.injections = 60;
    spec.instrBudget = 6'000;
    spec.disableRev = true;
    spec.workloads = {"rt-mix"};
    Campaign campaign(spec);
    const DetectionMatrix m = campaign.run();
    EXPECT_FALSE(m.revEnabled);
    EXPECT_EQ(m.total.detected, 0u);
    EXPECT_EQ(m.total.blind, 0u) << "without REV nothing may be excused";
    EXPECT_GT(m.total.escapes, 0u)
        << "divergent tampering with REV disabled must escape";
    for (const EscapeRecord &e : m.escapes)
        EXPECT_NE(e.fingerprint, 0u);
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

TEST(Shrinker, ConvergesToAStableMinimalReproducer)
{
    CampaignSpec spec;
    spec.seed = 1;
    spec.injections = 60;
    spec.instrBudget = 6'000;
    spec.disableRev = true;
    spec.workloads = {"rt-mix"};
    Campaign campaign(spec);
    const DetectionMatrix m = campaign.run();
    ASSERT_FALSE(m.escapes.empty());

    const ShrinkResult once = shrinkEscape(campaign, m.escapes[0].plan, 256);
    EXPECT_EQ(once.result.verdict, Verdict::Escape);
    EXPECT_LE(once.plan.fireIndex, m.escapes[0].plan.fireIndex);
    EXPECT_EQ(once.reproducerSeed, planFingerprint(once.plan));

    // Shrinking the minimized plan again must be a fixpoint: same plan,
    // same reproducer seed.
    const ShrinkResult twice = shrinkEscape(campaign, once.plan, 256);
    EXPECT_EQ(twice.plan, once.plan);
    EXPECT_EQ(twice.reproducerSeed, once.reproducerSeed);
}

// ---------------------------------------------------------------------------
// Replay-vs-direct differential regression
// ---------------------------------------------------------------------------

TEST(ReplayDifferential, DetectionMatricesAreBitIdentical)
{
    CampaignSpec spec;
    spec.seed = 7;
    spec.injections = 72;
    spec.instrBudget = 6'000;

    ::setenv("REV_TRACE_REPLAY", "1", 1);
    std::string with_replay;
    {
        Campaign campaign(spec);
        with_replay = matrixToJson(campaign.run());
    }
    ::setenv("REV_TRACE_REPLAY", "0", 1);
    std::string direct;
    {
        Campaign campaign(spec);
        direct = matrixToJson(campaign.run());
    }
    ::unsetenv("REV_TRACE_REPLAY");
    EXPECT_EQ(with_replay, direct);
}

} // namespace
} // namespace rev::redteam
