# CMake generated Testfile for 
# Source directory: /root/repo/tests/redteam
# Build directory: /root/repo/tests/redteam
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/redteam/test_redteam[1]_include.cmake")
