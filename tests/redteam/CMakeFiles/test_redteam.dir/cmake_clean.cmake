file(REMOVE_RECURSE
  "CMakeFiles/test_redteam.dir/redteam_test.cpp.o"
  "CMakeFiles/test_redteam.dir/redteam_test.cpp.o.d"
  "test_redteam"
  "test_redteam.pdb"
  "test_redteam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redteam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
