# Empty dependencies file for test_redteam.
# This may be replaced when dependencies are built.
