/**
 * @file
 * The attestation-split equivalence contract: for every sweep config and
 * every measuring backend, the verdict a standalone StreamVerifier
 * renders from the serialized measurement session must be bit-identical
 * to what the in-core backend rendered inline — same Detected/Benign
 * outcome, same violation-reason string, same architectural counters.
 * Also pins the execute-once/time-many invariant on the wire: a run that
 * replays a recorded trace emits byte-for-byte the same session as the
 * direct run it replaces, so REV_TRACE_REPLAY can never change a
 * verifier-side verdict.
 */

#include <vector>

#include <gtest/gtest.h>

#include "bench/suite.hpp"
#include "core/simulator.hpp"
#include "program/trace.hpp"
#include "validate/refstore.hpp"
#include "validate/stream.hpp"
#include "validate/stream_verifier.hpp"
#include "workloads/generator.hpp"
#include "workloads/profile.hpp"

namespace rev::validate
{
namespace
{

constexpr u64 kBudget = 20000;
constexpr const char *kBench = "bzip2";

struct Captured
{
    std::vector<u8> stream;
    bool detected = false;
    std::string reason;
    ValidationStats validation;
    LoFatStats lofat;
};

/** One simulated run with the measurement sink attached. */
Captured
capture(const prog::Program &program, core::SimConfig cfg,
        const prog::Trace *replay)
{
    StreamWriter writer;
    cfg.measurementSink = &writer;
    cfg.replayTrace = replay;
    core::Simulator sim(program, cfg);
    const core::SimResult res = sim.run();
    sim.validator()->sealMeasurement(); // budget-exhausted runs don't halt

    Captured c;
    c.stream = writer.take();
    c.detected = res.run.violation.has_value();
    c.reason = sim.validator()->violationReason();
    c.validation = res.validation;
    c.lofat = res.lofat;
    return c;
}

class StreamContract : public ::testing::TestWithParam<Backend>
{
};

TEST_P(StreamContract, SplitVerdictMatchesInlineAcrossAllConfigs)
{
    const Backend backend = GetParam();
    const prog::Program program =
        workloads::generateWorkload(workloads::specProfile(kBench));

    for (const bench::Config config : bench::kAllConfigs) {
        core::SimConfig cfg = bench::sweepSimConfig(config, kBudget);
        if (!cfg.withRev)
            continue; // Base attaches the Null backend: no session
        cfg.backend = backend;
        SCOPED_TRACE(bench::configName(config));

        const Captured c = capture(program, cfg, nullptr);
        ASSERT_FALSE(c.stream.empty());

        // The verifier holds independently built reference material with
        // the same fuses/seeds the simulated CPU and toolchain used.
        crypto::KeyVault vault(cfg.cpuSeed);
        sig::SigStore store(program, cfg.mode, vault, cfg.toolchainSeed,
                            cfg.core.splitLimits, cfg.rev.chg.hashRounds);
        RefStore refs(store, &vault);

        StreamVerifier verifier(refs);
        verifier.feed(c.stream.data(), c.stream.size());
        verifier.finish();

        const StreamVerdict &v = verifier.verdict();
        EXPECT_TRUE(v.complete);
        EXPECT_EQ(v.detected, c.detected);
        EXPECT_EQ(v.reason, c.reason);
        EXPECT_EQ(v.bbValidated, c.validation.bbValidated);
        EXPECT_EQ(v.violations, c.validation.violations);
        EXPECT_EQ(v.chainUpdates, c.lofat.chainUpdates);
        EXPECT_EQ(v.bufferSpills, c.lofat.bufferSpills);
        EXPECT_EQ(v.spillBytes, c.lofat.spillBytes);
        EXPECT_EQ(v.unattestedBlocks, c.lofat.unattestedBlocks);
        EXPECT_EQ(v.edgeViolations, c.lofat.edgeViolations);
    }
}

TEST_P(StreamContract, ReplayEmitsIdenticalSession)
{
    const Backend backend = GetParam();
    const prog::Program program =
        workloads::generateWorkload(workloads::specProfile(kBench));

    // Record under a REV configuration (lowest drain watermark).
    core::SimConfig rc = bench::sweepSimConfig(bench::Config::Full32,
                                               kBudget);
    prog::TraceRecorder recorder;
    rc.traceRecorder = &recorder;
    core::Simulator rec(program, rc);
    rec.run();
    const prog::Trace trace = recorder.take();
    ASSERT_TRUE(trace.replayable());

    for (const bench::Config config : bench::kAllConfigs) {
        core::SimConfig cfg = bench::sweepSimConfig(config, kBudget);
        if (!cfg.withRev)
            continue;
        cfg.backend = backend;
        SCOPED_TRACE(bench::configName(config));

        const Captured direct = capture(program, cfg, nullptr);
        const Captured replayed = capture(program, cfg, &trace);
        EXPECT_EQ(direct.stream, replayed.stream);
        EXPECT_EQ(direct.detected, replayed.detected);
        EXPECT_EQ(direct.reason, replayed.reason);
    }
}

TEST(StreamContractNull, BaseConfigEmitsNoSession)
{
    const prog::Program program =
        workloads::generateWorkload(workloads::specProfile(kBench));
    core::SimConfig cfg = bench::sweepSimConfig(bench::Config::Base,
                                                kBudget);
    const Captured c = capture(program, cfg, nullptr);
    EXPECT_TRUE(c.stream.empty()); // Null backend measures nothing
    EXPECT_FALSE(c.detected);
}

INSTANTIATE_TEST_SUITE_P(Backends, StreamContract,
                         ::testing::Values(Backend::Rev, Backend::LoFat),
                         [](const auto &info) {
                             return std::string(backendName(info.param));
                         });

} // namespace
} // namespace rev::validate
