/**
 * @file
 * Contract tests for the pluggable validation-backend framework.
 *
 * A mock core drives every registered backend with the same event stream
 * the real pipeline would produce — onBBFetched / commitReadyAt /
 * validateBB per dynamic basic block, derived by walking the program's
 * own reference CFG — and checks the invariants the Simulator relies on:
 * commit gating never travels back in time, a legitimate execution never
 * raises a violation, syscall services 1/2 suspend and resume validation,
 * and the stats surface (commonStats / resetStats / snapshotStats) is
 * coherent. Backend-specific detection behaviour (REV hash mismatches and
 * delayed return validation, LO-FAT edge checks, chain divergence and
 * measurement-buffer spills) is covered afterwards, along with the
 * registry and the claimed-coverage matrix the red-team oracle consumes.
 */

#include "validate/registry.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/keyvault.hpp"
#include "isa/opcodes.hpp"
#include "mem/memsys.hpp"
#include "program/cfg.hpp"
#include "sig/sigstore.hpp"
#include "testutil.hpp"
#include "validate/coverage.hpp"

namespace rev::validate
{
namespace
{

/** One dynamic basic block as the mock core reports it. */
struct BBEvent
{
    BBFetchInfo info;
    Addr actualTarget = 0;
};

/**
 * A backend under a mock core: the real program / signature store /
 * memory hierarchy, but events are injected directly instead of coming
 * from the pipeline.
 */
class Harness
{
  public:
    explicit Harness(Backend kind,
                     sig::ValidationMode mode = sig::ValidationMode::Full,
                     RevConfig rev = {}, LoFatConfig lofat = {})
        : program_(rev::test::makeLoopCallProgram()), vault_(1),
          store_(program_, mode, vault_, /*seed=*/1, prog::SplitLimits{},
                 /*hash_rounds=*/5)
    {
        program_.loadInto(mem_);
        store_.loadInto(mem_);
        BackendContext ctx;
        ctx.store = &store_;
        ctx.vault = &vault_;
        ctx.mem = &mem_;
        ctx.memsys = &memsys_;
        ctx.rev = rev;
        ctx.lofat = lofat;
        validator_ = ValidatorRegistry::instance().create(kind, ctx);
    }

    Validator &v() { return *validator_; }
    SparseMemory &mem() { return mem_; }
    const prog::Cfg &cfg() const { return store_.moduleSigs()[0].cfg; }
    Addr entry() const { return program_.entry(); }

    /**
     * The event stream of one legitimate execution: walk the reference
     * CFG from the entry point, preferring the fall-through edge (so
     * loops exit) and otherwise the first successor that is a valid
     * entry, until the Halt block.
     */
    std::vector<BBEvent>
    canonicalStream() const
    {
        std::vector<BBEvent> events;
        const prog::Cfg &c = cfg();
        const prog::BasicBlock *b = c.blockAtStart(entry());
        BBSeq seq = 1;
        Cycle cycle = 10;
        while (b) {
            BBEvent ev;
            ev.info.bbSeq = seq;
            ev.info.start = b->start;
            ev.info.term = b->term;
            ev.info.end = b->end;
            ev.info.termClass = isa::opcodeClass(
                static_cast<isa::Opcode>(mem_.read8(b->term)));
            ev.info.artificialSplit = b->kind == prog::TermKind::Split;
            ev.info.termSeq = seq * 100;
            ev.info.fetchDoneAt = cycle;

            const prog::BasicBlock *next = nullptr;
            if (b->kind == prog::TermKind::Halt) {
                ev.actualTarget = b->end;
            } else {
                Addr target = 0;
                for (Addr s : b->succs)
                    if (s == b->end)
                        target = s; // fall through: escapes the loop
                if (!target)
                    for (Addr s : b->succs)
                        if (c.blockAtStart(s)) {
                            target = s;
                            break;
                        }
                ev.actualTarget = target;
                next = c.blockAtStart(target);
            }
            ev.info.nextStart = ev.actualTarget;
            events.push_back(ev);
            ++seq;
            cycle += 20;
            if (b->kind == prog::TermKind::Halt)
                break;
            b = next;
        }
        return events;
    }

    /**
     * Feed @p events through the backend the way the core would, checking
     * the gating invariant, and return the number of validateBB failures
     * (collecting each failure's reason into @p reasons).
     */
    u64
    drive(const std::vector<BBEvent> &events,
          std::vector<std::string> *reasons = nullptr)
    {
        u64 failures = 0;
        for (const BBEvent &ev : events) {
            validator_->onBBFetched(ev.info);
            const Cycle earliest = ev.info.fetchDoneAt + 8;
            const Cycle ready = validator_->commitReadyAt(ev.info.bbSeq,
                                                          earliest);
            EXPECT_GE(ready, earliest) << "commit gated into the past";
            if (!validator_->validateBB(ev.info.bbSeq, ev.actualTarget,
                                        ready)) {
                ++failures;
                if (reasons)
                    reasons->push_back(validator_->violationReason());
            }
        }
        return failures;
    }

  private:
    prog::Program program_;
    crypto::KeyVault vault_;
    SparseMemory mem_;
    mem::MemorySystem memsys_;
    sig::SigStore store_;
    std::unique_ptr<Validator> validator_;
};

/** @p events with the first conditional branch redirected to @p target. */
std::vector<BBEvent>
withHijackedBranch(std::vector<BBEvent> events, Addr target)
{
    for (BBEvent &ev : events)
        if (ev.info.termClass == isa::InstrClass::Branch) {
            ev.actualTarget = target;
            ev.info.nextStart = target;
            break;
        }
    return events;
}

bool
contains(const std::string &s, const std::string &needle)
{
    return s.find(needle) != std::string::npos;
}

std::vector<Backend>
allBackends()
{
    std::vector<Backend> kinds;
    for (const BackendInfo &info : ValidatorRegistry::instance().list())
        kinds.push_back(info.kind);
    return kinds;
}

// --- uniform contract, every registered backend -------------------------

TEST(ValidatorContract, CanonicalStreamPassesCleanly)
{
    for (Backend kind : allBackends()) {
        SCOPED_TRACE(backendName(kind));
        Harness h(kind);
        const std::vector<BBEvent> events = h.canonicalStream();
        ASSERT_GE(events.size(), 4u); // loop, call, return, halt blocks
        EXPECT_EQ(h.drive(events), 0u);
        const ValidationStats st = h.v().commonStats();
        EXPECT_EQ(st.violations, 0u);
        if (h.v().validationActive())
            EXPECT_EQ(st.bbValidated, events.size());
        else
            EXPECT_EQ(st.bbValidated, 0u);
    }
}

TEST(ValidatorContract, UnknownBlockCommitsUngated)
{
    for (Backend kind : allBackends()) {
        SCOPED_TRACE(backendName(kind));
        Harness h(kind);
        // No onBBFetched happened: the backend must not gate or fail.
        EXPECT_EQ(h.v().commitReadyAt(/*bb=*/9999, /*earliest=*/42), 42u);
        EXPECT_TRUE(h.v().validateBB(/*bb=*/9999, /*actual_target=*/0x1234,
                                     /*commit_cycle=*/50));
    }
}

TEST(ValidatorContract, SyscallServicesSuspendAndResume)
{
    for (Backend kind : allBackends()) {
        SCOPED_TRACE(backendName(kind));
        Harness h(kind);
        const bool active = h.v().validationActive();

        h.v().onSyscall(/*service=*/1, /*commit_cycle=*/5);
        EXPECT_FALSE(h.v().validationActive());
        // While suspended even a hijacked stream must pass silently.
        EXPECT_EQ(h.drive(withHijackedBranch(h.canonicalStream(), 0xDEAD00)),
                  0u);
        EXPECT_EQ(h.v().commonStats().violations, 0u);

        h.v().onSyscall(/*service=*/2, /*commit_cycle=*/500);
        EXPECT_EQ(h.v().validationActive(), active);
        EXPECT_EQ(h.drive(h.canonicalStream()), 0u);
    }
}

TEST(ValidatorContract, ResetStatsZeroesTheCommonSlice)
{
    for (Backend kind : allBackends()) {
        SCOPED_TRACE(backendName(kind));
        Harness h(kind);
        h.drive(h.canonicalStream());
        h.v().resetStats();
        const ValidationStats st = h.v().commonStats();
        EXPECT_EQ(st.bbValidated, 0u);
        EXPECT_EQ(st.violations, 0u);
        EXPECT_EQ(st.commitStallCycles, 0u);
    }
}

TEST(ValidatorContract, SnapshotRowsCarryThePrefix)
{
    for (Backend kind : allBackends()) {
        SCOPED_TRACE(backendName(kind));
        Harness h(kind);
        h.drive(h.canonicalStream());
        stats::StatSet set;
        h.v().snapshotStats(set, "sim0");
        if (h.v().validationActive()) {
            EXPECT_GT(set.size(), 0u);
        }
        for (const auto &[name, value] : set.rows())
            EXPECT_EQ(name.rfind("sim0.", 0), 0u) << name;
    }
}

// --- registry and naming -------------------------------------------------

TEST(ValidatorRegistryTest, ListsBuiltinsInCanonicalOrder)
{
    const auto &infos = ValidatorRegistry::instance().list();
    ASSERT_GE(infos.size(), 3u);
    EXPECT_STREQ(infos[0].name, "rev");
    EXPECT_STREQ(infos[1].name, "lofat");
    EXPECT_STREQ(infos[2].name, "null");
    EXPECT_TRUE(infos[0].needsTables);
    EXPECT_TRUE(infos[1].needsTables);
    EXPECT_FALSE(infos[2].needsTables);
    for (const BackendInfo &info : infos) {
        EXPECT_NE(ValidatorRegistry::instance().find(info.kind), nullptr);
        EXPECT_NE(info.summary[0], '\0');
    }
}

TEST(ValidatorRegistryTest, CreatedValidatorsReportTheirKind)
{
    for (Backend kind : allBackends()) {
        Harness h(kind);
        EXPECT_EQ(h.v().kind(), kind);
    }
}

TEST(ValidatorRegistryTest, BackendNamesRoundTrip)
{
    for (Backend kind : allBackends()) {
        Backend parsed = Backend::Null;
        ASSERT_TRUE(backendFromName(backendName(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    Backend parsed = Backend::Null;
    EXPECT_FALSE(backendFromName("bogus", &parsed));
}

// --- claimed-coverage matrix --------------------------------------------

TEST(CoverageMatrix, MatchesTheDocumentedClaims)
{
    using sig::ValidationMode;
    const ValidationMode modes[] = {ValidationMode::Full,
                                    ValidationMode::Aggressive,
                                    ValidationMode::CfiOnly};
    for (ValidationMode m : modes) {
        // REV claims everything except substitution without hashes.
        EXPECT_EQ(backendClaims(Backend::Rev, TamperClass::CodeSubstitution,
                                m),
                  m != ValidationMode::CfiOnly);
        EXPECT_TRUE(
            backendClaims(Backend::Rev, TamperClass::ControlFlowHijack, m));
        EXPECT_TRUE(backendClaims(Backend::Rev, TamperClass::ForeignCode, m));
        EXPECT_TRUE(
            backendClaims(Backend::Rev, TamperClass::SignatureTamper, m));

        // LO-FAT's eager CFG check sees hijacks and foreign code only.
        EXPECT_TRUE(
            backendClaims(Backend::LoFat, TamperClass::ControlFlowHijack, m));
        EXPECT_TRUE(
            backendClaims(Backend::LoFat, TamperClass::ForeignCode, m));
        EXPECT_FALSE(
            backendClaims(Backend::LoFat, TamperClass::CodeSubstitution, m));
        EXPECT_FALSE(
            backendClaims(Backend::LoFat, TamperClass::SignatureTamper, m));

        for (TamperClass c :
             {TamperClass::CodeSubstitution, TamperClass::ControlFlowHijack,
              TamperClass::ForeignCode, TamperClass::SignatureTamper})
            EXPECT_FALSE(backendClaims(Backend::Null, c, m));
    }
}

// --- REV-specific detection ---------------------------------------------

TEST(RevBackend, DetectsInPlaceCodeSubstitution)
{
    Harness h(Backend::Rev);
    // Flip an operand byte inside the first block after the tables were
    // built: the CHG digest no longer matches the reference signature.
    const Addr victim = h.entry() + 1;
    h.mem().write8(victim, h.mem().read8(victim) ^ 0x40);
    h.v().invalidateCodeCache();

    std::vector<std::string> reasons;
    EXPECT_GE(h.drive(h.canonicalStream(), &reasons), 1u);
    ASSERT_FALSE(reasons.empty());
    EXPECT_TRUE(contains(reasons.front(), "hash mismatch"))
        << reasons.front();
}

TEST(RevBackend, DelayedReturnValidationCatchesReturnHijack)
{
    Harness h(Backend::Rev);
    std::vector<BBEvent> events = h.canonicalStream();
    // Redirect the return to the program entry (a valid block whose
    // predecessor list contains no RET), then report the entry block: the
    // delayed check of Sec. V.A fires on the block *after* the return.
    bool redirected = false;
    for (std::size_t i = 0; i + 1 < events.size(); ++i)
        if (events[i].info.termClass == isa::InstrClass::Return) {
            events[i].actualTarget = h.entry();
            events[i].info.nextStart = h.entry();
            BBEvent landing = events.front();
            landing.info.bbSeq = events[i].info.bbSeq + 1;
            landing.info.termSeq = events[i].info.termSeq + 1;
            landing.info.fetchDoneAt = events[i].info.fetchDoneAt + 20;
            events.resize(i + 1);
            events.push_back(landing);
            redirected = true;
            break;
        }
    ASSERT_TRUE(redirected);

    std::vector<std::string> reasons;
    EXPECT_EQ(h.drive(events, &reasons), 1u);
    ASSERT_EQ(reasons.size(), 1u);
    EXPECT_TRUE(contains(reasons.front(), "return from")) << reasons.front();
}

TEST(RevBackend, ForeignCodeHasNoReferenceSignature)
{
    Harness h(Backend::Rev);
    BBEvent ev;
    ev.info.bbSeq = 1;
    ev.info.start = 0x50000000; // outside every registered module
    ev.info.term = 0x50000010;
    ev.info.end = 0x50000011;
    ev.info.termClass = isa::InstrClass::Jump;
    ev.info.termSeq = 1;
    ev.info.fetchDoneAt = 10;
    ev.info.nextStart = ev.actualTarget = h.entry();

    std::vector<std::string> reasons;
    EXPECT_EQ(h.drive({ev}, &reasons), 1u);
    ASSERT_EQ(reasons.size(), 1u);
    EXPECT_TRUE(contains(reasons.front(), "no reference signature"))
        << reasons.front();
}

// --- LO-FAT-specific detection ------------------------------------------

TEST(LoFatBackend, RejectsEdgesAbsentFromTheAttestedCfg)
{
    Harness h(Backend::LoFat);
    std::vector<std::string> reasons;
    EXPECT_GE(h.drive(withHijackedBranch(h.canonicalStream(), 0xDEAD00),
                      &reasons),
              1u);
    ASSERT_FALSE(reasons.empty());
    EXPECT_TRUE(contains(reasons.front(), "absent from attested CFG"))
        << reasons.front();
}

TEST(LoFatBackend, RejectsReturnsToUnattestedSites)
{
    Harness h(Backend::LoFat);
    std::vector<BBEvent> events = h.canonicalStream();
    bool redirected = false;
    for (BBEvent &ev : events)
        if (ev.info.termClass == isa::InstrClass::Return) {
            ev.actualTarget = 0xDEAD00;
            ev.info.nextStart = 0xDEAD00;
            redirected = true;
            break;
        }
    ASSERT_TRUE(redirected);

    std::vector<std::string> reasons;
    EXPECT_GE(h.drive(events, &reasons), 1u);
    ASSERT_FALSE(reasons.empty());
    EXPECT_TRUE(contains(reasons.front(), "not an attested return site"))
        << reasons.front();
}

TEST(LoFatBackend, FlagsUnattestedCode)
{
    Harness h(Backend::LoFat);
    BBEvent ev;
    ev.info.bbSeq = 1;
    ev.info.start = 0x50000000;
    ev.info.term = 0x50000010;
    ev.info.end = 0x50000011;
    ev.info.termClass = isa::InstrClass::Jump;
    ev.info.termSeq = 1;
    ev.info.fetchDoneAt = 10;
    ev.info.nextStart = ev.actualTarget = h.entry();

    std::vector<std::string> reasons;
    EXPECT_EQ(h.drive({ev}, &reasons), 1u);
    ASSERT_EQ(reasons.size(), 1u);
    EXPECT_TRUE(contains(reasons.front(), "unattested code"))
        << reasons.front();
}

TEST(LoFatBackend, MeasurementChainDivergesUnderSubstitution)
{
    // In-place substitution is outside LO-FAT's claimed coverage: both
    // runs pass, but the measurement chain a verifier would receive
    // differs — the detection is remote, not local.
    Harness clean(Backend::LoFat);
    Harness tampered(Backend::LoFat);
    const Addr victim = tampered.entry() + 1;
    tampered.mem().write8(victim, tampered.mem().read8(victim) ^ 0x40);

    EXPECT_EQ(clean.drive(clean.canonicalStream()), 0u);
    EXPECT_EQ(tampered.drive(tampered.canonicalStream()), 0u);

    auto &cv = static_cast<LoFatValidator &>(clean.v());
    auto &tv = static_cast<LoFatValidator &>(tampered.v());
    EXPECT_EQ(cv.stats().chainUpdates, tv.stats().chainUpdates);
    EXPECT_NE(cv.chain(), tv.chain());
}

TEST(LoFatBackend, FullMeasurementBufferSpillsThroughMemory)
{
    LoFatConfig small;
    small.bufferEntries = 2;
    Harness h(Backend::LoFat, sig::ValidationMode::Full, RevConfig{}, small);
    const std::vector<BBEvent> events = h.canonicalStream();
    ASSERT_EQ(h.drive(events), 0u);

    auto &lv = static_cast<LoFatValidator &>(h.v());
    EXPECT_EQ(lv.stats().chainUpdates, events.size());
    EXPECT_EQ(lv.stats().bufferSpills, events.size() / 2);
    EXPECT_EQ(lv.stats().spillBytes,
              lv.stats().bufferSpills * 2 * small.entryBytes);
    EXPECT_LT(lv.bufferUsed(), small.bufferEntries);
}

// --- null backend --------------------------------------------------------

TEST(NullBackend, AcceptsEverythingAndCountsNothing)
{
    Harness h(Backend::Null);
    EXPECT_FALSE(h.v().validationActive());
    EXPECT_EQ(h.drive(withHijackedBranch(h.canonicalStream(), 0xDEAD00)),
              0u);
    const ValidationStats st = h.v().commonStats();
    EXPECT_EQ(st.bbValidated, 0u);
    EXPECT_EQ(st.violations, 0u);
    EXPECT_EQ(st.commitStallCycles, 0u);
    EXPECT_TRUE(h.v().violationReason().empty());
}

} // namespace
} // namespace rev::validate
