# CMake generated Testfile for 
# Source directory: /root/repo/tests/validate
# Build directory: /root/repo/tests/validate
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/validate/test_validate[1]_include.cmake")
include("/root/repo/tests/validate/test_stream_contract[1]_include.cmake")
