file(REMOVE_RECURSE
  "CMakeFiles/test_stream_contract.dir/stream_contract_test.cpp.o"
  "CMakeFiles/test_stream_contract.dir/stream_contract_test.cpp.o.d"
  "test_stream_contract"
  "test_stream_contract.pdb"
  "test_stream_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
