# Empty dependencies file for test_stream_contract.
# This may be replaced when dependencies are built.
