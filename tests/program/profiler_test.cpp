/**
 * @file
 * Profiling-run tests (Sec. IV.D computed-branch target discovery).
 */

#include <gtest/gtest.h>

#include "program/cfg.hpp"
#include "program/profiler.hpp"
#include "testutil.hpp"

namespace rev::prog
{
namespace
{

TEST(Profiler, DiscoversIndirectTargets)
{
    auto p = test::makeIndirectDispatchProgram();
    // Strip the static annotations to force discovery by profiling.
    p.modules()[0].indirectTargets.clear();

    const Profile prof = profileRun(p);
    EXPECT_TRUE(prof.halted);
    ASSERT_EQ(prof.indirectTargets.size(), 1u);
    const auto &targets = prof.indirectTargets.begin()->second;
    EXPECT_EQ(targets.size(), 2u);
    EXPECT_TRUE(targets.count(p.main().symbol("fn_a")));
    EXPECT_TRUE(targets.count(p.main().symbol("fn_b")));
}

TEST(Profiler, ApplyProfileMergesAnnotations)
{
    auto p = test::makeIndirectDispatchProgram();
    p.modules()[0].indirectTargets.clear();
    const Profile prof = profileRun(p);
    applyProfile(p, prof);

    ASSERT_EQ(p.main().indirectTargets.size(), 1u);
    // CFG now resolves the computed call from the merged annotations.
    Cfg cfg = buildCfg(p.main());
    bool found = false;
    for (const auto &bb : cfg.blocks()) {
        if (bb.kind == TermKind::CallIndirect) {
            found = true;
            EXPECT_EQ(bb.succs.size(), 2u);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Profiler, CountsBranchesAndInstructions)
{
    auto p = test::makeLoopCallProgram();
    const Profile prof = profileRun(p);
    EXPECT_TRUE(prof.halted);
    EXPECT_GT(prof.instrCount, 30u);
    // 10 loop branches + call + ret + halt = 13 control transfers.
    EXPECT_EQ(prof.branchCount, 13u);
    EXPECT_TRUE(prof.indirectTargets.empty());
}

TEST(Profiler, InstructionBudgetRespected)
{
    auto p = test::makeLoopCallProgram();
    const Profile prof = profileRun(p, 5);
    EXPECT_EQ(prof.instrCount, 5u);
    EXPECT_FALSE(prof.halted);
}

} // namespace
} // namespace rev::prog
