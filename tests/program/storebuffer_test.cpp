/**
 * @file
 * StoreBuffer (deferred memory update, Requirement R5) tests.
 */

#include <gtest/gtest.h>

#include "program/interp.hpp"

namespace rev::prog
{
namespace
{

TEST(StoreBuffer, ForwardsLatestValue)
{
    SparseMemory mem;
    StoreBuffer sb;
    mem.write64(0x100, 1);
    sb.push(1, 0x100, 2);
    sb.push(2, 0x100, 3);
    EXPECT_EQ(sb.read64(mem, 0x100), 3u);
    EXPECT_EQ(mem.read64(0x100), 1u); // memory untouched
}

TEST(StoreBuffer, DrainReleasesInOrder)
{
    SparseMemory mem;
    StoreBuffer sb;
    sb.push(1, 0x100, 10);
    sb.push(2, 0x108, 20);
    sb.push(3, 0x100, 30);

    sb.drain(mem, 2);
    EXPECT_EQ(mem.read64(0x100), 10u);
    EXPECT_EQ(mem.read64(0x108), 20u);
    // Newest store still pending; forwarding still sees it.
    EXPECT_EQ(sb.read64(mem, 0x100), 30u);

    sb.drain(mem, 3);
    EXPECT_EQ(mem.read64(0x100), 30u);
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBuffer, SquashDiscardsYoungest)
{
    SparseMemory mem;
    StoreBuffer sb;
    sb.push(1, 0x100, 10);
    sb.push(2, 0x100, 20);
    sb.squash(2);
    // Forwarding falls back to the older pending store.
    EXPECT_EQ(sb.read64(mem, 0x100), 10u);
    sb.drain(mem, 10);
    EXPECT_EQ(mem.read64(0x100), 10u);
}

TEST(StoreBuffer, SquashAllRestoresMemoryView)
{
    SparseMemory mem;
    mem.write64(0x200, 7);
    StoreBuffer sb;
    sb.push(5, 0x200, 99);
    sb.squash(1);
    EXPECT_TRUE(sb.empty());
    EXPECT_EQ(sb.read64(mem, 0x200), 7u);
}

TEST(StoreBuffer, OverlappingUnalignedStores)
{
    SparseMemory mem;
    StoreBuffer sb;
    sb.push(1, 0x100, 0x1111111111111111ULL);
    sb.push(2, 0x104, 0x2222222222222222ULL);
    // Bytes 0x100..0x103 from store 1, 0x104..0x10b from store 2.
    EXPECT_EQ(sb.read64(mem, 0x100), 0x2222222211111111ULL);
    sb.drain(mem, 2);
    EXPECT_EQ(mem.read64(0x100), 0x2222222211111111ULL);
}

TEST(StoreBuffer, PartialDrainBoundary)
{
    SparseMemory mem;
    StoreBuffer sb;
    sb.push(10, 0x100, 1);
    sb.push(20, 0x108, 2);
    sb.drain(mem, 15);
    EXPECT_EQ(mem.read64(0x100), 1u);
    EXPECT_EQ(mem.read64(0x108), 0u);
    EXPECT_EQ(sb.size(), 1u);
    EXPECT_EQ(sb.oldestSeq(), 20u);
}

TEST(StoreBuffer, SquashThenRepushSameAddress)
{
    SparseMemory mem;
    StoreBuffer sb;
    sb.push(1, 0x100, 10);
    sb.squash(1);
    sb.push(2, 0x100, 20);
    EXPECT_EQ(sb.read64(mem, 0x100), 20u);
    sb.drain(mem, 2);
    EXPECT_EQ(mem.read64(0x100), 20u);
}

} // namespace
} // namespace rev::prog
