/**
 * @file
 * Assembler / linker tests.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "isa/codec.hpp"
#include "program/assembler.hpp"

namespace rev::prog
{
namespace
{

TEST(Assembler, ForwardAndBackwardBranchFixups)
{
    Assembler a(0x10000);
    a.label("start");
    const Addr b1 = a.beq(1, 2, "end");   // forward
    a.nop();
    const Addr b2 = a.jmp("start");       // backward
    a.label("end");
    a.halt();

    Module m = a.finalize("t", "start");

    auto at = [&](Addr addr) {
        const std::size_t off = addr - m.base;
        return *isa::decode(m.image.data() + off, m.image.size() - off);
    };
    EXPECT_EQ(at(b1).directTarget(b1), m.symbol("end"));
    EXPECT_EQ(at(b2).directTarget(b2), m.symbol("start"));
}

TEST(Assembler, LaLoadsAbsoluteAddress)
{
    Assembler a(0x10000);
    a.label("main");
    a.la(1, "data");
    a.halt();
    a.beginData();
    a.align(8);
    a.label("data");
    a.word64(0x1234);

    Module m = a.finalize("t", "main");
    // Execute the lui+ori pair by hand.
    const std::size_t off = 0;
    auto lui = *isa::decode(m.image.data() + off, m.image.size());
    auto ori = *isa::decode(m.image.data() + off + 6, m.image.size() - 6);
    const u64 value = (static_cast<u64>(static_cast<u32>(lui.imm)) << 32) |
                      static_cast<u32>(ori.imm);
    EXPECT_EQ(value, m.symbol("data"));
}

TEST(Assembler, Word64LabelEmitsAbsolute)
{
    Assembler a(0x20000);
    a.label("f");
    a.halt();
    a.beginData();
    a.align(8);
    a.label("tbl");
    a.word64Label("f");

    Module m = a.finalize("t", "f");
    const std::size_t off = m.symbol("tbl") - m.base;
    u64 v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | m.image[off + i];
    EXPECT_EQ(v, m.symbol("f"));
}

TEST(Assembler, CodeSizeExcludesData)
{
    Assembler a(0x10000);
    a.label("main");
    a.halt();
    a.beginData();
    a.zeros(100);
    Module m = a.finalize("t", "main");
    EXPECT_EQ(m.codeSize, 1u);
    EXPECT_EQ(m.image.size(), 101u);
}

TEST(Assembler, DuplicateLabelFatal)
{
    Assembler a(0x10000);
    a.label("x");
    EXPECT_THROW(a.label("x"), FatalError);
}

TEST(Assembler, UndefinedLabelFatal)
{
    Assembler a(0x10000);
    a.jmp("nowhere");
    EXPECT_THROW(a.finalize("t", ""), FatalError);
}

TEST(Assembler, InstructionAfterDataFatal)
{
    Assembler a(0x10000);
    a.halt();
    a.beginData();
    a.word64(0);
    EXPECT_THROW(a.nop(), FatalError);
}

TEST(Assembler, IndirectAnnotationsResolved)
{
    Assembler a(0x10000);
    a.label("main");
    const Addr site = a.jmpr(3);
    a.annotateIndirect(site, {"a", "b"});
    a.label("a");
    a.nop();
    a.label("b");
    a.halt();

    Module m = a.finalize("t", "main");
    ASSERT_EQ(m.indirectTargets.count(site), 1u);
    const auto &targets = m.indirectTargets.at(site);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0], m.symbol("a"));
    EXPECT_EQ(targets[1], m.symbol("b"));
}

TEST(Assembler, AlignPadsWithNopsInCode)
{
    Assembler a(0x10000);
    a.label("main");
    a.nop();
    a.align(8);
    EXPECT_EQ(a.here() % 8, 0u);
    a.halt();
    Module m = a.finalize("t", "main");
    // Bytes 1..7 must be NOPs (decodable).
    for (std::size_t i = 1; i < 8; ++i)
        EXPECT_EQ(m.image[i], static_cast<u8>(isa::Opcode::Nop));
}

TEST(Module, SymbolLookupFatalWhenMissing)
{
    Assembler a(0x10000);
    a.label("main");
    a.halt();
    Module m = a.finalize("t", "main");
    EXPECT_EQ(m.symbol("main"), m.base);
    EXPECT_THROW(m.symbol("missing"), FatalError);
}

} // namespace
} // namespace rev::prog
