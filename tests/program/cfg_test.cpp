/**
 * @file
 * Static CFG extraction tests (Sec. IV/V analysis).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "program/cfg.hpp"
#include "testutil.hpp"

namespace rev::prog
{
namespace
{

bool
hasSucc(const BasicBlock &bb, Addr target)
{
    return std::find(bb.succs.begin(), bb.succs.end(), target) !=
           bb.succs.end();
}

TEST(Cfg, LoopCallProgramStructure)
{
    auto p = test::makeLoopCallProgram();
    const Module &m = p.main();
    Cfg cfg = buildCfg(m);

    // Entry block: main..bne (branch terminator).
    const BasicBlock *entry = cfg.blockAtStart(m.symbol("main"));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->kind, TermKind::Branch);
    EXPECT_TRUE(hasSucc(*entry, m.symbol("loop")));

    // Loop block: loop..bne, successors = loop and fall-through.
    const BasicBlock *loop = cfg.blockAtStart(m.symbol("loop"));
    ASSERT_NE(loop, nullptr);
    EXPECT_EQ(loop->kind, TermKind::Branch);
    EXPECT_EQ(loop->succs.size(), 2u);
    EXPECT_TRUE(hasSucc(*loop, m.symbol("loop")));

    // The block after the loop ends with CALL helper.
    const BasicBlock *callbb = cfg.blockAtStart(loop->end);
    ASSERT_NE(callbb, nullptr);
    EXPECT_EQ(callbb->kind, TermKind::Call);
    EXPECT_TRUE(hasSucc(*callbb, m.symbol("helper")));

    // Helper ends with RET whose successor is the call's return site.
    const BasicBlock *helper = cfg.blockAtStart(m.symbol("helper"));
    ASSERT_NE(helper, nullptr);
    EXPECT_EQ(helper->kind, TermKind::Return);
    ASSERT_EQ(helper->succs.size(), 1u);
    EXPECT_EQ(helper->succs[0], callbb->end);

    // The return site records the RET instruction as its predecessor
    // (delayed return validation, Sec. V.A).
    const BasicBlock *retsite = cfg.blockAtStart(callbb->end);
    ASSERT_NE(retsite, nullptr);
    ASSERT_EQ(retsite->retPreds.size(), 1u);
    EXPECT_EQ(retsite->retPreds[0], helper->term);
}

TEST(Cfg, IndirectDispatchTargetsFromAnnotations)
{
    auto p = test::makeIndirectDispatchProgram();
    const Module &m = p.main();
    Cfg cfg = buildCfg(m);

    // Find the CALLR block.
    const BasicBlock *callr = nullptr;
    for (const auto &bb : cfg.blocks())
        if (bb.kind == TermKind::CallIndirect)
            callr = &bb;
    ASSERT_NE(callr, nullptr);
    EXPECT_TRUE(hasSucc(*callr, m.symbol("fn_a")));
    EXPECT_TRUE(hasSucc(*callr, m.symbol("fn_b")));

    // Both functions' RETs return to the single return site; that site
    // lists both RET addresses as predecessors.
    const BasicBlock *retsite = cfg.blockAtStart(callr->end);
    ASSERT_NE(retsite, nullptr);
    EXPECT_EQ(retsite->retPreds.size(), 2u);
}

TEST(Cfg, BranchIntoBlockMiddleCreatesSuffixBlock)
{
    Assembler a(0x10000);
    a.label("main");
    a.movi(1, 5);
    a.label("mid"); // branch target inside a straight-line run
    a.addi(1, 1, -1);
    a.bne(1, 0, "mid");
    a.halt();

    auto m = a.finalize("t", "main");
    Cfg cfg = buildCfg(m);

    const BasicBlock *full = cfg.blockAtStart(m.symbol("main"));
    const BasicBlock *suffix = cfg.blockAtStart(m.symbol("mid"));
    ASSERT_NE(full, nullptr);
    ASSERT_NE(suffix, nullptr);
    // Same terminator, different entry points and lengths.
    EXPECT_EQ(full->term, suffix->term);
    EXPECT_GT(full->numInstrs, suffix->numInstrs);
    // Both are indexed under the shared terminator.
    EXPECT_EQ(cfg.blocksAtTerm(full->term).size(), 2u);
}

TEST(Cfg, ArtificialSplitOnInstrLimit)
{
    Assembler a(0x10000);
    a.label("main");
    for (int i = 0; i < 20; ++i)
        a.addi(1, 1, 1);
    a.halt();
    auto m = a.finalize("t", "main");

    SplitLimits limits;
    limits.maxInstrs = 8;
    Cfg cfg = buildCfg(m, limits);

    const BasicBlock *first = cfg.blockAtStart(m.symbol("main"));
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->kind, TermKind::Split);
    EXPECT_EQ(first->numInstrs, 8u);
    ASSERT_EQ(first->succs.size(), 1u);

    // Chain: 8 + 8 + 4 instrs + halt.
    const BasicBlock *second = cfg.blockAtStart(first->succs[0]);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->kind, TermKind::Split);
    const BasicBlock *third = cfg.blockAtStart(second->succs[0]);
    ASSERT_NE(third, nullptr);
    EXPECT_EQ(third->kind, TermKind::Halt);
    EXPECT_EQ(third->numInstrs, 5u);
}

TEST(Cfg, ArtificialSplitOnStoreLimit)
{
    Assembler a(0x10000);
    a.label("main");
    for (int i = 0; i < 6; ++i)
        a.st(1, 30, -8 * (i + 1));
    a.halt();
    auto m = a.finalize("t", "main");

    SplitLimits limits;
    limits.maxInstrs = 100;
    limits.maxStores = 2;
    Cfg cfg = buildCfg(m, limits);

    const BasicBlock *first = cfg.blockAtStart(m.symbol("main"));
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->kind, TermKind::Split);
    EXPECT_EQ(first->numStores, 2u);
}

TEST(Cfg, StatsAreConsistent)
{
    auto p = test::makeLoopCallProgram();
    Cfg cfg = buildCfg(p.main());
    const CfgStats s = cfg.stats();
    EXPECT_GT(s.numBlocks, 3u);
    EXPECT_GT(s.avgInstrsPerBlock, 1.0);
    EXPECT_GT(s.avgSuccsPerBlock, 0.5);
    EXPECT_EQ(s.numComputedSites, 0u);
    EXPECT_LE(s.numTerminators, s.numBlocks);
}

TEST(Cfg, ComputedSiteCounted)
{
    auto p = test::makeIndirectDispatchProgram();
    Cfg cfg = buildCfg(p.main());
    EXPECT_EQ(cfg.stats().numComputedSites, 1u);
}

TEST(Cfg, HaltHasNoSuccessors)
{
    Assembler a(0x10000);
    a.label("main");
    a.halt();
    auto m = a.finalize("t", "main");
    Cfg cfg = buildCfg(m);
    const BasicBlock *bb = cfg.blockAtStart(m.base);
    ASSERT_NE(bb, nullptr);
    EXPECT_TRUE(bb->succs.empty());
}

TEST(Cfg, LinkCfgsIsIdempotent)
{
    auto p = test::makeLoopCallProgram();
    Cfg cfg = buildCfg(p.main());
    auto snapshot = cfg.blocks();
    linkCfgs({&cfg});
    linkCfgs({&cfg});
    ASSERT_EQ(cfg.blocks().size(), snapshot.size());
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        EXPECT_EQ(cfg.blocks()[i].succs, snapshot[i].succs) << i;
        EXPECT_EQ(cfg.blocks()[i].retPreds, snapshot[i].retPreds) << i;
    }
}

TEST(Cfg, UnknownStartReturnsNull)
{
    auto p = test::makeLoopCallProgram();
    Cfg cfg = buildCfg(p.main());
    EXPECT_EQ(cfg.blockAtStart(0xdead), nullptr);
    EXPECT_TRUE(cfg.blocksAtTerm(0xdead).empty());
}

} // namespace
} // namespace rev::prog
