/**
 * @file
 * Dispatch-mode equivalence: the superblock token-threaded interpreter
 * and the legacy per-instruction switch path must be bit-identical —
 * per-step ExecRecords, final architectural state, and self-modifying
 * code behavior, including a store that lands inside the superblock
 * currently being executed (the page-version guard must catch it before
 * the next token commits).
 */

#include <gtest/gtest.h>

#include "program/interp.hpp"
#include "testutil.hpp"

namespace rev::prog
{
namespace
{

/** Restore the process-global dispatch mode on scope exit. */
struct DispatchGuard
{
    DispatchMode saved = dispatchMode();
    ~DispatchGuard() { setDispatchMode(saved); }
};

Machine
makeMachine(const Program &p, SparseMemory &mem, DispatchMode mode)
{
    setDispatchMode(mode);
    return Machine(p, mem);
}

void
expectRecordsEqual(const ExecRecord &a, const ExecRecord &b, u64 step)
{
    ASSERT_EQ(a.pc, b.pc) << "step " << step;
    ASSERT_EQ(a.ins.op, b.ins.op) << "step " << step;
    ASSERT_EQ(a.nextPc, b.nextPc) << "step " << step;
    ASSERT_EQ(a.taken, b.taken) << "step " << step;
    ASSERT_EQ(a.isLoad, b.isLoad) << "step " << step;
    ASSERT_EQ(a.isStore, b.isStore) << "step " << step;
    ASSERT_EQ(a.memAddr, b.memAddr) << "step " << step;
    ASSERT_EQ(a.memSize, b.memSize) << "step " << step;
    ASSERT_EQ(a.storeValue, b.storeValue) << "step " << step;
    ASSERT_EQ(a.loadValue, b.loadValue) << "step " << step;
    ASSERT_EQ(a.halted, b.halted) << "step " << step;
    ASSERT_EQ(a.invalid, b.invalid) << "step " << step;
    ASSERT_EQ(a.isSyscall, b.isSyscall) << "step " << step;
    ASSERT_EQ(a.syscallNo, b.syscallNo) << "step " << step;
}

/** Lockstep-run @p p under both modes and compare every record. */
void
lockstepCompare(const Program &p, u64 max_steps = 200'000)
{
    DispatchGuard guard;
    SparseMemory memSwitch, memThreaded;
    p.loadInto(memSwitch);
    p.loadInto(memThreaded);
    Machine a = makeMachine(p, memSwitch, DispatchMode::Switch);
    Machine b = makeMachine(p, memThreaded, DispatchMode::Threaded);

    u64 steps = 0;
    while (!a.halted() && steps < max_steps) {
        const ExecRecord ra = a.step();
        const ExecRecord rb = b.step();
        expectRecordsEqual(ra, rb, steps);
        ++steps;
    }
    EXPECT_TRUE(a.halted());
    EXPECT_TRUE(b.halted());
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        EXPECT_EQ(a.reg(r), b.reg(r)) << "reg " << r;
    EXPECT_EQ(memSwitch.read64(test::kResultAddr),
              memThreaded.read64(test::kResultAddr));
}

TEST(Dispatch, LoopCallProgramLockstepIdentical)
{
    lockstepCompare(test::makeLoopCallProgram());
}

TEST(Dispatch, IndirectDispatchProgramLockstepIdentical)
{
    lockstepCompare(test::makeIndirectDispatchProgram());
}

/** Heap slot the SMC program loads its replacement word from. */
constexpr Addr kPatchSlot = prog::kHeapBase + 0x100;

/**
 * A single straight-line basic block that stores over one of its own
 * upcoming instructions: la/ld/st execute, then the patched site runs.
 * In threaded mode all of it sits in one superblock, so the store must
 * invalidate the token run mid-block and the rebuilt tokens must carry
 * the fresh bytes.
 */
Program
makeSmcProgram(i32 imm)
{
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, static_cast<i32>(kPatchSlot));
    a.ld(2, 1, 0);  // r2 = replacement instruction word
    a.la(3, "patch");
    a.st(2, 3, 0);  // overwrite the code 2 instructions ahead
    a.label("patch");
    a.movi(4, imm); // the store above replaces this instruction
    a.nop();
    a.nop();
    a.nop();
    a.movi(5, static_cast<i32>(test::kResultAddr));
    a.st(4, 5, 0);
    a.halt();
    Program p;
    p.addModule(a.finalize("smc", "main"));
    return p;
}

TEST(Dispatch, SelfModifyingStoreMidSuperblockSeenByBothModes)
{
    DispatchGuard guard;

    // The donor image is identical except for the patched immediate; its
    // bytes at "patch" are the replacement word the program stores.
    const Program victim = makeSmcProgram(111);
    const Program donor = makeSmcProgram(222);
    const Addr patch = victim.main().symbol("patch");
    SparseMemory donorMem;
    donor.loadInto(donorMem);
    const u64 replacement = donorMem.read64(patch);

    u64 results[2];
    const DispatchMode modes[2] = {DispatchMode::Switch,
                                   DispatchMode::Threaded};
    for (int m = 0; m < 2; ++m) {
        SparseMemory mem;
        victim.loadInto(mem);
        mem.write(kPatchSlot, replacement, 8);
        Machine machine = makeMachine(victim, mem, modes[m]);
        runToHalt(machine);
        EXPECT_TRUE(machine.halted());
        results[m] = mem.read64(test::kResultAddr);
    }
    // Both modes executed the patched instruction, not the stale decode.
    EXPECT_EQ(results[0], 222u);
    EXPECT_EQ(results[1], 222u);
}

/** Same SMC program, but lockstep-compared record by record: the modes
 *  must agree on every intermediate step too, not just the outcome. */
TEST(Dispatch, SelfModifyingStoreLockstepIdentical)
{
    DispatchGuard guard;
    const Program victim = makeSmcProgram(111);
    const Program donor = makeSmcProgram(222);
    const Addr patch = victim.main().symbol("patch");
    SparseMemory donorMem;
    donor.loadInto(donorMem);
    const u64 replacement = donorMem.read64(patch);

    SparseMemory memA, memB;
    victim.loadInto(memA);
    victim.loadInto(memB);
    memA.write(kPatchSlot, replacement, 8);
    memB.write(kPatchSlot, replacement, 8);
    Machine a = makeMachine(victim, memA, DispatchMode::Switch);
    Machine b = makeMachine(victim, memB, DispatchMode::Threaded);
    u64 steps = 0;
    while (!a.halted() && steps < 1000) {
        expectRecordsEqual(a.step(), b.step(), steps);
        ++steps;
    }
    EXPECT_TRUE(b.halted());
}

/** setPc() breaks cursor continuity; the threaded path must re-attach
 *  rather than keep committing stale tokens. */
TEST(Dispatch, SetPcMidBlockReattachesCursor)
{
    DispatchGuard guard;
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 1);
    a.movi(2, 2);
    a.movi(3, 3);
    a.label("tail");
    a.movi(4, 4);
    a.halt();
    Program p;
    p.addModule(a.finalize("t", "main"));

    SparseMemory mem;
    p.loadInto(mem);
    Machine machine = makeMachine(p, mem, DispatchMode::Threaded);
    machine.step(); // movi r1 — cursor now mid-superblock
    machine.setPc(p.main().symbol("tail"));
    runToHalt(machine);
    EXPECT_EQ(machine.reg(1), 1u);
    EXPECT_EQ(machine.reg(2), 0u); // skipped by the redirect
    EXPECT_EQ(machine.reg(3), 0u);
    EXPECT_EQ(machine.reg(4), 4u);
}

} // namespace
} // namespace rev::prog
