file(REMOVE_RECURSE
  "CMakeFiles/test_program.dir/assembler_test.cpp.o"
  "CMakeFiles/test_program.dir/assembler_test.cpp.o.d"
  "CMakeFiles/test_program.dir/cfg_test.cpp.o"
  "CMakeFiles/test_program.dir/cfg_test.cpp.o.d"
  "CMakeFiles/test_program.dir/dispatch_test.cpp.o"
  "CMakeFiles/test_program.dir/dispatch_test.cpp.o.d"
  "CMakeFiles/test_program.dir/interp_test.cpp.o"
  "CMakeFiles/test_program.dir/interp_test.cpp.o.d"
  "CMakeFiles/test_program.dir/profiler_test.cpp.o"
  "CMakeFiles/test_program.dir/profiler_test.cpp.o.d"
  "CMakeFiles/test_program.dir/storebuffer_test.cpp.o"
  "CMakeFiles/test_program.dir/storebuffer_test.cpp.o.d"
  "test_program"
  "test_program.pdb"
  "test_program[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
