# CMake generated Testfile for 
# Source directory: /root/repo/tests/program
# Build directory: /root/repo/tests/program
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/program/test_program[1]_include.cmake")
