/**
 * @file
 * Functional interpreter tests.
 */

#include <gtest/gtest.h>

#include <bit>

#include "program/interp.hpp"
#include "testutil.hpp"

namespace rev::prog
{
namespace
{

TEST(Interp, LoopCallProgramResult)
{
    auto p = test::makeLoopCallProgram();
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    runToHalt(machine);
    EXPECT_TRUE(machine.halted());
    // sum(1..10) = 55, doubled by helper = 110.
    EXPECT_EQ(mem.read64(test::kResultAddr), 110u);
}

TEST(Interp, IndirectDispatchResult)
{
    auto p = test::makeIndirectDispatchProgram();
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    runToHalt(machine);
    // 8 iterations alternating +5 (even counter) / +3 (odd counter):
    // counters 8..1 -> parities 0,1,0,1,... -> 4*5 + 4*3 = 32.
    EXPECT_EQ(machine.reg(1), 32u);
}

TEST(Interp, RegisterZeroIsHardwired)
{
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(0, 99);
    a.add(1, 0, 0);
    a.halt();
    Program p;
    p.addModule(a.finalize("t", "main"));
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    runToHalt(machine);
    EXPECT_EQ(machine.reg(0), 0u);
    EXPECT_EQ(machine.reg(1), 0u);
}

TEST(Interp, CallPushesReturnAddressOnStack)
{
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    const Addr call_addr = a.call("f");
    a.label("after");
    a.halt();
    a.label("f");
    a.ld(7, isa::kRegSp, 0); // read own return address
    a.ret();
    Program p;
    p.addModule(a.finalize("t", "main"));
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    runToHalt(machine);
    EXPECT_EQ(machine.reg(7), p.main().symbol("after"));
    (void)call_addr;
    // SP restored after return.
    EXPECT_EQ(machine.reg(isa::kRegSp), Program::initialSp());
}

TEST(Interp, ArithmeticSemantics)
{
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, -3);          // r1 = -3 (sign-extended)
    a.movi(2, 5);
    a.mul(3, 1, 2);         // r3 = -15
    a.slt(4, 1, 2);         // r4 = 1 (signed)
    a.sltu(5, 1, 2);        // r5 = 0 (unsigned: huge < 5 is false)
    a.divu(6, 2, 0);        // div by zero -> 0
    a.shli(7, 2, 2);        // 20
    a.xori(8, 2, 0xff);     // 0xfa
    a.halt();
    Program p;
    p.addModule(a.finalize("t", "main"));
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    runToHalt(machine);
    EXPECT_EQ(static_cast<i64>(machine.reg(3)), -15);
    EXPECT_EQ(machine.reg(4), 1u);
    EXPECT_EQ(machine.reg(5), 0u);
    EXPECT_EQ(machine.reg(6), 0u);
    EXPECT_EQ(machine.reg(7), 20u);
    EXPECT_EQ(machine.reg(8), 0xfau);
}

TEST(Interp, LogicalImmediatesZeroExtend)
{
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 0);
    a.ori(2, 1, static_cast<i32>(0x80000000)); // must NOT sign-extend
    a.halt();
    Program p;
    p.addModule(a.finalize("t", "main"));
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    runToHalt(machine);
    EXPECT_EQ(machine.reg(2), 0x80000000u);
}

TEST(Interp, FloatingPointOps)
{
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.la(1, "vals");
    a.ld(2, 1, 0);  // 1.5
    a.ld(3, 1, 8);  // 2.5
    a.fadd(4, 2, 3);
    a.fmul(5, 2, 3);
    a.halt();
    a.beginData();
    a.align(8);
    a.label("vals");
    a.word64(std::bit_cast<u64>(1.5));
    a.word64(std::bit_cast<u64>(2.5));
    Program p;
    p.addModule(a.finalize("t", "main"));
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    runToHalt(machine);
    EXPECT_EQ(std::bit_cast<double>(machine.reg(4)), 4.0);
    EXPECT_EQ(std::bit_cast<double>(machine.reg(5)), 3.75);
}

TEST(Interp, SubWordLoadsAndStores)
{
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 0x12345678);
    a.shli(1, 1, 16);
    a.ori(1, 1, 0x9abc);          // r1 = 0x123456789abc
    a.movi(5, static_cast<i32>(prog::kHeapBase));
    a.st(1, 5, 0);                // full word
    a.lb(2, 5, 0);                // lowest byte
    a.lw(3, 5, 0);                // low 32 bits
    a.sb(1, 5, 16);               // byte store
    a.ld(4, 5, 16);               // read back: only one byte written
    a.sw(1, 5, 32);               // word store
    a.ld(6, 5, 32);
    a.halt();
    Program p;
    p.addModule(a.finalize("t", "main"));
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    runToHalt(machine);
    EXPECT_EQ(machine.reg(2), 0xbcu);
    EXPECT_EQ(machine.reg(3), 0x56789abcu);
    EXPECT_EQ(machine.reg(4), 0xbcu);
    EXPECT_EQ(machine.reg(6), 0x56789abcu);
}

TEST(Interp, SubWordForwardingThroughStoreBuffer)
{
    // A byte store followed by a wider load must forward byte-accurately
    // through the deferred-store buffer.
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(5, static_cast<i32>(prog::kHeapBase));
    a.movi(1, 0x11111111);
    a.st(1, 5, 0);
    a.movi(2, 0xaa);
    a.sb(2, 5, 1); // overwrite byte 1
    a.ld(3, 5, 0);
    a.halt();
    Program p;
    p.addModule(a.finalize("t", "main"));
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    StoreBuffer sb;
    SeqNum seq = 0;
    while (!machine.halted())
        machine.step(&sb, ++seq);
    EXPECT_EQ(machine.reg(3), 0x1111aa11u);
    // Memory untouched until drain.
    EXPECT_EQ(mem.read64(prog::kHeapBase), 0u);
    sb.drain(mem, seq);
    EXPECT_EQ(mem.read64(prog::kHeapBase), 0x1111aa11u);
}

TEST(Interp, InvalidBytesHaltWithFlag)
{
    Program p;
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.halt();
    p.addModule(a.finalize("t", "main"));
    SparseMemory mem;
    p.loadInto(mem);
    mem.write8(prog::kDefaultCodeBase, 0xff); // corrupt the halt
    Machine machine(p, mem);
    const ExecRecord rec = machine.step();
    EXPECT_TRUE(rec.invalid);
    EXPECT_TRUE(machine.halted());
}

TEST(Interp, SyscallRecorded)
{
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.syscall(2);
    a.halt();
    Program p;
    p.addModule(a.finalize("t", "main"));
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    const ExecRecord rec = machine.step();
    EXPECT_TRUE(rec.isSyscall);
    EXPECT_EQ(rec.syscallNo, 2);
}

TEST(Interp, DecodeCachePicksUpExternalCodePatch)
{
    // Overwrite already-executed code in place (attack-injector style,
    // no manual invalidation): the refetched stream must decode the new
    // bytes, because the decode cache revalidates page versions.
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(3, 111);
    a.halt();
    Assembler b(prog::kDefaultCodeBase);
    b.label("main");
    b.movi(3, 222);
    b.halt();
    Program pa;
    pa.addModule(a.finalize("t", "main"));
    Program pb;
    pb.addModule(b.finalize("t", "main"));

    SparseMemory mem;
    pa.loadInto(mem);
    Machine machine(pa, mem);
    machine.step();
    EXPECT_EQ(machine.reg(3), 111u);

    pb.loadInto(mem);
    machine.setPc(pa.main().symbol("main"));
    machine.step();
    EXPECT_EQ(machine.reg(3), 222u);
}

TEST(Interp, SelfModifyingStoreRefetchesFreshBytes)
{
    // Locate the image byte where MOVI encodes the immediate 111 vs 222.
    Assembler p1(prog::kDefaultCodeBase);
    p1.label("main");
    p1.movi(3, 111);
    p1.halt();
    Assembler p2(prog::kDefaultCodeBase);
    p2.label("main");
    p2.movi(3, 222);
    p2.halt();
    Program a1;
    a1.addModule(p1.finalize("t", "main"));
    Program a2;
    a2.addModule(p2.finalize("t", "main"));
    const auto &i1 = a1.main().image;
    const auto &i2 = a2.main().image;
    ASSERT_EQ(i1.size(), i2.size());
    std::size_t k = 0;
    u8 patch = 0;
    unsigned diffs = 0;
    for (std::size_t i = 0; i < i1.size(); ++i) {
        if (i1[i] != i2[i]) {
            k = i;
            patch = i2[i];
            ++diffs;
        }
    }
    ASSERT_EQ(diffs, 1u);

    // The program patches its own instruction stream through a plain
    // store, then re-executes the patched instruction. Both decodes must
    // take effect: r5 accumulates 111 + 222.
    Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.call("doit");
    a.add(5, 5, 3);
    a.la(1, "doit");
    a.movi(2, patch);
    a.sb(2, 1, static_cast<i32>(k));
    a.call("doit");
    a.add(5, 5, 3);
    a.halt();
    a.label("doit");
    a.movi(3, 111);
    a.ret();
    Program p;
    p.addModule(a.finalize("t", "main"));
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    runToHalt(machine);
    EXPECT_EQ(machine.reg(5), 333u);
}

TEST(Interp, StepAfterHaltIsIdempotent)
{
    auto p = test::makeLoopCallProgram();
    SparseMemory mem;
    p.loadInto(mem);
    Machine machine(p, mem);
    runToHalt(machine);
    const Addr pc = machine.pc();
    const ExecRecord rec = machine.step();
    EXPECT_TRUE(rec.halted);
    EXPECT_EQ(machine.pc(), pc);
}

} // namespace
} // namespace rev::prog
