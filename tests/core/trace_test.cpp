/**
 * @file
 * Validation-trace facility tests: every committed block appears exactly
 * once, in commit order, with consistent hit/miss attribution; failures
 * carry the reason.
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "testutil.hpp"

namespace rev::core
{
namespace
{

TEST(Trace, OneEventPerValidatedBlockInOrder)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, SimConfig{});

    std::vector<validate::RevValidator::ValidationEvent> events;
    sim.engine()->setTraceCallback(
        [&](const validate::RevValidator::ValidationEvent &ev) {
            events.push_back(ev);
        });

    const SimResult r = sim.run();
    ASSERT_FALSE(r.run.violation.has_value());
    EXPECT_EQ(events.size(), r.rev.bbValidated);

    BBSeq prev = 0;
    Cycle prev_cycle = 0;
    u64 hits = 0, partials = 0;
    for (const auto &ev : events) {
        EXPECT_TRUE(ev.passed);
        EXPECT_GT(ev.bbSeq, prev);
        EXPECT_GE(ev.commitCycle, prev_cycle);
        EXPECT_LE(ev.start, ev.term);
        prev = ev.bbSeq;
        prev_cycle = ev.commitCycle;
        hits += ev.scHit;
        partials += ev.partialMiss;
    }
    // Attribution must reconcile with the engine counters.
    EXPECT_EQ(partials, r.rev.scPartialMisses);
    EXPECT_EQ(events.size() - hits, r.rev.scMisses());
}

TEST(Trace, FailureEventCarriesReason)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, SimConfig{});
    std::vector<validate::RevValidator::ValidationEvent> events;
    sim.engine()->setTraceCallback(
        [&](const validate::RevValidator::ValidationEvent &ev) {
            events.push_back(ev);
        });

    const Addr victim = p.main().symbol("helper");
    sim.memory().write8(victim, 0x11);
    sim.engine()->invalidateCodeCache();

    const SimResult r = sim.run();
    ASSERT_TRUE(r.run.violation.has_value());
    ASSERT_FALSE(events.empty());
    const auto &last = events.back();
    EXPECT_FALSE(last.passed);
    EXPECT_NE(last.reason.find("hash mismatch"), std::string::npos);
    // All earlier events passed.
    for (std::size_t i = 0; i + 1 < events.size(); ++i)
        EXPECT_TRUE(events[i].passed);
}

TEST(Trace, StallAttributionSumsToCounter)
{
    auto p = test::makeIndirectDispatchProgram();
    Simulator sim(p, SimConfig{});
    Cycle total = 0;
    sim.engine()->setTraceCallback(
        [&](const validate::RevValidator::ValidationEvent &ev) {
            total += ev.stallCycles;
        });
    const SimResult r = sim.run();
    EXPECT_EQ(total, r.rev.commitStallCycles);
}

TEST(Offenders, FailedValidationRevealsSignature)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, SimConfig{});
    const Addr victim = p.main().symbol("helper");
    sim.memory().write8(victim, 0x11);
    sim.engine()->invalidateCodeCache();

    const SimResult r = sim.run();
    ASSERT_TRUE(r.run.violation.has_value());
    const auto &offenders = sim.engine()->offenders();
    ASSERT_EQ(offenders.size(), 1u);
    EXPECT_EQ(offenders[0].start, victim);
    // The recorded hash is the digest of the *tampered* bytes -- a
    // signature that can recognise the same injected code elsewhere.
    std::vector<u8> bytes(offenders[0].term + 1 - offenders[0].start);
    sim.memory().readBytes(offenders[0].start, bytes.data(), bytes.size());
    EXPECT_EQ(offenders[0].hash,
              sig::bbHashBytes(bytes.data(), bytes.size(),
                               offenders[0].start, offenders[0].term, 5));
    EXPECT_FALSE(offenders[0].reason.empty());
}

TEST(Offenders, CleanRunRecordsNothing)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, SimConfig{});
    sim.run();
    EXPECT_TRUE(sim.engine()->offenders().empty());
}

} // namespace
} // namespace rev::core
