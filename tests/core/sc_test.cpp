/**
 * @file
 * Signature cache structure tests (Sec. IV.C).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "validate/sc.hpp"

namespace rev::validate
{
namespace
{

TEST(SignatureCache, GeometryFromConfig)
{
    SignatureCache sc({.sizeBytes = 32 * 1024, .assoc = 4, .entryBytes = 16});
    EXPECT_EQ(sc.entryCount(), 2048u);
    EXPECT_EQ(sc.numSets(), 512u);

    SignatureCache sc64({.sizeBytes = 64 * 1024, .assoc = 4, .entryBytes = 16});
    EXPECT_EQ(sc64.entryCount(), 4096u);
}

TEST(SignatureCache, MissThenHit)
{
    SignatureCache sc;
    EXPECT_EQ(sc.probe(0x1000, 0x0f00), nullptr);
    ScEntry &e = sc.insert(0x1000, 0x0f00);
    e.hash = 42;
    ScEntry *found = sc.probe(0x1000, 0x0f00);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->hash, 42u);
}

TEST(SignatureCache, StartDisambiguatesSuffixBlocks)
{
    // Two validation units sharing a terminator but with different entry
    // points coexist.
    SignatureCache sc;
    sc.insert(0x1000, 0x0f00).hash = 1;
    sc.insert(0x1000, 0x0f80).hash = 2;
    ASSERT_NE(sc.probe(0x1000, 0x0f00), nullptr);
    ASSERT_NE(sc.probe(0x1000, 0x0f80), nullptr);
    EXPECT_EQ(sc.probe(0x1000, 0x0f00)->hash, 1u);
    EXPECT_EQ(sc.probe(0x1000, 0x0f80)->hash, 2u);
}

TEST(SignatureCache, LruEvictionWithinSet)
{
    SignatureCache sc({.sizeBytes = 128, .assoc = 2, .entryBytes = 16});
    // 4 sets; terminators mapping to set 0 (term>>1 & 3 == 0): 0x0, 0x8...
    sc.insert(0x00, 1);
    sc.insert(0x08, 2);
    sc.probe(0x00, 1);  // refresh
    sc.insert(0x10, 3); // evicts 0x08
    EXPECT_NE(sc.probe(0x00, 1), nullptr);
    EXPECT_EQ(sc.probe(0x08, 2), nullptr);
    EXPECT_NE(sc.probe(0x10, 3), nullptr);
    EXPECT_EQ(sc.evictions(), 1u);
}

TEST(SignatureCache, ReinsertRefreshesInPlace)
{
    SignatureCache sc;
    sc.insert(0x1000, 1).hash = 5;
    sc.insert(0x1000, 1).hash = 9; // same block, no eviction
    EXPECT_EQ(sc.evictions(), 0u);
    EXPECT_EQ(sc.probe(0x1000, 1)->hash, 9u);
}

TEST(SignatureCache, InvalidateAll)
{
    SignatureCache sc;
    sc.insert(0x1000, 1);
    sc.invalidateAll();
    EXPECT_EQ(sc.probe(0x1000, 1), nullptr);
}

TEST(SignatureCache, RejectsBadGeometry)
{
    // 10 entries / 2-way = 5 sets: not a power of two.
    EXPECT_THROW(SignatureCache({.sizeBytes = 160, .assoc = 2,
                                 .entryBytes = 16}),
                 FatalError);
    // 7 entries not divisible by 3 ways.
    EXPECT_THROW(SignatureCache({.sizeBytes = 112, .assoc = 3,
                                 .entryBytes = 16}),
                 FatalError);
}

TEST(SignatureCache, HitCountersTrack)
{
    SignatureCache sc;
    sc.probe(0x1, 0x1);
    sc.insert(0x1, 0x1);
    sc.probe(0x1, 0x1);
    EXPECT_EQ(sc.probes(), 2u);
    EXPECT_EQ(sc.hits(), 1u);
}

} // namespace
} // namespace rev::validate
