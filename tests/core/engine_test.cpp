/**
 * @file
 * End-to-end REV engine tests: legitimate executions always authenticate,
 * tampered code/control flow always raises a violation, and tainted
 * memory updates are contained (Requirements R0/R5).
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "testutil.hpp"

namespace rev::core
{
namespace
{

using sig::ValidationMode;

SimConfig
cfgFor(ValidationMode mode, bool with_rev = true)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.withRev = with_rev;
    return cfg;
}

/** Parameterized across validation modes. */
class EngineModes : public ::testing::TestWithParam<ValidationMode>
{
};

TEST_P(EngineModes, LegitimateRunNeverFires)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, cfgFor(GetParam()));
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    EXPECT_EQ(r.rev.violations, 0u);
    EXPECT_EQ(sim.memory().read64(test::kResultAddr), 110u);
}

TEST_P(EngineModes, IndirectDispatchAuthenticates)
{
    auto p = test::makeIndirectDispatchProgram();
    Simulator sim(p, cfgFor(GetParam()));
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    EXPECT_EQ(sim.core().machine().reg(1), 32u);
}

TEST_P(EngineModes, RevCostsCyclesButNotCorrectness)
{
    auto p = test::makeLoopCallProgram();
    Simulator base(p, cfgFor(GetParam(), false));
    Simulator rev(p, cfgFor(GetParam(), true));
    const SimResult rb = base.run();
    const SimResult rr = rev.run();
    EXPECT_EQ(rb.run.instrs, rr.run.instrs);
    EXPECT_GE(rr.run.cycles, rb.run.cycles);
}

INSTANTIATE_TEST_SUITE_P(Modes, EngineModes,
                         ::testing::Values(ValidationMode::Full,
                                           ValidationMode::Aggressive,
                                           ValidationMode::CfiOnly),
                         [](const auto &info) {
                             switch (info.param) {
                               case ValidationMode::Full:
                                 return std::string("Full");
                               case ValidationMode::Aggressive:
                                 return std::string("Aggressive");
                               default:
                                 return std::string("CfiOnly");
                             }
                         });

TEST(Engine, ValidatesEveryBasicBlock)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, cfgFor(ValidationMode::Full));
    const SimResult r = sim.run();
    // Every committed control transfer validated a block.
    EXPECT_EQ(r.rev.bbValidated, r.run.committedBranches);
}

TEST(Engine, ScMissesOnlyOnFirstEncounters)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, cfgFor(ValidationMode::Full));
    const SimResult r = sim.run();
    // Loop body re-validates out of the SC: misses far fewer than probes.
    EXPECT_GT(r.rev.scMisses(), 0u);
    EXPECT_LT(r.rev.scMisses(), r.rev.bbValidated / 2);
}

TEST(Engine, ScFillTrafficGoesThroughHierarchy)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, cfgFor(ValidationMode::Full));
    const SimResult r = sim.run();
    EXPECT_GT(r.scFillAccesses, 0u);
    EXPECT_EQ(r.scFillAccesses, r.rev.tableWalkReads);
}

TEST(Engine, CodeInjectionDetected)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, cfgFor(ValidationMode::Full));
    // Overwrite an instruction inside the helper function before running.
    const Addr victim = p.main().symbol("helper");
    sim.memory().write8(victim, 0x11); // add -> sub
    sim.engine()->invalidateCodeCache();

    const SimResult r = sim.run();
    ASSERT_TRUE(r.run.violation.has_value());
    EXPECT_NE(r.run.violation->reason.find("hash mismatch"),
              std::string::npos);
}

TEST(Engine, MidRunCodeInjectionDetected)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, cfgFor(ValidationMode::Full));
    const Addr victim = p.main().symbol("helper");
    bool injected = false;
    sim.core().setPreStepHook([&](u64 idx, Addr) {
        if (idx == 20 && !injected) {
            sim.memory().write8(victim, 0x11);
            sim.engine()->invalidateCodeCache();
            injected = true;
        }
    });
    const SimResult r = sim.run();
    EXPECT_TRUE(injected);
    ASSERT_TRUE(r.run.violation.has_value());
}

TEST(Engine, TaintedStoresNeverReachMemory)
{
    // Corrupt the helper so it writes a marker to memory, then verify the
    // write is withheld when validation fails.
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, cfgFor(ValidationMode::Full));

    // Replace helper body 'add r1,r1,r1' (4 bytes) with 'st r1,[r5+0]'
    // would not fit; instead just corrupt the add and check that the
    // legitimate store to kResultAddr never happens because the violation
    // fires earlier in program order... the corrupted block is the helper,
    // whose BB fails validation; the store in main never commits.
    const Addr victim = p.main().symbol("helper");
    sim.memory().write8(victim + 1, 9); // change destination register
    sim.engine()->invalidateCodeCache();

    const SimResult r = sim.run();
    ASSERT_TRUE(r.run.violation.has_value());
    EXPECT_EQ(sim.memory().read64(test::kResultAddr), 0u);
}

TEST(Engine, JumpToUnknownTargetDetected)
{
    // An indirect call whose runtime target is not in the annotated set.
    using namespace isa;
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.la(2, "good");
    const Addr site = a.callr(2);
    a.annotateIndirect(site, {"good"});
    a.halt();
    a.label("good");
    a.ret();
    a.label("evil"); // never annotated
    a.ret();
    prog::Program p;
    p.addModule(a.finalize("t", "main"));

    Simulator sim(p, cfgFor(ValidationMode::Full));
    // Redirect the call at run time by changing r2 before the call.
    const Addr evil = p.main().symbol("evil");
    sim.core().setPreStepHook([&](u64, Addr pc) {
        if (pc == site)
            sim.core().machine().setReg(2, evil);
    });
    const SimResult r = sim.run();
    ASSERT_TRUE(r.run.violation.has_value());
    EXPECT_NE(r.run.violation->reason.find("illegal transfer"),
              std::string::npos);
}

TEST(Engine, ReturnAddressOverwriteDetected)
{
    // Classic stack smash: overwrite the return address on the stack while
    // the helper runs; the return lands at an unexpected site.
    using namespace isa;
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.call("helper");
    a.movi(9, 1);
    a.halt();
    a.label("helper");
    a.addi(1, 1, 1);
    const Addr ret_pc = a.ret();
    a.label("gadget");
    a.movi(9, 666);
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("t", "main"));

    Simulator sim(p, cfgFor(ValidationMode::Full));
    const Addr gadget = p.main().symbol("gadget");
    sim.core().setPreStepHook([&](u64, Addr pc) {
        if (pc == ret_pc) {
            const Addr sp = sim.core().machine().reg(isa::kRegSp);
            sim.memory().write64(sp, gadget); // smash the return address
        }
    });
    const SimResult r = sim.run();
    ASSERT_TRUE(r.run.violation.has_value());
}

TEST(Engine, SyscallDisableSkipsValidation)
{
    using namespace isa;
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.syscall(1); // disable REV
    a.movi(1, 7);
    a.jmp("next");
    a.label("next");
    a.syscall(2); // re-enable
    a.movi(2, 8);
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("t", "main"));

    Simulator sim(p, cfgFor(ValidationMode::Full));
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    // Fewer blocks validated than branches committed (some bypassed).
    EXPECT_LT(r.rev.bbValidated, r.run.committedBranches);
}

TEST(Engine, CrossModuleCallsUseSag)
{
    // main calls a function in a second module; both tables are consulted.
    prog::Program p;
    {
        prog::Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(1, 5);
        a.call("stub");
        a.halt();
        a.label("stub");
        a.nop();
        a.ret();
        p.addModule(a.finalize("main", "main"));
    }
    // Patch: cross-module direct call needs the lib's address; build lib
    // first is awkward with labels, so call via register with annotation.
    Simulator sim0(p, cfgFor(ValidationMode::Full)); // ensure single works
    (void)sim0;

    prog::Program p2;
    Addr lib_entry = 0;
    {
        prog::Assembler lib(prog::Program{}.nextModuleBase());
        // placeholder -- replaced below
        (void)lib;
    }
    // Build the two-module program properly.
    {
        prog::Program tmp;
        prog::Assembler a(prog::kDefaultCodeBase);
        // main: callr to lib entry via immediate address.
        // lib loads at nextModuleBase of a single-module program; compute
        // it after main is finalized, so assemble lib first at a fixed
        // base beyond main's expected end.
        const Addr lib_base = 0x40000;
        prog::Assembler lib(lib_base);
        lib.label("libfn");
        lib.addi(1, 1, 100);
        lib.ret();

        a.label("main");
        a.movi(1, 1);
        a.movi(2, static_cast<i32>(lib_base));
        const Addr site = a.callr(2);
        a.annotateIndirect(site, {}); // target is cross-module
        a.halt();

        auto main_mod = a.finalize("main", "main");
        // Cross-module target annotation uses the address directly.
        main_mod.indirectTargets[site] = {lib_base};
        tmp.addModule(std::move(main_mod));
        tmp.addModule(lib.finalize("libm", "libfn"));
        p2 = std::move(tmp);
        lib_entry = lib_base;
    }

    Simulator sim(p2, cfgFor(ValidationMode::Full));
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    EXPECT_EQ(sim.core().machine().reg(1), 101u);
    EXPECT_GE(sim.engine()->sag().lookups(), r.run.committedBranches);
    (void)lib_entry;
}

TEST(Engine, CommitStallsAccumulateOnScMisses)
{
    auto p = test::makeIndirectDispatchProgram();
    Simulator sim(p, cfgFor(ValidationMode::Full));
    const SimResult r = sim.run();
    EXPECT_GT(r.rev.commitStallCycles, 0u);
}

TEST(Engine, SmallerScMissesMore)
{
    // A program with many distinct blocks: a tiny SC thrashes.
    using namespace isa;
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 30); // outer iterations
    a.label("outer");
    for (int i = 0; i < 200; ++i) {
        a.addi(2, 2, 1);
        a.jmp("blk" + std::to_string(i));
        a.label("blk" + std::to_string(i));
    }
    a.addi(1, 1, -1);
    a.bne(1, 0, "outer");
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("many", "main"));

    SimConfig small = cfgFor(ValidationMode::Full);
    small.rev.sc.sizeBytes = 1024; // 64 entries
    SimConfig big = cfgFor(ValidationMode::Full);
    big.rev.sc.sizeBytes = 32 * 1024;

    Simulator s1(p, small), s2(p, big);
    const SimResult r1 = s1.run();
    const SimResult r2 = s2.run();
    EXPECT_GT(r1.rev.scMisses(), r2.rev.scMisses());
    EXPECT_GE(r1.run.cycles, r2.run.cycles);
}

TEST(Engine, CfiOnlyCheapestFullMostThorough)
{
    auto p = test::makeIndirectDispatchProgram();
    Simulator full(p, cfgFor(ValidationMode::Full));
    Simulator cfi(p, cfgFor(ValidationMode::CfiOnly));
    const SimResult rf = full.run();
    const SimResult rc = cfi.run();
    // CFI-only probes the SC only at computed sites/returns.
    EXPECT_LT(rc.rev.bbValidated, rf.rev.bbValidated);
    EXPECT_LE(rc.scFillAccesses, rf.scFillAccesses);
}

} // namespace
} // namespace rev::core
