/**
 * @file
 * Return-validation scheme tests: the paper's delayed-predecessor scheme
 * (Sec. V.A) vs a conventional shadow call stack, both as REV engine
 * options. Both must accept legitimate executions and catch return
 * hijacks; the shadow stack additionally models spill/refill costs on
 * deep recursion.
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "program/assembler.hpp"
#include "testutil.hpp"

namespace rev::core
{
namespace
{

SimConfig
cfgWith(validate::ReturnValidation rv)
{
    SimConfig cfg;
    cfg.rev.returnValidation = rv;
    return cfg;
}

class ReturnSchemes : public ::testing::TestWithParam<validate::ReturnValidation>
{
};

TEST_P(ReturnSchemes, LegitimateCallsAndReturnsPass)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, cfgWith(GetParam()));
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    EXPECT_EQ(sim.memory().read64(test::kResultAddr), 110u);
}

TEST_P(ReturnSchemes, IndirectDispatchPasses)
{
    auto p = test::makeIndirectDispatchProgram();
    Simulator sim(p, cfgWith(GetParam()));
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
}

TEST_P(ReturnSchemes, ReturnHijackDetected)
{
    using namespace isa;
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.call("f");
    a.halt();
    a.label("f");
    a.addi(1, 1, 1);
    const Addr ret_pc = a.ret();
    a.label("gadget");
    a.movi(9, 666);
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("t", "main"));

    Simulator sim(p, cfgWith(GetParam()));
    const Addr gadget = p.main().symbol("gadget");
    sim.core().setPreStepHook([&](u64, Addr pc) {
        if (pc == ret_pc) {
            const Addr sp = sim.core().machine().reg(isa::kRegSp);
            sim.memory().write64(sp, gadget);
        }
    });
    const SimResult r = sim.run();
    ASSERT_TRUE(r.run.violation.has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ReturnSchemes,
    ::testing::Values(validate::ReturnValidation::DelayedPredecessor,
                      validate::ReturnValidation::ShadowStack),
    [](const auto &info) {
        return info.param == validate::ReturnValidation::DelayedPredecessor
                   ? std::string("DelayedPredecessor")
                   : std::string("ShadowStack");
    });

/** Build a deep recursion: f(n) calls itself n times. */
prog::Program
makeDeepRecursion(int depth)
{
    using namespace isa;
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, depth);
    a.call("f");
    a.halt();
    a.label("f");
    a.addi(1, 1, -1);
    a.beq(1, 0, "base");
    a.call("f"); // recurse
    a.label("base");
    a.ret();
    prog::Program p;
    p.addModule(a.finalize("rec", "main"));
    return p;
}

TEST(ShadowStack, DeepRecursionSpillsAndRefills)
{
    auto p = makeDeepRecursion(300);
    SimConfig cfg = cfgWith(validate::ReturnValidation::ShadowStack);
    cfg.rev.shadowStackEntries = 32;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    EXPECT_GT(r.rev.shadowSpills, 0u);
    EXPECT_GT(r.rev.shadowRefills, 0u);
}

TEST(ShadowStack, DelayedSchemeHandlesRecursionWithoutSpills)
{
    auto p = makeDeepRecursion(300);
    Simulator sim(p, cfgWith(validate::ReturnValidation::DelayedPredecessor));
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    EXPECT_EQ(r.rev.shadowSpills, 0u);
}

TEST(ShadowStack, SpillsCostCycles)
{
    auto p = makeDeepRecursion(400);
    SimConfig tight = cfgWith(validate::ReturnValidation::ShadowStack);
    tight.rev.shadowStackEntries = 8;
    SimConfig roomy = cfgWith(validate::ReturnValidation::ShadowStack);
    roomy.rev.shadowStackEntries = 1024;

    Simulator s1(p, tight), s2(p, roomy);
    const SimResult r1 = s1.run();
    const SimResult r2 = s2.run();
    EXPECT_GT(r1.rev.shadowSpills, r2.rev.shadowSpills);
    EXPECT_GE(r1.run.cycles, r2.run.cycles);
}

} // namespace
} // namespace rev::core
