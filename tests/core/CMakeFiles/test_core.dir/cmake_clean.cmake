file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/chg_test.cpp.o"
  "CMakeFiles/test_core.dir/chg_test.cpp.o.d"
  "CMakeFiles/test_core.dir/costmodel_test.cpp.o"
  "CMakeFiles/test_core.dir/costmodel_test.cpp.o.d"
  "CMakeFiles/test_core.dir/dynlink_test.cpp.o"
  "CMakeFiles/test_core.dir/dynlink_test.cpp.o.d"
  "CMakeFiles/test_core.dir/edge_test.cpp.o"
  "CMakeFiles/test_core.dir/edge_test.cpp.o.d"
  "CMakeFiles/test_core.dir/engine_test.cpp.o"
  "CMakeFiles/test_core.dir/engine_test.cpp.o.d"
  "CMakeFiles/test_core.dir/replay_fallback_test.cpp.o"
  "CMakeFiles/test_core.dir/replay_fallback_test.cpp.o.d"
  "CMakeFiles/test_core.dir/returnval_test.cpp.o"
  "CMakeFiles/test_core.dir/returnval_test.cpp.o.d"
  "CMakeFiles/test_core.dir/sag_test.cpp.o"
  "CMakeFiles/test_core.dir/sag_test.cpp.o.d"
  "CMakeFiles/test_core.dir/sc_test.cpp.o"
  "CMakeFiles/test_core.dir/sc_test.cpp.o.d"
  "CMakeFiles/test_core.dir/shadow_test.cpp.o"
  "CMakeFiles/test_core.dir/shadow_test.cpp.o.d"
  "CMakeFiles/test_core.dir/simulator_test.cpp.o"
  "CMakeFiles/test_core.dir/simulator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/smc_test.cpp.o"
  "CMakeFiles/test_core.dir/smc_test.cpp.o.d"
  "CMakeFiles/test_core.dir/trace_test.cpp.o"
  "CMakeFiles/test_core.dir/trace_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
