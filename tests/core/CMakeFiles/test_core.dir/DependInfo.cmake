
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/chg_test.cpp" "tests/core/CMakeFiles/test_core.dir/chg_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/chg_test.cpp.o.d"
  "/root/repo/tests/core/costmodel_test.cpp" "tests/core/CMakeFiles/test_core.dir/costmodel_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/costmodel_test.cpp.o.d"
  "/root/repo/tests/core/dynlink_test.cpp" "tests/core/CMakeFiles/test_core.dir/dynlink_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/dynlink_test.cpp.o.d"
  "/root/repo/tests/core/edge_test.cpp" "tests/core/CMakeFiles/test_core.dir/edge_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/edge_test.cpp.o.d"
  "/root/repo/tests/core/engine_test.cpp" "tests/core/CMakeFiles/test_core.dir/engine_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/engine_test.cpp.o.d"
  "/root/repo/tests/core/replay_fallback_test.cpp" "tests/core/CMakeFiles/test_core.dir/replay_fallback_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/replay_fallback_test.cpp.o.d"
  "/root/repo/tests/core/returnval_test.cpp" "tests/core/CMakeFiles/test_core.dir/returnval_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/returnval_test.cpp.o.d"
  "/root/repo/tests/core/sag_test.cpp" "tests/core/CMakeFiles/test_core.dir/sag_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/sag_test.cpp.o.d"
  "/root/repo/tests/core/sc_test.cpp" "tests/core/CMakeFiles/test_core.dir/sc_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/sc_test.cpp.o.d"
  "/root/repo/tests/core/shadow_test.cpp" "tests/core/CMakeFiles/test_core.dir/shadow_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/shadow_test.cpp.o.d"
  "/root/repo/tests/core/simulator_test.cpp" "tests/core/CMakeFiles/test_core.dir/simulator_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/simulator_test.cpp.o.d"
  "/root/repo/tests/core/smc_test.cpp" "tests/core/CMakeFiles/test_core.dir/smc_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/smc_test.cpp.o.d"
  "/root/repo/tests/core/trace_test.cpp" "tests/core/CMakeFiles/test_core.dir/trace_test.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/rev_common.dir/DependInfo.cmake"
  "/root/repo/src/crypto/CMakeFiles/rev_crypto.dir/DependInfo.cmake"
  "/root/repo/src/isa/CMakeFiles/rev_isa.dir/DependInfo.cmake"
  "/root/repo/src/program/CMakeFiles/rev_program.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/rev_core.dir/DependInfo.cmake"
  "/root/repo/src/workloads/CMakeFiles/rev_workloads.dir/DependInfo.cmake"
  "/root/repo/src/cpu/CMakeFiles/rev_cpu.dir/DependInfo.cmake"
  "/root/repo/src/validate/CMakeFiles/rev_validate.dir/DependInfo.cmake"
  "/root/repo/src/sig/CMakeFiles/rev_sig.dir/DependInfo.cmake"
  "/root/repo/src/mem/CMakeFiles/rev_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
