/**
 * @file
 * CHG (crypto hash generator) tests.
 */

#include <gtest/gtest.h>

#include "validate/chg.hpp"
#include "sig/table.hpp"

namespace rev::validate
{
namespace
{

TEST(Chg, DigestMatchesReferenceComputation)
{
    SparseMemory mem;
    const u8 code[] = {0x10, 1, 2, 3, 0x02}; // add; ret
    mem.writeBytes(0x1000, code, sizeof(code));

    Chg chg(mem);
    const u32 d = chg.digest(0x1000, 0x1004, 0x1005);
    EXPECT_EQ(d, sig::bbHashBytes(code, sizeof(code), 0x1000, 0x1004, 5));
}

TEST(Chg, LatencyModel)
{
    SparseMemory mem;
    Chg chg(mem, {.latency = 16, .hashRounds = 5});
    EXPECT_EQ(chg.readyAt(100), 116u);
}

TEST(Chg, MemoizesUnchangedBlocks)
{
    SparseMemory mem;
    mem.write8(0x1000, 0x02);
    Chg chg(mem);
    chg.digest(0x1000, 0x1000, 0x1001);
    chg.digest(0x1000, 0x1000, 0x1001);
    EXPECT_EQ(chg.blocksHashed(), 1u);
}

TEST(Chg, InvalidateSeesModifiedCode)
{
    SparseMemory mem;
    mem.write8(0x1000, 0x02);
    Chg chg(mem);
    const u32 before = chg.digest(0x1000, 0x1000, 0x1001);

    mem.write8(0x1000, 0x01); // tamper
    chg.invalidate();
    const u32 after = chg.digest(0x1000, 0x1000, 0x1001);
    EXPECT_NE(before, after);
}

TEST(Chg, FlushCounted)
{
    SparseMemory mem;
    Chg chg(mem);
    chg.flush();
    chg.flush();
    EXPECT_EQ(chg.flushes(), 2u);
}

} // namespace
} // namespace rev::validate
