/**
 * @file
 * Trace replay must refuse to run — and silently fall back to direct
 * execution — whenever replaying could diverge from what the machine
 * would really do:
 *
 *  - self-modifying code: the recorded decode stream is stale after the
 *    program patches itself, so the recorder marks the trace
 *    non-replayable (DecodeCache page-version tracking);
 *  - mismatched run parameters (different instruction budget);
 *  - an attached PreStepHook (attack injectors mutate state mid-run),
 *    which cancels an already-attached replay before the first step.
 *
 * In every case the simulated results must equal plain direct execution.
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "program/trace.hpp"
#include "smc_programs.hpp"
#include "testutil.hpp"

namespace rev::core
{
namespace
{

prog::Trace
recordRun(const prog::Program &p, SimConfig cfg)
{
    prog::TraceRecorder rec;
    cfg.traceRecorder = &rec;
    Simulator sim(p, cfg);
    sim.run();
    return rec.take();
}

TEST(ReplayFallback, SmcTraceIsNotReplayable)
{
    const MoviPatch patch = findMoviPatch();
    ASSERT_EQ(patch.diffs, 1u);
    const auto p = makeSmcProgram(patch, /*trusted=*/true);

    SimConfig cfg;
    cfg.mode = sig::ValidationMode::Full;
    const prog::Trace t = recordRun(p, cfg);
    EXPECT_TRUE(t.complete);
    EXPECT_TRUE(t.smcDetected);
    EXPECT_FALSE(t.replayable());
}

TEST(ReplayFallback, SmcTraceFallsBackToDirectExecution)
{
    const MoviPatch patch = findMoviPatch();
    ASSERT_EQ(patch.diffs, 1u);
    const auto p = makeSmcProgram(patch, /*trusted=*/true);

    SimConfig cfg;
    cfg.mode = sig::ValidationMode::Full;
    const prog::Trace t = recordRun(p, cfg);

    cfg.replayTrace = &t;
    Simulator sim(p, cfg);
    EXPECT_FALSE(sim.replayActive()); // rejected at attach
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    // Both the original and the patched callee executed for real.
    EXPECT_EQ(sim.core().machine().reg(5), 333u);
}

TEST(ReplayFallback, ViolatingRunIsNotReplayable)
{
    const MoviPatch patch = findMoviPatch();
    ASSERT_EQ(patch.diffs, 1u);
    const auto p = makeSmcProgram(patch, /*trusted=*/false);

    SimConfig cfg;
    cfg.mode = sig::ValidationMode::Full;
    const prog::Trace t = recordRun(p, cfg);
    EXPECT_FALSE(t.replayable());
}

TEST(ReplayFallback, BudgetMismatchRejectsAttachment)
{
    SimConfig cfg;
    cfg.core.maxInstrs = 20'000;
    const auto p = test::makeIndirectDispatchProgram();
    const prog::Trace t = recordRun(p, cfg);
    ASSERT_TRUE(t.replayable());

    SimConfig other = cfg;
    other.core.maxInstrs = 10'000;
    other.replayTrace = &t;
    Simulator sim(p, other);
    EXPECT_FALSE(sim.replayActive());
    const SimResult r = sim.run();        // direct, and still correct
    EXPECT_LE(r.run.instrs, 10'000u);
}

TEST(ReplayFallback, PreStepHookCancelsReplayBeforeFirstStep)
{
    SimConfig cfg;
    cfg.core.maxInstrs = 20'000;
    const auto p = test::makeIndirectDispatchProgram();
    const prog::Trace t = recordRun(p, cfg);
    ASSERT_TRUE(t.replayable());

    // Reference result: plain direct execution.
    const SimResult direct = Simulator(p, cfg).run();

    SimConfig rcfg = cfg;
    rcfg.replayTrace = &t;
    Simulator sim(p, rcfg);
    EXPECT_TRUE(sim.replayActive());
    u64 hook_calls = 0;
    sim.core().setPreStepHook([&](u64, Addr) { ++hook_calls; });
    const SimResult r = sim.run();
    EXPECT_FALSE(sim.replayActive()); // canceled, ran direct
    EXPECT_GT(hook_calls, 0u);
    EXPECT_EQ(r.run.cycles, direct.run.cycles);
    EXPECT_EQ(r.run.instrs, direct.run.instrs);
}

} // namespace
} // namespace rev::core
