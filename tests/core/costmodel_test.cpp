/**
 * @file
 * Sec. VI area/power estimate tests: the default inputs must land on the
 * paper's published overheads.
 */

#include <gtest/gtest.h>

#include "core/costmodel.hpp"

namespace rev::core
{
namespace
{

TEST(CostModel, MatchesPaperHeadlineNumbers)
{
    const CostEstimate est = estimateCost(CostInputs{});
    // Paper: ~7.2% core power, ~8% core area, <5.5% chip power.
    EXPECT_NEAR(est.corePowerOverhead, 0.072, 0.008);
    EXPECT_NEAR(est.coreAreaOverhead, 0.080, 0.010);
    EXPECT_LT(est.chipPowerOverhead, 0.055);
    EXPECT_GT(est.chipPowerOverhead, 0.040);
}

TEST(CostModel, SharedCryptoReducesOverhead)
{
    CostInputs shared;
    shared.shareCryptoWithCore = true;
    const CostEstimate base = estimateCost(CostInputs{});
    const CostEstimate opt = estimateCost(shared);
    EXPECT_LT(opt.corePowerOverhead, base.corePowerOverhead);
    EXPECT_LT(opt.coreAreaOverhead, base.coreAreaOverhead);
}

TEST(CostModel, LargerScCostsMore)
{
    CostInputs big;
    big.scBytes = 64 * 1024;
    EXPECT_GT(estimateCost(big).coreAreaOverhead,
              estimateCost(CostInputs{}).coreAreaOverhead);
}

TEST(CostModel, ChipLevelBelowCoreLevel)
{
    const CostEstimate est = estimateCost(CostInputs{});
    EXPECT_LT(est.chipPowerOverhead, est.corePowerOverhead);
}

} // namespace
} // namespace rev::core
