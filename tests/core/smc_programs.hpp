/**
 * @file
 * Shared self-modifying-code test programs. Used by the SMC validation
 * tests (smc_test.cpp) and by the trace-replay fallback tests
 * (replay_fallback_test.cpp): a program that patches its own code is the
 * canonical case where a recorded trace must refuse to replay.
 */

#ifndef REV_TESTS_CORE_SMC_PROGRAMS_HPP
#define REV_TESTS_CORE_SMC_PROGRAMS_HPP

#include "program/program.hpp"
#include "testutil.hpp"

namespace rev::core
{

struct MoviPatch
{
    std::size_t offset; ///< image offset of the differing immediate byte
    u8 value;           ///< byte that turns `movi r3,111` into `movi r3,222`
    unsigned diffs;     ///< number of differing bytes (must be 1)
};

inline MoviPatch
findMoviPatch()
{
    prog::Assembler p1(prog::kDefaultCodeBase);
    p1.label("main");
    p1.movi(3, 111);
    p1.halt();
    prog::Assembler p2(prog::kDefaultCodeBase);
    p2.label("main");
    p2.movi(3, 222);
    p2.halt();
    prog::Program a1;
    a1.addModule(p1.finalize("t", "main"));
    prog::Program a2;
    a2.addModule(p2.finalize("t", "main"));
    const auto &i1 = a1.main().image;
    const auto &i2 = a2.main().image;
    MoviPatch patch{0, 0, 0};
    for (std::size_t i = 0; i < i1.size(); ++i) {
        if (i1[i] != i2[i]) {
            patch.offset = i;
            patch.value = i2[i];
            ++patch.diffs;
        }
    }
    return patch;
}

/**
 * Calls doit (movi r3,111; ret), patches the immediate to 222 through one
 * of the program's own stores, calls doit again, and accumulates
 * r5 = 111 + 222. When `trusted`, the patch and the re-execution are
 * bracketed by the REV disable/enable syscalls.
 */
inline prog::Program
makeSmcProgram(const MoviPatch &patch, bool trusted)
{
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.call("doit");
    a.add(5, 5, 3);
    a.la(1, "doit");
    a.movi(2, patch.value);
    if (trusted)
        a.syscall(1); // REV off
    a.sb(2, 1, static_cast<i32>(patch.offset));
    a.call("doit");
    a.add(5, 5, 3);
    if (trusted)
        a.syscall(2); // REV back on
    a.movi(4, 44);
    a.halt();
    a.label("doit");
    a.movi(3, 111);
    a.ret();
    prog::Program p;
    p.addModule(a.finalize("smc", "main"));
    return p;
}

} // namespace rev::core

#endif // REV_TESTS_CORE_SMC_PROGRAMS_HPP
