/**
 * @file
 * Page-shadowing tests (Sec. IV.A strict R5): the copy-on-write shadow
 * address space and the simulator-level transactional rollback.
 */

#include <gtest/gtest.h>

#include "core/shadow.hpp"
#include "core/simulator.hpp"
#include "testutil.hpp"

namespace rev::core
{
namespace
{

TEST(ShadowAddressSpace, ReadsSeeBaseUntilWritten)
{
    SparseMemory base;
    base.write64(0x1000, 42);
    ShadowAddressSpace shadow(base);
    EXPECT_EQ(shadow.read64(0x1000), 42u);
    EXPECT_EQ(shadow.shadowedPages(), 0u);
}

TEST(ShadowAddressSpace, WritesStayInShadow)
{
    SparseMemory base;
    base.write64(0x1000, 42);
    ShadowAddressSpace shadow(base);
    shadow.write64(0x1000, 99);
    EXPECT_EQ(shadow.read64(0x1000), 99u); // program sees its write
    EXPECT_EQ(base.read64(0x1000), 42u);   // original untouched
    EXPECT_EQ(shadow.shadowedPages(), 1u);
}

TEST(ShadowAddressSpace, CopyOnWritePreservesPageNeighbours)
{
    SparseMemory base;
    base.write64(0x1000, 1);
    base.write64(0x1008, 2);
    ShadowAddressSpace shadow(base);
    shadow.write64(0x1000, 7);
    // The untouched neighbour on the same page still reads its original
    // value through the shadow copy.
    EXPECT_EQ(shadow.read64(0x1008), 2u);
}

TEST(ShadowAddressSpace, CommitMapsShadowsIn)
{
    SparseMemory base;
    base.write64(0x1000, 1);
    ShadowAddressSpace shadow(base);
    shadow.write64(0x1000, 2);
    shadow.write64(0x5000, 3);
    shadow.commit();
    EXPECT_EQ(base.read64(0x1000), 2u);
    EXPECT_EQ(base.read64(0x5000), 3u);
    EXPECT_EQ(shadow.shadowedPages(), 0u);
    EXPECT_EQ(shadow.commits(), 1u);
}

TEST(ShadowAddressSpace, DiscardDropsEverything)
{
    SparseMemory base;
    base.write64(0x1000, 1);
    ShadowAddressSpace shadow(base);
    shadow.write64(0x1000, 2);
    shadow.discard();
    EXPECT_EQ(base.read64(0x1000), 1u);
    EXPECT_EQ(shadow.read64(0x1000), 1u); // falls back to base again
    EXPECT_EQ(shadow.discards(), 1u);
}

TEST(ShadowAddressSpace, DmaBlockedFromShadowedPages)
{
    SparseMemory base;
    ShadowAddressSpace shadow(base);
    EXPECT_TRUE(shadow.dmaAllowed(0x1000));
    shadow.write8(0x1000, 1);
    EXPECT_FALSE(shadow.dmaAllowed(0x1000)); // Sec. IV.A: no DMA out
    EXPECT_TRUE(shadow.dmaAllowed(0x2000));  // other pages fine
    shadow.commit();
    EXPECT_TRUE(shadow.dmaAllowed(0x1000));  // authenticated: visible
}

TEST(ShadowAddressSpace, EpochsAreIndependent)
{
    SparseMemory base;
    ShadowAddressSpace shadow(base);
    shadow.write64(0x1000, 1);
    shadow.commit();
    shadow.write64(0x1000, 2);
    shadow.discard();
    EXPECT_EQ(base.read64(0x1000), 1u); // first epoch kept, second dropped
}

TEST(ShadowAddressSpace, FuzzAgainstCloneReference)
{
    // Random op mix vs the trivially correct model (clone + direct writes
    // with an undo snapshot at every epoch boundary).
    Rng rng(2024);
    SparseMemory base;
    for (int i = 0; i < 64; ++i)
        base.write64(0x1000 + rng.below(8192), rng.next());

    ShadowAddressSpace dut(base);
    SparseMemory ref = base.clone();     // committed state
    SparseMemory epoch = ref.clone();    // current epoch's view

    for (int op = 0; op < 30'000; ++op) {
        const Addr a = 0x1000 + rng.below(9000);
        switch (rng.below(8)) {
          case 0: { // write
            const u64 v = rng.next();
            dut.write64(a, v);
            epoch.write64(a, v);
            break;
          }
          case 1: // commit
            dut.commit();
            ref = epoch.clone();
            break;
          case 2: // discard
            dut.discard();
            epoch = ref.clone();
            break;
          default: // read
            ASSERT_EQ(dut.read64(a), epoch.read64(a)) << "op " << op;
            break;
        }
    }
    dut.commit();
    for (int i = 0; i < 2000; ++i) {
        const Addr a = 0x1000 + rng.below(9000);
        ASSERT_EQ(base.read64(a), epoch.read64(a));
    }
}

// ---------------------------------------------------------------------------
// Simulator-level transactional rollback.
// ---------------------------------------------------------------------------

TEST(PageShadowing, CleanRunKeepsResults)
{
    auto p = test::makeLoopCallProgram();
    SimConfig cfg;
    cfg.pageShadowing = true;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    EXPECT_FALSE(r.memoryRolledBack);
    EXPECT_EQ(sim.memory().read64(test::kResultAddr), 110u);
}

TEST(PageShadowing, ViolationRollsBackAllMemory)
{
    // The victim writes a benign marker in an early (valid) block, then a
    // later block is compromised. Block-granular containment keeps the
    // early marker; whole-run shadowing rolls even it back.
    using namespace isa;
    auto build = [] {
        prog::Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(5, static_cast<i32>(prog::kHeapBase));
        a.movi(2, 7);
        a.st(2, 5, 0); // benign marker, validated and committed
        a.jmp("next");
        a.label("next");
        a.call("victim");
        a.halt();
        a.label("victim");
        a.addi(1, 1, 1);
        a.ret();
        prog::Program p;
        p.addModule(a.finalize("t", "main"));
        return p;
    };

    // Baseline: block-granular containment (default REV).
    {
        auto p = build();
        SimConfig cfg;
        Simulator sim(p, cfg);
        const Addr victim = p.main().symbol("victim");
        sim.core().setPreStepHook([&](u64 idx, Addr) {
            if (idx == 5) {
                sim.memory().write8(victim, 0x11);
                sim.engine()->invalidateCodeCache();
            }
        });
        const SimResult r = sim.run();
        ASSERT_TRUE(r.run.violation.has_value());
        EXPECT_EQ(sim.memory().read64(prog::kHeapBase), 7u); // marker kept
    }

    // Strict R5: the whole execution is a transaction.
    {
        auto p = build();
        SimConfig cfg;
        cfg.pageShadowing = true;
        Simulator sim(p, cfg);
        const Addr victim = p.main().symbol("victim");
        sim.core().setPreStepHook([&](u64 idx, Addr) {
            if (idx == 5) {
                sim.memory().write8(victim, 0x11);
                sim.engine()->invalidateCodeCache();
            }
        });
        const SimResult r = sim.run();
        ASSERT_TRUE(r.run.violation.has_value());
        EXPECT_TRUE(r.memoryRolledBack);
        EXPECT_EQ(sim.memory().read64(prog::kHeapBase), 0u); // rolled back
    }
}

} // namespace
} // namespace rev::core
