/**
 * @file
 * Dynamic code support tests (Sec. IV.E):
 *  - trusted code generation with table regeneration before use,
 *  - the REV disable/enable syscalls around untrusted self-modification,
 *  - external-interrupt handling at validated block boundaries.
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "program/assembler.hpp"
#include "testutil.hpp"

namespace rev::core
{
namespace
{

/**
 * Main spins on a function-pointer slot in data: initially it points at a
 * stub returning 0; the "JIT" later installs a generated module and
 * repoints the slot. The callr site's annotations are updated by the
 * trusted toolchain before the tables are rebuilt.
 */
struct JitScenario
{
    prog::Program program;
    Addr site = 0;
    Addr slotAddr = 0;
};

JitScenario
buildJitMain()
{
    using namespace isa;
    JitScenario sc;
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(10, 6); // iterations
    a.label("loop");
    a.la(4, "slot");
    a.ld(4, 4, 0);
    sc.site = a.callr(4);
    a.annotateIndirect(sc.site, {"stub"});
    a.addi(10, 10, -1);
    a.bne(10, 0, "loop");
    a.halt();

    a.label("stub");
    a.movi(1, 0);
    a.ret();

    a.beginData();
    a.align(8);
    a.label("slot");
    a.word64Label("stub");

    sc.program.addModule(a.finalize("main", "main"));
    sc.slotAddr = sc.program.main().symbol("slot");
    return sc;
}

/** The generated ("JIT output") module: returns 123 in r1. */
prog::Module
buildJitModule(Addr base)
{
    prog::Assembler a(base);
    a.label("jitfn");
    a.movi(1, 123);
    a.ret();
    return a.finalize("jit", "jitfn");
}

TEST(DynamicCode, TrustedRegenerationValidatesNewCode)
{
    JitScenario sc = buildJitMain();
    const Addr jit_base = 0x80000;

    SimConfig cfg;
    Simulator sim(sc.program, cfg);

    bool installed = false;
    sim.core().setPreStepHook([&](u64 idx, Addr) {
        if (idx == 30 && !installed) {
            installed = true;
            // --- the trusted OS/JIT path (Sec. IV.E, option 2) ---------
            prog::Module jit = buildJitModule(jit_base);
            const Addr jitfn = jit.symbol("jitfn");
            sc.program.addModule(std::move(jit));
            // Extend the dispatch site's legitimate targets.
            sc.program.modules()[0].indirectTargets[sc.site].push_back(
                jitfn);
            // Regenerate tables before the code may run, then patch the
            // function-pointer slot the program reads.
            sim.reloadProgram();
            sim.memory().write64(sc.slotAddr, jitfn);
        }
    });

    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value())
        << r.run.violation->reason;
    EXPECT_TRUE(installed);
    // The generated function really ran, validated.
    EXPECT_EQ(sim.core().machine().reg(1), 123u);
    EXPECT_EQ(sim.sigStore()->moduleSigs().size(), 2u);
}

TEST(DynamicCode, UnregisteredJitCodeIsRejected)
{
    JitScenario sc = buildJitMain();
    const Addr jit_base = 0x80000;

    SimConfig cfg;
    Simulator sim(sc.program, cfg);
    bool installed = false;
    sim.core().setPreStepHook([&](u64 idx, Addr) {
        if (idx == 30 && !installed) {
            installed = true;
            // Skip the trusted path: write the code and patch the slot
            // without regenerating any signatures.
            prog::Module jit = buildJitModule(jit_base);
            const Addr jitfn = jit.symbol("jitfn");
            sim.memory().writeBytes(jit.base, jit.image);
            sim.memory().write64(sc.slotAddr, jitfn);
        }
    });

    const SimResult r = sim.run();
    ASSERT_TRUE(r.run.violation.has_value());
}

TEST(DynamicCode, SyscallWindowAllowsSelfModification)
{
    // Trusted self-modifying code brackets itself with the REV
    // disable/enable system calls (Sec. IV.E option 1 / Sec. VII).
    using namespace isa;
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.syscall(1); // REV off
    // This block will be patched at run time; with REV off it commits
    // unvalidated.
    a.label("patchme");
    a.movi(1, 1);
    a.jmp("cont");
    a.label("cont");
    a.syscall(2); // REV back on
    a.movi(2, 2);
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("selfmod", "main"));

    SimConfig cfg;
    Simulator sim(p, cfg);
    const Addr patch = p.main().symbol("patchme");
    sim.core().setPreStepHook([&](u64 idx, Addr) {
        if (idx == 1) {
            // Patch movi r1,1 -> movi r1,9 while REV is disabled.
            sim.memory().write8(patch + 2, 9);
            sim.engine()->invalidateCodeCache();
        }
    });
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    EXPECT_EQ(sim.core().machine().reg(1), 9u); // patched code ran
    EXPECT_EQ(sim.core().machine().reg(2), 2u); // validated epilogue ran
}

TEST(Interrupts, TakenAtValidatedBoundaries)
{
    auto p = test::makeLoopCallProgram();
    SimConfig cfg;
    cfg.core.interruptInterval = 50;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    EXPECT_GT(r.run.interrupts, 2u);
    // Result still correct despite the flushes.
    EXPECT_EQ(sim.memory().read64(test::kResultAddr), 110u);
}

TEST(Interrupts, CostCycles)
{
    auto p = test::makeLoopCallProgram();
    SimConfig quiet;
    SimConfig noisy;
    noisy.core.interruptInterval = 40;
    Simulator s1(p, quiet), s2(p, noisy);
    const SimResult r1 = s1.run();
    const SimResult r2 = s2.run();
    EXPECT_EQ(r1.run.interrupts, 0u);
    EXPECT_GT(r2.run.cycles, r1.run.cycles);
}

} // namespace
} // namespace rev::core
