/**
 * @file
 * SAG (cross-module call support, Sec. IV.B) tests.
 */

#include <gtest/gtest.h>

#include "validate/sag.hpp"

namespace rev::validate
{
namespace
{

TEST(Sag, MatchWithinLimits)
{
    Sag sag(4);
    sag.install(0x10000, 0x12000, 0x6000000);
    const SagEntry *e = sag.match(0x11000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->tableBase, 0x6000000u);
}

TEST(Sag, BoundariesAreHalfOpen)
{
    Sag sag(4);
    sag.install(0x10000, 0x12000, 1);
    EXPECT_NE(sag.match(0x10000), nullptr);
    EXPECT_NE(sag.match(0x11fff), nullptr);
    EXPECT_EQ(sag.match(0x12000), nullptr);
    EXPECT_EQ(sag.match(0xffff), nullptr);
}

TEST(Sag, MultipleModulesSelectCorrectTable)
{
    Sag sag(4);
    sag.install(0x10000, 0x12000, 100);
    sag.install(0x20000, 0x23000, 200);
    EXPECT_EQ(sag.match(0x11abc)->tableBase, 100u);
    EXPECT_EQ(sag.match(0x22abc)->tableBase, 200u);
}

TEST(Sag, MissCountsException)
{
    Sag sag(2);
    sag.match(0x5000);
    EXPECT_EQ(sag.misses(), 1u);
    EXPECT_EQ(sag.lookups(), 1u);
}

TEST(Sag, RoundRobinReplacementWhenFull)
{
    Sag sag(2);
    sag.install(0x10000, 0x11000, 1);
    sag.install(0x20000, 0x21000, 2);
    sag.install(0x30000, 0x31000, 3); // evicts the first
    EXPECT_EQ(sag.match(0x10500), nullptr);
    EXPECT_NE(sag.match(0x20500), nullptr);
    EXPECT_NE(sag.match(0x30500), nullptr);
}

TEST(Sag, ResetInvalidatesAll)
{
    Sag sag(2);
    sag.install(0x10000, 0x11000, 1);
    sag.reset();
    EXPECT_EQ(sag.match(0x10500), nullptr);
}

} // namespace
} // namespace rev::validate
