/**
 * @file
 * Simulator facade tests: stats dumping, wrong-path modeling, resumable
 * runs (scheduling quanta), and REV thread-state save/restore across
 * context switches.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulator.hpp"
#include "testutil.hpp"
#include "workloads/generator.hpp"

namespace rev::core
{
namespace
{

TEST(SimulatorFacade, DumpStatsContainsAllSubsystems)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, SimConfig{});
    sim.run();
    std::ostringstream os;
    sim.dumpStats(os);
    const std::string out = os.str();
    for (const char *key :
         {"sim.l1i.hits", "sim.l1d.misses", "sim.l2.hits",
          "sim.dram.row_misses", "sim.itlb.hits", "sim.bp.lookups",
          "sim.sc.probes", "sim.sag.lookups", "sim.chg.blocks_hashed",
          "sim.rev.bb_validated", "sim.rev.commit_stall_cycles"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(SimulatorFacade, WrongPathFetchesCounted)
{
    workloads::WorkloadProfile prof = workloads::specProfile("sjeng");
    prof.numFunctions = 300;
    const prog::Program program = workloads::generateWorkload(prof);

    SimConfig on;
    on.core.maxInstrs = 50'000;
    SimConfig off = on;
    off.core.modelWrongPath = false;

    Simulator s1(program, on), s2(program, off);
    const SimResult r1 = s1.run();
    const SimResult r2 = s2.run();
    EXPECT_GT(r1.run.wrongPathFetches, 0u);
    EXPECT_EQ(r2.run.wrongPathFetches, 0u);
    // Wrong-path streaming perturbs the I-side (it can pollute *or*
    // prefetch); the two configurations must diverge measurably but stay
    // in the same regime.
    EXPECT_NE(r1.run.cycles, r2.run.cycles);
    EXPECT_NEAR(r1.run.ipc(), r2.run.ipc(), r2.run.ipc() * 0.2);
}

TEST(SimulatorFacade, ResumableRunsAccumulateCorrectResult)
{
    auto p = test::makeLoopCallProgram();
    SimConfig cfg;
    cfg.core.maxInstrs = 8; // several quanta to finish
    Simulator sim(p, cfg);

    u64 total = 0;
    int quanta = 0;
    while (quanta < 100) {
        const SimResult r = sim.run();
        total += r.run.instrs;
        ++quanta;
        ASSERT_FALSE(r.run.violation.has_value());
        if (r.run.halted)
            break;
    }
    EXPECT_LT(quanta, 100);
    EXPECT_EQ(sim.memory().read64(test::kResultAddr), 110u);
}

TEST(SimulatorFacade, ThreadStateRoundTrip)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, SimConfig{});
    validate::RevValidator::ThreadState st = sim.engine()->saveThreadState();
    EXPECT_FALSE(st.pendingReturn.has_value());
    st.pendingReturn = 0x1234;
    st.shadowStack = {1, 2, 3};
    sim.engine()->restoreThreadState(st);
    const auto back = sim.engine()->saveThreadState();
    EXPECT_EQ(back.pendingReturn, st.pendingReturn);
    EXPECT_EQ(back.shadowStack, st.shadowStack);
}

TEST(SimulatorFacade, ContextSwitchAcrossRetBoundaryNeedsThreadState)
{
    // Regression for the per-thread return latch: slicing a workload into
    // quanta (which can end right after a RET) must not leak the latch
    // into the next thread's first block.
    workloads::WorkloadProfile prof = workloads::specProfile("bzip2");
    prof.numFunctions = 200;
    const prog::Program program = workloads::generateWorkload(prof);

    SimConfig cfg;
    cfg.core.maxInstrs = 3'000;
    Simulator sim(program, cfg);
    auto &machine = sim.core().machine();

    struct Ctx
    {
        std::array<u64, isa::kNumArchRegs> regs{};
        Addr pc;
        validate::RevValidator::ThreadState rev;
    };
    Ctx a{}, b{};
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        a.regs[r] = machine.reg(r);
    a.pc = machine.pc();
    b = a;
    b.regs[21] ^= 0x12345;
    b.regs[isa::kRegSp] -= 0x80000;

    Ctx *cur = &a, *other = &b;
    for (int q = 0; q < 10; ++q) {
        for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
            machine.setReg(r, cur->regs[r]);
        machine.setPc(cur->pc);
        sim.engine()->restoreThreadState(cur->rev);

        const SimResult res = sim.run();
        ASSERT_FALSE(res.run.violation.has_value())
            << "quantum " << q << ": " << res.run.violation->reason;

        for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
            cur->regs[r] = machine.reg(r);
        cur->pc = machine.pc();
        cur->rev = sim.engine()->saveThreadState();
        std::swap(cur, other);
    }
}

TEST(SimulatorFacade, ResetStatsKeepsWarmState)
{
    workloads::WorkloadProfile prof = workloads::specProfile("bzip2");
    prof.numFunctions = 200;
    const prog::Program program = workloads::generateWorkload(prof);

    SimConfig cfg;
    cfg.core.maxInstrs = 30'000;
    Simulator sim(program, cfg);
    const SimResult warm = sim.run();
    ASSERT_GT(warm.rev.scMisses(), 0u);

    sim.resetStats();
    const SimResult measured = sim.run();
    // Counters restarted...
    EXPECT_LT(measured.rev.scMisses(), warm.rev.scMisses());
    // ...but the structures stayed warm: the measured quantum runs faster
    // than the cold one (same instruction count, fewer cycles).
    EXPECT_LT(measured.run.cycles, warm.run.cycles);
}

TEST(SimulatorFacade, QuantumCyclesAreDeltas)
{
    // Resumed runs must report per-quantum cycles on a continuous
    // timebase (regression for the restarted-clock bug).
    workloads::WorkloadProfile prof = workloads::specProfile("soplex");
    prof.numFunctions = 150;
    const prog::Program program = workloads::generateWorkload(prof);

    SimConfig cfg;
    cfg.core.maxInstrs = 10'000;
    Simulator sim(program, cfg);
    std::vector<double> ipcs;
    for (int q = 0; q < 6; ++q) {
        const SimResult r = sim.run();
        ASSERT_FALSE(r.run.violation.has_value());
        ipcs.push_back(r.run.ipc());
    }
    // Steady-state quanta of a loopy benchmark have stable IPC: the last
    // quanta must not be monotonically collapsing (the old bug showed
    // 0.55 -> 0.27 -> 0.21 -> ...).
    EXPECT_GT(ipcs.back(), ipcs.front() * 0.7);
}

TEST(SimulatorFacade, ReloadProgramIsIdempotentOnCleanState)
{
    auto p = test::makeLoopCallProgram();
    Simulator sim(p, SimConfig{});
    sim.reloadProgram(); // no changes: must still validate cleanly
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
}

} // namespace
} // namespace rev::core
