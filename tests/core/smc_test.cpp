/**
 * @file
 * Self-modifying code vs. the validation pipeline. The simulator's decode
 * cache and CHG memo are invalidated by page versions, never manually, so
 * an in-program code patch must (a) raise a violation when REV is active,
 * (b) pass cleanly inside a syscall-bracketed trusted window (Sec. VII),
 * and (c) simply refetch the new bytes when REV is absent.
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "smc_programs.hpp"
#include "testutil.hpp"

namespace rev::core
{
namespace
{

TEST(Smc, UnauthorizedPatchRaisesViolation)
{
    const MoviPatch patch = findMoviPatch();
    ASSERT_EQ(patch.diffs, 1u);
    auto p = makeSmcProgram(patch, /*trusted=*/false);
    SimConfig cfg;
    cfg.mode = sig::ValidationMode::Full;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    // The patched doit block re-hashes to a digest the signed table does
    // not contain; even though the signature cache and the CHG memo hold
    // entries from the first (legitimate) execution.
    EXPECT_TRUE(r.run.violation.has_value());
    EXPECT_FALSE(r.run.halted);
    EXPECT_GE(r.rev.violations, 1u);
}

TEST(Smc, SyscallWindowPermitsPatch)
{
    const MoviPatch patch = findMoviPatch();
    ASSERT_EQ(patch.diffs, 1u);
    auto p = makeSmcProgram(patch, /*trusted=*/true);
    SimConfig cfg;
    cfg.mode = sig::ValidationMode::Full;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    // Both decodes took effect: 111 from the original bytes, 222 from the
    // patched bytes, with no manual code-cache invalidation.
    EXPECT_EQ(sim.core().machine().reg(5), 333u);
    EXPECT_EQ(sim.core().machine().reg(4), 44u); // validated epilogue ran
}

TEST(Smc, BaseConfigRefetchesPatchedCode)
{
    const MoviPatch patch = findMoviPatch();
    ASSERT_EQ(patch.diffs, 1u);
    auto p = makeSmcProgram(patch, /*trusted=*/false);
    SimConfig cfg;
    cfg.withRev = false;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_EQ(sim.core().machine().reg(5), 333u);
}

} // namespace
} // namespace rev::core
