/**
 * @file
 * Self-modifying code vs. the validation pipeline. The simulator's decode
 * cache and CHG memo are invalidated by page versions, never manually, so
 * an in-program code patch must (a) raise a violation when REV is active,
 * (b) pass cleanly inside a syscall-bracketed trusted window (Sec. VII),
 * and (c) simply refetch the new bytes when REV is absent.
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "testutil.hpp"

namespace rev::core
{
namespace
{

struct MoviPatch
{
    std::size_t offset; ///< image offset of the differing immediate byte
    u8 value;           ///< byte that turns `movi r3,111` into `movi r3,222`
    unsigned diffs;     ///< number of differing bytes (must be 1)
};

MoviPatch findMoviPatch()
{
    prog::Assembler p1(prog::kDefaultCodeBase);
    p1.label("main");
    p1.movi(3, 111);
    p1.halt();
    prog::Assembler p2(prog::kDefaultCodeBase);
    p2.label("main");
    p2.movi(3, 222);
    p2.halt();
    prog::Program a1;
    a1.addModule(p1.finalize("t", "main"));
    prog::Program a2;
    a2.addModule(p2.finalize("t", "main"));
    const auto &i1 = a1.main().image;
    const auto &i2 = a2.main().image;
    MoviPatch patch{0, 0, 0};
    for (std::size_t i = 0; i < i1.size(); ++i) {
        if (i1[i] != i2[i]) {
            patch.offset = i;
            patch.value = i2[i];
            ++patch.diffs;
        }
    }
    return patch;
}

/**
 * Calls doit (movi r3,111; ret), patches the immediate to 222 through one
 * of the program's own stores, calls doit again, and accumulates
 * r5 = 111 + 222. When `trusted`, the patch and the re-execution are
 * bracketed by the REV disable/enable syscalls.
 */
prog::Program makeSmcProgram(const MoviPatch &patch, bool trusted)
{
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.call("doit");
    a.add(5, 5, 3);
    a.la(1, "doit");
    a.movi(2, patch.value);
    if (trusted)
        a.syscall(1); // REV off
    a.sb(2, 1, static_cast<i32>(patch.offset));
    a.call("doit");
    a.add(5, 5, 3);
    if (trusted)
        a.syscall(2); // REV back on
    a.movi(4, 44);
    a.halt();
    a.label("doit");
    a.movi(3, 111);
    a.ret();
    prog::Program p;
    p.addModule(a.finalize("smc", "main"));
    return p;
}

TEST(Smc, UnauthorizedPatchRaisesViolation)
{
    const MoviPatch patch = findMoviPatch();
    ASSERT_EQ(patch.diffs, 1u);
    auto p = makeSmcProgram(patch, /*trusted=*/false);
    SimConfig cfg;
    cfg.mode = sig::ValidationMode::Full;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    // The patched doit block re-hashes to a digest the signed table does
    // not contain; even though the signature cache and the CHG memo hold
    // entries from the first (legitimate) execution.
    EXPECT_TRUE(r.run.violation.has_value());
    EXPECT_FALSE(r.run.halted);
    EXPECT_GE(r.rev.violations, 1u);
}

TEST(Smc, SyscallWindowPermitsPatch)
{
    const MoviPatch patch = findMoviPatch();
    ASSERT_EQ(patch.diffs, 1u);
    auto p = makeSmcProgram(patch, /*trusted=*/true);
    SimConfig cfg;
    cfg.mode = sig::ValidationMode::Full;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    // Both decodes took effect: 111 from the original bytes, 222 from the
    // patched bytes, with no manual code-cache invalidation.
    EXPECT_EQ(sim.core().machine().reg(5), 333u);
    EXPECT_EQ(sim.core().machine().reg(4), 44u); // validated epilogue ran
}

TEST(Smc, BaseConfigRefetchesPatchedCode)
{
    const MoviPatch patch = findMoviPatch();
    ASSERT_EQ(patch.diffs, 1u);
    auto p = makeSmcProgram(patch, /*trusted=*/false);
    SimConfig cfg;
    cfg.withRev = false;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_EQ(sim.core().machine().reg(5), 333u);
}

} // namespace
} // namespace rev::core
