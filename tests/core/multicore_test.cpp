/**
 * @file
 * Multicore Simulator tests: N cores over a shared L2/DRAM with
 * per-core validators.
 *
 * The contract under test, in order of importance:
 *   1. N=1 is bit-identical to the historical single-core machine —
 *      same results, same stats rows in the same order — for every
 *      backend and validation mode (the golden pins in tests/bench
 *      guard the same property against the quick-sweep snapshot).
 *   2. N-core runs are deterministic: the scheduler interleaving is a
 *      pure function of per-core committed counts, so re-running a
 *      config reproduces every aggregate and per-core number.
 *   3. Trace replay and snapshot forking compose with N>1.
 *   4. Contention is real and visible: adding cores never speeds up a
 *      core, and the cross-core wait counters attribute the queueing.
 */

#include <gtest/gtest.h>

#include <optional>

#include "core/snapshot.hpp"
#include "program/trace.hpp"
#include "workloads/generator.hpp"
#include "workloads/scheduler.hpp"

namespace rev::core
{
namespace
{

constexpr u64 kBudget = 30'000;

const prog::Program &
schedProgram()
{
    static const prog::Program p =
        workloads::buildProgram(workloads::schedStormProfile());
    return p;
}

const prog::Program &
mixProgram()
{
    static const prog::Program p = [] {
        workloads::WorkloadProfile prof = workloads::specProfile("bzip2");
        prof.numFunctions = 200;
        return workloads::generateWorkload(prof);
    }();
    return p;
}

SimConfig
schedConfig(unsigned cores)
{
    SimConfig cfg;
    cfg.numCores = cores;
    cfg.coreIdAddr = workloads::kSchedCoreIdWord;
    cfg.core.maxInstrs = kBudget;
    return cfg;
}

struct Observed
{
    SimResult res;
    stats::StatSet stats;
};

Observed
observe(const prog::Program &p, const SimConfig &cfg)
{
    Simulator sim(p, cfg);
    Observed o;
    o.res = sim.run();
    o.stats = sim.stats();
    return o;
}

void
expectSameRows(const stats::StatSet &a, const stats::StatSet &b)
{
    ASSERT_EQ(a.rows().size(), b.rows().size());
    for (std::size_t i = 0; i < a.rows().size(); ++i) {
        EXPECT_EQ(a.rows()[i].first, b.rows()[i].first) << "row " << i;
        EXPECT_EQ(a.rows()[i].second, b.rows()[i].second)
            << a.rows()[i].first;
    }
}

void
expectSameRun(const cpu::RunResult &a, const cpu::RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.committedBranches, b.committedBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.halted, b.halted);
    EXPECT_EQ(a.violation.has_value(), b.violation.has_value());
}

// ---------------------------------------------------------------------------
// 1. N=1 bit-identity
// ---------------------------------------------------------------------------

TEST(Multicore, N1IsBitIdenticalToTheSingleCoreMachine)
{
    for (const validate::Backend backend :
         {validate::Backend::Rev, validate::Backend::LoFat,
          validate::Backend::Null}) {
        SimConfig legacy; // the pre-multicore configuration, untouched
        legacy.backend = backend;
        legacy.core.maxInstrs = kBudget;

        SimConfig n1 = legacy;
        n1.numCores = 1;
        n1.schedQuantumInstrs = 7; // ignored at N=1 by contract

        const Observed a = observe(mixProgram(), legacy);
        const Observed b = observe(mixProgram(), n1);
        expectSameRun(a.res.run, b.res.run);
        expectSameRows(a.stats, b.stats);
    }
}

TEST(Multicore, PerCoreStatRowsAppearOnlyAboveOneCore)
{
    const Observed one = observe(schedProgram(), schedConfig(1));
    for (const auto &[name, value] : one.stats.rows())
        EXPECT_EQ(name.find(".c0."), std::string::npos) << name;

    const Observed two = observe(schedProgram(), schedConfig(2));
    bool saw_port = false, saw_xcore = false;
    for (const auto &[name, value] : two.stats.rows()) {
        saw_port |= name.find("c1.req.") != std::string::npos;
        saw_xcore |= name.find("c1.xcore.l2_wait_cycles") !=
                     std::string::npos;
    }
    EXPECT_TRUE(saw_port);
    EXPECT_TRUE(saw_xcore);
}

// ---------------------------------------------------------------------------
// 2. N-core determinism
// ---------------------------------------------------------------------------

TEST(Multicore, FourCoreRunsAreDeterministic)
{
    const Observed a = observe(schedProgram(), schedConfig(4));
    const Observed b = observe(schedProgram(), schedConfig(4));
    ASSERT_EQ(a.res.perCore.size(), 4u);
    expectSameRun(a.res.run, b.res.run);
    for (std::size_t c = 0; c < 4; ++c)
        expectSameRun(a.res.perCore[c], b.res.perCore[c]);
    expectSameRows(a.stats, b.stats);
}

TEST(Multicore, HartidRotatesTheSchedulePerCore)
{
    // With the hartid word published, each core executes a different
    // thread interleaving of the same scheduler program...
    const Observed rotated = observe(schedProgram(), schedConfig(2));
    ASSERT_EQ(rotated.res.perCore.size(), 2u);
    EXPECT_NE(rotated.res.perCore[0].committedBranches,
              rotated.res.perCore[1].committedBranches);

    // ...and with it unset every core runs the identical stream.
    SimConfig plain = schedConfig(2);
    plain.coreIdAddr = 0;
    const Observed lockstep = observe(schedProgram(), plain);
    EXPECT_EQ(lockstep.res.perCore[0].instrs,
              lockstep.res.perCore[1].instrs);
    EXPECT_EQ(lockstep.res.perCore[0].committedBranches,
              lockstep.res.perCore[1].committedBranches);
}

// ---------------------------------------------------------------------------
// 3. Replay and snapshots compose with N>1
// ---------------------------------------------------------------------------

TEST(Multicore, TraceReplayMatchesDirectExecutionAtTwoCores)
{
    // coreIdAddr unset: all cores run the recorded stream, so the one
    // trace (recorded from core 0) attaches everywhere.
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.core.maxInstrs = kBudget;

    prog::TraceRecorder recorder;
    SimConfig rec = cfg;
    rec.traceRecorder = &recorder;
    const Observed direct = observe(mixProgram(), rec);
    const prog::Trace trace = recorder.take();
    ASSERT_TRUE(trace.replayable());

    SimConfig rep = cfg;
    rep.replayTrace = &trace;
    Simulator sim(mixProgram(), rep);
    EXPECT_TRUE(sim.replayActive());
    Observed replayed;
    replayed.res = sim.run();
    replayed.stats = sim.stats();

    expectSameRun(direct.res.run, replayed.res.run);
    for (std::size_t c = 0; c < 2; ++c)
        expectSameRun(direct.res.perCore[c], replayed.res.perCore[c]);
    expectSameRows(direct.stats, replayed.stats);
}

TEST(Multicore, SnapshotForkRoundTripsTwoCores)
{
    const SimConfig cfg = schedConfig(2);
    const Observed cold = observe(schedProgram(), cfg);

    Simulator source(schedProgram(), cfg);
    std::optional<Snapshot> snap = source.snapshotAt(kBudget / 3);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->extra.size(), 1u); // core 1 rides in the extra slot

    auto fork = Simulator::forkFrom(*snap);
    Observed forked;
    forked.res = fork->run();
    forked.stats = fork->stats();

    expectSameRun(cold.res.run, forked.res.run);
    for (std::size_t c = 0; c < 2; ++c)
        expectSameRun(cold.res.perCore[c], forked.res.perCore[c]);
    expectSameRows(cold.stats, forked.stats);
}

// ---------------------------------------------------------------------------
// 4. Contention is real
// ---------------------------------------------------------------------------

TEST(Multicore, SharedL2ContentionNeverSpeedsACoreUp)
{
    const Observed one = observe(schedProgram(), schedConfig(1));
    const Observed two = observe(schedProgram(), schedConfig(2));
    const Observed four = observe(schedProgram(), schedConfig(4));

    // Same per-core budget everywhere; the aggregate (slowest-core)
    // cycle count may only grow as bidders join the shared L2 port.
    EXPECT_GE(two.res.run.cycles, one.res.run.cycles);
    EXPECT_GE(four.res.run.cycles, two.res.run.cycles);

    // The queueing shows up attributed to cross-core interference, and
    // specifically to validator SC-fill traffic losing arbitrations.
    u64 xcore = 0, xcore_sc = 0;
    for (const auto &[name, value] : four.stats.rows()) {
        if (name.find("xcore.l2_wait_cycles") != std::string::npos)
            xcore += value;
        if (name.find("xcore.sc_fill_wait_cycles") != std::string::npos)
            xcore_sc += value;
    }
    EXPECT_GT(xcore, 0u);
    EXPECT_GT(xcore_sc, 0u);
}

} // namespace
} // namespace rev::core
