/**
 * @file
 * Edge-case coverage of the REV machinery: SAG pressure beyond its B
 * register pairs (Sec. IV.B exception path), CHG latencies exceeding the
 * pipeline depth (Sec. VI), early-exit table walks, and validation with
 * interrupts + attacks combined.
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "program/assembler.hpp"
#include "sig/table.hpp"
#include "testutil.hpp"

namespace rev::core
{
namespace
{

/** A program of @p n tiny modules, main calling each once via CALLR. */
prog::Program
makeManyModuleProgram(unsigned n)
{
    prog::Program p;
    std::vector<Addr> entries;

    // Library modules first (fixed bases).
    Addr base = 0x40000;
    std::vector<prog::Module> libs;
    for (unsigned i = 0; i < n; ++i) {
        prog::Assembler a(base);
        a.label("f");
        a.addi(1, 1, static_cast<i32>(i + 1));
        a.ret();
        libs.push_back(a.finalize("lib" + std::to_string(i), "f"));
        entries.push_back(libs.back().symbol("f"));
        base += 0x1000;
    }

    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 0);
    for (unsigned i = 0; i < n; ++i) {
        a.la(2, "tbl");
        a.ld(2, 2, static_cast<i32>(8 * i));
        const Addr site = a.callr(2);
        a.annotateIndirect(site, {});
        // patched below
        (void)site;
    }
    a.halt();
    a.beginData();
    a.align(8);
    a.label("tbl");
    for (Addr e : entries)
        a.word64(e);

    auto main_mod = a.finalize("main", "main");
    // Annotate each CALLR with its one cross-module target.
    {
        unsigned i = 0;
        for (auto &[site, targets] : main_mod.indirectTargets)
            targets = {entries[i++]};
    }
    p.addModule(std::move(main_mod));
    for (auto &m : libs)
        p.addModule(std::move(m));
    return p;
}

TEST(SagPressure, MoreModulesThanRegistersStillValidates)
{
    // 24 modules vs B = 16 SAG entries: the exception handler refills
    // round-robin; everything still authenticates.
    auto p = makeManyModuleProgram(24);
    SimConfig cfg;
    cfg.rev.sagEntries = 16;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value())
        << r.run.violation->reason;
    EXPECT_GT(r.rev.sagExceptions, 0u);
    EXPECT_EQ(sim.core().machine().reg(1), 24u * 25u / 2);
}

TEST(SagPressure, EnoughRegistersMeansNoExceptions)
{
    auto p = makeManyModuleProgram(12);
    SimConfig cfg;
    cfg.rev.sagEntries = 16;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    EXPECT_FALSE(r.run.violation.has_value());
    EXPECT_EQ(r.rev.sagExceptions, 0u);
}

TEST(SagPressure, ExceptionsCostCycles)
{
    auto p = makeManyModuleProgram(24);
    SimConfig small;
    small.rev.sagEntries = 4;
    SimConfig big;
    big.rev.sagEntries = 32;
    Simulator s1(p, small), s2(p, big);
    const SimResult r1 = s1.run();
    const SimResult r2 = s2.run();
    EXPECT_GT(r1.rev.sagExceptions, r2.rev.sagExceptions);
    EXPECT_GT(r1.run.cycles, r2.run.cycles);
}

TEST(ChgLatency, BeyondPipelineDepthStallsCommit)
{
    // A hot loop where commit trails fetch by well under the ROB-bounded
    // fetch-ahead window (~90 cycles): a digest latency beyond that window
    // must gate every block's commit.
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 500);
    a.label("loop");
    a.addi(2, 2, 1);
    a.addi(3, 3, 1);
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("hot", "main"));

    SimConfig fast;
    fast.rev.chg.latency = 16; // H == S: fully overlapped
    SimConfig slow;
    slow.rev.chg.latency = 240; // H >> fetch-ahead window

    Simulator s1(p, fast), s2(p, slow);
    const SimResult r1 = s1.run();
    const SimResult r2 = s2.run();
    EXPECT_FALSE(r2.run.violation.has_value());
    EXPECT_GT(r2.rev.commitStallCycles, r1.rev.commitStallCycles);
    EXPECT_GT(r2.run.cycles, r1.run.cycles);
}

TEST(WalkNeeds, EarlyExitShortensSpillWalks)
{
    // A site with many targets: a walk that needs the *first* target must
    // read fewer records than an exhaustive walk.
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    const Addr site = a.jmpr(2);
    std::vector<std::string> labels;
    for (int i = 0; i < 12; ++i) {
        labels.push_back("t" + std::to_string(i));
        a.label(labels.back());
        a.addi(1, 1, 1);
        a.halt();
    }
    a.annotateIndirect(site, labels);
    prog::Program p;
    p.addModule(a.finalize("many", "main"));

    crypto::KeyVault vault(1);
    sig::SigStore store(p, sig::ValidationMode::Full, vault);
    SparseMemory mem;
    store.loadInto(mem);
    const auto &ms = store.moduleSigs().front();
    sig::TableReader reader(mem, ms.tableBase, vault);

    const auto *bb = ms.cfg.blockAtStart(p.main().base);
    ASSERT_NE(bb, nullptr);
    const u32 hash = sig::bbHash(p.main(), *bb, 5);

    const auto full_walk = reader.lookup(bb->term, hash, p.main().base);
    ASSERT_TRUE(full_walk.found);
    EXPECT_EQ(full_walk.targets.size(), 12u);

    sig::WalkNeeds needs;
    needs.target = bb->succs.front();
    const auto short_walk =
        reader.lookup(bb->term, hash, p.main().base, &needs);
    ASSERT_TRUE(short_walk.found);
    EXPECT_LT(short_walk.memAddrs.size(), full_walk.memAddrs.size());
}

TEST(InterruptsAndAttacks, DetectionUnaffectedByInterrupts)
{
    // The ROP scenario from the attack tests, with aggressive external
    // interrupts: detection and containment still hold.
    using namespace isa;
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(5, static_cast<i32>(prog::kHeapBase));
    a.movi(3, 50);
    a.label("loop"); // busy loop so interrupts actually fire
    a.addi(3, 3, -1);
    a.bne(3, 0, "loop");
    a.call("worker");
    a.halt();
    a.label("worker");
    a.addi(1, 1, 1);
    const Addr ret_pc = a.ret();
    a.label("gadget");
    a.movi(2, 666);
    a.st(2, 5, 0);
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("t", "main"));

    SimConfig cfg;
    cfg.core.interruptInterval = 30;
    Simulator sim(p, cfg);
    const Addr gadget = p.main().symbol("gadget");
    sim.core().setPreStepHook([&](u64, Addr pc) {
        if (pc == ret_pc) {
            const Addr sp = sim.core().machine().reg(isa::kRegSp);
            sim.memory().write64(sp, gadget);
        }
    });
    const SimResult r = sim.run();
    EXPECT_GT(r.run.interrupts, 0u);
    ASSERT_TRUE(r.run.violation.has_value());
    EXPECT_EQ(sim.memory().read64(prog::kHeapBase), 0u);
}

TEST(ValidationBypass, DisabledRevHasNearZeroCost)
{
    // SYSCALL 1 right at entry: the whole run commits unvalidated; the
    // cycle count must be close to the base machine's.
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.syscall(1);
    a.movi(1, 2000);
    a.label("loop");
    a.addi(2, 2, 3);
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.halt();
    prog::Program p;
    p.addModule(a.finalize("t", "main"));

    SimConfig off;
    off.withRev = false;
    SimConfig bypass; // REV attached but disabled by the syscall
    Simulator s1(p, off), s2(p, bypass);
    const SimResult r1 = s1.run();
    const SimResult r2 = s2.run();
    EXPECT_EQ(r2.rev.scMisses(), 0u);
    EXPECT_NEAR(static_cast<double>(r2.run.cycles),
                static_cast<double>(r1.run.cycles),
                static_cast<double>(r1.run.cycles) * 0.02);
}

} // namespace
} // namespace rev::core
