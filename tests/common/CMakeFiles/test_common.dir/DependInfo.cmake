
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/bitutil_test.cpp" "tests/common/CMakeFiles/test_common.dir/bitutil_test.cpp.o" "gcc" "tests/common/CMakeFiles/test_common.dir/bitutil_test.cpp.o.d"
  "/root/repo/tests/common/parallel_test.cpp" "tests/common/CMakeFiles/test_common.dir/parallel_test.cpp.o" "gcc" "tests/common/CMakeFiles/test_common.dir/parallel_test.cpp.o.d"
  "/root/repo/tests/common/random_test.cpp" "tests/common/CMakeFiles/test_common.dir/random_test.cpp.o" "gcc" "tests/common/CMakeFiles/test_common.dir/random_test.cpp.o.d"
  "/root/repo/tests/common/sparse_memory_test.cpp" "tests/common/CMakeFiles/test_common.dir/sparse_memory_test.cpp.o" "gcc" "tests/common/CMakeFiles/test_common.dir/sparse_memory_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/common/CMakeFiles/test_common.dir/stats_test.cpp.o" "gcc" "tests/common/CMakeFiles/test_common.dir/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/rev_common.dir/DependInfo.cmake"
  "/root/repo/src/crypto/CMakeFiles/rev_crypto.dir/DependInfo.cmake"
  "/root/repo/src/isa/CMakeFiles/rev_isa.dir/DependInfo.cmake"
  "/root/repo/src/program/CMakeFiles/rev_program.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
