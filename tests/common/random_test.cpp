/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hpp"

namespace rev
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestoresStream)
{
    Rng a(7);
    std::vector<u64> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(4);
    std::set<u64> seen;
    for (int i = 0; i < 10000; ++i) {
        const u64 v = rng.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all values hit
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(6);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(8);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

} // namespace
} // namespace rev
