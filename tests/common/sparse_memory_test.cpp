/**
 * @file
 * Unit tests for the sparse memory image.
 */

#include <gtest/gtest.h>

#include "common/sparse_memory.hpp"

namespace rev
{
namespace
{

TEST(SparseMemory, UnwrittenReadsZero)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read8(0x1234), 0);
    EXPECT_EQ(mem.read64(0xdeadbeef), 0u);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(SparseMemory, ByteRoundTrip)
{
    SparseMemory mem;
    mem.write8(0x1000, 0xab);
    EXPECT_EQ(mem.read8(0x1000), 0xab);
    EXPECT_EQ(mem.read8(0x1001), 0);
}

TEST(SparseMemory, Word64RoundTripLittleEndian)
{
    SparseMemory mem;
    mem.write64(0x2000, 0x1122334455667788ULL);
    EXPECT_EQ(mem.read64(0x2000), 0x1122334455667788ULL);
    EXPECT_EQ(mem.read8(0x2000), 0x88); // little-endian
    EXPECT_EQ(mem.read8(0x2007), 0x11);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem;
    const Addr boundary = SparseMemory::kPageSize - 4;
    mem.write64(boundary, 0xcafebabe12345678ULL);
    EXPECT_EQ(mem.read64(boundary), 0xcafebabe12345678ULL);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(SparseMemory, BulkBytes)
{
    SparseMemory mem;
    std::vector<u8> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 7);
    mem.writeBytes(0x8000, data);

    std::vector<u8> back(data.size());
    mem.readBytes(0x8000, back.data(), back.size());
    EXPECT_EQ(back, data);
}

} // namespace
} // namespace rev
