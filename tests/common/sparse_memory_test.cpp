/**
 * @file
 * Unit tests for the sparse memory image.
 */

#include <gtest/gtest.h>

#include "common/sparse_memory.hpp"

namespace rev
{
namespace
{

TEST(SparseMemory, UnwrittenReadsZero)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read8(0x1234), 0);
    EXPECT_EQ(mem.read64(0xdeadbeef), 0u);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(SparseMemory, ByteRoundTrip)
{
    SparseMemory mem;
    mem.write8(0x1000, 0xab);
    EXPECT_EQ(mem.read8(0x1000), 0xab);
    EXPECT_EQ(mem.read8(0x1001), 0);
}

TEST(SparseMemory, Word64RoundTripLittleEndian)
{
    SparseMemory mem;
    mem.write64(0x2000, 0x1122334455667788ULL);
    EXPECT_EQ(mem.read64(0x2000), 0x1122334455667788ULL);
    EXPECT_EQ(mem.read8(0x2000), 0x88); // little-endian
    EXPECT_EQ(mem.read8(0x2007), 0x11);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem;
    const Addr boundary = SparseMemory::kPageSize - 4;
    mem.write64(boundary, 0xcafebabe12345678ULL);
    EXPECT_EQ(mem.read64(boundary), 0xcafebabe12345678ULL);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(SparseMemory, BulkBytes)
{
    SparseMemory mem;
    std::vector<u8> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 7);
    mem.writeBytes(0x8000, data);

    std::vector<u8> back(data.size());
    mem.readBytes(0x8000, back.data(), back.size());
    EXPECT_EQ(back, data);
}

// The span fast paths must agree with a byte-at-a-time reference on every
// alignment, including spans that cross page boundaries and spans over
// pages that were never written (zero-fill).
TEST(SparseMemory, SpanFastPathsMatchByteReference)
{
    SparseMemory fast;
    SparseMemory ref;

    // Straddle a page boundary with writes of every size 1..8.
    const Addr boundary = 3 * SparseMemory::kPageSize;
    for (unsigned size = 1; size <= 8; ++size) {
        const Addr addr = boundary - size / 2;
        const u64 value = 0x0123456789abcdefULL >> (8 * (8 - size));
        fast.write(addr, value, size);
        for (unsigned i = 0; i < size; ++i)
            ref.write8(addr + i, static_cast<u8>(value >> (8 * i)));
        EXPECT_EQ(fast.read(addr, size), value) << "size " << size;
        for (unsigned i = 0; i < size; ++i)
            EXPECT_EQ(fast.read8(addr + i), ref.read8(addr + i))
                << "size " << size << " byte " << i;
    }

    // A bulk span covering written, partially written, and absent pages.
    std::vector<u8> data(3 * SparseMemory::kPageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 13 + 1);
    const Addr base = 7 * SparseMemory::kPageSize - 100;
    fast.writeBytes(base, data);
    for (std::size_t i = 0; i < data.size(); ++i)
        ref.write8(base + i, data[i]);

    // Read a window that starts before the written span (zero-fill from
    // the unmapped prefix) and ends past it (zero-fill suffix).
    const Addr lo = base - 64;
    const std::size_t n = data.size() + 256;
    std::vector<u8> got(n), want(n);
    fast.readBytes(lo, got.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        want[i] = ref.read8(lo + i);
    EXPECT_EQ(got, want);
}

TEST(SparseMemory, ReadsOfUnmappedPagesStayUnmapped)
{
    SparseMemory mem;
    u8 buf[64];
    mem.readBytes(0x100000, buf, sizeof(buf));
    for (u8 b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.read(0x200000, 8), 0u);
    EXPECT_EQ(mem.pageCount(), 0u); // reads must not materialize pages
}

TEST(SparseMemory, PageVersionsTrackWrites)
{
    SparseMemory mem;
    const u64 page = 5;
    const Addr addr = page * SparseMemory::kPageSize + 8;
    EXPECT_EQ(mem.pageVersion(page), 0u); // absent page

    mem.write8(addr, 1);
    const u64 v1 = mem.pageVersion(page);
    EXPECT_GT(v1, 0u);

    mem.write64(addr, 2); // same page: version advances
    const u64 v2 = mem.pageVersion(page);
    EXPECT_GT(v2, v1);

    mem.write8(addr + SparseMemory::kPageSize, 3); // other page untouched
    EXPECT_EQ(mem.pageVersion(page), v2);

    // A span write crossing both pages bumps each exactly once.
    u8 buf[SparseMemory::kPageSize] = {0xff};
    const Addr spanStart = (page + 1) * SparseMemory::kPageSize - 16;
    mem.writeBytes(spanStart, buf, sizeof(buf));
    EXPECT_EQ(mem.pageVersion(page), v2 + 1);

    // Reads never move versions.
    (void)mem.read64(addr);
    u8 tmp[32];
    mem.readBytes(addr, tmp, sizeof(tmp));
    EXPECT_EQ(mem.pageVersion(page), v2 + 1);
}

TEST(SparseMemory, SpanVersionSumCoversSpanPages)
{
    SparseMemory mem;
    const Addr a = 2 * SparseMemory::kPageSize;
    mem.write8(a, 1);
    mem.write8(a + SparseMemory::kPageSize, 2);
    const u64 sum = mem.spanVersionSum(a, a + SparseMemory::kPageSize + 1);
    EXPECT_EQ(sum, mem.pageVersion(2) + mem.pageVersion(3));
    EXPECT_EQ(mem.spanVersionSum(a, a), 0u); // empty span
    mem.write8(a + SparseMemory::kPageSize, 3);
    EXPECT_GT(mem.spanVersionSum(a, a + SparseMemory::kPageSize + 1), sum);
}

TEST(SparseMemory, CloneKeepsVersionsAndMovesBumpEpoch)
{
    SparseMemory mem;
    mem.write64(0x3000, 42);
    mem.write64(0x3000, 43);
    const u64 ver = mem.pageVersion(0x3000 / SparseMemory::kPageSize);
    const u64 epoch = mem.epoch();

    SparseMemory copy = mem.clone();
    EXPECT_EQ(copy.read64(0x3000), 43u);
    EXPECT_EQ(copy.pageVersion(0x3000 / SparseMemory::kPageSize), ver);

    mem = copy.clone(); // move-assign replaces the page set
    EXPECT_GT(mem.epoch(), epoch);
    EXPECT_EQ(mem.read64(0x3000), 43u);
}

// --- copy-on-write fork semantics -----------------------------------------

TEST(SparseMemory, ForkSharesPagesUntilWritten)
{
    SparseMemory parent;
    parent.write64(0x1000, 0x11);
    parent.write64(0x5000, 0x22);

    SparseMemory child = parent.fork();
    EXPECT_EQ(child.read64(0x1000), 0x11u);
    EXPECT_EQ(child.read64(0x5000), 0x22u);
    EXPECT_EQ(child.pageCount(), parent.pageCount());

    // The fork is O(pages in the map), not O(bytes): until someone
    // writes, both sides read the same physical page.
    child.write64(0x1000, 0x33); // un-shares page 1 only
    EXPECT_EQ(child.read64(0x1000), 0x33u);
    EXPECT_EQ(parent.read64(0x1000), 0x11u);
    EXPECT_EQ(child.read64(0x5000), 0x22u);
}

TEST(SparseMemory, SiblingForksDirtyingSamePageStayIsolated)
{
    SparseMemory parent;
    const Addr addr = 9 * SparseMemory::kPageSize + 128;
    parent.write64(addr, 0xaaaa);

    SparseMemory a = parent.fork();
    SparseMemory b = parent.fork();

    // Both siblings dirty the SAME shared page; neither may observe the
    // other's write, and the parent keeps the original bytes.
    a.write64(addr, 0xbbbb);
    b.write64(addr + 8, 0xcccc);
    EXPECT_EQ(a.read64(addr), 0xbbbbu);
    EXPECT_EQ(a.read64(addr + 8), 0u);
    EXPECT_EQ(b.read64(addr), 0xaaaau);
    EXPECT_EQ(b.read64(addr + 8), 0xccccu);
    EXPECT_EQ(parent.read64(addr), 0xaaaau);
    EXPECT_EQ(parent.read64(addr + 8), 0u);
}

TEST(SparseMemory, ForkVersionsAdvanceIndependently)
{
    SparseMemory parent;
    const u64 page = 4;
    const Addr addr = page * SparseMemory::kPageSize;
    parent.write8(addr, 1);
    parent.write8(addr, 2);
    const u64 ver = parent.pageVersion(page);

    SparseMemory a = parent.fork();
    SparseMemory b = parent.fork();
    EXPECT_EQ(a.pageVersion(page), ver); // fork preserves versions

    a.write8(addr, 3);
    EXPECT_EQ(a.pageVersion(page), ver + 1);
    EXPECT_EQ(b.pageVersion(page), ver); // sibling untouched
    EXPECT_EQ(parent.pageVersion(page), ver);

    b.write8(addr, 4);
    b.write8(addr, 5);
    EXPECT_EQ(b.pageVersion(page), ver + 2);
    EXPECT_EQ(a.pageVersion(page), ver + 1);
}

TEST(SparseMemory, PageViewVersionPointerSurvivesCowClone)
{
    SparseMemory parent;
    const u64 page = 2;
    const Addr addr = page * SparseMemory::kPageSize;
    parent.write8(addr, 1);

    // The view's version pointer must track the owning image's slot even
    // after the underlying page is COW-cloned by a write (the CHG memo
    // holds such pointers across arbitrary interleaved forks).
    const SparseMemory::PageView view = parent.pageView(page);
    ASSERT_NE(view.version, nullptr);
    const u64 before = *view.version;

    SparseMemory child = parent.fork(); // share the page...
    parent.write8(addr, 2);             // ...then un-share by writing
    EXPECT_EQ(*view.version, before + 1);

    child.write8(addr, 3); // the child's version is a different counter
    EXPECT_EQ(*view.version, before + 1);
}

TEST(SparseMemory, ForkOfForkChainsSharing)
{
    SparseMemory gen0;
    gen0.write64(0x7000, 7);
    SparseMemory gen1 = gen0.fork();
    gen1.write64(0x8000, 8);
    SparseMemory gen2 = gen1.fork();

    EXPECT_EQ(gen2.read64(0x7000), 7u);
    EXPECT_EQ(gen2.read64(0x8000), 8u);
    gen2.write64(0x7000, 9);
    EXPECT_EQ(gen0.read64(0x7000), 7u);
    EXPECT_EQ(gen1.read64(0x7000), 7u);
    EXPECT_EQ(gen2.read64(0x7000), 9u);
}

} // namespace
} // namespace rev
