#include "common/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace rev
{
namespace
{

TEST(Parallel, ParallelForVisitsEveryIndexOnce)
{
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    parallelFor(n, 4, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(Parallel, ParallelForSingleThreadRunsInOrder)
{
    std::vector<std::size_t> order;
    parallelFor(16, 1, [&](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expect(16);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

TEST(Parallel, ParallelForZeroItemsIsANoop)
{
    bool ran = false;
    parallelFor(0, 4, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(Parallel, ParallelForRethrowsFirstException)
{
    EXPECT_THROW(parallelFor(64, 4,
                             [](std::size_t i) {
                                 if (i == 13)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(Parallel, ParallelForExceptionStillCompletesOtherItems)
{
    std::vector<std::atomic<int>> visits(64);
    try {
        parallelFor(64, 4, [&](std::size_t i) {
            if (i == 5)
                throw std::runtime_error("boom");
            ++visits[i];
        });
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &) {
    }
    int total = 0;
    for (auto &v : visits)
        total += v.load();
    EXPECT_EQ(total, 63); // every index except the thrower
}

TEST(TaskQueue, DrainsSubmittedTasks)
{
    std::atomic<int> count{0};
    TaskQueue q(3);
    EXPECT_EQ(q.threadCount(), 3u);
    for (int i = 0; i < 100; ++i)
        q.submit([&] { ++count; });
    q.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(TaskQueue, SingleThreadedRunsInline)
{
    TaskQueue q(1);
    std::vector<int> order;
    q.submit([&] { order.push_back(1); });
    order.push_back(2); // inline submit must have completed already
    q.wait();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TaskQueue, WaitRethrowsTaskException)
{
    TaskQueue q(2);
    q.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(q.wait(), std::runtime_error);
    // The error is consumed: the queue is reusable afterwards.
    std::atomic<int> count{0};
    q.submit([&] { ++count; });
    q.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(Parallel, ResolveThreadCountPrefersExplicitRequest)
{
    EXPECT_EQ(resolveThreadCount(7), 7u);
}

TEST(Parallel, ResolveThreadCountReadsEnv)
{
    ::setenv("REV_BENCH_THREADS", "5", 1);
    EXPECT_EQ(resolveThreadCount(0), 5u);
    ::setenv("REV_BENCH_THREADS", "0", 1); // invalid: fall through to hw
    EXPECT_GE(resolveThreadCount(0), 1u);
    ::unsetenv("REV_BENCH_THREADS");
    EXPECT_GE(resolveThreadCount(0), 1u);
}

} // namespace
} // namespace rev
