/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hpp"

namespace rev::stats
{
namespace
{

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, Reset)
{
    Counter c;
    c += 10;
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup group("l1d");
    Counter hits, misses;
    group.add("hits", &hits);
    group.add("misses", &misses);
    hits += 3;
    ++misses;

    std::ostringstream os;
    group.dump(os);
    EXPECT_EQ(os.str(), "l1d.hits 3\nl1d.misses 1\n");
}

TEST(StatGroup, GetByName)
{
    StatGroup group("sc");
    Counter probes;
    group.add("probes", &probes);
    probes += 7;
    EXPECT_EQ(group.get("probes"), 7u);
    EXPECT_EQ(group.get("absent"), 0u);
}

} // namespace
} // namespace rev::stats
