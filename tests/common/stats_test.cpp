/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hpp"

namespace rev::stats
{
namespace
{

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, Reset)
{
    Counter c;
    c += 10;
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup group("l1d");
    Counter hits, misses;
    group.add("hits", &hits);
    group.add("misses", &misses);
    hits += 3;
    ++misses;

    std::ostringstream os;
    group.dump(os);
    EXPECT_EQ(os.str(), "l1d.hits 3\nl1d.misses 1\n");
}

TEST(StatGroup, GetByName)
{
    StatGroup group("sc");
    Counter probes;
    group.add("probes", &probes);
    probes += 7;
    EXPECT_EQ(group.get("probes"), 7u);
    EXPECT_EQ(group.get("absent"), 0u);
}

TEST(StatSet, AddGetHas)
{
    StatSet set;
    set.add("sim.cycles", 1234);
    set.add("sim.instrs", 999);
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.has("sim.cycles"));
    EXPECT_FALSE(set.has("sim.absent"));
    EXPECT_EQ(set.get("sim.instrs"), 999u);
    EXPECT_EQ(set.get("sim.absent"), 0u);
}

TEST(StatSet, DumpMatchesStatGroupFormat)
{
    StatSet set;
    set.add("l1d.hits", 3);
    set.add("l1d.misses", 1);
    std::ostringstream os;
    set.dump(os);
    EXPECT_EQ(os.str(), "l1d.hits 3\nl1d.misses 1\n");
}

TEST(StatGroup, SnapshotCopiesLiveCounters)
{
    StatGroup group("l1d");
    Counter hits;
    group.add("hits", &hits);
    hits += 3;

    StatSet set;
    group.snapshot(set);
    hits += 10; // snapshot must be a copy, not a live view
    EXPECT_EQ(set.get("l1d.hits"), 3u);
    EXPECT_EQ(group.get("hits"), 13u);
}

} // namespace
} // namespace rev::stats
