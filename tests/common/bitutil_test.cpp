/**
 * @file
 * Unit tests for bit utilities.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hpp"

namespace rev
{
namespace
{

TEST(BitUtil, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(BitUtil, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(4096), 12u);
    EXPECT_THROW(log2i(3), PanicError);
}

TEST(BitUtil, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xdeadbeef, 7, 4), 0xeu);
    EXPECT_EQ(bits(~u64{0}, 63, 0), ~u64{0});
}

TEST(BitUtil, Rounding)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(65, 64), 64u);
    EXPECT_EQ(roundDown(63, 64), 0u);
}

} // namespace
} // namespace rev
