# CMake generated Testfile for 
# Source directory: /root/repo/tests/common
# Build directory: /root/repo/tests/common
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/common/test_common[1]_include.cmake")
