/**
 * @file
 * SigStore (trusted linker/loader) tests.
 */

#include <gtest/gtest.h>

#include "sig/sigstore.hpp"
#include "testutil.hpp"

namespace rev::sig
{
namespace
{

prog::Program
makeTwoModuleProgram()
{
    prog::Program p;
    {
        prog::Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(1, 1);
        a.halt();
        p.addModule(a.finalize("main", "main"));
    }
    {
        prog::Assembler a(p.nextModuleBase());
        a.label("libfn");
        a.addi(1, 1, 7);
        a.ret();
        p.addModule(a.finalize("libm", "libfn"));
    }
    return p;
}

TEST(SigStore, OneTablePerModule)
{
    crypto::KeyVault vault(1);
    auto p = makeTwoModuleProgram();
    SigStore store(p, ValidationMode::Full, vault);
    EXPECT_EQ(store.moduleSigs().size(), 2u);
}

TEST(SigStore, TablesDoNotOverlap)
{
    crypto::KeyVault vault(1);
    auto p = makeTwoModuleProgram();
    SigStore store(p, ValidationMode::Full, vault);
    const auto &sigs = store.moduleSigs();
    const Addr end0 = sigs[0].tableBase + sigs[0].stats.sizeBytes;
    EXPECT_GE(sigs[1].tableBase, end0);
}

TEST(SigStore, LoadedTablesAreReadable)
{
    crypto::KeyVault vault(1);
    auto p = makeTwoModuleProgram();
    SigStore store(p, ValidationMode::Full, vault);

    SparseMemory mem;
    store.loadInto(mem);
    for (const auto &sig : store.moduleSigs()) {
        TableReader reader(mem, sig.tableBase, vault);
        ASSERT_TRUE(reader.valid());
        for (const auto &bb : sig.cfg.blocks()) {
            EXPECT_TRUE(reader
                            .lookup(bb.term, bbHash(*sig.module, bb, 5), sig.module->base)
                            .found);
        }
    }
}

TEST(SigStore, FindByCode)
{
    crypto::KeyVault vault(1);
    auto p = makeTwoModuleProgram();
    SigStore store(p, ValidationMode::Full, vault);

    const auto *m0 = store.findByCode(p.modules()[0].base);
    const auto *m1 = store.findByCode(p.modules()[1].base);
    ASSERT_NE(m0, nullptr);
    ASSERT_NE(m1, nullptr);
    EXPECT_NE(m0, m1);
    EXPECT_EQ(store.findByCode(0xdead0000), nullptr);
}

TEST(SigStore, PerModuleKeysDiffer)
{
    // Decrypting module B's table while pretending it is module A's must
    // fail: keys are distinct. We verify indirectly: swap the two table
    // bodies in RAM and observe lookups break.
    crypto::KeyVault vault(1);
    auto p = makeTwoModuleProgram();
    SigStore store(p, ValidationMode::Full, vault);
    SparseMemory mem;
    store.loadInto(mem);

    const auto &s0 = store.moduleSigs()[0];
    const auto &s1 = store.moduleSigs()[1];
    // Copy s1's body over s0's body (headers stay put).
    const u64 body0 = s0.stats.sizeBytes - kHeaderBytes;
    for (u64 i = 0; i < std::min(body0, s1.stats.sizeBytes - kHeaderBytes);
         ++i) {
        mem.write8(s0.tableBase + kHeaderBytes + i,
                   mem.read8(s1.tableBase + kHeaderBytes + i));
    }
    TableReader reader(mem, s0.tableBase, vault);
    ASSERT_TRUE(reader.valid());
    const auto &bb = s0.cfg.blocks().front();
    const auto res = reader.lookup(bb.term, bbHash(*s0.module, bb, 5), s0.module->base);
    // With a foreign body decrypted under the wrong key, the walk cannot
    // produce this module's reference data.
    if (res.found) {
        EXPECT_NE(res.hash, bbHash(*s0.module, bb, 5));
    }
}

TEST(SigStore, TotalBytesMatchesStats)
{
    crypto::KeyVault vault(1);
    auto p = makeTwoModuleProgram();
    SigStore store(p, ValidationMode::Full, vault);
    u64 sum = 0;
    for (const auto &sig : store.moduleSigs())
        sum += sig.stats.sizeBytes;
    EXPECT_EQ(store.totalTableBytes(), sum);
}

} // namespace
} // namespace rev::sig
