/**
 * @file
 * Signature table build / encrypt / walk tests (Sec. V).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "program/interp.hpp"
#include "sig/sigstore.hpp"
#include "sig/table.hpp"
#include "testutil.hpp"

namespace rev::sig
{
namespace
{

using prog::Cfg;
using prog::TermKind;

struct Fixture
{
    prog::Program program;
    Cfg cfg;
    crypto::KeyVault vault{7};
    crypto::AesKey key{};
    SparseMemory mem;
    Addr tableBase = kSigTableRegion;

    explicit Fixture(prog::Program p, ValidationMode mode)
        : program(std::move(p)), cfg(prog::buildCfg(program.main()))
    {
        Rng rng(3);
        key = vault.generateModuleKey(rng);
        BuiltTable built =
            buildTable(program.main(), cfg, mode, vault, key, 99);
        mem.writeBytes(tableBase, built.bytes);
        stats = built.stats;
    }

    TableStats stats;
};

TEST(SigTable, HashBindsBytesAndAddresses)
{
    const u8 code[] = {1, 2, 3, 4, 5};
    const u32 h = bbHashBytes(code, sizeof(code), 0x100, 0x104, 5);
    EXPECT_EQ(h, bbHashBytes(code, sizeof(code), 0x100, 0x104, 5));
    // Different bytes, start, or term all change the hash.
    u8 mut[] = {1, 2, 3, 4, 6};
    EXPECT_NE(h, bbHashBytes(mut, sizeof(mut), 0x100, 0x104, 5));
    EXPECT_NE(h, bbHashBytes(code, sizeof(code), 0x101, 0x104, 5));
    EXPECT_NE(h, bbHashBytes(code, sizeof(code), 0x100, 0x105, 5));
}

TEST(SigTable, FullModeLookupEveryBlock)
{
    Fixture f(test::makeLoopCallProgram(), ValidationMode::Full);
    TableReader reader(f.mem, f.tableBase, f.vault);
    ASSERT_TRUE(reader.valid());
    EXPECT_EQ(reader.mode(), ValidationMode::Full);

    const auto &mod = f.program.main();
    for (const auto &bb : f.cfg.blocks()) {
        const LookupResult res = reader.lookup(bb.term, bbHash(mod, bb, 5), mod.base);
        ASSERT_TRUE(res.found) << "block @ 0x" << std::hex << bb.start;
        EXPECT_EQ(res.hash, bbHash(mod, bb, 5));
        EXPECT_EQ(res.termKind, bb.kind);
        // Full mode: explicit targets only for computed sites.
        EXPECT_TRUE(res.targets.empty());
        // Return-site predecessors surface.
        EXPECT_EQ(res.retPreds.size(), bb.retPreds.size());
    }
}

TEST(SigTable, UnknownBlockNotFound)
{
    Fixture f(test::makeLoopCallProgram(), ValidationMode::Full);
    TableReader reader(f.mem, f.tableBase, f.vault);
    const auto &mod = f.program.main();
    EXPECT_FALSE(reader.lookup(mod.base + 3, 0x12345678u, mod.base).found);
}

TEST(SigTable, ComputedTargetsInFullMode)
{
    Fixture f(test::makeIndirectDispatchProgram(), ValidationMode::Full);
    TableReader reader(f.mem, f.tableBase, f.vault);
    const auto &mod = f.program.main();

    for (const auto &bb : f.cfg.blocks()) {
        if (bb.kind != TermKind::CallIndirect)
            continue;
        const LookupResult res = reader.lookup(bb.term, bbHash(mod, bb, 5), mod.base);
        ASSERT_TRUE(res.found);
        ASSERT_EQ(res.targets.size(), 2u);
        EXPECT_TRUE(std::is_permutation(res.targets.begin(),
                                        res.targets.end(),
                                        bb.succs.begin()));
    }
}

TEST(SigTable, AggressiveModeListsAllBranchTargets)
{
    Fixture f(test::makeLoopCallProgram(), ValidationMode::Aggressive);
    TableReader reader(f.mem, f.tableBase, f.vault);
    const auto &mod = f.program.main();

    for (const auto &bb : f.cfg.blocks()) {
        const LookupResult res = reader.lookup(bb.term, bbHash(mod, bb, 5), mod.base);
        ASSERT_TRUE(res.found);
        if (bb.kind == TermKind::Return) {
            EXPECT_TRUE(res.targets.empty());
        } else {
            ASSERT_EQ(res.targets.size(), bb.succs.size());
            EXPECT_TRUE(std::is_permutation(res.targets.begin(),
                                            res.targets.end(),
                                            bb.succs.begin()));
        }
    }
}

TEST(SigTable, CfiOnlyRecordsComputedAndReturnSitesOnly)
{
    Fixture f(test::makeIndirectDispatchProgram(), ValidationMode::CfiOnly);
    TableReader reader(f.mem, f.tableBase, f.vault);
    const auto &mod = f.program.main();

    for (const auto &bb : f.cfg.blocks()) {
        const LookupResult res = reader.lookupSite(bb.term, mod.base);
        if (termIsComputed(bb.kind) || bb.kind == TermKind::Return) {
            ASSERT_TRUE(res.found) << "site 0x" << std::hex << bb.term;
            ASSERT_EQ(res.targets.size(), bb.succs.size());
            EXPECT_TRUE(std::is_permutation(res.targets.begin(),
                                            res.targets.end(),
                                            bb.succs.begin()));
        } else {
            EXPECT_FALSE(res.found);
        }
    }
}

TEST(SigTable, TamperedTableBreaksLookup)
{
    Fixture f(test::makeLoopCallProgram(), ValidationMode::Full);
    const auto &mod = f.program.main();
    const auto &bb = f.cfg.blocks().front();

    TableReader clean(f.mem, f.tableBase, f.vault);
    const LookupResult before = clean.lookup(bb.term, bbHash(mod, bb, 5), mod.base);
    ASSERT_TRUE(before.found);

    // Snapshot clean lookups, then flip one bit in the hash field of the
    // first block's bucket-slot record.
    std::vector<LookupResult> snapshot;
    for (const auto &blk : f.cfg.blocks())
        snapshot.push_back(clean.lookup(blk.term, bbHash(mod, blk, 5), mod.base));

    const u64 bucket = (bb.term - mod.base) % f.stats.numBuckets;
    const Addr victim = f.tableBase + kHeaderBytes +
                        bucket * recordSize(ValidationMode::Full) + 4;
    f.mem.write8(victim, f.mem.read8(victim) ^ 0x40);

    TableReader tampered(f.mem, f.tableBase, f.vault);
    ASSERT_TRUE(tampered.valid()); // header untouched
    // Tampering with reference data must be observable: at least one
    // lookup changes (found-ness or hash).
    bool any_changed = false;
    std::size_t i = 0;
    for (const auto &blk : f.cfg.blocks()) {
        const LookupResult &a = snapshot[i++];
        const LookupResult b =
            tampered.lookup(blk.term, bbHash(mod, blk, 5), mod.base);
        if (a.found != b.found || (b.found && a.hash != b.hash))
            any_changed = true;
    }
    EXPECT_TRUE(any_changed);
}

TEST(SigTable, TamperedHeaderKeyRejected)
{
    Fixture f(test::makeLoopCallProgram(), ValidationMode::Full);
    // Corrupt the wrapped key in the header.
    f.mem.write8(f.tableBase + 30, f.mem.read8(f.tableBase + 30) ^ 1);
    TableReader reader(f.mem, f.tableBase, f.vault);
    EXPECT_FALSE(reader.valid());
}

TEST(SigTable, WrongCpuCannotUseTable)
{
    Fixture f(test::makeLoopCallProgram(), ValidationMode::Full);
    crypto::KeyVault other_cpu(12345);
    TableReader reader(f.mem, f.tableBase, other_cpu);
    EXPECT_FALSE(reader.valid());
}

TEST(SigTable, TableIsActuallyEncryptedInRam)
{
    Fixture f(test::makeLoopCallProgram(), ValidationMode::Full);
    const auto &mod = f.program.main();
    // The plaintext hash of the entry block must not appear at any aligned
    // position of the RAM image body (probability of accidental match is
    // ~2^-32 per position).
    const u32 hash = bbHash(mod, f.cfg.blocks().front(), 5);
    const u64 size = f.stats.sizeBytes;
    int found = 0;
    for (u64 off = kHeaderBytes; off + 4 <= size; ++off) {
        u32 v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | f.mem.read8(f.tableBase + off + i);
        found += (v == hash);
    }
    EXPECT_EQ(found, 0);
}

TEST(SigTable, MemAccessAddressesAreWithinTable)
{
    Fixture f(test::makeLoopCallProgram(), ValidationMode::Full);
    TableReader reader(f.mem, f.tableBase, f.vault);
    const auto &mod = f.program.main();
    for (const auto &bb : f.cfg.blocks()) {
        const LookupResult res = reader.lookup(bb.term, bbHash(mod, bb, 5), mod.base);
        ASSERT_TRUE(res.found);
        ASSERT_GE(res.memAddrs.size(), 1u); // direct-indexed bucket slot
        for (Addr a : res.memAddrs) {
            EXPECT_GE(a, f.tableBase);
            EXPECT_LT(a, f.tableBase + f.stats.sizeBytes);
        }
    }
}

TEST(SigTable, SpillChainsForManyTargets)
{
    // A computed jump with 9 targets forces several continuation records.
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    a.movi(1, 0);
    const Addr site = a.jmpr(2);
    std::vector<std::string> labels;
    for (int i = 0; i < 9; ++i) {
        const std::string l = "t" + std::to_string(i);
        labels.push_back(l);
        a.label(l);
        a.addi(1, 1, i);
        a.halt();
    }
    a.annotateIndirect(site, labels);
    prog::Program p;
    p.addModule(a.finalize("many", "main"));

    Fixture f(std::move(p), ValidationMode::Full);
    TableReader reader(f.mem, f.tableBase, f.vault);
    const auto &mod = f.program.main();

    const auto *bb = f.cfg.blockAtStart(mod.symbol("main"));
    ASSERT_NE(bb, nullptr);
    const LookupResult res = reader.lookup(bb->term, bbHash(mod, *bb, 5), mod.base);
    ASSERT_TRUE(res.found);
    EXPECT_EQ(res.targets.size(), 9u);
    EXPECT_GT(f.stats.contRecords, 2u);
}

TEST(SigTable, AggressiveSpillPackingWithTargetsAndPreds)
{
    // A computed call with 7 targets whose return site collects the RETs
    // of all 7 callees: aggressive entries hold 2 targets inline and pack
    // 4 slots per continuation with separate target/pred counts.
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    const Addr site = a.callr(2);
    std::vector<std::string> fns;
    a.jmp("end");
    for (int i = 0; i < 7; ++i) {
        fns.push_back("f" + std::to_string(i));
        a.label(fns.back());
        a.addi(1, 1, i);
        a.ret();
    }
    a.label("end");
    a.halt();
    a.annotateIndirect(site, fns);
    prog::Program p;
    p.addModule(a.finalize("agg", "main"));

    Fixture f(std::move(p), ValidationMode::Aggressive);
    TableReader reader(f.mem, f.tableBase, f.vault);
    const auto &mod = f.program.main();

    // The CALLR block lists all 7 targets.
    const auto *callbb = f.cfg.blockAtStart(mod.base);
    ASSERT_NE(callbb, nullptr);
    auto res = reader.lookup(callbb->term, bbHash(mod, *callbb, 5),
                             mod.base);
    ASSERT_TRUE(res.found);
    EXPECT_EQ(res.targets.size(), 7u);

    // The return site lists all 7 RET predecessors (plus its own jump
    // target in aggressive mode).
    const auto *rb = f.cfg.blockAtStart(callbb->end);
    ASSERT_NE(rb, nullptr);
    res = reader.lookup(rb->term, bbHash(mod, *rb, 5), mod.base);
    ASSERT_TRUE(res.found);
    EXPECT_EQ(res.retPreds.size(), 7u);
}

TEST(SigTable, CrossModuleTargetsDecodeToAbsoluteAddresses)
{
    // A computed call annotated with a target in another module: the
    // 24-bit program-relative slots must decode to the absolute address.
    prog::Program p;
    {
        prog::Assembler lib(0x200000);
        lib.label("libfn");
        lib.ret();
        p.addModule(lib.finalize("lib", "libfn"));
    }
    const Addr libfn = p.modules()[0].symbol("libfn");
    {
        prog::Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        const Addr site = a.callr(2);
        a.halt();
        auto m = a.finalize("main", "main");
        m.indirectTargets[site] = {libfn};
        // main must be module 0 for Fixture::main()
        prog::Program q;
        q.addModule(std::move(m));
        q.addModule(std::move(p.modules()[0]));
        p = std::move(q);
    }

    Fixture f(std::move(p), ValidationMode::Full);
    TableReader reader(f.mem, f.tableBase, f.vault);
    const auto &mod = f.program.main();
    const auto *bb = f.cfg.blockAtStart(mod.base);
    ASSERT_NE(bb, nullptr);
    const auto res =
        reader.lookup(bb->term, bbHash(mod, *bb, 5), mod.base);
    ASSERT_TRUE(res.found);
    ASSERT_EQ(res.targets.size(), 1u);
    EXPECT_EQ(res.targets[0], libfn);
}

TEST(SigTable, RecordSizesPerMode)
{
    EXPECT_EQ(recordSize(ValidationMode::Full), 11u);
    EXPECT_EQ(recordSize(ValidationMode::Aggressive), 17u);
    EXPECT_EQ(recordSize(ValidationMode::CfiOnly), 12u);
}

TEST(SigTable, SizeOrderingAcrossModes)
{
    auto p1 = test::makeIndirectDispatchProgram();
    auto p2 = test::makeIndirectDispatchProgram();
    auto p3 = test::makeIndirectDispatchProgram();
    Fixture full(std::move(p1), ValidationMode::Full);
    Fixture agg(std::move(p2), ValidationMode::Aggressive);
    Fixture cfi(std::move(p3), ValidationMode::CfiOnly);

    // Aggressive > Full > CFI-only, as in the paper.
    EXPECT_GT(agg.stats.sizeBytes, full.stats.sizeBytes);
    EXPECT_GT(full.stats.sizeBytes, cfi.stats.sizeBytes);
}

TEST(SigTable, NoTruncatedHashDuplicatesInSmallPrograms)
{
    Fixture f(test::makeLoopCallProgram(), ValidationMode::Full);
    EXPECT_EQ(f.stats.hashDuplicates, 0u);
}

TEST(SigTable, TamperedContCountsStayBounded)
{
    // A tampered continuation record can advertise more target/pred
    // slots than the record layout carries (an aggressive-mode count
    // byte encodes up to 7+7 against 4 physical slots). The walker must
    // clamp, not index past the slot-offset table: large sig-corrupt
    // campaigns hit exactly this. AES-CTR is malleable, so flipping
    // ciphertext bits flips the same plaintext bits — sweeping every
    // XOR mask over the first continuation record's kind/count byte
    // covers all 255 corrupt decodings, including kind=cont with both
    // counts maxed.
    prog::Assembler a(prog::kDefaultCodeBase);
    a.label("main");
    const Addr site = a.callr(2);
    std::vector<std::string> fns;
    a.jmp("end");
    for (int i = 0; i < 7; ++i) {
        fns.push_back("f" + std::to_string(i));
        a.label(fns.back());
        a.addi(1, 1, i);
        a.ret();
    }
    a.label("end");
    a.halt();
    a.annotateIndirect(site, fns);
    prog::Program p;
    p.addModule(a.finalize("agg", "main"));

    Fixture f(std::move(p), ValidationMode::Aggressive);
    TableReader reader(f.mem, f.tableBase, f.vault);
    const auto &mod = f.program.main();

    const auto *callbb = f.cfg.blockAtStart(mod.base);
    ASSERT_NE(callbb, nullptr);
    const u32 hash = bbHash(mod, *callbb, 5);
    const LookupResult clean = reader.lookup(callbb->term, hash, mod.base);
    ASSERT_TRUE(clean.found);
    EXPECT_EQ(clean.targets.size(), 7u);
    // memAddrs[0] is the primary record, [1] its first continuation.
    ASSERT_GE(clean.memAddrs.size(), 2u);
    const Addr cont_kind_byte = clean.memAddrs[1];

    for (unsigned mask = 1; mask < 256; ++mask) {
        f.mem.write8(cont_kind_byte,
                     f.mem.read8(cont_kind_byte) ^ static_cast<u8>(mask));
        const LookupResult res =
            reader.lookup(callbb->term, hash, mod.base);
        // However the record decodes, one walked record may contribute
        // at most its physical slots: 2 inline on the primary plus 4
        // per continuation visited.
        EXPECT_LE(res.targets.size() + res.retPreds.size(),
                  2 + 4 * res.memAddrs.size())
            << "mask 0x" << std::hex << mask;
        f.mem.write8(cont_kind_byte,
                     f.mem.read8(cont_kind_byte) ^ static_cast<u8>(mask));
    }

    // Restored table reads clean again.
    const LookupResult after = reader.lookup(callbb->term, hash, mod.base);
    EXPECT_EQ(after.targets.size(), 7u);
}

} // namespace
} // namespace rev::sig
