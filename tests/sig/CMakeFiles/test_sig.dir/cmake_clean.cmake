file(REMOVE_RECURSE
  "CMakeFiles/test_sig.dir/sigstore_test.cpp.o"
  "CMakeFiles/test_sig.dir/sigstore_test.cpp.o.d"
  "CMakeFiles/test_sig.dir/table_test.cpp.o"
  "CMakeFiles/test_sig.dir/table_test.cpp.o.d"
  "test_sig"
  "test_sig.pdb"
  "test_sig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
