# CMake generated Testfile for 
# Source directory: /root/repo/tests/sig
# Build directory: /root/repo/tests/sig
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/sig/test_sig[1]_include.cmake")
