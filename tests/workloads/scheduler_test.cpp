/**
 * @file
 * Preemptive-scheduler workload tests: the generated guest-side
 * scheduler must be deterministic, run to completion under full REV
 * validation with zero violations, actually multiplex its guest
 * threads (every context block accumulates ticks), and respond to the
 * hartid word with a rotated — but still fully validated — schedule.
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "workloads/generator.hpp"
#include "workloads/scheduler.hpp"

namespace rev::workloads
{
namespace
{

SchedulerProfile
tinySched()
{
    SchedulerProfile p = schedulerProfileFor(schedStormProfile());
    p.work.name = "tiny-sched";
    p.work.numFunctions = 60;
    p.slices = 32;
    p.sliceIters = 6;
    return p;
}

TEST(SchedulerWorkload, DeterministicForSameSeed)
{
    const auto a = generateSchedulerWorkload(tinySched());
    const auto b = generateSchedulerWorkload(tinySched());
    EXPECT_EQ(a.main().image, b.main().image);
}

TEST(SchedulerWorkload, RunsToHaltUnderFullValidation)
{
    const prog::Program p = generateSchedulerWorkload(tinySched());
    core::SimConfig cfg;
    core::Simulator sim(p, cfg);
    const core::SimResult r = sim.run();
    EXPECT_TRUE(r.run.halted);
    EXPECT_FALSE(r.run.violation.has_value());
    EXPECT_GT(r.validation.bbValidated, 0u);
}

TEST(SchedulerWorkload, EveryThreadReceivesQuanta)
{
    const SchedulerProfile prof = tinySched();
    const prog::Program p = generateSchedulerWorkload(prof);
    core::SimConfig cfg;
    core::Simulator sim(p, cfg);
    const core::SimResult r = sim.run();
    ASSERT_TRUE(r.run.halted);

    // The tick counters live at tcb+24 (+32 per thread); the tcb label
    // is the first thing in the data section.
    const prog::Module &m = p.main();
    const Addr tcb = m.base + m.codeSize;
    const Addr aligned = (tcb + 7) & ~Addr{7};
    u64 total = 0;
    for (unsigned t = 0; t < prof.numThreads; ++t) {
        const u64 ticks = sim.memory().read64(aligned + t * 32 + 24);
        EXPECT_GT(ticks, 0u) << "thread " << t << " never scheduled";
        total += ticks;
    }
    EXPECT_EQ(total, prof.slices);
}

TEST(SchedulerWorkload, HartidWordRotatesTheSchedule)
{
    const prog::Program p = generateSchedulerWorkload(tinySched());

    core::SimConfig plain;
    core::Simulator a(p, plain);
    const core::SimResult ra = a.run();

    // Publish a nonzero hartid the way the Simulator does on core 1+.
    core::SimConfig cfg;
    core::Simulator b(p, cfg);
    b.memory().write64(kSchedCoreIdWord, 1);
    const core::SimResult rb = b.run();

    EXPECT_TRUE(ra.run.halted);
    EXPECT_TRUE(rb.run.halted);
    EXPECT_FALSE(rb.run.violation.has_value())
        << "rotated schedule must stay inside validated code";
    EXPECT_NE(ra.run.committedBranches, rb.run.committedBranches)
        << "hartid must actually change the dynamic control flow";
}

TEST(SchedulerWorkload, BuildProgramDispatchesByName)
{
    WorkloadProfile sched = schedStormProfile();
    EXPECT_TRUE(isSchedulerWorkload(sched.name));
    EXPECT_TRUE(isSchedulerWorkload("rt-sched"));
    EXPECT_FALSE(isSchedulerWorkload("mcf"));

    // Name-dispatch must select the scheduler generator: the scheduler
    // binary differs from what the plain generator makes of the same
    // profile.
    const prog::Program a = buildProgram(sched);
    const prog::Program b = generateWorkload(sched);
    EXPECT_NE(a.main().image, b.main().image);
    EXPECT_EQ(a.main().image,
              generateSchedulerWorkload(schedulerProfileFor(sched))
                  .main()
                  .image);
}

} // namespace
} // namespace rev::workloads
