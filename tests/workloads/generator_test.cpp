/**
 * @file
 * Workload generator tests: generated programs must be well-formed,
 * deterministic, analyzable, and runnable under full REV validation.
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "program/cfg.hpp"
#include "program/interp.hpp"
#include "workloads/generator.hpp"

namespace rev::workloads
{
namespace
{

WorkloadProfile
tinyProfile()
{
    WorkloadProfile p;
    p.name = "tiny";
    p.seed = 7;
    p.numFunctions = 64;
    p.entryFunctions = 4;
    p.callSpan = 16;
    p.hotReach = 16;
    p.mainIterations = 50;
    return p;
}

TEST(Generator, DeterministicForSameSeed)
{
    auto a = generateWorkload(tinyProfile());
    auto b = generateWorkload(tinyProfile());
    EXPECT_EQ(a.main().image, b.main().image);
}

TEST(Generator, DifferentSeedsDiffer)
{
    auto p1 = tinyProfile();
    auto p2 = tinyProfile();
    p2.seed = 8;
    EXPECT_NE(generateWorkload(p1).main().image,
              generateWorkload(p2).main().image);
}

TEST(Generator, CodeDecodesAndCfgBuilds)
{
    auto p = generateWorkload(tinyProfile());
    prog::Cfg cfg = prog::buildCfg(p.main()); // fatal on bad code
    EXPECT_GT(cfg.blocks().size(), 100u);
}

TEST(Generator, RunsToHaltFunctionally)
{
    auto p = generateWorkload(tinyProfile());
    SparseMemory mem;
    p.loadInto(mem);
    prog::Machine machine(p, mem);
    const u64 executed = prog::runToHalt(machine, 50'000'000);
    EXPECT_TRUE(machine.halted()) << "executed " << executed;
}

TEST(Generator, CleanUnderFullRevValidation)
{
    auto p = generateWorkload(tinyProfile());
    core::SimConfig cfg;
    cfg.core.maxInstrs = 50'000;
    core::Simulator sim(p, cfg);
    const core::SimResult r = sim.run();
    EXPECT_FALSE(r.run.violation.has_value())
        << r.run.violation->reason;
    EXPECT_GT(r.rev.bbValidated, 100u);
}

TEST(Generator, AnnotatesEveryComputedSite)
{
    auto p = generateWorkload(tinyProfile());
    prog::Cfg cfg = prog::buildCfg(p.main());
    for (const auto &bb : cfg.blocks()) {
        if (termIsComputed(bb.kind)) {
            EXPECT_FALSE(bb.succs.empty())
                << "unannotated computed site at 0x" << std::hex << bb.term;
        }
    }
}

TEST(Generator, RejectsBadProfiles)
{
    auto p = tinyProfile();
    p.entryFunctions = 3; // not a power of two
    EXPECT_THROW(generateWorkload(p), FatalError);

    auto q = tinyProfile();
    q.numFunctions = 2; // fewer than entry functions
    EXPECT_THROW(generateWorkload(q), FatalError);

    auto r = tinyProfile();
    r.dataFootprint = 3000; // not a power of two
    EXPECT_THROW(generateWorkload(r), FatalError);
}

TEST(Generator, HotReachBoundsWorkingSet)
{
    auto narrow = tinyProfile();
    narrow.numFunctions = 512;
    narrow.hotReach = 8;
    narrow.mainIterations = 400;
    auto wide = narrow;
    wide.hotReach = 0;
    wide.gateSpread = 0.3;

    auto run_unique = [](const WorkloadProfile &prof) {
        auto p = generateWorkload(prof);
        core::SimConfig cfg;
        cfg.withRev = false;
        cfg.core.maxInstrs = 150'000;
        core::Simulator sim(p, cfg);
        return sim.run().run.uniqueBranches;
    };
    EXPECT_LT(run_unique(narrow), run_unique(wide));
}

TEST(Generator, LoopFracAmplifiesLocality)
{
    // Compare unique-branch coverage at equal instruction budgets: loops
    // re-execute the same blocks, so coverage must drop. Use a larger
    // program so the property is not seed noise.
    auto loopy = tinyProfile();
    loopy.numFunctions = 256;
    loopy.hotReach = 64;
    loopy.callSpan = 32;
    loopy.loopFrac = 0.7;
    loopy.loopIters = 30;
    auto flat = loopy;
    flat.loopFrac = 0.0;

    auto run_unique_per_instr = [](const WorkloadProfile &prof) {
        auto p = generateWorkload(prof);
        core::SimConfig cfg;
        cfg.withRev = false;
        cfg.core.maxInstrs = 100'000;
        core::Simulator sim(p, cfg);
        const auto r = sim.run().run;
        return static_cast<double>(r.committedBranches) / r.instrs;
    };
    // Loops re-execute the same branches: fewer distinct... branch density
    // per instruction is similar, but unique coverage drops. Compare
    // coverage directly:
    auto run_unique = [](const WorkloadProfile &prof) {
        auto p = generateWorkload(prof);
        core::SimConfig cfg;
        cfg.withRev = false;
        cfg.core.maxInstrs = 100'000;
        core::Simulator sim(p, cfg);
        return sim.run().run.uniqueBranches;
    };
    (void)run_unique_per_instr;
    EXPECT_LT(run_unique(loopy), run_unique(flat));
}

} // namespace
} // namespace rev::workloads
