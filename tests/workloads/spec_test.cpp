/**
 * @file
 * SPEC 2006 stand-in profile tests: the calibrated static anchors of
 * Sec. VIII must hold (block-count ordering, instructions per block,
 * successor ordering).
 */

#include <gtest/gtest.h>

#include <map>

#include "common/logging.hpp"
#include "program/cfg.hpp"
#include "workloads/generator.hpp"

namespace rev::workloads
{
namespace
{

/** Build CFG stats for one benchmark (cached across tests). */
const prog::CfgStats &
statsFor(const std::string &name)
{
    static std::map<std::string, prog::CfgStats> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        auto p = generateWorkload(specProfile(name));
        it = cache.emplace(name, prog::buildCfg(p.main()).stats()).first;
    }
    return it->second;
}

TEST(Spec, FifteenBenchmarks)
{
    EXPECT_EQ(spec2006Profiles().size(), 15u);
}

TEST(Spec, LookupByName)
{
    EXPECT_EQ(specProfile("gcc").name, "gcc");
    EXPECT_THROW(specProfile("nonesuch"), FatalError);
}

TEST(Spec, UniqueSeedsAndNames)
{
    std::set<std::string> names;
    std::set<u64> seeds;
    for (const auto &p : spec2006Profiles()) {
        EXPECT_TRUE(names.insert(p.name).second);
        EXPECT_TRUE(seeds.insert(p.seed).second);
    }
}

TEST(Spec, McfIsSmallestGamessIsLargest)
{
    // Paper: BB counts range from 20266 (mcf) to 92218 (gamess).
    const auto mcf = statsFor("mcf");
    const auto gamess = statsFor("gamess");
    for (const auto &p : spec2006Profiles()) {
        const auto s = statsFor(p.name);
        EXPECT_GE(s.numBlocks, mcf.numBlocks) << p.name;
        EXPECT_LE(s.numBlocks, gamess.numBlocks) << p.name;
    }
    // Same order of magnitude as the paper's anchors.
    EXPECT_GT(mcf.numBlocks, 10'000u);
    EXPECT_LT(mcf.numBlocks, 30'000u);
    EXPECT_GT(gamess.numBlocks, 70'000u);
    EXPECT_LT(gamess.numBlocks, 130'000u);
}

TEST(Spec, InstrsPerBlockRange)
{
    // Paper: 5.5 (mcf) .. 10.02 (gamess); mcf shortest blocks.
    const auto mcf = statsFor("mcf");
    const auto gamess = statsFor("gamess");
    EXPECT_LT(mcf.avgInstrsPerBlock, gamess.avgInstrsPerBlock);
    for (const auto &p : spec2006Profiles()) {
        const auto s = statsFor(p.name);
        EXPECT_GT(s.avgInstrsPerBlock, 4.0) << p.name;
        EXPECT_LT(s.avgInstrsPerBlock, 12.0) << p.name;
    }
}

TEST(Spec, SoplexHasFewestSuccessors)
{
    // Paper: successors per block range from 1.68 (soplex) upward.
    const auto soplex = statsFor("soplex");
    for (const auto &p : spec2006Profiles()) {
        if (p.name == "soplex")
            continue;
        EXPECT_LE(soplex.avgSuccsPerBlock,
                  statsFor(p.name).avgSuccsPerBlock + 0.02)
            << p.name;
    }
}

TEST(Spec, ComputedSitesAreaSmallFractionOfBranches)
{
    // Paper Sec. V.D: dynamic (computed) branches are ~10% of branch
    // sites on average.
    for (const auto &p : spec2006Profiles()) {
        const auto s = statsFor(p.name);
        const double frac = static_cast<double>(s.numComputedSites) /
                            static_cast<double>(s.numBranchInstrs);
        EXPECT_LT(frac, 0.2) << p.name;
    }
}

} // namespace
} // namespace rev::workloads
