# CMake generated Testfile for 
# Source directory: /root/repo/tests/attacks
# Build directory: /root/repo/tests/attacks
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/attacks/test_attacks[1]_include.cmake")
