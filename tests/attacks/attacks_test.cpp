/**
 * @file
 * Table 1 reproduction: every attack class succeeds on the unprotected
 * machine, is detected by REV, and its tainted stores never reach memory.
 */

#include <gtest/gtest.h>

#include "attacks/attack.hpp"

namespace rev::attacks
{
namespace
{

using sig::ValidationMode;

core::SimConfig
cfgFor(ValidationMode mode, bool with_rev)
{
    core::SimConfig cfg;
    cfg.mode = mode;
    cfg.withRev = with_rev;
    return cfg;
}

struct Case
{
    std::size_t attackIdx;
    ValidationMode mode;
};

class Table1 : public ::testing::TestWithParam<Case>
{
};

TEST_P(Table1, AttackSucceedsWithoutRev)
{
    auto attacks = makeAllAttacks();
    Attack &atk = *attacks[GetParam().attackIdx];
    const AttackOutcome out =
        atk.execute(cfgFor(GetParam().mode, /*with_rev=*/false));
    EXPECT_TRUE(out.triggered) << atk.name();
    EXPECT_FALSE(out.detected) << atk.name();
    EXPECT_TRUE(out.succeeded) << atk.name() << ": attack had no effect";
}

TEST_P(Table1, RevDetectsAndContains)
{
    auto attacks = makeAllAttacks();
    Attack &atk = *attacks[GetParam().attackIdx];
    const ValidationMode mode = GetParam().mode;
    const AttackOutcome out = atk.execute(cfgFor(mode, /*with_rev=*/true));
    EXPECT_TRUE(out.triggered) << atk.name();
    if (atk.detectableIn(mode)) {
        EXPECT_TRUE(out.detected)
            << atk.name() << " undetected in mode "
            << sig::modeName(mode);
        EXPECT_FALSE(out.succeeded)
            << atk.name() << ": tainted state reached memory";
        EXPECT_FALSE(out.reason.empty());
    } else {
        // Documented blind spot (e.g., pure code substitution under
        // CFI-only validation).
        EXPECT_FALSE(out.detected);
    }
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    const auto n = makeAllAttacks().size();
    for (std::size_t i = 0; i < n; ++i)
        for (auto mode : {ValidationMode::Full, ValidationMode::Aggressive,
                          ValidationMode::CfiOnly})
            cases.push_back({i, mode});
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    auto attacks = makeAllAttacks();
    std::string name = attacks[info.param.attackIdx]->name();
    for (auto &c : name)
        if (c == '-')
            c = '_';
    switch (info.param.mode) {
      case ValidationMode::Full: name += "_Full"; break;
      case ValidationMode::Aggressive: name += "_Aggressive"; break;
      case ValidationMode::CfiOnly: name += "_CfiOnly"; break;
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllAttacksAllModes, Table1,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(Attacks, AllAttackClassesPresent)
{
    // Table 1's six rows plus the intro's illegal-dynamic-linking class.
    const auto attacks = makeAllAttacks();
    ASSERT_EQ(attacks.size(), 7u);
    for (const auto &atk : attacks) {
        EXPECT_STRNE(atk->name(), "");
        EXPECT_STRNE(atk->table1Mechanism(), "");
    }
}

TEST(Attacks, DetectabilityMatrixIsTaxonomyDriven)
{
    // Pin the full class x mode detectability matrix (Sec. V.D). Only
    // pure code substitution under CFI-only validation is blind: no
    // basic-block hashes are kept, and the control-flow shape is intact.
    using TC = TamperClass;
    const ValidationMode kModes[] = {ValidationMode::Full,
                                     ValidationMode::Aggressive,
                                     ValidationMode::CfiOnly};
    for (auto mode : kModes) {
        const bool hashed = mode != ValidationMode::CfiOnly;
        EXPECT_EQ(tamperDetectableIn(TC::CodeSubstitution, mode), hashed)
            << sig::modeName(mode);
        EXPECT_TRUE(tamperDetectableIn(TC::ControlFlowHijack, mode))
            << sig::modeName(mode);
        EXPECT_TRUE(tamperDetectableIn(TC::ForeignCode, mode))
            << sig::modeName(mode);
        EXPECT_TRUE(tamperDetectableIn(TC::SignatureTamper, mode))
            << sig::modeName(mode);
    }
    // Every concrete attack's detectableIn() must follow its class —
    // there is no per-attack override path.
    for (const auto &atk : makeAllAttacks())
        for (auto mode : kModes)
            EXPECT_EQ(atk->detectableIn(mode),
                      tamperDetectableIn(atk->tamperClass(), mode))
                << atk->name() << " in " << sig::modeName(mode);
}

TEST(Attacks, OnlyDirectInjectionEvadesCfiOnly)
{
    const auto attacks = makeAllAttacks();
    int blind = 0;
    for (const auto &atk : attacks)
        blind += !atk->detectableIn(ValidationMode::CfiOnly);
    EXPECT_EQ(blind, 1);
}

} // namespace
} // namespace rev::attacks
