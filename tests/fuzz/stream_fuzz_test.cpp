/**
 * @file
 * Measurement-stream wire-format fuzzing: the prover/verifier codec of
 * the attestation split must be lossless on everything a
 * MeasurementSource can emit (header + events -> bytes -> same header +
 * events) and total on arbitrary input. Truncating a valid session at
 * ANY byte boundary must answer NeedMore — honest in-flight sessions
 * are never misread as garbage — and mutated bytes must never crash the
 * decoder or stall its progress.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "validate/stream.hpp"

namespace rev::validate
{
namespace
{

StreamHeader
randomHeader(Rng &rng)
{
    StreamHeader h;
    h.backend = static_cast<Backend>(rng.below(3));
    h.mode = static_cast<sig::ValidationMode>(rng.below(3));
    h.returnValidation = static_cast<u8>(rng.below(3));
    h.hashRounds = static_cast<u32>(rng.range(1, 16));
    h.bufferEntries = static_cast<u32>(rng.below(0x10000));
    h.entryBytes = static_cast<u32>(rng.below(0x10000));
    h.shadowStackEntries = static_cast<u32>(rng.below(0x10000));
    h.startEnabled = rng.chance(0.9);
    return h;
}

MeasurementEvent
randomEvent(Rng &rng)
{
    MeasurementEvent ev;
    switch (rng.below(16)) {
      case 0:
        ev.kind = EventKind::Syscall;
        ev.service = static_cast<u8>(rng.below(3));
        break;
      case 1:
        ev.kind = EventKind::SpillMark;
        ev.spillBytes = rng.below(1u << 20);
        break;
      default:
        ev.kind = EventKind::Block;
        ev.start = rng.next() >> rng.below(40);
        ev.term = ev.start + rng.below(256);
        ev.end = ev.term + rng.range(1, 8);
        // Half the blocks fall through (target elided on the wire).
        ev.target = rng.chance(0.5) ? ev.end : rng.next() >> rng.below(40);
        ev.termClass = static_cast<isa::InstrClass>(
            rng.below(static_cast<u64>(isa::InstrClass::Halt) + 1));
        ev.artificialSplit = rng.chance(0.2);
        ev.codeDigest = static_cast<u32>(rng.next());
        break;
    }
    return ev;
}

MeasurementEvent
randomEnd(Rng &rng, u64 blocks)
{
    MeasurementEvent ev;
    ev.kind = EventKind::End;
    ev.blockCount = blocks;
    ev.hasChain = rng.chance(0.5);
    if (ev.hasChain)
        for (u8 &b : ev.chain)
            b = static_cast<u8>(rng.next());
    return ev;
}

/** Encode a random but well-formed session; events returned via @p out. */
std::vector<u8>
randomSession(Rng &rng, StreamHeader *hdr, std::vector<MeasurementEvent> *out)
{
    StreamWriter w;
    *hdr = randomHeader(rng);
    w.onHeader(*hdr);
    out->clear();
    u64 blocks = 0;
    const u64 n = rng.below(64);
    for (u64 i = 0; i < n; ++i) {
        MeasurementEvent ev = randomEvent(rng);
        blocks += ev.kind == EventKind::Block;
        w.onEvent(ev);
        out->push_back(ev);
    }
    if (rng.chance(0.9)) {
        MeasurementEvent end = randomEnd(rng, blocks);
        w.onEvent(end);
        out->push_back(end);
    }
    return w.take();
}

class StreamFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(StreamFuzz, SessionsRoundTripLosslessly)
{
    Rng rng(GetParam());
    for (int t = 0; t < 500; ++t) {
        StreamHeader hdr;
        std::vector<MeasurementEvent> events;
        const std::vector<u8> bytes = randomSession(rng, &hdr, &events);

        StreamReader r;
        StreamHeader back;
        ASSERT_EQ(r.tryHeader(bytes.data(), bytes.size(), &back),
                  StreamReader::Status::Ok);
        ASSERT_EQ(back, hdr);
        for (const MeasurementEvent &want : events) {
            MeasurementEvent got;
            ASSERT_EQ(r.tryNext(bytes.data(), bytes.size(), &got),
                      StreamReader::Status::Ok);
            ASSERT_EQ(got, want);
        }
        MeasurementEvent extra;
        ASSERT_EQ(r.tryNext(bytes.data(), bytes.size(), &extra),
                  StreamReader::Status::NeedMore);
        ASSERT_EQ(r.offset(), bytes.size());
    }
}

TEST_P(StreamFuzz, TruncationAlwaysReadsAsNeedMore)
{
    Rng rng(GetParam());
    for (int t = 0; t < 100; ++t) {
        StreamHeader hdr;
        std::vector<MeasurementEvent> events;
        const std::vector<u8> bytes = randomSession(rng, &hdr, &events);
        for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
            StreamReader r;
            StreamHeader h;
            StreamReader::Status st = r.tryHeader(bytes.data(), cut, &h);
            ASSERT_NE(st, StreamReader::Status::Malformed) << cut;
            if (st != StreamReader::Status::Ok)
                continue;
            MeasurementEvent ev;
            std::size_t prev = r.offset();
            while ((st = r.tryNext(bytes.data(), cut, &ev)) ==
                   StreamReader::Status::Ok) {
                ASSERT_GT(r.offset(), prev) << "decoder stalled";
                prev = r.offset();
            }
            ASSERT_EQ(st, StreamReader::Status::NeedMore) << cut;
        }
    }
}

TEST_P(StreamFuzz, DecoderIsTotalOnMutatedInput)
{
    Rng rng(GetParam());
    for (int t = 0; t < 500; ++t) {
        StreamHeader hdr;
        std::vector<MeasurementEvent> events;
        std::vector<u8> bytes = randomSession(rng, &hdr, &events);
        switch (rng.below(3)) {
          case 0: // corrupt bytes in place
            for (u64 i = rng.range(1, 16); i-- > 0 && !bytes.empty();)
                bytes[rng.below(bytes.size())] =
                    static_cast<u8>(rng.next());
            break;
          case 1: // splice a second session fragment on the end
            bytes.resize(rng.below(bytes.size() + 1));
            {
                StreamHeader h2;
                std::vector<MeasurementEvent> e2;
                const std::vector<u8> more = randomSession(rng, &h2, &e2);
                bytes.insert(bytes.end(), more.begin(), more.end());
            }
            break;
          case 2: // pure noise
            bytes.resize(rng.below(512));
            for (u8 &b : bytes)
                b = static_cast<u8>(rng.next());
            break;
        }
        // Must never crash and must always make progress or stop.
        StreamReader r;
        StreamHeader h;
        if (r.tryHeader(bytes.data(), bytes.size(), &h) !=
            StreamReader::Status::Ok)
            continue;
        MeasurementEvent ev;
        std::size_t prev = r.offset();
        StreamReader::Status st;
        while ((st = r.tryNext(bytes.data(), bytes.size(), &ev)) ==
               StreamReader::Status::Ok) {
            ASSERT_GT(r.offset(), prev) << "decoder stalled";
            prev = r.offset();
        }
        ASSERT_LE(r.offset(), bytes.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamFuzz, ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace rev::validate
