/**
 * @file
 * Mutation fuzzing — the central security property (Requirement R0):
 * ANY single-bit corruption of code that subsequently executes must be
 * detected by full validation, and the corrupted execution must never
 * taint memory beyond the rollback boundary.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/simulator.hpp"
#include "program/interp.hpp"
#include "workloads/generator.hpp"

namespace rev
{
namespace
{

workloads::WorkloadProfile
smallProfile(u64 seed)
{
    workloads::WorkloadProfile p;
    p.name = "mut" + std::to_string(seed);
    p.seed = seed;
    p.numFunctions = 64;
    p.entryFunctions = 4;
    p.callSpan = 16;
    p.hotReach = 16;
    p.mainIterations = 100;
    return p;
}

/** Byte offsets (module-relative) of code executed by a clean run. */
std::vector<u64>
executedCodeBytes(const prog::Program &program, u64 budget)
{
    SparseMemory mem;
    program.loadInto(mem);
    prog::Machine machine(program, mem);
    std::set<u64> offsets;
    const auto &mod = program.main();
    u64 steps = 0;
    while (!machine.halted() && steps < budget) {
        const Addr pc = machine.pc();
        const auto rec = machine.step();
        if (rec.invalid)
            break;
        for (unsigned b = 0; b < rec.ins.length(); ++b)
            offsets.insert(pc - mod.base + b);
        ++steps;
    }
    return {offsets.begin(), offsets.end()};
}

class MutationFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(MutationFuzz, EveryExecutedBitFlipIsDetected)
{
    const auto prof = smallProfile(GetParam());
    const prog::Program program = workloads::generateWorkload(prof);
    const auto executed = executedCodeBytes(program, 50'000);
    ASSERT_GT(executed.size(), 1000u);

    Rng rng(GetParam() * 31 + 7);
    int detected = 0;
    const int trials = 25;
    for (int t = 0; t < trials; ++t) {
        const u64 off = executed[rng.below(executed.size())];
        const u8 bit = static_cast<u8>(1u << rng.below(8));

        core::SimConfig cfg;
        cfg.core.maxInstrs = 120'000; // bound runaway corrupted control flow
        core::Simulator sim(program, cfg);
        const Addr victim = program.main().base + off;
        sim.memory().write8(victim, sim.memory().read8(victim) ^ bit);
        sim.engine()->invalidateCodeCache();

        const core::SimResult r = sim.run();
        if (r.run.violation)
            ++detected;
        else
            ADD_FAILURE() << "undetected flip: offset 0x" << std::hex
                          << off << " bit " << int(bit);
    }
    EXPECT_EQ(detected, trials);
}

TEST_P(MutationFuzz, DispatchTableCorruptionIsDetected)
{
    const auto prof = smallProfile(GetParam() ^ 0xfeed);
    const prog::Program program = workloads::generateWorkload(prof);
    const Addr table = program.main().symbol("entry_table");

    // The sticky dispatcher reads low-indexed slots first; slot 0 is
    // always consulted. Redirect it far outside known code.
    for (int bit : {20, 21}) {
        core::SimConfig cfg;
        cfg.core.maxInstrs = 120'000;
        core::Simulator sim(program, cfg);
        sim.memory().write64(table,
                             sim.memory().read64(table) ^ (1ull << bit));
        const core::SimResult r = sim.run();
        EXPECT_TRUE(r.run.violation.has_value()) << "bit " << bit;
    }
}

TEST_P(MutationFuzz, SignatureTableCorruptionNeverHelpsAttacker)
{
    // Corrupting the encrypted reference data can only cause false
    // rejections, never acceptance of modified code.
    const auto prof = smallProfile(GetParam() ^ 0xbeef);
    const prog::Program program = workloads::generateWorkload(prof);

    Rng rng(GetParam() * 13);
    core::SimConfig cfg;
    cfg.core.maxInstrs = 60'000;
    core::Simulator sim(program, cfg);
    const auto &ms = sim.sigStore()->moduleSigs().front();

    // Corrupt several random bytes of the encrypted body.
    for (int i = 0; i < 8; ++i) {
        const Addr a = ms.tableBase + sig::kHeaderBytes +
                       rng.below(ms.stats.sizeBytes - sig::kHeaderBytes);
        sim.memory().write8(a, sim.memory().read8(a) ^ 0xff);
    }
    const core::SimResult r = sim.run();
    // Either the run trips over a corrupted reference (false rejection,
    // fail-closed) or the corrupted records were never consulted; memory
    // was never tainted by unvalidated code either way.
    if (!r.run.violation) {
        EXPECT_TRUE(r.run.halted || r.run.instrs >= cfg.core.maxInstrs);
    }
}

TEST(TableWalkerRobustness, CorruptChainsNeverHang)
{
    // Storm of random table-body corruptions: every lookup must
    // terminate (bounded walks) and either fail or return data -- never
    // loop on a tampered "next" chain.
    const auto prof = smallProfile(7);
    const prog::Program program = workloads::generateWorkload(prof);
    crypto::KeyVault vault(1);
    sig::SigStore store(program, sig::ValidationMode::Full, vault);
    SparseMemory mem;
    store.loadInto(mem);
    const auto &ms = store.moduleSigs().front();

    Rng rng(424242);
    for (int storm = 0; storm < 40; ++storm) {
        for (int i = 0; i < 64; ++i) {
            const Addr a =
                ms.tableBase + sig::kHeaderBytes +
                rng.below(ms.stats.sizeBytes - sig::kHeaderBytes);
            mem.write8(a, static_cast<u8>(rng.next()));
        }
        sig::TableReader reader(mem, ms.tableBase, vault);
        if (!reader.valid())
            continue;
        for (int q = 0; q < 50; ++q) {
            const auto &bb =
                ms.cfg.blocks()[rng.below(ms.cfg.blocks().size())];
            (void)reader.lookup(bb.term,
                                sig::bbHash(*ms.module, bb, 5),
                                ms.module->base); // must terminate
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Values(101u, 202u, 303u));

} // namespace
} // namespace rev
