/**
 * @file
 * Whole-system fuzzing over randomized workload profiles:
 *  - REV never fires on a legitimate execution (no false positives),
 *  - the timing core's architectural results equal the plain
 *    interpreter's (functional equivalence),
 *  - determinism across repeated simulations.
 */

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "program/interp.hpp"
#include "workloads/generator.hpp"

namespace rev
{
namespace
{

workloads::WorkloadProfile
randomProfile(u64 seed)
{
    Rng rng(seed * 77 + 5);
    workloads::WorkloadProfile p;
    p.name = "fuzz" + std::to_string(seed);
    p.seed = seed;
    p.numFunctions = 48 + static_cast<unsigned>(rng.below(200));
    p.entryFunctions = 1u << (1 + rng.below(3)); // 2..8
    p.minConstructs = 2 + static_cast<unsigned>(rng.below(3));
    p.maxConstructs = p.minConstructs + 1 +
                      static_cast<unsigned>(rng.below(4));
    p.straightLen = 3 + static_cast<unsigned>(rng.below(6));
    p.callSitesPerFn = 1 + static_cast<unsigned>(rng.below(3));
    p.callSpan = 8 + static_cast<unsigned>(rng.below(60));
    p.callProb = 0.2 + rng.uniform() * 0.4;
    p.gateSpread = rng.uniform() * 0.3;
    p.hotReach = 8 + static_cast<unsigned>(rng.below(40));
    p.indirectFnFrac = rng.uniform() * 0.3;
    p.branchBias = 0.6 + rng.uniform() * 0.35;
    p.loopFrac = rng.uniform() * 0.5;
    p.loopIters = 2 + static_cast<unsigned>(rng.below(16));
    p.fpFrac = rng.uniform() * 0.2;
    p.mulFrac = rng.uniform() * 0.1;
    p.loadFrac = rng.uniform() * 0.25;
    p.storeFrac = rng.uniform() * 0.12;
    p.dataFootprint = 1u << (16 + rng.below(8)); // 64 KB .. 8 MB
    p.dataStride = rng.chance(0.5)
                       ? 0
                       : static_cast<unsigned>(8 << rng.below(4));
    p.mainIterations = 200;
    return p;
}

class WorkloadFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(WorkloadFuzz, NoFalsePositivesAcrossModes)
{
    const auto prof = randomProfile(GetParam());
    const prog::Program program = workloads::generateWorkload(prof);

    for (auto mode : {sig::ValidationMode::Full,
                      sig::ValidationMode::Aggressive,
                      sig::ValidationMode::CfiOnly}) {
        core::SimConfig cfg;
        cfg.mode = mode;
        cfg.core.maxInstrs = 60'000;
        core::Simulator sim(program, cfg);
        const core::SimResult r = sim.run();
        ASSERT_FALSE(r.run.violation.has_value())
            << "profile seed " << GetParam() << " mode "
            << sig::modeName(mode) << ": " << r.run.violation->reason;
        EXPECT_GT(r.rev.bbValidated + 1, 0u);
    }
}

TEST_P(WorkloadFuzz, TimingCoreMatchesInterpreter)
{
    const auto prof = randomProfile(GetParam() ^ 0x5555);
    const prog::Program program = workloads::generateWorkload(prof);

    // DUT: the full timing core with REV (stops at a block boundary at
    // or after the budget).
    core::SimConfig cfg;
    cfg.core.maxInstrs = 60'000;
    core::Simulator sim(program, cfg);
    const core::SimResult r = sim.run();
    ASSERT_FALSE(r.run.violation.has_value());

    // Reference: plain interpreter, stepped exactly as many instructions
    // as the core committed.
    SparseMemory ref_mem;
    program.loadInto(ref_mem);
    prog::Machine ref(program, ref_mem);
    for (u64 i = 0; i < r.run.instrs; ++i)
        ref.step();

    // Architectural state must agree exactly.
    for (unsigned reg = 0; reg < isa::kNumArchRegs; ++reg)
        ASSERT_EQ(sim.core().machine().reg(reg), ref.reg(reg))
            << "r" << reg;
    EXPECT_EQ(sim.core().machine().pc(), ref.pc());

    // Spot-check data memory (the whole footprint is too large to scan).
    Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const Addr a = prog::kHeapBase + rng.below(prof.dataFootprint);
        ASSERT_EQ(sim.memory().read8(a), ref_mem.read8(a))
            << std::hex << a;
    }
}

TEST_P(WorkloadFuzz, DeterministicCycles)
{
    const auto prof = randomProfile(GetParam() ^ 0x9999);
    const prog::Program program = workloads::generateWorkload(prof);
    core::SimConfig cfg;
    cfg.core.maxInstrs = 30'000;
    core::Simulator a(program, cfg), b(program, cfg);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.run.cycles, rb.run.cycles);
    EXPECT_EQ(ra.rev.scMisses(), rb.rev.scMisses());
    EXPECT_EQ(ra.rev.commitStallCycles, rb.rev.commitStallCycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadFuzz,
                         ::testing::Range<u64>(1, 9));

} // namespace
} // namespace rev
