file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz.dir/cache_fuzz_test.cpp.o"
  "CMakeFiles/test_fuzz.dir/cache_fuzz_test.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/campaign_codec_fuzz_test.cpp.o"
  "CMakeFiles/test_fuzz.dir/campaign_codec_fuzz_test.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/codec_fuzz_test.cpp.o"
  "CMakeFiles/test_fuzz.dir/codec_fuzz_test.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/mutation_fuzz_test.cpp.o"
  "CMakeFiles/test_fuzz.dir/mutation_fuzz_test.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/storebuffer_fuzz_test.cpp.o"
  "CMakeFiles/test_fuzz.dir/storebuffer_fuzz_test.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/stream_fuzz_test.cpp.o"
  "CMakeFiles/test_fuzz.dir/stream_fuzz_test.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/trace_fuzz_test.cpp.o"
  "CMakeFiles/test_fuzz.dir/trace_fuzz_test.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/workload_fuzz_test.cpp.o"
  "CMakeFiles/test_fuzz.dir/workload_fuzz_test.cpp.o.d"
  "test_fuzz"
  "test_fuzz.pdb"
  "test_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
