/**
 * @file
 * Frame-boundary fuzzing for the verifier's socket transport: the
 * length-framed chunk decoder must be total — any byte sequence, cut at
 * any boundary, with any mutated length prefix, either decodes, reports
 * honest truncation at EOF, or latches corrupt. It must never crash,
 * never stall, and never fabricate payload bytes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hpp"
#include "verifier/transport.hpp"

namespace rev::verifier
{
namespace
{

std::vector<u8>
randomPayload(Rng &rng, std::size_t n)
{
    std::vector<u8> v(n);
    for (u8 &b : v)
        b = static_cast<u8>(rng.next());
    return v;
}

/** Frame @p payload as the prover would: random record-ish chunks. */
std::vector<u8>
frameRandomly(Rng &rng, const std::vector<u8> &payload)
{
    std::vector<u8> framed;
    std::size_t off = 0;
    while (off < payload.size()) {
        const std::size_t n = std::min<std::size_t>(
            1 + static_cast<std::size_t>(rng.below(2000)),
            payload.size() - off);
        FrameDecoder::encodeFrame(&framed, payload.data() + off, n);
        off += n;
    }
    return framed;
}

std::vector<u8>
pushInSlivers(Rng &rng, FrameDecoder &d, const std::vector<u8> &bytes)
{
    std::vector<u8> out;
    u8 buf[333];
    std::size_t off = 0;
    while (off < bytes.size()) {
        const std::size_t n = std::min<std::size_t>(
            1 + static_cast<std::size_t>(rng.below(37)),
            bytes.size() - off);
        d.push(bytes.data() + off, n);
        off += n;
        for (std::size_t got; (got = d.take(buf, sizeof(buf))) != 0;)
            out.insert(out.end(), buf, buf + got);
    }
    return out;
}

class FrameFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(FrameFuzz, RandomChunkSplitsRoundTripLosslessly)
{
    Rng rng(GetParam());
    for (int t = 0; t < 200; ++t) {
        const std::vector<u8> payload =
            randomPayload(rng, rng.below(20000));
        const std::vector<u8> framed = frameRandomly(rng, payload);

        FrameDecoder d;
        const std::vector<u8> got = pushInSlivers(rng, d, framed);
        d.markEof();
        EXPECT_FALSE(d.corrupt());
        ASSERT_EQ(got, payload);
        EXPECT_EQ(d.pending(), 0u);
    }
}

TEST_P(FrameFuzz, TruncationAtAnyBoundaryYieldsTheDeliveredPrefix)
{
    Rng rng(GetParam());
    for (int t = 0; t < 20; ++t) {
        const std::vector<u8> payload = randomPayload(rng, 600);
        std::vector<u8> framed;
        // Fixed 100-byte frames make the expected prefix computable.
        for (std::size_t off = 0; off < payload.size(); off += 100)
            FrameDecoder::encodeFrame(&framed, payload.data() + off, 100);
        const std::size_t frameBytes = 100 + kFrameHeaderBytes;

        for (std::size_t cut = 0; cut <= framed.size(); ++cut) {
            FrameDecoder d;
            std::vector<u8> slice(framed.begin(), framed.begin() + cut);
            const std::vector<u8> got = pushInSlivers(rng, d, slice);
            d.markEof();
            // A prefix of a valid stream is truncation, never corruption.
            ASSERT_FALSE(d.corrupt()) << cut;
            // Payload streams out incrementally: every received payload
            // byte stands, only header bytes and the unsent tail vanish.
            const std::size_t wholeFrames = cut / frameBytes;
            const std::size_t inLast = cut % frameBytes;
            const std::size_t expect =
                wholeFrames * 100 +
                (inLast > kFrameHeaderBytes ? inLast - kFrameHeaderBytes
                                            : 0);
            ASSERT_EQ(got.size(), expect) << cut;
            ASSERT_TRUE(std::equal(got.begin(), got.end(),
                                   payload.begin()))
                << cut;
        }
    }
}

TEST_P(FrameFuzz, MutatedLengthPrefixesAreTotalAndNeverFabricate)
{
    Rng rng(GetParam());
    for (int t = 0; t < 300; ++t) {
        const std::vector<u8> payload =
            randomPayload(rng, 1 + rng.below(5000));
        std::vector<u8> framed = frameRandomly(rng, payload);
        // Smash a few bytes; header hits flip length prefixes.
        for (u64 i = rng.range(1, 8); i-- > 0;)
            framed[rng.below(framed.size())] = static_cast<u8>(rng.next());

        FrameDecoder d;
        const std::vector<u8> got = pushInSlivers(rng, d, framed);
        d.markEof();
        // Totality: no crash, no stall, and the decoder never invents
        // bytes beyond what framing could carry.
        EXPECT_LE(got.size(), framed.size());
        if (d.corrupt()) {
            EXPECT_EQ(d.pending(), 0u); // corrupt decoders buffer nothing
        }
    }
}

TEST_P(FrameFuzz, PureNoiseNeverCrashesTheDecoder)
{
    Rng rng(GetParam());
    for (int t = 0; t < 300; ++t) {
        const std::vector<u8> noise =
            randomPayload(rng, rng.below(4096));
        FrameDecoder d;
        const std::vector<u8> got = pushInSlivers(rng, d, noise);
        d.markEof();
        EXPECT_LE(got.size(), noise.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzz, ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace rev::verifier
