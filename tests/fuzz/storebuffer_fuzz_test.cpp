/**
 * @file
 * StoreBuffer differential fuzzing against a trivially correct reference:
 * a journal of (seq, addr, value) replayed into a plain byte map.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/random.hpp"
#include "program/interp.hpp"

namespace rev::prog
{
namespace
{

/** Reference model: full journal; reads replay everything in order. */
class RefBuffer
{
  public:
    void push(SeqNum seq, Addr addr, u64 value)
    {
        journal_.push_back({seq, addr, value});
    }

    u8
    readByte(const SparseMemory &mem, Addr addr) const
    {
        u8 v = mem.read8(addr);
        for (const auto &e : journal_) {
            if (addr >= e.addr && addr < e.addr + 8)
                v = static_cast<u8>(e.value >> (8 * (addr - e.addr)));
        }
        return v;
    }

    void
    drain(SparseMemory &mem, SeqNum up_to)
    {
        std::size_t i = 0;
        while (i < journal_.size() && journal_[i].seq <= up_to) {
            mem.write64(journal_[i].addr, journal_[i].value);
            ++i;
        }
        journal_.erase(journal_.begin(),
                       journal_.begin() + static_cast<long>(i));
    }

    void
    squash(SeqNum from)
    {
        while (!journal_.empty() && journal_.back().seq >= from)
            journal_.pop_back();
    }

  private:
    struct Entry
    {
        SeqNum seq;
        Addr addr;
        u64 value;
    };
    std::vector<Entry> journal_;
};

class StoreBufferFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(StoreBufferFuzz, MatchesReferenceUnderRandomOps)
{
    Rng rng(GetParam());
    SparseMemory mem_dut, mem_ref;
    StoreBuffer dut;
    RefBuffer ref;

    // Seed some initial memory.
    for (int i = 0; i < 32; ++i) {
        const Addr a = 0x1000 + rng.below(256);
        const u64 v = rng.next();
        mem_dut.write64(a, v);
        mem_ref.write64(a, v);
    }

    SeqNum seq = 0;
    SeqNum oldest_pending = 1;
    for (int op = 0; op < 20'000; ++op) {
        const Addr addr = 0x1000 + rng.below(300);
        switch (rng.below(10)) {
          case 0:
          case 1:
          case 2:
          case 3: { // store
            const u64 v = rng.next();
            ++seq;
            dut.push(seq, addr, v);
            ref.push(seq, addr, v);
            break;
          }
          case 4:
          case 5: { // drain a prefix
            if (seq >= oldest_pending) {
                const SeqNum up_to = oldest_pending + rng.below(
                    seq - oldest_pending + 1);
                dut.drain(mem_dut, up_to);
                ref.drain(mem_ref, up_to);
                oldest_pending = up_to + 1;
            }
            break;
          }
          case 6: { // squash a suffix
            if (seq >= oldest_pending) {
                const SeqNum from = oldest_pending + rng.below(
                    seq - oldest_pending + 1);
                dut.squash(from);
                ref.squash(from);
                seq = from - 1;
            }
            break;
          }
          default: { // read
            ASSERT_EQ(dut.readByte(mem_dut, addr),
                      ref.readByte(mem_ref, addr))
                << "op " << op << " addr " << std::hex << addr;
            break;
          }
        }
    }

    // Final drain and full comparison.
    dut.drain(mem_dut, seq);
    ref.drain(mem_ref, seq);
    for (Addr a = 0x1000; a < 0x1000 + 310; ++a)
        ASSERT_EQ(mem_dut.read8(a), mem_ref.read8(a)) << std::hex << a;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreBufferFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

} // namespace
} // namespace rev::prog
