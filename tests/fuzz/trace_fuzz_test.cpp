/**
 * @file
 * Trace encode/decode fuzz: random synthetic committed-instruction event
 * streams must round-trip exactly through the TraceRecorder's
 * varint/delta encoding and the TraceReplayer's cursor, and a Trace must
 * survive save()/load() bit-for-bit. The streams deliberately use wild
 * address jumps (forward and backward deltas), zero and large forwarding
 * distances, and every event-carrying opcode.
 */

#include <cstdio>
#include <random>

#include <gtest/gtest.h>

#include "program/trace.hpp"

namespace rev::prog
{
namespace
{

using isa::Opcode;

/** One synthetic committed instruction plus the events it must replay. */
struct Ev
{
    Opcode op;
    Addr pc = 0;
    bool taken = false;
    Addr memAddr = 0;
    u64 coverDist = 0;
    Addr nextPc = 0;
};

std::vector<Ev>
randomStream(std::mt19937_64 &rng, std::size_t n)
{
    static const Opcode kOps[] = {
        Opcode::Beq, Opcode::Bne,  Opcode::Blt,  Opcode::Bge, Opcode::Bltu,
        Opcode::Ld,  Opcode::Lb,   Opcode::Lw,   Opcode::St,  Opcode::Sb,
        Opcode::Sw,  Opcode::Ret,  Opcode::Call, Opcode::CallR,
        Opcode::JmpR, Opcode::Add, Opcode::Jmp,  Opcode::Nop,
    };
    std::uniform_int_distribution<std::size_t> pick(0, std::size(kOps) - 1);
    std::uniform_int_distribution<u64> addr(0, u64{1} << 47);
    std::uniform_int_distribution<u64> dist(0, 1u << 20);
    std::vector<Ev> evs(n);
    for (auto &e : evs) {
        e.op = kOps[pick(rng)];
        e.pc = addr(rng);
        e.taken = rng() & 1;
        e.memAddr = addr(rng);
        e.coverDist = dist(rng);
        e.nextPc = addr(rng);
    }
    return evs;
}

Trace
recordStream(const std::vector<Ev> &evs)
{
    TraceRecorder rec;
    rec.begin(0x1000, evs.size(), SplitLimits{}, /*mem_epoch=*/0);
    for (const Ev &e : evs) {
        ExecRecord r;
        r.ins.op = e.op;
        r.pc = e.pc;
        r.taken = e.taken;
        r.memAddr = e.memAddr;
        r.memSize = 8;
        r.nextPc = e.nextPc;
        rec.record(r, e.coverDist);
    }
    return rec.take();
}

void
replayAndCheck(const Trace &t, const std::vector<Ev> &evs)
{
    ASSERT_EQ(t.instrCount, evs.size());
    TraceReplayer rp(t);
    for (const Ev &e : evs) {
        SCOPED_TRACE(static_cast<int>(e.op));
        switch (e.op) {
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Bltu:
            EXPECT_EQ(rp.readTaken(), e.taken);
            break;
          case Opcode::Ld:
          case Opcode::Lb:
          case Opcode::Lw:
            EXPECT_EQ(rp.readMemAddr(), e.memAddr);
            EXPECT_EQ(rp.readCoverDist(), e.coverDist);
            break;
          case Opcode::St:
          case Opcode::Sb:
          case Opcode::Sw:
          case Opcode::Call:
            EXPECT_EQ(rp.readMemAddr(), e.memAddr);
            break;
          case Opcode::Ret:
            EXPECT_EQ(rp.readMemAddr(), e.memAddr);
            EXPECT_EQ(rp.readCoverDist(), e.coverDist);
            EXPECT_EQ(rp.readNextPc(e.pc), e.nextPc);
            break;
          case Opcode::CallR:
            EXPECT_EQ(rp.readMemAddr(), e.memAddr);
            EXPECT_EQ(rp.readNextPc(e.pc), e.nextPc);
            break;
          case Opcode::JmpR:
            EXPECT_EQ(rp.readNextPc(e.pc), e.nextPc);
            break;
          default:
            break; // no data-dependent events
        }
        rp.advance();
    }
    EXPECT_TRUE(rp.exhausted());
}

TEST(TraceFuzz, RandomStreamsRoundTripThroughEncodeDecode)
{
    std::mt19937_64 rng(20140614);
    for (int iter = 0; iter < 50; ++iter) {
        SCOPED_TRACE(iter);
        const auto evs = randomStream(rng, 1 + rng() % 400);
        const Trace t = recordStream(evs);
        replayAndCheck(t, evs);
    }
}

TEST(TraceFuzz, SaveLoadRoundTripsEveryField)
{
    std::mt19937_64 rng(77);
    const auto evs = randomStream(rng, 300);
    Trace t = recordStream(evs);
    t.complete = true;
    t.codePages = {{0x10, 3}, {0x11, 0}, {0xdeadbeef, 42}};

    const std::string path = ::testing::TempDir() + "trace_fuzz.bin";
    ASSERT_TRUE(t.save(path));
    Trace back;
    ASSERT_TRUE(back.load(path));
    std::remove(path.c_str());

    EXPECT_EQ(back.formatVersion, t.formatVersion);
    EXPECT_EQ(back.entryPc, t.entryPc);
    EXPECT_EQ(back.maxInstrs, t.maxInstrs);
    EXPECT_EQ(back.splitLimits, t.splitLimits);
    EXPECT_EQ(back.instrCount, t.instrCount);
    EXPECT_EQ(back.complete, t.complete);
    EXPECT_EQ(back.sawViolation, t.sawViolation);
    EXPECT_EQ(back.sawInvalid, t.sawInvalid);
    EXPECT_EQ(back.smcDetected, t.smcDetected);
    EXPECT_EQ(back.codePages, t.codePages);
    EXPECT_EQ(back.bytes, t.bytes);
    EXPECT_EQ(back.bits, t.bits);
    EXPECT_EQ(back.bitCount, t.bitCount);
    // And the loaded trace replays identically.
    replayAndCheck(back, evs);
}

TEST(TraceFuzz, TruncatedFileFailsToLoad)
{
    std::mt19937_64 rng(5);
    const auto evs = randomStream(rng, 100);
    Trace t = recordStream(evs);
    t.complete = true;
    const std::string path = ::testing::TempDir() + "trace_trunc.bin";
    ASSERT_TRUE(t.save(path));

    // Chop the file at various points; load must fail, never crash.
    for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{20},
                            std::size_t{60}}) {
        std::string data;
        {
            std::FILE *f = std::fopen(path.c_str(), "rb");
            ASSERT_NE(f, nullptr);
            char buf[4096];
            std::size_t got;
            while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
                data.append(buf, got);
            std::fclose(f);
        }
        ASSERT_LT(cut, data.size());
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(data.data(), 1, cut, f);
        std::fclose(f);
        Trace broken;
        EXPECT_FALSE(broken.load(path)) << "cut=" << cut;
        // Restore for the next iteration.
        f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(data.data(), 1, data.size(), f);
        std::fclose(f);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace rev::prog
