/**
 * @file
 * Codec fuzzing: the decoder must be total (never crash, never read past
 * the provided window) and exactly inverse to the encoder on every
 * decodable byte string.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hpp"
#include "isa/codec.hpp"

namespace rev::isa
{
namespace
{

class CodecFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(CodecFuzz, DecodeIsTotalAndRoundTrips)
{
    Rng rng(GetParam());
    for (int t = 0; t < 20'000; ++t) {
        u8 buf[8];
        for (auto &b : buf)
            b = static_cast<u8>(rng.next());
        const std::size_t avail = 1 + rng.below(8);

        const auto ins = decode(buf, avail);
        if (!ins)
            continue; // undecodable garbage is fine
        ASSERT_LE(ins->length(), avail);

        // Re-encoding must reproduce the consumed bytes exactly: the
        // encoding is canonical (every bit of every consumed byte is
        // captured by the decoded form).
        std::vector<u8> back;
        encode(*ins, back);
        ASSERT_EQ(back.size(), ins->length());
        EXPECT_EQ(0, std::memcmp(back.data(), buf, back.size()))
            << "trial " << t;
    }
}

TEST_P(CodecFuzz, RandomInstructionStreamsRedecode)
{
    // Encode random valid instructions back to back; sequential decode
    // must recover each one.
    Rng rng(GetParam() ^ 0xabcdef);
    std::vector<Opcode> ops;
    for (int raw = 0; raw < 256; ++raw)
        if (opcodeValid(static_cast<u8>(raw)))
            ops.push_back(static_cast<Opcode>(raw));

    std::vector<Instr> stream;
    std::vector<u8> bytes;
    for (int i = 0; i < 2000; ++i) {
        Instr ins;
        ins.op = ops[rng.below(ops.size())];
        ins.rd = static_cast<u8>(rng.below(32));
        ins.rs1 = static_cast<u8>(rng.below(32));
        ins.rs2 = static_cast<u8>(rng.below(32));
        ins.imm = static_cast<i32>(rng.next());
        if (ins.klass() == InstrClass::Syscall)
            ins.imm &= 0xff;
        // Canonicalize fields the format does not encode.
        std::vector<u8> one;
        encode(ins, one);
        const auto canon = decode(one.data(), one.size());
        ASSERT_TRUE(canon.has_value());
        stream.push_back(*canon);
        bytes.insert(bytes.end(), one.begin(), one.end());
    }

    std::size_t off = 0;
    for (const auto &expect : stream) {
        const auto got = decode(bytes.data() + off, bytes.size() - off);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, expect);
        off += got->length();
    }
    EXPECT_EQ(off, bytes.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

} // namespace
} // namespace rev::isa
