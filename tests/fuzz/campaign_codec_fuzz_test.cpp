/**
 * @file
 * Campaign-spec codec fuzzing: the JSON codec of redteam injection plans
 * and campaign specs must be lossless on everything the engine can
 * generate (seed -> plan -> JSON -> plan round-trips exactly) and total
 * on arbitrary input (malformed JSON returns false, never crashes).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/random.hpp"
#include "redteam/plan.hpp"

namespace rev::redteam
{
namespace
{

const char kNameAlphabet[] =
    "abcdefghijklmnopqrstuvwxyz0123456789-_.";

std::string
randomName(Rng &rng)
{
    std::string s;
    const u64 len = rng.range(1, 12);
    for (u64 i = 0; i < len; ++i)
        s.push_back(kNameAlphabet[rng.below(sizeof(kNameAlphabet) - 1)]);
    return s;
}

/** Any address the generator can emit; capped below the codec's 2^60
 *  hex overflow guard (campaign addresses are far smaller). */
Addr
randomAddr(Rng &rng)
{
    return rng.next() >> 4;
}

InjectionPlan
randomPlan(Rng &rng)
{
    InjectionPlan p;
    p.id = rng.next();
    p.seed = rng.next();
    p.klass = static_cast<InjectionClass>(rng.below(7));
    p.workload = randomName(rng);
    p.mode = static_cast<sig::ValidationMode>(rng.below(3));
    p.timing = randomName(rng);
    p.fireIndex = rng.next();
    p.targetAddr = randomAddr(rng);
    const u64 n = rng.below(64);
    p.payload.resize(n);
    for (u8 &b : p.payload)
        b = static_cast<u8>(rng.next());
    p.redirectTarget = randomAddr(rng);
    p.phase = static_cast<JitterPhase>(rng.below(3));
    p.watchPc = randomAddr(rng);
    return p;
}

CampaignSpec
randomSpec(Rng &rng)
{
    CampaignSpec s;
    s.seed = rng.next();
    s.injections = rng.next();
    s.instrBudget = rng.next();
    s.threads = static_cast<unsigned>(rng.below(64));
    s.disableRev = rng.chance(0.5);
    for (u64 i = rng.below(4); i-- > 0;)
        s.workloads.push_back(randomName(rng));
    for (u64 i = rng.below(4); i-- > 0;)
        s.timings.push_back(randomName(rng));
    for (u64 i = rng.below(8); i-- > 0;)
        s.classes.push_back(static_cast<InjectionClass>(rng.below(7)));
    return s;
}

class CampaignCodecFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(CampaignCodecFuzz, PlanRoundTripsLosslessly)
{
    Rng rng(GetParam());
    for (int t = 0; t < 2'000; ++t) {
        const InjectionPlan plan = randomPlan(rng);
        const std::string json = planToJson(plan);
        InjectionPlan back;
        ASSERT_TRUE(planFromJson(json, &back)) << json;
        ASSERT_EQ(plan, back) << json;
        // The fingerprint is a pure function of the canonical JSON.
        ASSERT_EQ(planFingerprint(plan), planFingerprint(back));
    }
}

TEST_P(CampaignCodecFuzz, SpecRoundTripsLosslessly)
{
    Rng rng(GetParam());
    for (int t = 0; t < 2'000; ++t) {
        const CampaignSpec spec = randomSpec(rng);
        const std::string json = specToJson(spec);
        CampaignSpec back;
        ASSERT_TRUE(specFromJson(json, &back)) << json;
        ASSERT_EQ(spec, back) << json;
    }
}

TEST_P(CampaignCodecFuzz, DecoderIsTotalOnMutatedInput)
{
    Rng rng(GetParam());
    for (int t = 0; t < 2'000; ++t) {
        std::string json = rng.chance(0.5)
                               ? planToJson(randomPlan(rng))
                               : specToJson(randomSpec(rng));
        switch (rng.below(3)) {
          case 0: // truncate
            json.resize(rng.below(json.size() + 1));
            break;
          case 1: // corrupt bytes in place
            for (u64 i = rng.range(1, 8); i-- > 0 && !json.empty();)
                json[rng.below(json.size())] =
                    static_cast<char>(rng.next());
            break;
          case 2: // splice two documents
            json += json.substr(rng.below(json.size() + 1));
            break;
        }
        // Must never crash; success is allowed (mutations can be
        // harmless), the parse result just has to be self-consistent.
        InjectionPlan plan;
        if (planFromJson(json, &plan)) {
            InjectionPlan again;
            ASSERT_TRUE(planFromJson(planToJson(plan), &again));
            ASSERT_EQ(plan, again);
        }
        CampaignSpec spec;
        if (specFromJson(json, &spec)) {
            CampaignSpec again;
            ASSERT_TRUE(specFromJson(specToJson(spec), &again));
            ASSERT_EQ(spec, again);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampaignCodecFuzz,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace rev::redteam
