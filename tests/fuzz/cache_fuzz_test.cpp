/**
 * @file
 * Cache / TLB differential fuzzing against straightforward reference
 * models (explicit per-set LRU lists).
 */

#include <gtest/gtest.h>

#include <list>
#include <map>

#include "common/random.hpp"
#include "mem/cache.hpp"
#include "mem/tlb.hpp"

namespace rev::mem
{
namespace
{

/** Reference set-associative LRU cache over std::list. */
class RefCache
{
  public:
    RefCache(unsigned sets, unsigned ways, unsigned line_shift)
        : sets_(sets), ways_(ways), shift_(line_shift), lru_(sets)
    {
    }

    bool
    access(Addr addr)
    {
        const u64 tag = addr >> shift_;
        auto &set = lru_[tag & (sets_ - 1)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == tag) {
                set.erase(it);
                set.push_front(tag);
                return true;
            }
        }
        set.push_front(tag);
        if (set.size() > ways_)
            set.pop_back();
        return false;
    }

  private:
    unsigned sets_, ways_, shift_;
    std::vector<std::list<u64>> lru_;
};

class CacheFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(CacheFuzz, HitMissSequenceMatchesReference)
{
    Rng rng(GetParam());
    // 8 KB, 4-way, 64 B lines -> 32 sets.
    SetAssocCache dut("fuzz", 8 * 1024, 4, 64);
    RefCache ref(32, 4, 6);

    for (int i = 0; i < 100'000; ++i) {
        // Skewed address distribution: hot region + cold tail.
        const Addr addr = rng.chance(0.7) ? rng.below(4 * 1024)
                                          : rng.below(1 << 20);
        const bool h1 = dut.access(addr, rng.chance(0.3));
        const bool h2 = ref.access(addr);
        ASSERT_EQ(h1, h2) << "access " << i << " addr " << std::hex
                          << addr;
    }
}

TEST_P(CacheFuzz, TlbMatchesFullyAssociativeReference)
{
    Rng rng(GetParam() ^ 0x777);
    Tlb dut("fuzz", 16);
    RefCache ref(1, 16, 12); // one set, 16 ways, page granularity

    for (int i = 0; i < 50'000; ++i) {
        const Addr addr = rng.chance(0.8) ? rng.below(24 * 4096)
                                          : rng.below(1 << 26);
        ASSERT_EQ(dut.access(addr), ref.access(addr)) << "access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz, ::testing::Values(7u, 8u, 9u));

} // namespace
} // namespace rev::mem
