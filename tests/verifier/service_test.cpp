/**
 * @file
 * VerifierService scheduling / equivalence tests: memory vs socket vs
 * condvar-fallback sessions must render bit-identical verdicts, dedup
 * on/off must not change a verdict, latched sessions must swallow (not
 * livelock) further offers, and the event loop must survive sessions
 * opened mid-flight plus notify storms from many prover threads.
 */

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "common/random.hpp"
#include "validate/stream_verifier.hpp"
#include "verifier/service.hpp"
#include "verifier_testutil.hpp"

namespace rev::verifier
{
namespace
{

void
expectSameVerdict(const validate::StreamVerdict &a,
                  const validate::StreamVerdict &b)
{
    EXPECT_EQ(a.complete, b.complete);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.bbValidated, b.bbValidated);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.chainUpdates, b.chainUpdates);
    EXPECT_EQ(a.bufferSpills, b.bufferSpills);
    EXPECT_EQ(a.spillBytes, b.spillBytes);
    EXPECT_EQ(a.unattestedBlocks, b.unattestedBlocks);
    EXPECT_EQ(a.edgeViolations, b.edgeViolations);
}

void
pump(VerifierService &svc, u64 id, const std::vector<u8> &stream,
     std::size_t chunk)
{
    std::size_t off = 0;
    while (off < stream.size()) {
        const std::size_t want =
            std::min<std::size_t>(chunk, stream.size() - off);
        const std::size_t took = svc.offer(id, stream.data() + off, want);
        off += took;
        if (took == 0)
            std::this_thread::yield();
    }
    svc.closeSession(id);
}

/** Adjudicate both corpus streams through one service configuration
 *  and return the two verdicts (rev first). */
std::vector<validate::StreamVerdict>
runBoth(const ServiceOptions &opts, TransportKind kind,
        std::size_t ringBytes)
{
    const test::Corpus &c = test::corpus();
    VerifierService svc(opts);
    const u64 a = svc.openSession(*c.refs, kind, ringBytes);
    const u64 b = svc.openSession(*c.refs, kind, ringBytes);
    pump(svc, a, c.rev.stream, 911);
    pump(svc, b, c.lofat.stream, 911);
    svc.drain();
    const std::vector<SessionReport> reports = svc.reports();
    return {reports[a].verdict, reports[b].verdict};
}

TEST(VerifierService, VerdictsMatchInlineGoldensOverMemory)
{
    const test::Corpus &c = test::corpus();
    const std::vector<validate::StreamVerdict> got =
        runBoth(ServiceOptions{1, 1u << 16}, TransportKind::Memory, 1u << 16);

    EXPECT_TRUE(got[0].complete);
    EXPECT_EQ(got[0].detected, c.rev.detected);
    EXPECT_EQ(got[0].reason, c.rev.reason);
    EXPECT_EQ(got[0].bbValidated, c.rev.bbValidated);
    EXPECT_TRUE(got[1].complete);
    EXPECT_EQ(got[1].detected, c.lofat.detected);
    EXPECT_EQ(got[1].reason, c.lofat.reason);
    EXPECT_EQ(got[1].bbValidated, c.lofat.bbValidated);
}

#if defined(__linux__)

TEST(VerifierService, SocketAndMemorySessionsRenderIdenticalVerdicts)
{
    const char *noEpoll = std::getenv("REV_VERIFIER_NO_EPOLL");
    if (noEpoll != nullptr && *noEpoll != '\0' && *noEpoll != '0')
        GTEST_SKIP() << "REV_VERIFIER_NO_EPOLL set: no socket sessions";

    const std::vector<validate::StreamVerdict> mem =
        runBoth(ServiceOptions{2, 1u << 16}, TransportKind::Memory,
                1u << 14);
    const std::vector<validate::StreamVerdict> sock =
        runBoth(ServiceOptions{2, 1u << 16}, TransportKind::Socket,
                1u << 14);
    expectSameVerdict(mem[0], sock[0]);
    expectSameVerdict(mem[1], sock[1]);
}

TEST(VerifierService, CondvarFallbackRendersIdenticalVerdicts)
{
    // The REV_VERIFIER_NO_EPOLL escape hatch swaps the whole scheduling
    // core; verdicts must not notice.
    const std::vector<validate::StreamVerdict> epoll =
        runBoth(ServiceOptions{2, 1u << 16}, TransportKind::Memory,
                1u << 14);

    setenv("REV_VERIFIER_NO_EPOLL", "1", 1);
    const std::vector<validate::StreamVerdict> fallback =
        runBoth(ServiceOptions{2, 1u << 16}, TransportKind::Memory,
                1u << 14);
    unsetenv("REV_VERIFIER_NO_EPOLL");

    expectSameVerdict(epoll[0], fallback[0]);
    expectSameVerdict(epoll[1], fallback[1]);
}

/** Ring transport that claims an un-epollable fd (a pipe read end we
 *  replace with a regular-file style failure): watchFd() returns an fd
 *  that EPOLL_CTL_ADD rejects, modelling registration failure under
 *  fd/memory pressure. The session must fall back to doorbell
 *  scheduling instead of going dark. */
class UnepollableTransport final : public Transport
{
  public:
    explicit UnepollableTransport(std::size_t capacity) : inner_(capacity)
    {
        // epoll rejects regular files with EPERM — a deterministic
        // stand-in for ENOMEM/ENOSPC at soak scale.
        char path[] = "/tmp/rev_unepollable_XXXXXX";
        fd_ = mkstemp(path);
        if (fd_ >= 0)
            unlink(path);
    }
    ~UnepollableTransport() override
    {
        if (fd_ >= 0)
            close(fd_);
    }

    std::size_t send(const u8 *d, std::size_t n) override
    {
        return inner_.send(d, n);
    }
    void closeSend() override { inner_.closeSend(); }
    std::size_t recv(u8 *o, std::size_t m) override
    {
        return inner_.recv(o, m);
    }
    std::size_t readable() const override { return inner_.readable(); }
    bool finished() const override { return inner_.finished(); }
    std::size_t peakBytes() const override { return inner_.peakBytes(); }
    int watchFd() const override { return fd_; }

    bool valid() const { return fd_ >= 0; }

  private:
    RingTransport inner_;
    int fd_ = -1;
};

TEST(VerifierService, EpollRegistrationFailureFallsBackToDoorbell)
{
    const char *noEpoll = std::getenv("REV_VERIFIER_NO_EPOLL");
    if (noEpoll != nullptr && *noEpoll != '\0' && *noEpoll != '0')
        GTEST_SKIP() << "REV_VERIFIER_NO_EPOLL set: no fd sessions";

    const test::Corpus &c = test::corpus();
    VerifierService svc(ServiceOptions{2, 1u << 16});

    std::vector<u64> ids;
    for (int i = 0; i < 4; ++i) {
        auto t = std::make_unique<UnepollableTransport>(4096);
        ASSERT_TRUE(t->valid());
        ids.push_back(svc.openSessionWith(*c.refs, std::move(t)));
    }

    std::vector<std::thread> provers;
    for (std::size_t i = 0; i < ids.size(); ++i)
        provers.emplace_back([&, i] {
            const test::CapturedStream &cap = (i % 2) ? c.lofat : c.rev;
            pump(svc, ids[i], cap.stream, 513);
        });
    for (std::thread &t : provers)
        t.join();
    svc.drain(); // the regression: unwatched sessions must not hang this

    const std::vector<SessionReport> reports = svc.reports();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const test::CapturedStream &cap = (i % 2) ? c.lofat : c.rev;
        EXPECT_TRUE(reports[ids[i]].verdict.complete);
        EXPECT_EQ(reports[ids[i]].verdict.detected, cap.detected);
        EXPECT_EQ(reports[ids[i]].verdict.bbValidated, cap.bbValidated);
    }
}

TEST(VerifierService, RapidSocketCloseNeverRacesTeardown)
{
    // Tight close-vs-worker window: tiny streams make the worker's EOF
    // observation land while the prover is still inside closeSession().
    // The transport may only be retired after the prover publishes its
    // close, so under TSan this pins the teardown ordering.
    const char *noEpoll = std::getenv("REV_VERIFIER_NO_EPOLL");
    if (noEpoll != nullptr && *noEpoll != '\0' && *noEpoll != '0')
        GTEST_SKIP() << "REV_VERIFIER_NO_EPOLL set: no socket sessions";

    const test::Corpus &c = test::corpus();
    VerifierService svc(ServiceOptions{4, 1u << 16});

    std::vector<std::thread> provers;
    std::atomic<u64> closedOk{0};
    for (int p = 0; p < 4; ++p)
        provers.emplace_back([&] {
            for (int i = 0; i < 32; ++i) {
                const u64 id = svc.openSession(
                    *c.refs, TransportKind::Socket, 1u << 12);
                // A short prefix, then immediate close: the verdict is
                // honest truncation and the teardown races the close.
                const std::size_t n =
                    std::min<std::size_t>(c.rev.stream.size(), 96);
                std::size_t off = 0;
                while (off < n) {
                    const std::size_t took =
                        svc.offer(id, c.rev.stream.data() + off, n - off);
                    off += took;
                    if (took == 0)
                        std::this_thread::yield();
                }
                svc.closeSession(id);
                closedOk.fetch_add(1, std::memory_order_relaxed);
            }
        });
    for (std::thread &t : provers)
        t.join();
    svc.drain();

    EXPECT_EQ(closedOk.load(), 128u);
    EXPECT_EQ(svc.sessionsAdjudicated(), 128u);
    for (const SessionReport &r : svc.reports())
        EXPECT_TRUE(r.verdict.complete);
}

#endif // __linux__

TEST(VerifierService, DedupOnOffVerdictsBitIdentical)
{
    const std::vector<validate::StreamVerdict> noDedup =
        runBoth(ServiceOptions{2, 0}, TransportKind::Memory, 1u << 16);
    const std::vector<validate::StreamVerdict> dedup =
        runBoth(ServiceOptions{2, 1u << 16}, TransportKind::Memory,
                1u << 16);
    expectSameVerdict(noDedup[0], dedup[0]);
    expectSameVerdict(noDedup[1], dedup[1]);
}

TEST(VerifierService, LatchedSessionSwallowsOffersWithoutLivelock)
{
    // Garbage latches a malformed verdict at the header; the prover
    // must still be able to push its remaining bytes to completion.
    const test::Corpus &c = test::corpus();
    VerifierService svc(ServiceOptions{1, 1u << 16});
    const u64 id = svc.openSession(*c.refs, TransportKind::Memory, 4096);

    std::vector<u8> garbage(64 * 1024);
    Rng rng(99);
    for (u8 &b : garbage)
        b = static_cast<u8>(rng.below(256));
    // 16x the ring capacity: only the swallow path lets this finish.
    pump(svc, id, garbage, 1024);
    svc.drain();

    const SessionReport r = svc.reports()[id];
    EXPECT_TRUE(r.verdict.complete);
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_LE(r.bytes, garbage.size());
}

TEST(VerifierService, SessionsOpenWhileOthersAreMidFlight)
{
    const test::Corpus &c = test::corpus();
    VerifierService svc(ServiceOptions{2, 1u << 16});

    // Wave one starts and feeds slowly; wave two opens concurrently.
    std::vector<std::thread> provers;
    for (int i = 0; i < 4; ++i)
        provers.emplace_back([&] {
            const u64 id =
                svc.openSession(*c.refs, TransportKind::Memory, 2048);
            pump(svc, id, c.rev.stream, 257);
        });
    for (int i = 0; i < 4; ++i)
        provers.emplace_back([&] {
            const u64 id =
                svc.openSession(*c.refs, TransportKind::Memory, 2048);
            pump(svc, id, c.lofat.stream, 257);
        });
    for (std::thread &t : provers)
        t.join();
    svc.drain();

    EXPECT_EQ(svc.sessionsOpened(), 8u);
    EXPECT_EQ(svc.sessionsAdjudicated(), 8u);
    for (const SessionReport &r : svc.reports()) {
        EXPECT_TRUE(r.verdict.complete);
        EXPECT_FALSE(r.verdict.detected);
        EXPECT_GT(r.peakBytes, 0u);
    }
}

TEST(VerifierService, NotifyStormFromManyProversStaysCorrect)
{
    // Many provers, tiny chunks, tiny rings: the doorbell path sees
    // constant wakeups in arbitrary order, with sessions re-queued
    // while workers hold them. Verdicts must all match the goldens.
    const test::Corpus &c = test::corpus();
    VerifierService svc(ServiceOptions{2, 1u << 16});

    std::vector<std::thread> provers;
    std::vector<u64> ids(8);
    for (std::size_t i = 0; i < ids.size(); ++i)
        ids[i] = svc.openSession(*c.refs, TransportKind::Memory, 1024);
    for (std::size_t i = 0; i < ids.size(); ++i)
        provers.emplace_back([&, i] {
            const test::CapturedStream &cap = (i % 2) ? c.lofat : c.rev;
            pump(svc, ids[i], cap.stream, 61);
        });
    for (std::thread &t : provers)
        t.join();
    svc.drain();

    const std::vector<SessionReport> reports = svc.reports();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const test::CapturedStream &cap = (i % 2) ? c.lofat : c.rev;
        const validate::StreamVerdict &v = reports[ids[i]].verdict;
        EXPECT_TRUE(v.complete);
        EXPECT_EQ(v.detected, cap.detected);
        EXPECT_EQ(v.bbValidated, cap.bbValidated);
        // Tiny ring: occupancy may never exceed capacity.
        EXPECT_LE(reports[ids[i]].peakBytes, 1024u);
    }
}

} // namespace
} // namespace rev::verifier
