/**
 * @file
 * Fault-injection battery: FlakyTransport-wrapped sessions (torn reads,
 * short writes, mid-record disconnects) must render either the clean-run
 * verdict (nothing was actually dropped) or an honest truncation — and
 * the service must neither hang nor leak sessions. The ASan/TSan CI
 * jobs run this battery under their respective sanitizers.
 */

#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "validate/stream_verifier.hpp"
#include "verifier/flaky.hpp"
#include "verifier/service.hpp"
#include "verifier_testutil.hpp"

namespace rev::verifier
{
namespace
{

/** Clean-run golden for @p cap rendered by a plain StreamVerifier. */
validate::StreamVerdict
cleanVerdict(const test::CapturedStream &cap)
{
    validate::StreamVerifier v(*test::corpus().refs);
    v.feed(cap.stream.data(), cap.stream.size());
    v.finish();
    return v.verdict();
}

void
expectSameVerdict(const validate::StreamVerdict &a,
                  const validate::StreamVerdict &b)
{
    EXPECT_EQ(a.complete, b.complete);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.bbValidated, b.bbValidated);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.chainUpdates, b.chainUpdates);
    EXPECT_EQ(a.unattestedBlocks, b.unattestedBlocks);
    EXPECT_EQ(a.edgeViolations, b.edgeViolations);
}

/** Feed the whole stream through offer() with a retry loop (the
 *  prover's contract under back-pressure and short writes). */
void
pump(VerifierService &svc, u64 id, const std::vector<u8> &stream,
     std::size_t chunk)
{
    std::size_t off = 0;
    while (off < stream.size()) {
        const std::size_t want =
            std::min<std::size_t>(chunk, stream.size() - off);
        const std::size_t took = svc.offer(id, stream.data() + off, want);
        off += took;
        if (took == 0)
            std::this_thread::yield();
    }
    svc.closeSession(id);
}

bool
epollAvailable()
{
#if defined(__linux__)
    const char *noEpoll = std::getenv("REV_VERIFIER_NO_EPOLL");
    return noEpoll == nullptr || *noEpoll == '\0' || *noEpoll == '0';
#else
    return false;
#endif
}

TEST(FlakyTransport, TornReadsAndShortWritesOverRingsAreLossless)
{
    // Nothing is dropped by these faults — only re-chunked — so every
    // seed must land exactly on the clean-run verdict.
    const test::Corpus &c = test::corpus();
    VerifierService svc(ServiceOptions{2, 1u << 16});

    std::vector<u64> ids;
    std::vector<const test::CapturedStream *> caps;
    for (u64 seed = 1; seed <= 6; ++seed) {
        const test::CapturedStream &cap = (seed % 2) ? c.rev : c.lofat;
        FlakyOptions f;
        f.seed = seed;
        f.shortWriteProb = 0.5;
        f.tornReadProb = 0.5;
        // A small inner ring keeps back-pressure in play too.
        ids.push_back(svc.openSessionWith(
            *c.refs, std::make_unique<FlakyTransport>(
                         std::make_unique<RingTransport>(4096), f)));
        caps.push_back(&cap);
    }

    std::vector<std::thread> provers;
    for (std::size_t i = 0; i < ids.size(); ++i)
        provers.emplace_back(
            [&, i] { pump(svc, ids[i], caps[i]->stream, 777); });
    for (std::thread &t : provers)
        t.join();
    svc.drain();

    const std::vector<SessionReport> reports = svc.reports();
    ASSERT_EQ(reports.size(), ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        expectSameVerdict(reports[ids[i]].verdict, cleanVerdict(*caps[i]));
}

TEST(FlakyTransport, MidRecordDisconnectIsHonestTruncationNotAHang)
{
    const test::Corpus &c = test::corpus();
    const validate::StreamVerdict clean = cleanVerdict(c.rev);
    VerifierService svc(ServiceOptions{1, 1u << 16});

    // Cut at several offsets, including one byte short of complete.
    const std::vector<u64> cuts = {c.rev.stream.size() / 3,
                                   c.rev.stream.size() / 2,
                                   c.rev.stream.size() - 1};
    std::vector<u64> ids;
    for (std::size_t i = 0; i < cuts.size(); ++i) {
        FlakyOptions f;
        f.seed = 100 + i;
        f.shortWriteProb = 0.3;
        f.tornReadProb = 0.3;
        f.disconnectAfterBytes = cuts[i];
        ids.push_back(svc.openSessionWith(
            *c.refs, std::make_unique<FlakyTransport>(
                         std::make_unique<RingTransport>(4096), f)));
    }

    // The prover must be able to finish feeding even though the peer
    // vanished mid-record (post-disconnect sends are swallowed).
    for (u64 id : ids)
        pump(svc, id, c.rev.stream, 777);
    svc.drain(); // the hang check: this must return

    const std::vector<SessionReport> reports = svc.reports();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const validate::StreamVerdict &v = reports[ids[i]].verdict;
        EXPECT_TRUE(v.complete); // adjudicated, not parked
        // A prefix of a clean stream: truncation is the only legal
        // complaint, and progress never exceeds the clean run.
        EXPECT_TRUE(v.detected);
        EXPECT_LE(v.bbValidated, clean.bbValidated);
        EXPECT_LE(reports[ids[i]].bytes, c.rev.stream.size());
    }
}

#if defined(__linux__)

TEST(FlakyTransport, FaultsOverSocketsPreserveVerdicts)
{
    if (!epollAvailable())
        GTEST_SKIP() << "REV_VERIFIER_NO_EPOLL set: no socket sessions";

    const test::Corpus &c = test::corpus();
    VerifierService svc(ServiceOptions{2, 1u << 16});

    std::vector<u64> ids;
    std::vector<const test::CapturedStream *> caps;
    for (u64 seed = 11; seed <= 14; ++seed) {
        const test::CapturedStream &cap = (seed % 2) ? c.rev : c.lofat;
        auto sock = std::make_unique<SocketTransport>(1u << 14);
        ASSERT_TRUE(sock->valid());
        FlakyOptions f;
        f.seed = seed;
        f.shortWriteProb = 0.5;
        f.tornReadProb = 0.5;
        ids.push_back(svc.openSessionWith(
            *c.refs,
            std::make_unique<FlakyTransport>(std::move(sock), f)));
        caps.push_back(&cap);
    }

    std::vector<std::thread> provers;
    for (std::size_t i = 0; i < ids.size(); ++i)
        provers.emplace_back(
            [&, i] { pump(svc, ids[i], caps[i]->stream, 777); });
    for (std::thread &t : provers)
        t.join();
    svc.drain();

    const std::vector<SessionReport> reports = svc.reports();
    for (std::size_t i = 0; i < ids.size(); ++i)
        expectSameVerdict(reports[ids[i]].verdict, cleanVerdict(*caps[i]));
}

TEST(FlakyTransport, SocketDisconnectMidFrameAdjudicates)
{
    if (!epollAvailable())
        GTEST_SKIP() << "REV_VERIFIER_NO_EPOLL set: no socket sessions";

    const test::Corpus &c = test::corpus();
    VerifierService svc(ServiceOptions{1, 1u << 16});

    auto sock = std::make_unique<SocketTransport>(1u << 14);
    ASSERT_TRUE(sock->valid());
    FlakyOptions f;
    f.seed = 21;
    f.tornReadProb = 0.4;
    f.disconnectAfterBytes = c.lofat.stream.size() / 2;
    const u64 id = svc.openSessionWith(
        *c.refs, std::make_unique<FlakyTransport>(std::move(sock), f));

    pump(svc, id, c.lofat.stream, 777);
    svc.drain();

    const std::vector<SessionReport> reports = svc.reports();
    const validate::StreamVerdict &v = reports[id].verdict;
    EXPECT_TRUE(v.complete);
    EXPECT_TRUE(v.detected); // truncation: the torn tail is lost
    EXPECT_LE(v.bbValidated, cleanVerdict(c.lofat).bbValidated);
}

#endif // __linux__

} // namespace
} // namespace rev::verifier
