/**
 * @file
 * VerifiedUnitCache tests: counter accounting, FIFO eviction bounds,
 * RefStore-pointer namespacing, fold-entry purity, a multi-thread
 * shard hammer (the TSan job runs this battery), and the top-level
 * dedup-on/off bit-identical-verdict pin over real captured streams.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "validate/stream_verifier.hpp"
#include "verifier/unit_cache.hpp"
#include "verifier_testutil.hpp"

namespace rev::verifier
{
namespace
{

using validate::RefStore;

sig::LookupResult
unitResult(u32 tag)
{
    sig::LookupResult r;
    r.found = true;
    r.targets = {tag, tag + 1};
    return r;
}

crypto::Digest
digest(u8 fill)
{
    crypto::Digest d;
    d.fill(fill);
    return d;
}

TEST(VerifiedUnitCache, HitMissAndInsertAccounting)
{
    VerifiedUnitCache cache(1024);
    const auto *ns = reinterpret_cast<const RefStore *>(0x1000);

    sig::LookupResult out;
    EXPECT_FALSE(cache.lookupUnit(ns, 0x40, 7, &out));
    cache.insertUnit(ns, 0x40, 7, unitResult(3));
    ASSERT_TRUE(cache.lookupUnit(ns, 0x40, 7, &out));
    EXPECT_EQ(out.targets, unitResult(3).targets);

    const UnitCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.evictions, 0u);
}

TEST(VerifiedUnitCache, RefStorePointerNamespacesKeys)
{
    VerifiedUnitCache cache(1024);
    const auto *nsA = reinterpret_cast<const RefStore *>(0x1000);
    const auto *nsB = reinterpret_cast<const RefStore *>(0x2000);

    cache.insertUnit(nsA, 0x40, 7, unitResult(1));
    sig::LookupResult out;
    // Same (term, digest) under another attested program: a miss, never
    // cross-talk.
    EXPECT_FALSE(cache.lookupUnit(nsB, 0x40, 7, &out));
    ASSERT_TRUE(cache.lookupUnit(nsA, 0x40, 7, &out));
    EXPECT_EQ(out.targets, unitResult(1).targets);
}

TEST(VerifiedUnitCache, FoldEntriesKeyOnChainAndBlock)
{
    VerifiedUnitCache cache(1024);
    validate::UnitLookupCache::FoldKey key{0x100, 0x140, 0x200, 77, 16};

    cache.insertFold(digest(1), key, digest(9));
    crypto::Digest out;
    ASSERT_TRUE(cache.lookupFold(digest(1), key, &out));
    EXPECT_EQ(out, digest(9));
    // Same block, different incoming chain: distinct link.
    EXPECT_FALSE(cache.lookupFold(digest(2), key, &out));
    // Same chain, different block: distinct link.
    validate::UnitLookupCache::FoldKey other = key;
    other.target = 0x204;
    EXPECT_FALSE(cache.lookupFold(digest(1), other, &out));
}

TEST(VerifiedUnitCache, EvictionBoundsResidentEntries)
{
    // 4 shards x 8 entries; inserting far more must evict, not grow.
    VerifiedUnitCache cache(32, 4);
    const auto *ns = reinterpret_cast<const RefStore *>(0x1000);
    for (u32 i = 0; i < 1000; ++i)
        cache.insertUnit(ns, 0x40 + i * 4, i, unitResult(i));

    const UnitCacheStats s = cache.stats();
    EXPECT_LE(s.entries, 32u);
    EXPECT_GE(s.evictions, 1000u - 32u);

    // Survivors are the FIFO tail and still readable.
    sig::LookupResult out;
    EXPECT_TRUE(cache.lookupUnit(ns, 0x40 + 999 * 4, 999, &out));
}

TEST(VerifiedUnitCache, DuplicateInsertKeepsFirstValueAndEntryCount)
{
    VerifiedUnitCache cache(1024);
    const auto *ns = reinterpret_cast<const RefStore *>(0x1000);
    cache.insertUnit(ns, 0x40, 7, unitResult(1));
    cache.insertUnit(ns, 0x40, 7, unitResult(2)); // racing-miss replay
    EXPECT_EQ(cache.stats().entries, 1u);
    sig::LookupResult out;
    ASSERT_TRUE(cache.lookupUnit(ns, 0x40, 7, &out));
    EXPECT_EQ(out.targets, unitResult(1).targets);
}

TEST(VerifiedUnitCache, ConcurrentHammerStaysConsistent)
{
    // 4 threads share a small cache and overlap key ranges, forcing
    // shard-lock contention, racing inserts, and evictions at once.
    VerifiedUnitCache cache(256, 4);
    const auto *ns = reinterpret_cast<const RefStore *>(0x1000);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (u32 round = 0; round < 2000; ++round) {
                const u32 i = (round + t * 331) % 512;
                sig::LookupResult out;
                if (!cache.lookupUnit(ns, 0x40 + i * 4, i, &out))
                    cache.insertUnit(ns, 0x40 + i * 4, i, unitResult(i));
                else
                    // Purity: whoever inserted it stored the same value.
                    EXPECT_EQ(out.targets, unitResult(i).targets);

                validate::UnitLookupCache::FoldKey key{i, i + 1, i + 2, i,
                                                       16};
                crypto::Digest fold;
                if (!cache.lookupFold(digest(static_cast<u8>(i)), key,
                                      &fold))
                    cache.insertFold(digest(static_cast<u8>(i)), key,
                                     digest(static_cast<u8>(i + 1)));
                else
                    EXPECT_EQ(fold, digest(static_cast<u8>(i + 1)));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    const UnitCacheStats s = cache.stats();
    EXPECT_LE(s.entries, 256u);
    EXPECT_EQ(s.hits + s.misses, 4u * 2000u * 2u);
}

TEST(DedupEquivalence, VerdictsBitIdenticalWithAndWithoutCache)
{
    // The top-level purity pin: a session adjudicated through the
    // shared cache renders byte-identical verdicts to one without it —
    // including a second pass where every lookup hits.
    const test::Corpus &c = test::corpus();
    VerifiedUnitCache cache(1u << 16);

    for (const test::CapturedStream *cap : {&c.rev, &c.lofat}) {
        validate::StreamVerifier plain(*c.refs);
        plain.feed(cap->stream.data(), cap->stream.size());
        plain.finish();

        for (int pass = 0; pass < 2; ++pass) {
            validate::StreamVerifier cached(*c.refs, &cache);
            cached.feed(cap->stream.data(), cap->stream.size());
            cached.finish();

            const validate::StreamVerdict &a = plain.verdict();
            const validate::StreamVerdict &b = cached.verdict();
            EXPECT_EQ(a.complete, b.complete);
            EXPECT_EQ(a.detected, b.detected);
            EXPECT_EQ(a.reason, b.reason);
            EXPECT_EQ(a.bbValidated, b.bbValidated);
            EXPECT_EQ(a.violations, b.violations);
            EXPECT_EQ(a.chainUpdates, b.chainUpdates);
            EXPECT_EQ(a.bufferSpills, b.bufferSpills);
            EXPECT_EQ(a.spillBytes, b.spillBytes);
            EXPECT_EQ(a.unattestedBlocks, b.unattestedBlocks);
            EXPECT_EQ(a.edgeViolations, b.edgeViolations);
            if (pass == 1)
                EXPECT_GT(cached.dedupHits(), 0u);
        }
    }
}

} // namespace
} // namespace rev::verifier
