/**
 * @file
 * Transport-layer contract tests: FrameDecoder totality (the framing
 * rules in transport.hpp), RingTransport equivalence with ByteRing,
 * and SocketTransport round-trips with backpressure, partial reads,
 * and mid-frame EOF.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "verifier/transport.hpp"

namespace rev::verifier
{
namespace
{

std::vector<u8>
pattern(std::size_t n, u8 seed = 0)
{
    std::vector<u8> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<u8>(seed + i * 73);
    return v;
}

std::vector<u8>
drainAll(FrameDecoder &d)
{
    std::vector<u8> out;
    u8 buf[257];
    for (std::size_t n; (n = d.take(buf, sizeof(buf))) != 0;)
        out.insert(out.end(), buf, buf + n);
    return out;
}

TEST(FrameDecoder, RoundTripsAcrossRandomSplitBoundaries)
{
    const std::vector<u8> payload = pattern(10000, 5);
    std::vector<u8> framed;
    // Many small frames, so splits land inside headers and payloads.
    for (std::size_t off = 0; off < payload.size(); off += 769)
        FrameDecoder::encodeFrame(
            &framed, payload.data() + off,
            std::min<std::size_t>(769, payload.size() - off));

    Rng rng(7);
    FrameDecoder d;
    std::vector<u8> got;
    std::size_t off = 0;
    while (off < framed.size()) {
        const std::size_t n = std::min<std::size_t>(
            1 + static_cast<std::size_t>(rng.below(13)),
            framed.size() - off);
        d.push(framed.data() + off, n);
        off += n;
        const std::vector<u8> piece = drainAll(d);
        got.insert(got.end(), piece.begin(), piece.end());
    }
    d.markEof();
    EXPECT_FALSE(d.corrupt());
    EXPECT_EQ(got, payload);
    EXPECT_EQ(d.pending(), 0u);
}

TEST(FrameDecoder, OversizedLengthPrefixMarksCorrupt)
{
    FrameDecoder d;
    const u32 bad = kMaxFramePayload + 1;
    u8 hdr[kFrameHeaderBytes];
    std::memcpy(hdr, &bad, sizeof(bad));
    d.push(hdr, sizeof(hdr));
    EXPECT_TRUE(d.corrupt());
    // Corrupt decoders discard further input instead of buffering it.
    const std::vector<u8> junk = pattern(4096);
    d.push(junk.data(), junk.size());
    EXPECT_EQ(d.pending(), 0u);
}

TEST(FrameDecoder, ZeroLengthPrefixMarksCorrupt)
{
    FrameDecoder d;
    const u8 zero[kFrameHeaderBytes] = {0, 0, 0, 0};
    d.push(zero, sizeof(zero));
    EXPECT_TRUE(d.corrupt());
}

TEST(FrameDecoder, DecodedPrefixSurvivesCorruptTail)
{
    std::vector<u8> framed;
    const std::vector<u8> good = pattern(100, 3);
    FrameDecoder::encodeFrame(&framed, good.data(), good.size());
    const u32 bad = 0;
    const std::size_t hdrAt = framed.size();
    framed.resize(framed.size() + kFrameHeaderBytes);
    std::memcpy(framed.data() + hdrAt, &bad, sizeof(bad));

    FrameDecoder d;
    d.push(framed.data(), framed.size());
    EXPECT_TRUE(d.corrupt());
    // The complete frame before the bad prefix still decodes.
    EXPECT_EQ(drainAll(d), good);
}

TEST(FrameDecoder, EofMidFrameIsTruncationNotCorruption)
{
    std::vector<u8> framed;
    const std::vector<u8> a = pattern(64, 1);
    const std::vector<u8> b = pattern(64, 2);
    FrameDecoder::encodeFrame(&framed, a.data(), a.size());
    FrameDecoder::encodeFrame(&framed, b.data(), b.size());

    FrameDecoder d;
    // Deliver everything except the last 10 payload bytes of frame b.
    d.push(framed.data(), framed.size() - 10);
    d.markEof();
    EXPECT_FALSE(d.corrupt());
    // Payload bytes stream out as they arrive: frame a stands in full,
    // frame b's received prefix stands, the torn tail is lost.
    std::vector<u8> expect = a;
    expect.insert(expect.end(), b.begin(), b.end() - 10);
    EXPECT_EQ(drainAll(d), expect);
}

TEST(FrameDecoder, EncodeSplitsPayloadsBeyondMaxFrame)
{
    const std::vector<u8> big = pattern(kMaxFramePayload + 1234, 9);
    std::vector<u8> framed;
    FrameDecoder::encodeFrame(&framed, big.data(), big.size());
    // Two frames: max-sized plus remainder.
    EXPECT_EQ(framed.size(), big.size() + 2 * kFrameHeaderBytes);

    FrameDecoder d;
    d.push(framed.data(), framed.size());
    EXPECT_FALSE(d.corrupt());
    EXPECT_EQ(drainAll(d), big);
}

TEST(RingTransport, FinishedOnlyAfterCloseAndFullDrain)
{
    RingTransport t(64);
    const std::vector<u8> data = pattern(10);
    EXPECT_EQ(t.send(data.data(), data.size()), 10u);
    EXPECT_FALSE(t.finished());
    t.closeSend();
    EXPECT_FALSE(t.finished()); // bytes still buffered
    u8 out[64];
    EXPECT_EQ(t.recv(out, sizeof(out)), 10u);
    EXPECT_TRUE(t.finished());
    EXPECT_FALSE(t.corrupt());
    EXPECT_EQ(t.peakBytes(), 10u);
    EXPECT_EQ(t.watchFd(), -1);
}

#if defined(__unix__) || defined(__APPLE__)

std::vector<u8>
socketDrain(SocketTransport &t)
{
    std::vector<u8> out;
    u8 buf[512];
    for (;;) {
        const std::size_t n = t.recv(buf, sizeof(buf));
        if (n == 0)
            break;
        out.insert(out.end(), buf, buf + n);
    }
    return out;
}

TEST(SocketTransport, RoundTripsChunkedStream)
{
    SocketTransport t(1 << 16);
    ASSERT_TRUE(t.valid());
    EXPECT_GE(t.watchFd(), 0);

    const std::vector<u8> stream = pattern(5000, 4);
    std::vector<u8> got;
    std::size_t off = 0;
    while (off < stream.size()) {
        const std::size_t n = t.send(
            stream.data() + off,
            std::min<std::size_t>(333, stream.size() - off));
        off += n;
        const std::vector<u8> piece = socketDrain(t);
        got.insert(got.end(), piece.begin(), piece.end());
    }
    t.closeSend();
    const std::vector<u8> rest = socketDrain(t);
    got.insert(got.end(), rest.begin(), rest.end());

    EXPECT_EQ(got, stream);
    EXPECT_TRUE(t.finished());
    EXPECT_FALSE(t.corrupt());
    EXPECT_GT(t.peakBytes(), 0u);
}

TEST(SocketTransport, BackpressuresWhenUnread)
{
    SocketTransport t(4096);
    ASSERT_TRUE(t.valid());
    const std::vector<u8> chunk = pattern(4096, 6);
    // Keep writing without draining: the kernel buffer plus the single
    // pending frame must eventually refuse further bytes instead of
    // queueing unboundedly.
    std::size_t total = 0;
    bool saturated = false;
    for (int i = 0; i < 4096; ++i) {
        const std::size_t n = t.send(chunk.data(), chunk.size());
        total += n;
        if (n == 0) {
            saturated = true;
            break;
        }
    }
    EXPECT_TRUE(saturated);

    // Draining the verifier side releases the backpressure.
    std::vector<u8> got = socketDrain(t);
    EXPECT_FALSE(got.empty());
    EXPECT_GT(t.send(chunk.data(), chunk.size()), 0u);
}

TEST(SocketTransport, EofMidStreamFinishesWithDecodedPrefix)
{
    SocketTransport t(1 << 16);
    ASSERT_TRUE(t.valid());
    const std::vector<u8> stream = pattern(1000, 8);
    ASSERT_EQ(t.send(stream.data(), stream.size()), stream.size());
    t.closeSend();

    const std::vector<u8> got = socketDrain(t);
    EXPECT_EQ(got, stream);
    EXPECT_TRUE(t.finished());
}

#endif // __unix__ || __APPLE__

} // namespace
} // namespace rev::verifier
