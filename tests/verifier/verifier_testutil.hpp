/**
 * @file
 * Shared fixture pieces for the verifier-service test battery: capture
 * one real measurement stream per backend (with its inline golden) so
 * transport / fault-injection / dedup tests all adjudicate against the
 * same ground truth.
 */

#ifndef REV_TESTS_VERIFIER_TESTUTIL_HPP
#define REV_TESTS_VERIFIER_TESTUTIL_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "validate/refstore.hpp"
#include "validate/stream.hpp"
#include "workloads/generator.hpp"
#include "workloads/profile.hpp"

namespace rev::verifier::test
{

/** One captured measurement session plus its inline golden. */
struct CapturedStream
{
    std::vector<u8> stream;
    bool detected = false;
    std::string reason;
    u64 bbValidated = 0;
};

/** Reference material + captured streams for one small workload. */
struct Corpus
{
    prog::Program program;
    std::unique_ptr<crypto::KeyVault> vault;
    std::unique_ptr<sig::SigStore> store;
    std::unique_ptr<validate::RefStore> refs;
    CapturedStream rev;
    CapturedStream lofat;
};

inline CapturedStream
captureOne(const prog::Program &program, sig::SigStore *store,
           validate::Backend backend, u64 budget)
{
    core::SimConfig cfg;
    cfg.core.maxInstrs = budget;
    cfg.backend = backend;
    cfg.sigStorePrototype = store;
    validate::StreamWriter writer;
    cfg.measurementSink = &writer;
    core::Simulator sim(program, cfg);
    const core::SimResult res = sim.run();
    sim.validator()->sealMeasurement();

    CapturedStream c;
    c.stream = writer.take();
    c.detected = res.run.violation.has_value();
    c.reason = sim.validator()->violationReason();
    c.bbValidated = res.validation.bbValidated;
    return c;
}

/** Build the shared corpus once per test binary (expensive: simulated
 *  runs). ~5k instructions keeps it under a second. */
inline const Corpus &
corpus()
{
    static Corpus c = [] {
        Corpus out;
        const core::SimConfig base;
        out.program =
            workloads::generateWorkload(workloads::specProfile("bzip2"));
        out.vault = std::make_unique<crypto::KeyVault>(base.cpuSeed);
        out.store = std::make_unique<sig::SigStore>(
            out.program, base.mode, *out.vault, base.toolchainSeed,
            base.core.splitLimits, base.rev.chg.hashRounds);
        out.refs = std::make_unique<validate::RefStore>(*out.store,
                                                        out.vault.get());
        out.rev = captureOne(out.program, out.store.get(),
                             validate::Backend::Rev, 5000);
        out.lofat = captureOne(out.program, out.store.get(),
                               validate::Backend::LoFat, 5000);
        return out;
    }();
    return c;
}

} // namespace rev::verifier::test

#endif // REV_TESTS_VERIFIER_TESTUTIL_HPP
