/**
 * @file
 * ByteRing contract tests — in particular the PR 9 wrap-around audit
 * regressions: exactly-full occupancy must be unambiguous (no
 * full/empty aliasing, no reserved slot) and spans crossing the
 * physical buffer edge must round-trip intact.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "verifier/ring.hpp"

namespace rev::verifier
{
namespace
{

std::vector<u8>
pattern(std::size_t n, u8 seed = 0)
{
    std::vector<u8> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<u8>(seed + i * 131 + (i >> 8));
    return v;
}

TEST(ByteRing, ExactlyFullAcceptsNothingAndDrainsFully)
{
    ByteRing ring(64);
    const std::vector<u8> data = pattern(64);
    ASSERT_EQ(ring.write(data.data(), data.size()), 64u);
    EXPECT_EQ(ring.readable(), 64u);

    // Exactly-full is a real state: free space is 0, not capacity.
    const u8 extra = 0xAB;
    EXPECT_EQ(ring.write(&extra, 1), 0u);
    EXPECT_EQ(ring.highWater(), 64u);

    std::vector<u8> out(64);
    EXPECT_EQ(ring.read(out.data(), out.size()), 64u);
    EXPECT_EQ(out, data);
    EXPECT_EQ(ring.readable(), 0u);
    EXPECT_EQ(ring.read(out.data(), out.size()), 0u);
}

TEST(ByteRing, RefillAfterExactlyFullKeepsByteOrder)
{
    ByteRing ring(32);
    const std::vector<u8> a = pattern(32, 1);
    ASSERT_EQ(ring.write(a.data(), a.size()), 32u);
    std::vector<u8> out(32);
    ASSERT_EQ(ring.read(out.data(), 32), 32u);

    // Head == tail == capacity now: the next write starts exactly on
    // the wrap boundary.
    const std::vector<u8> b = pattern(32, 7);
    ASSERT_EQ(ring.write(b.data(), b.size()), 32u);
    ASSERT_EQ(ring.read(out.data(), 32), 32u);
    EXPECT_EQ(out, b);
}

TEST(ByteRing, BoundarySpanningWriteIsSplitCorrectly)
{
    ByteRing ring(64);
    std::vector<u8> out(64);

    // Park the positions 48 bytes in so the next 32-byte span wraps.
    const std::vector<u8> pre = pattern(48, 3);
    ASSERT_EQ(ring.write(pre.data(), pre.size()), 48u);
    ASSERT_EQ(ring.read(out.data(), 48), 48u);

    const std::vector<u8> span = pattern(32, 9);
    ASSERT_EQ(ring.write(span.data(), span.size()), 32u);
    ASSERT_EQ(ring.readable(), 32u);
    ASSERT_EQ(ring.read(out.data(), 32), 32u);
    EXPECT_TRUE(std::equal(span.begin(), span.end(), out.begin()));
}

TEST(ByteRing, PartialAcceptNearFullTakesExactlyFreeBytes)
{
    ByteRing ring(32);
    const std::vector<u8> a = pattern(30, 2);
    ASSERT_EQ(ring.write(a.data(), a.size()), 30u);
    const std::vector<u8> b = pattern(10, 5);
    // Only 2 bytes free: accept exactly those, never a wrapped overwrite.
    ASSERT_EQ(ring.write(b.data(), b.size()), 2u);
    EXPECT_EQ(ring.readable(), 32u);

    std::vector<u8> out(32);
    ASSERT_EQ(ring.read(out.data(), 32), 32u);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), out.begin()));
    EXPECT_EQ(out[30], b[0]);
    EXPECT_EQ(out[31], b[1]);
}

TEST(ByteRing, CloseMarkerVisibleAfterDrain)
{
    ByteRing ring(16);
    const u8 b = 1;
    ring.write(&b, 1);
    EXPECT_FALSE(ring.writeClosed());
    ring.closeWrite();
    EXPECT_TRUE(ring.writeClosed());
    u8 out;
    EXPECT_EQ(ring.read(&out, 1), 1u);
    EXPECT_EQ(ring.readable(), 0u);
}

TEST(ByteRing, SpscStressRoundTripsEveryByteAcrossWraps)
{
    // Small ring + large stream: the transfer wraps hundreds of times
    // and regularly hits exactly-full under real thread interleaving.
    ByteRing ring(256);
    const std::vector<u8> stream = pattern(100000, 11);

    std::vector<u8> got;
    got.reserve(stream.size());
    std::thread consumer([&] {
        u8 buf[97]; // deliberately not a divisor of the capacity
        while (got.size() < stream.size()) {
            const std::size_t n = ring.read(buf, sizeof(buf));
            got.insert(got.end(), buf, buf + n);
            if (n == 0)
                std::this_thread::yield();
        }
    });

    Rng rng(42);
    std::size_t off = 0;
    while (off < stream.size()) {
        const std::size_t want = std::min<std::size_t>(
            1 + static_cast<std::size_t>(rng.below(300)),
            stream.size() - off);
        off += ring.write(stream.data() + off, want);
    }
    ring.closeWrite();
    consumer.join();

    EXPECT_EQ(got, stream);
    EXPECT_LE(ring.highWater(), ring.capacity());
    EXPECT_GT(ring.highWater(), 0u);
}

} // namespace
} // namespace rev::verifier
