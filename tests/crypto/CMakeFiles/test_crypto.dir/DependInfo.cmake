
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/aes_test.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/aes_test.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/aes_test.cpp.o.d"
  "/root/repo/tests/crypto/cubehash_lanes_test.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/cubehash_lanes_test.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/cubehash_lanes_test.cpp.o.d"
  "/root/repo/tests/crypto/cubehash_test.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/cubehash_test.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/cubehash_test.cpp.o.d"
  "/root/repo/tests/crypto/keyvault_test.cpp" "tests/crypto/CMakeFiles/test_crypto.dir/keyvault_test.cpp.o" "gcc" "tests/crypto/CMakeFiles/test_crypto.dir/keyvault_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/rev_common.dir/DependInfo.cmake"
  "/root/repo/src/crypto/CMakeFiles/rev_crypto.dir/DependInfo.cmake"
  "/root/repo/src/isa/CMakeFiles/rev_isa.dir/DependInfo.cmake"
  "/root/repo/src/program/CMakeFiles/rev_program.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
