/**
 * @file
 * Key vault (Sec. IX) tests.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hpp"
#include "crypto/keyvault.hpp"

namespace rev::crypto
{
namespace
{

TEST(KeyVault, WrapUnwrapRoundTrip)
{
    KeyVault vault(1);
    Rng rng(5);
    const AesKey key = vault.generateModuleKey(rng);
    const WrappedKey blob = vault.wrap(key);
    const auto back = vault.unwrap(blob);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, key);
}

TEST(KeyVault, WrappedBlobHidesKey)
{
    KeyVault vault(1);
    Rng rng(5);
    const AesKey key = vault.generateModuleKey(rng);
    const WrappedKey blob = vault.wrap(key);
    // The key bytes must not appear in the clear at the blob head.
    EXPECT_NE(0, std::memcmp(blob.data(), key.data(), 16));
}

TEST(KeyVault, TamperedBlobRejected)
{
    KeyVault vault(1);
    Rng rng(5);
    WrappedKey blob = vault.wrap(vault.generateModuleKey(rng));
    for (std::size_t i = 0; i < blob.size(); i += 7) {
        WrappedKey bad = blob;
        bad[i] ^= 0x80;
        EXPECT_FALSE(vault.unwrap(bad).has_value()) << "byte " << i;
    }
}

TEST(KeyVault, WrongCpuCannotUnwrap)
{
    KeyVault cpu_a(1), cpu_b(2);
    Rng rng(5);
    const WrappedKey blob = cpu_a.wrap(cpu_a.generateModuleKey(rng));
    EXPECT_FALSE(cpu_b.unwrap(blob).has_value());
}

TEST(KeyVault, GeneratedKeysDiffer)
{
    KeyVault vault(1);
    Rng rng(5);
    EXPECT_NE(vault.generateModuleKey(rng), vault.generateModuleKey(rng));
}

} // namespace
} // namespace rev::crypto
