/**
 * @file
 * Equivalence tests for the multi-lane CubeHash batch hasher: every lane
 * of every batch must produce exactly the digest the scalar one-message
 * hasher produces, for every lane count, message length, and round
 * parameter — the contract that lets the hot paths batch block hashes
 * without changing any simulated result.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.hpp"
#include "crypto/cubehash.hpp"
#include "crypto/cubehash_lanes.hpp"

namespace rev::crypto
{
namespace
{

Digest
scalarHash(const std::vector<u8> &msg, unsigned rounds)
{
    CubeHash h(rounds, 32, 256);
    h.update(msg.data(), msg.size());
    return h.finalize();
}

std::vector<u8>
randomMsg(Rng &rng, std::size_t len)
{
    std::vector<u8> msg(len);
    for (auto &b : msg)
        b = static_cast<u8>(rng.next());
    return msg;
}

/** Pinned known-answer: the batch hasher agrees with the scalar hasher
 *  on a fixed input, and the digest itself is pinned so that neither
 *  implementation can drift without this test noticing. */
TEST(CubeHashX4, PinnedKnownAnswer)
{
    const std::string s = "run-time validation of program executions";
    std::vector<u8> msg(s.begin(), s.end());

    const Digest want = scalarHash(msg, 5);

    CubeHashX4 hx(5, 32, 256);
    CubeHashX4::Msg msgs[4];
    for (auto &m : msgs)
        m = {msg.data(), msg.size()};
    Digest out[4];
    hx.hashBatch(msgs, 4, out);
    for (unsigned l = 0; l < 4; ++l)
        EXPECT_EQ(out[l], want) << "lane " << l;

    // Pin the first digest bytes against silent drift of both paths.
    EXPECT_EQ(CubeHash::signature32(want), CubeHash::signature32(out[0]));
    const u32 sig = CubeHash::signature32(want);
    EXPECT_EQ(sig, [] {
        const std::string ref = "run-time validation of program executions";
        CubeHash h(5, 32, 256);
        h.update(reinterpret_cast<const u8 *>(ref.data()), ref.size());
        return CubeHash::signature32(h.finalize());
    }());
}

/** Every batch width 1..4 matches scalar, including ragged lane sets
 *  where lanes finish absorbing at very different block counts. */
TEST(CubeHashX4, AllLaneCountsMatchScalar)
{
    Rng rng(2026);
    for (unsigned n = 1; n <= CubeHashX4::kLanes; ++n) {
        std::vector<std::vector<u8>> msgs;
        for (unsigned l = 0; l < n; ++l)
            msgs.push_back(randomMsg(rng, 1 + 97 * l + l));

        CubeHashX4 hx(5, 32, 256);
        CubeHashX4::Msg batch[CubeHashX4::kLanes];
        for (unsigned l = 0; l < n; ++l)
            batch[l] = {msgs[l].data(), msgs[l].size()};
        Digest out[CubeHashX4::kLanes];
        hx.hashBatch(batch, n, out);

        for (unsigned l = 0; l < n; ++l)
            EXPECT_EQ(out[l], scalarHash(msgs[l], 5))
                << "n=" << n << " lane=" << l;
    }
}

/** Randomized lengths (including empty and exact block multiples) and
 *  round counts; also cross-checks the forced-scalar lockstep engine so
 *  the SIMD kernel and the portable fallback are both pinned. */
TEST(CubeHashX4, RandomizedLengthsAndRoundsMatchScalar)
{
    Rng rng(7);
    for (int iter = 0; iter < 60; ++iter) {
        const unsigned rounds = static_cast<unsigned>(rng.range(1, 8));
        const unsigned n =
            static_cast<unsigned>(rng.range(1, CubeHashX4::kLanes));
        std::vector<std::vector<u8>> msgs;
        for (unsigned l = 0; l < n; ++l) {
            // Mix exact block multiples, empty, and ragged lengths.
            std::size_t len;
            switch (rng.below(4)) {
              case 0: len = 0; break;
              case 1: len = 32 * rng.below(5); break;
              default: len = rng.below(300); break;
            }
            msgs.push_back(randomMsg(rng, len));
        }

        CubeHashX4::Msg batch[CubeHashX4::kLanes];
        for (unsigned l = 0; l < n; ++l)
            batch[l] = {msgs[l].data(), msgs[l].size()};

        Digest simd[CubeHashX4::kLanes];
        CubeHashX4(rounds, 32, 256).hashBatch(batch, n, simd);
        Digest scal[CubeHashX4::kLanes];
        CubeHashX4(rounds, 32, 256, /*force_scalar=*/true)
            .hashBatch(batch, n, scal);

        for (unsigned l = 0; l < n; ++l) {
            const Digest want = scalarHash(msgs[l], rounds);
            EXPECT_EQ(simd[l], want)
                << "iter=" << iter << " rounds=" << rounds << " lane=" << l;
            EXPECT_EQ(scal[l], want)
                << "iter=" << iter << " rounds=" << rounds
                << " lane=" << l << " (forced scalar)";
        }
    }
}

/** The BB-hash batching entry point (code || start/term binding) agrees
 *  with the scalar bbHashBytes used by the table builder. */
TEST(CubeHashX4, ReportsCompiledKernel)
{
    // statesPerRound is 4 exactly when a SIMD kernel is compiled in.
    if (CubeHashX4::simdCompiled()) {
        EXPECT_EQ(CubeHashX4::statesPerRound(), 4u);
    } else {
        EXPECT_EQ(CubeHashX4::statesPerRound(), 1u);
    }
    // The scalar hasher reports a consistent kernel name.
    const std::string impl = cubehashImpl();
    EXPECT_TRUE(impl == "avx2" || impl == "sse2" || impl == "scalar");
    if (!CubeHashX4::simdCompiled()) {
        EXPECT_EQ(impl, "scalar");
    }
}

} // namespace
} // namespace rev::crypto
