/**
 * @file
 * AES-128 known-answer and property tests.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hpp"
#include "crypto/aes.hpp"

namespace rev::crypto
{
namespace
{

/** FIPS-197 Appendix B example vector. */
TEST(Aes128, Fips197KnownAnswer)
{
    const AesKey key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                        0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
    AesBlock block = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                      0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
    const AesBlock expect = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                             0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};

    Aes128 aes(key);
    aes.encryptBlock(block.data());
    EXPECT_EQ(block, expect);
}

TEST(Aes128, DecryptInvertsEncrypt)
{
    Rng rng(11);
    AesKey key;
    for (auto &b : key)
        b = static_cast<u8>(rng.next());
    Aes128 aes(key);

    for (int t = 0; t < 100; ++t) {
        AesBlock block, orig;
        for (auto &b : block)
            b = static_cast<u8>(rng.next());
        orig = block;
        aes.encryptBlock(block.data());
        EXPECT_NE(block, orig);
        aes.decryptBlock(block.data());
        EXPECT_EQ(block, orig);
    }
}

TEST(Aes128, DifferentKeysDifferentCiphertext)
{
    AesKey k1{}, k2{};
    k2[0] = 1;
    AesBlock b1{}, b2{};
    Aes128(k1).encryptBlock(b1.data());
    Aes128(k2).encryptBlock(b2.data());
    EXPECT_NE(b1, b2);
}

TEST(Aes128, CtrRoundTrip)
{
    Rng rng(22);
    AesKey key;
    for (auto &b : key)
        b = static_cast<u8>(rng.next());
    Aes128 aes(key);

    std::vector<u8> data(1000), orig;
    for (auto &b : data)
        b = static_cast<u8>(rng.next());
    orig = data;

    aes.ctrCrypt(data, 42);
    EXPECT_NE(data, orig);
    aes.ctrCrypt(data, 42);
    EXPECT_EQ(data, orig);
}

TEST(Aes128, CtrNonceSeparatesStreams)
{
    AesKey key{};
    Aes128 aes(key);
    std::vector<u8> a(64, 0), b(64, 0);
    aes.ctrCrypt(a, 1);
    aes.ctrCrypt(b, 2);
    EXPECT_NE(a, b);
}

TEST(Aes128, CtrCryptAtSlicesEquivalentToFullStream)
{
    // Decrypting any sub-range at its stream offset must equal the same
    // bytes of a whole-stream decrypt -- the property the table walker
    // relies on to decrypt single records.
    Rng rng(77);
    AesKey key;
    for (auto &b : key)
        b = static_cast<u8>(rng.next());
    Aes128 aes(key);

    std::vector<u8> plain(512);
    for (auto &b : plain)
        b = static_cast<u8>(rng.next());

    std::vector<u8> stream = plain;
    aes.ctrCrypt(stream, 5); // ciphertext

    for (int t = 0; t < 200; ++t) {
        const std::size_t off = rng.below(stream.size());
        const std::size_t len =
            1 + rng.below(stream.size() - off);
        std::vector<u8> slice(stream.begin() + off,
                              stream.begin() + off + len);
        aes.ctrCryptAt(slice.data(), slice.size(), 5, off);
        ASSERT_EQ(0, std::memcmp(slice.data(), plain.data() + off, len))
            << "off=" << off << " len=" << len;
    }
}

TEST(Aes128, CtrNonMultipleOf16Length)
{
    AesKey key{};
    Aes128 aes(key);
    std::vector<u8> data(37, 0xcc), orig = data;
    aes.ctrCrypt(data, 9);
    aes.ctrCrypt(data, 9);
    EXPECT_EQ(data, orig);
}

} // namespace
} // namespace rev::crypto
