/**
 * @file
 * Unit and property tests for the CubeHash implementation.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "crypto/cubehash.hpp"

namespace rev::crypto
{
namespace
{

Digest
hashStr(const std::string &s, unsigned rounds = 5)
{
    return CubeHash::hash(reinterpret_cast<const u8 *>(s.data()), s.size(),
                          rounds);
}

TEST(CubeHash, Deterministic)
{
    EXPECT_EQ(hashStr("hello world"), hashStr("hello world"));
}

TEST(CubeHash, EmptyMessageHashable)
{
    const Digest d = hashStr("");
    // Must not be all-zero (the permutation ran).
    bool nonzero = false;
    for (u8 b : d)
        nonzero |= (b != 0);
    EXPECT_TRUE(nonzero);
}

TEST(CubeHash, SingleBitFlipChangesDigest)
{
    std::string msg = "the quick brown fox jumps over the lazy dog";
    const Digest base = hashStr(msg);
    for (std::size_t byte = 0; byte < msg.size(); byte += 5) {
        std::string mutated = msg;
        mutated[byte] ^= 1;
        EXPECT_NE(hashStr(mutated), base)
            << "flip at byte " << byte << " did not change digest";
    }
}

TEST(CubeHash, AvalancheOnTruncatedSignature)
{
    // The 4-byte truncated signature (Sec. V.C) should change for single
    // bit flips with overwhelming probability.
    Rng rng(99);
    int unchanged = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        std::vector<u8> msg(64);
        for (auto &b : msg)
            b = static_cast<u8>(rng.next());
        const u32 sig = CubeHash::signature32(
            CubeHash::hash(msg.data(), msg.size()));
        msg[rng.below(msg.size())] ^= static_cast<u8>(1u << rng.below(8));
        const u32 sig2 = CubeHash::signature32(
            CubeHash::hash(msg.data(), msg.size()));
        unchanged += (sig == sig2);
    }
    EXPECT_EQ(unchanged, 0);
}

TEST(CubeHash, IncrementalMatchesOneShot)
{
    const std::string msg(1000, 'x');
    CubeHash h(5);
    // Feed in irregular chunks.
    std::size_t off = 0;
    const std::size_t chunks[] = {1, 7, 31, 100, 400, 461};
    for (std::size_t c : chunks) {
        h.update(reinterpret_cast<const u8 *>(msg.data()) + off, c);
        off += c;
    }
    ASSERT_EQ(off, msg.size());
    EXPECT_EQ(h.finalize(), hashStr(msg));
}

TEST(CubeHash, ResetAllowsReuse)
{
    CubeHash h(5);
    h.update(reinterpret_cast<const u8 *>("abc"), 3);
    const Digest first = h.finalize();
    h.reset();
    h.update(reinterpret_cast<const u8 *>("abc"), 3);
    EXPECT_EQ(h.finalize(), first);
}

TEST(CubeHash, RoundsChangeDigest)
{
    EXPECT_NE(hashStr("message", 5), hashStr("message", 16));
}

TEST(CubeHash, LengthMattersEvenWithZeroPadding)
{
    // "a" and "a\0" must differ: padding is unambiguous.
    const Digest d1 = CubeHash::hash(reinterpret_cast<const u8 *>("a"), 1);
    const u8 two[] = {'a', 0};
    const Digest d2 = CubeHash::hash(two, 2);
    EXPECT_NE(d1, d2);
}

TEST(CubeHash, RejectsBadParameters)
{
    EXPECT_THROW(CubeHash(0, 32, 256), FatalError);
    EXPECT_THROW(CubeHash(5, 0, 256), FatalError);
    EXPECT_THROW(CubeHash(5, 129, 256), FatalError);
    EXPECT_THROW(CubeHash(5, 32, 7), FatalError);
    EXPECT_THROW(CubeHash(5, 32, 600), FatalError);
}

/** Property sweep: no collisions among many distinct random messages. */
class CubeHashCollision : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CubeHashCollision, NoCollisionsAcrossRandomMessages)
{
    const unsigned rounds = GetParam();
    Rng rng(1234 + rounds);
    std::set<std::array<u8, 32>> digests;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        std::vector<u8> msg(16 + rng.below(100));
        for (auto &b : msg)
            b = static_cast<u8>(rng.next());
        digests.insert(CubeHash::hash(msg.data(), msg.size(), rounds));
    }
    // Random messages may repeat, but digest count must match distinct
    // message count; with 2000 random >=16-byte messages, collisions in
    // the *digest* would indicate a broken permutation.
    EXPECT_GE(digests.size(), static_cast<std::size_t>(n - 2));
}

INSTANTIATE_TEST_SUITE_P(Rounds, CubeHashCollision,
                         ::testing::Values(1u, 2u, 5u, 8u));

} // namespace
} // namespace rev::crypto
