# CMake generated Testfile for 
# Source directory: /root/repo/tests/crypto
# Build directory: /root/repo/tests/crypto
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/crypto/test_crypto[1]_include.cmake")
