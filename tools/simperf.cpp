/**
 * @file
 * simperf — simulator-speed harness.
 *
 * Runs a benchmark sweep with the cache disabled, measures wall-clock
 * simulation speed (simulated MIPS) per (benchmark, config) job, and
 * writes the numbers to a JSON report (BENCH_sim_speed.json): per-job
 * wall times (tagged with whether the job replayed a recorded trace),
 * the sweep's per-phase host wall-clock breakdown (generate / proto-hash
 * / image-load / record / replay), and host microbenchmarks of the hot
 * primitives (per-block signature hash, memory-system access, machine
 * snapshot capture / memory fork / restore). Optionally compares
 * every tracked simulated statistic of the sweep against a pinned golden
 * snapshot and fails if anything deviates — the contract that simulator
 * fast paths never change simulated results.
 *
 * Usage:
 *   simperf [--quick] [--bench a,b,c] [--instrs N] [--threads N]
 *           [--out FILE] [--golden FILE] [--backend NAME]
 *           [--list-backends]
 *
 *   --quick    three-benchmark smoke preset (same as the bench binaries)
 *   --out      JSON report path (default BENCH_sim_speed.json)
 *   --golden   sweep-cache snapshot to compare statistics against;
 *              any mismatch is reported and exits nonzero
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/golden.hpp"
#include "bench/suite.hpp"
#include "bench/sweep_runner.hpp"
#include "common/logging.hpp"
#include "core/snapshot.hpp"
#include "crypto/cubehash.hpp"
#include "crypto/cubehash_lanes.hpp"
#include "mem/memsys.hpp"
#include "program/interp.hpp"
#include "sig/table.hpp"
#include "validate/backend_cli.hpp"
#include "workloads/generator.hpp"

namespace
{

using namespace rev;
using namespace rev::bench;

struct Args
{
    SweepOptions opts;
    std::string outPath = "BENCH_sim_speed.json";
    std::string goldenPath; ///< empty = no comparison
};

[[noreturn]] void
usage(int code)
{
    std::printf("usage: simperf [--quick] [--bench a,b,c] [--instrs N]\n"
                "               [--threads N] [--out FILE] [--golden FILE]\n"
                "               [--dispatch switch|threaded] %s\n",
                rev::validate::kBackendCliUsage);
    std::exit(code);
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    // Default to the quick preset: simperf is a measurement harness, not
    // a figure generator, and must never read stale cached runs.
    args.opts = SweepOptions::quick();
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(2);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            args.opts = SweepOptions::quick();
        } else if (arg == "--bench") {
            args.opts.benchmarks.clear();
            std::string names = next(i);
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = names.find(',', pos);
                const std::string name =
                    names.substr(pos, comma == std::string::npos
                                          ? std::string::npos
                                          : comma - pos);
                if (!name.empty())
                    args.opts.benchmarks.push_back(name);
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (arg == "--instrs") {
            args.opts.instrBudget = std::strtoull(next(i), nullptr, 10);
        } else if (arg == "--threads") {
            args.opts.threads = static_cast<unsigned>(std::atoi(next(i)));
        } else if (arg == "--out") {
            args.outPath = next(i);
        } else if (arg == "--golden") {
            args.goldenPath = next(i);
        } else if (arg == "--dispatch") {
            const std::string mode = next(i);
            if (mode == "switch")
                prog::setDispatchMode(prog::DispatchMode::Switch);
            else if (mode == "threaded")
                prog::setDispatchMode(prog::DispatchMode::Threaded);
            else {
                std::fprintf(stderr,
                             "simperf: unknown dispatch mode '%s'\n",
                             mode.c_str());
                usage(2);
            }
        } else if (validate::backendCliOptions(argc, argv, &i,
                                               &args.opts.backend)) {
            // shared --backend / --list-backends handling
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "simperf: unknown argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    args.opts.useCache = false; // always measure real runs
    return args;
}

/** Host cost of the two primitives the sweep leans on hardest. */
struct MicroNumbers
{
    double bbHashNs = 0;      ///< one 64-byte basic-block signature hash
    double memsysAccessNs = 0; ///< one timing-model memory access

    // Hash-throughput breakdown: the single-state kernel vs the 4-lane
    // batch kernel over the same total bytes (64-byte block-sized
    // messages, the sweep's common case).
    double hashScalarMBps = 0; ///< single-state permute kernel
    double hashBatchMBps = 0;  ///< CubeHashX4 lockstep batches of 4
    unsigned statesPerRound = 1; ///< lanes one round call advances

    // Machine-snapshot primitives (core/snapshot.hpp): what the
    // campaign / sweep pay per warmed-state reuse instead of
    // re-executing the prefix.
    double snapshotCaptureUs = 0; ///< Simulator::capture()
    double snapshotForkUs = 0;    ///< SparseMemory::fork() alone
    double snapshotRestoreUs = 0; ///< Simulator::forkFrom() total
};

MicroNumbers
runMicro()
{
    using Clock = std::chrono::steady_clock;
    auto secsSince = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    MicroNumbers m;
    {
        u8 buf[64];
        for (unsigned i = 0; i < sizeof(buf); ++i)
            buf[i] = static_cast<u8>(i * 37 + 1);
        constexpr int kIters = 20000;
        u32 sink = 0;
        const auto t0 = Clock::now();
        for (int i = 0; i < kIters; ++i)
            sink ^= sig::bbHashBytes(buf, sizeof(buf), 0x1000 + sink % 7,
                                     0x1040, 5);
        m.bbHashNs = secsSince(t0) * 1e9 / kIters;
    }
    {
        u8 buf[64];
        for (unsigned i = 0; i < sizeof(buf); ++i)
            buf[i] = static_cast<u8>(i * 11 + 5);
        constexpr int kIters = 20000;
        // Single-state kernel throughput.
        {
            u32 sink = 0;
            const auto t0 = Clock::now();
            for (int i = 0; i < kIters; ++i) {
                crypto::CubeHash h(5, 32, 256);
                h.update(buf, sizeof(buf));
                sink ^= crypto::CubeHash::signature32(h.finalize());
            }
            const double secs = secsSince(t0);
            m.hashScalarMBps =
                secs > 0 ? kIters * sizeof(buf) / secs / 1e6 : 0;
            (void)sink;
        }
        // 4-lane batch kernel throughput over the same bytes.
        {
            crypto::CubeHashX4::Msg msgs[4];
            for (auto &msg : msgs)
                msg = {buf, sizeof(buf)};
            crypto::Digest out[4];
            u32 sink = 0;
            const auto t0 = Clock::now();
            for (int i = 0; i < kIters / 4; ++i) {
                crypto::CubeHashX4 hx(5, 32, 256);
                hx.hashBatch(msgs, 4, out);
                sink ^= crypto::CubeHash::signature32(out[i & 3]);
            }
            const double secs = secsSince(t0);
            m.hashBatchMBps =
                secs > 0 ? (kIters / 4) * 4 * sizeof(buf) / secs / 1e6 : 0;
            (void)sink;
        }
        m.statesPerRound = crypto::CubeHashX4::statesPerRound();
    }
    {
        mem::MemorySystem ms{mem::MemConfig{}};
        constexpr int kIters = 200000;
        Cycle at = 0;
        const auto t0 = Clock::now();
        for (int i = 0; i < kIters; ++i) {
            const auto r = ms.access((static_cast<Addr>(i) * 64) & 0x3fffff,
                                     mem::AccessType::DataRead, at);
            at = std::max(at + 1, r.l1Hit ? at + 1 : r.completeAt);
        }
        m.memsysAccessNs = secsSince(t0) * 1e9 / kIters;
    }
    {
        // Snapshot primitives over a small warmed machine.
        const prog::Program program =
            workloads::generateWorkload(workloads::specProfile("mcf"));
        const core::SimConfig cfg = sweepSimConfig(Config::Full32, 6000);
        core::Simulator src(program, cfg);
        if (src.runUntil(2000)) {
            constexpr int kIters = 25;
            auto t0 = Clock::now();
            for (int i = 0; i < kIters; ++i)
                (void)src.capture();
            m.snapshotCaptureUs = secsSince(t0) * 1e6 / kIters;

            const core::Snapshot snap = src.capture();
            t0 = Clock::now();
            for (int i = 0; i < kIters; ++i)
                (void)snap.mem.fork();
            m.snapshotForkUs = secsSince(t0) * 1e6 / kIters;

            t0 = Clock::now();
            for (int i = 0; i < kIters; ++i)
                (void)core::Simulator::forkFrom(snap);
            m.snapshotRestoreUs = secsSince(t0) * 1e6 / kIters;
        }
    }
    return m;
}

void
writeReport(const Args &args, const Sweep &sweep, const SweepRunner &runner,
            double total_wall, const MicroNumbers &micro)
{
    std::ofstream os(args.outPath);
    if (!os)
        fatal("simperf: cannot write ", args.outPath);

    u64 total_instrs = 0;
    double total_job_wall = 0;
    std::size_t replayed_jobs = 0;
    os << "{\n"
       << "  \"schema\": \"rev-sim-speed-v4\",\n"
       << "  \"dispatch\": \""
       << prog::dispatchModeName(prog::dispatchMode()) << "\",\n"
       << "  \"instr_budget\": " << args.opts.instrBudget << ",\n"
       << "  \"threads\": " << runner.threadsUsed() << ",\n"
       << "  \"jobs\": [\n";
    const auto &timings = runner.timings();
    for (std::size_t i = 0; i < timings.size(); ++i) {
        const JobTiming &t = timings[i];
        const RunNumbers &r = sweep.at(t.bench, t.config);
        const double mips = t.wallSeconds > 0
                                ? static_cast<double>(r.instrs) /
                                      t.wallSeconds / 1e6
                                : 0;
        total_instrs += r.instrs;
        total_job_wall += t.wallSeconds;
        replayed_jobs += t.replayed;
        os << "    {\"bench\": \"" << t.bench << "\", \"config\": \""
           << configName(t.config) << "\", \"wall_seconds\": "
           << t.wallSeconds << ", \"instrs\": " << r.instrs
           << ", \"cycles\": " << r.cycles << ", \"sim_mips\": " << mips
           << ", \"replayed\": " << (t.replayed ? "true" : "false") << "}"
           << (i + 1 < timings.size() ? "," : "") << "\n";
    }
    const SweepPhaseTimings &ph = runner.phaseTimings();
    os << "  ],\n"
       << "  \"phases\": {\"generate_seconds\": " << ph.generateSeconds
       << ", \"proto_seconds\": " << ph.protoSeconds
       << ", \"image_seconds\": " << ph.imageSeconds
       << ", \"record_seconds\": " << ph.recordSeconds
       << ", \"replay_seconds\": " << ph.replaySeconds << "},\n"
       << "  \"micro\": {\"bb_hash_ns\": " << micro.bbHashNs
       << ", \"memsys_access_ns\": " << micro.memsysAccessNs
       << ", \"hash_scalar_mbps\": " << micro.hashScalarMBps
       << ", \"hash_batch_mbps\": " << micro.hashBatchMBps
       << ", \"hash_states_per_round\": " << micro.statesPerRound
       << ", \"hash_impl\": \"" << crypto::cubehashImpl() << "\""
       << ", \"snapshot_capture_us\": " << micro.snapshotCaptureUs
       << ", \"snapshot_mem_fork_us\": " << micro.snapshotForkUs
       << ", \"snapshot_restore_us\": " << micro.snapshotRestoreUs
       << "},\n"
       << "  \"total\": {\"wall_seconds\": " << total_wall
       << ", \"job_wall_seconds\": " << total_job_wall
       << ", \"replayed_jobs\": " << replayed_jobs
       << ", \"instrs\": " << total_instrs << ", \"sim_mips\": "
       << (total_job_wall > 0
               ? static_cast<double>(total_instrs) / total_job_wall / 1e6
               : 0)
       << "}\n"
       << "}\n";
    std::printf("simperf: %zu jobs (%zu replayed), %.2fs wall "
                "(gen %.2f + proto %.2f + image %.2f + record %.2f + "
                "replay %.2f), "
                "dispatch=%s hash=%s (%.0f MB/s scalar, %.0f MB/s x%u), "
                "report -> %s\n",
                timings.size(), replayed_jobs, total_wall,
                ph.generateSeconds, ph.protoSeconds, ph.imageSeconds,
                ph.recordSeconds, ph.replaySeconds,
                prog::dispatchModeName(prog::dispatchMode()),
                crypto::cubehashImpl(), micro.hashScalarMBps,
                micro.hashBatchMBps, micro.statesPerRound,
                args.outPath.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);

    const auto t0 = std::chrono::steady_clock::now();
    SweepRunner runner(args.opts);
    const Sweep sweep = runner.run();
    const double total_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    writeReport(args, sweep, runner, total_wall, runMicro());

    if (!args.goldenPath.empty()) {
        const auto diffs =
            compareToGolden(sweep, args.opts, args.goldenPath);
        if (!diffs.empty()) {
            for (const auto &d : diffs)
                std::fprintf(stderr, "simperf: GOLDEN MISMATCH %s/%s: %s\n",
                             d.bench.c_str(), configName(d.config),
                             d.detail.c_str());
            return 1;
        }
        std::printf("simperf: all statistics match golden snapshot %s\n",
                    args.goldenPath.c_str());
    }
    return 0;
}
