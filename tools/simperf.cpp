/**
 * @file
 * simperf — simulator-speed harness.
 *
 * Runs a benchmark sweep with the cache disabled, measures wall-clock
 * simulation speed (simulated MIPS) per (benchmark, config) job, and
 * writes the numbers to a JSON report (BENCH_sim_speed.json): per-job
 * wall times (tagged with whether the job replayed a recorded trace),
 * the sweep's per-phase host wall-clock breakdown (generate / proto-hash
 * / image-load / record / replay), and host microbenchmarks of the hot
 * primitives (per-block signature hash, memory-system access, machine
 * snapshot capture / memory fork / restore). Optionally compares
 * every tracked simulated statistic of the sweep against a pinned golden
 * snapshot and fails if anything deviates — the contract that simulator
 * fast paths never change simulated results.
 *
 * Usage:
 *   simperf [--quick] [--bench a,b,c] [--instrs N] [--threads N]
 *           [--out FILE] [--golden FILE] [--backend NAME]
 *           [--list-backends] [--cores N]
 *
 *   --quick    three-benchmark smoke preset (same as the bench binaries)
 *   --out      JSON report path (default BENCH_sim_speed.json)
 *   --golden   sweep-cache snapshot to compare statistics against;
 *              any mismatch is reported and exits nonzero
 *   --cores    multicore scaling mode instead of the speed sweep: run the
 *              scheduler workload base-vs-REV at 1,2,4,..,N cores over
 *              the shared L2/DRAM (DMA pressure on, DRAM bandwidth
 *              fixed) and write a rev-multicore-v1 JSON table (default
 *              BENCH_multicore.json) of per-core SC-fill traffic,
 *              cross-core wait cycles, and aggregate overhead. Exits
 *              nonzero if overhead ever drops as cores are added.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/golden.hpp"
#include "bench/suite.hpp"
#include "bench/sweep_runner.hpp"
#include "common/logging.hpp"
#include "core/snapshot.hpp"
#include "crypto/cubehash.hpp"
#include "crypto/cubehash_lanes.hpp"
#include "mem/memsys.hpp"
#include "program/interp.hpp"
#include "sig/table.hpp"
#include "validate/backend_cli.hpp"
#include "workloads/generator.hpp"
#include "workloads/scheduler.hpp"

namespace
{

using namespace rev;
using namespace rev::bench;

struct Args
{
    SweepOptions opts;
    std::string outPath = "BENCH_sim_speed.json";
    bool outPathSet = false;
    std::string goldenPath; ///< empty = no comparison
    unsigned cores = 0;     ///< nonzero selects the multicore scaling mode
};

[[noreturn]] void
usage(int code)
{
    std::printf("usage: simperf [--quick] [--bench a,b,c] [--instrs N]\n"
                "               [--threads N] [--out FILE] [--golden FILE]\n"
                "               [--dispatch switch|threaded] [--cores N]\n"
                "               %s\n",
                rev::validate::kBackendCliUsage);
    std::exit(code);
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    // Default to the quick preset: simperf is a measurement harness, not
    // a figure generator, and must never read stale cached runs.
    args.opts = SweepOptions::quick();
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(2);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            args.opts = SweepOptions::quick();
        } else if (arg == "--bench") {
            args.opts.benchmarks.clear();
            std::string names = next(i);
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = names.find(',', pos);
                const std::string name =
                    names.substr(pos, comma == std::string::npos
                                          ? std::string::npos
                                          : comma - pos);
                if (!name.empty())
                    args.opts.benchmarks.push_back(name);
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (arg == "--instrs") {
            args.opts.instrBudget = std::strtoull(next(i), nullptr, 10);
        } else if (arg == "--threads") {
            args.opts.threads = static_cast<unsigned>(std::atoi(next(i)));
        } else if (arg == "--out") {
            args.outPath = next(i);
            args.outPathSet = true;
        } else if (arg == "--cores") {
            args.cores = static_cast<unsigned>(std::atoi(next(i)));
            if (args.cores < 1)
                usage(2);
        } else if (arg == "--golden") {
            args.goldenPath = next(i);
        } else if (arg == "--dispatch") {
            const std::string mode = next(i);
            if (mode == "switch")
                prog::setDispatchMode(prog::DispatchMode::Switch);
            else if (mode == "threaded")
                prog::setDispatchMode(prog::DispatchMode::Threaded);
            else {
                std::fprintf(stderr,
                             "simperf: unknown dispatch mode '%s'\n",
                             mode.c_str());
                usage(2);
            }
        } else if (validate::backendCliOptions(argc, argv, &i,
                                               &args.opts.backend)) {
            // shared --backend / --list-backends handling
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "simperf: unknown argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    args.opts.useCache = false; // always measure real runs
    return args;
}

/** Host cost of the two primitives the sweep leans on hardest. */
struct MicroNumbers
{
    double bbHashNs = 0;      ///< one 64-byte basic-block signature hash
    double memsysAccessNs = 0; ///< one timing-model memory access

    // Hash-throughput breakdown: the single-state kernel vs the 4-lane
    // batch kernel over the same total bytes (64-byte block-sized
    // messages, the sweep's common case).
    double hashScalarMBps = 0; ///< single-state permute kernel
    double hashBatchMBps = 0;  ///< CubeHashX4 lockstep batches of 4
    unsigned statesPerRound = 1; ///< lanes one round call advances

    // Machine-snapshot primitives (core/snapshot.hpp): what the
    // campaign / sweep pay per warmed-state reuse instead of
    // re-executing the prefix.
    double snapshotCaptureUs = 0; ///< Simulator::capture()
    double snapshotForkUs = 0;    ///< SparseMemory::fork() alone
    double snapshotRestoreUs = 0; ///< Simulator::forkFrom() total
};

MicroNumbers
runMicro()
{
    using Clock = std::chrono::steady_clock;
    auto secsSince = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    MicroNumbers m;
    {
        u8 buf[64];
        for (unsigned i = 0; i < sizeof(buf); ++i)
            buf[i] = static_cast<u8>(i * 37 + 1);
        constexpr int kIters = 20000;
        u32 sink = 0;
        const auto t0 = Clock::now();
        for (int i = 0; i < kIters; ++i)
            sink ^= sig::bbHashBytes(buf, sizeof(buf), 0x1000 + sink % 7,
                                     0x1040, 5);
        m.bbHashNs = secsSince(t0) * 1e9 / kIters;
    }
    {
        u8 buf[64];
        for (unsigned i = 0; i < sizeof(buf); ++i)
            buf[i] = static_cast<u8>(i * 11 + 5);
        constexpr int kIters = 20000;
        // Single-state kernel throughput.
        {
            u32 sink = 0;
            const auto t0 = Clock::now();
            for (int i = 0; i < kIters; ++i) {
                crypto::CubeHash h(5, 32, 256);
                h.update(buf, sizeof(buf));
                sink ^= crypto::CubeHash::signature32(h.finalize());
            }
            const double secs = secsSince(t0);
            m.hashScalarMBps =
                secs > 0 ? kIters * sizeof(buf) / secs / 1e6 : 0;
            (void)sink;
        }
        // 4-lane batch kernel throughput over the same bytes.
        {
            crypto::CubeHashX4::Msg msgs[4];
            for (auto &msg : msgs)
                msg = {buf, sizeof(buf)};
            crypto::Digest out[4];
            u32 sink = 0;
            const auto t0 = Clock::now();
            for (int i = 0; i < kIters / 4; ++i) {
                crypto::CubeHashX4 hx(5, 32, 256);
                hx.hashBatch(msgs, 4, out);
                sink ^= crypto::CubeHash::signature32(out[i & 3]);
            }
            const double secs = secsSince(t0);
            m.hashBatchMBps =
                secs > 0 ? (kIters / 4) * 4 * sizeof(buf) / secs / 1e6 : 0;
            (void)sink;
        }
        m.statesPerRound = crypto::CubeHashX4::statesPerRound();
    }
    {
        mem::MemorySystem ms{mem::MemConfig{}};
        constexpr int kIters = 200000;
        Cycle at = 0;
        const auto t0 = Clock::now();
        for (int i = 0; i < kIters; ++i) {
            const auto r = ms.access((static_cast<Addr>(i) * 64) & 0x3fffff,
                                     mem::AccessType::DataRead, at);
            at = std::max(at + 1, r.l1Hit ? at + 1 : r.completeAt);
        }
        m.memsysAccessNs = secsSince(t0) * 1e9 / kIters;
    }
    {
        // Snapshot primitives over a small warmed machine.
        const prog::Program program =
            workloads::generateWorkload(workloads::specProfile("mcf"));
        const core::SimConfig cfg = sweepSimConfig(Config::Full32, 6000);
        core::Simulator src(program, cfg);
        if (src.runUntil(2000)) {
            constexpr int kIters = 25;
            auto t0 = Clock::now();
            for (int i = 0; i < kIters; ++i)
                (void)src.capture();
            m.snapshotCaptureUs = secsSince(t0) * 1e6 / kIters;

            const core::Snapshot snap = src.capture();
            t0 = Clock::now();
            for (int i = 0; i < kIters; ++i)
                (void)snap.mem.fork();
            m.snapshotForkUs = secsSince(t0) * 1e6 / kIters;

            t0 = Clock::now();
            for (int i = 0; i < kIters; ++i)
                (void)core::Simulator::forkFrom(snap);
            m.snapshotRestoreUs = secsSince(t0) * 1e6 / kIters;
        }
    }
    return m;
}

// ---------------------------------------------------------------------------
// Multicore scaling mode (--cores): N validating cores contending for
// SC-fill bandwidth on a shared L2/DRAM
// ---------------------------------------------------------------------------

/** One row of the scaling table: base vs REV at a fixed core count. */
struct ScalePoint
{
    unsigned cores = 1;
    u64 baseCycles = 0, revCycles = 0; ///< aggregate (max over cores)
    u64 baseInstrs = 0, revInstrs = 0; ///< summed over cores
    double overhead = 0;               ///< rev/base aggregate-cycle ratio - 1
    u64 scFillAccesses = 0, scFillL1Misses = 0, scFillL2Misses = 0;
    struct PerCore
    {
        u64 instrs = 0, cycles = 0;
        u64 scFill = 0, xcoreL2Wait = 0, xcoreScFillWait = 0;
    };
    std::vector<PerCore> perCore;
};

core::SimResult
runScalePoint(core::SimConfig cfg, const prog::Program &program,
              stats::StatSet *set)
{
    core::Simulator sim(program, cfg);
    core::SimResult r = sim.run();
    if (set)
        *set = sim.stats();
    return r;
}

int
runMulticoreScaling(const Args &args)
{
    const workloads::WorkloadProfile prof = workloads::schedStormProfile();
    const prog::Program program = workloads::buildProgram(prof);
    const std::string out =
        args.outPathSet ? args.outPath : std::string("BENCH_multicore.json");

    // Fixed timing config across every point: the DRAM (and the DMA
    // pressure riding on it) never scales with the core count, so each
    // added validator bids for the same fill bandwidth.
    core::SimConfig proto = sweepSimConfig(Config::Full32, 0);
    proto.backend = args.opts.backend;
    proto.core.maxInstrs =
        args.opts.instrBudget ? args.opts.instrBudget : 120'000;
    proto.mem.dmaIntervalCycles = 400; // background DMA pressure
    proto.coreIdAddr = workloads::kSchedCoreIdWord;

    std::vector<ScalePoint> points;
    for (unsigned n = 1; n <= args.cores; n *= 2) {
        core::SimConfig cfg = proto;
        cfg.numCores = n;

        core::SimConfig base = cfg;
        base.withRev = false;
        const core::SimResult rb = runScalePoint(base, program, nullptr);

        stats::StatSet set;
        const core::SimResult rr = runScalePoint(cfg, program, &set);

        ScalePoint p;
        p.cores = n;
        p.baseCycles = rb.run.cycles;
        p.revCycles = rr.run.cycles;
        p.baseInstrs = rb.run.instrs;
        p.revInstrs = rr.run.instrs;
        p.overhead = p.baseCycles
                         ? static_cast<double>(p.revCycles) / p.baseCycles - 1
                         : 0;
        p.scFillAccesses = rr.scFillAccesses;
        p.scFillL1Misses = rr.scFillL1Misses;
        p.scFillL2Misses = rr.scFillL2Misses;

        std::map<std::string, u64> rows;
        for (const auto &[name, value] : set.rows())
            rows[name] = value;
        p.perCore.resize(rr.perCore.size());
        for (std::size_t c = 0; c < rr.perCore.size(); ++c) {
            ScalePoint::PerCore &pc = p.perCore[c];
            pc.instrs = rr.perCore[c].instrs;
            pc.cycles = rr.perCore[c].cycles;
            if (n == 1) {
                pc.scFill = rows["sim.req.sc_fill.count"];
            } else {
                const std::string cp = "sim.c" + std::to_string(c) + ".";
                pc.scFill = rows[cp + "req.sc_fill.count"];
                pc.xcoreL2Wait = rows[cp + "xcore.l2_wait_cycles"];
                pc.xcoreScFillWait = rows[cp + "xcore.sc_fill_wait_cycles"];
            }
        }
        std::printf("simperf: cores=%u base %llu cycles, rev %llu cycles, "
                    "overhead %.2f%%\n",
                    n, static_cast<unsigned long long>(p.baseCycles),
                    static_cast<unsigned long long>(p.revCycles),
                    100.0 * p.overhead);
        points.push_back(std::move(p));
    }

    std::ofstream os(out);
    if (!os)
        fatal("simperf: cannot write ", out);
    os << "{\n"
       << "  \"schema\": \"rev-multicore-v1\",\n"
       << "  \"bench\": \"" << prof.name << "\",\n"
       << "  \"backend\": \"" << validate::backendName(proto.backend)
       << "\",\n"
       << "  \"instr_budget_per_core\": " << proto.core.maxInstrs << ",\n"
       << "  \"dma_interval_cycles\": " << proto.mem.dmaIntervalCycles
       << ",\n"
       << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ScalePoint &p = points[i];
        os << "    {\"cores\": " << p.cores
           << ", \"base_cycles\": " << p.baseCycles
           << ", \"rev_cycles\": " << p.revCycles
           << ", \"base_instrs\": " << p.baseInstrs
           << ", \"rev_instrs\": " << p.revInstrs
           << ", \"overhead_pct\": " << 100.0 * p.overhead
           << ", \"sc_fill\": {\"accesses\": " << p.scFillAccesses
           << ", \"l1_misses\": " << p.scFillL1Misses
           << ", \"l2_misses\": " << p.scFillL2Misses << "},\n"
           << "     \"per_core\": [";
        for (std::size_t c = 0; c < p.perCore.size(); ++c) {
            const ScalePoint::PerCore &pc = p.perCore[c];
            os << (c ? ", " : "") << "{\"core\": " << c
               << ", \"instrs\": " << pc.instrs
               << ", \"cycles\": " << pc.cycles
               << ", \"sc_fill\": " << pc.scFill
               << ", \"xcore_l2_wait_cycles\": " << pc.xcoreL2Wait
               << ", \"xcore_sc_fill_wait_cycles\": " << pc.xcoreScFillWait
               << "}";
        }
        os << "]}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("simperf: multicore scaling table -> %s\n", out.c_str());

    // The contract the figure rests on: validation overhead may not
    // shrink when more validators contend for the same fill bandwidth.
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].overhead < points[i - 1].overhead - 1e-9) {
            std::fprintf(stderr,
                         "simperf: OVERHEAD REGRESSION: %.4f%% at %u cores "
                         "< %.4f%% at %u cores\n",
                         100.0 * points[i].overhead, points[i].cores,
                         100.0 * points[i - 1].overhead,
                         points[i - 1].cores);
            return 1;
        }
    }
    return 0;
}

void
writeReport(const Args &args, const Sweep &sweep, const SweepRunner &runner,
            double total_wall, const MicroNumbers &micro)
{
    std::ofstream os(args.outPath);
    if (!os)
        fatal("simperf: cannot write ", args.outPath);

    u64 total_instrs = 0;
    double total_job_wall = 0;
    std::size_t replayed_jobs = 0;
    os << "{\n"
       << "  \"schema\": \"rev-sim-speed-v4\",\n"
       << "  \"dispatch\": \""
       << prog::dispatchModeName(prog::dispatchMode()) << "\",\n"
       << "  \"instr_budget\": " << args.opts.instrBudget << ",\n"
       << "  \"threads\": " << runner.threadsUsed() << ",\n"
       << "  \"jobs\": [\n";
    const auto &timings = runner.timings();
    for (std::size_t i = 0; i < timings.size(); ++i) {
        const JobTiming &t = timings[i];
        const RunNumbers &r = sweep.at(t.bench, t.config);
        const double mips = t.wallSeconds > 0
                                ? static_cast<double>(r.instrs) /
                                      t.wallSeconds / 1e6
                                : 0;
        total_instrs += r.instrs;
        total_job_wall += t.wallSeconds;
        replayed_jobs += t.replayed;
        os << "    {\"bench\": \"" << t.bench << "\", \"config\": \""
           << configName(t.config) << "\", \"wall_seconds\": "
           << t.wallSeconds << ", \"instrs\": " << r.instrs
           << ", \"cycles\": " << r.cycles << ", \"sim_mips\": " << mips
           << ", \"replayed\": " << (t.replayed ? "true" : "false") << "}"
           << (i + 1 < timings.size() ? "," : "") << "\n";
    }
    const SweepPhaseTimings &ph = runner.phaseTimings();
    os << "  ],\n"
       << "  \"phases\": {\"generate_seconds\": " << ph.generateSeconds
       << ", \"proto_seconds\": " << ph.protoSeconds
       << ", \"image_seconds\": " << ph.imageSeconds
       << ", \"record_seconds\": " << ph.recordSeconds
       << ", \"replay_seconds\": " << ph.replaySeconds << "},\n"
       << "  \"micro\": {\"bb_hash_ns\": " << micro.bbHashNs
       << ", \"memsys_access_ns\": " << micro.memsysAccessNs
       << ", \"hash_scalar_mbps\": " << micro.hashScalarMBps
       << ", \"hash_batch_mbps\": " << micro.hashBatchMBps
       << ", \"hash_states_per_round\": " << micro.statesPerRound
       << ", \"hash_impl\": \"" << crypto::cubehashImpl() << "\""
       << ", \"snapshot_capture_us\": " << micro.snapshotCaptureUs
       << ", \"snapshot_mem_fork_us\": " << micro.snapshotForkUs
       << ", \"snapshot_restore_us\": " << micro.snapshotRestoreUs
       << "},\n"
       << "  \"total\": {\"wall_seconds\": " << total_wall
       << ", \"job_wall_seconds\": " << total_job_wall
       << ", \"replayed_jobs\": " << replayed_jobs
       << ", \"instrs\": " << total_instrs << ", \"sim_mips\": "
       << (total_job_wall > 0
               ? static_cast<double>(total_instrs) / total_job_wall / 1e6
               : 0)
       << "}\n"
       << "}\n";
    std::printf("simperf: %zu jobs (%zu replayed), %.2fs wall "
                "(gen %.2f + proto %.2f + image %.2f + record %.2f + "
                "replay %.2f), "
                "dispatch=%s hash=%s (%.0f MB/s scalar, %.0f MB/s x%u), "
                "report -> %s\n",
                timings.size(), replayed_jobs, total_wall,
                ph.generateSeconds, ph.protoSeconds, ph.imageSeconds,
                ph.recordSeconds, ph.replaySeconds,
                prog::dispatchModeName(prog::dispatchMode()),
                crypto::cubehashImpl(), micro.hashScalarMBps,
                micro.hashBatchMBps, micro.statesPerRound,
                args.outPath.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);

    if (args.cores)
        return runMulticoreScaling(args);

    const auto t0 = std::chrono::steady_clock::now();
    SweepRunner runner(args.opts);
    const Sweep sweep = runner.run();
    const double total_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    writeReport(args, sweep, runner, total_wall, runMicro());

    if (!args.goldenPath.empty()) {
        const auto diffs =
            compareToGolden(sweep, args.opts, args.goldenPath);
        if (!diffs.empty()) {
            for (const auto &d : diffs)
                std::fprintf(stderr, "simperf: GOLDEN MISMATCH %s/%s: %s\n",
                             d.bench.c_str(), configName(d.config),
                             d.detail.c_str());
            return 1;
        }
        std::printf("simperf: all statistics match golden snapshot %s\n",
                    args.goldenPath.c_str());
    }
    return 0;
}
