/**
 * @file
 * revredteam — adversarial campaign CLI.
 *
 * Expands a seeded CampaignSpec into stratified tamper injections, runs
 * them through the differential detection oracle (src/redteam), and
 * writes the detection matrix as JSON. Exit status encodes the verdict:
 * 0 = no escapes, 1 = at least one escape (each printed with its
 * reproducer fingerprint, minimized first when --shrink is given),
 * 2 = usage error.
 *
 * Usage:
 *   revredteam [--seed N] [--quick] [--injections N] [--budget N]
 *              [--threads N] [--workloads a,b] [--out FILE]
 *              [--backend NAME] [--list-backends] [--shrink]
 *              [--disable-rev] [--snapshots | --no-snapshots]
 *              [--corpus DIR]
 *
 *   --quick          the CI / acceptance campaign (500 injections)
 *   --out            detection-matrix JSON path (default: stdout)
 *   --backend        validation backend under attack (default: rev);
 *                    verdicts consult that backend's claimed-coverage
 *                    matrix, so e.g. code substitution is Blind, not an
 *                    escape, under lofat
 *   --list-backends  print the registered backends and exit
 *   --shrink         minimize each escape to a reproducer plan
 *   --disable-rev    run without validation attached (oracle self-test:
 *                    divergent injections of detectable classes must
 *                    surface as escapes)
 *   --snapshots      fork every injection from a warmed COW snapshot at
 *                    its fire index (--no-snapshots: cold per-plan runs;
 *                    default follows REV_SNAPSHOT_FORK, on). Matrices
 *                    are byte-identical either way — enforced in CI.
 *   --corpus DIR     replay every stored reproducer plan in DIR before
 *                    the sweep (a persistent regression gate: a stored
 *                    escape that still escapes fails the run), then
 *                    persist new escapes (post-shrink) and off-mechanism
 *                    detections into DIR as fp-<fingerprint>.json
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "common/logging.hpp"
#include "redteam/campaign.hpp"
#include "redteam/corpus.hpp"
#include "redteam/shrink.hpp"
#include "validate/backend_cli.hpp"

namespace
{

using namespace rev;
using namespace rev::redteam;

struct Args
{
    CampaignSpec spec;
    std::string outPath;    ///< empty = stdout
    std::string corpusDir;  ///< empty = no corpus
    bool shrink = false;
    std::optional<bool> snapshots; ///< unset = REV_SNAPSHOT_FORK default
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: revredteam [--seed N] [--quick] [--injections N]\n"
        "                  [--budget N] [--threads N] [--workloads a,b]\n"
        "                  [--out FILE] [--backend NAME] [--list-backends]\n"
        "                  [--shrink] [--disable-rev]\n"
        "                  [--snapshots | --no-snapshots] [--corpus DIR]\n");
    std::exit(code);
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    args.spec = CampaignSpec::quick(1);
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(2);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seed") {
            args.spec.seed = std::strtoull(next(i), nullptr, 0);
        } else if (arg == "--quick") {
            args.spec = CampaignSpec::quick(args.spec.seed);
        } else if (arg == "--injections") {
            args.spec.injections = std::strtoull(next(i), nullptr, 0);
        } else if (arg == "--budget") {
            args.spec.instrBudget = std::strtoull(next(i), nullptr, 0);
        } else if (arg == "--threads") {
            args.spec.threads =
                static_cast<unsigned>(std::strtoul(next(i), nullptr, 0));
        } else if (arg == "--workloads") {
            args.spec.workloads.clear();
            std::string names = next(i);
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = names.find(',', pos);
                args.spec.workloads.push_back(
                    names.substr(pos, comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (validate::backendCliOptions(argc, argv, &i,
                                               &args.spec.backend)) {
            // shared --backend / --list-backends handling
        } else if (arg == "--out") {
            args.outPath = next(i);
        } else if (arg == "--shrink") {
            args.shrink = true;
        } else if (arg == "--snapshots") {
            args.snapshots = true;
        } else if (arg == "--no-snapshots") {
            args.snapshots = false;
        } else if (arg == "--corpus") {
            args.corpusDir = next(i);
        } else if (arg == "--disable-rev") {
            args.spec.disableRev = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(2);
        }
    }
    return args;
}

void
printSummary(const DetectionMatrix &m)
{
    std::fprintf(stderr,
                 "campaign seed %llu: %llu injections, backend %s%s\n",
                 static_cast<unsigned long long>(m.seed),
                 static_cast<unsigned long long>(m.injections),
                 validate::backendName(m.backend),
                 m.revEnabled ? "" : " (validation off)");
    std::fprintf(stderr, "%-14s %-10s %9s %9s %7s %7s %6s %8s\n", "class",
                 "mode", "injected", "detected", "crashed", "benign",
                 "blind", "escapes");
    for (const auto &[key, c] : m.cells)
        std::fprintf(stderr,
                     "%-14s %-10s %9llu %9llu %7llu %7llu %6llu %8llu\n",
                     key.first.c_str(), key.second.c_str(),
                     static_cast<unsigned long long>(c.injections),
                     static_cast<unsigned long long>(c.detected),
                     static_cast<unsigned long long>(c.crashed),
                     static_cast<unsigned long long>(c.benign),
                     static_cast<unsigned long long>(c.blind),
                     static_cast<unsigned long long>(c.escapes));
    const CellStats &t = m.total;
    std::fprintf(stderr,
                 "total: %llu detected, %llu crashed, %llu benign, "
                 "%llu blind, %llu escapes (%llu unfired, "
                 "%llu off-mechanism)\n",
                 static_cast<unsigned long long>(t.detected),
                 static_cast<unsigned long long>(t.crashed),
                 static_cast<unsigned long long>(t.benign),
                 static_cast<unsigned long long>(t.blind),
                 static_cast<unsigned long long>(t.escapes),
                 static_cast<unsigned long long>(t.unfired),
                 static_cast<unsigned long long>(t.offMechanism));
    if (t.detected) {
        std::fprintf(stderr, "mean detection latency: %.1f cycles\n",
                     static_cast<double>(t.latencySum) /
                         static_cast<double>(t.detected));
    }
    if (!m.coversAllCells())
        std::fprintf(stderr,
                     "warning: some (class, mode) cells received no "
                     "injections; raise --injections\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);
    try {
        Campaign campaign(args.spec);

        // Corpus replay: the persistent regression gate. Every stored
        // reproducer must have stopped escaping before the fresh sweep
        // counts for anything.
        u64 corpusEscapes = 0;
        if (!args.corpusDir.empty()) {
            const std::vector<CorpusEntry> corpus =
                loadCorpus(args.corpusDir);
            for (const CorpusEntry &e : corpus) {
                if (!campaign.canRun(e.plan)) {
                    std::fprintf(stderr,
                                 "corpus %s: skipped (workload/timing "
                                 "not in this campaign)\n",
                                 e.file.c_str());
                    continue;
                }
                const InjectionResult r = campaign.runPlan(e.plan);
                const bool escaped = r.verdict == Verdict::Escape &&
                                     !args.spec.disableRev;
                if (escaped)
                    ++corpusEscapes;
                std::fprintf(stderr, "corpus %s: %s%s\n", e.file.c_str(),
                             verdictName(r.verdict),
                             escaped ? " (STILL ESCAPING)" : "");
            }
        }

        DetectionMatrix matrix = args.snapshots
                                     ? campaign.run(*args.snapshots)
                                     : campaign.run();

        if (args.shrink && !matrix.escapes.empty()) {
            for (EscapeRecord &e : matrix.escapes) {
                const ShrinkResult s = shrinkEscape(campaign, e.plan);
                e.plan = s.plan;
                e.result = s.result;
                e.fingerprint = s.reproducerSeed;
            }
        }

        const std::string json = matrixToJson(matrix);
        if (args.outPath.empty()) {
            std::printf("%s\n", json.c_str());
        } else {
            std::ofstream os(args.outPath);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n",
                             args.outPath.c_str());
                return 2;
            }
            os << json << "\n";
        }
        printSummary(matrix);

        for (const EscapeRecord &e : matrix.escapes)
            std::fprintf(stderr, "escape fp=0x%llx (%s): %s\n",
                         static_cast<unsigned long long>(e.fingerprint),
                         e.result.reason.empty() ? "silent divergence"
                                                 : e.result.reason.c_str(),
                         planToJson(e.plan).c_str());

        // Persist what this sweep caught: escapes post-shrink (the
        // minimized plan is the reproducer worth keeping) and
        // off-mechanism detections (near-misses).
        if (!args.corpusDir.empty()) {
            u64 saved = 0;
            for (const EscapeRecord &e : matrix.escapes)
                saved += !saveCorpusPlan(args.corpusDir, e.plan).empty();
            for (const EscapeRecord &e : matrix.nearMisses)
                saved += !saveCorpusPlan(args.corpusDir, e.plan).empty();
            if (saved)
                std::fprintf(
                    stderr, "corpus: persisted %llu new reproducer(s)\n",
                    static_cast<unsigned long long>(saved));
        }

        // With REV disabled, escapes are the oracle working as intended.
        if (args.spec.disableRev)
            return 0;
        return matrix.escapes.empty() && corpusEscapes == 0 ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
