/**
 * @file
 * revsim — the command-line driver a downstream user reaches for first.
 *
 *   revsim --bench gobmk --mode full --sc 32 --instrs 500000 --stats
 *   revsim --bench gcc --mode cfi --base           # compare vs base core
 *   revsim --list
 *
 * Options:
 *   --bench NAME       SPEC stand-in to run (default mcf); --list shows all
 *                      ("schedstorm" selects the preemptive-scheduler
 *                      workload from src/workloads/scheduler.cpp)
 *   --cores N          simulate N cores over the shared L2/DRAM; each runs
 *                      its own validator, stats aggregate (default 1)
 *   --mode MODE        full | aggressive | cfi (default full)
 *   --sc KB            signature cache capacity in KB (default 32)
 *   --instrs N         committed-instruction budget (default 500000)
 *   --base             also run the no-REV baseline and print overhead
 *   --shadow-stack     use a shadow call stack instead of Sec. V.A
 *   --page-shadowing   strict R5 whole-run transaction
 *   --interrupts N     external interrupt every N cycles
 *   --dma N            background DMA burst every N cycles
 *   --no-wrong-path    disable wrong-path fetch modeling
 *   --seed N           workload generation seed override
 *   --stats            dump every component's statistics
 *   --attack NAME      run a Table 1 attack instead of a workload
 *                      (--attack list shows the classes)
 *   --record-trace F   record the architectural trace to file F
 *   --replay-trace F   time against the trace in F instead of re-executing
 *                      (falls back to direct execution on any mismatch)
 *   --backend NAME     validation backend: rev (default), lofat, null
 *   --list-backends    print the registered backends and exit
 *   --dispatch MODE    interpreter dispatch: threaded (default) | switch
 *                      (host-speed knob only; simulated results identical)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "attacks/attack.hpp"
#include "core/simulator.hpp"
#include "program/interp.hpp"
#include "program/trace.hpp"
#include "validate/backend_cli.hpp"
#include "workloads/generator.hpp"
#include "workloads/scheduler.hpp"

namespace
{

using namespace rev;

void
usage()
{
    std::printf(
        "usage: revsim [--bench NAME] [--cores N]\n"
        "              [--mode full|aggressive|cfi]\n"
        "              [--sc KB] [--instrs N] [--base] [--shadow-stack]\n"
        "              [--page-shadowing] [--interrupts N] [--dma N]\n"
        "              [--no-wrong-path] [--seed N] [--stats] [--list]\n"
        "              [--record-trace FILE] [--replay-trace FILE]\n"
        "              [--backend NAME] [--list-backends]\n"
        "              [--dispatch threaded|switch]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench = "mcf";
    std::string attack;
    std::string mode_s = "full";
    unsigned sc_kb = 32;
    u64 instrs = 500'000;
    bool with_base = false;
    bool shadow_stack = false;
    bool page_shadowing = false;
    bool stats = false;
    bool wrong_path = true;
    u64 interrupts = 0, dma = 0, seed = 0;
    unsigned cores = 1;
    std::string record_path, replay_path;
    validate::Backend backend = validate::Backend::Rev;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--bench") {
            bench = next();
        } else if (arg == "--mode") {
            mode_s = next();
        } else if (arg == "--cores") {
            cores = static_cast<unsigned>(std::atoi(next()));
            if (cores < 1) {
                usage();
                return 2;
            }
        } else if (arg == "--sc") {
            sc_kb = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--instrs") {
            instrs = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--base") {
            with_base = true;
        } else if (arg == "--shadow-stack") {
            shadow_stack = true;
        } else if (arg == "--page-shadowing") {
            page_shadowing = true;
        } else if (arg == "--interrupts") {
            interrupts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--dma") {
            dma = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--no-wrong-path") {
            wrong_path = false;
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--attack") {
            attack = next();
        } else if (arg == "--record-trace") {
            record_path = next();
        } else if (arg == "--replay-trace") {
            replay_path = next();
        } else if (arg == "--dispatch") {
            const std::string mode = next();
            if (mode == "switch")
                prog::setDispatchMode(prog::DispatchMode::Switch);
            else if (mode == "threaded")
                prog::setDispatchMode(prog::DispatchMode::Threaded);
            else {
                usage();
                return 2;
            }
        } else if (validate::backendCliOptions(argc, argv, &i, &backend)) {
            // shared --backend / --list-backends handling
        } else if (arg == "--list") {
            for (const auto &p : workloads::spec2006Profiles())
                std::printf("%s\n", p.name.c_str());
            std::printf("schedstorm\n");
            return 0;
        } else {
            usage();
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }

    sig::ValidationMode mode;
    if (mode_s == "full")
        mode = sig::ValidationMode::Full;
    else if (mode_s == "aggressive")
        mode = sig::ValidationMode::Aggressive;
    else if (mode_s == "cfi")
        mode = sig::ValidationMode::CfiOnly;
    else {
        usage();
        return 2;
    }

    if (!attack.empty()) {
        const auto all = attacks::makeAllAttacks();
        if (attack == "list") {
            for (const auto &atk : all)
                std::printf("%s\n", atk->name());
            return 0;
        }
        for (const auto &atk : all) {
            if (attack != atk->name())
                continue;
            core::SimConfig acfg;
            acfg.mode = mode_s == "aggressive"
                            ? sig::ValidationMode::Aggressive
                            : (mode_s == "cfi" ? sig::ValidationMode::CfiOnly
                                               : sig::ValidationMode::Full);
            acfg.backend = backend;
            const attacks::AttackOutcome out = atk->execute(acfg);
            std::printf("attack               %s\n", atk->name());
            std::printf("mechanism            %s\n",
                        atk->table1Mechanism());
            std::printf("triggered            %s\n",
                        out.triggered ? "yes" : "no");
            std::printf("detected             %s\n",
                        out.detected ? out.reason.c_str() : "NO");
            std::printf("attacker goal met    %s\n",
                        out.succeeded ? "YES (tainted memory)" : "no");
            return out.detected || !atk->detectableIn(acfg.mode, backend)
                       ? 0
                       : 1;
        }
        std::fprintf(stderr, "unknown attack '%s' (try --attack list)\n",
                     attack.c_str());
        return 2;
    }

    workloads::WorkloadProfile prof = workloads::isSchedulerWorkload(bench)
                                          ? workloads::schedStormProfile()
                                          : workloads::specProfile(bench);
    if (seed)
        prof.seed = seed;
    std::fprintf(stderr, "[revsim] generating %s...\n", bench.c_str());
    const prog::Program program = workloads::buildProgram(prof);

    core::SimConfig cfg;
    cfg.mode = mode;
    cfg.backend = backend;
    cfg.numCores = cores;
    if (cores > 1)
        cfg.coreIdAddr = workloads::kSchedCoreIdWord;
    cfg.rev.sc.sizeBytes = sc_kb * 1024ull;
    cfg.core.maxInstrs = instrs;
    cfg.core.modelWrongPath = wrong_path;
    cfg.core.interruptInterval = interrupts;
    cfg.mem.dmaIntervalCycles = dma;
    cfg.pageShadowing = page_shadowing;
    if (shadow_stack)
        cfg.rev.returnValidation = validate::ReturnValidation::ShadowStack;

    prog::TraceRecorder recorder;
    prog::Trace replay_trace;
    if (!record_path.empty() && !replay_path.empty()) {
        std::fprintf(stderr,
                     "[revsim] --record-trace and --replay-trace are "
                     "mutually exclusive\n");
        return 2;
    }
    if (!record_path.empty())
        cfg.traceRecorder = &recorder;
    if (!replay_path.empty()) {
        if (!replay_trace.load(replay_path)) {
            std::fprintf(stderr, "[revsim] cannot read trace %s\n",
                         replay_path.c_str());
            return 2;
        }
        cfg.replayTrace = &replay_trace;
    }

    double base_ipc = 0;
    if (with_base) {
        core::SimConfig bcfg = cfg;
        bcfg.withRev = false;
        // The base run must not consume the recorder (one trace per
        // simulation); replay attachment revalidates per Simulator.
        bcfg.traceRecorder = nullptr;
        std::fprintf(stderr, "[revsim] base run...\n");
        base_ipc = core::Simulator(program, bcfg).run().run.ipc();
    }

    std::fprintf(stderr, "[revsim] %s run (%s, %u KB SC)...\n",
                 validate::backendName(backend), sig::modeName(mode),
                 sc_kb);
    core::Simulator sim(program, cfg);
    const bool replaying = sim.replayActive();
    const core::SimResult r = sim.run();

    if (!record_path.empty()) {
        const prog::Trace t = recorder.take();
        if (!t.replayable())
            std::fprintf(stderr,
                         "[revsim] warning: recorded trace is not "
                         "replayable (SMC or abnormal end)\n");
        if (!t.save(record_path)) {
            std::fprintf(stderr, "[revsim] cannot write trace %s\n",
                         record_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "[revsim] trace -> %s (%llu instrs)\n",
                     record_path.c_str(),
                     static_cast<unsigned long long>(t.instrCount));
    }
    if (!replay_path.empty())
        std::fprintf(stderr, "[revsim] replay %s\n",
                     replaying ? "attached" : "rejected (ran direct)");

    std::printf("benchmark            %s\n", bench.c_str());
    std::printf("mode                 %s\n", sig::modeName(mode));
    std::printf("instructions         %llu\n",
                static_cast<unsigned long long>(r.run.instrs));
    std::printf("cycles               %llu\n",
                static_cast<unsigned long long>(r.run.cycles));
    std::printf("IPC                  %.4f\n", r.run.ipc());
    if (cores > 1) {
        std::printf("cores                %u\n", cores);
        for (std::size_t c = 0; c < r.perCore.size(); ++c) {
            const cpu::RunResult &pc = r.perCore[c];
            std::printf("  core %-2zu            %llu instrs, %llu cycles, "
                        "IPC %.4f\n",
                        c, static_cast<unsigned long long>(pc.instrs),
                        static_cast<unsigned long long>(pc.cycles),
                        pc.ipc());
        }
    }
    if (with_base) {
        std::printf("base IPC             %.4f\n", base_ipc);
        std::printf("REV overhead         %.2f%%\n",
                    100.0 * (base_ipc - r.run.ipc()) / base_ipc);
    }
    std::printf("branches             %llu (unique %llu, mispred %llu)\n",
                static_cast<unsigned long long>(r.run.committedBranches),
                static_cast<unsigned long long>(r.run.uniqueBranches),
                static_cast<unsigned long long>(r.run.mispredicts));
    std::printf("BBs validated        %llu\n",
                static_cast<unsigned long long>(r.validation.bbValidated));
    if (backend == validate::Backend::Rev)
        std::printf("SC misses            %llu complete + %llu partial\n",
                    static_cast<unsigned long long>(r.rev.scCompleteMisses),
                    static_cast<unsigned long long>(r.rev.scPartialMisses));
    if (backend == validate::Backend::LoFat) {
        std::printf("chain updates        %llu\n",
                    static_cast<unsigned long long>(r.lofat.chainUpdates));
        std::printf("measurement spills   %llu (%llu bytes)\n",
                    static_cast<unsigned long long>(r.lofat.bufferSpills),
                    static_cast<unsigned long long>(r.lofat.spillBytes));
    }
    std::printf("commit stalls        %llu cycles\n",
                static_cast<unsigned long long>(
                    r.validation.commitStallCycles));
    std::printf("signature tables     %llu bytes\n",
                static_cast<unsigned long long>(r.sigTableBytes));
    std::printf("violations           %s\n",
                r.run.violation ? r.run.violation->reason.c_str() : "none");
    if (stats) {
        // Structured accessor instead of text parsing: rows arrive as
        // (name, value) pairs we can format (or filter) directly.
        std::printf("---- component statistics ----\n");
        const stats::StatSet set = sim.stats();
        for (const auto &[name, value] : set.rows())
            std::printf("%-36s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    }
    return 0;
}
