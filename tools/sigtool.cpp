/**
 * @file
 * sigtool — the offline toolchain inspector: builds the signature tables
 * for a SPEC stand-in (or a random profile) and reports everything the
 * trusted linker would: CFG shape, per-mode table geometry, chain-length
 * distribution, hash-uniqueness, and a verification pass that every
 * reference entry is reachable through the decrypting walker.
 *
 *   sigtool [benchmark] [--mode full|aggressive|cfi] [--verify]
 */

#include <cstdio>
#include <cstring>
#include <map>

#include "program/cfg.hpp"
#include "sig/sigstore.hpp"
#include "workloads/generator.hpp"

int
main(int argc, char **argv)
{
    using namespace rev;

    std::string bench = "mcf";
    std::string mode_s = "full";
    bool verify = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--mode" && i + 1 < argc)
            mode_s = argv[++i];
        else if (arg == "--verify")
            verify = true;
        else if (arg[0] != '-')
            bench = arg;
    }
    sig::ValidationMode mode = sig::ValidationMode::Full;
    if (mode_s == "aggressive")
        mode = sig::ValidationMode::Aggressive;
    else if (mode_s == "cfi")
        mode = sig::ValidationMode::CfiOnly;

    std::printf("sigtool: %s (%s validation)\n", bench.c_str(),
                sig::modeName(mode));
    const prog::Program program =
        workloads::generateWorkload(workloads::specProfile(bench));

    crypto::KeyVault vault(1);
    sig::SigStore store(program, mode, vault);

    for (const auto &ms : store.moduleSigs()) {
        const prog::CfgStats cs = ms.cfg.stats();
        std::printf("\nmodule '%s' @0x%llx (%zu code bytes)\n",
                    ms.module->name.c_str(),
                    static_cast<unsigned long long>(ms.module->base),
                    ms.module->codeSize);
        std::printf("  CFG: %llu validation units over %llu terminators "
                    "(%.2f inst/BB, %.2f succ/BB)\n",
                    static_cast<unsigned long long>(cs.numBlocks),
                    static_cast<unsigned long long>(cs.numTerminators),
                    cs.avgInstrsPerBlock, cs.avgSuccsPerBlock);
        std::printf("  computed sites: %llu of %llu branch sites "
                    "(%.1f%%)\n",
                    static_cast<unsigned long long>(cs.numComputedSites),
                    static_cast<unsigned long long>(cs.numBranchInstrs),
                    100.0 * cs.numComputedSites /
                        static_cast<double>(cs.numBranchInstrs));
        const auto &st = ms.stats;
        std::printf("  table: %llu bytes (%.1f%% of code) = %llu buckets "
                    "x %u B + %llu spill records\n",
                    static_cast<unsigned long long>(st.sizeBytes),
                    100.0 * static_cast<double>(st.sizeBytes) /
                        static_cast<double>(ms.module->codeSize),
                    static_cast<unsigned long long>(st.numBuckets),
                    sig::recordSize(mode),
                    static_cast<unsigned long long>(st.contRecords));
        std::printf("  longest bucket chain: %llu entries; truncated-hash "
                    "duplicates: %llu\n",
                    static_cast<unsigned long long>(st.maxChainLength),
                    static_cast<unsigned long long>(st.hashDuplicates));

        if (verify && mode != sig::ValidationMode::CfiOnly) {
            SparseMemory mem;
            store.loadInto(mem);
            sig::TableReader reader(mem, ms.tableBase, vault);
            u64 ok = 0, walk_reads = 0;
            std::map<std::size_t, u64> read_histo;
            for (const auto &bb : ms.cfg.blocks()) {
                const auto res = reader.lookup(
                    bb.term, sig::bbHash(*ms.module, bb, 5),
                    ms.module->base);
                ok += res.found;
                walk_reads += res.memAddrs.size();
                ++read_histo[res.memAddrs.size()];
            }
            std::printf("  verify: %llu/%zu entries reachable, %.2f reads "
                        "per lookup\n",
                        static_cast<unsigned long long>(ok),
                        ms.cfg.blocks().size(),
                        static_cast<double>(walk_reads) /
                            static_cast<double>(ms.cfg.blocks().size()));
            std::printf("  lookup-read histogram:");
            for (const auto &[reads, count] : read_histo)
                std::printf(" %zu:%llu", reads,
                            static_cast<unsigned long long>(count));
            std::printf("\n");
        }
    }
    return 0;
}
