# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(simperf_smoke "/root/repo/tools/simperf" "--bench" "bzip2" "--instrs" "20000" "--threads" "1" "--out" "/root/repo/simperf_smoke.json")
set_tests_properties(simperf_smoke PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(revsim_attack_list "/root/repo/tools/revsim" "--attack" "list")
set_tests_properties(revsim_attack_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(revsim_rop "/root/repo/tools/revsim" "--attack" "return-oriented")
set_tests_properties(revsim_rop PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(revsim_help "/root/repo/tools/revsim" "--help")
set_tests_properties(revsim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(revsim_bench_list "/root/repo/tools/revsim" "--list")
set_tests_properties(revsim_bench_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sigtool_verify "/root/repo/tools/sigtool" "mcf" "--verify")
set_tests_properties(sigtool_verify PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(revredteam_smoke "/root/repo/tools/revredteam" "--seed" "1" "--injections" "72" "--budget" "6000" "--out" "/root/repo/redteam_smoke.json")
set_tests_properties(revredteam_smoke PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(revverify_smoke "/root/repo/tools/revverify" "--quick" "--out" "/root/repo/revverify_smoke.json")
set_tests_properties(revverify_smoke PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
