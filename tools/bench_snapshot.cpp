/**
 * @file
 * Snapshot micro-benchmark: what does it cost to capture a warmed
 * machine state, to COW-fork its memory image, and to stand up a full
 * Simulator from the snapshot — versus re-executing the warm-up prefix
 * from instruction zero, which is what every snapshot consumer (the
 * red-team campaign, the sweep's shared memory images) avoids paying.
 *
 * Writes BENCH_snapshot.json:
 *   {
 *     "schema": "rev-bench-snapshot-v1",
 *     "fork_index": ..., "iterations": ...,
 *     "cold_prefix_us": ...,       // construct + runUntil(F), amortized
 *     "snapshot_capture_us": ...,  // Simulator::capture()
 *     "memory_fork_us": ...,       // SparseMemory::fork() alone
 *     "snapshot_restore_us": ...,  // Simulator::forkFrom() total
 *     "fork_speedup": ...          // cold_prefix_us / snapshot_restore_us
 *   }
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/suite.hpp"
#include "core/snapshot.hpp"
#include "workloads/generator.hpp"

namespace
{

using Clock = std::chrono::steady_clock;

double
usSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rev;

    const char *out_path = "BENCH_snapshot.json";
    u64 budget = 20'000;
    u64 fork_index = 7'000;
    int iters = 50;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc)
            budget = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--fork-index") == 0 && i + 1 < argc)
            fork_index = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc)
            iters = std::atoi(argv[++i]);
        else {
            std::fprintf(stderr,
                         "usage: bench_snapshot [--out FILE] [--budget N] "
                         "[--fork-index N] [--iters N]\n");
            return 2;
        }
    }

    const prog::Program program =
        workloads::generateWorkload(workloads::specProfile("sjeng"));
    const core::SimConfig cfg =
        bench::sweepSimConfig(bench::Config::Full32, budget);

    // Cold prefix: what a fork avoids. Fewer iterations — it dominates.
    const int cold_iters = iters / 10 + 1;
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < cold_iters; ++i) {
        core::Simulator sim(program, cfg);
        if (!sim.runUntil(fork_index)) {
            std::fprintf(stderr, "bench_snapshot: run ended before fork "
                                 "index %llu\n",
                         static_cast<unsigned long long>(fork_index));
            return 1;
        }
    }
    const double cold_prefix_us = usSince(t0) / cold_iters;

    core::Simulator source(program, cfg);
    if (!source.runUntil(fork_index))
        return 1;

    t0 = Clock::now();
    for (int i = 0; i < iters; ++i)
        (void)source.capture();
    const double capture_us = usSince(t0) / iters;

    const core::Snapshot snap = source.capture();

    t0 = Clock::now();
    for (int i = 0; i < iters; ++i)
        (void)snap.mem.fork();
    const double mem_fork_us = usSince(t0) / iters;

    t0 = Clock::now();
    for (int i = 0; i < iters; ++i)
        (void)core::Simulator::forkFrom(snap);
    const double restore_us = usSince(t0) / iters;

    const double speedup =
        restore_us > 0.0 ? cold_prefix_us / restore_us : 0.0;

    std::string json = "{";
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "\"schema\":\"rev-bench-snapshot-v1\","
                  "\"fork_index\":%llu,\"budget\":%llu,\"iterations\":%d,"
                  "\"cold_prefix_us\":%.1f,\"snapshot_capture_us\":%.1f,"
                  "\"memory_fork_us\":%.1f,\"snapshot_restore_us\":%.1f,"
                  "\"fork_speedup\":%.1f",
                  static_cast<unsigned long long>(fork_index),
                  static_cast<unsigned long long>(budget), iters,
                  cold_prefix_us, capture_us, mem_fork_us, restore_us,
                  speedup);
    json += buf;
    json += "}";

    FILE *f = std::fopen(out_path, "w");
    if (!f) {
        std::fprintf(stderr, "bench_snapshot: cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);

    std::fprintf(stderr,
                 "cold prefix %.0f us | capture %.0f us | mem fork %.0f us "
                 "| restore %.0f us | fork speedup %.1fx\n",
                 cold_prefix_us, capture_us, mem_fork_us, restore_us,
                 speedup);
    return 0;
}
