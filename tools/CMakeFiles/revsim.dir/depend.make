# Empty dependencies file for revsim.
# This may be replaced when dependencies are built.
