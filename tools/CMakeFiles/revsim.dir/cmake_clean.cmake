file(REMOVE_RECURSE
  "CMakeFiles/revsim.dir/revsim.cpp.o"
  "CMakeFiles/revsim.dir/revsim.cpp.o.d"
  "revsim"
  "revsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
