file(REMOVE_RECURSE
  "CMakeFiles/sigtool.dir/sigtool.cpp.o"
  "CMakeFiles/sigtool.dir/sigtool.cpp.o.d"
  "sigtool"
  "sigtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
