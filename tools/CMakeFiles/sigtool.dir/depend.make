# Empty dependencies file for sigtool.
# This may be replaced when dependencies are built.
