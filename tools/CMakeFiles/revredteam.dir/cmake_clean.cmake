file(REMOVE_RECURSE
  "CMakeFiles/revredteam.dir/revredteam.cpp.o"
  "CMakeFiles/revredteam.dir/revredteam.cpp.o.d"
  "revredteam"
  "revredteam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revredteam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
