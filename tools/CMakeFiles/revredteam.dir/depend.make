# Empty dependencies file for revredteam.
# This may be replaced when dependencies are built.
