# Empty dependencies file for revverify.
# This may be replaced when dependencies are built.
