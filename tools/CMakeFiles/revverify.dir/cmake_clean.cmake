file(REMOVE_RECURSE
  "CMakeFiles/revverify.dir/revverify.cpp.o"
  "CMakeFiles/revverify.dir/revverify.cpp.o.d"
  "revverify"
  "revverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
