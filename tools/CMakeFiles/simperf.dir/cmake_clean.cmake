file(REMOVE_RECURSE
  "CMakeFiles/simperf.dir/simperf.cpp.o"
  "CMakeFiles/simperf.dir/simperf.cpp.o.d"
  "simperf"
  "simperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
