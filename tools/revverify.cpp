/**
 * @file
 * revverify — the standalone attestation-verifier service harness.
 *
 * Drives the session-multiplexed VerifierService with the built-in load
 * generator: records one measurement stream per (workload, backend)
 * with the real simulator, fans the corpus out as N concurrent prover
 * sessions over the chosen transport (in-memory rings or Unix-domain
 * socketpairs), and adjudicates every session's verdict against the
 * inline backend's golden. Reports verifications/sec, p50/p99
 * close-to-verdict session latency, bytes/session, dedup hit rate, and
 * peak RSS, and writes them to a JSON report (BENCH_verifier.json).
 * Exits nonzero when any session's verdict, reason, or counters diverge
 * from inline validation — the CI contract that the attestation split
 * changes no result.
 *
 * Usage:
 *   revverify [--sessions N] [--workers N] [--provers N] [--instrs N]
 *             [--bench a,b,c] [--chunk BYTES] [--backend NAME]
 *             [--transport mem|socket] [--dedup N | --no-dedup]
 *             [--window N] [--verdicts-out FILE]
 *             [--list-backends] [--quick] [--soak] [--out FILE]
 *
 *   --quick        small smoke preset (64 sessions, 20k instrs, bzip2)
 *   --soak         100k-session soak preset (short streams, bounded
 *                  4096-session window, 64 KiB transports)
 *   --transport    session transport (default mem)
 *   --dedup        shared verified-unit cache entries (default 65536)
 *   --no-dedup     disable cross-session dedup
 *   --window       live-session cap, 0 = all at once
 *   --verdicts-out write the canonical sorted verdict stream here (CI
 *                  cmp's memory vs socket byte for byte)
 *   --backend      restrict the corpus to one backend (default rev+lofat)
 *   --out          JSON report path (default BENCH_verifier.json)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/logging.hpp"
#include "validate/backend_cli.hpp"
#include "verifier/loadgen.hpp"

namespace
{

using namespace rev;

struct Args
{
    verifier::LoadGenOptions opts;
    std::string outPath = "BENCH_verifier.json";
    std::string verdictsPath; ///< empty = don't write
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: revverify [--sessions N] [--workers N] [--provers N]\n"
        "                 [--instrs N] [--bench a,b,c] [--chunk BYTES]\n"
        "                 [--transport mem|socket] [--dedup N | --no-dedup]\n"
        "                 [--window N] [--verdicts-out FILE]\n"
        "                 [--quick] [--soak] [--out FILE] %s\n",
        validate::kBackendCliUsage);
    std::exit(code);
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    validate::Backend backend = validate::Backend::Rev;
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(2);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sessions") {
            args.opts.sessions =
                static_cast<unsigned>(std::atoi(next(i)));
        } else if (arg == "--workers") {
            args.opts.workers = static_cast<unsigned>(std::atoi(next(i)));
        } else if (arg == "--provers") {
            args.opts.provers = static_cast<unsigned>(std::atoi(next(i)));
        } else if (arg == "--instrs") {
            args.opts.instrBudget = std::strtoull(next(i), nullptr, 10);
        } else if (arg == "--chunk") {
            args.opts.chunkBytes =
                static_cast<std::size_t>(std::strtoull(next(i), nullptr, 10));
        } else if (arg == "--bench") {
            args.opts.benchmarks.clear();
            std::istringstream names(next(i));
            std::string name;
            while (std::getline(names, name, ','))
                if (!name.empty())
                    args.opts.benchmarks.push_back(name);
        } else if (arg == "--transport") {
            const std::string t = next(i);
            if (t == "mem" || t == "memory")
                args.opts.transport = verifier::TransportKind::Memory;
            else if (t == "socket")
                args.opts.transport = verifier::TransportKind::Socket;
            else
                usage(2);
        } else if (arg == "--dedup") {
            args.opts.dedupEntries =
                static_cast<std::size_t>(std::strtoull(next(i), nullptr, 10));
        } else if (arg == "--no-dedup") {
            args.opts.dedupEntries = 0;
        } else if (arg == "--window") {
            args.opts.window = static_cast<unsigned>(std::atoi(next(i)));
        } else if (arg == "--verdicts-out") {
            args.verdictsPath = next(i);
        } else if (arg == "--quick") {
            args.opts.sessions = 64;
            args.opts.instrBudget = 20000;
            args.opts.benchmarks = {"bzip2"};
        } else if (arg == "--soak") {
            // The 100k soak: short streams (throughput dominated by
            // session turnover, not stream length), a bounded live
            // window so memory stays flat, small per-session
            // transports.
            args.opts.sessions = 100000;
            args.opts.instrBudget = 5000;
            args.opts.window = 4096;
            args.opts.ringBytes = 64 * 1024;
        } else if (arg == "--out") {
            args.outPath = next(i);
        } else if (validate::backendCliOptions(argc, argv, &i, &backend)) {
            args.opts.backends = {backend};
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "revverify: unknown argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    return args;
}

/** Peak resident set of this process, in bytes (0 when unavailable). */
u64
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<u64>(ru.ru_maxrss); // bytes on Darwin
#else
    return static_cast<u64>(ru.ru_maxrss) * 1024; // KiB on Linux
#endif
#else
    return 0;
#endif
}

void
writeReport(const Args &args, const verifier::LoadGenReport &r)
{
    std::ofstream os(args.outPath);
    if (!os)
        fatal("revverify: cannot write ", args.outPath);
    os << "{\n"
       << "  \"schema\": \"rev-verifier-v3\",\n"
       << "  \"sessions\": " << r.sessions << ",\n"
       << "  \"workers\": " << r.workers << ",\n"
       << "  \"provers\": " << r.provers << ",\n"
       << "  \"transport\": \"" << verifier::transportName(r.transport)
       << "\",\n"
       << "  \"cases\": [\n";
    for (std::size_t i = 0; i < r.cases.size(); ++i) {
        const verifier::StreamCase &c = r.cases[i];
        os << "    {\"bench\": \"" << c.bench << "\", \"backend\": \""
           << validate::backendName(c.backend) << "\", \"stream_bytes\": "
           << c.stream.size() << ", \"replayed\": "
           << (c.replayed ? "true" : "false") << ", \"detected\": "
           << (c.detected ? "true" : "false") << ", \"bb_validated\": "
           << c.bbValidated << "}"
           << (i + 1 < r.cases.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"capture_seconds\": " << r.captureSeconds << ",\n"
       << "  \"wall_seconds\": " << r.wallSeconds << ",\n"
       << "  \"verifications_per_sec\": " << r.verificationsPerSec << ",\n"
       << "  \"p50_latency_seconds\": " << r.p50LatencySeconds << ",\n"
       << "  \"p99_latency_seconds\": " << r.p99LatencySeconds << ",\n"
       << "  \"bytes_per_session\": " << r.bytesPerSession << ",\n"
       << "  \"peak_transport_bytes_per_session\": "
       << r.peakBytesPerSession << ",\n"
       << "  \"max_peak_transport_bytes\": " << r.maxPeakBytes << ",\n"
       << "  \"total_stream_bytes\": " << r.totalBytes << ",\n"
       << "  \"dedup_hits\": " << r.dedupHits << ",\n"
       << "  \"dedup_misses\": " << r.dedupMisses << ",\n"
       << "  \"dedup_evictions\": " << r.dedupEvictions << ",\n"
       << "  \"dedup_hit_rate\": " << r.dedupHitRate << ",\n"
       << "  \"peak_rss_bytes\": " << peakRssBytes() << ",\n"
       << "  \"divergences\": " << r.divergences.size() << "\n"
       << "}\n";
}

void
writeVerdicts(const std::string &path, const verifier::LoadGenReport &r)
{
    std::ofstream os(path);
    if (!os)
        fatal("revverify: cannot write ", path);
    for (const std::string &line : r.verdictLines)
        os << line << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);

    const verifier::LoadGenReport r = verifier::runLoadGen(args.opts);
    writeReport(args, r);
    if (!args.verdictsPath.empty())
        writeVerdicts(args.verdictsPath, r);

    std::printf(
        "revverify: %u sessions (%zu cases, %s transport), "
        "%.0f verifications/s, p50 %.3fms p99 %.3fms, %.0f bytes/session "
        "(transport peak %.0f avg / %llu max), dedup %.1f%% hit "
        "(%llu/%llu, %llu evicted), rss %.1f MiB, "
        "capture %.2fs run %.2fs -> %s\n",
        r.sessions, r.cases.size(), verifier::transportName(r.transport),
        r.verificationsPerSec, r.p50LatencySeconds * 1e3,
        r.p99LatencySeconds * 1e3, r.bytesPerSession,
        r.peakBytesPerSession,
        static_cast<unsigned long long>(r.maxPeakBytes),
        r.dedupHitRate * 100,
        static_cast<unsigned long long>(r.dedupHits),
        static_cast<unsigned long long>(r.dedupHits + r.dedupMisses),
        static_cast<unsigned long long>(r.dedupEvictions),
        static_cast<double>(peakRssBytes()) / (1024.0 * 1024.0),
        r.captureSeconds, r.wallSeconds, args.outPath.c_str());

    if (!r.divergences.empty()) {
        const std::size_t show =
            std::min<std::size_t>(r.divergences.size(), 20);
        for (std::size_t i = 0; i < show; ++i) {
            const verifier::Divergence &d = r.divergences[i];
            const verifier::StreamCase &c = r.cases[d.caseIdx];
            std::fprintf(stderr,
                         "revverify: DIVERGENCE session %llu (%s/%s): %s\n",
                         static_cast<unsigned long long>(d.session),
                         c.bench.c_str(),
                         validate::backendName(c.backend),
                         d.detail.c_str());
        }
        std::fprintf(stderr, "revverify: %zu/%u sessions diverged\n",
                     r.divergences.size(), r.sessions);
        return 1;
    }
    std::printf("revverify: all %u session verdicts match inline "
                "validation\n",
                r.sessions);
    return 0;
}
