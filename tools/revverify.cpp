/**
 * @file
 * revverify — the standalone attestation-verifier service harness.
 *
 * Drives the session-multiplexed VerifierService with the built-in load
 * generator: records one measurement stream per (workload, backend)
 * with the real simulator, fans the corpus out as N concurrent prover
 * sessions, and adjudicates every session's verdict against the inline
 * backend's golden. Reports verifications/sec, p50/p99 close-to-verdict
 * session latency, and bytes/session, and writes them to a JSON report
 * (BENCH_verifier.json). Exits nonzero when any session's verdict,
 * reason, or counters diverge from inline validation — the CI contract
 * that the attestation split changes no result.
 *
 * Usage:
 *   revverify [--sessions N] [--workers N] [--provers N] [--instrs N]
 *             [--bench a,b,c] [--chunk BYTES] [--backend NAME]
 *             [--list-backends] [--quick] [--out FILE]
 *
 *   --quick      small smoke preset (64 sessions, 20k instrs, bzip2)
 *   --backend    restrict the corpus to one backend (default: rev+lofat)
 *   --out        JSON report path (default BENCH_verifier.json)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hpp"
#include "validate/backend_cli.hpp"
#include "verifier/loadgen.hpp"

namespace
{

using namespace rev;

struct Args
{
    verifier::LoadGenOptions opts;
    std::string outPath = "BENCH_verifier.json";
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: revverify [--sessions N] [--workers N] [--provers N]\n"
        "                 [--instrs N] [--bench a,b,c] [--chunk BYTES]\n"
        "                 [--quick] [--out FILE] %s\n",
        validate::kBackendCliUsage);
    std::exit(code);
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    validate::Backend backend = validate::Backend::Rev;
    auto next = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(2);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sessions") {
            args.opts.sessions =
                static_cast<unsigned>(std::atoi(next(i)));
        } else if (arg == "--workers") {
            args.opts.workers = static_cast<unsigned>(std::atoi(next(i)));
        } else if (arg == "--provers") {
            args.opts.provers = static_cast<unsigned>(std::atoi(next(i)));
        } else if (arg == "--instrs") {
            args.opts.instrBudget = std::strtoull(next(i), nullptr, 10);
        } else if (arg == "--chunk") {
            args.opts.chunkBytes =
                static_cast<std::size_t>(std::strtoull(next(i), nullptr, 10));
        } else if (arg == "--bench") {
            args.opts.benchmarks.clear();
            std::istringstream names(next(i));
            std::string name;
            while (std::getline(names, name, ','))
                if (!name.empty())
                    args.opts.benchmarks.push_back(name);
        } else if (arg == "--quick") {
            args.opts.sessions = 64;
            args.opts.instrBudget = 20000;
            args.opts.benchmarks = {"bzip2"};
        } else if (arg == "--out") {
            args.outPath = next(i);
        } else if (validate::backendCliOptions(argc, argv, &i, &backend)) {
            args.opts.backends = {backend};
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "revverify: unknown argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    return args;
}

void
writeReport(const Args &args, const verifier::LoadGenReport &r)
{
    std::ofstream os(args.outPath);
    if (!os)
        fatal("revverify: cannot write ", args.outPath);
    os << "{\n"
       << "  \"schema\": \"rev-verifier-v2\",\n"
       << "  \"sessions\": " << r.sessions << ",\n"
       << "  \"workers\": " << r.workers << ",\n"
       << "  \"provers\": " << r.provers << ",\n"
       << "  \"cases\": [\n";
    for (std::size_t i = 0; i < r.cases.size(); ++i) {
        const verifier::StreamCase &c = r.cases[i];
        os << "    {\"bench\": \"" << c.bench << "\", \"backend\": \""
           << validate::backendName(c.backend) << "\", \"stream_bytes\": "
           << c.stream.size() << ", \"replayed\": "
           << (c.replayed ? "true" : "false") << ", \"detected\": "
           << (c.detected ? "true" : "false") << ", \"bb_validated\": "
           << c.bbValidated << "}"
           << (i + 1 < r.cases.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"capture_seconds\": " << r.captureSeconds << ",\n"
       << "  \"wall_seconds\": " << r.wallSeconds << ",\n"
       << "  \"verifications_per_sec\": " << r.verificationsPerSec << ",\n"
       << "  \"p50_latency_seconds\": " << r.p50LatencySeconds << ",\n"
       << "  \"p99_latency_seconds\": " << r.p99LatencySeconds << ",\n"
       << "  \"bytes_per_session\": " << r.bytesPerSession << ",\n"
       << "  \"peak_ring_bytes_per_session\": " << r.peakBytesPerSession
       << ",\n"
       << "  \"max_peak_ring_bytes\": " << r.maxPeakBytes << ",\n"
       << "  \"total_stream_bytes\": " << r.totalBytes << ",\n"
       << "  \"divergences\": " << r.divergences.size() << "\n"
       << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);

    const verifier::LoadGenReport r = verifier::runLoadGen(args.opts);
    writeReport(args, r);

    std::printf("revverify: %u sessions (%zu cases), %.0f verifications/s, "
                "p50 %.3fms p99 %.3fms, %.0f bytes/session "
                "(ring peak %.0f avg / %llu max), "
                "capture %.2fs run %.2fs -> %s\n",
                r.sessions, r.cases.size(), r.verificationsPerSec,
                r.p50LatencySeconds * 1e3, r.p99LatencySeconds * 1e3,
                r.bytesPerSession, r.peakBytesPerSession,
                static_cast<unsigned long long>(r.maxPeakBytes),
                r.captureSeconds, r.wallSeconds, args.outPath.c_str());

    if (!r.divergences.empty()) {
        const std::size_t show =
            std::min<std::size_t>(r.divergences.size(), 20);
        for (std::size_t i = 0; i < show; ++i) {
            const verifier::Divergence &d = r.divergences[i];
            const verifier::StreamCase &c = r.cases[d.caseIdx];
            std::fprintf(stderr,
                         "revverify: DIVERGENCE session %llu (%s/%s): %s\n",
                         static_cast<unsigned long long>(d.session),
                         c.bench.c_str(),
                         validate::backendName(c.backend),
                         d.detail.c_str());
        }
        std::fprintf(stderr, "revverify: %zu/%u sessions diverged\n",
                     r.divergences.size(), r.sessions);
        return 1;
    }
    std::printf("revverify: all %u session verdicts match inline "
                "validation\n",
                r.sessions);
    return 0;
}
