/**
 * @file
 * The measurement-stream wire format: the prover/verifier contract of the
 * attestation-as-a-service split.
 *
 * A prover-side MeasurementSource (source.hpp) emits a *session*: one
 * StreamHeader naming the backend, validation mode, and the measurement
 * parameters, followed by a sequence of MeasurementEvents — one Block
 * record per committed-and-measured basic block (the hash-chain link and
 * the taken CFG edge in one record), SpillMark records mirroring the
 * measurement buffer's ScFill drains, Syscall markers for the trusted
 * enable/disable services, and a final End record sealing the session
 * (block count, and for hash-chained backends the final chain value).
 *
 * A verifier-side StreamVerifier (stream_verifier.hpp) consumes exactly
 * this stream and renders the same verdict the in-core backend would.
 *
 * Encoding: a fixed 24-byte little-endian header, then tag-prefixed
 * events. Block addresses are delta-encoded (zigzag varints against the
 * previous block's end) so a typical block costs ~10 bytes on the wire —
 * the bytes/session figure the load generator reports. The decoder is
 * *total*: arbitrary bytes never crash it; it answers Ok, NeedMore
 * (honest truncation at an event boundary is distinguishable from
 * garbage), or Malformed. Bump kStreamVersion whenever the layout
 * changes; a verifier refuses sessions from a different version.
 */

#ifndef REV_VALIDATE_STREAM_HPP
#define REV_VALIDATE_STREAM_HPP

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "crypto/cubehash.hpp"
#include "isa/opcodes.hpp"
#include "sig/mode.hpp"
#include "validate/validator.hpp"

namespace rev::validate
{

/** "RVMS" little-endian. */
inline constexpr u32 kStreamMagic = 0x534d5652;

/** Bump when the header or event encoding changes. */
inline constexpr u16 kStreamVersion = 1;

/** Size of the fixed session header on the wire. */
inline constexpr std::size_t kStreamHeaderBytes = 24;

/**
 * Session preamble: everything a verifier needs to select and configure
 * the checking rules before the first event arrives.
 */
struct StreamHeader
{
    u16 version = kStreamVersion;
    Backend backend = Backend::Null;
    sig::ValidationMode mode = sig::ValidationMode::Full;
    u8 returnValidation = 0;  ///< validate::ReturnValidation enumerator
    u32 hashRounds = 5;       ///< CHG/chain CubeHash rounds
    u32 bufferEntries = 0;    ///< LO-FAT measurement-buffer capacity
    u32 entryBytes = 0;       ///< LO-FAT bytes per spilled record
    u32 shadowStackEntries = 0;
    bool startEnabled = true; ///< measurement active from the first block

    bool operator==(const StreamHeader &) const = default;
};

/** Event discriminator on the wire. */
enum class EventKind : u8
{
    Block = 1,     ///< one measured basic block: chain link + taken edge
    Syscall = 2,   ///< trusted service committed (1 suspends, 2 resumes)
    SpillMark = 3, ///< measurement buffer drained through the ScFill port
    End = 4,       ///< session seal: block count (+ final chain)
};

/** One decoded measurement event (tagged by @ref kind). */
struct MeasurementEvent
{
    EventKind kind = EventKind::Block;

    // --- Block ---------------------------------------------------------
    Addr start = 0;          ///< first instruction address
    Addr term = 0;           ///< terminating instruction address
    Addr end = 0;            ///< first byte past the terminator
    Addr target = 0;         ///< where control actually flowed next
    isa::InstrClass termClass = isa::InstrClass::Nop;
    bool artificialSplit = false;
    u32 codeDigest = 0;      ///< CHG digest of the fetched bytes

    // --- Syscall -------------------------------------------------------
    u8 service = 0;

    // --- SpillMark -----------------------------------------------------
    u64 spillBytes = 0;

    // --- End -----------------------------------------------------------
    u64 blockCount = 0;
    bool hasChain = false;
    crypto::Digest chain{};

    bool operator==(const MeasurementEvent &) const = default;
};

/**
 * Where a MeasurementSource delivers its session. StreamWriter is the
 * serializing implementation; tests plug in event-recording sinks.
 */
class MeasurementSink
{
  public:
    virtual ~MeasurementSink() = default;
    virtual void onHeader(const StreamHeader &header) = 0;
    virtual void onEvent(const MeasurementEvent &ev) = 0;
};

/**
 * Serializes a session into a byte vector (the reference encoder).
 */
class StreamWriter final : public MeasurementSink
{
  public:
    void onHeader(const StreamHeader &header) override;
    void onEvent(const MeasurementEvent &ev) override;

    const std::vector<u8> &bytes() const { return bytes_; }
    std::vector<u8> take() { return std::move(bytes_); }

  private:
    void putVarint(u64 v);
    void putZigzag(i64 v);

    std::vector<u8> bytes_;
    Addr prevEnd_ = 0; ///< delta base for the next Block record
};

/**
 * Incremental decoder over a caller-owned buffer. tryHeader()/tryNext()
 * never consume bytes on NeedMore, so a session can be decoded straight
 * out of a partially-filled ring buffer; offset() is the consumed prefix
 * the owner may discard.
 */
class StreamReader
{
  public:
    enum class Status : u8
    {
        Ok,       ///< one item decoded, cursor advanced
        NeedMore, ///< buffer ends mid-item, cursor unchanged
        Malformed ///< the bytes cannot be a valid stream
    };

    /** Decode the session header from @p data[0, size). */
    Status tryHeader(const u8 *data, std::size_t size, StreamHeader *out);

    /** Decode the next event after the header / previous event. */
    Status tryNext(const u8 *data, std::size_t size, MeasurementEvent *out);

    /** Bytes consumed so far (header + complete events). */
    std::size_t offset() const { return offset_; }

    /**
     * The owner discarded @p n consumed bytes from the front of its
     * buffer: rebase the cursor.
     */
    void rebase(std::size_t n) { offset_ -= n; }

  private:
    std::size_t offset_ = 0;
    Addr prevEnd_ = 0;
};

} // namespace rev::validate

#endif // REV_VALIDATE_STREAM_HPP
