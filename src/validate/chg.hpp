/**
 * @file
 * Crypto Hash Generator (CHG) — the pipelined hash unit fed by the fetch
 * stages (Sec. IV.A, Sec. VI).
 *
 * Timing: the unit is pipelined with latency H (default 16, overlapping
 * the S pipeline stages between fetch and commit); the digest of a basic
 * block is available H cycles after its last byte enters the pipe.
 * Mispredictions flush the in-flight partial state (the model counts the
 * flush; the refetched correct path re-feeds the bytes).
 *
 * Function: the real 5-round CubeHash digest of the *fetched* bytes, bound
 * to the (start, term) address pair — identical to the builder's reference
 * computation only when the code in memory is genuine. Digests of
 * unmodified blocks are memoized; each memo entry records the summed
 * write-version of the pages it hashed, so *any* store landing on those
 * pages — the program's own stores included — forces a recompute from the
 * current bytes. invalidate() additionally drops the whole memo (explicit
 * resets, e.g. reloadProgram()).
 */

#ifndef REV_VALIDATE_CHG_HPP
#define REV_VALIDATE_CHG_HPP

#include <array>
#include <unordered_map>
#include <vector>

#include "common/sparse_memory.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace rev::validate
{

/** CHG parameters. */
struct ChgConfig
{
    unsigned latency = 16; ///< H, pipeline depth of the hash unit
    unsigned hashRounds = 5;
};

/**
 * The CHG unit.
 */
class Chg
{
  public:
    /** Lane width of the batched hash path (crypto::CubeHashX4). */
    static constexpr unsigned kLanes = 4;

  private:
    // Implementation types first: the public State below aggregates them.
    struct Key
    {
        Addr start;
        Addr term;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return std::hash<u64>{}(k.start * 0x9e3779b97f4a7c15ULL ^ k.term);
        }
    };

    struct Memo
    {
        u32 hash;
        u64 verSum; ///< spanVersionSum of [start, end) when hashed
    };

    /** One staged digest request: key + byte snapshot taken at queue time. */
    struct PendingLane
    {
        Key key{};
        Addr end = 0;
        u64 verSum = 0;
        std::vector<u8> bytes; ///< reused across flushes
    };

  public:
    Chg(const SparseMemory &mem, const ChgConfig &cfg = {});

    /**
     * Digest of the block [start, end) terminated at @p term, as hashed
     * from the bytes currently in memory. If the block is staged in the
     * lane queue, the queue is flushed (multi-lane) first.
     */
    u32 digest(Addr start, Addr term, Addr end);

    /**
     * Stage a digest request in the lane queue without resolving it. The
     * block's bytes and page-version sum are snapshotted now — exactly
     * what an immediate digest() would hash — so a later flush computes
     * the same value regardless of intervening stores, and blocksHashed
     * counts here, where the scalar path would have hashed. Up to kLanes
     * requests accumulate and are hashed in one CubeHashX4 pass by
     * flushLanes() (or transparently by digest() / a full queue).
     * Memo-fresh requests are dropped immediately, like a memo hit.
     */
    void queueDigest(Addr start, Addr term, Addr end);

    /** Hash every staged request in one multi-lane pass. */
    void flushLanes();

    /** Host-side introspection of the batched path (not simulated stats). */
    u64 laneFlushes() const { return laneFlushes_; }
    u64 laneBlocksHashed() const { return laneBlocksHashed_; }

    /** Cycle the digest becomes available given the fetch-complete time. */
    Cycle readyAt(Cycle fetch_done) const { return fetch_done + cfg_.latency; }

    /** A misprediction flushed the in-flight pipeline state. */
    void flush() { ++flushes_; }

    /**
     * Code space was modified externally: recompute future digests.
     * Staged lane requests are dropped (their hash was already counted
     * when staged, matching the scalar path's count-at-fetch).
     */
    void
    invalidate()
    {
        cache_.clear();
        lanesUsed_ = 0;
    }

    unsigned latency() const { return cfg_.latency; }
    u64 blocksHashed() const { return blocksHashed_; }
    u64 flushes() const { return flushes_; }

    void addStats(stats::StatGroup &group) const;

    /**
     * Copyable mid-run state — digest memo, staged lane queue, counters —
     * for snapshot capture. The memory binding is not part of the state:
     * a fork restores into a Chg constructed over its own (forked)
     * memory, whose page versions match the source's, so memoized
     * digests revalidate identically.
     */
    struct State
    {
        std::unordered_map<Key, Memo, KeyHash> cache;
        std::array<PendingLane, kLanes> lanes;
        unsigned lanesUsed = 0;
        u64 laneFlushes = 0;
        u64 laneBlocksHashed = 0;
        stats::Counter blocksHashed, flushes;
    };

    State
    saveState() const
    {
        return State{cache_,      lanes_,           lanesUsed_,
                     laneFlushes_, laneBlocksHashed_, blocksHashed_,
                     flushes_};
    }

    void
    restoreState(const State &state)
    {
        cache_ = state.cache;
        lanes_ = state.lanes;
        lanesUsed_ = state.lanesUsed;
        laneFlushes_ = state.laneFlushes;
        laneBlocksHashed_ = state.laneBlocksHashed;
        blocksHashed_ = state.blocksHashed;
        flushes_ = state.flushes;
    }

  private:
    bool pendingIndex(const Key &key, unsigned *idx) const;

    const SparseMemory &mem_;
    ChgConfig cfg_;
    std::unordered_map<Key, Memo, KeyHash> cache_;
    std::vector<u8> scratch_; ///< reused block-byte buffer
    std::array<PendingLane, kLanes> lanes_;
    unsigned lanesUsed_ = 0;
    u64 laneFlushes_ = 0, laneBlocksHashed_ = 0;
    stats::Counter blocksHashed_, flushes_;
};

} // namespace rev::validate

#endif // REV_VALIDATE_CHG_HPP
