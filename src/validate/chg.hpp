/**
 * @file
 * Crypto Hash Generator (CHG) — the pipelined hash unit fed by the fetch
 * stages (Sec. IV.A, Sec. VI).
 *
 * Timing: the unit is pipelined with latency H (default 16, overlapping
 * the S pipeline stages between fetch and commit); the digest of a basic
 * block is available H cycles after its last byte enters the pipe.
 * Mispredictions flush the in-flight partial state (the model counts the
 * flush; the refetched correct path re-feeds the bytes).
 *
 * Function: the real 5-round CubeHash digest of the *fetched* bytes, bound
 * to the (start, term) address pair — identical to the builder's reference
 * computation only when the code in memory is genuine. Digests of
 * unmodified blocks are memoized; each memo entry records the summed
 * write-version of the pages it hashed, so *any* store landing on those
 * pages — the program's own stores included — forces a recompute from the
 * current bytes. invalidate() additionally drops the whole memo (explicit
 * resets, e.g. reloadProgram()).
 */

#ifndef REV_VALIDATE_CHG_HPP
#define REV_VALIDATE_CHG_HPP

#include <unordered_map>
#include <vector>

#include "common/sparse_memory.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace rev::validate
{

/** CHG parameters. */
struct ChgConfig
{
    unsigned latency = 16; ///< H, pipeline depth of the hash unit
    unsigned hashRounds = 5;
};

/**
 * The CHG unit.
 */
class Chg
{
  public:
    Chg(const SparseMemory &mem, const ChgConfig &cfg = {});

    /**
     * Digest of the block [start, end) terminated at @p term, as hashed
     * from the bytes currently in memory.
     */
    u32 digest(Addr start, Addr term, Addr end);

    /** Cycle the digest becomes available given the fetch-complete time. */
    Cycle readyAt(Cycle fetch_done) const { return fetch_done + cfg_.latency; }

    /** A misprediction flushed the in-flight pipeline state. */
    void flush() { ++flushes_; }

    /** Code space was modified externally: recompute future digests. */
    void invalidate() { cache_.clear(); }

    unsigned latency() const { return cfg_.latency; }
    u64 blocksHashed() const { return blocksHashed_; }
    u64 flushes() const { return flushes_; }

    void addStats(stats::StatGroup &group) const;

  private:
    struct Key
    {
        Addr start;
        Addr term;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return std::hash<u64>{}(k.start * 0x9e3779b97f4a7c15ULL ^ k.term);
        }
    };

    struct Memo
    {
        u32 hash;
        u64 verSum; ///< spanVersionSum of [start, end) when hashed
    };

    const SparseMemory &mem_;
    ChgConfig cfg_;
    std::unordered_map<Key, Memo, KeyHash> cache_;
    std::vector<u8> scratch_; ///< reused block-byte buffer
    stats::Counter blocksHashed_, flushes_;
};

} // namespace rev::validate

#endif // REV_VALIDATE_CHG_HPP
