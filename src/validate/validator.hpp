/**
 * @file
 * The pluggable validation-backend interface.
 *
 * The out-of-order core is validator-agnostic: it reports front-end and
 * commit events through this interface and respects the commit-gating /
 * store-deferral answers. Concrete backends live beside this header —
 * RevValidator (the paper's mechanism), LoFatValidator (hash-chained
 * control-flow attestation), and the NullValidator base case — and are
 * constructed through the ValidatorRegistry (registry.hpp) keyed by the
 * Backend enum.
 *
 * Validator is a *null object*, not a pure interface: every hook has a
 * do-nothing default with base-case semantics (commit never gated, every
 * block passes, stores drain eagerly), so the core calls hooks
 * unconditionally instead of guarding each call site with a null check,
 * and a new backend overrides only the events it cares about.
 */

#ifndef REV_VALIDATE_VALIDATOR_HPP
#define REV_VALIDATE_VALIDATOR_HPP

#include <memory>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "isa/instr.hpp"

namespace rev::validate
{

class MeasurementSink; // stream.hpp — the prover/verifier wire format

/** The registered validation backends (see registry.hpp). */
enum class Backend : u8
{
    Rev = 0,   ///< the paper's signature-based validation engine
    LoFat = 1, ///< LO-FAT-style hash-chained control-flow attestation
    Null = 2,  ///< no validation (the paper's base case)
};

/**
 * Opaque capture of a backend's complete mid-run state — inflight ring,
 * hash chain, CHG lane queue and memo, caches, latches, counters.
 * Produced by Validator::saveSnapshot() and consumed by
 * restoreSnapshot() on a validator of the same backend and configuration
 * bound to a fork of the source's memory image (snapshot forking,
 * core/snapshot.hpp). The base type is the null backend's (empty) state.
 */
struct ValidatorSnapshot
{
    virtual ~ValidatorSnapshot() = default;
};

/** Stable CLI name, e.g. "rev". */
const char *backendName(Backend b);

/** Parse a backend name; false on an unknown string. */
bool backendFromName(const std::string &name, Backend *out);

/** Front-end description of a dynamic basic block whose terminator was
 *  just fetched. */
struct BBFetchInfo
{
    BBSeq bbSeq = 0;       ///< dynamic basic-block instance id
    Addr start = 0;        ///< first instruction address
    Addr term = 0;         ///< terminating instruction address
    Addr end = 0;          ///< first byte past the terminator
    isa::InstrClass termClass = isa::InstrClass::Nop;
    bool artificialSplit = false; ///< ended by the split rule, not control flow
    SeqNum termSeq = 0;    ///< sequence number of the terminator
    Cycle fetchDoneAt = 0; ///< cycle the terminator left the fetch stage

    /**
     * Start address of the next dynamic basic block. The hardware would
     * use the predicted target here (probing for a partial miss); the
     * model uses the resolved target, which matches whenever the BTB
     * predicts correctly (the dominant case).
     */
    Addr nextStart = 0;
};

/** Counters every backend reports; backend-specific counters live in the
 *  per-backend stats structs (RevStats, LoFatStats) deriving from this. */
struct ValidationStats
{
    u64 bbValidated = 0;
    u64 violations = 0;
    Cycle commitStallCycles = 0;
};

/**
 * Validation-backend integration points.
 */
class Validator
{
  public:
    virtual ~Validator() = default;

    /** Which backend this is (registry key). */
    virtual Backend kind() const { return Backend::Null; }

    // --- core-facing event hooks ----------------------------------------

    /**
     * The front end finished fetching a basic block: hash units consume
     * its bytes, reference lookups start.
     */
    virtual void onBBFetched(const BBFetchInfo &info) { (void)info; }

    /**
     * Earliest cycle the terminator of @p bb may commit; @p earliest is
     * the commit time the pipeline could otherwise achieve.
     */
    virtual Cycle
    commitReadyAt(BBSeq bb, Cycle earliest)
    {
        (void)bb;
        return earliest;
    }

    /**
     * The terminator of @p bb commits now: authenticate the block.
     * @param actual_target Where control actually flows next.
     * @return false on a validation failure (an exception is raised).
     */
    virtual bool
    validateBB(BBSeq bb, Addr actual_target, Cycle commit_cycle)
    {
        (void)bb;
        (void)actual_target;
        (void)commit_cycle;
        return true;
    }

    /** A mispredicted control transfer resolved: in-flight front-end
     *  validation state flushes. */
    virtual void onMispredictResolved(Cycle resolve_cycle)
    {
        (void)resolve_cycle;
    }

    /** An external interrupt was taken (after the current block
     *  validated, Sec. IV.A). */
    virtual void onInterrupt(Cycle cycle) { (void)cycle; }

    /** A SYSCALL committed (services 1/2 disable/enable validation,
     *  Sec. VII). */
    virtual void onSyscall(u8 service, Cycle commit_cycle)
    {
        (void)service;
        (void)commit_cycle;
    }

    /** True while validation is active (stores defer until BB
     *  validation). */
    virtual bool validationActive() const { return false; }

    /** Human-readable reason of the most recent validation failure. */
    virtual std::string violationReason() const { return {}; }

    // --- prover-side measurement (the attestation split, stream.hpp) ----

    /**
     * Report every measured event to @p sink as a serialized session
     * (header first, then one Block record per block reaching
     * commit-time validation). The null-object default ignores the sink:
     * a backend that measures nothing has no session to emit. @p sink
     * must outlive the validator (or a later attach of nullptr).
     */
    virtual void attachMeasurementSink(MeasurementSink *sink)
    {
        (void)sink;
    }

    /**
     * The run completed: emit the End record closing the session.
     * Idempotent; a no-op when no sink is attached.
     */
    virtual void sealMeasurement() {}

    // --- snapshot fork / restore ----------------------------------------

    /**
     * Capture the backend's complete mid-run state for a snapshot fork.
     * Deliberately excluded: the measurement sink and trace callback (a
     * restored validator reports to whatever its own harness attached —
     * campaign forks attach none) and the construction-time bindings
     * (store, vault, memory, memory system), which the restoring
     * validator already owns fork-side.
     */
    virtual std::unique_ptr<ValidatorSnapshot>
    saveSnapshot() const
    {
        return std::make_unique<ValidatorSnapshot>();
    }

    /**
     * Adopt state captured by saveSnapshot() on a validator of the same
     * backend and configuration whose memory image this validator's is a
     * fork of. After the restore, this validator answers every hook
     * exactly as the source would have from the pause point.
     */
    virtual void restoreSnapshot(const ValidatorSnapshot &snap)
    {
        (void)snap;
    }

    // --- harness-facing maintenance -------------------------------------

    /** Code space was modified externally: drop memoized digests. */
    virtual void invalidateCodeCache() {}

    /** The trusted OS/linker rebuilt the reference data (dynamic code
     *  generation or dynamic linking, Sec. IV.E). */
    virtual void refreshTables() {}

    /** The backend-independent counter slice. */
    virtual ValidationStats commonStats() const { return {}; }

    /** Zero the counters but keep warmed state. */
    virtual void resetStats() {}

    /** Contribute component counters (caches, hash pipes) to @p group. */
    virtual void addStats(stats::StatGroup &group) const { (void)group; }

    /**
     * Append the backend's summary rows to @p set as
     * "<prefix>.<backend>.<counter>" entries.
     */
    virtual void
    snapshotStats(stats::StatSet &set, const std::string &prefix) const
    {
        (void)set;
        (void)prefix;
    }
};

/**
 * The base case: no validation. Every default of the null-object base is
 * already correct; the distinct type exists so base-case runs are
 * explicit in the registry and in stats.
 */
class NullValidator final : public Validator
{
  public:
    Backend kind() const override { return Backend::Null; }
};

} // namespace rev::validate

#endif // REV_VALIDATE_VALIDATOR_HPP
