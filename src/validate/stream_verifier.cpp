#include "validate/stream_verifier.hpp"

#include <algorithm>
#include <cstring>

#include "validate/rev_validator.hpp"
#include "validate/verdict.hpp"

namespace rev::validate
{

using isa::InstrClass;
using prog::TermKind;
using sig::ValidationMode;

namespace
{

/** Discard the consumed prefix once it exceeds this. */
constexpr std::size_t kCompactThreshold = 64 * 1024;

bool
contains(const std::vector<Addr> &v, Addr a)
{
    return std::find(v.begin(), v.end(), a) != v.end();
}

bool
isComputedClass(InstrClass c)
{
    return c == InstrClass::CallIndirect || c == InstrClass::JumpIndirect;
}

} // namespace

bool
StreamVerifier::feed(const u8 *data, std::size_t n)
{
    if (verdict_.complete)
        return false;
    buf_.insert(buf_.end(), data, data + n);
    bytesConsumed_ += n;
    processAvailable();
    return !verdict_.complete;
}

void
StreamVerifier::finish()
{
    if (verdict_.complete)
        return;
    processAvailable();
    if (!verdict_.complete)
        transportFail(verdict::reasonTruncatedStream());
}

void
StreamVerifier::abortMalformed()
{
    if (verdict_.complete)
        return;
    transportFail(verdict::reasonMalformedStream());
}

void
StreamVerifier::processAvailable()
{
    if (!haveHeader_ && !verdict_.complete) {
        const StreamReader::Status st =
            reader_.tryHeader(buf_.data(), buf_.size(), &hdr_);
        if (st == StreamReader::Status::Malformed) {
            transportFail(verdict::reasonMalformedStream());
            return;
        }
        if (st == StreamReader::Status::NeedMore)
            return;
        haveHeader_ = true;
        enabled_ = hdr_.startEnabled;
        // The prover's claimed validation mode must be the mode the
        // reference tables were built for; anything else is garbage.
        if (hdr_.mode != refs_.mode()) {
            transportFail(verdict::reasonMalformedStream());
            return;
        }
    }

    prefetchLookups();

    MeasurementEvent ev;
    while (!verdict_.complete) {
        const StreamReader::Status st =
            reader_.tryNext(buf_.data(), buf_.size(), &ev);
        if (st == StreamReader::Status::Malformed) {
            transportFail(verdict::reasonMalformedStream());
            return;
        }
        if (st == StreamReader::Status::NeedMore)
            break;
        handleEvent(ev);
    }

    if (reader_.offset() > kCompactThreshold) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(
                                      reader_.offset()));
        reader_.rebase(reader_.offset());
    }
}

void
StreamVerifier::prefetchLookups()
{
    if (!haveHeader_ || verdict_.complete || hdr_.backend != Backend::Rev)
        return;

    // Scan ahead over every decodable event with a throwaway cursor and
    // collect the reference keys the verdict loop will need, grouped by
    // shard; one lookupBatch per shard amortizes its lock. Results land
    // in the session memo, so repeated blocks (loops) cost one walk.
    std::vector<std::vector<RefStore::LookupKey>> perShard(
        refs_.shardCount());
    StreamReader scan = reader_;
    MeasurementEvent ev;
    while (scan.tryNext(buf_.data(), buf_.size(), &ev) ==
           StreamReader::Status::Ok) {
        if (ev.kind != EventKind::Block)
            continue;
        const u32 key =
            hdr_.mode == ValidationMode::CfiOnly ? 0 : ev.codeDigest;
        auto &units = memo_[ev.term];
        const bool known =
            std::any_of(units.begin(), units.end(),
                        [&](const auto &u) { return u.first == key; });
        if (known)
            continue;
        const std::size_t shard = refs_.shardFor(ev.term);
        if (shard == kNoShard)
            continue; // resolve() renders these as not-found directly
        // A session elsewhere may already have paid for this unit: the
        // shared cache returns the identical table-walk result without
        // touching the shard lock.
        if (dedup_ != nullptr) {
            sig::LookupResult cached;
            if (dedup_->lookupUnit(&refs_, ev.term, key, &cached)) {
                ++dedupHits_;
                units.emplace_back(key, std::move(cached));
                continue;
            }
        }
        // Reserve the memo slot so the scan queues each unit once.
        units.emplace_back(key, sig::LookupResult{});
        perShard[shard].push_back({ev.term, key});
    }

    std::vector<sig::LookupResult> results;
    for (std::size_t shard = 0; shard < perShard.size(); ++shard) {
        if (perShard[shard].empty())
            continue;
        refs_.lookupBatch(shard, perShard[shard], &results);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const RefStore::LookupKey &k = perShard[shard][i];
            if (dedup_ != nullptr) {
                ++dedupMisses_;
                dedup_->insertUnit(&refs_, k.term, k.hash, results[i]);
            }
            for (auto &unit : memo_[k.term]) {
                if (unit.first == k.hash)
                    unit.second = std::move(results[i]);
            }
        }
    }
}

const sig::LookupResult &
StreamVerifier::resolve(Addr term, u32 digest)
{
    static const sig::LookupResult kEmpty;
    const u32 key = hdr_.mode == ValidationMode::CfiOnly ? 0 : digest;
    auto &units = memo_[term];
    for (const auto &unit : units) {
        if (unit.first == key)
            return unit.second;
    }
    const std::size_t shard = refs_.shardFor(term);
    if (shard == kNoShard)
        return kEmpty;
    if (dedup_ != nullptr) {
        sig::LookupResult cached;
        if (dedup_->lookupUnit(&refs_, term, key, &cached)) {
            ++dedupHits_;
            units.emplace_back(key, std::move(cached));
            return units.back().second;
        }
    }
    units.emplace_back(key, hdr_.mode == ValidationMode::CfiOnly
                                ? refs_.lookupSite(shard, term)
                                : refs_.lookup(shard, term, key));
    if (dedup_ != nullptr) {
        ++dedupMisses_;
        dedup_->insertUnit(&refs_, term, key, units.back().second);
    }
    return units.back().second;
}

void
StreamVerifier::handleEvent(const MeasurementEvent &ev)
{
    // A spill the prover owed us must be the very next record; inline
    // measurement drains the buffer within the same validateBB() call.
    if (spillPending_ && ev.kind != EventKind::SpillMark) {
        transportFail(verdict::reasonMissingSpill());
        return;
    }
    switch (ev.kind) {
    case EventKind::Block:
        ++verdict_.blocksSeen;
        if (verdict_.detected)
            return; // verdict latched; the inline run had already stopped
        if (hdr_.backend == Backend::Rev)
            handleBlockRev(ev);
        else
            handleBlockLoFat(ev);
        break;
    case EventKind::Syscall:
        if (ev.service == 1)
            enabled_ = false;
        else if (ev.service == 2)
            enabled_ = true;
        break;
    case EventKind::SpillMark:
        handleSpillMark(ev);
        break;
    case EventKind::End:
        handleEnd(ev);
        break;
    }
}

void
StreamVerifier::handleBlockRev(const MeasurementEvent &ev)
{
    const ValidationMode mode = hdr_.mode;

    // Mirror the inline bypass rules: nothing to adjudicate while the
    // trusted service suspended validation, and CFI-only checks computed
    // transfers and returns exclusively (Sec. V.D).
    if (!enabled_)
        return;
    if (mode == ValidationMode::CfiOnly &&
        !isComputedClass(ev.termClass) &&
        ev.termClass != InstrClass::Return)
        return;

    const sig::LookupResult &ref = resolve(ev.term, ev.codeDigest);
    if (!ref.found) {
        violation(ev, ref.termSeen ? verdict::reasonHashMismatch()
                                   : verdict::reasonNoReference());
        return;
    }

    const bool delayed_pred =
        hdr_.returnValidation ==
        static_cast<u8>(ReturnValidation::DelayedPredecessor);

    if (mode != ValidationMode::CfiOnly && delayed_pred && pendingReturn_) {
        if (!contains(ref.retPreds, *pendingReturn_)) {
            violation(ev, verdict::reasonBadReturn(*pendingReturn_));
            return;
        }
        pendingReturn_.reset();
    }

    bool check_target = isComputedClass(ev.termClass);
    if (mode == ValidationMode::CfiOnly)
        check_target = true;
    else if (mode == ValidationMode::Aggressive &&
             ev.termClass != InstrClass::Return &&
             ev.termClass != InstrClass::Halt)
        check_target = true;
    if (check_target && !contains(ref.targets, ev.target)) {
        violation(ev, verdict::reasonIllegalTransfer(ev.target));
        return;
    }

    if (mode != ValidationMode::CfiOnly && delayed_pred) {
        if (ev.termClass == InstrClass::Return)
            pendingReturn_ = ev.term;
    } else if (mode != ValidationMode::CfiOnly) {
        if (ev.termClass == InstrClass::Call ||
            ev.termClass == InstrClass::CallIndirect) {
            shadowStack_.push_back(ev.end);
        } else if (ev.termClass == InstrClass::Return) {
            if (shadowStack_.empty()) {
                violation(ev, verdict::reasonShadowUnderflow());
                return;
            }
            const Addr expected = shadowStack_.back();
            shadowStack_.pop_back();
            if (ev.target != expected) {
                violation(ev, verdict::reasonShadowMismatch(ev.target,
                                                            expected));
                return;
            }
        }
    }

    ++verdict_.bbValidated;
}

void
StreamVerifier::handleBlockLoFat(const MeasurementEvent &ev)
{
    if (!enabled_)
        return;

    auto memo = lofatBlocks_.find(ev.term);
    if (memo == lofatBlocks_.end()) {
        const std::size_t shard = refs_.shardFor(ev.term);
        std::vector<const prog::BasicBlock *> found;
        if (shard != kNoShard)
            found = refs_.moduleSig(shard).cfg.blocksAtTerm(ev.term);
        memo = lofatBlocks_.emplace(ev.term, std::move(found)).first;
    }
    const std::vector<const prog::BasicBlock *> &blocks = memo->second;
    if (blocks.empty()) {
        ++verdict_.unattestedBlocks;
        violation(ev, verdict::reasonUnattested(ev.term));
        return;
    }

    bool edge_ok = false;
    bool any_successor = false;
    bool is_return = false;
    for (const prog::BasicBlock *b : blocks) {
        if (b->kind == TermKind::Halt) {
            edge_ok = true;
            continue;
        }
        any_successor = true;
        if (b->kind == TermKind::Return)
            is_return = true;
        if (contains(b->succs, ev.target))
            edge_ok = true;
    }
    if (!edge_ok && any_successor) {
        ++verdict_.edgeViolations;
        violation(ev, is_return
                          ? verdict::reasonBadReturnSite(ev.target)
                          : verdict::reasonIllegalEdge(ev.target));
        return;
    }

    foldChain(ev);
    ++verdict_.chainUpdates;
    if (++bufferUsed_ >= hdr_.bufferEntries) {
        const u64 bytes = u64(bufferUsed_) * hdr_.entryBytes;
        ++verdict_.bufferSpills;
        verdict_.spillBytes += bytes;
        bufferUsed_ = 0;
        spillPending_ = true;
        expectedSpillBytes_ = bytes;
    }

    ++verdict_.bbValidated;
}

void
StreamVerifier::foldChain(const MeasurementEvent &ev)
{
    // Cross-session dedup: the fold is a pure function of
    // (chain, block, rounds), so sessions attesting the same execution
    // share every link and a hit replaces the CubeHash with a cache
    // read — bit-identical by construction.
    UnitLookupCache::FoldKey key;
    if (dedup_ != nullptr) {
        key = {ev.start, ev.term, ev.target, ev.codeDigest,
               hdr_.hashRounds};
        crypto::Digest next;
        if (dedup_->lookupFold(chain_, key, &next)) {
            ++dedupHits_;
            chain_ = next;
            return;
        }
    }
    // Byte-for-byte the fold of LoFatValidator::fold():
    // chain' = H(chain || start || term || target || code digest)
    u8 buf[sizeof(crypto::Digest) + 3 * sizeof(Addr) + sizeof(u32)];
    std::size_t off = 0;
    std::memcpy(buf + off, chain_.data(), chain_.size());
    off += chain_.size();
    std::memcpy(buf + off, &ev.start, sizeof(Addr));
    off += sizeof(Addr);
    std::memcpy(buf + off, &ev.term, sizeof(Addr));
    off += sizeof(Addr);
    std::memcpy(buf + off, &ev.target, sizeof(Addr));
    off += sizeof(Addr);
    std::memcpy(buf + off, &ev.codeDigest, sizeof(u32));
    off += sizeof(u32);
    const crypto::Digest prev = chain_;
    chain_ = crypto::CubeHash::hash(buf, off, hdr_.hashRounds);
    if (dedup_ != nullptr) {
        ++dedupMisses_;
        dedup_->insertFold(prev, key, chain_);
    }
}

void
StreamVerifier::handleSpillMark(const MeasurementEvent &ev)
{
    if (!spillPending_) {
        transportFail(verdict::reasonUnexpectedSpill());
        return;
    }
    spillPending_ = false;
    if (ev.spillBytes != expectedSpillBytes_)
        transportFail(verdict::reasonSpillSizeMismatch(ev.spillBytes,
                                                       expectedSpillBytes_));
}

void
StreamVerifier::handleEnd(const MeasurementEvent &ev)
{
    if (!verdict_.detected) {
        if (ev.blockCount != verdict_.blocksSeen) {
            transportFail(verdict::reasonBlockCountMismatch(
                ev.blockCount, verdict_.blocksSeen));
            return;
        }
        if (hdr_.backend == Backend::LoFat) {
            if (!ev.hasChain) {
                transportFail(verdict::reasonMalformedStream());
                return;
            }
            if (ev.chain != chain_) {
                transportFail(verdict::reasonChainDivergence());
                return;
            }
        }
    }
    verdict_.complete = true;
}

void
StreamVerifier::violation(const MeasurementEvent &ev,
                          const std::string &reason)
{
    ++verdict_.violations;
    if (!verdict_.detected) {
        verdict_.detected = true;
        verdict_.reason = reason + verdict::bbSuffix(ev.start, ev.term);
    }
}

void
StreamVerifier::transportFail(const std::string &reason)
{
    if (!verdict_.detected) {
        verdict_.detected = true;
        verdict_.reason = reason;
    }
    verdict_.complete = true;
}

} // namespace rev::validate
