/**
 * @file
 * The REV backend: orchestrates the CHG, SC, SAG, and RAM table walker to
 * validate every committed basic block (Sec. IV), implementing the
 * Validator interface.
 *
 * Flow per dynamic basic block:
 *  1. Front end fetches the terminator -> onBBFetched():
 *     - SAG matches the module (exception + software refill on miss),
 *     - the CHG digest of the fetched bytes is scheduled (ready H cycles
 *       after fetch),
 *     - the SC is probed; a complete miss walks the encrypted RAM table
 *       through the memory hierarchy (ScFill requests); a partial miss
 *       (entry present, but the needed successor/predecessor address is
 *       not the cached MRU one) walks it too.
 *  2. The terminator may only commit once the digest and the reference
 *     signature are both available -> commitReadyAt().
 *  3. At commit the block is authenticated -> validateBB(): hash match,
 *     computed-target membership, and the delayed return validation of
 *     Sec. V.A (a latch holds the RET address; the following block's entry
 *     lists the legitimate RET predecessors).
 *
 * Memory updates of a block are withheld (by the core's StoreBuffer) until
 * validateBB() passes — a failed block never taints memory (R5).
 */

#ifndef REV_VALIDATE_REV_VALIDATOR_HPP
#define REV_VALIDATE_REV_VALIDATOR_HPP

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "mem/memsys.hpp"
#include "sig/sigstore.hpp"
#include "validate/chg.hpp"
#include "validate/sag.hpp"
#include "validate/sc.hpp"
#include "validate/source.hpp"
#include "validate/validator.hpp"

namespace rev::validate
{

/**
 * How return edges are authenticated.
 */
enum class ReturnValidation : u8
{
    /**
     * The paper's low-overhead scheme (Sec. V.A): the RET address is
     * latched; the next block's table entry lists its legitimate RET
     * predecessors. No shadow structure, scales to any call depth, but
     * predecessor lists cost table space and MRU partial misses.
     */
    DelayedPredecessor = 0,

    /**
     * Conventional shadow call stack (the alternative the paper argues
     * against, cf. Branch Regulation [35]): CALLs push the expected
     * return site into a hardware stack; RETs must match the popped
     * entry. Overflow spills are counted (and charged a memory
     * round-trip), underflow is a violation.
     */
    ShadowStack = 1,
};

/** REV engine configuration. */
struct RevConfig
{
    ScConfig sc;
    ChgConfig chg;
    unsigned sagEntries = 16;
    Cycle sagMissPenalty = 200;  ///< software handler refill cost
    unsigned decryptLatency = 2; ///< per-fill AES-CTR pipe latency
    bool startEnabled = true;

    ReturnValidation returnValidation = ReturnValidation::DelayedPredecessor;
    unsigned shadowStackEntries = 32;   ///< on-chip depth before spilling
    Cycle shadowSpillPenalty = 12;      ///< per spill/refill batch
};

/** Engine statistics (drive Figs. 10/11 and the stall accounting). The
 *  backend-independent slice (bbValidated, violations, commitStallCycles)
 *  is inherited from ValidationStats. */
struct RevStats : ValidationStats
{
    u64 scCompleteMisses = 0;
    u64 scPartialMisses = 0;
    u64 tableWalkReads = 0;
    u64 sagExceptions = 0;
    u64 shadowSpills = 0;   ///< shadow-stack overflow spill batches
    u64 shadowRefills = 0;  ///< shadow-stack underflow refill batches

    u64
    scMisses() const
    {
        return scCompleteMisses + scPartialMisses;
    }
};

/**
 * The run-time execution validator.
 */
class RevValidator final : public Validator
{
  public:
    /**
     * @param store  Signature tables (already loaded into @p mem).
     * @param vault  CPU key vault for unwrapping module keys.
     * @param mem    Functional memory (holds code and the tables).
     * @param memsys  Timing hierarchy for SC fill traffic.
     * @param core_id Memory-system port the SC fills issue through.
     */
    RevValidator(const sig::SigStore &store, const crypto::KeyVault &vault,
                 const SparseMemory &mem, mem::MemorySystem &memsys,
                 const RevConfig &cfg = {}, unsigned core_id = 0);

    // --- Validator --------------------------------------------------------
    Backend kind() const override { return Backend::Rev; }
    void onBBFetched(const BBFetchInfo &info) override;
    Cycle commitReadyAt(BBSeq bb, Cycle earliest) override;
    bool validateBB(BBSeq bb, Addr actual_target,
                    Cycle commit_cycle) override;
    void onMispredictResolved(Cycle resolve_cycle) override;
    void onInterrupt(Cycle cycle) override;
    void onSyscall(u8 service, Cycle commit_cycle) override;
    bool validationActive() const override { return enabled_; }
    std::string violationReason() const override { return lastViolation_; }
    void attachMeasurementSink(MeasurementSink *sink) override;
    void sealMeasurement() override { source_.seal(); }
    std::unique_ptr<ValidatorSnapshot> saveSnapshot() const override;
    void restoreSnapshot(const ValidatorSnapshot &snap) override;

    /** Attacks that modify code space must invalidate memoized digests. */
    void invalidateCodeCache() override { chg_.invalidate(); }

    /**
     * The trusted OS/linker rebuilt the signature tables (dynamic code
     * generation or dynamic linking, Sec. IV.E): drop every cached
     * decrypted signature and re-initialize the SAG from the store.
     */
    void refreshTables() override;

    ValidationStats commonStats() const override { return stats_; }

    /** Zero the engine counters but keep SC/SAG/latch state. */
    void resetStats() override { stats_ = RevStats{}; }

    void addStats(stats::StatGroup &group) const override;
    void snapshotStats(stats::StatSet &set,
                       const std::string &prefix) const override;

    // --- REV-specific surface ---------------------------------------------

    /**
     * Per-thread REV micro-state the OS saves/restores across context
     * switches: the Sec. V.A return latch and (when the shadow-stack
     * scheme is selected) the shadow call stack itself. Everything else
     * (SC, CHG, readers) is shared and refills on demand (R4).
     */
    struct ThreadState
    {
        std::optional<Addr> pendingReturn;
        std::vector<Addr> shadowStack;
        u64 shadowSpilled = 0;
    };

    ThreadState saveThreadState() const;
    void restoreThreadState(const ThreadState &state);

    /** One authenticated (or rejected) basic block, for tracing. */
    struct ValidationEvent
    {
        BBSeq bbSeq = 0;
        Addr start = 0;
        Addr term = 0;
        Cycle commitCycle = 0;
        u32 hash = 0;
        bool scHit = false;        ///< no RAM walk was needed
        bool partialMiss = false;
        Cycle stallCycles = 0;     ///< commit delay charged to REV
        bool passed = false;
        std::string reason;        ///< failure reason when !passed
    };

    using TraceCallback = std::function<void(const ValidationEvent &)>;

    /** Stream every validation outcome to @p cb (empty = off). */
    void setTraceCallback(TraceCallback cb) { trace_ = std::move(cb); }

    /**
     * Signature of code that failed authentication (the paper's
     * conclusion: "failed validation attempts can reveal signatures of
     * the offending code that can be used to detect them later").
     */
    struct OffenderRecord
    {
        Addr start = 0;
        Addr term = 0;
        u32 hash = 0; ///< CHG digest of the offending bytes
        std::string reason;
    };

    /** Signatures collected from failed validations this run. */
    const std::vector<OffenderRecord> &offenders() const
    {
        return offenders_;
    }

    const RevStats &stats() const { return stats_; }
    const SignatureCache &sc() const { return sc_; }
    const Sag &sag() const { return sag_; }
    const Chg &chg() const { return chg_; }
    sig::ValidationMode mode() const { return store_.mode(); }

  private:
    /** Full mid-run state capture (defined in rev_validator.cpp). */
    struct Snapshot;

    /**
     * In-flight state of a basic block between fetch and commit — one
     * slot of the inflight ring. Per-block trace bookkeeping (scHit,
     * partialMiss, stall) rides in the slot so the fetch- and commit-side
     * hooks agree on which dynamic block they describe.
     */
    struct PendingBB
    {
        bool valid = false;
        bool bypass = false; ///< REV disabled or no validation needed
        BBFetchInfo info;
        Cycle hashReadyAt = 0;
        Cycle scReadyAt = 0;
        u32 computedHash = 0;
        /** Digest staged in the CHG lane queue, resolved at validate. */
        bool hashPending = false;
        bool refFound = false;
        bool termSeen = false; ///< terminator present, hash mismatched
        u32 refHash = 0;
        std::vector<Addr> refTargets;
        std::vector<Addr> refPreds;

        bool scHit = false;
        bool partialMiss = false;
        Cycle stall = 0;
    };

    /**
     * Inflight ring capacity. The commit-gated core keeps exactly one
     * block between onBBFetched() and validateBB(), but the ring is
     * keyed by BBSeq so a deeper front end could keep several in flight;
     * a power of two turns the slot lookup into a mask.
     */
    static constexpr std::size_t kInflightSlots = 4;
    static_assert((kInflightSlots & (kInflightSlots - 1)) == 0,
                  "ring indexing requires a power-of-two slot count");

    PendingBB &
    slotFor(BBSeq bb)
    {
        return ring_[static_cast<std::size_t>(bb) & (kInflightSlots - 1)];
    }

    /** The ring slot currently holding @p bb, or nullptr. */
    PendingBB *
    find(BBSeq bb)
    {
        PendingBB &slot = slotFor(bb);
        return slot.valid && slot.info.bbSeq == bb ? &slot : nullptr;
    }

    static bool isComputedClass(isa::InstrClass c);

    /** Install module signature-table anchors until the SAG is full,
     *  counting only modules actually installed. */
    void preloadSag();

    const sig::TableReader &readerFor(Addr table_base);

    /**
     * Walk the RAM table; returns the reference data and sets ready.
     * @param key For Full/Aggressive tables the generated hash (the
     *            Sec. V.B discriminator); ignored for CFI-only.
     */
    /** Resolve a lane-queued digest (flushes the CHG lane queue). */
    void
    resolveHash(PendingBB &cur)
    {
        if (!cur.hashPending)
            return;
        cur.computedHash =
            chg_.digest(cur.info.start, cur.info.term, cur.info.end);
        cur.hashPending = false;
    }

    sig::LookupResult walk(const SagEntry &sag_entry, Addr term, u32 key,
                           Cycle from, Cycle &ready_at,
                           const sig::WalkNeeds &needs);

    const sig::SigStore &store_;
    const crypto::KeyVault &vault_;
    const SparseMemory &mem_;
    mem::MemorySystem &memsys_;
    unsigned coreId_ = 0;
    RevConfig cfg_;

    SignatureCache sc_;
    Sag sag_;
    Chg chg_;

    bool enabled_;
    std::array<PendingBB, kInflightSlots> ring_;
    std::optional<Addr> pendingReturn_; ///< Sec. V.A latch

    /**
     * Shadow call stack (ReturnValidation::ShadowStack). The on-chip
     * portion holds cfg_.shadowStackEntries; deeper frames live in a
     * (modeled) memory spill area. spilled_ counts frames currently in
     * memory; crossings charge shadowSpillPenalty at the next commit.
     */
    std::vector<Addr> shadowStack_;
    u64 shadowSpilled_ = 0;
    Cycle shadowPenaltyAt_ = 0;

    std::string lastViolation_;
    RevStats stats_;
    TraceCallback trace_;
    std::vector<OffenderRecord> offenders_;
    MeasurementSource source_; ///< prover-side session emitter (stream.hpp)

    /**
     * Per-table decrypt/walk state, keyed by table base. Programs link a
     * handful of modules at most, so a flat vector with linear search
     * beats a node-based map on the hot lookup path.
     */
    std::vector<std::pair<Addr, std::unique_ptr<sig::TableReader>>> readers_;
};

} // namespace rev::validate

#endif // REV_VALIDATE_REV_VALIDATOR_HPP
