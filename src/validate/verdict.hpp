/**
 * @file
 * Violation-reason builders shared by the in-core validators and the
 * stream verifiers.
 *
 * The attestation split (see stream.hpp) requires the standalone
 * StreamVerifier to render verdicts *bit-identical* to the in-core
 * backends — including the human-readable reason strings the red-team
 * oracle and the session reports compare. Centralizing the formatting
 * here turns "the strings happen to match" into "the strings cannot
 * drift": both halves call the same builders.
 */

#ifndef REV_VALIDATE_VERDICT_HPP
#define REV_VALIDATE_VERDICT_HPP

#include <string>

#include "common/types.hpp"

namespace rev::validate::verdict
{

/** Hex-format @p a the way every validator reason does ("0x1f00"). */
std::string hex(Addr a);

/** The " (bb 0xS..0xT)" suffix appended to every block-level reason. */
std::string bbSuffix(Addr start, Addr term);

// --- REV reasons (rev_validator.cpp and RevStreamVerifier) --------------

std::string reasonHashMismatch();
std::string reasonNoReference();
std::string reasonBadReturn(Addr from);
std::string reasonIllegalTransfer(Addr target);
std::string reasonShadowUnderflow();
std::string reasonShadowMismatch(Addr target, Addr expected);

// --- LO-FAT reasons (lofat_validator.cpp and LoFatStreamVerifier) -------

std::string reasonUnattested(Addr term);
std::string reasonBadReturnSite(Addr target);
std::string reasonIllegalEdge(Addr target);

// --- stream-transport reasons (StreamVerifier only) ---------------------

std::string reasonTruncatedStream();
std::string reasonMalformedStream();
std::string reasonChainDivergence();
std::string reasonBlockCountMismatch(u64 claimed, u64 verified);
std::string reasonMissingSpill();
std::string reasonUnexpectedSpill();
std::string reasonSpillSizeMismatch(u64 claimed, u64 expected);

} // namespace rev::validate::verdict

#endif // REV_VALIDATE_VERDICT_HPP
