/**
 * @file
 * LO-FAT-style control-flow attestation backend (Dessouky et al., DAC'17,
 * adapted to this machine model).
 *
 * Where REV authenticates each basic block against an encrypted reference
 * signature before it may commit, LO-FAT *measures*: every committed
 * control-flow event — (block entry, terminator, code digest, taken edge)
 * — is folded into a running CubeHash chain, and the chain records are
 * staged in a bounded on-chip measurement buffer that spills to a
 * dedicated memory region when full. A remote verifier replays the
 * program's CFG against the reported chain. We model the verifier's CFG
 * check eagerly at commit time (the simulator holds the reference CFGs
 * the toolchain derived), so illegal edges and unattested code raise
 * violations with the same gating semantics as REV; pure in-place code
 * substitution only skews the chain — a *remote* check this model does
 * not adjudicate — so it is outside this backend's claimed coverage
 * (see coverage.hpp).
 *
 * The hash pipe reuses the CHG (same CubeHash parameters and pipeline
 * latency), and spill traffic is charged through the memory hierarchy's
 * ScFill class, so REV-vs-LO-FAT comparisons share one cost model.
 */

#ifndef REV_VALIDATE_LOFAT_VALIDATOR_HPP
#define REV_VALIDATE_LOFAT_VALIDATOR_HPP

#include "crypto/cubehash.hpp"
#include "mem/memsys.hpp"
#include "sig/sigstore.hpp"
#include "validate/chg.hpp"
#include "validate/source.hpp"
#include "validate/validator.hpp"

namespace rev::validate
{

/** RAM region the measurement buffer spills to (between the signature
 *  tables at 0x20000000 and the DMA buffers at 0x30000000). */
inline constexpr Addr kMeasurementRegion = 0x28000000;

/** LO-FAT backend parameters. */
struct LoFatConfig
{
    unsigned bufferEntries = 64; ///< on-chip measurement records
    unsigned entryBytes = 16;    ///< bytes per spilled record
    ChgConfig chg;               ///< shared hash-pipe parameters
    bool startEnabled = true;
};

/** LO-FAT counters; the backend-independent slice is inherited. */
struct LoFatStats : ValidationStats
{
    u64 chainUpdates = 0;      ///< events folded into the hash chain
    u64 bufferSpills = 0;      ///< full-buffer drain batches
    u64 spillBytes = 0;        ///< measurement bytes written to memory
    u64 unattestedBlocks = 0;  ///< events from code outside every module
    u64 edgeViolations = 0;    ///< edges absent from the attested CFG
};

/**
 * The measurement engine + eager verifier.
 */
class LoFatValidator final : public Validator
{
  public:
    /**
     * @param store  Reference CFGs (the same store the toolchain built;
     *               its tables are not read — only the CFGs).
     * @param mem    Functional memory (the CHG hashes fetched bytes).
     * @param memsys  Timing hierarchy for measurement spill traffic.
     * @param core_id Memory-system port the spills issue through.
     */
    LoFatValidator(const sig::SigStore &store, const SparseMemory &mem,
                   mem::MemorySystem &memsys, const LoFatConfig &cfg = {},
                   unsigned core_id = 0);

    // --- Validator --------------------------------------------------------
    Backend kind() const override { return Backend::LoFat; }
    void onBBFetched(const BBFetchInfo &info) override;
    Cycle commitReadyAt(BBSeq bb, Cycle earliest) override;
    bool validateBB(BBSeq bb, Addr actual_target,
                    Cycle commit_cycle) override;
    void onMispredictResolved(Cycle resolve_cycle) override;
    void onInterrupt(Cycle cycle) override;
    void onSyscall(u8 service, Cycle commit_cycle) override;
    bool validationActive() const override { return enabled_; }
    std::string violationReason() const override { return lastViolation_; }
    void attachMeasurementSink(MeasurementSink *sink) override;
    void sealMeasurement() override { source_.seal(chain_); }
    std::unique_ptr<ValidatorSnapshot> saveSnapshot() const override;
    void restoreSnapshot(const ValidatorSnapshot &snap) override;
    void invalidateCodeCache() override { chg_.invalidate(); }
    void refreshTables() override { chg_.invalidate(); }
    ValidationStats commonStats() const override { return stats_; }
    void resetStats() override { stats_ = LoFatStats{}; }
    void addStats(stats::StatGroup &group) const override;
    void snapshotStats(stats::StatSet &set,
                       const std::string &prefix) const override;

    // --- LO-FAT-specific surface ------------------------------------------

    const LoFatStats &stats() const { return stats_; }

    /** The running measurement chain (what a verifier would receive). */
    const crypto::Digest &chain() const { return chain_; }

    /** Records currently staged in the on-chip buffer. */
    unsigned bufferUsed() const { return bufferUsed_; }

  private:
    /** Full mid-run state capture (defined in lofat_validator.cpp). */
    struct Snapshot;

    struct PendingBB
    {
        bool valid = false;
        bool bypass = false;
        BBFetchInfo info;
        u32 codeDigest = 0;
        /** Digest staged in the CHG lane queue, resolved at validate. */
        bool hashPending = false;
        Cycle hashReadyAt = 0;
    };

    /** Fold one attested event into the measurement chain. */
    void fold(const BBFetchInfo &info, Addr actual_target);

    /** Drain the full buffer through the memory hierarchy. */
    void spill(Cycle from);

    bool fail(const BBFetchInfo &info, const std::string &reason);

    const sig::SigStore &store_;
    mem::MemorySystem &memsys_;
    unsigned coreId_ = 0;
    LoFatConfig cfg_;
    Chg chg_;

    bool enabled_;
    PendingBB cur_;
    crypto::Digest chain_{};
    unsigned bufferUsed_ = 0;
    Addr spillCursor_ = kMeasurementRegion;
    Cycle drainReadyAt_ = 0;
    std::string lastViolation_;
    LoFatStats stats_;
    MeasurementSource source_; ///< prover-side session emitter (stream.hpp)
};

} // namespace rev::validate

#endif // REV_VALIDATE_LOFAT_VALIDATOR_HPP
