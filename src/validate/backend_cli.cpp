#include "validate/backend_cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "validate/registry.hpp"

namespace rev::validate
{

void
printBackendList(std::FILE *to)
{
    std::vector<BackendInfo> infos = ValidatorRegistry::instance().list();
    std::sort(infos.begin(), infos.end(),
              [](const BackendInfo &a, const BackendInfo &b) {
                  return std::strcmp(a.name, b.name) < 0;
              });
    for (const BackendInfo &b : infos)
        std::fprintf(to, "%-8s %s\n", b.name, b.summary);
}

bool
backendCliOptions(int argc, char **argv, int *i, Backend *backend)
{
    const std::string arg = argv[*i];
    if (arg == "--list-backends") {
        printBackendList(stdout);
        std::exit(0);
    }
    if (arg != "--backend")
        return false;
    if (*i + 1 >= argc) {
        std::fprintf(stderr, "--backend requires a value\n");
        std::exit(2);
    }
    const char *name = argv[++*i];
    if (!backendFromName(name, backend)) {
        std::fprintf(stderr, "unknown backend '%s'; registered:\n", name);
        printBackendList(stderr);
        std::exit(2);
    }
    return true;
}

} // namespace rev::validate
