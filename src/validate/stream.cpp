#include "validate/stream.hpp"

#include <cstring>

namespace rev::validate
{

namespace
{

/** Varints longer than this cannot encode a u64 — reject as malformed. */
constexpr std::size_t kMaxVarintBytes = 10;

constexpr u64
zigzagEncode(i64 v)
{
    return (static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63);
}

constexpr i64
zigzagDecode(u64 v)
{
    return static_cast<i64>((v >> 1) ^ (~(v & 1) + 1));
}

void
put16(std::vector<u8> &out, u16 v)
{
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
}

void
put32(std::vector<u8> &out, u32 v)
{
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v >> 16));
    out.push_back(static_cast<u8>(v >> 24));
}

u16
get16(const u8 *p)
{
    return static_cast<u16>(p[0] | (static_cast<u16>(p[1]) << 8));
}

u32
get32(const u8 *p)
{
    return p[0] | (static_cast<u32>(p[1]) << 8) |
           (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

/**
 * Decode one LEB128 varint from [p, p+size). Returns bytes consumed, 0 if
 * the buffer ends mid-varint, or SIZE_MAX on an over-long encoding.
 */
std::size_t
getVarint(const u8 *p, std::size_t size, u64 *out)
{
    u64 v = 0;
    for (std::size_t i = 0; i < size && i < kMaxVarintBytes; ++i)
    {
        v |= static_cast<u64>(p[i] & 0x7f) << (7 * i);
        if ((p[i] & 0x80) == 0)
        {
            // The 10th byte may contribute only the final bit of a u64.
            if (i == kMaxVarintBytes - 1 && p[i] > 1)
                return SIZE_MAX;
            *out = v;
            return i + 1;
        }
    }
    return size >= kMaxVarintBytes ? SIZE_MAX : 0;
}

} // namespace

void
StreamWriter::putVarint(u64 v)
{
    while (v >= 0x80)
    {
        bytes_.push_back(static_cast<u8>(v) | 0x80);
        v >>= 7;
    }
    bytes_.push_back(static_cast<u8>(v));
}

void
StreamWriter::putZigzag(i64 v)
{
    putVarint(zigzagEncode(v));
}

void
StreamWriter::onHeader(const StreamHeader &header)
{
    put32(bytes_, kStreamMagic);
    put16(bytes_, header.version);
    bytes_.push_back(static_cast<u8>(header.backend));
    bytes_.push_back(static_cast<u8>(header.mode));
    bytes_.push_back(header.returnValidation);
    bytes_.push_back(static_cast<u8>(header.hashRounds));
    put16(bytes_, static_cast<u16>(header.bufferEntries));
    put16(bytes_, static_cast<u16>(header.entryBytes));
    put16(bytes_, static_cast<u16>(header.shadowStackEntries));
    bytes_.push_back(header.startEnabled ? 1 : 0);
    // Pad to the fixed header size; reserved for future fields.
    while (bytes_.size() < kStreamHeaderBytes)
        bytes_.push_back(0);
    prevEnd_ = 0;
}

void
StreamWriter::onEvent(const MeasurementEvent &ev)
{
    bytes_.push_back(static_cast<u8>(ev.kind));
    switch (ev.kind)
    {
    case EventKind::Block:
    {
        // flags: bits 0-4 terminator class, bit 5 artificial split,
        // bit 6 target == end (fallthrough — elide the target delta).
        const bool fallthrough = ev.target == ev.end;
        u8 flags = static_cast<u8>(ev.termClass) & 0x1f;
        if (ev.artificialSplit)
            flags |= 0x20;
        if (fallthrough)
            flags |= 0x40;
        bytes_.push_back(flags);
        putZigzag(static_cast<i64>(ev.start) - static_cast<i64>(prevEnd_));
        putVarint(ev.term - ev.start);
        putVarint(ev.end - ev.term);
        if (!fallthrough)
            putZigzag(static_cast<i64>(ev.target) -
                      static_cast<i64>(ev.end));
        put32(bytes_, ev.codeDigest);
        prevEnd_ = ev.end;
        break;
    }
    case EventKind::Syscall:
        bytes_.push_back(ev.service);
        break;
    case EventKind::SpillMark:
        putVarint(ev.spillBytes);
        break;
    case EventKind::End:
        putVarint(ev.blockCount);
        bytes_.push_back(ev.hasChain ? 1 : 0);
        if (ev.hasChain)
            bytes_.insert(bytes_.end(), ev.chain.begin(), ev.chain.end());
        break;
    }
}

StreamReader::Status
StreamReader::tryHeader(const u8 *data, std::size_t size, StreamHeader *out)
{
    if (size < offset_ + kStreamHeaderBytes)
        return size < offset_ + 4 || get32(data + offset_) == kStreamMagic
                   ? Status::NeedMore
                   : Status::Malformed;
    const u8 *p = data + offset_;
    if (get32(p) != kStreamMagic)
        return Status::Malformed;
    StreamHeader h;
    h.version = get16(p + 4);
    if (h.version != kStreamVersion)
        return Status::Malformed;
    if (p[6] > static_cast<u8>(Backend::Null))
        return Status::Malformed;
    h.backend = static_cast<Backend>(p[6]);
    if (p[7] > static_cast<u8>(sig::ValidationMode::CfiOnly))
        return Status::Malformed;
    h.mode = static_cast<sig::ValidationMode>(p[7]);
    h.returnValidation = p[8];
    h.hashRounds = p[9];
    h.bufferEntries = get16(p + 10);
    h.entryBytes = get16(p + 12);
    h.shadowStackEntries = get16(p + 14);
    if (p[16] > 1)
        return Status::Malformed;
    h.startEnabled = p[16] == 1;
    offset_ += kStreamHeaderBytes;
    prevEnd_ = 0;
    *out = h;
    return Status::Ok;
}

StreamReader::Status
StreamReader::tryNext(const u8 *data, std::size_t size, MeasurementEvent *out)
{
    if (size <= offset_)
        return Status::NeedMore;
    const u8 *p = data + offset_;
    std::size_t avail = size - offset_;
    std::size_t pos = 0;

    // Pull one varint at `pos`; on failure set `st` and bail to the caller.
    Status st = Status::Ok;
    auto varint = [&](u64 *v) -> bool {
        std::size_t n = getVarint(p + pos, avail - pos, v);
        if (n == 0)
            st = Status::NeedMore;
        else if (n == SIZE_MAX)
            st = Status::Malformed;
        else
        {
            pos += n;
            return true;
        }
        return false;
    };

    MeasurementEvent ev;
    const u8 tag = p[pos++];
    switch (tag)
    {
    case static_cast<u8>(EventKind::Block):
    {
        ev.kind = EventKind::Block;
        if (avail < 2)
            return Status::NeedMore;
        const u8 flags = p[pos++];
        if ((flags & 0x1f) > static_cast<u8>(isa::InstrClass::Halt))
            return Status::Malformed;
        ev.termClass = static_cast<isa::InstrClass>(flags & 0x1f);
        ev.artificialSplit = (flags & 0x20) != 0;
        const bool fallthrough = (flags & 0x40) != 0;
        u64 startDelta = 0, termLen = 0, endLen = 0, targetDelta = 0;
        if (!varint(&startDelta) || !varint(&termLen) || !varint(&endLen))
            return st;
        if (!fallthrough && !varint(&targetDelta))
            return st;
        if (avail - pos < 4)
            return Status::NeedMore;
        ev.start = static_cast<Addr>(static_cast<i64>(prevEnd_) +
                                     zigzagDecode(startDelta));
        ev.term = ev.start + termLen;
        ev.end = ev.term + endLen;
        ev.target = fallthrough
                        ? ev.end
                        : static_cast<Addr>(static_cast<i64>(ev.end) +
                                            zigzagDecode(targetDelta));
        ev.codeDigest = get32(p + pos);
        pos += 4;
        prevEnd_ = ev.end;
        break;
    }
    case static_cast<u8>(EventKind::Syscall):
        ev.kind = EventKind::Syscall;
        if (avail < 2)
            return Status::NeedMore;
        ev.service = p[pos++];
        break;
    case static_cast<u8>(EventKind::SpillMark):
        ev.kind = EventKind::SpillMark;
        if (!varint(&ev.spillBytes))
            return st;
        break;
    case static_cast<u8>(EventKind::End):
    {
        ev.kind = EventKind::End;
        if (!varint(&ev.blockCount))
            return st;
        if (avail - pos < 1)
            return Status::NeedMore;
        const u8 hasChain = p[pos++];
        if (hasChain > 1)
            return Status::Malformed;
        ev.hasChain = hasChain == 1;
        if (ev.hasChain)
        {
            if (avail - pos < ev.chain.size())
                return Status::NeedMore;
            std::memcpy(ev.chain.data(), p + pos, ev.chain.size());
            pos += ev.chain.size();
        }
        break;
    }
    default:
        return Status::Malformed;
    }

    offset_ += pos;
    *out = ev;
    return Status::Ok;
}

} // namespace rev::validate
