#include "validate/verdict.hpp"

#include <sstream>

namespace rev::validate::verdict
{

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

std::string
bbSuffix(Addr start, Addr term)
{
    return " (bb " + hex(start) + ".." + hex(term) + ")";
}

std::string
reasonHashMismatch()
{
    return "basic-block hash mismatch";
}

std::string
reasonNoReference()
{
    return "no reference signature for basic block";
}

std::string
reasonBadReturn(Addr from)
{
    return "return from " + hex(from) + " to unexpected site";
}

std::string
reasonIllegalTransfer(Addr target)
{
    return "illegal transfer to " + hex(target);
}

std::string
reasonShadowUnderflow()
{
    return "shadow stack underflow on return";
}

std::string
reasonShadowMismatch(Addr target, Addr expected)
{
    return "return to " + hex(target) + " violates shadow stack (expected " +
           hex(expected) + ")";
}

std::string
reasonUnattested(Addr term)
{
    return "unattested code at " + hex(term);
}

std::string
reasonBadReturnSite(Addr target)
{
    return "return to " + hex(target) + " not an attested return site";
}

std::string
reasonIllegalEdge(Addr target)
{
    return "control-flow edge to " + hex(target) +
           " absent from attested CFG";
}

std::string
reasonTruncatedStream()
{
    return "truncated measurement stream";
}

std::string
reasonMalformedStream()
{
    return "malformed measurement stream";
}

std::string
reasonChainDivergence()
{
    return "measurement chain divergence";
}

std::string
reasonBlockCountMismatch(u64 claimed, u64 verified)
{
    return "measurement stream block count mismatch (stream says " +
           std::to_string(claimed) + ", verified " +
           std::to_string(verified) + ")";
}

std::string
reasonMissingSpill()
{
    return "missing measurement spill record";
}

std::string
reasonUnexpectedSpill()
{
    return "unexpected measurement spill record";
}

std::string
reasonSpillSizeMismatch(u64 claimed, u64 expected)
{
    return "measurement spill size mismatch (stream says " +
           std::to_string(claimed) + ", expected " +
           std::to_string(expected) + ")";
}

} // namespace rev::validate::verdict
