#include "validate/sc.hpp"

#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace rev::validate
{

SignatureCache::SignatureCache(const ScConfig &cfg) : cfg_(cfg)
{
    const u64 entries = cfg_.sizeBytes / cfg_.entryBytes;
    if (entries == 0 || entries % cfg_.assoc)
        fatal("SC: size/entry/assoc mismatch");
    const u64 sets = entries / cfg_.assoc;
    if (!isPow2(sets))
        fatal("SC: set count must be a power of two (got ", sets, ")");
    numSets_ = static_cast<unsigned>(sets);
    entries_.resize(entries);
}

unsigned
SignatureCache::setOf(Addr term) const
{
    // Low bits of the BB (terminator) address index the cache. Skip the
    // lowest bit to spread variable-length terminators a little.
    return static_cast<unsigned>((term >> 1) & (numSets_ - 1));
}

ScEntry *
SignatureCache::probe(Addr term, Addr start)
{
    ++probes_;
    ScEntry *set = &entries_[static_cast<std::size_t>(setOf(term)) *
                             cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        ScEntry &e = set[w];
        if (e.valid && e.term == term && e.start == start) {
            e.lastUse = ++useClock_;
            ++hits_;
            return &e;
        }
    }
    return nullptr;
}

ScEntry &
SignatureCache::insert(Addr term, Addr start)
{
    ScEntry *set = &entries_[static_cast<std::size_t>(setOf(term)) *
                             cfg_.assoc];
    ScEntry *victim = &set[0];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        ScEntry &e = set[w];
        if (e.valid && e.term == term && e.start == start) {
            victim = &e; // refresh in place
            break;
        }
        if (victim->valid && (!e.valid || e.lastUse < victim->lastUse))
            victim = &e;
    }
    if (victim->valid && !(victim->term == term && victim->start == start))
        ++evictions_;
    *victim = ScEntry{};
    victim->valid = true;
    victim->term = term;
    victim->start = start;
    victim->lastUse = ++useClock_;
    return *victim;
}

void
SignatureCache::invalidateAll()
{
    for (auto &e : entries_)
        e = ScEntry{};
}

void
SignatureCache::addStats(stats::StatGroup &group) const
{
    group.add("sc.probes", &probes_);
    group.add("sc.hits", &hits_);
    group.add("sc.evictions", &evictions_);
}

} // namespace rev::validate
