/**
 * @file
 * Shared command-line handling for the validation-backend flags.
 *
 * Every binary that selects a backend accepts the same two flags:
 *
 *   --backend NAME     pick a registered backend by its stable CLI name
 *   --list-backends    print the registered backends and exit
 *
 * backendCliOptions() is the one implementation of both, so the tools,
 * the benchmark drivers, and future binaries cannot drift in parsing,
 * error wording, or listing format. The listing is sorted by backend
 * name (not registry order) so its output is stable as backends are
 * added.
 */

#ifndef REV_VALIDATE_BACKEND_CLI_HPP
#define REV_VALIDATE_BACKEND_CLI_HPP

#include <cstdio>

#include "validate/validator.hpp"

namespace rev::validate
{

/** Usage-string fragment for the shared flags. */
inline constexpr const char *kBackendCliUsage =
    "[--backend NAME] [--list-backends]";

/** Print "name  summary" rows for every registered backend, sorted by
 *  name, to @p to. */
void printBackendList(std::FILE *to);

/**
 * Shared --backend / --list-backends handling.
 *
 * Call with the current argv index; returns true when argv[*i] was one
 * of the shared flags (advancing *i past a consumed value). Exits the
 * process directly with status 0 after --list-backends and status 2 on
 * a missing or unknown backend name — matching what every former inline
 * copy of this parsing did.
 */
bool backendCliOptions(int argc, char **argv, int *i, Backend *backend);

} // namespace rev::validate

#endif // REV_VALIDATE_BACKEND_CLI_HPP
