/**
 * @file
 * StreamVerifier: the verifier-side half of the attestation split.
 *
 * Consumes one measurement session (stream.hpp) incrementally and
 * renders the verdict the in-core backend would have rendered on the
 * same execution — the same Detected/Benign outcome, the same
 * violation-reason string (verdict.hpp), and the same architectural
 * counters (bbValidated, violations; LO-FAT chain/spill counters). The
 * checking rules are the commit-time halves of RevValidator::validateBB
 * and LoFatValidator::validateBB, driven by reference lookups against a
 * module-sharded RefStore instead of the in-core SC/SAG path; the
 * contract test (tests/validate/stream_contract_test.cpp) pins the
 * equivalence across every sweep config.
 *
 * One deliberate difference from the in-core path: the in-core SC
 * authenticates a block once and then trusts its cached reference hash,
 * so a (term, digest) pair that collides with a *different* unit of the
 * same terminator could in principle round-trip differently here. The
 * discriminator is the table's own (termOff, hash) match either way, so
 * the divergence window is a 32-bit collision within one terminator —
 * the same residual the paper accepts for the SC itself.
 *
 * Beyond re-rendering verdicts, the verifier adjudicates the transport:
 * truncated or malformed bytes, block-count or spill-record
 * inconsistencies, and (LO-FAT) divergence of the reported measurement
 * chain from the chain it re-folds from verified blocks all yield
 * Detected with a transport reason. Transport failures do not touch the
 * architectural counters — those mirror inline validation, which cannot
 * experience a transport fault.
 */

#ifndef REV_VALIDATE_STREAM_VERIFIER_HPP
#define REV_VALIDATE_STREAM_VERIFIER_HPP

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "validate/refstore.hpp"
#include "validate/stream.hpp"

namespace rev::validate
{

/**
 * Cross-session dedup of verification work (the verifier service's
 * shared verified-unit cache implements this; src/verifier/unit_cache).
 *
 * Two kinds of work dedup across sessions of the same attested program:
 *  - *unit lookups*: the (term, digest) reference-table walk REV
 *    sessions pay per static validation unit. The result is a pure
 *    function of the RefStore and the key, so a hit skips the
 *    decrypt-and-walk entirely.
 *  - *chain folds*: the LO-FAT measurement-chain link
 *    chain' = H(chain || start || term || target || digest). The fold
 *    is a pure function of (chain, block, rounds); sessions replaying
 *    the same execution share every link, so a hit skips the CubeHash.
 *
 * Either way a hit returns bit-identical bytes to the computation it
 * replaces — dedup on/off may never move a verdict (pinned by
 * tests/verifier/unit_cache_test.cpp). Implementations must be
 * thread-safe: many sessions on many workers share one cache. The
 * RefStore pointer namespaces keys, so one service can multiplex
 * sessions of different attested programs without cross-talk.
 */
class UnitLookupCache
{
  public:
    /** Chain-fold key: everything the fold reads besides the chain. */
    struct FoldKey
    {
        Addr start = 0;
        Addr term = 0;
        Addr target = 0;
        u32 codeDigest = 0;
        u32 hashRounds = 0;
    };

    virtual ~UnitLookupCache() = default;

    virtual bool lookupUnit(const RefStore *ns, Addr term, u32 key,
                            sig::LookupResult *out) const = 0;
    virtual void insertUnit(const RefStore *ns, Addr term, u32 key,
                            const sig::LookupResult &val) = 0;

    virtual bool lookupFold(const crypto::Digest &chain, const FoldKey &key,
                            crypto::Digest *out) const = 0;
    virtual void insertFold(const crypto::Digest &chain, const FoldKey &key,
                            const crypto::Digest &next) = 0;
};

/** What a StreamVerifier renders for one session. */
struct StreamVerdict
{
    bool complete = false; ///< session adjudicated (End seen or hard fail)
    bool detected = false; ///< a violation (or transport fault) was found
    std::string reason;    ///< first violation, inline-identical wording

    u64 blocksSeen = 0; ///< Block records consumed (incl. skipped ones)

    // Architectural counters, bit-identical to the inline backend's.
    u64 bbValidated = 0;
    u64 violations = 0;

    // LO-FAT extras (zero for REV sessions).
    u64 chainUpdates = 0;
    u64 bufferSpills = 0;
    u64 spillBytes = 0;
    u64 unattestedBlocks = 0;
    u64 edgeViolations = 0;
};

/**
 * Incremental verifier for one session. Feed bytes as they arrive;
 * finish() when the prover closes. Single-session, single-threaded —
 * the service (verifier/service.hpp) runs one per session and shards
 * concurrency across sessions.
 */
class StreamVerifier
{
  public:
    /** @param dedup Optional shared verified-unit cache; results are
     *  bit-identical with or without it. Must outlive this verifier. */
    explicit StreamVerifier(const RefStore &refs,
                            UnitLookupCache *dedup = nullptr)
        : refs_(refs), dedup_(dedup)
    {
    }

    /**
     * Append @p n session bytes and process every complete event.
     * @return false once the session is adjudicated (further bytes are
     *         ignored).
     */
    bool feed(const u8 *data, std::size_t n);

    /** The prover closed the stream: adjudicate truncation. */
    void finish();

    bool done() const { return verdict_.complete; }
    const StreamVerdict &verdict() const { return verdict_; }

    /** Session header (valid once headerSeen()). */
    const StreamHeader &header() const { return hdr_; }
    bool headerSeen() const { return haveHeader_; }

    /** Bytes consumed so far (drives the bytes/session report). */
    u64 bytesConsumed() const { return bytesConsumed_; }

    /**
     * The transport layer itself was violated (torn framing, bad length
     * prefix): adjudicate the session as malformed now. No-op once the
     * session is complete.
     */
    void abortMalformed();

    /** Shared-cache dedup accounting for this session. */
    u64 dedupHits() const { return dedupHits_; }
    u64 dedupMisses() const { return dedupMisses_; }

  private:
    void processAvailable();

    /** Batch-resolve reference lookups for every decodable Block whose
     *  (term, digest) is not yet memoized, grouped by shard. */
    void prefetchLookups();

    const sig::LookupResult &resolve(Addr term, u32 digest);

    void handleEvent(const MeasurementEvent &ev);
    void handleBlockRev(const MeasurementEvent &ev);
    void handleBlockLoFat(const MeasurementEvent &ev);
    void handleSpillMark(const MeasurementEvent &ev);
    void handleEnd(const MeasurementEvent &ev);

    /** Render a block-level violation exactly as the inline fail() does. */
    void violation(const MeasurementEvent &ev, const std::string &reason);

    /** Render a transport-level failure (no architectural counterpart). */
    void transportFail(const std::string &reason);

    void foldChain(const MeasurementEvent &ev);

    const RefStore &refs_;
    UnitLookupCache *dedup_ = nullptr; ///< shared cross-session cache
    u64 dedupHits_ = 0;
    u64 dedupMisses_ = 0;

    std::vector<u8> buf_;
    StreamReader reader_;
    u64 bytesConsumed_ = 0;

    bool haveHeader_ = false;
    StreamHeader hdr_;
    StreamVerdict verdict_;

    bool enabled_ = true; ///< tracks the trusted suspend/resume services

    // Memoized reference lookups, keyed by (term, digest). One table
    // walk per static validation unit instead of per dynamic block.
    std::unordered_map<Addr, std::vector<std::pair<u32, sig::LookupResult>>>
        memo_;

    // --- REV session state (mirrors RevValidator) -----------------------
    std::optional<Addr> pendingReturn_;
    std::vector<Addr> shadowStack_;

    // --- LO-FAT session state (mirrors LoFatValidator) ------------------
    // Per-session memo of cfg.blocksAtTerm so loops cost one CFG walk.
    std::unordered_map<Addr, std::vector<const prog::BasicBlock *>>
        lofatBlocks_;
    crypto::Digest chain_{};
    unsigned bufferUsed_ = 0;
    bool spillPending_ = false;
    u64 expectedSpillBytes_ = 0;
};

} // namespace rev::validate

#endif // REV_VALIDATE_STREAM_VERIFIER_HPP
