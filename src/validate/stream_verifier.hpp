/**
 * @file
 * StreamVerifier: the verifier-side half of the attestation split.
 *
 * Consumes one measurement session (stream.hpp) incrementally and
 * renders the verdict the in-core backend would have rendered on the
 * same execution — the same Detected/Benign outcome, the same
 * violation-reason string (verdict.hpp), and the same architectural
 * counters (bbValidated, violations; LO-FAT chain/spill counters). The
 * checking rules are the commit-time halves of RevValidator::validateBB
 * and LoFatValidator::validateBB, driven by reference lookups against a
 * module-sharded RefStore instead of the in-core SC/SAG path; the
 * contract test (tests/validate/stream_contract_test.cpp) pins the
 * equivalence across every sweep config.
 *
 * One deliberate difference from the in-core path: the in-core SC
 * authenticates a block once and then trusts its cached reference hash,
 * so a (term, digest) pair that collides with a *different* unit of the
 * same terminator could in principle round-trip differently here. The
 * discriminator is the table's own (termOff, hash) match either way, so
 * the divergence window is a 32-bit collision within one terminator —
 * the same residual the paper accepts for the SC itself.
 *
 * Beyond re-rendering verdicts, the verifier adjudicates the transport:
 * truncated or malformed bytes, block-count or spill-record
 * inconsistencies, and (LO-FAT) divergence of the reported measurement
 * chain from the chain it re-folds from verified blocks all yield
 * Detected with a transport reason. Transport failures do not touch the
 * architectural counters — those mirror inline validation, which cannot
 * experience a transport fault.
 */

#ifndef REV_VALIDATE_STREAM_VERIFIER_HPP
#define REV_VALIDATE_STREAM_VERIFIER_HPP

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "validate/refstore.hpp"
#include "validate/stream.hpp"

namespace rev::validate
{

/** What a StreamVerifier renders for one session. */
struct StreamVerdict
{
    bool complete = false; ///< session adjudicated (End seen or hard fail)
    bool detected = false; ///< a violation (or transport fault) was found
    std::string reason;    ///< first violation, inline-identical wording

    u64 blocksSeen = 0; ///< Block records consumed (incl. skipped ones)

    // Architectural counters, bit-identical to the inline backend's.
    u64 bbValidated = 0;
    u64 violations = 0;

    // LO-FAT extras (zero for REV sessions).
    u64 chainUpdates = 0;
    u64 bufferSpills = 0;
    u64 spillBytes = 0;
    u64 unattestedBlocks = 0;
    u64 edgeViolations = 0;
};

/**
 * Incremental verifier for one session. Feed bytes as they arrive;
 * finish() when the prover closes. Single-session, single-threaded —
 * the service (verifier/service.hpp) runs one per session and shards
 * concurrency across sessions.
 */
class StreamVerifier
{
  public:
    explicit StreamVerifier(const RefStore &refs) : refs_(refs) {}

    /**
     * Append @p n session bytes and process every complete event.
     * @return false once the session is adjudicated (further bytes are
     *         ignored).
     */
    bool feed(const u8 *data, std::size_t n);

    /** The prover closed the stream: adjudicate truncation. */
    void finish();

    bool done() const { return verdict_.complete; }
    const StreamVerdict &verdict() const { return verdict_; }

    /** Session header (valid once headerSeen()). */
    const StreamHeader &header() const { return hdr_; }
    bool headerSeen() const { return haveHeader_; }

    /** Bytes consumed so far (drives the bytes/session report). */
    u64 bytesConsumed() const { return bytesConsumed_; }

  private:
    void processAvailable();

    /** Batch-resolve reference lookups for every decodable Block whose
     *  (term, digest) is not yet memoized, grouped by shard. */
    void prefetchLookups();

    const sig::LookupResult &resolve(Addr term, u32 digest);

    void handleEvent(const MeasurementEvent &ev);
    void handleBlockRev(const MeasurementEvent &ev);
    void handleBlockLoFat(const MeasurementEvent &ev);
    void handleSpillMark(const MeasurementEvent &ev);
    void handleEnd(const MeasurementEvent &ev);

    /** Render a block-level violation exactly as the inline fail() does. */
    void violation(const MeasurementEvent &ev, const std::string &reason);

    /** Render a transport-level failure (no architectural counterpart). */
    void transportFail(const std::string &reason);

    void foldChain(const MeasurementEvent &ev);

    const RefStore &refs_;

    std::vector<u8> buf_;
    StreamReader reader_;
    u64 bytesConsumed_ = 0;

    bool haveHeader_ = false;
    StreamHeader hdr_;
    StreamVerdict verdict_;

    bool enabled_ = true; ///< tracks the trusted suspend/resume services

    // Memoized reference lookups, keyed by (term, digest). One table
    // walk per static validation unit instead of per dynamic block.
    std::unordered_map<Addr, std::vector<std::pair<u32, sig::LookupResult>>>
        memo_;

    // --- REV session state (mirrors RevValidator) -----------------------
    std::optional<Addr> pendingReturn_;
    std::vector<Addr> shadowStack_;

    // --- LO-FAT session state (mirrors LoFatValidator) ------------------
    crypto::Digest chain_{};
    unsigned bufferUsed_ = 0;
    bool spillPending_ = false;
    u64 expectedSpillBytes_ = 0;
};

} // namespace rev::validate

#endif // REV_VALIDATE_STREAM_VERIFIER_HPP
