#include "validate/sag.hpp"

#include "common/logging.hpp"

namespace rev::validate
{

Sag::Sag(unsigned num_entries)
{
    if (num_entries == 0)
        fatal("SAG: need at least one entry");
    entries_.resize(num_entries);
}

const SagEntry *
Sag::match(Addr addr)
{
    ++lookups_;
    for (const auto &e : entries_)
        if (e.valid && addr >= e.moduleBase && addr < e.moduleLimit)
            return &e;
    ++misses_;
    return nullptr;
}

void
Sag::install(Addr module_base, Addr module_limit, Addr table_base)
{
    // Prefer an invalid slot; otherwise round-robin replacement (the
    // handler's policy is software-defined).
    SagEntry *slot = nullptr;
    for (auto &e : entries_) {
        if (!e.valid) {
            slot = &e;
            break;
        }
    }
    if (!slot) {
        slot = &entries_[victim_];
        victim_ = (victim_ + 1) % entries_.size();
    }
    slot->valid = true;
    slot->moduleBase = module_base;
    slot->moduleLimit = module_limit;
    slot->tableBase = table_base;
}

void
Sag::reset()
{
    for (auto &e : entries_)
        e = SagEntry{};
    victim_ = 0;
}

void
Sag::addStats(stats::StatGroup &group) const
{
    group.add("sag.lookups", &lookups_);
    group.add("sag.misses", &misses_);
}

} // namespace rev::validate
