/**
 * @file
 * The validation-backend registry: the one place that knows how to turn a
 * Backend enumerator into a live Validator.
 *
 * The Simulator asks the registry two questions: does this backend need
 * the signature-store machinery built (needsTables), and make me one
 * (create). Tools ask for the list() to render --list-backends. Adding a
 * backend means adding one BackendInfo row here plus its implementation
 * files — no core or simulator changes.
 */

#ifndef REV_VALIDATE_REGISTRY_HPP
#define REV_VALIDATE_REGISTRY_HPP

#include <functional>
#include <memory>
#include <vector>

#include "validate/lofat_validator.hpp"
#include "validate/rev_validator.hpp"

namespace rev::validate
{

/** Everything a backend factory may draw from. Pointers may be null when
 *  the backend does not need them (the registry's needsTables flag tells
 *  the owner which ones to build). */
struct BackendContext
{
    const sig::SigStore *store = nullptr;
    const crypto::KeyVault *vault = nullptr;
    const SparseMemory *mem = nullptr;
    mem::MemorySystem *memsys = nullptr;
    RevConfig rev;
    LoFatConfig lofat;
    unsigned coreId = 0; ///< memory-system port for SC-fill/spill traffic
};

/** One registered backend. */
struct BackendInfo
{
    Backend kind = Backend::Null;
    const char *name = "";    ///< stable CLI name
    const char *summary = ""; ///< one-line --list-backends description
    bool needsTables = false; ///< requires a built SigStore
    std::function<std::unique_ptr<Validator>(const BackendContext &)> create;
};

/**
 * The process-wide backend table.
 */
class ValidatorRegistry
{
  public:
    static ValidatorRegistry &instance();

    /** Registered backends, in canonical (rev, lofat, null) order. */
    const std::vector<BackendInfo> &list() const { return infos_; }

    /** Info for @p kind; never null for a Backend enumerator. */
    const BackendInfo *find(Backend kind) const;

    /** Construct a validator of @p kind from @p ctx. */
    std::unique_ptr<Validator> create(Backend kind,
                                      const BackendContext &ctx) const;

    /** Register an additional backend (tests, future out-of-tree use). */
    void add(BackendInfo info) { infos_.push_back(std::move(info)); }

  private:
    ValidatorRegistry(); ///< registers the built-in backends

    std::vector<BackendInfo> infos_;
};

} // namespace rev::validate

#endif // REV_VALIDATE_REGISTRY_HPP
