/**
 * @file
 * Signature Address Generation unit (SAG) — Sec. IV.B.
 *
 * A set of B base registers pointing at the RAM-resident signature tables
 * of up to B modules, each paired with limit registers recording the
 * module's virtual-address range (and, in hardware, a key register for the
 * module's decryption key — in the model the key stays inside the table
 * header / key vault). Every call or return target is associatively
 * compared against the limit pairs to select the table to use; when no
 * pair encloses the address an exception is raised and a software handler
 * (the OS) refills a victim entry.
 */

#ifndef REV_VALIDATE_SAG_HPP
#define REV_VALIDATE_SAG_HPP

#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace rev::validate
{

/** One base/limit register set. */
struct SagEntry
{
    bool valid = false;
    Addr moduleBase = 0;  ///< first code address of the module
    Addr moduleLimit = 0; ///< one past the last code address
    Addr tableBase = 0;   ///< RAM address of the signature table
};

/**
 * The SAG register file.
 */
class Sag
{
  public:
    /** @param num_entries The paper suggests B in 16..32. */
    explicit Sag(unsigned num_entries = 16);

    /**
     * Associative range match of @p addr against all limit pairs.
     * Returns nullptr when no entry encloses the address (exception).
     */
    const SagEntry *match(Addr addr);

    /**
     * Install a module's registers (trusted linker/loader or the
     * exception handler). Picks an invalid entry or round-robin victim.
     */
    void install(Addr module_base, Addr module_limit, Addr table_base);

    /** Drop all entries. */
    void reset();

    unsigned capacity() const { return static_cast<unsigned>(entries_.size()); }
    u64 lookups() const { return lookups_; }
    u64 misses() const { return misses_; }

    void addStats(stats::StatGroup &group) const;

  private:
    std::vector<SagEntry> entries_;
    std::size_t victim_ = 0;
    stats::Counter lookups_, misses_;
};

} // namespace rev::validate

#endif // REV_VALIDATE_SAG_HPP
