file(REMOVE_RECURSE
  "CMakeFiles/rev_validate.dir/backend_cli.cpp.o"
  "CMakeFiles/rev_validate.dir/backend_cli.cpp.o.d"
  "CMakeFiles/rev_validate.dir/chg.cpp.o"
  "CMakeFiles/rev_validate.dir/chg.cpp.o.d"
  "CMakeFiles/rev_validate.dir/coverage.cpp.o"
  "CMakeFiles/rev_validate.dir/coverage.cpp.o.d"
  "CMakeFiles/rev_validate.dir/lofat_validator.cpp.o"
  "CMakeFiles/rev_validate.dir/lofat_validator.cpp.o.d"
  "CMakeFiles/rev_validate.dir/refstore.cpp.o"
  "CMakeFiles/rev_validate.dir/refstore.cpp.o.d"
  "CMakeFiles/rev_validate.dir/registry.cpp.o"
  "CMakeFiles/rev_validate.dir/registry.cpp.o.d"
  "CMakeFiles/rev_validate.dir/rev_validator.cpp.o"
  "CMakeFiles/rev_validate.dir/rev_validator.cpp.o.d"
  "CMakeFiles/rev_validate.dir/sag.cpp.o"
  "CMakeFiles/rev_validate.dir/sag.cpp.o.d"
  "CMakeFiles/rev_validate.dir/sc.cpp.o"
  "CMakeFiles/rev_validate.dir/sc.cpp.o.d"
  "CMakeFiles/rev_validate.dir/source.cpp.o"
  "CMakeFiles/rev_validate.dir/source.cpp.o.d"
  "CMakeFiles/rev_validate.dir/stream.cpp.o"
  "CMakeFiles/rev_validate.dir/stream.cpp.o.d"
  "CMakeFiles/rev_validate.dir/stream_verifier.cpp.o"
  "CMakeFiles/rev_validate.dir/stream_verifier.cpp.o.d"
  "CMakeFiles/rev_validate.dir/verdict.cpp.o"
  "CMakeFiles/rev_validate.dir/verdict.cpp.o.d"
  "librev_validate.a"
  "librev_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
