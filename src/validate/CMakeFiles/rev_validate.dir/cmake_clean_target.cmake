file(REMOVE_RECURSE
  "librev_validate.a"
)
