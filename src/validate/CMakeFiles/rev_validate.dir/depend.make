# Empty dependencies file for rev_validate.
# This may be replaced when dependencies are built.
