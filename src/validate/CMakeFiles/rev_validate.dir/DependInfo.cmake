
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/validate/backend_cli.cpp" "src/validate/CMakeFiles/rev_validate.dir/backend_cli.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/backend_cli.cpp.o.d"
  "/root/repo/src/validate/chg.cpp" "src/validate/CMakeFiles/rev_validate.dir/chg.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/chg.cpp.o.d"
  "/root/repo/src/validate/coverage.cpp" "src/validate/CMakeFiles/rev_validate.dir/coverage.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/coverage.cpp.o.d"
  "/root/repo/src/validate/lofat_validator.cpp" "src/validate/CMakeFiles/rev_validate.dir/lofat_validator.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/lofat_validator.cpp.o.d"
  "/root/repo/src/validate/refstore.cpp" "src/validate/CMakeFiles/rev_validate.dir/refstore.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/refstore.cpp.o.d"
  "/root/repo/src/validate/registry.cpp" "src/validate/CMakeFiles/rev_validate.dir/registry.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/registry.cpp.o.d"
  "/root/repo/src/validate/rev_validator.cpp" "src/validate/CMakeFiles/rev_validate.dir/rev_validator.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/rev_validator.cpp.o.d"
  "/root/repo/src/validate/sag.cpp" "src/validate/CMakeFiles/rev_validate.dir/sag.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/sag.cpp.o.d"
  "/root/repo/src/validate/sc.cpp" "src/validate/CMakeFiles/rev_validate.dir/sc.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/sc.cpp.o.d"
  "/root/repo/src/validate/source.cpp" "src/validate/CMakeFiles/rev_validate.dir/source.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/source.cpp.o.d"
  "/root/repo/src/validate/stream.cpp" "src/validate/CMakeFiles/rev_validate.dir/stream.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/stream.cpp.o.d"
  "/root/repo/src/validate/stream_verifier.cpp" "src/validate/CMakeFiles/rev_validate.dir/stream_verifier.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/stream_verifier.cpp.o.d"
  "/root/repo/src/validate/verdict.cpp" "src/validate/CMakeFiles/rev_validate.dir/verdict.cpp.o" "gcc" "src/validate/CMakeFiles/rev_validate.dir/verdict.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/sig/CMakeFiles/rev_sig.dir/DependInfo.cmake"
  "/root/repo/src/mem/CMakeFiles/rev_mem.dir/DependInfo.cmake"
  "/root/repo/src/crypto/CMakeFiles/rev_crypto.dir/DependInfo.cmake"
  "/root/repo/src/program/CMakeFiles/rev_program.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/rev_common.dir/DependInfo.cmake"
  "/root/repo/src/isa/CMakeFiles/rev_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
