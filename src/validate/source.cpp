#include "validate/source.hpp"

namespace rev::validate
{

void
MeasurementSource::attach(MeasurementSink *sink, const StreamHeader &header)
{
    sink_ = sink;
    blocks_ = 0;
    sealed_ = false;
    if (sink_)
        sink_->onHeader(header);
}

void
MeasurementSource::emitBlock(const BBFetchInfo &info, Addr target,
                             u32 code_digest)
{
    if (!sink_ || sealed_)
        return;
    MeasurementEvent ev;
    ev.kind = EventKind::Block;
    ev.start = info.start;
    ev.term = info.term;
    ev.end = info.end;
    ev.target = target;
    ev.termClass = info.termClass;
    ev.artificialSplit = info.artificialSplit;
    ev.codeDigest = code_digest;
    sink_->onEvent(ev);
    ++blocks_;
}

void
MeasurementSource::emitSyscall(u8 service)
{
    if (!sink_ || sealed_)
        return;
    MeasurementEvent ev;
    ev.kind = EventKind::Syscall;
    ev.service = service;
    sink_->onEvent(ev);
}

void
MeasurementSource::emitSpill(u64 bytes)
{
    if (!sink_ || sealed_)
        return;
    MeasurementEvent ev;
    ev.kind = EventKind::SpillMark;
    ev.spillBytes = bytes;
    sink_->onEvent(ev);
}

void
MeasurementSource::emitEnd(const crypto::Digest *chain)
{
    if (!sink_ || sealed_)
        return;
    MeasurementEvent ev;
    ev.kind = EventKind::End;
    ev.blockCount = blocks_;
    if (chain) {
        ev.hasChain = true;
        ev.chain = *chain;
    }
    sink_->onEvent(ev);
    sealed_ = true;
}

void
MeasurementSource::seal()
{
    emitEnd(nullptr);
}

void
MeasurementSource::seal(const crypto::Digest &chain)
{
    emitEnd(&chain);
}

} // namespace rev::validate
