/**
 * @file
 * RefStore: the verifier's reference data, sharded by module.
 *
 * A StreamVerifier adjudicates measurement sessions against the same
 * reference material the in-core backends use — the encrypted signature
 * tables (REV) and the toolchain-derived CFGs (LO-FAT) — but from the
 * verifier service's side of the trust boundary: it holds the SigStore
 * the trusted toolchain built and the key vault of the CPU the tables
 * are bound to, not the prover's memory.
 *
 * Layout: one shard per module. Each shard owns a private copy of the
 * table image (TableReader lookups go through SparseMemory, whose
 * translation cache makes even const reads non-reentrant) plus a mutex,
 * so worker threads verifying different sessions can look up different
 * modules concurrently; the verifier core batches each session's pending
 * lookups by shard to amortize the lock (see verifier/service.hpp).
 * Lookups run the *real* TableReader decrypt-and-walk path — the
 * verifier's found/termSeen/targets/preds semantics are the in-core
 * semantics by construction, not by re-implementation.
 */

#ifndef REV_VALIDATE_REFSTORE_HPP
#define REV_VALIDATE_REFSTORE_HPP

#include <memory>
#include <mutex>
#include <vector>

#include "common/sparse_memory.hpp"
#include "sig/sigstore.hpp"

namespace rev::validate
{

/** Sentinel for "no shard owns this address". */
inline constexpr std::size_t kNoShard = ~std::size_t{0};

/**
 * Module-sharded reference data for stream verification.
 */
class RefStore
{
  public:
    /**
     * @param store Reference store built by the trusted toolchain for the
     *              attested program; must outlive this object.
     * @param vault Key vault of the CPU the tables are bound to; must
     *              outlive this object. May be null for table-less
     *              verification (LO-FAT uses only the CFGs).
     */
    RefStore(const sig::SigStore &store, const crypto::KeyVault *vault);

    std::size_t shardCount() const { return shards_.size(); }

    /** Shard whose module code contains @p addr, or kNoShard. */
    std::size_t shardFor(Addr addr) const;

    /** The module record behind @p shard (CFG, table stats). */
    const sig::ModuleSig &moduleSig(std::size_t shard) const
    {
        return *shards_[shard]->sig;
    }

    sig::ValidationMode mode() const { return store_.mode(); }

    /**
     * Full/Aggressive reference lookup of (term, hash), walking the
     * module's encrypted table. Thread-safe (serialized per shard).
     */
    sig::LookupResult lookup(std::size_t shard, Addr term, u32 hash) const;

    /** CFI-only site lookup. Thread-safe (serialized per shard). */
    sig::LookupResult lookupSite(std::size_t shard, Addr term) const;

    /** One pending reference lookup of a batch. */
    struct LookupKey
    {
        Addr term = 0;
        u32 hash = 0; ///< ignored in CFI-only mode
    };

    /**
     * Resolve @p keys against @p shard under one lock acquisition — the
     * verifier core groups a session chunk's pending lookups by shard so
     * N blocks cost one lock round trip per shard, not N.
     * @p out is resized to keys.size(), index-aligned with @p keys.
     */
    void lookupBatch(std::size_t shard, const std::vector<LookupKey> &keys,
                     std::vector<sig::LookupResult> *out) const;

  private:
    struct Shard
    {
        const sig::ModuleSig *sig = nullptr;
        SparseMemory tableMem; ///< private image copy (reads mutate caches)
        std::unique_ptr<sig::TableReader> reader; ///< null when table-less
        mutable std::mutex lock;
    };

    const sig::SigStore &store_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace rev::validate

#endif // REV_VALIDATE_REFSTORE_HPP
