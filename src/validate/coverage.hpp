/**
 * @file
 * The tampering taxonomy and each backend's claimed-coverage matrix.
 *
 * Every concrete attack (src/attacks) and machine-generated injection
 * (src/redteam) tampers in one of four ways; whether a given backend
 * *claims* to detect that tampering is a property of (backend, class,
 * mode), centralized here. The red-team oracle uses the matrix to
 * separate Blind verdicts (divergence the backend never claimed to see)
 * from Escapes (claimed coverage that failed), and the attack binaries
 * use it to print expectations.
 */

#ifndef REV_VALIDATE_COVERAGE_HPP
#define REV_VALIDATE_COVERAGE_HPP

#include "sig/mode.hpp"
#include "validate/validator.hpp"

namespace rev::validate
{

/**
 * Tampering taxonomy (Sec. V.D / Table 1 of the paper).
 */
enum class TamperClass : u8
{
    CodeSubstitution,  ///< code bytes rewritten in place, CF shape intact
    ControlFlowHijack, ///< control redirected through signed code
    ForeignCode,       ///< executes code with no reference signatures
    SignatureTamper,   ///< the encrypted reference tables are corrupted
};

/** Short stable name, e.g. "code-substitution". */
const char *tamperClassName(TamperClass c);

/**
 * Whether backend @p b claims to detect tampering of class @p c under
 * validation mode @p mode.
 *
 * - Rev: everything, except pure code substitution in CFI-only mode
 *   (no hashes are kept, Sec. V.D).
 * - LoFat: control-flow hijacks and foreign code (the eager CFG check);
 *   in-place substitution only skews the measurement chain — adjudicated
 *   remotely, not modeled — and signature tables are never read, so
 *   neither is claimed. Mode-independent: the tables' encoding does not
 *   change what the CFG verifier sees.
 * - Null: nothing.
 */
bool backendClaims(Backend b, TamperClass c, sig::ValidationMode mode);

} // namespace rev::validate

#endif // REV_VALIDATE_COVERAGE_HPP
