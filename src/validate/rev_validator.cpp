#include "validate/rev_validator.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "validate/verdict.hpp"

namespace rev::validate
{

using isa::InstrClass;
using sig::ValidationMode;
using verdict::hex;

namespace
{

bool
contains(const std::vector<Addr> &v, Addr a)
{
    return std::find(v.begin(), v.end(), a) != v.end();
}

} // namespace

RevValidator::RevValidator(const sig::SigStore &store,
                           const crypto::KeyVault &vault,
                           const SparseMemory &mem,
                           mem::MemorySystem &memsys, const RevConfig &cfg,
                           unsigned core_id)
    : store_(store), vault_(vault), mem_(mem), memsys_(memsys),
      coreId_(core_id), cfg_(cfg), sc_(cfg.sc), sag_(cfg.sagEntries),
      chg_(mem, cfg.chg), enabled_(cfg.startEnabled)
{
    // The trusted linker pre-loads the SAG for statically linked modules
    // (Sec. IV.B); modules beyond the SAG capacity fault in at run time.
    preloadSag();
}

void
RevValidator::preloadSag()
{
    unsigned installed = 0;
    for (const auto &ms : store_.moduleSigs()) {
        if (installed >= sag_.capacity())
            break;
        sag_.install(ms.module->base, ms.module->codeEnd(), ms.tableBase);
        ++installed;
    }
}

bool
RevValidator::isComputedClass(InstrClass c)
{
    return c == InstrClass::CallIndirect || c == InstrClass::JumpIndirect;
}

const sig::TableReader &
RevValidator::readerFor(Addr table_base)
{
    for (const auto &[base, reader] : readers_) {
        if (base == table_base)
            return *reader;
    }
    readers_.emplace_back(table_base, std::make_unique<sig::TableReader>(
                                          mem_, table_base, vault_));
    const sig::TableReader &reader = *readers_.back().second;
    if (!reader.valid())
        warn("REV: signature table at ", hex(table_base),
             " failed authentication");
    return reader;
}

sig::LookupResult
RevValidator::walk(const SagEntry &sag_entry, Addr term, u32 key,
                   Cycle from, Cycle &ready_at, const sig::WalkNeeds &needs)
{
    const sig::TableReader &reader = readerFor(sag_entry.tableBase);
    sig::LookupResult res;
    if (reader.valid()) {
        res = reader.mode() == ValidationMode::CfiOnly
                  ? reader.lookupSite(term, sag_entry.moduleBase, &needs)
                  : reader.lookup(term, key, sag_entry.moduleBase, &needs);
    }
    Cycle t = from;
    for (Addr a : res.memAddrs)
        t = memsys_.access(a, mem::AccessType::ScFill, t, coreId_)
                .completeAt;
    stats_.tableWalkReads += res.memAddrs.size();
    ready_at = t + cfg_.decryptLatency;
    return res;
}

void
RevValidator::onBBFetched(const BBFetchInfo &info)
{
    PendingBB &cur = slotFor(info.bbSeq);
    cur = PendingBB{};
    cur.valid = true;
    cur.info = info;

    if (!enabled_) {
        cur.bypass = true;
        return;
    }

    const ValidationMode mode = store_.mode();

    // CFI-only validates computed transfers and returns; every other block
    // commits unchecked (Sec. V.D).
    if (mode == ValidationMode::CfiOnly &&
        !isComputedClass(info.termClass) &&
        info.termClass != InstrClass::Return) {
        cur.bypass = true;
        return;
    }

    Cycle t = info.fetchDoneAt;

    // --- SAG: which module / table owns this block? -----------------------
    const SagEntry *sag_entry = sag_.match(info.term);
    if (!sag_entry) {
        ++stats_.sagExceptions;
        t += cfg_.sagMissPenalty;
        if (const sig::ModuleSig *ms = store_.findByCode(info.term)) {
            sag_.install(ms->module->base, ms->module->codeEnd(),
                         ms->tableBase);
            sag_entry = sag_.match(info.term);
        }
    }
    if (!sag_entry) {
        // Code outside every registered module: nothing can authenticate it.
        cur.refFound = false;
        cur.scReadyAt = t;
        return;
    }

    // --- CHG ----------------------------------------------------------------
    // The hash unit starts digesting the fetched bytes now; the model
    // stages the request in the CHG lane queue (byte snapshot taken here)
    // and resolves it when the digest value is first consumed — by the
    // table walk below on an SC miss, or at validateBB() on an SC hit —
    // so several in-flight units' hashes flush as one multi-lane pass.
    if (mode != ValidationMode::CfiOnly) {
        chg_.queueDigest(info.start, info.term, info.end);
        cur.hashPending = true;
        cur.hashReadyAt = chg_.readyAt(info.fetchDoneAt);
    }

    // --- SC probe -------------------------------------------------------------
    const Addr sc_start = mode == ValidationMode::CfiOnly ? info.term
                                                          : info.start;
    ScEntry *entry = sc_.probe(info.term, sc_start);

    const bool need_target =
        mode == ValidationMode::CfiOnly
            ? true
            : (isComputedClass(info.termClass) ||
               (mode == ValidationMode::Aggressive &&
                info.termClass != InstrClass::Return &&
                info.termClass != InstrClass::Halt));
    const bool need_pred =
        mode != ValidationMode::CfiOnly &&
        cfg_.returnValidation == ReturnValidation::DelayedPredecessor &&
        pendingReturn_.has_value();

    // Aggressive entries verify up to two successors (Sec. VIII); CFI-only
    // entries are hash-free and small enough to cache two MRU targets in
    // the same SRAM budget.
    const bool two_slots = mode != ValidationMode::Full;
    if (entry) {
        const bool target_ok =
            !need_target ||
            (entry->succ && *entry->succ == info.nextStart) ||
            (two_slots && entry->succ2 && *entry->succ2 == info.nextStart);
        const bool pred_ok =
            !need_pred || (entry->pred && *entry->pred == *pendingReturn_);
        if (target_ok && pred_ok) {
            // Full hit: validate from the cached entry.
            cur.scHit = true;
            cur.refFound = true;
            cur.refHash = entry->hash;
            if (entry->succ)
                cur.refTargets.push_back(*entry->succ);
            if (two_slots && entry->succ2)
                cur.refTargets.push_back(*entry->succ2);
            if (entry->pred)
                cur.refPreds.push_back(*entry->pred);
            cur.scReadyAt = t;
            return;
        }
        // Partial miss: the entry lacks the needed successor/predecessor.
        cur.partialMiss = true;
        ++stats_.scPartialMisses;
        sig::WalkNeeds needs;
        if (need_target)
            needs.target = info.nextStart;
        if (need_pred)
            needs.pred = *pendingReturn_;
        // Partial-miss walks present the entry's reference hash (the SC
        // already authenticated this block's code).
        const sig::LookupResult ref = walk(*sag_entry, info.term,
                                           entry->hash, t, cur.scReadyAt,
                                           needs);
        cur.refFound = ref.found;
        cur.termSeen = ref.termSeen;
        cur.refHash = ref.found ? ref.hash : entry->hash;
        cur.refTargets = ref.targets;
        cur.refPreds = ref.retPreds;
        // MRU update (only legitimate addresses are cached).
        if (ref.found) {
            if (need_target && contains(ref.targets, info.nextStart)) {
                if (two_slots)
                    entry->succ2 = entry->succ;
                entry->succ = info.nextStart;
            }
            if (need_pred && contains(ref.retPreds, *pendingReturn_))
                entry->pred = *pendingReturn_;
        }
        return;
    }

    // Complete miss: fetch + decrypt the reference entry from RAM.
    ++stats_.scCompleteMisses;
    sig::WalkNeeds needs;
    if (need_target)
        needs.target = info.nextStart;
    if (need_pred)
        needs.pred = *pendingReturn_;
    // Complete-miss walks present the CHG digest as the discriminator, so
    // the staged hash must resolve now (flushing the lane queue).
    resolveHash(cur);
    const sig::LookupResult ref = walk(*sag_entry, info.term,
                                       cur.computedHash, t,
                                       cur.scReadyAt, needs);
    cur.refFound = ref.found;
    cur.termSeen = ref.termSeen;
    cur.refHash = ref.hash;
    cur.refTargets = ref.targets;
    cur.refPreds = ref.retPreds;
    if (ref.found) {
        ScEntry &fresh = sc_.insert(info.term, sc_start);
        fresh.hash = ref.hash;
        fresh.kind = ref.termKind;
        if (contains(ref.targets, info.nextStart))
            fresh.succ = info.nextStart;
        else if (!ref.targets.empty())
            fresh.succ = ref.targets.front();
        if (two_slots) {
            for (Addr cand : ref.targets) {
                if (!fresh.succ || cand != *fresh.succ) {
                    fresh.succ2 = cand;
                    break;
                }
            }
        }
        if (pendingReturn_ && contains(ref.retPreds, *pendingReturn_))
            fresh.pred = *pendingReturn_;
        else if (!ref.retPreds.empty())
            fresh.pred = ref.retPreds.front();
    }
}

Cycle
RevValidator::commitReadyAt(BBSeq bb, Cycle earliest)
{
    PendingBB *cur = find(bb);
    if (!cur || cur->bypass)
        return earliest;
    Cycle ready = std::max({earliest, cur->hashReadyAt, cur->scReadyAt});
    if (shadowPenaltyAt_ > ready)
        ready = shadowPenaltyAt_; // shadow-stack spill/refill round trip
    shadowPenaltyAt_ = 0;
    cur->stall = ready - earliest;
    stats_.commitStallCycles += cur->stall;
    return ready;
}

bool
RevValidator::validateBB(BBSeq bb, Addr actual_target, Cycle commit_cycle)
{
    PendingBB *curp = find(bb);
    if (!curp || curp->bypass) {
        if (curp)
            *curp = PendingBB{};
        return true;
    }
    PendingBB &cur = *curp;
    const BBFetchInfo info = cur.info;
    const ValidationMode mode = store_.mode();

    // SC-hit blocks deferred their digest; resolve it (one multi-lane
    // flush covers every unit queued since the last resolve) before the
    // measurement record and the hash compare below consume it.
    resolveHash(cur);

    // Prover-side measurement: report the block before adjudicating it —
    // real measurement hardware records what executed, including the
    // block a verdict will reject.
    source_.emitBlock(info, actual_target, cur.computedHash);

    auto emit_trace = [&](bool passed, const std::string &reason) {
        if (!trace_)
            return;
        ValidationEvent ev;
        ev.bbSeq = info.bbSeq;
        ev.start = info.start;
        ev.term = info.term;
        ev.commitCycle = commit_cycle;
        ev.hash = cur.computedHash;
        ev.scHit = cur.scHit;
        ev.partialMiss = cur.partialMiss;
        ev.stallCycles = cur.stall;
        ev.passed = passed;
        ev.reason = reason;
        trace_(ev);
    };

    auto fail = [&](const std::string &reason) {
        ++stats_.violations;
        lastViolation_ = reason + verdict::bbSuffix(info.start, info.term);
        // Keep the offender's signature for later recognition
        // (paper, Sec. X).
        offenders_.push_back({info.start, info.term, cur.computedHash,
                              lastViolation_});
        emit_trace(false, lastViolation_);
        cur = PendingBB{};
        return false;
    };

    if (!cur.refFound) {
        return fail(cur.termSeen ? verdict::reasonHashMismatch()
                                 : verdict::reasonNoReference());
    }

    if (mode != ValidationMode::CfiOnly) {
        if (cur.computedHash != cur.refHash)
            return fail(verdict::reasonHashMismatch());

        if (cfg_.returnValidation == ReturnValidation::DelayedPredecessor) {
            // Delayed return validation (Sec. V.A): this block was
            // entered following a return; its entry lists the legitimate
            // RET predecessors.
            if (pendingReturn_) {
                if (!contains(cur.refPreds, *pendingReturn_))
                    return fail(verdict::reasonBadReturn(*pendingReturn_));
                pendingReturn_.reset();
            }
        }
    }

    // Explicit target validation: always in CFI-only (only computed/return
    // blocks get here), computed transfers in Full, and every non-return
    // branch in Aggressive.
    bool check_target = isComputedClass(info.termClass);
    if (mode == ValidationMode::CfiOnly)
        check_target = true;
    else if (mode == ValidationMode::Aggressive &&
             info.termClass != InstrClass::Return &&
             info.termClass != InstrClass::Halt)
        check_target = true;
    if (check_target && !contains(cur.refTargets, actual_target))
        return fail(verdict::reasonIllegalTransfer(actual_target));

    if (mode != ValidationMode::CfiOnly &&
        cfg_.returnValidation == ReturnValidation::DelayedPredecessor) {
        // Arm the return latch for the next block (Full/Aggressive).
        if (info.termClass == InstrClass::Return)
            pendingReturn_ = info.term;
    } else if (mode != ValidationMode::CfiOnly) {
        // Shadow call stack (the conventional alternative).
        if (info.termClass == InstrClass::Call ||
            info.termClass == InstrClass::CallIndirect) {
            shadowStack_.push_back(info.end);
            if (shadowStack_.size() - shadowSpilled_ >
                cfg_.shadowStackEntries) {
                // On-chip stack full: spill the older half to memory.
                shadowSpilled_ += cfg_.shadowStackEntries / 2;
                ++stats_.shadowSpills;
                shadowPenaltyAt_ =
                    commit_cycle + cfg_.shadowSpillPenalty;
            }
        } else if (info.termClass == InstrClass::Return) {
            if (shadowStack_.empty())
                return fail(verdict::reasonShadowUnderflow());
            if (shadowStack_.size() == shadowSpilled_ &&
                shadowSpilled_ > 0) {
                // On-chip stack empty: refill a batch from memory.
                shadowSpilled_ -=
                    std::min<u64>(shadowSpilled_,
                                  cfg_.shadowStackEntries / 2);
                ++stats_.shadowRefills;
                shadowPenaltyAt_ =
                    commit_cycle + cfg_.shadowSpillPenalty;
            }
            const Addr expected = shadowStack_.back();
            shadowStack_.pop_back();
            if (actual_target != expected)
                return fail(
                    verdict::reasonShadowMismatch(actual_target, expected));
        }
    }

    ++stats_.bbValidated;
    emit_trace(true, "");
    cur = PendingBB{};
    return true;
}

void
RevValidator::onMispredictResolved(Cycle resolve_cycle)
{
    (void)resolve_cycle;
    if (enabled_)
        chg_.flush();
}

void
RevValidator::refreshTables()
{
    readers_.clear();
    sc_.invalidateAll();
    chg_.invalidate();
    sag_.reset();
    preloadSag();
}

RevValidator::ThreadState
RevValidator::saveThreadState() const
{
    return ThreadState{pendingReturn_, shadowStack_, shadowSpilled_};
}

void
RevValidator::restoreThreadState(const ThreadState &state)
{
    pendingReturn_ = state.pendingReturn;
    shadowStack_ = state.shadowStack;
    shadowSpilled_ = state.shadowSpilled;
}

void
RevValidator::onInterrupt(Cycle cycle)
{
    (void)cycle;
    // The current block has already validated; the refetched stream
    // restarts the CHG, and any wrong-path SC prefetches are dropped.
    if (enabled_)
        chg_.flush();
}

void
RevValidator::onSyscall(u8 service, Cycle commit_cycle)
{
    (void)commit_cycle;
    // Sec. VII: one protected system call disables REV (for trusted
    // self-modifying code), another re-enables it.
    if (service == 1)
        enabled_ = false;
    else if (service == 2)
        enabled_ = true;
    if (service == 1 || service == 2)
        source_.emitSyscall(service);
}

void
RevValidator::attachMeasurementSink(MeasurementSink *sink)
{
    StreamHeader h;
    h.backend = Backend::Rev;
    h.mode = store_.mode();
    h.returnValidation = static_cast<u8>(cfg_.returnValidation);
    h.hashRounds = cfg_.chg.hashRounds;
    h.shadowStackEntries = cfg_.shadowStackEntries;
    h.startEnabled = enabled_;
    source_.attach(sink, h);
}

void
RevValidator::addStats(stats::StatGroup &group) const
{
    sc_.addStats(group);
    sag_.addStats(group);
    chg_.addStats(group);
}

void
RevValidator::snapshotStats(stats::StatSet &set,
                            const std::string &prefix) const
{
    set.add(prefix + ".rev.bb_validated", stats_.bbValidated);
    set.add(prefix + ".rev.sc_complete_misses", stats_.scCompleteMisses);
    set.add(prefix + ".rev.sc_partial_misses", stats_.scPartialMisses);
    set.add(prefix + ".rev.table_walk_reads", stats_.tableWalkReads);
    set.add(prefix + ".rev.violations", stats_.violations);
    set.add(prefix + ".rev.sag_exceptions", stats_.sagExceptions);
    set.add(prefix + ".rev.commit_stall_cycles", stats_.commitStallCycles);
    set.add(prefix + ".rev.shadow_spills", stats_.shadowSpills);
    set.add(prefix + ".rev.shadow_refills", stats_.shadowRefills);
}

/**
 * Everything RevValidator mutates between construction and a pause point.
 * Table readers are carried as clones of their construction-time header
 * caches (not re-parsed at restore: a tamper landing before the pause may
 * have corrupted the header bytes in memory, and a cold run's reader —
 * created at first use — would still hold the pre-tamper parse).
 */
struct RevValidator::Snapshot final : ValidatorSnapshot
{
    SignatureCache sc;
    Sag sag;
    Chg::State chg;
    bool enabled = true;
    std::array<PendingBB, kInflightSlots> ring;
    std::optional<Addr> pendingReturn;
    std::vector<Addr> shadowStack;
    u64 shadowSpilled = 0;
    Cycle shadowPenaltyAt = 0;
    std::string lastViolation;
    RevStats stats;
    std::vector<OffenderRecord> offenders;
    /** (table base, inert header-cache clone) — re-bound at restore. */
    std::vector<std::pair<Addr, std::unique_ptr<sig::TableReader>>> readers;
};

std::unique_ptr<ValidatorSnapshot>
RevValidator::saveSnapshot() const
{
    auto snap = std::make_unique<Snapshot>();
    snap->sc = sc_;
    snap->sag = sag_;
    snap->chg = chg_.saveState();
    snap->enabled = enabled_;
    snap->ring = ring_;
    snap->pendingReturn = pendingReturn_;
    snap->shadowStack = shadowStack_;
    snap->shadowSpilled = shadowSpilled_;
    snap->shadowPenaltyAt = shadowPenaltyAt_;
    snap->lastViolation = lastViolation_;
    snap->stats = stats_;
    snap->offenders = offenders_;
    for (const auto &[base, reader] : readers_)
        snap->readers.emplace_back(
            base, std::make_unique<sig::TableReader>(*reader, mem_));
    return snap;
}

void
RevValidator::restoreSnapshot(const ValidatorSnapshot &snap)
{
    const auto *s = dynamic_cast<const Snapshot *>(&snap);
    REV_ASSERT(s, "snapshot restored into a different backend");
    sc_ = s->sc;
    sag_ = s->sag;
    chg_.restoreState(s->chg);
    enabled_ = s->enabled;
    ring_ = s->ring;
    pendingReturn_ = s->pendingReturn;
    shadowStack_ = s->shadowStack;
    shadowSpilled_ = s->shadowSpilled;
    shadowPenaltyAt_ = s->shadowPenaltyAt;
    lastViolation_ = s->lastViolation;
    stats_ = s->stats;
    offenders_ = s->offenders;
    readers_.clear();
    for (const auto &[base, reader] : s->readers)
        readers_.emplace_back(
            base, std::make_unique<sig::TableReader>(*reader, mem_));
}

} // namespace rev::validate
