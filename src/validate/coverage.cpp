#include "validate/coverage.hpp"

namespace rev::validate
{

const char *
tamperClassName(TamperClass c)
{
    switch (c) {
      case TamperClass::CodeSubstitution: return "code-substitution";
      case TamperClass::ControlFlowHijack: return "control-flow-hijack";
      case TamperClass::ForeignCode: return "foreign-code";
      case TamperClass::SignatureTamper: return "signature-tamper";
    }
    return "?";
}

bool
backendClaims(Backend b, TamperClass c, sig::ValidationMode mode)
{
    switch (b) {
      case Backend::Rev:
        // CFI-only validation keeps no hashes: substituted bytes behind an
        // unchanged control-flow shape pass unseen (Sec. V.D). Hijacked
        // control flow, unsigned code, and corrupted signature fetches are
        // visible to every mode.
        if (c == TamperClass::CodeSubstitution)
            return mode != sig::ValidationMode::CfiOnly;
        return true;
      case Backend::LoFat:
        return c == TamperClass::ControlFlowHijack ||
               c == TamperClass::ForeignCode;
      case Backend::Null:
        return false;
    }
    return false;
}

} // namespace rev::validate
