#include "validate/refstore.hpp"

namespace rev::validate
{

RefStore::RefStore(const sig::SigStore &store, const crypto::KeyVault *vault)
    : store_(store)
{
    for (const sig::ModuleSig &ms : store.moduleSigs()) {
        auto shard = std::make_unique<Shard>();
        shard->sig = &ms;
        if (vault) {
            store.loadInto(shard->tableMem);
            shard->reader = std::make_unique<sig::TableReader>(
                shard->tableMem, ms.tableBase, *vault);
        }
        shards_.push_back(std::move(shard));
    }
}

std::size_t
RefStore::shardFor(Addr addr) const
{
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const prog::Module &mod = *shards_[i]->sig->module;
        if (addr >= mod.base && addr < mod.codeEnd())
            return i;
    }
    return kNoShard;
}

sig::LookupResult
RefStore::lookup(std::size_t shard, Addr term, u32 hash) const
{
    const Shard &s = *shards_[shard];
    if (!s.reader || !s.reader->valid())
        return {};
    std::lock_guard<std::mutex> guard(s.lock);
    // No WalkNeeds: the verifier wants the unit's full target/pred lists
    // (it has no MRU cache whose miss the hints would early-exit).
    return s.reader->lookup(term, hash, s.sig->module->base);
}

sig::LookupResult
RefStore::lookupSite(std::size_t shard, Addr term) const
{
    const Shard &s = *shards_[shard];
    if (!s.reader || !s.reader->valid())
        return {};
    std::lock_guard<std::mutex> guard(s.lock);
    return s.reader->lookupSite(term, s.sig->module->base);
}

void
RefStore::lookupBatch(std::size_t shard,
                      const std::vector<LookupKey> &keys,
                      std::vector<sig::LookupResult> *out) const
{
    out->clear();
    out->resize(keys.size());
    const Shard &s = *shards_[shard];
    if (!s.reader || !s.reader->valid())
        return;
    const bool sites = s.reader->mode() == sig::ValidationMode::CfiOnly;
    const Addr base = s.sig->module->base;
    std::lock_guard<std::mutex> guard(s.lock);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        (*out)[i] = sites
                        ? s.reader->lookupSite(keys[i].term, base)
                        : s.reader->lookup(keys[i].term, keys[i].hash, base);
    }
}

} // namespace rev::validate
