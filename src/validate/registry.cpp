#include "validate/registry.hpp"

#include "common/logging.hpp"

namespace rev::validate
{

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Rev: return "rev";
      case Backend::LoFat: return "lofat";
      case Backend::Null: return "null";
    }
    return "?";
}

bool
backendFromName(const std::string &name, Backend *out)
{
    for (const BackendInfo &info : ValidatorRegistry::instance().list()) {
        if (name == info.name) {
            *out = info.kind;
            return true;
        }
    }
    return false;
}

ValidatorRegistry &
ValidatorRegistry::instance()
{
    static ValidatorRegistry registry;
    return registry;
}

ValidatorRegistry::ValidatorRegistry()
{
    // Built-ins are registered here, not via static initializers: the
    // backends live in a static library, and an unreferenced translation
    // unit's initializers would be dropped by the linker.
    infos_.push_back(
        {Backend::Rev, "rev",
         "signature-based run-time execution validation (the paper)",
         /*needsTables=*/true,
         [](const BackendContext &ctx) -> std::unique_ptr<Validator> {
             REV_ASSERT(ctx.store && ctx.vault && ctx.mem && ctx.memsys,
                        "rev backend needs store/vault/mem/memsys");
             return std::make_unique<RevValidator>(*ctx.store, *ctx.vault,
                                                   *ctx.mem, *ctx.memsys,
                                                   ctx.rev, ctx.coreId);
         }});
    infos_.push_back(
        {Backend::LoFat, "lofat",
         "hash-chained control-flow attestation with eager CFG verification",
         /*needsTables=*/true,
         [](const BackendContext &ctx) -> std::unique_ptr<Validator> {
             REV_ASSERT(ctx.store && ctx.mem && ctx.memsys,
                        "lofat backend needs store/mem/memsys");
             return std::make_unique<LoFatValidator>(*ctx.store, *ctx.mem,
                                                     *ctx.memsys, ctx.lofat,
                                                     ctx.coreId);
         }});
    infos_.push_back(
        {Backend::Null, "null", "no validation (the paper's base case)",
         /*needsTables=*/false,
         [](const BackendContext &) -> std::unique_ptr<Validator> {
             return std::make_unique<NullValidator>();
         }});
}

const BackendInfo *
ValidatorRegistry::find(Backend kind) const
{
    for (const BackendInfo &info : infos_) {
        if (info.kind == kind)
            return &info;
    }
    return nullptr;
}

std::unique_ptr<Validator>
ValidatorRegistry::create(Backend kind, const BackendContext &ctx) const
{
    const BackendInfo *info = find(kind);
    REV_ASSERT(info, "unregistered validation backend");
    return info->create(ctx);
}

} // namespace rev::validate
