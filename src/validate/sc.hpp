/**
 * @file
 * The Signature Cache (SC) — the on-chip cache of decrypted reference
 * signatures (Sec. IV.C, Fig. 2).
 *
 * Set-associative, probed with the basic-block address (the address of the
 * instruction terminating the BB). An entry holds the entry type, the
 * decrypted 4-byte crypto hash, and the most-recently-used successor and
 * predecessor addresses; when a BB has more successors/predecessors than
 * the entry can hold, only the MRU ones are kept and a *partial miss*
 * occurs when a different one is needed (serviced from the RAM table).
 *
 * Because control can enter a straight-line run in the middle, validation
 * units with the same terminator but different entry points coexist; the
 * SC tag therefore covers both addresses.
 */

#ifndef REV_VALIDATE_SC_HPP
#define REV_VALIDATE_SC_HPP

#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "program/cfg.hpp"

namespace rev::validate
{

/** SC geometry. */
struct ScConfig
{
    u64 sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned entryBytes = 16; ///< modeled entry footprint (Fig. 2)
};

/** One SC entry. */
struct ScEntry
{
    bool valid = false;
    Addr term = 0;
    Addr start = 0;
    u32 hash = 0;
    prog::TermKind kind = prog::TermKind::Halt;
    std::optional<Addr> succ;  ///< MRU explicitly-validated successor
    std::optional<Addr> succ2; ///< second successor slot (aggressive mode
                               ///< entries verify up to two, Sec. VIII)
    std::optional<Addr> pred;  ///< MRU return-predecessor address
    u64 lastUse = 0;
};

/**
 * The signature cache.
 */
class SignatureCache
{
  public:
    explicit SignatureCache(const ScConfig &cfg = {});

    /** Find the entry for (term, start); nullptr on a complete miss. */
    ScEntry *probe(Addr term, Addr start);

    /** Allocate (LRU-evicting) an entry for (term, start). */
    ScEntry &insert(Addr term, Addr start);

    /** Drop everything (context-switch-free by design; used by tests). */
    void invalidateAll();

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return cfg_.assoc; }
    u64 entryCount() const { return static_cast<u64>(numSets_) * cfg_.assoc; }

    u64 probes() const { return probes_; }
    u64 hits() const { return hits_; }
    u64 evictions() const { return evictions_; }

    void addStats(stats::StatGroup &group) const;

  private:
    unsigned setOf(Addr term) const;

    ScConfig cfg_;
    unsigned numSets_;
    std::vector<ScEntry> entries_;
    u64 useClock_ = 0;

    stats::Counter probes_, hits_, evictions_;
};

} // namespace rev::validate

#endif // REV_VALIDATE_SC_HPP
