#include "validate/chg.hpp"

#include <vector>

#include "sig/table.hpp"

namespace rev::validate
{

Chg::Chg(const SparseMemory &mem, const ChgConfig &cfg)
    : mem_(mem), cfg_(cfg)
{
}

u32
Chg::digest(Addr start, Addr term, Addr end)
{
    const Key key{start, term};
    const u64 ver = mem_.spanVersionSum(start, end);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.verSum == ver)
        return it->second.hash;

    ++blocksHashed_;
    scratch_.resize(end - start);
    mem_.readBytes(start, scratch_.data(), scratch_.size());
    const u32 h = sig::bbHashBytes(scratch_.data(), scratch_.size(), start,
                                   term, cfg_.hashRounds);
    cache_[key] = Memo{h, ver};
    return h;
}

void
Chg::addStats(stats::StatGroup &group) const
{
    group.add("chg.blocks_hashed", &blocksHashed_);
    group.add("chg.flushes", &flushes_);
}

} // namespace rev::validate
