#include "validate/chg.hpp"

#include <vector>

#include "crypto/cubehash_lanes.hpp"
#include "sig/table.hpp"

namespace rev::validate
{

static_assert(Chg::kLanes == crypto::CubeHashX4::kLanes,
              "Chg lane queue must match the CubeHashX4 batch width");

Chg::Chg(const SparseMemory &mem, const ChgConfig &cfg)
    : mem_(mem), cfg_(cfg)
{
}

bool
Chg::pendingIndex(const Key &key, unsigned *idx) const
{
    for (unsigned i = 0; i < lanesUsed_; ++i) {
        if (lanes_[i].key == key) {
            *idx = i;
            return true;
        }
    }
    return false;
}

u32
Chg::digest(Addr start, Addr term, Addr end)
{
    const Key key{start, term};
    unsigned idx;
    if (pendingIndex(key, &idx))
        flushLanes();

    const u64 ver = mem_.spanVersionSum(start, end);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.verSum == ver)
        return it->second.hash;

    ++blocksHashed_;
    scratch_.resize(end - start);
    mem_.readBytes(start, scratch_.data(), scratch_.size());
    const u32 h = sig::bbHashBytes(scratch_.data(), scratch_.size(), start,
                                   term, cfg_.hashRounds);
    cache_[key] = Memo{h, ver};
    return h;
}

void
Chg::queueDigest(Addr start, Addr term, Addr end)
{
    const Key key{start, term};
    const u64 ver = mem_.spanVersionSum(start, end);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.verSum == ver)
        return; // memo hit: nothing to hash, nothing to count

    unsigned idx;
    if (pendingIndex(key, &idx)) {
        if (lanes_[idx].verSum == ver)
            return; // identical request already staged
        // The code changed under a staged request: resolve the old bytes
        // first (the scalar path would have memoized them), then restage.
        flushLanes();
    }
    if (lanesUsed_ == kLanes)
        flushLanes();

    PendingLane &lane = lanes_[lanesUsed_++];
    lane.key = key;
    lane.end = end;
    lane.verSum = ver;
    lane.bytes.resize(end - start);
    mem_.readBytes(start, lane.bytes.data(), lane.bytes.size());
    ++blocksHashed_; // counted where the scalar path would have hashed
}

void
Chg::flushLanes()
{
    if (lanesUsed_ == 0)
        return;

    sig::BbHashJob jobs[kLanes];
    for (unsigned i = 0; i < lanesUsed_; ++i)
        jobs[i] = {lanes_[i].bytes.data(), lanes_[i].bytes.size(),
                   lanes_[i].key.start, lanes_[i].key.term};
    u32 out[kLanes];
    sig::bbHashBatch(jobs, lanesUsed_, cfg_.hashRounds, out);
    for (unsigned i = 0; i < lanesUsed_; ++i)
        cache_[lanes_[i].key] = Memo{out[i], lanes_[i].verSum};

    ++laneFlushes_;
    laneBlocksHashed_ += lanesUsed_;
    lanesUsed_ = 0;
}

void
Chg::addStats(stats::StatGroup &group) const
{
    group.add("chg.blocks_hashed", &blocksHashed_);
    group.add("chg.flushes", &flushes_);
}

} // namespace rev::validate
