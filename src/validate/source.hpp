/**
 * @file
 * MeasurementSource: the prover-side half of the attestation split.
 *
 * Each in-core backend owns one of these. When a sink is attached (via
 * Validator::attachMeasurementSink) the backend reports every measured
 * event through it — the session header on attach, one Block record per
 * block reaching commit-time validation, Syscall markers for the trusted
 * enable/disable services, SpillMark records mirroring measurement-buffer
 * drains — and seals the session with an End record when the run
 * completes. With no sink attached every emit is a no-op, so the inline
 * backends' behavior (and their pinned golden stats) is untouched.
 *
 * The source is deliberately dumb: it serializes what the backend already
 * measured and counts blocks for the seal. All checking lives on the
 * verifier side (stream_verifier.hpp).
 */

#ifndef REV_VALIDATE_SOURCE_HPP
#define REV_VALIDATE_SOURCE_HPP

#include "validate/stream.hpp"

namespace rev::validate
{

/**
 * Event emitter each backend owns; inert until attach().
 */
class MeasurementSource
{
  public:
    /** Bind @p sink and emit the session header. */
    void attach(MeasurementSink *sink, const StreamHeader &header);

    bool attached() const { return sink_ != nullptr; }

    /** One basic block reached commit-time validation. */
    void emitBlock(const BBFetchInfo &info, Addr target, u32 code_digest);

    /** A trusted service call committed (1 suspends, 2 resumes). */
    void emitSyscall(u8 service);

    /** The measurement buffer drained @p bytes through the ScFill port. */
    void emitSpill(u64 bytes);

    /** Seal the session (REV flavor: no chain to report). */
    void seal();

    /** Seal the session with the final measurement chain (LO-FAT). */
    void seal(const crypto::Digest &chain);

    /** Block records emitted so far (reported in the End record). */
    u64 blockCount() const { return blocks_; }

  private:
    void emitEnd(const crypto::Digest *chain);

    MeasurementSink *sink_ = nullptr;
    u64 blocks_ = 0;
    bool sealed_ = false;
};

} // namespace rev::validate

#endif // REV_VALIDATE_SOURCE_HPP
