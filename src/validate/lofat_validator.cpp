#include "validate/lofat_validator.hpp"

#include <algorithm>
#include <cstring>

#include "common/logging.hpp"
#include "validate/verdict.hpp"

namespace rev::validate
{

using isa::InstrClass;
using prog::TermKind;

LoFatValidator::LoFatValidator(const sig::SigStore &store,
                               const SparseMemory &mem,
                               mem::MemorySystem &memsys,
                               const LoFatConfig &cfg, unsigned core_id)
    : store_(store), memsys_(memsys), coreId_(core_id), cfg_(cfg),
      chg_(mem, cfg.chg), enabled_(cfg.startEnabled)
{
}

void
LoFatValidator::onBBFetched(const BBFetchInfo &info)
{
    cur_ = PendingBB{};
    cur_.valid = true;
    cur_.info = info;
    if (!enabled_) {
        cur_.bypass = true;
        return;
    }
    // The CHG digests the fetched bytes; the digest is both the chain's
    // code component and the earliest the event record can be sealed. The
    // model stages the request (byte snapshot) in the CHG lane queue and
    // resolves it at validateBB, batching in-flight units' hashes into
    // one multi-lane pass.
    chg_.queueDigest(info.start, info.term, info.end);
    cur_.hashPending = true;
    cur_.hashReadyAt = chg_.readyAt(info.fetchDoneAt);
}

Cycle
LoFatValidator::commitReadyAt(BBSeq bb, Cycle earliest)
{
    if (!cur_.valid || cur_.info.bbSeq != bb || cur_.bypass)
        return earliest;
    Cycle ready = std::max(earliest, cur_.hashReadyAt);
    // A still-draining measurement buffer backpressures commit: the next
    // record needs a free slot.
    if (bufferUsed_ >= cfg_.bufferEntries && drainReadyAt_ > ready)
        ready = drainReadyAt_;
    stats_.commitStallCycles += ready - earliest;
    return ready;
}

bool
LoFatValidator::fail(const BBFetchInfo &info, const std::string &reason)
{
    ++stats_.violations;
    lastViolation_ = reason + verdict::bbSuffix(info.start, info.term);
    cur_ = PendingBB{};
    return false;
}

bool
LoFatValidator::validateBB(BBSeq bb, Addr actual_target, Cycle commit_cycle)
{
    if (!cur_.valid || cur_.info.bbSeq != bb || cur_.bypass) {
        cur_ = PendingBB{};
        return true;
    }
    const BBFetchInfo info = cur_.info;

    // Resolve the lane-queued digest (one multi-lane flush) before the
    // measurement record and the chain fold consume it.
    if (cur_.hashPending) {
        cur_.codeDigest = chg_.digest(info.start, info.term, info.end);
        cur_.hashPending = false;
    }

    // Prover-side measurement: the block is recorded before the (eager,
    // model-side) CFG check adjudicates it.
    source_.emitBlock(info, actual_target, cur_.codeDigest);

    // --- eager verifier: the event must exist in the attested CFG ---------
    const sig::ModuleSig *ms = store_.findByCode(info.term);
    if (!ms) {
        ++stats_.unattestedBlocks;
        return fail(info, verdict::reasonUnattested(info.term));
    }
    const std::vector<const prog::BasicBlock *> blocks =
        ms->cfg.blocksAtTerm(info.term);
    if (blocks.empty()) {
        ++stats_.unattestedBlocks;
        return fail(info, verdict::reasonUnattested(info.term));
    }

    // Edge check: the taken edge must appear in some attested block with
    // this terminator (Return succs are the statically derived return-site
    // set; Split succs the fall-through; Halt has no successor).
    bool edge_ok = false;
    bool any_successor = false;
    bool is_return = false;
    for (const prog::BasicBlock *b : blocks) {
        if (b->kind == TermKind::Halt) {
            edge_ok = true;
            continue;
        }
        any_successor = true;
        if (b->kind == TermKind::Return)
            is_return = true;
        if (std::find(b->succs.begin(), b->succs.end(), actual_target) !=
            b->succs.end())
            edge_ok = true;
    }
    if (!edge_ok && any_successor) {
        ++stats_.edgeViolations;
        if (is_return)
            return fail(info, verdict::reasonBadReturnSite(actual_target));
        return fail(info, verdict::reasonIllegalEdge(actual_target));
    }

    fold(info, actual_target);
    if (++bufferUsed_ >= cfg_.bufferEntries)
        spill(commit_cycle);

    ++stats_.bbValidated;
    cur_ = PendingBB{};
    return true;
}

void
LoFatValidator::fold(const BBFetchInfo &info, Addr actual_target)
{
    // chain' = H(chain || start || term || target || code digest)
    u8 buf[sizeof(crypto::Digest) + 3 * sizeof(Addr) + sizeof(u32)];
    std::size_t off = 0;
    std::memcpy(buf + off, chain_.data(), chain_.size());
    off += chain_.size();
    std::memcpy(buf + off, &info.start, sizeof(Addr));
    off += sizeof(Addr);
    std::memcpy(buf + off, &info.term, sizeof(Addr));
    off += sizeof(Addr);
    std::memcpy(buf + off, &actual_target, sizeof(Addr));
    off += sizeof(Addr);
    std::memcpy(buf + off, &cur_.codeDigest, sizeof(u32));
    off += sizeof(u32);
    chain_ = crypto::CubeHash::hash(buf, off, cfg_.chg.hashRounds);
    ++stats_.chainUpdates;
}

void
LoFatValidator::spill(Cycle from)
{
    // Drain the staged records to the measurement region, one line-sized
    // write per group of records, through the validation-traffic port.
    const u64 bytes = u64(bufferUsed_) * cfg_.entryBytes;
    Cycle t = from;
    for (u64 done = 0; done < bytes; done += 64) {
        t = memsys_.access(spillCursor_, mem::AccessType::ScFill, t, coreId_)
                .completeAt;
        spillCursor_ += 64;
        // Wrap within a bounded window; the verifier consumes records
        // faster than one window fills.
        if (spillCursor_ >= kMeasurementRegion + 0x10000)
            spillCursor_ = kMeasurementRegion;
    }
    drainReadyAt_ = t;
    ++stats_.bufferSpills;
    stats_.spillBytes += bytes;
    bufferUsed_ = 0;
    source_.emitSpill(bytes);
}

void
LoFatValidator::onMispredictResolved(Cycle resolve_cycle)
{
    (void)resolve_cycle;
    if (enabled_)
        chg_.flush();
}

void
LoFatValidator::onInterrupt(Cycle cycle)
{
    (void)cycle;
    if (enabled_)
        chg_.flush();
}

void
LoFatValidator::onSyscall(u8 service, Cycle commit_cycle)
{
    (void)commit_cycle;
    // Same trusted services as REV (Sec. VII): 1 suspends measurement,
    // 2 resumes it.
    if (service == 1)
        enabled_ = false;
    else if (service == 2)
        enabled_ = true;
    if (service == 1 || service == 2)
        source_.emitSyscall(service);
}

void
LoFatValidator::attachMeasurementSink(MeasurementSink *sink)
{
    StreamHeader h;
    h.backend = Backend::LoFat;
    h.mode = store_.mode();
    h.hashRounds = cfg_.chg.hashRounds;
    h.bufferEntries = cfg_.bufferEntries;
    h.entryBytes = cfg_.entryBytes;
    h.startEnabled = enabled_;
    source_.attach(sink, h);
}

void
LoFatValidator::addStats(stats::StatGroup &group) const
{
    chg_.addStats(group);
}

void
LoFatValidator::snapshotStats(stats::StatSet &set,
                              const std::string &prefix) const
{
    set.add(prefix + ".lofat.bb_validated", stats_.bbValidated);
    set.add(prefix + ".lofat.violations", stats_.violations);
    set.add(prefix + ".lofat.commit_stall_cycles", stats_.commitStallCycles);
    set.add(prefix + ".lofat.chain_updates", stats_.chainUpdates);
    set.add(prefix + ".lofat.buffer_spills", stats_.bufferSpills);
    set.add(prefix + ".lofat.spill_bytes", stats_.spillBytes);
    set.add(prefix + ".lofat.unattested_blocks", stats_.unattestedBlocks);
    set.add(prefix + ".lofat.edge_violations", stats_.edgeViolations);
}

/** Everything LoFatValidator mutates between construction and a pause:
 *  the running hash chain, measurement-buffer occupancy and spill cursor,
 *  the in-flight block, the CHG state, and the counters. */
struct LoFatValidator::Snapshot final : ValidatorSnapshot
{
    Chg::State chg;
    bool enabled = true;
    PendingBB cur;
    crypto::Digest chain{};
    unsigned bufferUsed = 0;
    Addr spillCursor = kMeasurementRegion;
    Cycle drainReadyAt = 0;
    std::string lastViolation;
    LoFatStats stats;
};

std::unique_ptr<ValidatorSnapshot>
LoFatValidator::saveSnapshot() const
{
    auto snap = std::make_unique<Snapshot>();
    snap->chg = chg_.saveState();
    snap->enabled = enabled_;
    snap->cur = cur_;
    snap->chain = chain_;
    snap->bufferUsed = bufferUsed_;
    snap->spillCursor = spillCursor_;
    snap->drainReadyAt = drainReadyAt_;
    snap->lastViolation = lastViolation_;
    snap->stats = stats_;
    return snap;
}

void
LoFatValidator::restoreSnapshot(const ValidatorSnapshot &snap)
{
    const auto *s = dynamic_cast<const Snapshot *>(&snap);
    REV_ASSERT(s, "snapshot restored into a different backend");
    chg_.restoreState(s->chg);
    enabled_ = s->enabled;
    cur_ = s->cur;
    chain_ = s->chain;
    bufferUsed_ = s->bufferUsed;
    spillCursor_ = s->spillCursor;
    drainReadyAt_ = s->drainReadyAt;
    lastViolation_ = s->lastViolation;
    stats_ = s->stats;
}

} // namespace rev::validate
