file(REMOVE_RECURSE
  "librev_crypto.a"
)
