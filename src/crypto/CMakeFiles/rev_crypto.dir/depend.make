# Empty dependencies file for rev_crypto.
# This may be replaced when dependencies are built.
