
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/rev_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/rev_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/cubehash.cpp" "src/crypto/CMakeFiles/rev_crypto.dir/cubehash.cpp.o" "gcc" "src/crypto/CMakeFiles/rev_crypto.dir/cubehash.cpp.o.d"
  "/root/repo/src/crypto/cubehash_lanes.cpp" "src/crypto/CMakeFiles/rev_crypto.dir/cubehash_lanes.cpp.o" "gcc" "src/crypto/CMakeFiles/rev_crypto.dir/cubehash_lanes.cpp.o.d"
  "/root/repo/src/crypto/keyvault.cpp" "src/crypto/CMakeFiles/rev_crypto.dir/keyvault.cpp.o" "gcc" "src/crypto/CMakeFiles/rev_crypto.dir/keyvault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/rev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
