file(REMOVE_RECURSE
  "CMakeFiles/rev_crypto.dir/aes.cpp.o"
  "CMakeFiles/rev_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/rev_crypto.dir/cubehash.cpp.o"
  "CMakeFiles/rev_crypto.dir/cubehash.cpp.o.d"
  "CMakeFiles/rev_crypto.dir/cubehash_lanes.cpp.o"
  "CMakeFiles/rev_crypto.dir/cubehash_lanes.cpp.o.d"
  "CMakeFiles/rev_crypto.dir/keyvault.cpp.o"
  "CMakeFiles/rev_crypto.dir/keyvault.cpp.o.d"
  "librev_crypto.a"
  "librev_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
