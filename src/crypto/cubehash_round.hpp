/**
 * @file
 * CubeHash round primitives shared by the scalar hasher (cubehash.cpp)
 * and the multi-lane batch hasher (cubehash_lanes.cpp).
 *
 * Three implementations of the same permutation live here:
 *
 *  - roundScalar():    one state, plain u32 arithmetic (the reference).
 *  - roundSimd():      one state, SSE2/AVX2. The spec's swap steps become
 *                      xor-permuted indexing (see the comment on
 *                      roundScalar); with the state split into 4-word
 *                      vectors, i^8 and i^4 are register renamings and
 *                      i^2 / i^1 are in-register shuffles.
 *  - roundX4*():       four independent states in word-major SoA layout
 *                      (row w holds word w of all four lanes), so every
 *                      step is a plain vertical add/rot/xor with no
 *                      shuffles at all.
 *
 * All three are bit-identical by construction; tests/crypto pins that.
 * SIMD is compiled in when the target supports SSE2 (any x86-64); the
 * AVX2 variants are additionally compiled as target("avx2") clones on
 * GCC/Clang and chosen at run time via __builtin_cpu_supports, so a
 * baseline build still uses them on AVX2 hardware. Everything can be
 * disabled wholesale with -DREV_DISABLE_SIMD_HASH to keep the portable
 * fallback honest.
 */

#ifndef REV_CRYPTO_CUBEHASH_ROUND_HPP
#define REV_CRYPTO_CUBEHASH_ROUND_HPP

#include <array>

#include "common/types.hpp"

#if !defined(REV_DISABLE_SIMD_HASH) &&                                       \
    (defined(__AVX2__) || defined(__SSE2__) || defined(__x86_64__) ||        \
     defined(_M_X64))
#define REV_CUBEHASH_SIMD 1
#include <immintrin.h>
#else
#define REV_CUBEHASH_SIMD 0
#endif

// GCC and Clang can compile AVX2 kernels into a baseline-ISA binary via
// __attribute__((target("avx2"))) and select them at run time with
// __builtin_cpu_supports, so the AVX2 paths below do not require -mavx2
// (or REV_NATIVE_ARCH) at configure time.
#if REV_CUBEHASH_SIMD && (defined(__GNUC__) || defined(__clang__))
#define REV_CUBEHASH_AVX2_DISPATCH 1
#else
#define REV_CUBEHASH_AVX2_DISPATCH 0
#endif

#if defined(__AVX2__)
#define REV_CH_TARGET_AVX2 /* already compiling for AVX2 */
#elif REV_CUBEHASH_AVX2_DISPATCH
#define REV_CH_TARGET_AVX2 __attribute__((target("avx2")))
#endif

namespace rev::crypto::detail
{

inline u32
rotl32(u32 x, int k)
{
    return (x << k) | (x >> (32 - k));
}

/**
 * One round of the CubeHash permutation (ten steps). The spec's in-place
 * add/rotate/swap/xor sequence is folded into gather-style assignments
 * over fresh temporaries — the swap steps become xor-permuted indexing —
 * which the compiler can keep in registers and auto-vectorize. With the
 * halves A = x[0..15], B = x[16..31] and the spec's steps numbered 1-10:
 *
 *   b[i] = B[i] + A[i]                      (1)
 *   a[i] = rotl(A[i^8], 7) ^ b[i]           (2,3,4)
 *   c[i] = b[i^2] + a[i]                    (5,6)
 *   A[i] = rotl(a[i^4], 11) ^ c[i]          (7,8,9)
 *   B[i] = c[i^1]                           (10)
 */
inline void
roundScalar(std::array<u32, 32> &x)
{
    u32 a[16], b[16], c[16];
    for (int i = 0; i < 16; ++i)
        b[i] = x[16 + i] + x[i];
    for (int i = 0; i < 16; ++i)
        a[i] = rotl32(x[i ^ 8], 7) ^ b[i];
    for (int i = 0; i < 16; ++i)
        c[i] = b[i ^ 2] + a[i];
    for (int i = 0; i < 16; ++i)
        x[i] = rotl32(a[i ^ 4], 11) ^ c[i];
    for (int i = 0; i < 16; ++i)
        x[16 + i] = c[i ^ 1];
}

#if REV_CUBEHASH_SIMD

#define REV_CH_ROT7_128(v)                                                   \
    _mm_or_si128(_mm_slli_epi32((v), 7), _mm_srli_epi32((v), 25))
#define REV_CH_ROT11_128(v)                                                  \
    _mm_or_si128(_mm_slli_epi32((v), 11), _mm_srli_epi32((v), 21))

/**
 * n rounds on a single state, SSE2. The 32 words live in eight 4-word
 * vectors A0..A3 (x[0..15]) and B0..B3 (x[16..31]); for element i of
 * vector j (state index 4j+i):
 *
 *   i^8 — flips bit 3 of the state index: vector renaming j <-> j^2.
 *   i^4 — flips bit 2: vector renaming j <-> j^1.
 *   i^2 — flips bit 1: in-vector shuffle (1,0,3,2) = 0x4E.
 *   i^1 — flips bit 0: in-vector shuffle (2,3,0,1) = 0xB1.
 */
inline void
permuteSse2(std::array<u32, 32> &x, unsigned n)
{
    __m128i *p = reinterpret_cast<__m128i *>(x.data());
    __m128i A0 = _mm_loadu_si128(p + 0), A1 = _mm_loadu_si128(p + 1);
    __m128i A2 = _mm_loadu_si128(p + 2), A3 = _mm_loadu_si128(p + 3);
    __m128i B0 = _mm_loadu_si128(p + 4), B1 = _mm_loadu_si128(p + 5);
    __m128i B2 = _mm_loadu_si128(p + 6), B3 = _mm_loadu_si128(p + 7);
    for (unsigned k = 0; k < n; ++k) {
        const __m128i b0 = _mm_add_epi32(B0, A0);
        const __m128i b1 = _mm_add_epi32(B1, A1);
        const __m128i b2 = _mm_add_epi32(B2, A2);
        const __m128i b3 = _mm_add_epi32(B3, A3);
        const __m128i a0 = _mm_xor_si128(REV_CH_ROT7_128(A2), b0);
        const __m128i a1 = _mm_xor_si128(REV_CH_ROT7_128(A3), b1);
        const __m128i a2 = _mm_xor_si128(REV_CH_ROT7_128(A0), b2);
        const __m128i a3 = _mm_xor_si128(REV_CH_ROT7_128(A1), b3);
        const __m128i c0 = _mm_add_epi32(_mm_shuffle_epi32(b0, 0x4E), a0);
        const __m128i c1 = _mm_add_epi32(_mm_shuffle_epi32(b1, 0x4E), a1);
        const __m128i c2 = _mm_add_epi32(_mm_shuffle_epi32(b2, 0x4E), a2);
        const __m128i c3 = _mm_add_epi32(_mm_shuffle_epi32(b3, 0x4E), a3);
        A0 = _mm_xor_si128(REV_CH_ROT11_128(a1), c0);
        A1 = _mm_xor_si128(REV_CH_ROT11_128(a0), c1);
        A2 = _mm_xor_si128(REV_CH_ROT11_128(a3), c2);
        A3 = _mm_xor_si128(REV_CH_ROT11_128(a2), c3);
        B0 = _mm_shuffle_epi32(c0, 0xB1);
        B1 = _mm_shuffle_epi32(c1, 0xB1);
        B2 = _mm_shuffle_epi32(c2, 0xB1);
        B3 = _mm_shuffle_epi32(c3, 0xB1);
    }
    _mm_storeu_si128(p + 0, A0);
    _mm_storeu_si128(p + 1, A1);
    _mm_storeu_si128(p + 2, A2);
    _mm_storeu_si128(p + 3, A3);
    _mm_storeu_si128(p + 4, B0);
    _mm_storeu_si128(p + 5, B1);
    _mm_storeu_si128(p + 6, B2);
    _mm_storeu_si128(p + 7, B3);
}

#if defined(__AVX2__) || REV_CUBEHASH_AVX2_DISPATCH

/** Whether the running CPU can execute the AVX2 kernels. */
inline bool
cpuHasAvx2()
{
#if defined(__AVX2__)
    return true; // the whole binary already assumes it
#else
    static const bool has = __builtin_cpu_supports("avx2") != 0;
    return has;
#endif
}

#define REV_CH_ROT7_256(v)                                                   \
    _mm256_or_si256(_mm256_slli_epi32((v), 7), _mm256_srli_epi32((v), 25))
#define REV_CH_ROT11_256(v)                                                  \
    _mm256_or_si256(_mm256_slli_epi32((v), 11), _mm256_srli_epi32((v), 21))

/**
 * n rounds on a single state, AVX2: four 8-word vectors A01/A23/B01/B23.
 * i^8 is still a register renaming, i^2 and i^1 stay per-128-bit-lane
 * shuffles, and i^4 becomes a 128-bit half swap (permute4x64 0x4E).
 */
REV_CH_TARGET_AVX2 inline void
permuteAvx2(std::array<u32, 32> &x, unsigned n)
{
    __m256i *p = reinterpret_cast<__m256i *>(x.data());
    __m256i A01 = _mm256_loadu_si256(p + 0);
    __m256i A23 = _mm256_loadu_si256(p + 1);
    __m256i B01 = _mm256_loadu_si256(p + 2);
    __m256i B23 = _mm256_loadu_si256(p + 3);
    for (unsigned k = 0; k < n; ++k) {
        const __m256i b01 = _mm256_add_epi32(B01, A01);
        const __m256i b23 = _mm256_add_epi32(B23, A23);
        const __m256i a01 = _mm256_xor_si256(REV_CH_ROT7_256(A23), b01);
        const __m256i a23 = _mm256_xor_si256(REV_CH_ROT7_256(A01), b23);
        const __m256i c01 =
            _mm256_add_epi32(_mm256_shuffle_epi32(b01, 0x4E), a01);
        const __m256i c23 =
            _mm256_add_epi32(_mm256_shuffle_epi32(b23, 0x4E), a23);
        A01 = _mm256_xor_si256(
            REV_CH_ROT11_256(_mm256_permute4x64_epi64(a01, 0x4E)), c01);
        A23 = _mm256_xor_si256(
            REV_CH_ROT11_256(_mm256_permute4x64_epi64(a23, 0x4E)), c23);
        B01 = _mm256_shuffle_epi32(c01, 0xB1);
        B23 = _mm256_shuffle_epi32(c23, 0xB1);
    }
    _mm256_storeu_si256(p + 0, A01);
    _mm256_storeu_si256(p + 1, A23);
    _mm256_storeu_si256(p + 2, B01);
    _mm256_storeu_si256(p + 3, B23);
}

#endif // __AVX2__ || REV_CUBEHASH_AVX2_DISPATCH

#endif // REV_CUBEHASH_SIMD

/** n rounds on a single state with the fastest kernel the running CPU
 *  supports (AVX2 is selected at run time, not configure time). */
inline void
permuteActive(std::array<u32, 32> &x, unsigned n)
{
#if REV_CUBEHASH_SIMD && (defined(__AVX2__) || REV_CUBEHASH_AVX2_DISPATCH)
    if (cpuHasAvx2()) {
        permuteAvx2(x, n);
        return;
    }
#endif
#if REV_CUBEHASH_SIMD
    permuteSse2(x, n);
#else
    for (unsigned i = 0; i < n; ++i)
        roundScalar(x);
#endif
}

/** Name of the single-state kernel permuteActive() resolves to. */
inline const char *
permuteImplName()
{
#if REV_CUBEHASH_SIMD && (defined(__AVX2__) || REV_CUBEHASH_AVX2_DISPATCH)
    if (cpuHasAvx2())
        return "avx2";
#endif
#if REV_CUBEHASH_SIMD
    return "sse2";
#else
    return "scalar";
#endif
}

/**
 * Four-lane SoA state: row w is an aligned group of 4 u32 holding word w
 * of lanes 0..3, i.e. soa[4*w + lane] = lane's state word w.
 */
struct SoaState4
{
    alignas(32) u32 w[32 * 4];
};

/** One round applied to all four SoA lanes, reference implementation. */
inline void
roundX4Scalar(SoaState4 &s)
{
    u32 a[16][4], b[16][4], c[16][4];
    for (int i = 0; i < 16; ++i)
        for (int l = 0; l < 4; ++l)
            b[i][l] = s.w[4 * (16 + i) + l] + s.w[4 * i + l];
    for (int i = 0; i < 16; ++i)
        for (int l = 0; l < 4; ++l)
            a[i][l] = rotl32(s.w[4 * (i ^ 8) + l], 7) ^ b[i][l];
    for (int i = 0; i < 16; ++i)
        for (int l = 0; l < 4; ++l)
            c[i][l] = b[i ^ 2][l] + a[i][l];
    for (int i = 0; i < 16; ++i)
        for (int l = 0; l < 4; ++l)
            s.w[4 * i + l] = rotl32(a[i ^ 4][l], 11) ^ c[i][l];
    for (int i = 0; i < 16; ++i)
        for (int l = 0; l < 4; ++l)
            s.w[4 * (16 + i) + l] = c[i ^ 1][l];
}

#if REV_CUBEHASH_SIMD

/**
 * n rounds applied to all four SoA lanes, SSE2. Each row is one vector,
 * the xor-permuted indexing happens on whole rows, so the round body is
 * pure vertical arithmetic — no shuffles.
 */
inline void
permuteX4Sse2(SoaState4 &s, unsigned n)
{
    __m128i *row = reinterpret_cast<__m128i *>(s.w);
    for (unsigned k = 0; k < n; ++k) {
        __m128i a[16], b[16], c[16];
        for (int i = 0; i < 16; ++i)
            b[i] = _mm_add_epi32(row[16 + i], row[i]);
        for (int i = 0; i < 16; ++i)
            a[i] = _mm_xor_si128(REV_CH_ROT7_128(row[i ^ 8]), b[i]);
        for (int i = 0; i < 16; ++i)
            c[i] = _mm_add_epi32(b[i ^ 2], a[i]);
        for (int i = 0; i < 16; ++i)
            row[i] = _mm_xor_si128(REV_CH_ROT11_128(a[i ^ 4]), c[i]);
        for (int i = 0; i < 16; ++i)
            row[16 + i] = c[i ^ 1];
    }
}

#if defined(__AVX2__) || REV_CUBEHASH_AVX2_DISPATCH

/**
 * n rounds on all four SoA lanes, AVX2. Rows i and i^8 are packed into
 * the two 128-bit halves of one ymm register (V[i] = rows (i, i+8) of
 * the A half, W[i] = rows (16+i, 24+i) of the B half, i = 0..7), so the
 * full 4-lane state occupies exactly the sixteen ymm registers and every
 * round runs register-resident:
 *
 *   i^8 — a half swap inside the register (permute4x64 0x4E);
 *   i^4, i^2, i^1 — flip bits inside the 0..7 pair index: renamings.
 */
REV_CH_TARGET_AVX2 inline void
permuteX4Avx2(SoaState4 &s, unsigned n)
{
    const __m128i *row = reinterpret_cast<const __m128i *>(s.w);
    __m256i V[8], W[8];
    for (int i = 0; i < 8; ++i) {
        V[i] = _mm256_set_m128i(_mm_loadu_si128(row + (i + 8)),
                                _mm_loadu_si128(row + i));
        W[i] = _mm256_set_m128i(_mm_loadu_si128(row + (24 + i)),
                                _mm_loadu_si128(row + (16 + i)));
    }
    for (unsigned k = 0; k < n; ++k) {
        __m256i a[8], b[8], c[8];
        for (int i = 0; i < 8; ++i)
            b[i] = _mm256_add_epi32(W[i], V[i]);
        for (int i = 0; i < 8; ++i)
            a[i] = _mm256_xor_si256(
                REV_CH_ROT7_256(_mm256_permute4x64_epi64(V[i], 0x4E)), b[i]);
        for (int i = 0; i < 8; ++i)
            c[i] = _mm256_add_epi32(b[i ^ 2], a[i]);
        for (int i = 0; i < 8; ++i)
            V[i] = _mm256_xor_si256(REV_CH_ROT11_256(a[i ^ 4]), c[i]);
        for (int i = 0; i < 8; ++i)
            W[i] = c[i ^ 1];
    }
    __m128i *out = reinterpret_cast<__m128i *>(s.w);
    for (int i = 0; i < 8; ++i) {
        _mm_storeu_si128(out + i, _mm256_castsi256_si128(V[i]));
        _mm_storeu_si128(out + (i + 8), _mm256_extracti128_si256(V[i], 1));
        _mm_storeu_si128(out + (16 + i), _mm256_castsi256_si128(W[i]));
        _mm_storeu_si128(out + (24 + i), _mm256_extracti128_si256(W[i], 1));
    }
}

#endif // __AVX2__ || REV_CUBEHASH_AVX2_DISPATCH

#endif // REV_CUBEHASH_SIMD

/** n rounds on all four SoA lanes with the fastest kernel the running
 *  CPU supports (AVX2 is selected at run time, not configure time). */
inline void
permuteX4Active(SoaState4 &s, unsigned n)
{
#if REV_CUBEHASH_SIMD && (defined(__AVX2__) || REV_CUBEHASH_AVX2_DISPATCH)
    if (cpuHasAvx2()) {
        permuteX4Avx2(s, n);
        return;
    }
#endif
#if REV_CUBEHASH_SIMD
    permuteX4Sse2(s, n);
#else
    for (unsigned i = 0; i < n; ++i)
        roundX4Scalar(s);
#endif
}

} // namespace rev::crypto::detail

#endif // REV_CRYPTO_CUBEHASH_ROUND_HPP
