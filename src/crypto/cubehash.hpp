/**
 * @file
 * CubeHash implementation (Bernstein's SHA-3 round-2 candidate).
 *
 * The paper's crypto hash generator (CHG) is a pipelined 5-round CubeHash
 * unit with a 16-cycle latency (Sec. VI). We implement the real algorithm,
 * parameterized as CubeHash<r,b,h>: r rounds per b-byte block, h-bit digest.
 * REV uses the low 4 bytes of the digest as a basic-block signature
 * (Sec. V.C).
 */

#ifndef REV_CRYPTO_CUBEHASH_HPP
#define REV_CRYPTO_CUBEHASH_HPP

#include <array>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace rev::crypto
{

/** A CubeHash digest (up to 512 bits; we use 256-bit by default). */
using Digest = std::array<u8, 32>;

/**
 * Name of the compiled-in single-state permutation kernel: "avx2",
 * "sse2", or "scalar" (the latter also when built with
 * -DREV_DISABLE_SIMD_HASH). All kernels are bit-identical.
 */
const char *cubehashImpl();

/**
 * Incremental CubeHash hasher.
 *
 * Parameters follow the CubeHashr/b-h naming: @p rounds rounds are applied
 * after absorbing each @p blockBytes sized message block, with 10*rounds
 * initialization and finalization rounds, producing a @p digestBits digest.
 */
class CubeHash
{
  public:
    /**
     * @param rounds      Rounds per message block (paper uses 5).
     * @param block_bytes Message block size in bytes (1..128).
     * @param digest_bits Digest size in bits (8..512, multiple of 8).
     */
    explicit CubeHash(unsigned rounds = 5, unsigned block_bytes = 32,
                      unsigned digest_bits = 256);

    /** Reset to the initial (post-IV) state. */
    void reset();

    /** Absorb @p len bytes of message. */
    void update(const u8 *data, std::size_t len);

    void
    update(const std::vector<u8> &data)
    {
        update(data.data(), data.size());
    }

    /**
     * Finalize and return the digest. The hasher must be reset() before
     * reuse.
     */
    Digest finalize();

    /** One-shot convenience hash. */
    static Digest hash(const u8 *data, std::size_t len, unsigned rounds = 5);

    /** Truncated 32-bit signature (low 4 bytes of digest), per Sec. V.C. */
    static u32 signature32(const Digest &d);

    unsigned rounds() const { return rounds_; }
    unsigned blockBytes() const { return blockBytes_; }
    unsigned digestBits() const { return digestBits_; }

    /** Post-initialization state for these (r, b, h) parameters. */
    const std::array<u32, 32> &iv() const { return iv_; }

  private:
    /** Apply @p n rounds of the CubeHash permutation to the state. */
    void permute(unsigned n);

    /** Absorb the staged block and permute. */
    void absorbBlock();

    unsigned rounds_;
    unsigned blockBytes_;
    unsigned digestBits_;

    std::array<u32, 32> state_;
    std::array<u32, 32> iv_; ///< cached post-initialization state
    std::array<u8, 128> buffer_;
    unsigned bufFill_ = 0;
};

} // namespace rev::crypto

#endif // REV_CRYPTO_CUBEHASH_HPP
