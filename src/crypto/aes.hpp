/**
 * @file
 * AES-128 block cipher with CTR-mode helpers.
 *
 * REV stores the per-module reference signature tables in RAM in encrypted
 * form (Sec. IV.A, Sec. IX). The paper notes that AES units already exist
 * on contemporary chips; we implement AES-128 from scratch so that the
 * simulated RAM genuinely holds ciphertext and SC fills genuinely decrypt.
 */

#ifndef REV_CRYPTO_AES_HPP
#define REV_CRYPTO_AES_HPP

#include <array>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace rev::crypto
{

/** A 128-bit AES key. */
using AesKey = std::array<u8, 16>;

/** A 128-bit AES block. */
using AesBlock = std::array<u8, 16>;

/**
 * AES-128 engine. Key schedule is expanded at construction; encryptBlock /
 * decryptBlock operate on single 16-byte blocks, and ctrCrypt provides a
 * stream transform (encrypt == decrypt) used for signature tables.
 */
class Aes128
{
  public:
    explicit Aes128(const AesKey &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(u8 *block) const;

    /** Decrypt one 16-byte block in place. */
    void decryptBlock(u8 *block) const;

    /**
     * CTR-mode transform of @p len bytes (in place). The same call both
     * encrypts and decrypts. @p nonce selects the keystream.
     */
    void ctrCrypt(u8 *data, std::size_t len, u64 nonce) const;

    void
    ctrCrypt(std::vector<u8> &data, u64 nonce) const
    {
        ctrCrypt(data.data(), data.size(), nonce);
    }

    /**
     * CTR-mode transform of a range that begins @p byte_offset bytes into
     * the stream. Allows decrypting an arbitrary slice (e.g., one
     * signature-table record) without processing the prefix.
     */
    void ctrCryptAt(u8 *data, std::size_t len, u64 nonce,
                    u64 byte_offset) const;

  private:
    /** Round keys: 11 x 16 bytes. */
    std::array<u8, 176> roundKeys_;
};

} // namespace rev::crypto

#endif // REV_CRYPTO_AES_HPP
