/**
 * @file
 * CubeHashX4 — hash up to four independent messages in lockstep.
 *
 * The CubeHash round is pure add/rotate/xor over 32 words, so four
 * unrelated states packed word-major (SoA) advance one round with the
 * exact same instruction count as one state — a 4-word SIMD vector per
 * state word. Messages of different lengths are handled by a lockstep
 * scheduler: each lane owes a number of pending rounds (r after every
 * absorbed block, 10r after the finalization xor), the engine runs
 * min(pending) rounds across all live lanes, then services whichever
 * lanes hit zero (absorb next block / inject the final xor / extract the
 * digest). A finished lane's rows keep getting scrambled by later rounds,
 * which is harmless — its digest was already extracted.
 *
 * Each lane's digest is bit-identical to CubeHash::hash() with the same
 * parameters; tests/crypto pins this against pinned vectors and random
 * lengths. Callers that batch fewer than 4 messages simply pass n < 4 —
 * the scheduler runs with idle lanes at no extra per-round cost.
 */

#ifndef REV_CRYPTO_CUBEHASH_LANES_HPP
#define REV_CRYPTO_CUBEHASH_LANES_HPP

#include <cstddef>

#include "common/types.hpp"
#include "crypto/cubehash.hpp"

namespace rev::crypto
{

/** Batch hasher over up to four independent messages. */
class CubeHashX4
{
  public:
    static constexpr unsigned kLanes = 4;

    /** One input message (borrowed bytes; must outlive hashBatch). */
    struct Msg
    {
        const u8 *data = nullptr;
        std::size_t len = 0;
    };

    /**
     * @param rounds       Rounds per message block (paper uses 5).
     * @param block_bytes  Message block size in bytes (1..128).
     * @param digest_bits  Digest size in bits (8..512, multiple of 8).
     * @param force_scalar Use the reference 4-lane kernel even when SIMD
     *                     is compiled in (for equivalence tests).
     */
    explicit CubeHashX4(unsigned rounds = 5, unsigned block_bytes = 32,
                        unsigned digest_bits = 256,
                        bool force_scalar = false);

    /**
     * Hash @p n (1..4) messages; out[i] receives msgs[i]'s digest,
     * bit-identical to the scalar CubeHash with the same parameters.
     */
    void hashBatch(const Msg *msgs, unsigned n, Digest *out);

    /** True when the SIMD 4-lane kernel is compiled in. */
    static bool simdCompiled();

    /** Lanes advanced per permutation round by the active kernel. */
    static unsigned statesPerRound() { return simdCompiled() ? kLanes : 1; }

    unsigned rounds() const { return rounds_; }
    unsigned blockBytes() const { return blockBytes_; }
    unsigned digestBits() const { return digestBits_; }

  private:
    unsigned rounds_;
    unsigned blockBytes_;
    unsigned digestBits_;
    bool forceScalar_;
    CubeHash ivSource_; ///< scalar hasher, reused for its memoized IV
};

} // namespace rev::crypto

#endif // REV_CRYPTO_CUBEHASH_LANES_HPP
