#include "crypto/cubehash.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace rev::crypto
{

namespace
{

inline u32
rotl32(u32 x, int k)
{
    return (x << k) | (x >> (32 - k));
}

/** One round of the CubeHash permutation (ten steps). */
inline void
round(std::array<u32, 32> &x)
{
    // 1. x[16+i] += x[i]
    for (int i = 0; i < 16; ++i)
        x[16 + i] += x[i];
    // 2. rotate x[i] left by 7
    for (int i = 0; i < 16; ++i)
        x[i] = rotl32(x[i], 7);
    // 3. swap x[i] <-> x[i^8] within the first half
    for (int i = 0; i < 8; ++i)
        std::swap(x[i], x[i + 8]);
    // 4. x[i] ^= x[16+i]
    for (int i = 0; i < 16; ++i)
        x[i] ^= x[16 + i];
    // 5. swap x[16+i] <-> x[16+(i^2)]
    for (int i : {0, 1, 4, 5, 8, 9, 12, 13})
        std::swap(x[16 + i], x[16 + i + 2]);
    // 6. x[16+i] += x[i]
    for (int i = 0; i < 16; ++i)
        x[16 + i] += x[i];
    // 7. rotate x[i] left by 11
    for (int i = 0; i < 16; ++i)
        x[i] = rotl32(x[i], 11);
    // 8. swap x[i] <-> x[i^4]
    for (int i : {0, 1, 2, 3, 8, 9, 10, 11})
        std::swap(x[i], x[i + 4]);
    // 9. x[i] ^= x[16+i]
    for (int i = 0; i < 16; ++i)
        x[i] ^= x[16 + i];
    // 10. swap x[16+i] <-> x[16+(i^1)]
    for (int i : {0, 2, 4, 6, 8, 10, 12, 14})
        std::swap(x[16 + i], x[16 + i + 1]);
}

} // namespace

CubeHash::CubeHash(unsigned rounds, unsigned block_bytes,
                   unsigned digest_bits)
    : rounds_(rounds), blockBytes_(block_bytes), digestBits_(digest_bits)
{
    if (rounds_ == 0)
        fatal("CubeHash: rounds must be nonzero");
    if (blockBytes_ == 0 || blockBytes_ > 128)
        fatal("CubeHash: block size must be in 1..128 bytes");
    if (digestBits_ < 8 || digestBits_ > 512 || digestBits_ % 8 != 0)
        fatal("CubeHash: digest size must be 8..512 bits, multiple of 8");

    // Initialize: state = (h/8, b, r, 0, ...), then 10*r rounds. The IV
    // depends only on the (r, b, h) parameters, so it is memoized
    // per-thread: short-message callers (the per-basic-block signature
    // hash) would otherwise spend more rounds deriving the IV than
    // absorbing their data.
    struct IvEntry
    {
        unsigned r, b, h;
        std::array<u32, 32> iv;
    };
    thread_local std::vector<IvEntry> memo;
    for (const auto &e : memo) {
        if (e.r == rounds_ && e.b == blockBytes_ && e.h == digestBits_) {
            iv_ = e.iv;
            state_ = iv_;
            return;
        }
    }
    state_.fill(0);
    state_[0] = digestBits_ / 8;
    state_[1] = blockBytes_;
    state_[2] = rounds_;
    permute(10 * rounds_);
    iv_ = state_;
    memo.push_back({rounds_, blockBytes_, digestBits_, iv_});
}

void
CubeHash::reset()
{
    state_ = iv_;
    bufFill_ = 0;
}

void
CubeHash::permute(unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        round(state_);
}

void
CubeHash::absorbBlock()
{
    for (unsigned i = 0; i < blockBytes_; ++i)
        state_[i / 4] ^= static_cast<u32>(buffer_[i]) << (8 * (i % 4));
    permute(rounds_);
    bufFill_ = 0;
}

void
CubeHash::update(const u8 *data, std::size_t len)
{
    while (len > 0) {
        const std::size_t take =
            std::min<std::size_t>(len, blockBytes_ - bufFill_);
        std::memcpy(buffer_.data() + bufFill_, data, take);
        bufFill_ += static_cast<unsigned>(take);
        data += take;
        len -= take;
        if (bufFill_ == blockBytes_)
            absorbBlock();
    }
}

Digest
CubeHash::finalize()
{
    // Pad: append 0x80 then zero-fill the block, absorb it.
    buffer_[bufFill_++] = 0x80;
    while (bufFill_ < blockBytes_)
        buffer_[bufFill_++] = 0;
    absorbBlock();

    // Finalize: xor 1 into the last state word, 10*r rounds.
    state_[31] ^= 1;
    permute(10 * rounds_);

    Digest out{};
    const unsigned bytes = digestBits_ / 8;
    for (unsigned i = 0; i < bytes && i < out.size(); ++i)
        out[i] = static_cast<u8>(state_[i / 4] >> (8 * (i % 4)));
    return out;
}

Digest
CubeHash::hash(const u8 *data, std::size_t len, unsigned rounds)
{
    CubeHash h(rounds);
    h.update(data, len);
    return h.finalize();
}

u32
CubeHash::signature32(const Digest &d)
{
    return static_cast<u32>(d[0]) | (static_cast<u32>(d[1]) << 8) |
           (static_cast<u32>(d[2]) << 16) | (static_cast<u32>(d[3]) << 24);
}

} // namespace rev::crypto
