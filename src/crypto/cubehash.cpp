#include "crypto/cubehash.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "crypto/cubehash_round.hpp"

namespace rev::crypto
{

const char *
cubehashImpl()
{
    return detail::permuteImplName();
}

CubeHash::CubeHash(unsigned rounds, unsigned block_bytes,
                   unsigned digest_bits)
    : rounds_(rounds), blockBytes_(block_bytes), digestBits_(digest_bits)
{
    if (rounds_ == 0)
        fatal("CubeHash: rounds must be nonzero");
    if (blockBytes_ == 0 || blockBytes_ > 128)
        fatal("CubeHash: block size must be in 1..128 bytes");
    if (digestBits_ < 8 || digestBits_ > 512 || digestBits_ % 8 != 0)
        fatal("CubeHash: digest size must be 8..512 bits, multiple of 8");

    // Initialize: state = (h/8, b, r, 0, ...), then 10*r rounds. The IV
    // depends only on the (r, b, h) parameters, so it is memoized
    // per-thread: short-message callers (the per-basic-block signature
    // hash) would otherwise spend more rounds deriving the IV than
    // absorbing their data.
    struct IvEntry
    {
        unsigned r, b, h;
        std::array<u32, 32> iv;
    };
    thread_local std::vector<IvEntry> memo;
    for (const auto &e : memo) {
        if (e.r == rounds_ && e.b == blockBytes_ && e.h == digestBits_) {
            iv_ = e.iv;
            state_ = iv_;
            return;
        }
    }
    state_.fill(0);
    state_[0] = digestBits_ / 8;
    state_[1] = blockBytes_;
    state_[2] = rounds_;
    permute(10 * rounds_);
    iv_ = state_;
    memo.push_back({rounds_, blockBytes_, digestBits_, iv_});
}

void
CubeHash::reset()
{
    state_ = iv_;
    bufFill_ = 0;
}

void
CubeHash::permute(unsigned n)
{
    detail::permuteActive(state_, n);
}

void
CubeHash::absorbBlock()
{
    for (unsigned i = 0; i < blockBytes_; ++i)
        state_[i / 4] ^= static_cast<u32>(buffer_[i]) << (8 * (i % 4));
    permute(rounds_);
    bufFill_ = 0;
}

void
CubeHash::update(const u8 *data, std::size_t len)
{
    while (len > 0) {
        const std::size_t take =
            std::min<std::size_t>(len, blockBytes_ - bufFill_);
        std::memcpy(buffer_.data() + bufFill_, data, take);
        bufFill_ += static_cast<unsigned>(take);
        data += take;
        len -= take;
        if (bufFill_ == blockBytes_)
            absorbBlock();
    }
}

Digest
CubeHash::finalize()
{
    // Pad: append 0x80 then zero-fill the block, absorb it.
    buffer_[bufFill_++] = 0x80;
    while (bufFill_ < blockBytes_)
        buffer_[bufFill_++] = 0;
    absorbBlock();

    // Finalize: xor 1 into the last state word, 10*r rounds.
    state_[31] ^= 1;
    permute(10 * rounds_);

    Digest out{};
    const unsigned bytes = digestBits_ / 8;
    for (unsigned i = 0; i < bytes && i < out.size(); ++i)
        out[i] = static_cast<u8>(state_[i / 4] >> (8 * (i % 4)));
    return out;
}

Digest
CubeHash::hash(const u8 *data, std::size_t len, unsigned rounds)
{
    CubeHash h(rounds);
    h.update(data, len);
    return h.finalize();
}

u32
CubeHash::signature32(const Digest &d)
{
    return static_cast<u32>(d[0]) | (static_cast<u32>(d[1]) << 8) |
           (static_cast<u32>(d[2]) << 16) | (static_cast<u32>(d[3]) << 24);
}

} // namespace rev::crypto
