/**
 * @file
 * Section IX key management model.
 *
 * The paper assumes a TPM-like attestation facility inside the CPU: each
 * signature table is encrypted with a per-module symmetric key; that
 * symmetric key is itself wrapped with a key specific to the CPU and stored
 * at the head of the signature table. The symmetric key is therefore never
 * visible in RAM in the clear; only the CPU can unwrap it.
 *
 * KeyVault models exactly that contract. The per-CPU secret lives inside
 * the vault object (standing in for fuses/TPM NVRAM); wrap() produces the
 * wrapped-key blob placed at the head of a table in simulated RAM; unwrap()
 * is only callable through the vault, standing in for the in-CPU unwrap.
 */

#ifndef REV_CRYPTO_KEYVAULT_HPP
#define REV_CRYPTO_KEYVAULT_HPP

#include <array>
#include <optional>

#include "crypto/aes.hpp"
#include "common/random.hpp"

namespace rev::crypto
{

/** Wrapped (CPU-bound) module key blob: 16 key bytes + 16 MAC-ish bytes. */
using WrappedKey = std::array<u8, 32>;

/**
 * In-CPU key vault. One instance per simulated CPU.
 */
class KeyVault
{
  public:
    /** @param cpu_seed Seeds the per-CPU secret (models per-die fuses). */
    explicit KeyVault(u64 cpu_seed);

    /** Generate a fresh random module key (trusted-toolchain side). */
    AesKey generateModuleKey(Rng &rng) const;

    /**
     * Wrap @p key for this CPU. The result is safe to store in RAM at the
     * head of a signature table.
     */
    WrappedKey wrap(const AesKey &key) const;

    /**
     * Unwrap a key blob. Returns std::nullopt if the blob fails its
     * integrity check (e.g., it was wrapped for a different CPU or was
     * tampered with in RAM).
     */
    std::optional<AesKey> unwrap(const WrappedKey &blob) const;

  private:
    AesKey cpuSecret_;
};

} // namespace rev::crypto

#endif // REV_CRYPTO_KEYVAULT_HPP
