#include "crypto/cubehash_lanes.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"
#include "crypto/cubehash_round.hpp"

namespace rev::crypto
{

namespace
{

/**
 * Per-lane absorb/finalize cursor. A lane walks the same event sequence
 * the scalar hasher does — absorb each padded message block (r rounds
 * each), xor 1 into word 31 (10r rounds), extract the digest — with the
 * rounds themselves executed by the shared lockstep scheduler.
 */
struct Lane
{
    const u8 *data = nullptr;
    std::size_t len = 0;
    std::size_t off = 0;       ///< next message byte to absorb
    bool absorbedPad = false;  ///< the 0x80-padded final block went in
    bool finalXorDone = false; ///< word-31 xor injected
    bool done = true;
    unsigned pending = 0; ///< rounds owed before the next event
};

/** Xor one padded message block into lane @p l of the SoA state. */
void
absorbBlockLane(detail::SoaState4 &s, Lane &lane, unsigned l,
                unsigned block_bytes)
{
    for (unsigned i = 0; i < block_bytes; ++i) {
        u8 byte;
        const std::size_t idx = lane.off + i;
        if (idx < lane.len)
            byte = lane.data[idx];
        else if (idx == lane.len)
            byte = 0x80;
        else
            byte = 0;
        s.w[4 * (i / 4) + l] ^= static_cast<u32>(byte) << (8 * (i % 4));
    }
    lane.off += block_bytes;
    if (lane.off > lane.len)
        lane.absorbedPad = true;
}

} // namespace

CubeHashX4::CubeHashX4(unsigned rounds, unsigned block_bytes,
                       unsigned digest_bits, bool force_scalar)
    : rounds_(rounds), blockBytes_(block_bytes), digestBits_(digest_bits),
      forceScalar_(force_scalar),
      ivSource_(rounds, block_bytes, digest_bits)
{
}

bool
CubeHashX4::simdCompiled()
{
    return REV_CUBEHASH_SIMD != 0;
}

void
CubeHashX4::hashBatch(const Msg *msgs, unsigned n, Digest *out)
{
    if (n == 0 || n > kLanes)
        fatal("CubeHashX4: batch size must be 1..4, got ", n);

    detail::SoaState4 s;
    const std::array<u32, 32> &iv = ivSource_.iv();
    for (unsigned w = 0; w < 32; ++w)
        for (unsigned l = 0; l < kLanes; ++l)
            s.w[4 * w + l] = iv[w];

    Lane lanes[kLanes];
    for (unsigned l = 0; l < n; ++l) {
        lanes[l].data = msgs[l].data;
        lanes[l].len = msgs[l].len;
        lanes[l].done = false;
    }

    auto runRounds = [&](unsigned k) {
        if (forceScalar_) {
            for (unsigned i = 0; i < k; ++i)
                detail::roundX4Scalar(s);
        } else {
            detail::permuteX4Active(s, k);
        }
    };

    for (;;) {
        // Service every lane whose owed rounds ran out: absorb the next
        // block, inject the finalization xor, or extract the digest.
        for (unsigned l = 0; l < n; ++l) {
            Lane &lane = lanes[l];
            while (!lane.done && lane.pending == 0) {
                if (!lane.absorbedPad) {
                    absorbBlockLane(s, lane, l, blockBytes_);
                    lane.pending = rounds_;
                } else if (!lane.finalXorDone) {
                    s.w[4 * 31 + l] ^= 1;
                    lane.finalXorDone = true;
                    lane.pending = 10 * rounds_;
                } else {
                    Digest d{};
                    const unsigned bytes = digestBits_ / 8;
                    for (unsigned i = 0; i < bytes && i < d.size(); ++i)
                        d[i] = static_cast<u8>(s.w[4 * (i / 4) + l] >>
                                               (8 * (i % 4)));
                    out[l] = d;
                    lane.done = true;
                }
            }
        }

        unsigned step = std::numeric_limits<unsigned>::max();
        for (unsigned l = 0; l < n; ++l)
            if (!lanes[l].done)
                step = std::min(step, lanes[l].pending);
        if (step == std::numeric_limits<unsigned>::max())
            break; // all lanes done

        runRounds(step);
        for (unsigned l = 0; l < n; ++l)
            if (!lanes[l].done)
                lanes[l].pending -= step;
    }
}

} // namespace rev::crypto
