#include "crypto/keyvault.hpp"

#include <cstring>

namespace rev::crypto
{

KeyVault::KeyVault(u64 cpu_seed)
{
    Rng rng(cpu_seed ^ 0xc0ffee1234567890ULL);
    for (auto &b : cpuSecret_)
        b = static_cast<u8>(rng.next());
}

AesKey
KeyVault::generateModuleKey(Rng &rng) const
{
    AesKey key;
    for (auto &b : key)
        b = static_cast<u8>(rng.next());
    return key;
}

WrappedKey
KeyVault::wrap(const AesKey &key) const
{
    // Encrypt the key under the CPU secret, and append an integrity tag:
    // E(key) || E(E(key) ^ const). A real design would use an AEAD; the
    // tag only needs to let unwrap() notice tampering / wrong-CPU blobs.
    Aes128 cipher(cpuSecret_);
    WrappedKey blob{};
    std::memcpy(blob.data(), key.data(), 16);
    cipher.encryptBlock(blob.data());

    u8 tag[16];
    std::memcpy(tag, blob.data(), 16);
    for (auto &b : tag)
        b ^= 0x5a;
    cipher.encryptBlock(tag);
    std::memcpy(blob.data() + 16, tag, 16);
    return blob;
}

std::optional<AesKey>
KeyVault::unwrap(const WrappedKey &blob) const
{
    Aes128 cipher(cpuSecret_);

    u8 expect[16];
    std::memcpy(expect, blob.data(), 16);
    for (auto &b : expect)
        b ^= 0x5a;
    cipher.encryptBlock(expect);
    if (std::memcmp(expect, blob.data() + 16, 16) != 0)
        return std::nullopt;

    AesKey key;
    std::memcpy(key.data(), blob.data(), 16);
    cipher.decryptBlock(key.data());
    return key;
}

} // namespace rev::crypto
