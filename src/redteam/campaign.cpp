#include "redteam/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string_view>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "core/snapshot.hpp"
#include "sig/table.hpp"
#include "workloads/scheduler.hpp"

namespace rev::redteam
{

std::vector<workloads::WorkloadProfile>
campaignWorkloads()
{
    // Small on purpose: campaign cost is injections x budget, and the
    // oracle needs the golden instruction stream to revisit tampered
    // sites, not a SPEC-sized footprint. Two distinct dynamic shapes —
    // call-heavy with computed dispatch, and branchy with churning
    // gates — so every injection class finds targets of both kinds.
    workloads::WorkloadProfile mix;
    mix.name = "rt-mix";
    mix.seed = 11;
    mix.numFunctions = 150;
    mix.entryFunctions = 8;
    mix.callSpan = 40;
    mix.indirectFnFrac = 0.15;
    mix.loopFrac = 0.3;
    mix.branchBias = 0.8;
    mix.dataFootprint = 1 << 20;

    workloads::WorkloadProfile branchy;
    branchy.name = "rt-branchy";
    branchy.seed = 12;
    branchy.numFunctions = 120;
    branchy.entryFunctions = 8;
    branchy.callSpan = 30;
    branchy.indirectFnFrac = 0.08;
    branchy.branchBias = 0.6;
    branchy.gateSpread = 0.2;
    branchy.storeFrac = 0.12;
    branchy.dataFootprint = 1 << 20;

    // OS-pressure shape: the guest-side preemptive scheduler
    // (src/workloads/scheduler.cpp). Context switches between guest
    // threads churn the signature cache mid-quantum, so injections land
    // in freshly re-fetched blocks as often as in warm ones.
    workloads::WorkloadProfile sched = workloads::schedStormProfile();
    sched.name = "rt-sched";
    sched.seed = 13;
    sched.mainIterations = 128; // scheduling slices

    return {mix, branchy, sched};
}

std::vector<TimingVariant>
campaignTimings()
{
    return {{"sc32", 32 * 1024}, {"sc8", 8 * 1024}};
}

std::vector<sig::ValidationMode>
campaignModes()
{
    return {sig::ValidationMode::Full, sig::ValidationMode::Aggressive,
            sig::ValidationMode::CfiOnly};
}

bool
snapshotForkEnabledFromEnv()
{
    const char *env = std::getenv("REV_SNAPSHOT_FORK");
    return !env || std::string_view(env) != "0";
}

bool
DetectionMatrix::coversAllCells() const
{
    for (const auto &[key, cell] : cells)
        if (cell.injections == 0)
            return false;
    return !cells.empty();
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

Campaign::Campaign(const CampaignSpec &spec)
    : spec_(spec), threads_(resolveThreadCount(spec.threads))
{
    // Resolve the axis subsets against the built-in defaults.
    for (const TimingVariant &t : campaignTimings())
        if (spec_.timings.empty() ||
            std::find(spec_.timings.begin(), spec_.timings.end(), t.name) !=
                spec_.timings.end())
            timings_.push_back(t);
    if (timings_.empty())
        fatal("campaign: no timing variant matched");
    modes_ = campaignModes();
    classes_ = spec_.classes;
    if (classes_.empty())
        classes_.assign(std::begin(kCampaignClasses),
                        std::end(kCampaignClasses));

    std::vector<workloads::WorkloadProfile> profiles;
    for (const workloads::WorkloadProfile &p : campaignWorkloads())
        if (spec_.workloads.empty() ||
            std::find(spec_.workloads.begin(), spec_.workloads.end(),
                      p.name) != spec_.workloads.end())
            profiles.push_back(p);
    if (profiles.empty())
        fatal("campaign: no workload matched");

    // Phase 1: contexts (workload generation, signature prototypes, the
    // golden record run) fan out across workloads.
    contexts_.resize(profiles.size());
    parallelFor(profiles.size(), threads_, [&](std::size_t i) {
        contexts_[i] =
            buildWorkloadContext(profiles[i], spec_, modes_, timings_.front());
    });

    // Phase 2: the remaining (workload, mode, timing) goldens — replayed
    // from the recorded trace when enabled — across the same pool. Each
    // task touches one context exclusively per (mode, timing) key, so
    // fan out over contexts to keep map writes single-threaded.
    parallelFor(contexts_.size(), threads_, [&](std::size_t i) {
        for (sig::ValidationMode mode : modes_)
            for (const TimingVariant &t : timings_)
                addGolden(*contexts_[i], spec_, mode, t);
    });
}

Campaign::~Campaign() = default;

const WorkloadContext &
Campaign::context(const std::string &workload) const
{
    for (const auto &ctx : contexts_)
        if (ctx->name == workload)
            return *ctx;
    panic("campaign: unknown workload ", workload);
}

namespace
{

/** Payload = original bytes XOR nonzero masks: guaranteed different. */
std::vector<u8>
xorPayload(const u8 *original, std::size_t len, Rng &rng)
{
    std::vector<u8> out(len);
    for (std::size_t i = 0; i < len; ++i)
        out[i] = original[i] ^ static_cast<u8>(rng.range(1, 255));
    return out;
}

const prog::Module &
mainModule(const WorkloadContext &ctx)
{
    return ctx.program.main();
}

const u8 *
imageAt(const WorkloadContext &ctx, Addr pc)
{
    const prog::Module &mod = mainModule(ctx);
    return mod.image.data() + static_cast<std::size_t>(pc - mod.base);
}

} // namespace

std::vector<InjectionPlan>
Campaign::generatePlans() const
{
    const std::size_t C = classes_.size();
    const std::size_t M = modes_.size();
    const std::size_t T = timings_.size();
    const std::size_t W = contexts_.size();

    std::vector<InjectionPlan> plans;
    plans.reserve(static_cast<std::size_t>(spec_.injections));
    for (u64 i = 0; i < spec_.injections; ++i) {
        InjectionPlan plan;
        plan.id = i;
        plan.seed = spec_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
        // Round-robin stratification: every (class, mode, timing,
        // workload) cell is covered once injections >= C*M*T*W, and the
        // per-cell counts never differ by more than one.
        plan.klass = classes_[i % C];
        plan.mode = modes_[(i / C) % M];
        plan.timing = timings_[(i / (C * M)) % T].name;
        const WorkloadContext &ctx = *contexts_[(i / (C * M * T)) % W];
        plan.workload = ctx.name;

        Rng rng(plan.seed);
        // Fire inside the first ~60% of the golden stream so tampered
        // sites still get revisited before the instruction budget.
        plan.fireIndex = rng.range(1, std::max<u64>(1, ctx.goldenInstrs * 3 / 5));

        const auto pick_site = [&]() -> const ExecSite & {
            return ctx.sites[rng.below(ctx.sites.size())];
        };

        switch (plan.klass) {
          case InjectionClass::NoOp:
            break;
          case InjectionClass::CodeFlip: {
            const ExecSite &site = pick_site();
            const u64 n = rng.range(1, std::min<u64>(3, site.len));
            const u64 off = rng.below(site.len - n + 1);
            plan.targetAddr = site.pc + off;
            plan.payload = xorPayload(imageAt(ctx, plan.targetAddr),
                                      static_cast<std::size_t>(n), rng);
            break;
          }
          case InjectionClass::DmaWrite: {
            const ExecSite &site = pick_site();
            const Addr code_end = mainModule(ctx).codeEnd();
            const u64 n = std::min<u64>(rng.range(8, 64),
                                        code_end - site.pc);
            plan.targetAddr = site.pc;
            plan.payload = xorPayload(imageAt(ctx, site.pc),
                                      static_cast<std::size_t>(n), rng);
            break;
          }
          case InjectionClass::CfgRewire: {
            const std::size_t k =
                ctx.branchSites[rng.below(ctx.branchSites.size())];
            const ExecSite &br = ctx.sites[k];
            // Br encodes imm32 at byte 3 (op, rs1, rs2, imm); Jmp/Call
            // at byte 1 (op, imm). Targets are pc-relative.
            const u64 imm_off =
                br.klass == isa::InstrClass::Branch ? 3 : 1;
            const u8 *imm = imageAt(ctx, br.pc + imm_off);
            const i32 old_imm = static_cast<i32>(
                static_cast<u32>(imm[0]) | (static_cast<u32>(imm[1]) << 8) |
                (static_cast<u32>(imm[2]) << 16) |
                (static_cast<u32>(imm[3]) << 24));
            i32 new_imm = old_imm;
            for (unsigned attempt = 0; attempt < 8 && new_imm == old_imm;
                 ++attempt)
                new_imm = static_cast<i32>(
                    static_cast<i64>(pick_site().pc) -
                    static_cast<i64>(br.pc));
            if (new_imm == old_imm)
                ++new_imm; // single-site degenerate workload
            plan.targetAddr = br.pc + imm_off;
            plan.redirectTarget = br.pc + static_cast<i64>(new_imm);
            plan.payload = {static_cast<u8>(new_imm),
                            static_cast<u8>(new_imm >> 8),
                            static_cast<u8>(new_imm >> 16),
                            static_cast<u8>(new_imm >> 24)};
            break;
          }
          case InjectionClass::RetSmash:
            plan.redirectTarget =
                ctx.retRedirects[rng.below(ctx.retRedirects.size())];
            break;
          case InjectionClass::SigCorrupt: {
            if (spec_.disableRev || ctx.protos.empty()) {
                // Nothing lives there without REV; still a valid plan
                // (must classify Benign, or Escape is a harness bug).
                plan.targetAddr =
                    sig::kSigTableRegion + rng.below(4096);
            } else {
                const sig::ModuleSig &ms =
                    ctx.protos.at(plan.mode)->moduleSigs().front();
                // Skip the cleartext header: the table reader caches it
                // at first use, so corrupting it later is invisible by
                // design; the record area is what walks keep reading.
                const u64 span =
                    ms.stats.sizeBytes - sig::kHeaderBytes - 16;
                plan.targetAddr =
                    ms.tableBase + sig::kHeaderBytes + rng.below(span);
            }
            plan.payload.resize(rng.range(4, 16));
            for (u8 &b : plan.payload)
                b = static_cast<u8>(rng.next());
            break;
          }
          case InjectionClass::TimingJitter: {
            const ExecSite &site = pick_site();
            const u64 n = rng.range(1, std::min<u64>(3, site.len));
            const u64 off = rng.below(site.len - n + 1);
            plan.targetAddr = site.pc + off;
            plan.payload = xorPayload(imageAt(ctx, plan.targetAddr),
                                      static_cast<std::size_t>(n), rng);
            plan.phase = static_cast<JitterPhase>(rng.below(3));
            plan.watchPc = pick_site().pc;
            break;
          }
        }
        plans.push_back(std::move(plan));
    }
    return plans;
}

InjectionResult
Campaign::runPlan(const InjectionPlan &plan) const
{
    const WorkloadContext &ctx = context(plan.workload);
    for (const TimingVariant &t : timings_)
        if (t.name == plan.timing)
            return runInjection(ctx, spec_, plan, t);
    panic("campaign: unknown timing variant ", plan.timing);
}

bool
Campaign::canRun(const InjectionPlan &plan) const
{
    bool timing_ok = false;
    for (const TimingVariant &t : timings_)
        timing_ok = timing_ok || t.name == plan.timing;
    if (!timing_ok)
        return false;
    for (const auto &ctx : contexts_)
        if (ctx->name == plan.workload)
            return true;
    return false;
}

DetectionMatrix
Campaign::run() const
{
    return run(snapshotForkEnabledFromEnv());
}

DetectionMatrix
Campaign::run(bool use_snapshots) const
{
    const std::vector<InjectionPlan> plans = generatePlans();

    DetectionMatrix m;
    m.seed = spec_.seed;
    m.injections = spec_.injections;
    m.revEnabled = !spec_.disableRev;
    m.backend = spec_.backend;
    for (InjectionClass c : classes_)
        for (sig::ValidationMode mode : modes_)
            m.cells[{injectionClassName(c), sig::modeName(mode)}] = {};

    // Streaming aggregation: verdicts fold into the matrix as they
    // arrive instead of collecting an O(injections) result vector, so a
    // 100k-injection campaign runs at flat RSS. Cell counters are
    // commutative; escapes are re-sorted below, so the rendered JSON is
    // independent of completion order.
    std::mutex mu;
    const auto record = [&](const InjectionPlan &plan,
                            const InjectionResult &r) {
        std::lock_guard<std::mutex> lock(mu);
        CellStats &cell = m.cells[{injectionClassName(plan.klass),
                                   sig::modeName(plan.mode)}];
        ++cell.injections;
        if (!r.fired)
            ++cell.unfired;
        switch (r.verdict) {
          case Verdict::Detected:
            ++cell.detected;
            cell.latencySum += r.latencyCycles;
            if (!r.mechanismMatch) {
                ++cell.offMechanism;
                m.nearMisses.push_back(
                    EscapeRecord{plan, r, planFingerprint(plan)});
            }
            break;
          case Verdict::Crashed: ++cell.crashed; break;
          case Verdict::Benign: ++cell.benign; break;
          case Verdict::Blind: ++cell.blind; break;
          case Verdict::Escape:
            ++cell.escapes;
            m.escapes.push_back(
                EscapeRecord{plan, r, planFingerprint(plan)});
            break;
        }
    };

    if (!use_snapshots) {
        parallelFor(plans.size(), threads_, [&](std::size_t i) {
            record(plans[i], runPlan(plans[i]));
        });
    } else {
        // One source simulator per (workload, mode, timing)
        // configuration advances monotonically through that group's fire
        // indices; every injection forks from a snapshot taken at its
        // exact fire point instead of re-executing the prefix cold.
        struct Group
        {
            const WorkloadContext *ctx = nullptr;
            sig::ValidationMode mode{};
            const TimingVariant *timing = nullptr;
            std::vector<std::size_t> planIdx;
        };
        std::vector<Group> groups;
        for (const auto &ctx : contexts_)
            for (sig::ValidationMode mode : modes_)
                for (const TimingVariant &t : timings_)
                    groups.push_back(Group{ctx.get(), mode, &t, {}});
        const std::size_t M = modes_.size();
        const std::size_t T = timings_.size();
        const auto groupOf = [&](const InjectionPlan &plan) -> Group & {
            for (std::size_t w = 0; w < contexts_.size(); ++w) {
                if (contexts_[w]->name != plan.workload)
                    continue;
                for (std::size_t mi = 0; mi < M; ++mi) {
                    if (modes_[mi] != plan.mode)
                        continue;
                    for (std::size_t ti = 0; ti < T; ++ti)
                        if (timings_[ti].name == plan.timing)
                            return groups[(w * M + mi) * T + ti];
                }
            }
            panic("campaign: plan matches no group");
        };
        for (std::size_t i = 0; i < plans.size(); ++i)
            groupOf(plans[i]).planIdx.push_back(i);
        for (Group &g : groups)
            std::sort(g.planIdx.begin(), g.planIdx.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (plans[a].fireIndex != plans[b].fireIndex)
                              return plans[a].fireIndex < plans[b].fireIndex;
                          return plans[a].id < plans[b].id;
                      });

        parallelFor(groups.size(), threads_, [&](std::size_t gi) {
            Group &g = groups[gi];
            if (g.planIdx.empty())
                return;
            core::SimConfig cfg =
                campaignSimConfig(spec_, g.mode, *g.timing);
            if (!spec_.disableRev)
                cfg.sigStorePrototype = g.ctx->protos.at(g.mode).get();
            core::Simulator source(g.ctx->program, cfg);
            std::optional<core::Snapshot> snap;
            // Once runUntil() reports the run finished, the source is
            // done for good — re-calling would silently start a fresh
            // run. Remaining plans (fire index beyond the golden end)
            // fall back to cold execution.
            bool exhausted = false;
            for (std::size_t i : g.planIdx) {
                const InjectionPlan &plan = plans[i];
                // A hook the golden stream proves never fires, or a
                // tamper confined to bytes the stream never touches
                // again after the fire point, cannot change the run at
                // all: classify Benign without executing (the
                // non-snapshot mode still runs these, so the CI matrix
                // comparison cross-checks the proof).
                if (const std::optional<InjectionResult> fast =
                        provablyBenignResult(*g.ctx, spec_, plan)) {
                    record(plan, *fast);
                    continue;
                }
                if (!exhausted &&
                    (!snap || snap->instrIndex != plan.fireIndex)) {
                    if (source.runUntil(plan.fireIndex))
                        snap = source.capture();
                    else
                        exhausted = true;
                }
                if (exhausted || !snap ||
                    snap->instrIndex != plan.fireIndex)
                    record(plan,
                           runInjection(*g.ctx, spec_, plan, *g.timing));
                else
                    record(plan, runInjectionFromSnapshot(
                                     *g.ctx, spec_, plan, *g.timing, *snap));
            }
        });
    }

    // Streaming appends escapes in completion order; plan order is the
    // canonical rendering, byte-identical across strategies and thread
    // counts.
    const auto by_plan_id = [](const EscapeRecord &a,
                               const EscapeRecord &b) {
        return a.plan.id < b.plan.id;
    };
    std::sort(m.escapes.begin(), m.escapes.end(), by_plan_id);
    std::sort(m.nearMisses.begin(), m.nearMisses.end(), by_plan_id);

    for (const auto &[key, cell] : m.cells)
        m.total.add(cell);
    return m;
}

// ---------------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------------

namespace
{

void
appendCell(std::string &out, const std::string &klass,
           const std::string &mode, const CellStats &c)
{
    char buf[512];
    const double mean_latency =
        c.detected ? static_cast<double>(c.latencySum) /
                         static_cast<double>(c.detected)
                   : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "{\"class\":\"%s\",\"mode\":\"%s\",\"injections\":%llu,"
                  "\"detected\":%llu,\"crashed\":%llu,\"benign\":%llu,"
                  "\"blind\":%llu,\"escapes\":%llu,\"unfired\":%llu,"
                  "\"off_mechanism\":%llu,\"latency_sum\":%llu,"
                  "\"mean_detection_latency\":%.2f}",
                  klass.c_str(), mode.c_str(),
                  static_cast<unsigned long long>(c.injections),
                  static_cast<unsigned long long>(c.detected),
                  static_cast<unsigned long long>(c.crashed),
                  static_cast<unsigned long long>(c.benign),
                  static_cast<unsigned long long>(c.blind),
                  static_cast<unsigned long long>(c.escapes),
                  static_cast<unsigned long long>(c.unfired),
                  static_cast<unsigned long long>(c.offMechanism),
                  static_cast<unsigned long long>(c.latencySum),
                  mean_latency);
    out += buf;
}

} // namespace

std::string
matrixToJson(const DetectionMatrix &m)
{
    std::string out = "{";
    out += "\"campaign_seed\":" + std::to_string(m.seed);
    out += ",\"injections\":" + std::to_string(m.injections);
    out += ",\"rev_enabled\":";
    out += m.revEnabled ? "true" : "false";
    // Default-backend matrices stay byte-identical to the pre-framework
    // rendering; only non-REV campaigns carry the extra field.
    if (m.backend != validate::Backend::Rev) {
        out += ",\"backend\":\"";
        out += validate::backendName(m.backend);
        out += "\"";
    }
    out += ",\"cells\":[";
    bool first = true;
    for (const auto &[key, cell] : m.cells) {
        if (!first)
            out += ",";
        first = false;
        appendCell(out, key.first, key.second, cell);
    }
    out += "],\"totals\":";
    appendCell(out, "all", "all", m.total);
    out += ",\"escapes\":[";
    first = true;
    for (const EscapeRecord &e : m.escapes) {
        if (!first)
            out += ",";
        first = false;
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "{\"fingerprint\":\"0x%llx\",\"verdict\":\"%s\",",
                      static_cast<unsigned long long>(e.fingerprint),
                      verdictName(e.result.verdict));
        out += buf;
        out += "\"plan\":" + planToJson(e.plan) + "}";
    }
    out += "]}";
    return out;
}

} // namespace rev::redteam
