#include "redteam/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace rev::redteam
{

namespace fs = std::filesystem;

std::vector<CorpusEntry>
loadCorpus(const std::string &dir)
{
    std::vector<CorpusEntry> corpus;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return corpus;

    std::vector<fs::path> files;
    for (const fs::directory_entry &e : fs::directory_iterator(dir, ec)) {
        if (e.is_regular_file() && e.path().extension() == ".json")
            files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());

    for (const fs::path &p : files) {
        std::ifstream is(p);
        std::ostringstream buf;
        buf << is.rdbuf();
        InjectionPlan plan;
        if (!is || !planFromJson(buf.str(), &plan)) {
            std::fprintf(stderr, "corpus: skipping unparsable %s\n",
                         p.string().c_str());
            continue;
        }
        corpus.push_back(CorpusEntry{p.string(), std::move(plan)});
    }
    return corpus;
}

std::string
saveCorpusPlan(const std::string &dir, const InjectionPlan &plan)
{
    std::error_code ec;
    fs::create_directories(dir, ec);

    char name[32];
    std::snprintf(name, sizeof(name), "fp-%016llx.json",
                  static_cast<unsigned long long>(planFingerprint(plan)));
    const fs::path path = fs::path(dir) / name;
    if (fs::exists(path, ec))
        return {};

    std::ofstream os(path);
    if (!os)
        return {};
    os << planToJson(plan) << "\n";
    return os ? path.string() : std::string();
}

} // namespace rev::redteam
