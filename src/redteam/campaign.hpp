/**
 * @file
 * The adversarial campaign engine.
 *
 * A Campaign expands a CampaignSpec into thousands of seeded
 * InjectionPlans stratified over the full sweep matrix — injection class
 * x workload x validation mode x timing variant — runs each against the
 * differential oracle on a shared worker pool, and aggregates the
 * verdicts into a DetectionMatrix keyed by (class, mode).
 *
 * Golden runs reuse the sweep's record-once/replay-many fast path: one
 * direct record run per workload produces the architectural trace, and
 * every other (mode, timing) golden replays it (REV_TRACE_REPLAY
 * permitting). Tampered runs always execute directly — the tamper
 * changes the architectural stream, which is the point — so detection
 * matrices are bit-identical with replay on and off.
 *
 * Injected runs themselves reuse state the same way: instead of paying
 * the warm-up prefix (instruction 0 .. fireIndex) per injection, the
 * campaign keeps one *source* simulator per (workload, mode, timing)
 * configuration, advances it monotonically through the group's plans in
 * fireIndex order, captures a copy-on-write Snapshot at each distinct
 * fire point, and forks every injection from it (REV_SNAPSHOT_FORK=0
 * disables). A fork's instruction/cycle/statistics stream is
 * bit-identical to a cold run's from the snapshot index on
 * (tests/bench/snapshot_test.cpp), so the rendered matrix is
 * byte-identical either way — enforced in CI.
 */

#ifndef REV_REDTEAM_CAMPAIGN_HPP
#define REV_REDTEAM_CAMPAIGN_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "redteam/oracle.hpp"

namespace rev::redteam
{

/** The built-in campaign workloads (small, distinct dynamic shapes). */
std::vector<workloads::WorkloadProfile> campaignWorkloads();

/** The built-in timing variants (SC capacity sweep). */
std::vector<TimingVariant> campaignTimings();

/** Every validation mode, in canonical order. */
std::vector<sig::ValidationMode> campaignModes();

/** REV_SNAPSHOT_FORK: snapshot-forked injections are on unless the
 *  variable is set to "0". Read per call — tests toggle it mid-process. */
bool snapshotForkEnabledFromEnv();

/** Per-(class, mode) verdict counts of a campaign. */
struct CellStats
{
    u64 injections = 0;
    u64 detected = 0;
    u64 crashed = 0;
    u64 benign = 0;
    u64 blind = 0;
    u64 escapes = 0;
    u64 unfired = 0;      ///< plans whose firing condition never triggered
    u64 offMechanism = 0; ///< detections outside the predicted mechanisms
    u64 latencySum = 0;   ///< detection-latency cycles, over detected

    void
    add(const CellStats &o)
    {
        injections += o.injections;
        detected += o.detected;
        crashed += o.crashed;
        benign += o.benign;
        blind += o.blind;
        escapes += o.escapes;
        unfired += o.unfired;
        offMechanism += o.offMechanism;
        latencySum += o.latencySum;
    }
};

/** One escape, with everything needed to reproduce it. */
struct EscapeRecord
{
    InjectionPlan plan;
    InjectionResult result;
    u64 fingerprint = 0; ///< planFingerprint(plan): the reproducer seed
};

/** Aggregated campaign outcome. */
struct DetectionMatrix
{
    u64 seed = 0;
    u64 injections = 0;
    bool revEnabled = true;
    validate::Backend backend = validate::Backend::Rev;

    /** (class name, mode name) -> verdict counts; every swept cell is
     *  present, including empty ones. */
    std::map<std::pair<std::string, std::string>, CellStats> cells;
    CellStats total;
    std::vector<EscapeRecord> escapes;

    /** Off-mechanism detections: the tamper was caught, but not by a
     *  mechanism the taxonomy predicts for its class. Near-misses, kept
     *  with full reproducer plans so the corpus can persist them. */
    std::vector<EscapeRecord> nearMisses;

    /** Did every swept (class, mode) cell receive >= 1 injection? */
    bool coversAllCells() const;
};

/** Deterministic JSON rendering (cells in class-major order). */
std::string matrixToJson(const DetectionMatrix &m);

/**
 * One configured campaign: owns the workload contexts (programs,
 * signature-store prototypes, traces, goldens) so plans can be run —
 * individually (shrinker, tests) or en masse (run()).
 */
class Campaign
{
  public:
    /** Builds every workload context and golden run. Expensive; do it
     *  once and reuse across run()/runPlan() calls. */
    explicit Campaign(const CampaignSpec &spec);
    ~Campaign();

    Campaign(const Campaign &) = delete;
    Campaign &operator=(const Campaign &) = delete;

    /** Expand the spec into its stratified plan list. Deterministic in
     *  the spec alone. */
    std::vector<InjectionPlan> generatePlans() const;

    /** Run one plan through the oracle. Thread-safe. */
    InjectionResult runPlan(const InjectionPlan &plan) const;

    /** Can runPlan() execute @p plan — does this campaign hold its
     *  workload context and timing variant? (Corpus plans may come from
     *  campaigns swept over different axes.) */
    bool canRun(const InjectionPlan &plan) const;

    /** Run the whole campaign across the worker pool, with snapshot
     *  forking per REV_SNAPSHOT_FORK. */
    DetectionMatrix run() const;

    /** Run the whole campaign; @p use_snapshots selects between
     *  snapshot-forked injections (fork the warmed source at each
     *  plan's fire index) and cold per-plan runs. Both render
     *  byte-identical matrices. */
    DetectionMatrix run(bool use_snapshots) const;

    const CampaignSpec &spec() const { return spec_; }
    const std::vector<TimingVariant> &timings() const { return timings_; }
    const std::vector<sig::ValidationMode> &modes() const { return modes_; }
    const std::vector<InjectionClass> &classes() const { return classes_; }
    const WorkloadContext &context(const std::string &workload) const;

  private:
    CampaignSpec spec_;
    unsigned threads_;
    std::vector<TimingVariant> timings_;
    std::vector<sig::ValidationMode> modes_;
    std::vector<InjectionClass> classes_;
    std::vector<std::unique_ptr<WorkloadContext>> contexts_;
};

} // namespace rev::redteam

#endif // REV_REDTEAM_CAMPAIGN_HPP
