#include "redteam/shrink.hpp"

#include "common/logging.hpp"

namespace rev::redteam
{

ShrinkResult
shrinkEscape(const Campaign &campaign, InjectionPlan plan,
             unsigned max_evals)
{
    ShrinkResult out;
    InjectionResult current = campaign.runPlan(plan);
    ++out.evaluations;
    REV_ASSERT(current.verdict == Verdict::Escape,
               "shrinkEscape called on a plan that does not escape");

    const auto try_candidate = [&](InjectionPlan candidate) {
        if (out.evaluations >= max_evals)
            return false;
        const InjectionResult r = campaign.runPlan(candidate);
        ++out.evaluations;
        if (r.verdict != Verdict::Escape)
            return false;
        plan = std::move(candidate);
        current = r;
        return true;
    };

    // Move 1: a jittered flip is just a code flip with extra machinery;
    // drop to the simplest phase that still escapes.
    if (plan.klass == InjectionClass::TimingJitter &&
        plan.phase != JitterPhase::MidBlock) {
        InjectionPlan c = plan;
        c.phase = JitterPhase::MidBlock;
        c.watchPc = 0;
        try_candidate(std::move(c));
    }

    // Move 2: halve the payload (keep the leading bytes) while the
    // escape survives. CfgRewire payloads are a fixed-width immediate
    // and cannot shrink.
    if (plan.klass != InjectionClass::CfgRewire) {
        while (plan.payload.size() > 1) {
            InjectionPlan c = plan;
            c.payload.resize((c.payload.size() + 1) / 2);
            if (!try_candidate(std::move(c)))
                break;
        }
    }

    // Move 3: minimal firing index — binary search the earliest point
    // in the committed stream where the escape still reproduces.
    u64 lo = 1, hi = plan.fireIndex;
    while (lo < hi && out.evaluations < max_evals) {
        const u64 mid = lo + (hi - lo) / 2;
        InjectionPlan c = plan;
        c.fireIndex = mid;
        if (try_candidate(std::move(c)))
            hi = mid;
        else
            lo = mid + 1;
    }

    out.plan = plan;
    out.result = current;
    out.reproducerSeed = planFingerprint(plan);
    return out;
}

} // namespace rev::redteam
