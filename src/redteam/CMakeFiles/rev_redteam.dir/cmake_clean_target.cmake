file(REMOVE_RECURSE
  "librev_redteam.a"
)
