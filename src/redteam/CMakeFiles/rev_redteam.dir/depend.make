# Empty dependencies file for rev_redteam.
# This may be replaced when dependencies are built.
