file(REMOVE_RECURSE
  "CMakeFiles/rev_redteam.dir/campaign.cpp.o"
  "CMakeFiles/rev_redteam.dir/campaign.cpp.o.d"
  "CMakeFiles/rev_redteam.dir/corpus.cpp.o"
  "CMakeFiles/rev_redteam.dir/corpus.cpp.o.d"
  "CMakeFiles/rev_redteam.dir/oracle.cpp.o"
  "CMakeFiles/rev_redteam.dir/oracle.cpp.o.d"
  "CMakeFiles/rev_redteam.dir/plan.cpp.o"
  "CMakeFiles/rev_redteam.dir/plan.cpp.o.d"
  "CMakeFiles/rev_redteam.dir/shrink.cpp.o"
  "CMakeFiles/rev_redteam.dir/shrink.cpp.o.d"
  "librev_redteam.a"
  "librev_redteam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_redteam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
