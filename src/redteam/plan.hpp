/**
 * @file
 * Campaign specifications and injection plans.
 *
 * A campaign is described by a CampaignSpec (seed, size, axes); the
 * engine expands it into concrete InjectionPlans — one per tampering
 * attempt, carrying every parameter explicitly (class, workload, mode,
 * timing variant, firing point, target address, payload bytes) so a plan
 * serialized to JSON is a self-contained reproducer: feed it back through
 * the oracle and the exact same simulation runs.
 *
 * The JSON codec here is deliberately tiny and hand-rolled (the repo has
 * no JSON dependency): a flat object per plan, hex strings for addresses
 * and payloads. planFromJson/specFromJson are total — arbitrary input
 * yields false, never a crash — and round-trip losslessly (fuzzed in
 * tests/fuzz/campaign_codec_fuzz_test.cpp).
 */

#ifndef REV_REDTEAM_PLAN_HPP
#define REV_REDTEAM_PLAN_HPP

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sig/mode.hpp"
#include "validate/validator.hpp"

namespace rev::redteam
{

/**
 * The six machine-generated tampering classes of the campaign engine,
 * plus the no-op calibration class (hook fires, writes nothing) used by
 * the oracle tests.
 */
enum class InjectionClass : u8
{
    CodeFlip,     ///< flip bytes of an executed instruction
    SigCorrupt,   ///< corrupt encrypted signature-table bytes in RAM
    CfgRewire,    ///< re-encode a direct branch to a different target
    RetSmash,     ///< overwrite the return-address slot before a RET
    DmaWrite,     ///< DMA-style burst write over the code region
    TimingJitter, ///< code flip fired at a jittered phase around a block
    NoOp,         ///< fires but writes nothing (must classify Benign)
};

/** The classes a default campaign sweeps (everything but NoOp). */
inline constexpr InjectionClass kCampaignClasses[] = {
    InjectionClass::CodeFlip,   InjectionClass::SigCorrupt,
    InjectionClass::CfgRewire,  InjectionClass::RetSmash,
    InjectionClass::DmaWrite,   InjectionClass::TimingJitter,
};

const char *injectionClassName(InjectionClass c);

/** Parse a class name; false on an unknown string. */
bool injectionClassFromName(const std::string &name, InjectionClass *out);

/**
 * Firing phase of a TimingJitter injection relative to the watched
 * block's dynamic execution: before its first instruction is fetched,
 * somewhere mid-stream, or after its terminator committed (testing the
 * continuous-validation claim — an already-validated block must be
 * re-validated when it executes again).
 */
enum class JitterPhase : u8
{
    PreFetch,
    MidBlock,
    PostCommit,
};

const char *jitterPhaseName(JitterPhase p);

/** One concrete tampering attempt. */
struct InjectionPlan
{
    u64 id = 0;   ///< ordinal within the campaign
    u64 seed = 0; ///< per-plan PRNG seed (derived from the campaign seed)
    InjectionClass klass = InjectionClass::NoOp;
    std::string workload; ///< campaign workload name
    sig::ValidationMode mode = sig::ValidationMode::Full;
    std::string timing; ///< timing-variant name

    /** Committed-instruction index the injection fires at/after. */
    u64 fireIndex = 0;

    /** Absolute address tampered (0 for RetSmash: resolved from [sp]). */
    Addr targetAddr = 0;

    /** Bytes written at targetAddr (empty for RetSmash / NoOp). */
    std::vector<u8> payload;

    /** RetSmash: where the smashed return is redirected. */
    Addr redirectTarget = 0;

    /** TimingJitter: firing phase and the watched instruction. */
    JitterPhase phase = JitterPhase::PreFetch;
    Addr watchPc = 0;

    bool operator==(const InjectionPlan &) const = default;
};

/** How to run a campaign. */
struct CampaignSpec
{
    u64 seed = 1;
    u64 injections = 500;
    u64 instrBudget = 20'000; ///< committed instructions per run
    unsigned threads = 0;     ///< 0 = REV_BENCH_THREADS or all cores

    /**
     * Test-only: run everything without validation attached. Divergent
     * injections of detectable classes then surface as escapes — the
     * oracle's own regression check.
     */
    bool disableRev = false;

    /**
     * Validation backend the campaign targets. Verdicts consult this
     * backend's claimed-coverage matrix (validate/coverage.hpp), and its
     * mechanism taxonomy decides on/off-mechanism detections.
     */
    validate::Backend backend = validate::Backend::Rev;

    /** Axis subsets; empty = every campaign default. */
    std::vector<std::string> workloads;
    std::vector<std::string> timings;
    std::vector<InjectionClass> classes;

    /** The CI / acceptance campaign: ~500 injections, small budget. */
    static CampaignSpec quick(u64 seed);

    bool operator==(const CampaignSpec &) const = default;
};

/** Parse "full" / "aggressive" / "cfi-only"; false on anything else. */
bool modeFromName(const std::string &name, sig::ValidationMode *out);

// --- JSON codec ------------------------------------------------------------

std::string planToJson(const InjectionPlan &plan);
bool planFromJson(const std::string &json, InjectionPlan *out);

std::string specToJson(const CampaignSpec &spec);
bool specFromJson(const std::string &json, CampaignSpec *out);

/** FNV-1a over the canonical JSON: the stable reproducer id of a plan. */
u64 planFingerprint(const InjectionPlan &plan);

} // namespace rev::redteam

#endif // REV_REDTEAM_PLAN_HPP
