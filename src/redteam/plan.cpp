#include "redteam/plan.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace rev::redteam
{

const char *
injectionClassName(InjectionClass c)
{
    switch (c) {
      case InjectionClass::CodeFlip: return "code-flip";
      case InjectionClass::SigCorrupt: return "sig-corrupt";
      case InjectionClass::CfgRewire: return "cfg-rewire";
      case InjectionClass::RetSmash: return "ret-smash";
      case InjectionClass::DmaWrite: return "dma-write";
      case InjectionClass::TimingJitter: return "timing-jitter";
      case InjectionClass::NoOp: return "no-op";
    }
    return "?";
}

bool
injectionClassFromName(const std::string &name, InjectionClass *out)
{
    const InjectionClass all[] = {
        InjectionClass::CodeFlip,   InjectionClass::SigCorrupt,
        InjectionClass::CfgRewire,  InjectionClass::RetSmash,
        InjectionClass::DmaWrite,   InjectionClass::TimingJitter,
        InjectionClass::NoOp,
    };
    for (InjectionClass c : all) {
        if (name == injectionClassName(c)) {
            *out = c;
            return true;
        }
    }
    return false;
}

const char *
jitterPhaseName(JitterPhase p)
{
    switch (p) {
      case JitterPhase::PreFetch: return "pre-fetch";
      case JitterPhase::MidBlock: return "mid-block";
      case JitterPhase::PostCommit: return "post-commit";
    }
    return "?";
}

namespace
{

bool
jitterPhaseFromName(const std::string &name, JitterPhase *out)
{
    for (JitterPhase p : {JitterPhase::PreFetch, JitterPhase::MidBlock,
                          JitterPhase::PostCommit}) {
        if (name == jitterPhaseName(p)) {
            *out = p;
            return true;
        }
    }
    return false;
}

std::string
hexBytes(const std::vector<u8> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string s;
    s.reserve(bytes.size() * 2);
    for (u8 b : bytes) {
        s.push_back(digits[b >> 4]);
        s.push_back(digits[b & 15]);
    }
    return s;
}

bool
bytesFromHex(const std::string &s, std::vector<u8> *out)
{
    if (s.size() % 2)
        return false;
    out->clear();
    out->reserve(s.size() / 2);
    for (std::size_t i = 0; i < s.size(); i += 2) {
        unsigned v = 0;
        for (unsigned j = 0; j < 2; ++j) {
            const char c = s[i + j];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else
                return false;
        }
        out->push_back(static_cast<u8>(v));
    }
    return true;
}

std::string
hexAddr(Addr a)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(a));
    return buf;
}

/**
 * Minimal scanner over a flat JSON object: locates "key": and extracts
 * the raw value token. Total — malformed input just fails the lookup.
 */
class FlatJson
{
  public:
    explicit FlatJson(const std::string &text) : text_(text) {}

    bool
    number(const char *key, u64 *out) const
    {
        std::string raw;
        if (!rawValue(key, &raw) || raw.empty())
            return false;
        u64 v = 0;
        for (char c : raw) {
            if (c < '0' || c > '9')
                return false;
            if (v > (~u64{0} - static_cast<u64>(c - '0')) / 10)
                return false; // overflow
            v = v * 10 + static_cast<u64>(c - '0');
        }
        *out = v;
        return true;
    }

    bool
    hexNumber(const char *key, u64 *out) const
    {
        std::string raw;
        if (!string(key, &raw))
            return false;
        if (raw.size() < 3 || raw[0] != '0' || raw[1] != 'x')
            return false;
        u64 v = 0;
        for (std::size_t i = 2; i < raw.size(); ++i) {
            const char c = raw[i];
            unsigned d;
            if (c >= '0' && c <= '9')
                d = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                d = static_cast<unsigned>(c - 'a' + 10);
            else
                return false;
            if (v >> 60)
                return false; // overflow
            v = (v << 4) | d;
        }
        *out = v;
        return true;
    }

    bool
    boolean(const char *key, bool *out) const
    {
        std::string raw;
        if (!rawValue(key, &raw))
            return false;
        if (raw == "true") {
            *out = true;
            return true;
        }
        if (raw == "false") {
            *out = false;
            return true;
        }
        return false;
    }

    bool
    string(const char *key, std::string *out) const
    {
        std::size_t pos;
        if (!valueStart(key, &pos))
            return false;
        return readString(pos, out, nullptr);
    }

    /** Array of strings; false unless the value is exactly that shape. */
    bool
    stringArray(const char *key, std::vector<std::string> *out) const
    {
        std::size_t pos;
        if (!valueStart(key, &pos))
            return false;
        if (pos >= text_.size() || text_[pos] != '[')
            return false;
        ++pos;
        out->clear();
        while (true) {
            while (pos < text_.size() && std::isspace(
                       static_cast<unsigned char>(text_[pos])))
                ++pos;
            if (pos >= text_.size())
                return false;
            if (text_[pos] == ']')
                return true;
            std::string item;
            if (!readString(pos, &item, &pos))
                return false;
            out->push_back(std::move(item));
            while (pos < text_.size() && std::isspace(
                       static_cast<unsigned char>(text_[pos])))
                ++pos;
            if (pos < text_.size() && text_[pos] == ',')
                ++pos;
        }
    }

  private:
    /** Position just past `"key":` with whitespace skipped. */
    bool
    valueStart(const char *key, std::size_t *out) const
    {
        const std::string needle = std::string("\"") + key + "\"";
        std::size_t pos = 0;
        while ((pos = text_.find(needle, pos)) != std::string::npos) {
            std::size_t p = pos + needle.size();
            while (p < text_.size() && std::isspace(
                       static_cast<unsigned char>(text_[p])))
                ++p;
            if (p < text_.size() && text_[p] == ':') {
                ++p;
                while (p < text_.size() && std::isspace(
                           static_cast<unsigned char>(text_[p])))
                    ++p;
                *out = p;
                return true;
            }
            pos += 1; // quoted occurrence inside a value: keep looking
        }
        return false;
    }

    /** Raw unquoted token (number / true / false). */
    bool
    rawValue(const char *key, std::string *out) const
    {
        std::size_t pos;
        if (!valueStart(key, &pos))
            return false;
        std::size_t end = pos;
        while (end < text_.size() && text_[end] != ',' &&
               text_[end] != '}' && text_[end] != ']' &&
               !std::isspace(static_cast<unsigned char>(text_[end])))
            ++end;
        if (end == pos)
            return false;
        *out = text_.substr(pos, end - pos);
        return true;
    }

    /** Quoted string at @p pos (no escape support: the writer emits
     *  none). @p end, if given, receives the position past the quote. */
    bool
    readString(std::size_t pos, std::string *out, std::size_t *end) const
    {
        if (pos >= text_.size() || text_[pos] != '"')
            return false;
        const std::size_t close = text_.find('"', pos + 1);
        if (close == std::string::npos)
            return false;
        *out = text_.substr(pos + 1, close - pos - 1);
        if (end)
            *end = close + 1;
        return true;
    }

    const std::string &text_;
};

void
appendQuoted(std::string &out, const char *key, const std::string &value)
{
    out += '"';
    out += key;
    out += "\":\"";
    out += value;
    out += '"';
}

void
appendNumber(std::string &out, const char *key, u64 value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(value));
    out += '"';
    out += key;
    out += "\":";
    out += buf;
}

} // namespace

bool
modeFromName(const std::string &name, sig::ValidationMode *out)
{
    for (sig::ValidationMode m :
         {sig::ValidationMode::Full, sig::ValidationMode::Aggressive,
          sig::ValidationMode::CfiOnly}) {
        if (name == sig::modeName(m)) {
            *out = m;
            return true;
        }
    }
    return false;
}

std::string
planToJson(const InjectionPlan &plan)
{
    std::string s = "{";
    appendNumber(s, "id", plan.id);
    s += ',';
    appendNumber(s, "seed", plan.seed);
    s += ',';
    appendQuoted(s, "class", injectionClassName(plan.klass));
    s += ',';
    appendQuoted(s, "workload", plan.workload);
    s += ',';
    appendQuoted(s, "mode", sig::modeName(plan.mode));
    s += ',';
    appendQuoted(s, "timing", plan.timing);
    s += ',';
    appendNumber(s, "fire_index", plan.fireIndex);
    s += ',';
    appendQuoted(s, "target", hexAddr(plan.targetAddr));
    s += ',';
    appendQuoted(s, "payload", hexBytes(plan.payload));
    s += ',';
    appendQuoted(s, "redirect", hexAddr(plan.redirectTarget));
    s += ',';
    appendQuoted(s, "phase", jitterPhaseName(plan.phase));
    s += ',';
    appendQuoted(s, "watch", hexAddr(plan.watchPc));
    s += '}';
    return s;
}

bool
planFromJson(const std::string &json, InjectionPlan *out)
{
    const FlatJson j(json);
    InjectionPlan p;
    std::string klass, mode, payload, phase;
    u64 target = 0, redirect = 0, watch = 0;
    if (!j.number("id", &p.id) || !j.number("seed", &p.seed) ||
        !j.string("class", &klass) ||
        !j.string("workload", &p.workload) || !j.string("mode", &mode) ||
        !j.string("timing", &p.timing) ||
        !j.number("fire_index", &p.fireIndex) ||
        !j.hexNumber("target", &target) ||
        !j.string("payload", &payload) ||
        !j.hexNumber("redirect", &redirect) ||
        !j.string("phase", &phase) || !j.hexNumber("watch", &watch))
        return false;
    if (!injectionClassFromName(klass, &p.klass) ||
        !modeFromName(mode, &p.mode) ||
        !jitterPhaseFromName(phase, &p.phase) ||
        !bytesFromHex(payload, &p.payload))
        return false;
    p.targetAddr = target;
    p.redirectTarget = redirect;
    p.watchPc = watch;
    *out = std::move(p);
    return true;
}

std::string
specToJson(const CampaignSpec &spec)
{
    std::string s = "{";
    appendNumber(s, "seed", spec.seed);
    s += ',';
    appendNumber(s, "injections", spec.injections);
    s += ',';
    appendNumber(s, "instr_budget", spec.instrBudget);
    s += ',';
    appendNumber(s, "threads", spec.threads);
    s += ",\"disable_rev\":";
    s += spec.disableRev ? "true" : "false";
    // The backend field is omitted for the default (Rev) so pre-framework
    // spec JSON remains byte-identical.
    if (spec.backend != validate::Backend::Rev) {
        s += ',';
        appendQuoted(s, "backend", validate::backendName(spec.backend));
    }
    auto append_list = [&s](const char *key,
                            const std::vector<std::string> &items) {
        s += ",\"";
        s += key;
        s += "\":[";
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i)
                s += ',';
            s += '"';
            s += items[i];
            s += '"';
        }
        s += ']';
    };
    append_list("workloads", spec.workloads);
    append_list("timings", spec.timings);
    std::vector<std::string> classes;
    for (InjectionClass c : spec.classes)
        classes.push_back(injectionClassName(c));
    append_list("classes", classes);
    s += '}';
    return s;
}

bool
specFromJson(const std::string &json, CampaignSpec *out)
{
    const FlatJson j(json);
    CampaignSpec s;
    u64 threads = 0;
    std::vector<std::string> classes;
    if (!j.number("seed", &s.seed) ||
        !j.number("injections", &s.injections) ||
        !j.number("instr_budget", &s.instrBudget) ||
        !j.number("threads", &threads) ||
        !j.boolean("disable_rev", &s.disableRev) ||
        !j.stringArray("workloads", &s.workloads) ||
        !j.stringArray("timings", &s.timings) ||
        !j.stringArray("classes", &classes))
        return false;
    if (threads > ~0u)
        return false;
    s.threads = static_cast<unsigned>(threads);
    std::string backend;
    if (j.string("backend", &backend) &&
        !validate::backendFromName(backend, &s.backend))
        return false;
    for (const std::string &name : classes) {
        InjectionClass c;
        if (!injectionClassFromName(name, &c))
            return false;
        s.classes.push_back(c);
    }
    *out = std::move(s);
    return true;
}

CampaignSpec
CampaignSpec::quick(u64 seed)
{
    CampaignSpec s;
    s.seed = seed;
    s.injections = 500;
    s.instrBudget = 20'000;
    return s;
}

u64
planFingerprint(const InjectionPlan &plan)
{
    const std::string json = planToJson(plan);
    u64 h = 0xcbf29ce484222325ULL;
    for (char c : json) {
        h ^= static_cast<u8>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace rev::redteam
