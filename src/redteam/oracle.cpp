#include "redteam/oracle.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "attacks/injector.hpp"
#include "common/logging.hpp"
#include "isa/codec.hpp"
#include "sig/table.hpp"
#include "workloads/generator.hpp"
#include "workloads/scheduler.hpp"

namespace rev::redteam
{

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Detected: return "detected";
      case Verdict::Crashed: return "crashed";
      case Verdict::Benign: return "benign";
      case Verdict::Blind: return "blind";
      case Verdict::Escape: return "escape";
    }
    return "?";
}

attacks::TamperClass
tamperClassOf(InjectionClass c)
{
    using attacks::TamperClass;
    switch (c) {
      case InjectionClass::CodeFlip:
      case InjectionClass::CfgRewire:
      case InjectionClass::DmaWrite:
      case InjectionClass::TimingJitter:
        // All four rewrite signed code bytes in place; the control-flow
        // *shape* REV models (block boundaries, signed edges) is only
        // changed through those bytes, which is exactly what the hash
        // covers — and what CFI-only validation cannot see.
        return TamperClass::CodeSubstitution;
      case InjectionClass::RetSmash:
        return TamperClass::ControlFlowHijack;
      case InjectionClass::SigCorrupt:
        return TamperClass::SignatureTamper;
      case InjectionClass::NoOp:
        break;
    }
    return TamperClass::CodeSubstitution; // NoOp: unused, see below
}

bool
classDetectableIn(InjectionClass c, sig::ValidationMode mode,
                  validate::Backend backend)
{
    if (c == InjectionClass::NoOp)
        return false;
    return validate::backendClaims(backend, tamperClassOf(c), mode);
}

bool
mechanismMatches(InjectionClass c, const std::string &reason,
                 validate::Backend backend)
{
    const auto has = [&](const char *s) {
        return reason.find(s) != std::string::npos;
    };
    if (backend == validate::Backend::LoFat) {
        // LO-FAT has exactly three mechanisms: the attested-CFG lookup
        // missing (tampered terminator bytes decode to a block shape the
        // attestation never signed), an edge absent from the attested
        // CFG, and a return to a non-return-site. Code tampering can
        // cascade into any of them (a flipped branch immediate is an
        // edge violation; a flipped opcode shifts the block boundary).
        switch (c) {
          case InjectionClass::CodeFlip:
          case InjectionClass::CfgRewire:
          case InjectionClass::DmaWrite:
          case InjectionClass::TimingJitter:
          case InjectionClass::SigCorrupt:
          case InjectionClass::RetSmash:
            return has("unattested code") ||
                   has("absent from attested CFG") ||
                   has("not an attested return site");
          case InjectionClass::NoOp:
            break;
        }
        return false;
    }
    // Primary mechanisms per class, plus the cascades a tamper can
    // legitimately trigger (e.g. a code flip that corrupts a stack-
    // pointer adjustment derails the next return). The shadow-stack
    // reasons are excluded for everything but RetSmash: the campaign
    // configuration uses delayed-predecessor return validation, and for
    // code tampering they would indicate a misattributed detection.
    switch (c) {
      case InjectionClass::CodeFlip:
      case InjectionClass::CfgRewire:
      case InjectionClass::DmaWrite:
      case InjectionClass::TimingJitter:
      case InjectionClass::SigCorrupt:
        return has("basic-block hash mismatch") ||
               has("no reference signature") || has("illegal transfer") ||
               has("return from");
      case InjectionClass::RetSmash:
        return has("illegal transfer") || has("return from") ||
               has("return to") || has("shadow stack") ||
               has("no reference signature") ||
               has("basic-block hash mismatch");
      case InjectionClass::NoOp:
        break;
    }
    return false;
}

core::SimConfig
campaignSimConfig(const CampaignSpec &spec, sig::ValidationMode mode,
                  const TimingVariant &timing)
{
    core::SimConfig cfg;
    cfg.mode = mode;
    cfg.withRev = !spec.disableRev;
    cfg.backend = spec.backend;
    cfg.core.maxInstrs = spec.instrBudget;
    // Wrong-path fetch reads bytes the architectural run never executes;
    // an architecturally inert tamper would perturb I-side statistics
    // through it and fake a divergence. The oracle compares against
    // goldens, so both sides run without it.
    cfg.core.modelWrongPath = false;
    cfg.rev.sc.sizeBytes = timing.scSizeBytes;
    // The LO-FAT backend has no SC; the timing axis scales its on-chip
    // measurement buffer by the same SRAM budget instead (the default
    // 32 KiB variant lands exactly on the default 64 entries).
    cfg.lofat.bufferEntries =
        std::max<u64>(16, timing.scSizeBytes / 512);
    return cfg;
}

namespace
{

/** The one statistic legitimately perturbed by architecturally inert
 *  tampering: the CHG hash memo recompute counter (tamperCode drops the
 *  memo, so untouched blocks re-hash without any simulated effect). */
constexpr const char *kExcludedStat = "sim.chg.blocks_hashed";

bool
statsEqual(const stats::StatSet &a, const stats::StatSet &b)
{
    const auto &ra = a.rows();
    const auto &rb = b.rows();
    if (ra.size() != rb.size())
        return false;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        if (ra[i].first != rb[i].first)
            return false;
        if (ra[i].first == kExcludedStat)
            continue;
        if (ra[i].second != rb[i].second)
            return false;
    }
    return true;
}

bool
runEqual(const core::SimResult &a, const core::SimResult &b)
{
    const cpu::RunResult &x = a.run;
    const cpu::RunResult &y = b.run;
    return x.cycles == y.cycles && x.instrs == y.instrs &&
           x.committedBranches == y.committedBranches &&
           x.uniqueBranches == y.uniqueBranches &&
           x.mispredicts == y.mispredicts && x.loads == y.loads &&
           x.stores == y.stores && x.interrupts == y.interrupts &&
           x.wrongPathFetches == y.wrongPathFetches &&
           x.halted == y.halted &&
           a.scFillAccesses == b.scFillAccesses &&
           a.scFillL1Misses == b.scFillL1Misses &&
           a.scFillL2Misses == b.scFillL2Misses;
}

/**
 * Compare final functional memory, ignoring (a) the signature-table
 * region — its content is mode-specific and REV-internal — and (b) the
 * byte ranges the injector itself dirtied (a tamper that was never
 * re-fetched leaves its bytes behind without any architectural effect).
 */
bool
memoryEqual(const SparseMemory &a, const SparseMemory &b,
            const std::vector<std::pair<Addr, u64>> &masked)
{
    constexpr u64 kPageSize = SparseMemory::kPageSize;
    const u64 sig_page = sig::kSigTableRegion >> SparseMemory::kPageShift;

    std::vector<u64> pages;
    a.forEachPage([&](u64 p, const u8 *) { pages.push_back(p); });
    b.forEachPage([&](u64 p, const u8 *) { pages.push_back(p); });
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

    std::vector<u8> bufA(kPageSize), bufB(kPageSize);
    for (u64 p : pages) {
        if (p >= sig_page)
            continue;
        const Addr base = p << SparseMemory::kPageShift;
        a.readBytes(base, bufA.data(), kPageSize);
        b.readBytes(base, bufB.data(), kPageSize);
        for (const auto &[addr, len] : masked) {
            if (addr + len <= base || addr >= base + kPageSize)
                continue;
            const u64 lo = std::max<u64>(addr, base) - base;
            const u64 hi = std::min<u64>(addr + len, base + kPageSize) - base;
            std::memset(bufA.data() + lo, 0, hi - lo);
            std::memset(bufB.data() + lo, 0, hi - lo);
        }
        if (std::memcmp(bufA.data(), bufB.data(), kPageSize) != 0)
            return false;
    }
    return true;
}

} // namespace

std::unique_ptr<WorkloadContext>
buildWorkloadContext(const workloads::WorkloadProfile &profile,
                     const CampaignSpec &spec,
                     const std::vector<sig::ValidationMode> &modes,
                     const TimingVariant &record_timing)
{
    REV_ASSERT(!modes.empty(), "campaign needs at least one mode");
    auto ctx = std::make_unique<WorkloadContext>();
    ctx->name = profile.name;
    ctx->program = workloads::buildProgram(profile);

    const core::SimConfig probe =
        campaignSimConfig(spec, modes.front(), record_timing);

    // One signature-table build per mode; the first build donates its
    // CFGs and block hashes to the rest (mode-independent, and the
    // dominant build cost). Mirrors the benchmark sweep's prototype
    // sharing; the Simulator clones these instead of rebuilding.
    if (!spec.disableRev) {
        ctx->vault = std::make_unique<crypto::KeyVault>(probe.cpuSeed);
        for (sig::ValidationMode mode : modes) {
            const sig::SigStore *donor =
                ctx->protos.empty() ? nullptr
                                    : ctx->protos.begin()->second.get();
            ctx->protos[mode] = std::make_unique<sig::SigStore>(
                ctx->program, mode, *ctx->vault, probe.toolchainSeed,
                probe.core.splitLimits, probe.rev.chg.hashRounds, donor);
        }
    }

    // Golden record run: REV attached (its store-drain watermark
    // dominates, see program/trace.hpp), trace recorded, executed pcs
    // collected through a pre-step hook.
    core::SimConfig cfg = probe;
    if (!spec.disableRev)
        cfg.sigStorePrototype = ctx->protos.at(modes.front()).get();
    prog::TraceRecorder recorder;
    if (!spec.disableRev)
        cfg.traceRecorder = &recorder;
    core::Simulator sim(ctx->program, cfg);
    // Every committed-stream position per executed pc (ascending by
    // construction): feeds the executed-site map, the quiescence maps,
    // and the pc-gated hook resolution of provablyBenignResult().
    std::unordered_map<Addr, std::vector<u64>> exec_pos;
    sim.core().setPreStepHook(
        [&exec_pos](u64 idx, Addr pc) { exec_pos[pc].push_back(idx); });
    const core::SimResult r = sim.run();
    REV_ASSERT(!r.run.violation,
               "campaign golden run raised a violation: " +
                   r.run.violation->reason);

    ctx->goldenMemory = sim.memory().clone();
    ctx->goldenInstrs = r.run.instrs;
    if (!spec.disableRev)
        ctx->trace = recorder.take();
    ctx->goldens[{modes.front(), record_timing.name}] =
        GoldenRun{sim.stats(), r};

    // Executed-site map: every committed pc inside the main module's
    // code, decoded from the pristine image. Plans draw flip targets,
    // rewirable direct branches, and return-redirect addresses from it.
    std::vector<Addr> sorted;
    sorted.reserve(exec_pos.size());
    for (const auto &[pc, positions] : exec_pos)
        sorted.push_back(pc);
    std::sort(sorted.begin(), sorted.end());
    std::vector<Addr> call_fallthroughs;
    for (Addr pc : sorted) {
        const prog::Module *mod = ctx->program.findModule(pc);
        if (!mod || !mod->containsCode(pc))
            continue;
        const std::size_t off = static_cast<std::size_t>(pc - mod->base);
        const auto ins =
            isa::decode(mod->image.data() + off, mod->codeSize - off);
        if (!ins)
            continue;
        ExecSite site{pc, static_cast<u8>(ins->length()), ins->klass()};
        if (site.klass == isa::InstrClass::Call ||
            site.klass == isa::InstrClass::CallIndirect)
            call_fallthroughs.push_back(pc + site.len);
        ctx->sites.push_back(site);
    }
    REV_ASSERT(!ctx->sites.empty(), "campaign workload executed no code");
    std::sort(call_fallthroughs.begin(), call_fallthroughs.end());
    for (std::size_t i = 0; i < ctx->sites.size(); ++i) {
        const ExecSite &s = ctx->sites[i];
        if (s.klass == isa::InstrClass::Branch ||
            s.klass == isa::InstrClass::Jump ||
            s.klass == isa::InstrClass::Call)
            ctx->branchSites.push_back(i);
        // A pc that is not any call's fall-through can never be a legal
        // return site, so a return smashed to it must trip validation.
        if (!std::binary_search(call_fallthroughs.begin(),
                                call_fallthroughs.end(), s.pc))
            ctx->retRedirects.push_back(s.pc);
    }

    // Quiescence maps (see the WorkloadContext docs). The exec map marks
    // each executed instruction's own byte span with its last stream
    // position. The hash map additionally spreads each block entry over
    // the block's whole [start, end) span — the CHG digests exactly that
    // span whenever the block is fetched — marked through the end of the
    // digest's consumption window: the staged lane request snapshots the
    // block bytes no later than the terminator's commit (position entry
    // + numInstrs - 1), so a tamper at any position <= that can still be
    // read by the in-flight digest and must not be treated as quiescent.
    {
        const prog::Module &mm = ctx->program.main();
        ctx->quiescenceBase = mm.base;
        ctx->quiescenceExec.assign(mm.codeSize, 0);
        for (const ExecSite &s : ctx->sites) {
            if (s.pc < mm.base || s.pc + s.len > mm.base + mm.codeSize)
                continue;
            const u64 idx = exec_pos.at(s.pc).back();
            for (u64 b = s.pc - mm.base; b < s.pc - mm.base + s.len; ++b)
                ctx->quiescenceExec[b] =
                    std::max(ctx->quiescenceExec[b], idx);
        }
        ctx->quiescenceHash = ctx->quiescenceExec;
        if (!spec.disableRev) {
            for (const sig::ModuleSig &ms :
                 ctx->protos.at(modes.front())->moduleSigs()) {
                if (ms.module->base != mm.base)
                    continue;
                for (const prog::BasicBlock &bb : ms.cfg.blocks()) {
                    const auto it = exec_pos.find(bb.start);
                    if (it == exec_pos.end())
                        continue; // block never entered, never digested
                    const u64 mark = it->second.back() + bb.numInstrs;
                    const Addr lo = std::max(bb.start, mm.base);
                    const Addr hi =
                        std::min(bb.end, mm.base + mm.codeSize);
                    for (Addr a = lo; a < hi; ++a)
                        ctx->quiescenceHash[a - mm.base] = std::max(
                            ctx->quiescenceHash[a - mm.base], mark);
                }
            }
        }
    }
    ctx->execPositions = std::move(exec_pos);
    return ctx;
}

std::optional<InjectionResult>
provablyBenignResult(const WorkloadContext &ctx, const CampaignSpec &spec,
                     const InjectionPlan &plan)
{
    InjectionResult res;
    res.planId = plan.id;
    res.verdict = Verdict::Benign;

    // Resolve the hook's firing position against the golden stream. Up
    // to that position the armed run is untampered and therefore
    // bit-identical to golden, so the golden stream IS the armed run's
    // stream — no firing position means the hook provably never fires.
    std::optional<u64> fire_pos;
    switch (plan.klass) {
      case InjectionClass::NoOp:
      case InjectionClass::CodeFlip:
      case InjectionClass::CfgRewire:
      case InjectionClass::DmaWrite:
        // onceAtIndex fires iff the stream reaches the fire index.
        if (plan.fireIndex < ctx.goldenInstrs)
            fire_pos = plan.fireIndex;
        break;
      case InjectionClass::TimingJitter:
        if (plan.phase == JitterPhase::MidBlock) {
            if (plan.fireIndex < ctx.goldenInstrs)
                fire_pos = plan.fireIndex;
            break;
        }
        // PreFetch / PostCommit gate on watchPc: the hook arms at the
        // first golden execution of watchPc at position >= fireIndex.
        {
            const auto it = ctx.execPositions.find(plan.watchPc);
            if (it == ctx.execPositions.end())
                break;
            const std::vector<u64> &pos = it->second;
            const auto lb =
                std::lower_bound(pos.begin(), pos.end(), plan.fireIndex);
            if (lb == pos.end())
                break;
            if (plan.phase == JitterPhase::PreFetch)
                fire_pos = *lb; // flips before watchPc executes
            // PostCommit flips one pre-step after the arming one — which
            // never comes if the arming instruction ends the stream.
            else if (*lb + 1 < ctx.goldenInstrs)
                fire_pos = *lb + 1;
            break;
        }
      case InjectionClass::SigCorrupt:
      case InjectionClass::RetSmash:
        // Whether a corrupted table record is ever re-walked (or a
        // smashed slot popped into a violation) is timing-dependent;
        // not provable from the recorded stream alone.
        return std::nullopt;
    }

    if (!fire_pos)
        return res; // never fires: the run is the untampered golden run
    res.fired = true;
    if (plan.klass == InjectionClass::NoOp)
        return res; // fires but tampers nothing

    // CFI-only never digests code bytes under the REV validator, so only
    // re-execution matters there. The LO-FAT backend digests every fetched
    // block regardless of the mode axis, so it always needs the hash map.
    const bool hashes_code =
        !spec.disableRev && (spec.backend != validate::Backend::Rev ||
                             plan.mode != sig::ValidationMode::CfiOnly);
    const std::vector<u64> &q =
        hashes_code ? ctx.quiescenceHash : ctx.quiescenceExec;
    if (q.empty() || plan.payload.empty())
        return std::nullopt;
    if (plan.targetAddr < ctx.quiescenceBase)
        return std::nullopt;
    const u64 off = plan.targetAddr - ctx.quiescenceBase;
    if (off + plan.payload.size() > q.size())
        return std::nullopt;
    for (u64 i = 0; i < plan.payload.size(); ++i)
        if (q[off + i] >= *fire_pos)
            return std::nullopt;
    return res;
}

void
addGolden(WorkloadContext &ctx, const CampaignSpec &spec,
          sig::ValidationMode mode, const TimingVariant &timing)
{
    if (ctx.goldens.count({mode, timing.name}))
        return;
    core::SimConfig cfg = campaignSimConfig(spec, mode, timing);
    if (!spec.disableRev)
        cfg.sigStorePrototype = ctx.protos.at(mode).get();
    if (!spec.disableRev && prog::replayEnabledFromEnv() &&
        ctx.trace.replayable())
        cfg.replayTrace = &ctx.trace;
    core::Simulator sim(ctx.program, cfg);
    const core::SimResult r = sim.run();
    REV_ASSERT(!r.run.violation,
               "campaign golden run raised a violation: " +
                   r.run.violation->reason);
    ctx.goldens[{mode, timing.name}] = GoldenRun{sim.stats(), r};
}

namespace
{

/** What the armed hooks record while the injected run executes. */
struct FireState
{
    bool fired = false;
    Cycle fireCycle = 0;
    std::vector<std::pair<Addr, u64>> dirtied;
};

/** Install @p plan's tamper hook on @p sim. Every hook fires at
 *  committed index >= plan.fireIndex, which is what makes forking the
 *  machine at exactly that index equivalent to a cold run. @p st must
 *  outlive the run. */
void
armPlan(core::Simulator &sim, const InjectionPlan &plan, FireState &st)
{
    namespace inject = attacks::inject;

    const auto stamp = [&st](core::Simulator &s) {
        st.fireCycle = s.core().lastCommitCycle();
    };
    const auto flip = [&st, &plan, stamp](core::Simulator &s) {
        stamp(s);
        inject::tamperCode(s, plan.targetAddr, plan.payload);
        st.dirtied.emplace_back(plan.targetAddr, plan.payload.size());
    };

    switch (plan.klass) {
      case InjectionClass::NoOp:
        inject::onceAtIndex(sim, plan.fireIndex, stamp, st.fired);
        break;
      case InjectionClass::CodeFlip:
      case InjectionClass::CfgRewire:
      case InjectionClass::DmaWrite:
        inject::onceAtIndex(sim, plan.fireIndex, flip, st.fired);
        break;
      case InjectionClass::SigCorrupt:
        // Straight into simulated RAM: the signature tables are data to
        // the memory system, there is no decode/hash memo to drop.
        inject::onceAtIndex(
            sim, plan.fireIndex,
            [&st, &plan, stamp](core::Simulator &s) {
                stamp(s);
                s.memory().writeBytes(plan.targetAddr, plan.payload.data(),
                                      plan.payload.size());
                st.dirtied.emplace_back(plan.targetAddr,
                                        plan.payload.size());
            },
            st.fired);
        break;
      case InjectionClass::RetSmash:
        inject::onceAtReturn(
            sim, plan.fireIndex,
            [&st, &plan, stamp](core::Simulator &s) {
                stamp(s);
                st.dirtied.emplace_back(
                    s.core().machine().reg(isa::kRegSp), 8);
                inject::smashReturnAddress(s, plan.redirectTarget);
            },
            st.fired);
        break;
      case InjectionClass::TimingJitter:
        switch (plan.phase) {
          case JitterPhase::PreFetch:
            inject::onceAtPc(sim, plan.watchPc, plan.fireIndex, flip,
                             st.fired);
            break;
          case JitterPhase::MidBlock:
            inject::onceAtIndex(sim, plan.fireIndex, flip, st.fired);
            break;
          case JitterPhase::PostCommit: {
            // Arm when the watched pc is about to execute, fire right
            // after it committed: the block was just validated, the flip
            // must still be caught on its next execution (the paper's
            // continuous-validation property).
            sim.core().setPreStepHook([&st, &plan, &sim, flip,
                                       armed = false](u64 idx,
                                                      Addr pc) mutable {
                if (st.fired)
                    return;
                if (!armed) {
                    armed = idx >= plan.fireIndex && pc == plan.watchPc;
                    return;
                }
                st.fired = true;
                flip(sim);
            });
            break;
          }
        }
        break;
    }
}

/** Arm @p plan on @p sim, run to completion, classify against the
 *  golden. Shared tail of the cold and snapshot-forked paths. */
InjectionResult
runArmed(const WorkloadContext &ctx, const CampaignSpec &spec,
         const InjectionPlan &plan, const TimingVariant &timing,
         core::Simulator &sim)
{
    InjectionResult res;
    res.planId = plan.id;

    FireState st;
    armPlan(sim, plan, st);
    const core::SimResult r = sim.run();
    res.fired = st.fired;

    if (r.run.violation) {
        res.reason = r.run.violation->reason;
        if (res.reason == "undecodable instruction bytes") {
            res.verdict = Verdict::Crashed;
        } else if (!st.fired) {
            // A violation without any tamper means the harness itself is
            // broken; surface it as loudly as an escape.
            res.verdict = Verdict::Escape;
        } else {
            res.verdict = Verdict::Detected;
            res.mechanismMatch =
                mechanismMatches(plan.klass, res.reason, spec.backend);
            res.latencyCycles = r.run.violation->cycle - st.fireCycle;
        }
        return res;
    }

    const GoldenRun &golden = ctx.goldens.at({plan.mode, timing.name});
    const bool identical = runEqual(r, golden.result) &&
                           statsEqual(sim.stats(), golden.stats) &&
                           memoryEqual(sim.memory(), ctx.goldenMemory,
                                       st.dirtied);
    if (identical)
        res.verdict = Verdict::Benign;
    else if (!spec.disableRev &&
             !classDetectableIn(plan.klass, plan.mode, spec.backend))
        res.verdict = Verdict::Blind;
    else
        res.verdict = Verdict::Escape;
    return res;
}

} // namespace

InjectionResult
runInjection(const WorkloadContext &ctx, const CampaignSpec &spec,
             const InjectionPlan &plan, const TimingVariant &timing)
{
    REV_ASSERT(timing.name == plan.timing, "plan/timing variant mismatch");

    core::SimConfig cfg = campaignSimConfig(spec, plan.mode, timing);
    if (!spec.disableRev)
        cfg.sigStorePrototype = ctx.protos.at(plan.mode).get();
    core::Simulator sim(ctx.program, cfg);
    return runArmed(ctx, spec, plan, timing, sim);
}

InjectionResult
runInjectionFromSnapshot(const WorkloadContext &ctx,
                         const CampaignSpec &spec, const InjectionPlan &plan,
                         const TimingVariant &timing,
                         const core::Snapshot &snap)
{
    REV_ASSERT(timing.name == plan.timing, "plan/timing variant mismatch");
    REV_ASSERT(snap.instrIndex == plan.fireIndex,
               "snapshot captured at a different index than the plan fires");

    const std::unique_ptr<core::Simulator> sim =
        core::Simulator::forkFrom(snap);
    return runArmed(ctx, spec, plan, timing, *sim);
}

} // namespace rev::redteam
