#include "redteam/oracle.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "attacks/injector.hpp"
#include "common/logging.hpp"
#include "isa/codec.hpp"
#include "sig/table.hpp"
#include "workloads/generator.hpp"

namespace rev::redteam
{

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Detected: return "detected";
      case Verdict::Crashed: return "crashed";
      case Verdict::Benign: return "benign";
      case Verdict::Blind: return "blind";
      case Verdict::Escape: return "escape";
    }
    return "?";
}

attacks::TamperClass
tamperClassOf(InjectionClass c)
{
    using attacks::TamperClass;
    switch (c) {
      case InjectionClass::CodeFlip:
      case InjectionClass::CfgRewire:
      case InjectionClass::DmaWrite:
      case InjectionClass::TimingJitter:
        // All four rewrite signed code bytes in place; the control-flow
        // *shape* REV models (block boundaries, signed edges) is only
        // changed through those bytes, which is exactly what the hash
        // covers — and what CFI-only validation cannot see.
        return TamperClass::CodeSubstitution;
      case InjectionClass::RetSmash:
        return TamperClass::ControlFlowHijack;
      case InjectionClass::SigCorrupt:
        return TamperClass::SignatureTamper;
      case InjectionClass::NoOp:
        break;
    }
    return TamperClass::CodeSubstitution; // NoOp: unused, see below
}

bool
classDetectableIn(InjectionClass c, sig::ValidationMode mode,
                  validate::Backend backend)
{
    if (c == InjectionClass::NoOp)
        return false;
    return validate::backendClaims(backend, tamperClassOf(c), mode);
}

bool
mechanismMatches(InjectionClass c, const std::string &reason,
                 validate::Backend backend)
{
    const auto has = [&](const char *s) {
        return reason.find(s) != std::string::npos;
    };
    if (backend == validate::Backend::LoFat) {
        // LO-FAT has exactly three mechanisms: the attested-CFG lookup
        // missing (tampered terminator bytes decode to a block shape the
        // attestation never signed), an edge absent from the attested
        // CFG, and a return to a non-return-site. Code tampering can
        // cascade into any of them (a flipped branch immediate is an
        // edge violation; a flipped opcode shifts the block boundary).
        switch (c) {
          case InjectionClass::CodeFlip:
          case InjectionClass::CfgRewire:
          case InjectionClass::DmaWrite:
          case InjectionClass::TimingJitter:
          case InjectionClass::SigCorrupt:
          case InjectionClass::RetSmash:
            return has("unattested code") ||
                   has("absent from attested CFG") ||
                   has("not an attested return site");
          case InjectionClass::NoOp:
            break;
        }
        return false;
    }
    // Primary mechanisms per class, plus the cascades a tamper can
    // legitimately trigger (e.g. a code flip that corrupts a stack-
    // pointer adjustment derails the next return). The shadow-stack
    // reasons are excluded for everything but RetSmash: the campaign
    // configuration uses delayed-predecessor return validation, and for
    // code tampering they would indicate a misattributed detection.
    switch (c) {
      case InjectionClass::CodeFlip:
      case InjectionClass::CfgRewire:
      case InjectionClass::DmaWrite:
      case InjectionClass::TimingJitter:
      case InjectionClass::SigCorrupt:
        return has("basic-block hash mismatch") ||
               has("no reference signature") || has("illegal transfer") ||
               has("return from");
      case InjectionClass::RetSmash:
        return has("illegal transfer") || has("return from") ||
               has("return to") || has("shadow stack") ||
               has("no reference signature") ||
               has("basic-block hash mismatch");
      case InjectionClass::NoOp:
        break;
    }
    return false;
}

core::SimConfig
campaignSimConfig(const CampaignSpec &spec, sig::ValidationMode mode,
                  const TimingVariant &timing)
{
    core::SimConfig cfg;
    cfg.mode = mode;
    cfg.withRev = !spec.disableRev;
    cfg.backend = spec.backend;
    cfg.core.maxInstrs = spec.instrBudget;
    // Wrong-path fetch reads bytes the architectural run never executes;
    // an architecturally inert tamper would perturb I-side statistics
    // through it and fake a divergence. The oracle compares against
    // goldens, so both sides run without it.
    cfg.core.modelWrongPath = false;
    cfg.rev.sc.sizeBytes = timing.scSizeBytes;
    // The LO-FAT backend has no SC; the timing axis scales its on-chip
    // measurement buffer by the same SRAM budget instead (the default
    // 32 KiB variant lands exactly on the default 64 entries).
    cfg.lofat.bufferEntries =
        std::max<u64>(16, timing.scSizeBytes / 512);
    return cfg;
}

namespace
{

/** The one statistic legitimately perturbed by architecturally inert
 *  tampering: the CHG hash memo recompute counter (tamperCode drops the
 *  memo, so untouched blocks re-hash without any simulated effect). */
constexpr const char *kExcludedStat = "sim.chg.blocks_hashed";

bool
statsEqual(const stats::StatSet &a, const stats::StatSet &b)
{
    const auto &ra = a.rows();
    const auto &rb = b.rows();
    if (ra.size() != rb.size())
        return false;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        if (ra[i].first != rb[i].first)
            return false;
        if (ra[i].first == kExcludedStat)
            continue;
        if (ra[i].second != rb[i].second)
            return false;
    }
    return true;
}

bool
runEqual(const core::SimResult &a, const core::SimResult &b)
{
    const cpu::RunResult &x = a.run;
    const cpu::RunResult &y = b.run;
    return x.cycles == y.cycles && x.instrs == y.instrs &&
           x.committedBranches == y.committedBranches &&
           x.uniqueBranches == y.uniqueBranches &&
           x.mispredicts == y.mispredicts && x.loads == y.loads &&
           x.stores == y.stores && x.interrupts == y.interrupts &&
           x.wrongPathFetches == y.wrongPathFetches &&
           x.halted == y.halted &&
           a.scFillAccesses == b.scFillAccesses &&
           a.scFillL1Misses == b.scFillL1Misses &&
           a.scFillL2Misses == b.scFillL2Misses;
}

/**
 * Compare final functional memory, ignoring (a) the signature-table
 * region — its content is mode-specific and REV-internal — and (b) the
 * byte ranges the injector itself dirtied (a tamper that was never
 * re-fetched leaves its bytes behind without any architectural effect).
 */
bool
memoryEqual(const SparseMemory &a, const SparseMemory &b,
            const std::vector<std::pair<Addr, u64>> &masked)
{
    constexpr u64 kPageSize = SparseMemory::kPageSize;
    const u64 sig_page = sig::kSigTableRegion >> SparseMemory::kPageShift;

    std::vector<u64> pages;
    a.forEachPage([&](u64 p, const u8 *) { pages.push_back(p); });
    b.forEachPage([&](u64 p, const u8 *) { pages.push_back(p); });
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

    std::vector<u8> bufA(kPageSize), bufB(kPageSize);
    for (u64 p : pages) {
        if (p >= sig_page)
            continue;
        const Addr base = p << SparseMemory::kPageShift;
        a.readBytes(base, bufA.data(), kPageSize);
        b.readBytes(base, bufB.data(), kPageSize);
        for (const auto &[addr, len] : masked) {
            if (addr + len <= base || addr >= base + kPageSize)
                continue;
            const u64 lo = std::max<u64>(addr, base) - base;
            const u64 hi = std::min<u64>(addr + len, base + kPageSize) - base;
            std::memset(bufA.data() + lo, 0, hi - lo);
            std::memset(bufB.data() + lo, 0, hi - lo);
        }
        if (std::memcmp(bufA.data(), bufB.data(), kPageSize) != 0)
            return false;
    }
    return true;
}

} // namespace

std::unique_ptr<WorkloadContext>
buildWorkloadContext(const workloads::WorkloadProfile &profile,
                     const CampaignSpec &spec,
                     const std::vector<sig::ValidationMode> &modes,
                     const TimingVariant &record_timing)
{
    REV_ASSERT(!modes.empty(), "campaign needs at least one mode");
    auto ctx = std::make_unique<WorkloadContext>();
    ctx->name = profile.name;
    ctx->program = workloads::generateWorkload(profile);

    const core::SimConfig probe =
        campaignSimConfig(spec, modes.front(), record_timing);

    // One signature-table build per mode; the first build donates its
    // CFGs and block hashes to the rest (mode-independent, and the
    // dominant build cost). Mirrors the benchmark sweep's prototype
    // sharing; the Simulator clones these instead of rebuilding.
    if (!spec.disableRev) {
        ctx->vault = std::make_unique<crypto::KeyVault>(probe.cpuSeed);
        for (sig::ValidationMode mode : modes) {
            const sig::SigStore *donor =
                ctx->protos.empty() ? nullptr
                                    : ctx->protos.begin()->second.get();
            ctx->protos[mode] = std::make_unique<sig::SigStore>(
                ctx->program, mode, *ctx->vault, probe.toolchainSeed,
                probe.core.splitLimits, probe.rev.chg.hashRounds, donor);
        }
    }

    // Golden record run: REV attached (its store-drain watermark
    // dominates, see program/trace.hpp), trace recorded, executed pcs
    // collected through a pre-step hook.
    core::SimConfig cfg = probe;
    if (!spec.disableRev)
        cfg.sigStorePrototype = ctx->protos.at(modes.front()).get();
    prog::TraceRecorder recorder;
    if (!spec.disableRev)
        cfg.traceRecorder = &recorder;
    core::Simulator sim(ctx->program, cfg);
    std::unordered_set<Addr> pcs;
    sim.core().setPreStepHook(
        [&pcs](u64, Addr pc) { pcs.insert(pc); });
    const core::SimResult r = sim.run();
    REV_ASSERT(!r.run.violation,
               "campaign golden run raised a violation: " +
                   r.run.violation->reason);

    ctx->goldenMemory = sim.memory().clone();
    ctx->goldenInstrs = r.run.instrs;
    if (!spec.disableRev)
        ctx->trace = recorder.take();
    ctx->goldens[{modes.front(), record_timing.name}] =
        GoldenRun{sim.stats(), r};

    // Executed-site map: every committed pc inside the main module's
    // code, decoded from the pristine image. Plans draw flip targets,
    // rewirable direct branches, and return-redirect addresses from it.
    std::vector<Addr> sorted(pcs.begin(), pcs.end());
    std::sort(sorted.begin(), sorted.end());
    std::vector<Addr> call_fallthroughs;
    for (Addr pc : sorted) {
        const prog::Module *mod = ctx->program.findModule(pc);
        if (!mod || !mod->containsCode(pc))
            continue;
        const std::size_t off = static_cast<std::size_t>(pc - mod->base);
        const auto ins =
            isa::decode(mod->image.data() + off, mod->codeSize - off);
        if (!ins)
            continue;
        ExecSite site{pc, static_cast<u8>(ins->length()), ins->klass()};
        if (site.klass == isa::InstrClass::Call ||
            site.klass == isa::InstrClass::CallIndirect)
            call_fallthroughs.push_back(pc + site.len);
        ctx->sites.push_back(site);
    }
    REV_ASSERT(!ctx->sites.empty(), "campaign workload executed no code");
    std::sort(call_fallthroughs.begin(), call_fallthroughs.end());
    for (std::size_t i = 0; i < ctx->sites.size(); ++i) {
        const ExecSite &s = ctx->sites[i];
        if (s.klass == isa::InstrClass::Branch ||
            s.klass == isa::InstrClass::Jump ||
            s.klass == isa::InstrClass::Call)
            ctx->branchSites.push_back(i);
        // A pc that is not any call's fall-through can never be a legal
        // return site, so a return smashed to it must trip validation.
        if (!std::binary_search(call_fallthroughs.begin(),
                                call_fallthroughs.end(), s.pc))
            ctx->retRedirects.push_back(s.pc);
    }
    return ctx;
}

void
addGolden(WorkloadContext &ctx, const CampaignSpec &spec,
          sig::ValidationMode mode, const TimingVariant &timing)
{
    if (ctx.goldens.count({mode, timing.name}))
        return;
    core::SimConfig cfg = campaignSimConfig(spec, mode, timing);
    if (!spec.disableRev)
        cfg.sigStorePrototype = ctx.protos.at(mode).get();
    if (!spec.disableRev && prog::replayEnabledFromEnv() &&
        ctx.trace.replayable())
        cfg.replayTrace = &ctx.trace;
    core::Simulator sim(ctx.program, cfg);
    const core::SimResult r = sim.run();
    REV_ASSERT(!r.run.violation,
               "campaign golden run raised a violation: " +
                   r.run.violation->reason);
    ctx.goldens[{mode, timing.name}] = GoldenRun{sim.stats(), r};
}

InjectionResult
runInjection(const WorkloadContext &ctx, const CampaignSpec &spec,
             const InjectionPlan &plan, const TimingVariant &timing)
{
    namespace inject = attacks::inject;
    REV_ASSERT(timing.name == plan.timing, "plan/timing variant mismatch");

    core::SimConfig cfg = campaignSimConfig(spec, plan.mode, timing);
    if (!spec.disableRev)
        cfg.sigStorePrototype = ctx.protos.at(plan.mode).get();
    core::Simulator sim(ctx.program, cfg);

    InjectionResult res;
    res.planId = plan.id;

    bool fired = false;
    Cycle fire_cycle = 0;
    std::vector<std::pair<Addr, u64>> dirtied;

    const auto stamp = [&fire_cycle](core::Simulator &s) {
        fire_cycle = s.core().lastCommitCycle();
    };
    const auto flip = [&](core::Simulator &s) {
        stamp(s);
        inject::tamperCode(s, plan.targetAddr, plan.payload);
        dirtied.emplace_back(plan.targetAddr, plan.payload.size());
    };

    switch (plan.klass) {
      case InjectionClass::NoOp:
        inject::onceAtIndex(sim, plan.fireIndex, stamp, fired);
        break;
      case InjectionClass::CodeFlip:
      case InjectionClass::CfgRewire:
      case InjectionClass::DmaWrite:
        inject::onceAtIndex(sim, plan.fireIndex, flip, fired);
        break;
      case InjectionClass::SigCorrupt:
        // Straight into simulated RAM: the signature tables are data to
        // the memory system, there is no decode/hash memo to drop.
        inject::onceAtIndex(
            sim, plan.fireIndex,
            [&](core::Simulator &s) {
                stamp(s);
                s.memory().writeBytes(plan.targetAddr, plan.payload.data(),
                                      plan.payload.size());
                dirtied.emplace_back(plan.targetAddr, plan.payload.size());
            },
            fired);
        break;
      case InjectionClass::RetSmash:
        inject::onceAtReturn(
            sim, plan.fireIndex,
            [&](core::Simulator &s) {
                stamp(s);
                dirtied.emplace_back(
                    s.core().machine().reg(isa::kRegSp), 8);
                inject::smashReturnAddress(s, plan.redirectTarget);
            },
            fired);
        break;
      case InjectionClass::TimingJitter:
        switch (plan.phase) {
          case JitterPhase::PreFetch:
            inject::onceAtPc(sim, plan.watchPc, plan.fireIndex, flip,
                             fired);
            break;
          case JitterPhase::MidBlock:
            inject::onceAtIndex(sim, plan.fireIndex, flip, fired);
            break;
          case JitterPhase::PostCommit: {
            // Arm when the watched pc is about to execute, fire right
            // after it committed: the block was just validated, the flip
            // must still be caught on its next execution (the paper's
            // continuous-validation property).
            sim.core().setPreStepHook([&, armed = false](
                                          u64 idx, Addr pc) mutable {
                if (fired)
                    return;
                if (!armed) {
                    armed = idx >= plan.fireIndex && pc == plan.watchPc;
                    return;
                }
                fired = true;
                flip(sim);
            });
            break;
          }
        }
        break;
    }

    const core::SimResult r = sim.run();
    res.fired = fired;

    if (r.run.violation) {
        res.reason = r.run.violation->reason;
        if (res.reason == "undecodable instruction bytes") {
            res.verdict = Verdict::Crashed;
        } else if (!fired) {
            // A violation without any tamper means the harness itself is
            // broken; surface it as loudly as an escape.
            res.verdict = Verdict::Escape;
        } else {
            res.verdict = Verdict::Detected;
            res.mechanismMatch =
                mechanismMatches(plan.klass, res.reason, spec.backend);
            res.latencyCycles = r.run.violation->cycle - fire_cycle;
        }
        return res;
    }

    const GoldenRun &golden = ctx.goldens.at({plan.mode, timing.name});
    const bool identical = runEqual(r, golden.result) &&
                           statsEqual(sim.stats(), golden.stats) &&
                           memoryEqual(sim.memory(), ctx.goldenMemory,
                                       dirtied);
    if (identical)
        res.verdict = Verdict::Benign;
    else if (!spec.disableRev &&
             !classDetectableIn(plan.klass, plan.mode, spec.backend))
        res.verdict = Verdict::Blind;
    else
        res.verdict = Verdict::Escape;
    return res;
}

} // namespace rev::redteam
