/**
 * @file
 * The differential detection oracle.
 *
 * For each campaign workload the oracle records one golden run (trace +
 * final memory + statistics per validation mode and timing variant), then
 * executes every InjectionPlan against a fresh Simulator and classifies
 * the outcome:
 *
 *  - Detected: REV raised a violation. The reason string is checked
 *    against the mechanisms the tamper taxonomy predicts for the class,
 *    and the detection latency (violation commit cycle minus the firing
 *    cycle) is measured.
 *  - Crashed: the machine itself refused (undecodable instruction
 *    bytes). This is a loud failure, not a REV detection — random byte
 *    tampering frequently produces garbage encodings — and is counted
 *    separately so it can neither inflate the detection rate nor be
 *    mistaken for an escape.
 *  - Benign: no violation, and the run is bit-identical to the golden
 *    run — same RunResult, same statistics (modulo the CHG memo
 *    recompute counter, see oracle.cpp), same final memory outside the
 *    signature-table region and the injector's own dirtied bytes.
 *  - Blind: the run silently diverged, but the taxonomy predicts the
 *    class is undetectable in this validation mode (e.g. pure code
 *    substitution under CFI-only validation). Expected, not a bug.
 *  - Escape: the run silently diverged although the taxonomy says the
 *    class is detectable in this mode. This is the oracle's alarm — a
 *    validated REV configuration must produce zero of these.
 *
 * Soundness of the comparison relies on campaignSimConfig(): wrong-path
 * fetch is disabled (a wrong-path fetch would read architecturally inert
 * tampered bytes and perturb I-side statistics), and all injections are
 * restricted to executed code bytes, the signature tables, or the
 * return-address slot a RET is about to pop.
 */

#ifndef REV_REDTEAM_ORACLE_HPP
#define REV_REDTEAM_ORACLE_HPP

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "attacks/attack.hpp"
#include "core/simulator.hpp"
#include "redteam/plan.hpp"
#include "workloads/profile.hpp"

namespace rev::redteam
{

/** Oracle classification of one injection. */
enum class Verdict : u8
{
    Detected,
    Crashed,
    Benign,
    Blind,
    Escape,
};

const char *verdictName(Verdict v);

/** One timing configuration of the sweep matrix (SC capacity). */
struct TimingVariant
{
    std::string name;
    u64 scSizeBytes = 32 * 1024;
};

/** Map an injection class onto the Table-1 tamper taxonomy. */
attacks::TamperClass tamperClassOf(InjectionClass c);

/**
 * Does @p backend's claimed-coverage matrix predict detection of @p c
 * under @p mode? NoOp is never "predicted detectable" (it tampers
 * nothing).
 */
bool classDetectableIn(InjectionClass c, sig::ValidationMode mode,
                       validate::Backend backend = validate::Backend::Rev);

/** Is @p reason one of the violation mechanisms @p backend predicts for
 *  @p c? */
bool mechanismMatches(InjectionClass c, const std::string &reason,
                      validate::Backend backend = validate::Backend::Rev);

/** One executed instruction site of the golden run. */
struct ExecSite
{
    Addr pc = 0;
    u8 len = 0;
    isa::InstrClass klass = isa::InstrClass::Nop;
};

/** Golden results of one (mode, timing) configuration. */
struct GoldenRun
{
    stats::StatSet stats;
    core::SimResult result;
};

/**
 * Everything the oracle knows about one campaign workload: the program,
 * the shared signature-store prototypes (one per mode, donor-chained so
 * the CFG derivation and block hashing are paid once), the recorded
 * architectural trace, the golden final memory, the executed-site map
 * plan generation draws targets from, and the per-(mode, timing) golden
 * statistics.
 */
struct WorkloadContext
{
    std::string name;
    prog::Program program;
    std::unique_ptr<crypto::KeyVault> vault;
    std::map<sig::ValidationMode, std::unique_ptr<sig::SigStore>> protos;

    prog::Trace trace;        ///< recorded golden run (REV campaigns only)
    SparseMemory goldenMemory; ///< final functional memory of the record run
    u64 goldenInstrs = 0;      ///< committed instructions of the record run

    std::vector<ExecSite> sites;        ///< executed sites, sorted by pc
    std::vector<std::size_t> branchSites; ///< indices: direct Branch/Jump/Call
    std::vector<Addr> retRedirects; ///< executed pcs that are never legal
                                    ///< return sites (not call fall-throughs)

    /**
     * Quiescence maps over the main module's code bytes, recorded from
     * the golden stream: per byte, the last committed-stream position
     * whose instruction read it (exec), or additionally whose entered
     * block's CHG hash span covered it (hash; the validator digests
     * [start, end) of every block it fetches). A flip-class tamper
     * confined to bytes quiescent after its fire index provably leaves
     * the run bit-identical to golden — see provablyBenignResult().
     */
    Addr quiescenceBase = 0;
    std::vector<u64> quiescenceExec;
    std::vector<u64> quiescenceHash;

    /** Every committed-stream position of each executed pc, ascending.
     *  Lets the oracle resolve pc-gated hooks (TimingJitter PreFetch /
     *  PostCommit) against the golden stream: the hook's firing position
     *  is the first entry >= fireIndex, or "never fires" if none. */
    std::unordered_map<Addr, std::vector<u64>> execPositions;

    std::map<std::pair<sig::ValidationMode, std::string>, GoldenRun> goldens;
};

/** The shared simulation configuration of every campaign run. */
core::SimConfig campaignSimConfig(const CampaignSpec &spec,
                                  sig::ValidationMode mode,
                                  const TimingVariant &timing);

/**
 * Generate the workload, build the per-mode signature prototypes, run
 * the golden record run under (modes.front(), record_timing) — capturing
 * the trace, the final memory, and the executed-site map — and store
 * that configuration's golden results.
 */
std::unique_ptr<WorkloadContext>
buildWorkloadContext(const workloads::WorkloadProfile &profile,
                     const CampaignSpec &spec,
                     const std::vector<sig::ValidationMode> &modes,
                     const TimingVariant &record_timing);

/**
 * Run (or replay, when REV_TRACE_REPLAY allows) the golden configuration
 * (mode, timing) and store it in ctx.goldens. No-op if already present.
 */
void addGolden(WorkloadContext &ctx, const CampaignSpec &spec,
               sig::ValidationMode mode, const TimingVariant &timing);

/** Outcome of one injection. */
struct InjectionResult
{
    u64 planId = 0;
    Verdict verdict = Verdict::Benign;
    bool fired = false;          ///< the tamper hook actually triggered
    bool mechanismMatch = false; ///< Detected: reason in the predicted set
    std::string reason;          ///< violation reason, if any
    u64 latencyCycles = 0;       ///< Detected: violation cycle - fire cycle
};

/**
 * Execute @p plan against a fresh Simulator built from @p ctx and
 * classify the outcome against the golden run of (plan.mode, timing).
 */
InjectionResult runInjection(const WorkloadContext &ctx,
                             const CampaignSpec &spec,
                             const InjectionPlan &plan,
                             const TimingVariant &timing);

/**
 * Execute @p plan against a Simulator forked from @p snap — a warmed
 * snapshot of the plan's exact (workload, mode, timing) configuration,
 * captured at plan.fireIndex — instead of re-executing the prefix from
 * instruction zero. Every hook the campaign arms requires committed
 * index >= fireIndex, and a fork's instruction/cycle/statistics stream
 * from the snapshot index on is bit-identical to a cold run's
 * (tests/bench/snapshot_test.cpp), so the verdict, the violation cycle,
 * and therefore the detection matrix are unchanged.
 */
InjectionResult runInjectionFromSnapshot(const WorkloadContext &ctx,
                                         const CampaignSpec &spec,
                                         const InjectionPlan &plan,
                                         const TimingVariant &timing,
                                         const core::Snapshot &snap);

/**
 * Is @p plan's outcome provably Benign without executing anything? If
 * so, return the exact InjectionResult executing it would produce;
 * otherwise nullopt (the plan must run — conservative, never wrong).
 *
 * Two provable shapes, both decided purely from the recorded golden
 * stream:
 *
 *  - The hook never fires. onceAtIndex hooks need the stream to reach
 *    fireIndex; pc-gated jitter hooks need watchPc to execute at a
 *    position >= fireIndex (PostCommit additionally needs one more
 *    instruction after the arming one). If the golden stream rules that
 *    out, nothing is ever tampered: Benign, fired = false.
 *
 *  - The hook fires (NoOp, or a code tamper — CodeFlip, CfgRewire,
 *    DmaWrite, any TimingJitter phase) but the entire tampered range is
 *    quiescent from the resolved firing position on: no instruction of
 *    the golden stream at or after that position reads those bytes, and
 *    (when the backend digests code — everything except Null and
 *    REV/CFI-only) no block hash span consumed at or after it covers
 *    them. The tamper lands but is never fetched, decoded, or digested,
 *    so stream, statistics, and final memory are bit-identical to
 *    golden: Benign, fired = true.
 *
 * Used by the campaign's snapshot mode to skip such runs; the
 * non-snapshot mode still executes them, so the CI matrix comparison
 * cross-checks this proof end to end.
 */
std::optional<InjectionResult>
provablyBenignResult(const WorkloadContext &ctx, const CampaignSpec &spec,
                     const InjectionPlan &plan);

} // namespace rev::redteam

#endif // REV_REDTEAM_ORACLE_HPP
