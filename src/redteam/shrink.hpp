/**
 * @file
 * Escape shrinker: reduce a reported escape to a minimal reproducer.
 *
 * Given a plan the oracle classified as Escape, the shrinker greedily
 * tries simplifying moves — shorter payloads, earlier firing points,
 * simpler jitter phases — re-running the oracle after each move and
 * keeping any candidate that still escapes. The process is deterministic
 * (fixed move order, no randomness) and bounded, so shrinking an
 * already-shrunk plan is a fixpoint: the minimized plan plus its
 * planFingerprint() form the stable reproducer id filed with a bug.
 */

#ifndef REV_REDTEAM_SHRINK_HPP
#define REV_REDTEAM_SHRINK_HPP

#include "redteam/campaign.hpp"

namespace rev::redteam
{

struct ShrinkResult
{
    InjectionPlan plan;      ///< the minimized escaping plan
    InjectionResult result;  ///< oracle outcome of the minimized plan
    unsigned evaluations = 0; ///< oracle runs spent shrinking
    u64 reproducerSeed = 0;   ///< planFingerprint(plan)
};

/**
 * Minimize @p plan, which must currently classify as Escape under
 * @p campaign (panics otherwise — shrinking a non-escape is a harness
 * bug). At most @p max_evals oracle runs are spent.
 */
ShrinkResult shrinkEscape(const Campaign &campaign, InjectionPlan plan,
                          unsigned max_evals = 64);

} // namespace rev::redteam

#endif // REV_REDTEAM_SHRINK_HPP
