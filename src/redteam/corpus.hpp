/**
 * @file
 * On-disk reproducer corpus for campaign escapes and near-misses.
 *
 * A corpus is a flat directory of `fp-<fingerprint>.json` files, one
 * self-contained InjectionPlan each (the plan codec of plan.hpp).
 * Campaigns run with `--corpus <dir>` replay every stored plan before
 * the fresh sweep — a regression gate over everything ever caught — and
 * persist each new escape (post-shrink, so the minimized reproducer is
 * what survives) and off-mechanism detection back into the directory.
 * Filenames are the plan fingerprint, so re-running a campaign is
 * idempotent and two campaigns can share one corpus.
 */

#ifndef REV_REDTEAM_CORPUS_HPP
#define REV_REDTEAM_CORPUS_HPP

#include <string>
#include <vector>

#include "redteam/plan.hpp"

namespace rev::redteam
{

/** One stored reproducer. */
struct CorpusEntry
{
    std::string file; ///< absolute or dir-relative path it was read from
    InjectionPlan plan;
};

/**
 * Load every parseable `*.json` plan in @p dir, sorted by filename so
 * replay order is deterministic. A missing directory is an empty
 * corpus; unparsable files are skipped with a warning on stderr.
 */
std::vector<CorpusEntry> loadCorpus(const std::string &dir);

/**
 * Persist @p plan as `<dir>/fp-<fingerprint>.json`, creating @p dir if
 * needed. Returns the path written, or an empty string if the file
 * already existed (idempotence) or could not be written.
 */
std::string saveCorpusPlan(const std::string &dir,
                           const InjectionPlan &plan);

} // namespace rev::redteam

#endif // REV_REDTEAM_CORPUS_HPP
