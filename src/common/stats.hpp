/**
 * @file
 * Tiny statistics framework. Components own Counter / Scalar members that
 * register with a StatGroup; groups can be dumped as name=value rows.
 */

#ifndef REV_COMMON_STATS_HPP
#define REV_COMMON_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace rev::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(u64 n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    u64 value() const { return value_; }
    operator u64() const { return value_; }

  private:
    u64 value_ = 0;
};

/**
 * A flat, ordered snapshot of named statistic values. Unlike StatGroup
 * (which holds live pointers into components), a StatSet owns plain
 * (name, value) rows and can be returned by value, compared, diffed, or
 * consumed programmatically — the structured counterpart of the old
 * "parse the dumpStats() text" idiom.
 */
class StatSet
{
  public:
    using Row = std::pair<std::string, u64>;

    /** Append a row. Names are kept in insertion order. */
    void
    add(std::string name, u64 value)
    {
        rows_.emplace_back(std::move(name), value);
    }

    /** Value of the first row named @p name; 0 if absent. */
    u64
    get(const std::string &name) const
    {
        for (const auto &[rname, value] : rows_)
            if (rname == name)
                return value;
        return 0;
    }

    bool
    has(const std::string &name) const
    {
        for (const auto &[rname, value] : rows_)
            if (rname == name)
                return true;
        return false;
    }

    const std::vector<Row> &rows() const { return rows_; }
    std::size_t size() const { return rows_.size(); }

    /** Emit every row as "name value" lines (dumpStats format). */
    void
    dump(std::ostream &os) const
    {
        for (const auto &[name, value] : rows_)
            os << name << ' ' << value << '\n';
    }

  private:
    std::vector<Row> rows_;
};

/**
 * A named collection of statistics belonging to one component. Components
 * register their counters by name; dump() emits "prefix.name value" rows.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix) : prefix_(std::move(prefix)) {}

    /** Register a counter under @p name. The counter must outlive the group. */
    void
    add(const std::string &name, const Counter *counter)
    {
        entries_.emplace_back(name, counter);
    }

    /** Emit all registered counters to @p os. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &[name, counter] : entries_)
            os << prefix_ << '.' << name << ' ' << counter->value() << '\n';
    }

    /** Append every registered counter to @p out as "prefix.name" rows. */
    void
    snapshot(StatSet &out) const
    {
        for (const auto &[name, counter] : entries_)
            out.add(prefix_ + '.' + name, counter->value());
    }

    /** Look up a counter value by name; returns 0 if absent. */
    u64
    get(const std::string &name) const
    {
        for (const auto &[ename, counter] : entries_)
            if (ename == name)
                return counter->value();
        return 0;
    }

    const std::string &prefix() const { return prefix_; }

  private:
    std::string prefix_;
    std::vector<std::pair<std::string, const Counter *>> entries_;
};

} // namespace rev::stats

#endif // REV_COMMON_STATS_HPP
