/**
 * @file
 * Bit-manipulation helpers used by the cache, TLB, and signature-table
 * indexing logic.
 */

#ifndef REV_COMMON_BITUTIL_HPP
#define REV_COMMON_BITUTIL_HPP

#include <bit>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace rev
{

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
inline unsigned
log2i(u64 v)
{
    REV_ASSERT(isPow2(v), "log2i of non-power-of-two ", v);
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Extract bits [lo, hi] (inclusive) of @p v. */
constexpr u64
bits(u64 v, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const u64 mask = width >= 64 ? ~u64{0} : ((u64{1} << width) - 1);
    return (v >> lo) & mask;
}

/** Round @p v up to the next multiple of @p align (align: power of two). */
constexpr u64
roundUp(u64 v, u64 align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (align: power of two). */
constexpr u64
roundDown(u64 v, u64 align)
{
    return v & ~(align - 1);
}

} // namespace rev

#endif // REV_COMMON_BITUTIL_HPP
