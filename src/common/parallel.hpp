/**
 * @file
 * Minimal worker-pool / parallel-for primitives used by the benchmark
 * sweep engine (and any future batch driver). Design constraints:
 *
 *  - Deterministic callers: work is identified by index, results are
 *    written to caller-owned slots, so output never depends on
 *    completion order.
 *  - Exception safety: the first exception thrown by any task is
 *    captured and rethrown on the submitting thread from wait() /
 *    parallelFor(); remaining queued tasks still drain.
 *  - Degenerate cases stay serial: a pool asked for one thread (or a
 *    parallelFor over <= 1 item) runs inline on the calling thread, so
 *    single-threaded behaviour is exactly the pre-pool code path.
 */

#ifndef REV_COMMON_PARALLEL_HPP
#define REV_COMMON_PARALLEL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rev
{

/**
 * Resolve a thread-count request: @p requested if nonzero, otherwise the
 * REV_BENCH_THREADS environment variable if set and positive, otherwise
 * std::thread::hardware_concurrency() (minimum 1).
 */
unsigned resolveThreadCount(unsigned requested);

/**
 * A fixed-size pool of worker threads draining a FIFO task queue.
 *
 * With threads == 1 no worker threads are spawned at all: submit() runs
 * the task inline, which keeps single-threaded runs bit-for-bit
 * identical to code that never heard of the pool (same stack, same
 * ordering, no synchronization).
 */
class TaskQueue
{
  public:
    /** @param threads worker count; 0 resolves via resolveThreadCount(). */
    explicit TaskQueue(unsigned threads = 0);

    /** Drains outstanding work (swallowing task exceptions) and joins. */
    ~TaskQueue();

    TaskQueue(const TaskQueue &) = delete;
    TaskQueue &operator=(const TaskQueue &) = delete;

    /** Enqueue @p task. Runs inline when the pool is single-threaded. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. Rethrows the first
     * exception any task threw since the last wait().
     */
    void wait();

    unsigned threadCount() const { return threads_; }

  private:
    void workerLoop();
    void recordException();

    unsigned threads_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0; ///< queued + currently executing
    bool stopping_ = false;
    std::exception_ptr firstError_; ///< guarded by mu_
};

/**
 * Run fn(i) for every i in [0, n) across @p threads workers (0 = auto,
 * see resolveThreadCount). Blocks until all iterations finish; rethrows
 * the first exception. Iterations are claimed dynamically (atomic
 * counter), so long and short items mix without load imbalance.
 */
void parallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)> &fn);

} // namespace rev

#endif // REV_COMMON_PARALLEL_HPP
