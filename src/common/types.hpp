/**
 * @file
 * Fundamental type aliases shared by every REV subsystem.
 */

#ifndef REV_COMMON_TYPES_HPP
#define REV_COMMON_TYPES_HPP

#include <cstddef>
#include <cstdint>

namespace rev
{

/** Virtual address in the simulated machine. */
using Addr = std::uint64_t;

/** Simulation time in CPU clock cycles. */
using Cycle = std::uint64_t;

/** Monotonically increasing id of a dynamic instruction. */
using SeqNum = std::uint64_t;

/** Monotonically increasing id of a dynamic basic-block instance. */
using BBSeq = std::uint64_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Sentinel for "no address". */
inline constexpr Addr kNoAddr = ~Addr{0};

/** Sentinel for "no cycle / not yet scheduled". */
inline constexpr Cycle kNoCycle = ~Cycle{0};

} // namespace rev

#endif // REV_COMMON_TYPES_HPP
