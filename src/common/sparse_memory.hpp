/**
 * @file
 * Sparse byte-addressable memory image of the simulated machine.
 *
 * The functional state of the machine lives here (code, data, stack). The
 * timing model (caches, DRAM) tracks tags and latencies only and reads
 * values from this image, mirroring how trace-driven cache models work.
 *
 * The hot paths (instruction fetch, loads/stores, CHG hashing, clone)
 * resolve the page once per span and move whole runs of bytes with
 * memcpy/word operations instead of one hash-map lookup per byte; a
 * one-entry translation cache per direction short-circuits the map for
 * consecutive accesses to the same page. Semantics are unchanged from the
 * byte-at-a-time reference: reads of unwritten locations return zero,
 * writes allocate pages on demand, and multi-byte values are
 * little-endian.
 *
 * Pages are copy-on-write: fork() produces a memory sharing every page
 * with its source, and either side's next write to a shared page clones
 * just that page (O(dirty pages) per fork, not O(footprint)). The page
 * *version counter* lives in the map slot, not the page, so it survives
 * a COW clone: holders of PageView::version pointers (the decode cache,
 * superblock SMC guards) keep revalidating against the same address even
 * after the underlying bytes were replaced by a clone.
 *
 * Every slot's version counter is bumped on each write span. Layers that
 * memoize derived views of memory (the interpreter's predecoded-
 * instruction cache, the CHG digest memo) validate against these counters
 * instead of requiring explicit invalidation hooks, so self-modifying
 * code — whether through the machine's own stores, attack injectors, or
 * reloadProgram() — is picked up automatically. Forked memories copy the
 * version values, so a fork's counters evolve exactly as a cold run's
 * would from the same point — memoized digests stay bit-identical.
 */

#ifndef REV_COMMON_SPARSE_MEMORY_HPP
#define REV_COMMON_SPARSE_MEMORY_HPP

#include <array>
#include <bit>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace rev
{

/**
 * Page-granular sparse memory. Reads of unwritten locations return zero.
 */
class SparseMemory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr u64 kPageSize = u64{1} << kPageShift;

    SparseMemory() = default;

    // Copying is explicit via fork()/clone(). Moves transfer the page
    // set; both operands' translation caches are reset so no cached
    // pointer outlives the slots it refers to, and the epoch is bumped so
    // external caches holding page views revalidate.
    SparseMemory(SparseMemory &&other) noexcept
        : pages_(std::move(other.pages_)), epoch_(other.epoch_ + 1)
    {
        other.pages_.clear();
        other.resetTranslationCaches();
        ++other.epoch_;
    }

    SparseMemory &
    operator=(SparseMemory &&other) noexcept
    {
        if (this != &other) {
            pages_ = std::move(other.pages_);
            other.pages_.clear();
            resetTranslationCaches();
            other.resetTranslationCaches();
            ++epoch_;
            ++other.epoch_;
        }
        return *this;
    }

    u8
    read8(Addr addr) const
    {
        const Slot *slot = findSlotCached(addr >> kPageShift);
        return slot ? slot->page->bytes[addr & (kPageSize - 1)] : 0;
    }

    void
    write8(Addr addr, u8 value)
    {
        Page &page = writablePage(addr >> kPageShift);
        page.bytes[addr & (kPageSize - 1)] = value;
    }

    /** Little-endian read of the low @p size bytes (1..8) at @p addr. */
    u64
    read(Addr addr, unsigned size) const
    {
        const u64 off = addr & (kPageSize - 1);
        if (off + size <= kPageSize) {
            const Slot *slot = findSlotCached(addr >> kPageShift);
            return slot ? loadLE(slot->page->bytes.data() + off, size) : 0;
        }
        u64 v = 0;
        for (unsigned i = size; i-- > 0;)
            v = (v << 8) | read8(addr + i);
        return v;
    }

    /** Little-endian write of the low @p size bytes (1..8) of @p value. */
    void
    write(Addr addr, u64 value, unsigned size)
    {
        const u64 off = addr & (kPageSize - 1);
        if (off + size <= kPageSize) {
            Page &page = writablePage(addr >> kPageShift);
            storeLE(page.bytes.data() + off, value, size);
            return;
        }
        for (unsigned i = 0; i < size; ++i)
            write8(addr + i, static_cast<u8>(value >> (8 * i)));
    }

    u64 read64(Addr addr) const { return read(addr, 8); }
    void write64(Addr addr, u64 value) { write(addr, value, 8); }

    void
    readBytes(Addr addr, u8 *out, std::size_t len) const
    {
        while (len > 0) {
            const u64 off = addr & (kPageSize - 1);
            const std::size_t chunk =
                static_cast<std::size_t>(std::min<u64>(len, kPageSize - off));
            const Slot *slot = findSlotCached(addr >> kPageShift);
            if (slot)
                std::memcpy(out, slot->page->bytes.data() + off, chunk);
            else
                std::memset(out, 0, chunk);
            addr += chunk;
            out += chunk;
            len -= chunk;
        }
    }

    void
    writeBytes(Addr addr, const u8 *data, std::size_t len)
    {
        while (len > 0) {
            const u64 off = addr & (kPageSize - 1);
            const std::size_t chunk =
                static_cast<std::size_t>(std::min<u64>(len, kPageSize - off));
            Page &page = writablePage(addr >> kPageShift);
            std::memcpy(page.bytes.data() + off, data, chunk);
            addr += chunk;
            data += chunk;
            len -= chunk;
        }
    }

    void
    writeBytes(Addr addr, const std::vector<u8> &data)
    {
        writeBytes(addr, data.data(), data.size());
    }

    /** Number of populated pages (tests / diagnostics). */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Write-version counter of a page (0 when the page is unpopulated).
     * Bumped at least once per write span touching the page, never reset:
     * derived caches compare it to detect content changes.
     */
    u64
    pageVersion(u64 page_no) const
    {
        const Slot *slot = findSlotCached(page_no);
        return slot ? slot->version : 0;
    }

    /**
     * Sum of page versions over the pages overlapping [start, end).
     * Strictly increases whenever any byte in the span is written, so it
     * serves as a cheap change tag for memoized digests of the span.
     */
    u64
    spanVersionSum(Addr start, Addr end) const
    {
        if (end <= start)
            return 0;
        u64 sum = 0;
        for (u64 p = start >> kPageShift; p <= (end - 1) >> kPageShift; ++p)
            sum += pageVersion(p);
        return sum;
    }

    /**
     * Stable view of a populated page's bytes and version counter, or
     * nulls when unpopulated. The version pointer stays valid until this
     * memory is destroyed or moved from (it lives in the page-table slot,
     * which copy-on-write never relocates); the bytes pointer is only
     * good until the next write to the page — holders must re-fetch the
     * view whenever the version changed, and drop it on an epoch() bump.
     */
    struct PageView
    {
        const u8 *bytes = nullptr;
        const u64 *version = nullptr;
    };

    PageView
    pageView(u64 page_no) const
    {
        const Slot *slot = findSlotCached(page_no);
        return slot ? PageView{slot->page->bytes.data(), &slot->version}
                    : PageView{};
    }

    /**
     * Bumped whenever the page set is replaced wholesale (move in/out,
     * e.g. the page-shadowing rollback). External caches holding PageViews
     * must drop them when the epoch changed.
     */
    u64 epoch() const { return epoch_; }

    /**
     * Copy-on-write fork: the result shares every page with this memory;
     * whichever side writes a shared page first clones just that page.
     * O(populated pages) pointer copies, no byte copying. Version values
     * carry over, so derived-cache revalidation behaves as if the fork
     * had executed the source's whole history itself.
     */
    SparseMemory
    fork() const
    {
        SparseMemory copy;
        copy.pages_ = pages_; // shared_ptr copies: pages now aliased
        return copy;
    }

    /** Deep copy. Kept for callers that want guaranteed page ownership;
     *  fork() is observably identical and cheaper. */
    SparseMemory
    clone() const
    {
        SparseMemory copy;
        copy.pages_.reserve(pages_.size());
        for (const auto &[page_no, slot] : pages_) {
            Slot dup;
            dup.page = std::make_shared<Page>(*slot.page);
            dup.version = slot.version;
            copy.pages_.emplace(page_no, std::move(dup));
        }
        return copy;
    }

    /** Visit every populated page as (page_number, bytes). */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const auto &[page_no, slot] : pages_)
            fn(page_no, slot.page->bytes.data());
    }

  private:
    struct Page
    {
        std::array<u8, kPageSize> bytes;
    };

    /**
     * One page-table entry. The version counter lives here — outside the
     * (possibly shared) page — so PageView::version pointers survive COW
     * clones, and so each fork's counters advance independently.
     */
    struct Slot
    {
        std::shared_ptr<Page> page;
        u64 version = 0;
    };

    static constexpr u64 kNoPage = ~u64{0};

    static u64
    loadLE(const u8 *p, unsigned size)
    {
        if constexpr (std::endian::native == std::endian::little) {
            if (size == 8) {
                u64 v;
                std::memcpy(&v, p, 8);
                return v;
            }
        }
        u64 v = 0;
        for (unsigned i = size; i-- > 0;)
            v = (v << 8) | p[i];
        return v;
    }

    static void
    storeLE(u8 *p, u64 value, unsigned size)
    {
        if constexpr (std::endian::native == std::endian::little) {
            if (size == 8) {
                std::memcpy(p, &value, 8);
                return;
            }
        }
        for (unsigned i = 0; i < size; ++i)
            p[i] = static_cast<u8>(value >> (8 * i));
    }

    const Slot *
    findSlotCached(u64 page_no) const
    {
        if (page_no == readPageNo_)
            return readSlot_;
        auto it = pages_.find(page_no);
        if (it == pages_.end())
            return nullptr; // absence is not cached: a write may populate
        readPageNo_ = page_no;
        readSlot_ = &it->second;
        return readSlot_;
    }

    /**
     * Slot for a write span: allocated on demand, version bumped (exactly
     * once per span — every write path funnels through here), and the
     * page un-shared if a fork still references it. The shared-ness check
     * runs on the cached-slot fast path too: a fork() between two writes
     * re-shares the page, and the slot pointer alone cannot see that.
     */
    Page &
    writablePage(u64 page_no)
    {
        Slot *slot;
        if (page_no == writePageNo_) {
            slot = writeSlot_;
        } else {
            slot = &pages_[page_no];
            if (!slot->page) {
                slot->page = std::make_shared<Page>();
                slot->page->bytes.fill(0);
            }
            writePageNo_ = page_no;
            writeSlot_ = slot;
        }
        ++slot->version;
        if (slot->page.use_count() > 1)
            slot->page = std::make_shared<Page>(*slot->page);
        return *slot->page;
    }

    void
    resetTranslationCaches()
    {
        readPageNo_ = kNoPage;
        readSlot_ = nullptr;
        writePageNo_ = kNoPage;
        writeSlot_ = nullptr;
    }

    std::unordered_map<u64, Slot> pages_;
    mutable u64 readPageNo_ = kNoPage;
    mutable const Slot *readSlot_ = nullptr;
    u64 writePageNo_ = kNoPage;
    Slot *writeSlot_ = nullptr;
    u64 epoch_ = 0;
};

} // namespace rev

#endif // REV_COMMON_SPARSE_MEMORY_HPP
