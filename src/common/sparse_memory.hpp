/**
 * @file
 * Sparse byte-addressable memory image of the simulated machine.
 *
 * The functional state of the machine lives here (code, data, stack). The
 * timing model (caches, DRAM) tracks tags and latencies only and reads
 * values from this image, mirroring how trace-driven cache models work.
 *
 * The hot paths (instruction fetch, loads/stores, CHG hashing, clone)
 * resolve the page once per span and move whole runs of bytes with
 * memcpy/word operations instead of one hash-map lookup per byte; a
 * one-entry translation cache per direction short-circuits the map for
 * consecutive accesses to the same page. Semantics are unchanged from the
 * byte-at-a-time reference: reads of unwritten locations return zero,
 * writes allocate pages on demand, and multi-byte values are
 * little-endian.
 *
 * Every page carries a version counter bumped on each write span. Layers
 * that memoize derived views of memory (the interpreter's predecoded-
 * instruction cache, the CHG digest memo) validate against these counters
 * instead of requiring explicit invalidation hooks, so self-modifying
 * code — whether through the machine's own stores, attack injectors, or
 * reloadProgram() — is picked up automatically.
 */

#ifndef REV_COMMON_SPARSE_MEMORY_HPP
#define REV_COMMON_SPARSE_MEMORY_HPP

#include <array>
#include <bit>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace rev
{

/**
 * Page-granular sparse memory. Reads of unwritten locations return zero.
 */
class SparseMemory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr u64 kPageSize = u64{1} << kPageShift;

    SparseMemory() = default;

    // Pages are uniquely owned: copying is explicit via clone(). Moves
    // transfer the page set; both operands' translation caches are reset
    // so no cached pointer outlives the pages it refers to, and the epoch
    // is bumped so external caches holding page views revalidate.
    SparseMemory(SparseMemory &&other) noexcept
        : pages_(std::move(other.pages_)), epoch_(other.epoch_ + 1)
    {
        other.pages_.clear();
        other.resetTranslationCaches();
        ++other.epoch_;
    }

    SparseMemory &
    operator=(SparseMemory &&other) noexcept
    {
        if (this != &other) {
            pages_ = std::move(other.pages_);
            other.pages_.clear();
            resetTranslationCaches();
            other.resetTranslationCaches();
            ++epoch_;
            ++other.epoch_;
        }
        return *this;
    }

    u8
    read8(Addr addr) const
    {
        const Page *page = findPageCached(addr >> kPageShift);
        return page ? page->bytes[addr & (kPageSize - 1)] : 0;
    }

    void
    write8(Addr addr, u8 value)
    {
        Page &page = getPageCached(addr >> kPageShift);
        ++page.version;
        page.bytes[addr & (kPageSize - 1)] = value;
    }

    /** Little-endian read of the low @p size bytes (1..8) at @p addr. */
    u64
    read(Addr addr, unsigned size) const
    {
        const u64 off = addr & (kPageSize - 1);
        if (off + size <= kPageSize) {
            const Page *page = findPageCached(addr >> kPageShift);
            return page ? loadLE(page->bytes.data() + off, size) : 0;
        }
        u64 v = 0;
        for (unsigned i = size; i-- > 0;)
            v = (v << 8) | read8(addr + i);
        return v;
    }

    /** Little-endian write of the low @p size bytes (1..8) of @p value. */
    void
    write(Addr addr, u64 value, unsigned size)
    {
        const u64 off = addr & (kPageSize - 1);
        if (off + size <= kPageSize) {
            Page &page = getPageCached(addr >> kPageShift);
            ++page.version;
            storeLE(page.bytes.data() + off, value, size);
            return;
        }
        for (unsigned i = 0; i < size; ++i)
            write8(addr + i, static_cast<u8>(value >> (8 * i)));
    }

    u64 read64(Addr addr) const { return read(addr, 8); }
    void write64(Addr addr, u64 value) { write(addr, value, 8); }

    void
    readBytes(Addr addr, u8 *out, std::size_t len) const
    {
        while (len > 0) {
            const u64 off = addr & (kPageSize - 1);
            const std::size_t chunk =
                static_cast<std::size_t>(std::min<u64>(len, kPageSize - off));
            const Page *page = findPageCached(addr >> kPageShift);
            if (page)
                std::memcpy(out, page->bytes.data() + off, chunk);
            else
                std::memset(out, 0, chunk);
            addr += chunk;
            out += chunk;
            len -= chunk;
        }
    }

    void
    writeBytes(Addr addr, const u8 *data, std::size_t len)
    {
        while (len > 0) {
            const u64 off = addr & (kPageSize - 1);
            const std::size_t chunk =
                static_cast<std::size_t>(std::min<u64>(len, kPageSize - off));
            Page &page = getPageCached(addr >> kPageShift);
            ++page.version;
            std::memcpy(page.bytes.data() + off, data, chunk);
            addr += chunk;
            data += chunk;
            len -= chunk;
        }
    }

    void
    writeBytes(Addr addr, const std::vector<u8> &data)
    {
        writeBytes(addr, data.data(), data.size());
    }

    /** Number of populated pages (tests / diagnostics). */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Write-version counter of a page (0 when the page is unpopulated).
     * Bumped at least once per write span touching the page, never reset:
     * derived caches compare it to detect content changes.
     */
    u64
    pageVersion(u64 page_no) const
    {
        const Page *page = findPageCached(page_no);
        return page ? page->version : 0;
    }

    /**
     * Sum of page versions over the pages overlapping [start, end).
     * Strictly increases whenever any byte in the span is written, so it
     * serves as a cheap change tag for memoized digests of the span.
     */
    u64
    spanVersionSum(Addr start, Addr end) const
    {
        if (end <= start)
            return 0;
        u64 sum = 0;
        for (u64 p = start >> kPageShift; p <= (end - 1) >> kPageShift; ++p)
            sum += pageVersion(p);
        return sum;
    }

    /**
     * Stable view of a populated page's bytes and version counter, or
     * nulls when unpopulated. The pointers stay valid until this memory is
     * destroyed or moved from; holders must revalidate via epoch().
     */
    struct PageView
    {
        const u8 *bytes = nullptr;
        const u64 *version = nullptr;
    };

    PageView
    pageView(u64 page_no) const
    {
        const Page *page = findPageCached(page_no);
        return page ? PageView{page->bytes.data(), &page->version}
                    : PageView{};
    }

    /**
     * Bumped whenever the page set is replaced wholesale (move in/out,
     * e.g. the page-shadowing rollback). External caches holding PageViews
     * must drop them when the epoch changed.
     */
    u64 epoch() const { return epoch_; }

    /** Deep copy (pages are owned uniquely, so copying is explicit). */
    SparseMemory
    clone() const
    {
        SparseMemory copy;
        for (const auto &[page_no, page] : pages_) {
            auto dup = std::make_unique<Page>(*page);
            copy.pages_.emplace(page_no, std::move(dup));
        }
        return copy;
    }

    /** Visit every populated page as (page_number, bytes). */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const auto &[page_no, page] : pages_)
            fn(page_no, page->bytes.data());
    }

  private:
    struct Page
    {
        std::array<u8, kPageSize> bytes;
        u64 version = 0;
    };

    static constexpr u64 kNoPage = ~u64{0};

    static u64
    loadLE(const u8 *p, unsigned size)
    {
        if constexpr (std::endian::native == std::endian::little) {
            if (size == 8) {
                u64 v;
                std::memcpy(&v, p, 8);
                return v;
            }
        }
        u64 v = 0;
        for (unsigned i = size; i-- > 0;)
            v = (v << 8) | p[i];
        return v;
    }

    static void
    storeLE(u8 *p, u64 value, unsigned size)
    {
        if constexpr (std::endian::native == std::endian::little) {
            if (size == 8) {
                std::memcpy(p, &value, 8);
                return;
            }
        }
        for (unsigned i = 0; i < size; ++i)
            p[i] = static_cast<u8>(value >> (8 * i));
    }

    const Page *
    findPageCached(u64 page_no) const
    {
        if (page_no == readPageNo_)
            return readPage_;
        auto it = pages_.find(page_no);
        if (it == pages_.end())
            return nullptr; // absence is not cached: a write may populate
        readPageNo_ = page_no;
        readPage_ = it->second.get();
        return readPage_;
    }

    Page &
    getPageCached(u64 page_no)
    {
        if (page_no == writePageNo_)
            return *writePage_;
        auto &slot = pages_[page_no];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->bytes.fill(0);
        }
        writePageNo_ = page_no;
        writePage_ = slot.get();
        return *writePage_;
    }

    void
    resetTranslationCaches()
    {
        readPageNo_ = kNoPage;
        readPage_ = nullptr;
        writePageNo_ = kNoPage;
        writePage_ = nullptr;
    }

    std::unordered_map<u64, std::unique_ptr<Page>> pages_;
    mutable u64 readPageNo_ = kNoPage;
    mutable const Page *readPage_ = nullptr;
    u64 writePageNo_ = kNoPage;
    Page *writePage_ = nullptr;
    u64 epoch_ = 0;
};

} // namespace rev

#endif // REV_COMMON_SPARSE_MEMORY_HPP
