/**
 * @file
 * Sparse byte-addressable memory image of the simulated machine.
 *
 * The functional state of the machine lives here (code, data, stack). The
 * timing model (caches, DRAM) tracks tags and latencies only and reads
 * values from this image, mirroring how trace-driven cache models work.
 */

#ifndef REV_COMMON_SPARSE_MEMORY_HPP
#define REV_COMMON_SPARSE_MEMORY_HPP

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace rev
{

/**
 * Page-granular sparse memory. Reads of unwritten locations return zero.
 */
class SparseMemory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr u64 kPageSize = u64{1} << kPageShift;

    u8
    read8(Addr addr) const
    {
        const Page *page = findPage(addr);
        return page ? (*page)[addr & (kPageSize - 1)] : 0;
    }

    void
    write8(Addr addr, u8 value)
    {
        getPage(addr)[addr & (kPageSize - 1)] = value;
    }

    u64
    read64(Addr addr) const
    {
        u64 v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | read8(addr + i);
        return v;
    }

    void
    write64(Addr addr, u64 value)
    {
        for (int i = 0; i < 8; ++i)
            write8(addr + i, static_cast<u8>(value >> (8 * i)));
    }

    void
    readBytes(Addr addr, u8 *out, std::size_t len) const
    {
        for (std::size_t i = 0; i < len; ++i)
            out[i] = read8(addr + i);
    }

    void
    writeBytes(Addr addr, const u8 *data, std::size_t len)
    {
        for (std::size_t i = 0; i < len; ++i)
            write8(addr + i, data[i]);
    }

    void
    writeBytes(Addr addr, const std::vector<u8> &data)
    {
        writeBytes(addr, data.data(), data.size());
    }

    /** Number of populated pages (tests / diagnostics). */
    std::size_t pageCount() const { return pages_.size(); }

    /** Deep copy (pages are owned uniquely, so copying is explicit). */
    SparseMemory
    clone() const
    {
        SparseMemory copy;
        for (const auto &[page_no, page] : pages_) {
            auto dup = std::make_unique<Page>(*page);
            copy.pages_.emplace(page_no, std::move(dup));
        }
        return copy;
    }

    /** Visit every populated page as (page_number, bytes). */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const auto &[page_no, page] : pages_)
            fn(page_no, page->data());
    }

  private:
    using Page = std::array<u8, kPageSize>;

    const Page *
    findPage(Addr addr) const
    {
        auto it = pages_.find(addr >> kPageShift);
        return it == pages_.end() ? nullptr : it->second.get();
    }

    Page &
    getPage(Addr addr)
    {
        auto &slot = pages_[addr >> kPageShift];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return *slot;
    }

    std::unordered_map<u64, std::unique_ptr<Page>> pages_;
};

} // namespace rev

#endif // REV_COMMON_SPARSE_MEMORY_HPP
