/**
 * @file
 * Minimal logging / fatal-error helpers in the spirit of gem5's
 * base/logging.hh: panic() for internal invariant violations, fatal() for
 * user-caused misconfiguration, warn()/inform() for status messages.
 */

#ifndef REV_COMMON_LOGGING_HPP
#define REV_COMMON_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rev
{

/** Thrown by fatal(): the simulation cannot continue due to a user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an internal simulator bug. Never returns.
 * Use when something happens that should never happen regardless of what
 * the user does.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::concat("panic: ", args...));
}

/**
 * Report a user-caused configuration error. Never returns.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::concat("fatal: ", args...));
}

/** Warn about questionable but survivable conditions. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::fputs(("warn: " + detail::concat(args...) + "\n").c_str(), stderr);
}

/** Informational status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::fputs((detail::concat(args...) + "\n").c_str(), stdout);
}

/** panic() unless the condition holds. */
#define REV_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rev::panic("assertion failed: " #cond " ", ##__VA_ARGS__);    \
        }                                                                   \
    } while (0)

} // namespace rev

#endif // REV_COMMON_LOGGING_HPP
