file(REMOVE_RECURSE
  "librev_common.a"
)
