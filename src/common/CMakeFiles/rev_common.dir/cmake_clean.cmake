file(REMOVE_RECURSE
  "CMakeFiles/rev_common.dir/parallel.cpp.o"
  "CMakeFiles/rev_common.dir/parallel.cpp.o.d"
  "librev_common.a"
  "librev_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
