# Empty dependencies file for rev_common.
# This may be replaced when dependencies are built.
