#include "common/parallel.hpp"

#include <atomic>
#include <cstdlib>

namespace rev
{

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("REV_BENCH_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

TaskQueue::TaskQueue(unsigned threads) : threads_(resolveThreadCount(threads))
{
    if (threads_ <= 1)
        return;
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

TaskQueue::~TaskQueue()
{
    if (workers_.empty())
        return;
    {
        std::unique_lock<std::mutex> lock(mu_);
        allDone_.wait(lock, [this] { return inFlight_ == 0; });
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
TaskQueue::recordException()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!firstError_)
        firstError_ = std::current_exception();
}

void
TaskQueue::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        // Single-threaded pool: run inline, but keep wait()'s rethrow
        // contract so callers behave identically either way.
        try {
            task();
        } catch (...) {
            recordException();
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
TaskQueue::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
TaskQueue::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workReady_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            recordException();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(std::size_t n, unsigned threads,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(resolveThreadCount(threads), n));
    if (workers <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errMu;
    auto drain = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMu);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned t = 1; t < workers; ++t)
        pool.emplace_back(drain);
    drain(); // the calling thread participates
    for (auto &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace rev
