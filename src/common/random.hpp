/**
 * @file
 * Deterministic PRNG (xoshiro256**) used everywhere randomness is needed so
 * that simulations are exactly reproducible from a seed.
 */

#ifndef REV_COMMON_RANDOM_HPP
#define REV_COMMON_RANDOM_HPP

#include <cstdint>

#include "common/types.hpp"

namespace rev
{

/**
 * xoshiro256** generator. Small, fast, and deterministic across platforms,
 * unlike std::mt19937_64 + std::uniform_int_distribution whose mapping is
 * implementation-defined.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void
    reseed(u64 seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            u64 z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    u64
    below(u64 bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** True with probability p (p in [0,1]). */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

    /** Uniform double in [0,1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

    u64 state_[4];
};

} // namespace rev

#endif // REV_COMMON_RANDOM_HPP
