/**
 * @file
 * Static control-flow analysis of a module: the reference CFG from which
 * signature tables are built (Sec. IV.A, IV.D, V).
 *
 * REV identifies a basic block (BB) by the address of the control-flow
 * instruction that terminates it. The hardware hashes the byte stream from
 * the dynamic entry point up to and including the terminator, so when
 * control can enter a straight-line run in the middle (a branch into the
 * body), each distinct entry point yields its own validation unit: a BB
 * with the same terminator but a different start and hash. The table
 * formats of Sec. V discriminate such entries via tags; we model them as
 * separate BasicBlock records sharing a terminator address.
 *
 * Very long straight-line runs are split artificially, bounding the number
 * of instructions or stores per BB (whichever limit is hit first), so the
 * post-commit ROB/store-queue extensions stay finite (Sec. IV.A).
 */

#ifndef REV_PROGRAM_CFG_HPP
#define REV_PROGRAM_CFG_HPP

#include <unordered_map>
#include <vector>

#include "program/module.hpp"

namespace rev::prog
{

/** What terminates a basic block. */
enum class TermKind : u8
{
    Branch,       ///< conditional PC-relative branch: {target, fallthrough}
    Jump,         ///< direct jump: {target}
    Call,         ///< direct call: {callee entry}
    CallIndirect, ///< computed call: annotated target set
    JumpIndirect, ///< computed jump: annotated target set
    Return,       ///< return: statically derived return-site set
    Halt,         ///< no successor
    Split,        ///< artificial boundary: {fallthrough}
};

/** True iff the terminator's target is computed at run time. */
inline bool
termIsComputed(TermKind k)
{
    return k == TermKind::CallIndirect || k == TermKind::JumpIndirect;
}

/**
 * One validation unit: entry point -> terminating control-flow
 * instruction.
 */
struct BasicBlock
{
    u32 id = 0;

    Addr start = 0; ///< address of the first instruction
    Addr term = 0;  ///< address of the terminating instruction (BB identity)
    Addr end = 0;   ///< first byte past the terminator (fall-through addr)

    u32 numInstrs = 0;
    u32 numStores = 0; ///< memory-writing instructions (ST and CALL*)

    TermKind kind = TermKind::Halt;

    /** Start addresses of the possible successor BBs. */
    std::vector<Addr> succs;

    /**
     * For BBs whose start can be entered via a return: addresses of the
     * RET instructions that may precede entry (Sec. V.A delayed return
     * validation).
     */
    std::vector<Addr> retPreds;

    u64 sizeBytes() const { return end - start; }
};

/** Artificial-split thresholds (Sec. IV.A). */
struct SplitLimits
{
    unsigned maxInstrs = 48;
    unsigned maxStores = 8;

    bool operator==(const SplitLimits &) const = default;
};

/** Aggregate statistics reported in Sec. VIII. */
struct CfgStats
{
    u64 numBlocks = 0;
    u64 numTerminators = 0; ///< distinct terminator addresses
    double avgInstrsPerBlock = 0.0;
    double avgSuccsPerBlock = 0.0;
    u64 numComputedSites = 0; ///< CALLR/JMPR instruction count
    u64 numBranchInstrs = 0;  ///< static control-flow instruction count
};

/**
 * The reference CFG of one module.
 */
class Cfg
{
  public:
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Block whose entry point is @p start; nullptr if not a valid entry. */
    const BasicBlock *blockAtStart(Addr start) const;

    /** All blocks terminated by the instruction at @p term. */
    std::vector<const BasicBlock *> blocksAtTerm(Addr term) const;

    /** The split limits the analysis used (front end must match them). */
    const SplitLimits &splitLimits() const { return limits_; }

    CfgStats stats() const;

  private:
    friend Cfg buildCfg(const Module &mod, const SplitLimits &limits);
    friend void linkCfgs(const std::vector<Cfg *> &cfgs);

    std::vector<BasicBlock> blocks_;
    std::unordered_map<Addr, u32> byStart_;
    std::unordered_map<Addr, std::vector<u32>> byTerm_;
    SplitLimits limits_;
};

/**
 * Build the reference CFG of @p mod. The module's code region must decode
 * cleanly end-to-end (the trusted toolchain guarantees this); undecodable
 * code is a fatal error. Computed-transfer sites with no annotated targets
 * are allowed here but will be flagged by the signature builder.
 *
 * Return-site analysis is run for the module in isolation; when a program
 * links several modules, call linkCfgs() over all of them so returns that
 * cross module boundaries resolve (the trusted linker's job, Sec. IV.B).
 */
Cfg buildCfg(const Module &mod, const SplitLimits &limits = {});

/**
 * Program-level return-site analysis: recompute, across all modules, the
 * successor sets of RET-terminated blocks and the RET-predecessor lists of
 * return-site blocks (Sec. V.A). Idempotent; replaces any previous
 * return-edge information.
 */
void linkCfgs(const std::vector<Cfg *> &cfgs);

} // namespace rev::prog

#endif // REV_PROGRAM_CFG_HPP
