file(REMOVE_RECURSE
  "CMakeFiles/rev_program.dir/assembler.cpp.o"
  "CMakeFiles/rev_program.dir/assembler.cpp.o.d"
  "CMakeFiles/rev_program.dir/cfg.cpp.o"
  "CMakeFiles/rev_program.dir/cfg.cpp.o.d"
  "CMakeFiles/rev_program.dir/interp.cpp.o"
  "CMakeFiles/rev_program.dir/interp.cpp.o.d"
  "CMakeFiles/rev_program.dir/module.cpp.o"
  "CMakeFiles/rev_program.dir/module.cpp.o.d"
  "CMakeFiles/rev_program.dir/profiler.cpp.o"
  "CMakeFiles/rev_program.dir/profiler.cpp.o.d"
  "CMakeFiles/rev_program.dir/program.cpp.o"
  "CMakeFiles/rev_program.dir/program.cpp.o.d"
  "CMakeFiles/rev_program.dir/trace.cpp.o"
  "CMakeFiles/rev_program.dir/trace.cpp.o.d"
  "librev_program.a"
  "librev_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
