
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/program/assembler.cpp" "src/program/CMakeFiles/rev_program.dir/assembler.cpp.o" "gcc" "src/program/CMakeFiles/rev_program.dir/assembler.cpp.o.d"
  "/root/repo/src/program/cfg.cpp" "src/program/CMakeFiles/rev_program.dir/cfg.cpp.o" "gcc" "src/program/CMakeFiles/rev_program.dir/cfg.cpp.o.d"
  "/root/repo/src/program/interp.cpp" "src/program/CMakeFiles/rev_program.dir/interp.cpp.o" "gcc" "src/program/CMakeFiles/rev_program.dir/interp.cpp.o.d"
  "/root/repo/src/program/module.cpp" "src/program/CMakeFiles/rev_program.dir/module.cpp.o" "gcc" "src/program/CMakeFiles/rev_program.dir/module.cpp.o.d"
  "/root/repo/src/program/profiler.cpp" "src/program/CMakeFiles/rev_program.dir/profiler.cpp.o" "gcc" "src/program/CMakeFiles/rev_program.dir/profiler.cpp.o.d"
  "/root/repo/src/program/program.cpp" "src/program/CMakeFiles/rev_program.dir/program.cpp.o" "gcc" "src/program/CMakeFiles/rev_program.dir/program.cpp.o.d"
  "/root/repo/src/program/trace.cpp" "src/program/CMakeFiles/rev_program.dir/trace.cpp.o" "gcc" "src/program/CMakeFiles/rev_program.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/isa/CMakeFiles/rev_isa.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/rev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
