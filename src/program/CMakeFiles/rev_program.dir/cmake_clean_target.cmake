file(REMOVE_RECURSE
  "librev_program.a"
)
