# Empty dependencies file for rev_program.
# This may be replaced when dependencies are built.
