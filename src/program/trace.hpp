/**
 * @file
 * Compact binary architectural traces: record the committed-instruction
 * stream of one run once, then replay it into the timing model so other
 * configurations are timed without re-executing semantics.
 *
 * The committed stream of a (program, instruction budget, split limits)
 * triple is identical for every timing configuration — the core is
 * execute-functional, timing-directed — so everything the timing model
 * consumes can be re-derived during replay from the static code plus a
 * small stream of data-dependent events:
 *
 *  - conditional branches: one taken bit,
 *  - loads/stores (incl. CALL push / RET pop): the effective address as a
 *    zigzag varint delta against the previous memory address,
 *  - computed control transfers (RET / JMPR / CALLR): the target as a
 *    zigzag varint delta against the instruction's own PC,
 *  - loads additionally carry a store-forwarding distance (see below).
 *
 * Everything else (opcode, operands, instruction length, fall-through,
 * direct targets, syscall numbers) comes from decoding the unchanged code
 * image through the DecodeCache, exactly as a direct run would.
 *
 * Store forwarding across drain policies: whether a load forwards from
 * the store queue depends on when pending stores drain, which differs
 * between the base core (drains every instruction) and REV (drains at
 * block validation). The recorder must therefore run under a REV
 * configuration — its drain watermark is the lowest of any configuration,
 * so a load that did NOT forward at record time forwards under no
 * configuration. For loads that did, the trace stores the distance
 * (load seq - covering store seq); the replaying core compares it against
 * its own drain watermark to decide forwarding per configuration.
 *
 * Replay applies no stores: nothing in a replayed run reads data memory
 * (load values are architectural, not timing inputs; CHG hashes and table
 * walks touch only code and signature-table pages, which the program never
 * writes). A recording where the program DID write a page the decoder
 * fetched from (self-modifying code) is marked non-replayable, and
 * consumers fall back to direct execution.
 */

#ifndef REV_PROGRAM_TRACE_HPP
#define REV_PROGRAM_TRACE_HPP

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "program/cfg.hpp"
#include "program/interp.hpp"

namespace rev::prog
{

/** Bump when the event encoding or the metadata layout changes. */
inline constexpr u32 kTraceFormatVersion = 1;

/**
 * The REV_TRACE_REPLAY switch shared by every execute-once/time-many
 * consumer (benchmark sweep, redteam campaigns): replay is on unless the
 * variable is set to "0". Read per call — tests toggle it mid-process.
 */
bool replayEnabledFromEnv();

/**
 * One recorded run. Plain data plus (de)serialization; TraceRecorder
 * fills it, any number of concurrent TraceReplayers read it.
 */
struct Trace
{
    u32 formatVersion = kTraceFormatVersion;
    Addr entryPc = 0;
    u64 maxInstrs = 0;      ///< instruction budget of the recorded run
    SplitLimits splitLimits; ///< front-end split limits of the recorded run
    u64 instrCount = 0;      ///< committed instructions recorded

    bool complete = false;     ///< finish() ran (run ended normally)
    bool sawViolation = false; ///< recorded run failed validation
    bool sawInvalid = false;   ///< recorded run hit undecodable bytes
    bool smcDetected = false;  ///< program wrote a decoded-from page

    /**
     * Every page the decoder fetched from, with its write-version at the
     * end of the recorded run (for non-self-modifying traces this equals
     * the post-load version). Replay attachment validates these against
     * the target memory image and falls back to direct execution on any
     * mismatch.
     */
    std::vector<std::pair<u64, u64>> codePages;

    std::vector<u8> bytes; ///< LEB128 varint stream (addresses, distances)
    std::vector<u8> bits;  ///< taken-bit stream, LSB first
    u64 bitCount = 0;

    /** Safe to substitute for direct execution of the same program/budget. */
    bool
    replayable() const
    {
        return complete && !sawViolation && !sawInvalid && !smcDetected &&
               formatVersion == kTraceFormatVersion;
    }

    /** Encoded payload size (spill-threshold input). */
    std::size_t
    byteSize() const
    {
        return bytes.size() + bits.size() + codePages.size() * 16;
    }

    /** Write to / read back from a file (also the sweep spill format). */
    bool save(const std::string &path) const;
    bool load(const std::string &path);
};

/**
 * Captures the event stream of a direct run. Attach to a Machine; the
 * machine calls record() per committed instruction. After the run,
 * finish() derives the self-modifying-code verdict (did any program store
 * land on a page the decoder fetched from?) and snapshots the code-page
 * versions.
 */
class TraceRecorder
{
  public:
    /** Start a fresh recording (called by the Simulator at attach). */
    void begin(Addr entry_pc, u64 max_instrs, const SplitLimits &limits,
               u64 mem_epoch);

    /** Append one executed instruction. @p cover_dist is 0 when the load
     *  did not forward from the store queue, else seq - coveringStoreSeq. */
    void record(const ExecRecord &rec, u64 cover_dist);

    void markInvalid() { trace_.sawInvalid = true; }
    void markViolation() { trace_.sawViolation = true; }

    /** External code mutation (e.g. reloadProgram): never replayable. */
    void markExternalMutation() { trace_.smcDetected = true; }

    /** Seal the trace using the machine's decode-cache page history. */
    void finish(const Machine &machine);

    const Trace &trace() const { return trace_; }
    Trace take() { return std::move(trace_); }

  private:
    void putVarint(u64 v);
    void putZigzag(i64 v);
    void putBit(bool b);

    Trace trace_;
    Addr lastMemAddr_ = 0;
    u64 memEpochAtBegin_ = 0;
    std::unordered_set<u64> storePages_;
};

/**
 * A cursor over one Trace. Each replaying Machine owns its own replayer;
 * the underlying Trace is shared read-only across any number of them.
 * Readers must be called in the canonical per-opcode order (the order
 * record() emitted them): memAddr, coverDist, nextPc; branches read one
 * taken bit.
 */
class TraceReplayer
{
  public:
    explicit TraceReplayer(const Trace &trace) : trace_(&trace) {}

    u64 consumed() const { return idx_; }
    bool exhausted() const { return idx_ >= trace_->instrCount; }

    bool readTaken();
    Addr readMemAddr();
    u64 readCoverDist() { return readVarint(); }
    Addr readNextPc(Addr pc);

    /** Mark the current instruction's events as fully consumed. */
    void advance() { ++idx_; }

  private:
    u64 readVarint();
    i64 readZigzag();

    const Trace *trace_;
    std::size_t byteOff_ = 0;
    u64 bitOff_ = 0;
    u64 idx_ = 0;
    Addr lastMemAddr_ = 0;
};

} // namespace rev::prog

#endif // REV_PROGRAM_TRACE_HPP
